(* VM lifecycle on SeKVM: boot, secure image authentication, guest
   execution with stage-2 fault handling, paravirtual I/O page sharing,
   a battery of KServ attacks (all denied), teardown with scrubbing —
   and the same attacks against stock KVM, where they succeed.

   Run with: dune exec examples/vm_lifecycle.exe *)

open Sekvm
open Machine

let () =
  Format.printf "== SeKVM VM lifecycle ==@.@.";
  let config = Kcore.default_boot_config in
  let kcore = Kcore.boot config in
  let kserv = Kserv.create kcore ~first_free_pfn:(Kcore.kserv_base config) in
  Format.printf "booted: %d pages of RAM, %d CPUs, %d-level stage-2@.@."
    config.Kcore.n_pages config.Kcore.n_cpus
    config.Kcore.stage2_geometry.Page_table.levels;

  (* Secure boot: a tampered image must be rejected. *)
  (match Kserv.boot_vm kserv ~cpu:0 ~tamper:true ~n_vcpus:1 ~image_pages:2 with
  | Error `Bad_hash ->
      Format.printf "tampered VM image rejected by KCore (hash mismatch)@."
  | Error `Denied -> Format.printf "tampered VM image denied@."
  | Ok _ -> Format.printf "BUG: tampered image accepted!@.");

  (* Honest boots. *)
  let vmid1 =
    match Kserv.boot_vm kserv ~cpu:0 ~n_vcpus:2 ~image_pages:4 with
    | Ok v -> v
    | Error _ -> failwith "boot failed"
  in
  let vmid2 =
    match Kserv.boot_vm kserv ~cpu:1 ~n_vcpus:2 ~image_pages:4 with
    | Ok v -> v
    | Error _ -> failwith "boot failed"
  in
  Format.printf "VMs %d and %d booted and verified@.@." vmid1 vmid2;

  (* Guest work: faults populate stage-2 lazily; pages are scrubbed and
     ownership-transferred as they arrive. *)
  let results =
    Kserv.run_guest kserv ~cpu:2 ~vmid:vmid1 ~vcpuid:0
      (Vm.touch_pages ~first_ipa_page:16 ~n:4)
  in
  Format.printf "guest of VM %d touched 4 fresh pages: %d ops ok@." vmid1
    (List.length (List.filter (fun r -> r <> Vm.R_denied) results));
  Format.printf "stage-2 faults handled so far: %d@.@." kcore.Kcore.s2_faults;

  (* Paravirtual I/O: the guest shares a ring page with KServ. *)
  let ring = Page_table.page_va 40 in
  (match
     Kserv.run_guest kserv ~cpu:2 ~vmid:vmid1 ~vcpuid:1
       (Vm.virtio_round ~ring_ipa:ring ~payload:4242)
   with
  | [ _; _; Vm.R_value 4242; _ ] ->
      Format.printf "virtio round trip through a shared page: ok@.@."
  | _ -> Format.printf "virtio round trip: unexpected results@.@.");

  (* Attacks from a compromised host. *)
  Format.printf "== KServ attacks (SeKVM) ==@.";
  let vm_pfn =
    List.hd (S2page.pages_owned_by kcore.Kcore.s2page (S2page.Vm vmid1))
  in
  let show name r =
    Format.printf "  %-28s %s@." name
      (match r with Error `Denied -> "DENIED (good)" | Ok _ -> "SUCCEEDED (BAD)")
  in
  show "read VM page" (Kserv.attack_read_vm_page kserv ~cpu:0 ~pfn:vm_pfn);
  show "write VM page" (Kserv.attack_write_vm_page kserv ~cpu:0 ~pfn:vm_pfn 1);
  show "steal VM page"
    (Kserv.attack_steal_page kserv ~cpu:0 ~victim_pfn:vm_pfn ~vmid:vmid2
       ~ipa:(Page_table.page_va 300));
  show "read KCore page" (Kserv.attack_read_vm_page kserv ~cpu:0 ~pfn:2);

  let bad = Kcore.check_invariants kcore in
  Format.printf "@.security invariants after the attacks: %d violations@.@."
    (List.length bad);

  (* Teardown with scrubbing: VM 1's secrets must not leak to KServ. *)
  let secret_before = Phys_mem.read kcore.Kcore.mem ~pfn:vm_pfn ~idx:0 in
  Kcore.teardown_vm kcore ~cpu:0 ~vmid:vmid1;
  let after = Phys_mem.read kcore.Kcore.mem ~pfn:vm_pfn ~idx:0 in
  Format.printf
    "teardown: page %d content %d -> %d (scrubbed), owner now %s@.@." vm_pfn
    secret_before after
    (S2page.show_owner (S2page.owner kcore.Kcore.s2page vm_pfn));

  (* The same attacks against stock KVM succeed — the paper's motivation. *)
  Format.printf "== Stock KVM (baseline) ==@.";
  let kvm =
    Kvm_baseline.boot ~n_pages:512 ~n_cpus:4 ~tlb_capacity:64
      ~geometry:Page_table.three_level
  in
  let vmid = Kvm_baseline.register_vm kvm in
  Kvm_baseline.register_vcpu kvm ~vmid ~vcpuid:0;
  let pfn = Kvm_baseline.alloc_page kvm in
  Kvm_baseline.map_page kvm ~cpu:0 ~vmid ~ipa:0 ~pfn;
  Kvm_baseline.host_write kvm ~pfn ~idx:0 0x5ec2e7;
  (match Kvm_baseline.attack_read_vm_page kvm ~pfn with
  | Ok v ->
      Format.printf
        "  host reads the guest's memory directly: 0x%x — no protection@." v
  | Error () -> ());
  Format.printf
    "@.SeKVM denies what stock KVM allows; that is the property the wDRF \
     certificate@.extends to Arm relaxed memory hardware.@."
