(* Quickstart: the VRM workflow in one page.

   1. Write a concurrent kernel-code fragment in the DSL.
   2. Explore it exhaustively under the SC model and under the Promising
      Arm relaxed model; see relaxed-only behaviors appear.
   3. Add the synchronization the wDRF conditions require; watch the
      relaxed behaviors disappear and the checkers certify the program.

   Run with: dune exec examples/quickstart.exe *)

open Memmodel

let () =
  Format.printf "== VRM quickstart ==@.@.";

  (* Step 1: the paper's Example 1 — a store reordered before an
     independent load (load buffering). *)
  let r0 = Reg.v "r0" and r1 = Reg.v "r1" in
  let x = Expr.at "x" and y = Expr.at "y" in
  let prog =
    Prog.make ~name:"example1"
      ~observables:[ Prog.Obs_reg (1, r0); Prog.Obs_reg (2, r1) ]
      [ Prog.thread 1 [ Instr.load r0 x; Instr.store y (Expr.c 1) ];
        Prog.thread 2 [ Instr.load r1 y; Instr.store x (Expr.r r1) ] ]
  in
  Format.printf "Example 1 threads:@.";
  Format.printf "  CPU1: r0 := [x]; [y] := 1@.";
  Format.printf "  CPU2: r1 := [y]; [x] := r1@.@.";

  (* Step 2: explore under both hardware models. *)
  let sc = Sc.run prog in
  let cfg = { Promising.default_config with max_promises = 1 } in
  let rm, witnesses = Promising.run_with_witnesses ~config:cfg prog in
  Format.printf "SC behaviors:@.%a@.@." Behavior.pp sc;
  Format.printf "Promising Arm behaviors:@.%a@.@." Behavior.pp rm;
  let rm_only = Behavior.diff rm sc in
  Format.printf "Relaxed-only behaviors (the out-of-order write):@.%a@.@."
    Behavior.pp rm_only;
  (* show the machine-level schedule that produced the relaxed outcome *)
  (match Behavior.elements rm_only with
  | o :: _ ->
      (match List.assoc_opt o witnesses with
      | Some steps ->
          Format.printf "witness schedule (note the promise):@.%a@.@."
            Promising.pp_schedule steps
      | None -> ())
  | [] -> ());

  (* Step 3: the repaired, wDRF-conforming version. *)
  let fixed =
    Prog.make ~name:"example1-fixed"
      ~observables:[ Prog.Obs_reg (1, r0); Prog.Obs_reg (2, r1) ]
      [ Prog.thread 1
          [ Instr.load_acq r0 x; Instr.store_rel y (Expr.c 1) ];
        Prog.thread 2
          [ Instr.load_acq r1 y; Instr.store_rel x (Expr.r r1) ] ]
  in
  let verdict = Vrm.Refinement.check ~config:{ Promising.default_config with max_promises = 1 } fixed in
  Format.printf "After adding acquire/release:@.%a@.@."
    Vrm.Refinement.pp_verdict verdict;

  (* The wDRF theorem in action on real kernel code: the VMID allocator
     under the Linux ticket lock. *)
  let entry = Sekvm.Kernel_progs.vmid_alloc in
  let report = Vrm.Certificate.audit_program entry in
  Format.printf "KCore's gen_vmid under the Linux ticket lock:@.%a@."
    Vrm.Certificate.pp_program_report report;

  (* And the abstract push/pull promise lists of Fig. 4. *)
  let valid =
    [ Pushpull.P_pull (1, "x"); Pushpull.P_write (1, "x", 5);
      Pushpull.P_push (1, "x"); Pushpull.P_pull (2, "x");
      Pushpull.P_write (2, "x", 6); Pushpull.P_push (2, "x") ]
  in
  let invalid =
    [ Pushpull.P_pull (1, "x"); Pushpull.P_pull (2, "x") ]
  in
  Format.printf "@.Fig. 4 promise lists: valid=%b, double-pull valid=%b@."
    (Result.is_ok (Pushpull.promise_list_valid valid))
    (Result.is_ok (Pushpull.promise_list_valid invalid))
