(* Live VM migration between two SeKVM hosts, and why it forces the
   *weak* Memory-Isolation condition (paper §4.3): the hypervisor must
   read VM memory to export it, so the strong "never read user memory"
   condition cannot hold — but the reads are data-oracle-mediated, which
   is exactly what Theorem 4 needs.

   Run with: dune exec examples/migration.exe *)

open Sekvm
open Machine

let () =
  Format.printf "== VM migration across SeKVM hosts ==@.@.";
  let cfg = Kcore.default_boot_config in

  (* source host: boot a VM and let the guest compute something *)
  let src = Kcore.boot cfg in
  let src_kserv = Kserv.create src ~first_free_pfn:(Kcore.kserv_base cfg) in
  let vmid =
    match Kserv.boot_vm src_kserv ~cpu:0 ~n_vcpus:2 ~image_pages:2 with
    | Ok v -> v
    | Error _ -> failwith "boot"
  in
  ignore
    (Kserv.run_guest src_kserv ~cpu:1 ~vmid ~vcpuid:0
       [ Vm.G_write (Page_table.page_va 50, 31337);
         Vm.G_ipi (1, 3) ]);
  Format.printf "source: VM %d running, guest state written@." vmid;

  (* snapshot first (cheap): digests for incremental migration rounds *)
  let snap = Kcore.snapshot_vm src ~cpu:0 ~vmid in
  Format.printf "snapshot: %d pages digested@." (List.length snap);

  (* export: KCore reads the VM pages (oracle-mediated information flow) *)
  let pages = Kcore.export_vm src ~cpu:0 ~vmid in
  let iso = Vrm.Check_isolation.check src in
  Format.printf
    "export: %d pages; weak isolation holds: %b; strong isolation holds: \
     %b (broken by the export reads, as §4.3 predicts)@.@."
    (List.length pages) iso.Vrm.Check_isolation.holds
    iso.Vrm.Check_isolation.strong_holds;

  (* destination host: import and resume *)
  let dst = Kcore.boot cfg in
  let dst_kserv = Kserv.create dst ~first_free_pfn:(Kcore.kserv_base cfg) in
  let new_vmid =
    Kcore.import_vm dst ~cpu:0 ~pages
      ~donate:(fun () -> Kserv.alloc_page dst_kserv)
      ~n_vcpus:2
  in
  (match
     Kserv.run_guest dst_kserv ~cpu:1 ~vmid:new_vmid ~vcpuid:0
       [ Vm.G_read (Page_table.page_va 50) ]
   with
  | [ Vm.R_value v ] ->
      Format.printf "destination: VM %d resumed, guest reads %d (intact)@."
        new_vmid v
  | _ -> Format.printf "destination: guest read failed@.");

  (* protection survives the migration *)
  let pfn =
    List.hd (S2page.pages_owned_by dst.Kcore.s2page (S2page.Vm new_vmid))
  in
  (match Kserv.attack_read_vm_page dst_kserv ~cpu:0 ~pfn with
  | Error `Denied ->
      Format.printf "destination host cannot read the migrated VM: DENIED@."
  | Ok _ -> Format.printf "BUG: migrated VM readable!@.");
  Format.printf "source invariants: %d violations; destination: %d@."
    (List.length (Kcore.check_invariants src))
    (List.length (Kcore.check_invariants dst))
