examples/vm_lifecycle.ml: Format Kcore Kserv Kvm_baseline List Machine Page_table Phys_mem S2page Sekvm Vm
