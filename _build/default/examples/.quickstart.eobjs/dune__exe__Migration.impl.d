examples/migration.ml: Format Kcore Kserv List Machine Page_table S2page Sekvm Vm Vrm
