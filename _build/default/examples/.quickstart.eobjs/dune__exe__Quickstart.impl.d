examples/quickstart.ml: Behavior Expr Format Instr List Memmodel Prog Promising Pushpull Reg Result Sc Sekvm Vrm
