examples/litmus_gallery.ml: Behavior Format List Litmus Litmus_suite Machine Memmodel Mmu_walker Page_pool Page_table Paper_examples Phys_mem Prog Pte String Tlb_sim Tso
