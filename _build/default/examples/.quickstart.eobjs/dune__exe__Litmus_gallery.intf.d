examples/litmus_gallery.mli:
