examples/vm_lifecycle.mli:
