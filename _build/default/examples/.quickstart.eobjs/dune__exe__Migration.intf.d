examples/migration.mli:
