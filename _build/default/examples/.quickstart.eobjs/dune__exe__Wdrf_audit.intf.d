examples/wdrf_audit.mli:
