examples/quickstart.mli:
