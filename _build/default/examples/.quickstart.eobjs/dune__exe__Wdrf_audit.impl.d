examples/wdrf_audit.ml: Format List Sekvm Vrm
