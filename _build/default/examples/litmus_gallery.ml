(* The full litmus gallery: the paper's §2 examples (1, 2, 3, 7 as DSL
   programs; 4, 5, 6 on the machine substrate) plus the classic
   validation suite (MP, SB, LB, CoRR), each run exhaustively under the
   SC and Promising Arm models.

   Run with: dune exec examples/litmus_gallery.exe *)

open Memmodel

let rule () = Format.printf "%s@." (String.make 74 '-')

let () =
  Format.printf "== Litmus gallery: SC vs x86-TSO vs Promising Arm ==@.@.";
  Format.printf "%-26s %-10s %-10s %-10s %s@." "test" "SC" "x86-TSO"
    "Arm (RM)" "verdict";
  rule ();
  List.iter
    (fun t ->
      let r = Litmus.run t in
      let tso_sat =
        Behavior.satisfiable t.Litmus.exists (Tso.run ~fuel:3 t.Litmus.prog)
      in
      Format.printf "%-26s %-10s %-10s %-10s %s@."
        t.Litmus.prog.Prog.name
        (if r.Litmus.sc_sat then "REACHABLE" else "no")
        (if tso_sat then "REACHABLE" else "no")
        (if r.Litmus.rm_sat then "REACHABLE" else "no")
        (if r.Litmus.as_expected then "ok" else "UNEXPECTED"))
    (Paper_examples.all @ Litmus_suite.all);
  rule ();
  Format.printf
    "note the middle column: the barrier-less lock and vCPU bugs are \
     x86-TSO-safe@.but Arm-broken — the gap VRM exists to close (paper \
     §1).@.@.";

  (* Example 7's signal is a kernel panic reachable only on RM. *)
  let r7 = Litmus.run Paper_examples.example7 in
  Format.printf
    "example7 detail: kernel divide-by-zero reachable on SC: %b, on RM: %b@.@."
    r7.Litmus.sc_panic r7.Litmus.rm_panic;

  (* Examples 4/5: racy MMU walks against in-flight page-table writes. *)
  Format.printf "== Examples 4/5: hardware walker vs page-table writes ==@.";
  let open Machine in
  let mem = Phys_mem.create 64 in
  let pool = Page_pool.create ~name:"demo" ~mem ~first_pfn:1 ~n_pages:32 in
  let g = Page_table.three_level in
  let root = Page_pool.alloc pool in
  (* map ipa of page 0x80 -> frame 0x10 *)
  let map va pfn =
    match
      Page_table.plan_map mem g ~pool ~root ~va ~target_pfn:pfn ~perms:Pte.rw
    with
    | Ok ws -> Page_table.apply_writes mem ws
    | Error `Already_mapped -> assert false
  in
  map (Page_table.page_va 0x80) 0x10;
  (* Example 5's batch: clear the intermediate entry while installing a
     new leaf in the same (still reachable) leaf table *)
  let l1 =
    match Pte.decode (Phys_mem.read mem ~pfn:root ~idx:(Page_table.index g ~level:2 (Page_table.page_va 0x80))) with
    | Pte.Table l1 -> l1
    | _ -> assert false
  in
  let leaf_table =
    match Pte.decode (Phys_mem.read mem ~pfn:l1 ~idx:(Page_table.index g ~level:1 (Page_table.page_va 0x80))) with
    | Pte.Table t -> t
    | _ -> assert false
  in
  let va2 = Page_table.page_va 0x81 in
  let writes =
    [ { Page_table.w_pfn = l1;
        w_idx = Page_table.index g ~level:1 (Page_table.page_va 0x80);
        w_old = Phys_mem.read mem ~pfn:l1 ~idx:(Page_table.index g ~level:1 (Page_table.page_va 0x80));
        w_new = Pte.encode Pte.Invalid };
      { Page_table.w_pfn = leaf_table;
        w_idx = Page_table.index g ~level:0 va2;
        w_old = 0;
        w_new = Pte.encode (Pte.Page (0x20, Pte.rw)) } ]
  in
  let obs = Mmu_walker.walk_relaxed mem g ~root ~pending:writes va2 in
  Format.printf
    "Example 5 batch: walker can observe %d results for the neighbour \
     address:@."
    (List.length obs);
  List.iter
    (fun o -> Format.printf "  %s@." (Page_table.show_walk_result o))
    obs;
  let bad =
    Mmu_walker.transactional_violations mem g ~root ~writes ~vas:[ va2 ]
  in
  Format.printf
    "transactional? %b  (the mapping to frame 0x20 is a forbidden \
     intermediate state)@.@."
    (bad = []);

  (* Example 6: the TLB refill race. *)
  Format.printf "== Example 6: TLB invalidation ordering ==@.";
  Format.printf
    "unmap;tlbi (no barrier): stale TLB entry possible = %b@."
    (Tlb_sim.stale_tlb_possible Tlb_sim.unmap_no_barrier);
  Format.printf
    "unmap;DSB;tlbi         : stale TLB entry possible = %b@."
    (Tlb_sim.stale_tlb_possible Tlb_sim.unmap_with_barrier)
