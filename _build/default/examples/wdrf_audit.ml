(* The wDRF audit: certify that SeKVM satisfies the six wDRF conditions
   (paper §5) for a selection of the verified KVM versions, and show the
   checkers rejecting the seeded buggy variants.

   Run with: dune exec examples/wdrf_audit.exe *)

let () =
  Format.printf "== wDRF conditions (paper §3) ==@.@.";
  List.iter
    (fun c ->
      Format.printf "%-28s %s@.  discharged by %s@." c.Vrm.Conditions.name
        c.Vrm.Conditions.statement c.Vrm.Conditions.checker)
    Vrm.Conditions.all;

  Format.printf "@.== Certifying Linux 4.18 / 4-level stage-2 ==@.@.";
  let r =
    Vrm.Certificate.certify
      { Sekvm.Kernel_progs.linux = "4.18"; stage2_levels = 4 }
  in
  Format.printf "%a@.@." Vrm.Certificate.pp_report r;

  Format.printf "== All verified versions (paper §5.6) ==@.@.";
  Format.printf "%-8s %-8s %s@." "linux" "stage-2" "certified";
  List.iter
    (fun v ->
      let r = Vrm.Certificate.certify v in
      Format.printf "%-8s %-8d %b@." v.Sekvm.Kernel_progs.linux
        v.Sekvm.Kernel_progs.stage2_levels r.Vrm.Certificate.certified)
    Sekvm.Kernel_progs.versions
