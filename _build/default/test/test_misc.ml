(* Coverage batch: trace sectioning, behavior printing, executor budget
   edges, the Figure 3 witness shape, host lazy mappings, baseline guest
   reads, image determinism, and the SC-trace linearization invariants. *)

open Memmodel

(* ---- Figure 3: the promising execution of Example 1, exactly ---- *)

let test_figure3_witness_shape () =
  let prog = Paper_examples.example1.Litmus.prog in
  let _, ws =
    Promising.run_with_witnesses
      ~config:{ Promising.default_config with max_promises = 1 }
      prog
  in
  let relaxed =
    Behavior.outcome
      [ (Prog.Obs_reg (1, Reg.v "r0"), 1); (Prog.Obs_reg (2, Reg.v "r1"), 1) ]
  in
  match List.assoc_opt relaxed ws with
  | None -> Alcotest.fail "relaxed outcome missing"
  | Some steps ->
      let shape =
        List.map
          (fun s -> (s.Promising.s_tid, s.Promising.s_what))
          steps
      in
      (* the paper's Fig. 3: CPU1 promises y:=1; CPU2 reads it and
         forwards to x; CPU1 reads x=1 and fulfils the promise *)
      Alcotest.(check (list (pair int string)))
        "figure 3"
        [ (1, "promises [y] := 1");
          (2, "r1 := [y]  (reads 1)");
          (2, "[x] := 1");
          (1, "r0 := [x]  (reads 1)");
          (1, "[y] := 1  (fulfils an earlier promise)") ]
        shape

(* ---- executor budget edges ---- *)

let test_promising_state_budget () =
  (* a tiny max_states silently truncates exploration (the safety valve);
     the result is a subset of the full set, never garbage *)
  let prog = Paper_examples.sb.Litmus.prog in
  let full = Promising.run ~config:{ Promising.default_config with max_promises = 0 } prog in
  let cut =
    Promising.run
      ~config:{ Promising.default_config with max_promises = 0; max_states = 5 }
      prog
  in
  Alcotest.(check bool) "truncated subset" true (Behavior.subset cut full)

let test_sc_zero_fuel_loop () =
  let prog =
    Prog.make ~name:"z"
      ~observables:[ Prog.Obs_loc (Loc.v "x") ]
      [ Prog.thread 0 [ Instr.while_ (Expr.Bool true) [ Instr.Nop ] ] ]
  in
  Alcotest.(check bool) "reports fuel exhaustion" true
    (Behavior.any_fuel_exhausted (Sc.run ~fuel:0 prog))

(* ---- behavior pretty-printing ---- *)

let test_behavior_printers () =
  let o =
    Behavior.outcome ~status:Behavior.Panicked
      [ (Prog.Obs_loc (Loc.v ~index:2 "pte"), 7) ]
  in
  Alcotest.(check string) "outcome print" "{[pte[2]]=7} PANIC"
    (Format.asprintf "%a" Behavior.pp_outcome o);
  let s = Format.asprintf "%a" Behavior.pp (Behavior.add o Behavior.empty) in
  Alcotest.(check bool) "set print" true (String.length s > 0)

(* ---- trace sectioning ---- *)

let test_trace_sections () =
  let open Sekvm in
  let t = Trace.create () in
  Trace.record t (Trace.E_section_begin { cpu = 0; what = "op" });
  Trace.record t (Trace.E_dsb 0);
  Trace.record t (Trace.E_section_end { cpu = 0; what = "op" });
  Trace.record t (Trace.E_section_begin { cpu = 1; what = "op" });
  Trace.record t (Trace.E_tlbi { cpu = 1; scope = Trace.Tlbi_all });
  Trace.record t (Trace.E_section_end { cpu = 1; what = "op" });
  let ss = Trace.sections t ~what:"op" in
  Alcotest.(check int) "two sections" 2 (List.length ss);
  Alcotest.(check int) "one event each" 1 (List.length (List.hd ss));
  (* disabling the recorder drops events *)
  t.Trace.enabled <- false;
  Trace.record t (Trace.E_dsb 9);
  Alcotest.(check int) "disabled" 6 (Trace.length t)

(* ---- host lazy mapping and baseline ---- *)

let test_kserv_lazy_mapping () =
  let open Sekvm in
  let cfg = Kcore.default_boot_config in
  let kcore = Kcore.boot cfg in
  let kserv = Kserv.create kcore ~first_free_pfn:(Kcore.kserv_base cfg) in
  let pfn = Kserv.alloc_page kserv in
  (* first read faults the page in, then succeeds *)
  (match Kserv.host_read kserv ~cpu:0 ~pfn ~idx:0 with
  | Ok 0 -> ()
  | _ -> Alcotest.fail "lazy fault-in failed");
  Alcotest.(check bool) "now mapped" true
    (Npt.is_mapped kcore.Kcore.kserv_npt
       ~ipa:(Machine.Page_table.page_va pfn))

let test_baseline_guest_read () =
  let open Sekvm in
  let kvm =
    Kvm_baseline.boot ~n_pages:128 ~n_cpus:1 ~tlb_capacity:8
      ~geometry:Machine.Page_table.three_level
  in
  let vmid = Kvm_baseline.register_vm kvm in
  (match Kvm_baseline.guest_read kvm ~cpu:0 ~vmid ~addr:0 with
  | Error `Fault -> ()
  | Ok _ -> Alcotest.fail "unmapped read succeeded");
  let pfn = Kvm_baseline.alloc_page kvm in
  Kvm_baseline.map_page kvm ~cpu:0 ~vmid ~ipa:0 ~pfn;
  Kvm_baseline.host_write kvm ~pfn ~idx:0 99;
  (match Kvm_baseline.guest_read kvm ~cpu:0 ~vmid ~addr:0 with
  | Ok v -> Alcotest.(check int) "reads through" 99 v
  | Error `Fault -> Alcotest.fail "mapped read faulted");
  (* second read hits the TLB *)
  let hits = kvm.Kvm_baseline.cpus.(0).Machine.Cpu.tlb.Machine.Tlb.hits in
  ignore (Kvm_baseline.guest_read kvm ~cpu:0 ~vmid ~addr:0);
  Alcotest.(check int) "tlb hit" (hits + 1)
    kvm.Kvm_baseline.cpus.(0).Machine.Cpu.tlb.Machine.Tlb.hits

(* ---- image determinism ---- *)

let test_image_deterministic () =
  let open Sekvm in
  let mem1 = Machine.Phys_mem.create 8 and mem2 = Machine.Phys_mem.create 8 in
  Vm.write_image mem1 ~vmid:3 [ 1; 2 ];
  Vm.write_image mem2 ~vmid:3 [ 1; 2 ];
  Alcotest.(check int) "same hash" (Vm.image_hash mem1 [ 1; 2 ])
    (Vm.image_hash mem2 [ 1; 2 ]);
  Vm.write_image mem2 ~vmid:4 [ 1; 2 ];
  Alcotest.(check bool) "vmid-dependent" true
    (Vm.image_hash mem1 [ 1; 2 ] <> Vm.image_hash mem2 [ 1; 2 ])

(* ---- partial-order linearization is a permutation ---- *)

let test_linearize_is_permutation () =
  let e = Sekvm.Kernel_progs.share_page in
  List.iter
    (fun tr ->
      let a =
        Vrm.Partial_order.analyze ~tracked:[ "s2_shared"; "s2_mapcount" ] tr
      in
      let lin = Vrm.Partial_order.linearize a in
      Alcotest.(check int) "same cardinality"
        (List.length a.Vrm.Partial_order.accesses)
        (List.length lin);
      List.iter
        (fun x ->
          Alcotest.(check bool) "present" true (List.memq x lin))
        a.Vrm.Partial_order.accesses)
    (Pushpull.traces ~exempt:e.Sekvm.Kernel_progs.exempt ~max_traces:8
       e.Sekvm.Kernel_progs.prog)

(* ---- conditions metadata ---- *)

let test_condition_checker_names_exist () =
  List.iter
    (fun c ->
      Alcotest.(check bool) "checker module named" true
        (String.length c.Vrm.Conditions.checker > 4))
    Vrm.Conditions.all

let () =
  Alcotest.run "misc"
    [ ( "witnesses",
        [ Alcotest.test_case "figure 3 shape" `Quick
            test_figure3_witness_shape ] );
      ( "budgets",
        [ Alcotest.test_case "promising state budget" `Quick
            test_promising_state_budget;
          Alcotest.test_case "sc zero fuel" `Quick test_sc_zero_fuel_loop ] );
      ( "printing",
        [ Alcotest.test_case "behavior printers" `Quick
            test_behavior_printers ] );
      ( "traces",
        [ Alcotest.test_case "sections" `Quick test_trace_sections ] );
      ( "hosts",
        [ Alcotest.test_case "kserv lazy mapping" `Quick
            test_kserv_lazy_mapping;
          Alcotest.test_case "baseline guest read" `Quick
            test_baseline_guest_read;
          Alcotest.test_case "image determinism" `Quick
            test_image_deterministic ] );
      ( "partial-order",
        [ Alcotest.test_case "linearize permutation" `Quick
            test_linearize_is_permutation ] );
      ( "metadata",
        [ Alcotest.test_case "condition checkers" `Quick
            test_condition_checker_names_exist ] ) ]
