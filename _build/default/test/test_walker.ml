(* Tests for the racy hardware page-table walker and the semantic
   Transactional-Page-Table judgment (paper Examples 4 and 5). *)

open Machine

let g = Page_table.three_level

let fresh () =
  let mem = Phys_mem.create 64 in
  let pool = Page_pool.create ~name:"w" ~mem ~first_pfn:1 ~n_pages:40 in
  let root = Page_pool.alloc pool in
  (mem, pool, root)

let map mem pool root vp pfn =
  match
    Page_table.plan_map mem g ~pool ~root ~va:(Page_table.page_va vp)
      ~target_pfn:pfn ~perms:Pte.rw
  with
  | Ok ws ->
      Page_table.apply_writes mem ws;
      ws
  | Error `Already_mapped -> Alcotest.fail "map failed"

let plan_map mem pool root vp pfn =
  match
    Page_table.plan_map mem g ~pool ~root ~va:(Page_table.page_va vp)
      ~target_pfn:pfn ~perms:Pte.rw
  with
  | Ok ws -> ws
  | Error `Already_mapped -> Alcotest.fail "plan failed"

let test_no_pending_equals_walk () =
  let mem, pool, root = fresh () in
  ignore (map mem pool root 5 20);
  let obs = Mmu_walker.walk_relaxed mem g ~root ~pending:[] (Page_table.page_va 5) in
  Alcotest.(check int) "deterministic" 1 (List.length obs);
  Alcotest.(check bool) "equals the atomic walk" true
    (List.hd obs = Page_table.walk mem g ~root (Page_table.page_va 5))

let test_fresh_map_is_transactional () =
  (* a deep set_s2pt (allocating intermediate tables): any partial view
     faults, so the batch is transactional *)
  let mem, pool, root = fresh () in
  let writes = plan_map mem pool root 9 30 in
  Alcotest.(check bool) "multiple writes" true (List.length writes > 1);
  let obs =
    Mmu_walker.walk_relaxed mem g ~root ~pending:writes (Page_table.page_va 9)
  in
  Alcotest.(check bool) "mapped state observable" true
    (List.mem (Page_table.Mapped (30, Pte.rw)) obs);
  Alcotest.(check bool) "everything else faults" true
    (List.for_all
       (fun o -> o = Page_table.Mapped (30, Pte.rw) || Mmu_walker.is_fault o)
       obs);
  let bad =
    Mmu_walker.transactional_violations mem g ~root ~writes
      ~vas:[ Page_table.page_va 9 ]
  in
  Alcotest.(check int) "no violations" 0 (List.length bad)

let test_single_write_unmap_transactional () =
  let mem, pool, root = fresh () in
  ignore (map mem pool root 5 20);
  match Page_table.plan_unmap mem g ~root ~va:(Page_table.page_va 5) with
  | None -> Alcotest.fail "expected a plan"
  | Some w ->
      let bad =
        Mmu_walker.transactional_violations mem g ~root ~writes:[ w ]
          ~vas:[ Page_table.page_va 5 ]
      in
      Alcotest.(check int) "unmap transactional" 0 (List.length bad)

let test_example5_not_transactional () =
  (* map vp 5; then in one batch: clear its level-1 entry AND install a
     new leaf for vp 6 in the still-reachable leaf table *)
  let mem, pool, root = fresh () in
  ignore (map mem pool root 5 20);
  let l2_idx = Page_table.index g ~level:2 (Page_table.page_va 5) in
  let l1 =
    match Pte.decode (Phys_mem.read mem ~pfn:root ~idx:l2_idx) with
    | Pte.Table t -> t
    | _ -> Alcotest.fail "no l1"
  in
  let l1_idx = Page_table.index g ~level:1 (Page_table.page_va 5) in
  let leaf =
    match Pte.decode (Phys_mem.read mem ~pfn:l1 ~idx:l1_idx) with
    | Pte.Table t -> t
    | _ -> Alcotest.fail "no leaf table"
  in
  let writes =
    [ { Page_table.w_pfn = l1; w_idx = l1_idx;
        w_old = Phys_mem.read mem ~pfn:l1 ~idx:l1_idx;
        w_new = Pte.encode Pte.Invalid };
      { Page_table.w_pfn = leaf;
        w_idx = Page_table.index g ~level:0 (Page_table.page_va 6);
        w_old = 0;
        w_new = Pte.encode (Pte.Page (31, Pte.rw)) } ]
  in
  let bad =
    Mmu_walker.transactional_violations mem g ~root ~writes
      ~vas:[ Page_table.page_va 5; Page_table.page_va 6 ]
  in
  Alcotest.(check bool) "violation found" true (bad <> []);
  Alcotest.(check bool) "witness is the forbidden new mapping" true
    (List.exists
       (fun (_, obs) -> obs = Page_table.Mapped (31, Pte.rw))
       bad)

let test_example4_per_read_independence () =
  (* two leaf updates in flight: a walker can observe one new and one old
     (each read independent), which is exactly Example 4's reordering *)
  let mem, pool, root = fresh () in
  ignore (map mem pool root 0x80 0x10);
  ignore (map mem pool root 0x81 0x11);
  let w80 =
    match Page_table.plan_unmap mem g ~root ~va:(Page_table.page_va 0x80) with
    | Some w -> { w with Page_table.w_new = Pte.encode (Pte.Page (0x20, Pte.rw)) }
    | None -> Alcotest.fail "no plan"
  in
  let w81 =
    match Page_table.plan_unmap mem g ~root ~va:(Page_table.page_va 0x81) with
    | Some w -> { w with Page_table.w_new = Pte.encode (Pte.Page (0x21, Pte.rw)) }
    | None -> Alcotest.fail "no plan"
  in
  let pending = [ w80; w81 ] in
  let obs80 = Mmu_walker.walk_relaxed mem g ~root ~pending (Page_table.page_va 0x80) in
  let obs81 = Mmu_walker.walk_relaxed mem g ~root ~pending (Page_table.page_va 0x81) in
  (* each address can independently be seen old or new *)
  Alcotest.(check bool) "0x80 old visible" true
    (List.mem (Page_table.Mapped (0x10, Pte.rw)) obs80);
  Alcotest.(check bool) "0x80 new visible" true
    (List.mem (Page_table.Mapped (0x20, Pte.rw)) obs80);
  Alcotest.(check bool) "0x81 old visible" true
    (List.mem (Page_table.Mapped (0x11, Pte.rw)) obs81);
  Alcotest.(check bool) "0x81 new visible" true
    (List.mem (Page_table.Mapped (0x21, Pte.rw)) obs81)

let test_remap_single_entry_is_transactional () =
  (* remapping one leaf in place (single word): old/new only — the reason
     Example 4's behavior is about *pairs* of addresses, not one *)
  let mem, pool, root = fresh () in
  ignore (map mem pool root 5 20);
  match Page_table.plan_unmap mem g ~root ~va:(Page_table.page_va 5) with
  | None -> Alcotest.fail "plan"
  | Some w ->
      let w = { w with Page_table.w_new = Pte.encode (Pte.Page (21, Pte.rw)) } in
      let bad =
        Mmu_walker.transactional_violations mem g ~root ~writes:[ w ]
          ~vas:[ Page_table.page_va 5 ]
      in
      Alcotest.(check int) "single-word remap transactional" 0
        (List.length bad)

let qcheck_fresh_maps_always_transactional =
  QCheck.Test.make ~name:"walk-allocate-set batches are transactional"
    ~count:60
    QCheck.(pair (int_bound 2000) (int_bound 30))
    (fun (vp, pfn) ->
      let mem, pool, root = fresh () in
      let writes = plan_map mem pool root vp pfn in
      Mmu_walker.transactional_violations mem g ~root ~writes
        ~vas:[ Page_table.page_va vp; Page_table.page_va (vp + 1) ]
      = [])

let () =
  Alcotest.run "walker"
    [ ( "relaxed-walk",
        [ Alcotest.test_case "no pending = atomic walk" `Quick
            test_no_pending_equals_walk;
          Alcotest.test_case "example 4: independent reads" `Quick
            test_example4_per_read_independence ] );
      ( "transactional",
        [ Alcotest.test_case "fresh map" `Quick test_fresh_map_is_transactional;
          Alcotest.test_case "unmap" `Quick
            test_single_write_unmap_transactional;
          Alcotest.test_case "single-entry remap" `Quick
            test_remap_single_entry_is_transactional;
          Alcotest.test_case "example 5 rejected" `Quick
            test_example5_not_transactional;
          QCheck_alcotest.to_alcotest qcheck_fresh_maps_always_transactional ]
      ) ]
