(* End-to-end certification tests: the full wDRF certificate for both
   stage-2 geometries, the per-program expectations of the corpus, and
   the structure of the report. *)

let test_certify_4level () =
  let r =
    Vrm.Certificate.certify
      { Sekvm.Kernel_progs.linux = "4.18"; stage2_levels = 4 }
  in
  Alcotest.(check bool) "certified" true r.Vrm.Certificate.certified

let test_certify_3level () =
  let r =
    Vrm.Certificate.certify
      { Sekvm.Kernel_progs.linux = "5.4"; stage2_levels = 3 }
  in
  Alcotest.(check bool) "certified" true r.Vrm.Certificate.certified

let test_program_audits_match_expectations () =
  List.iter
    (fun (e : Sekvm.Kernel_progs.entry) ->
      let p = Vrm.Certificate.audit_program e in
      Alcotest.(check bool)
        (e.Sekvm.Kernel_progs.name ^ " as expected")
        true p.Vrm.Certificate.as_expected)
    (Sekvm.Kernel_progs.corpus @ Sekvm.Kernel_progs.buggy_corpus)

let test_buggy_fail_the_right_condition () =
  let audit e = Vrm.Certificate.audit_program e in
  let p = audit Sekvm.Kernel_progs.vmid_alloc_nobarrier in
  Alcotest.(check bool) "nobarrier: drf still holds" true
    p.Vrm.Certificate.drf.Vrm.Check_drf.holds;
  Alcotest.(check bool) "nobarrier: barrier check fails" false
    p.Vrm.Certificate.barrier.Vrm.Check_barrier.holds;
  let p = audit Sekvm.Kernel_progs.unlocked_counter in
  Alcotest.(check bool) "unlocked: drf fails" false
    p.Vrm.Certificate.drf.Vrm.Check_drf.holds;
  Alcotest.(check bool) "unlocked: barrier vacuously holds" true
    p.Vrm.Certificate.barrier.Vrm.Check_barrier.holds

let test_system_report_details () =
  let r =
    Vrm.Certificate.certify
      { Sekvm.Kernel_progs.linux = "4.18"; stage2_levels = 4 }
  in
  let s = r.Vrm.Certificate.system in
  Alcotest.(check bool) "write-once" true
    s.Vrm.Certificate.write_once.Vrm.Check_write_once.holds;
  Alcotest.(check bool) "tlbi" true s.Vrm.Certificate.tlbi.Vrm.Check_tlbi.holds;
  Alcotest.(check bool) "tlbi checked unmaps" true
    (s.Vrm.Certificate.tlbi.Vrm.Check_tlbi.unmaps_checked > 0);
  Alcotest.(check bool) "deep map multi-write" true
    (s.Vrm.Certificate.transactional_map_deep.Vrm.Check_transactional.n_writes
     > 1);
  Alcotest.(check bool) "example5 rejected" true
    s.Vrm.Certificate.example5_rejected;
  Alcotest.(check bool) "isolation" true
    s.Vrm.Certificate.isolation.Vrm.Check_isolation.holds;
  Alcotest.(check bool) "attacks denied" true s.Vrm.Certificate.attacks_denied;
  Alcotest.(check bool) "oracle independent" true
    s.Vrm.Certificate.oracle_independent

let test_all_versions_certify () =
  (* §5.6: all ten version/geometry combinations *)
  let reports = Vrm.Certificate.certify_all () in
  Alcotest.(check int) "ten combinations" 10 (List.length reports);
  List.iter
    (fun (r : Vrm.Certificate.report) ->
      Alcotest.(check bool)
        (Printf.sprintf "Linux %s %d-level certified"
           r.Vrm.Certificate.version.Sekvm.Kernel_progs.linux
           r.Vrm.Certificate.version.Sekvm.Kernel_progs.stage2_levels)
        true r.Vrm.Certificate.certified)
    reports

let test_report_printable () =
  let r =
    Vrm.Certificate.certify
      { Sekvm.Kernel_progs.linux = "4.18"; stage2_levels = 4 }
  in
  let s = Format.asprintf "%a" Vrm.Certificate.pp_report r in
  Alcotest.(check bool) "mentions certification" true
    (String.length s > 200)

let test_conditions_catalogue () =
  Alcotest.(check int) "six conditions" 6 (List.length Vrm.Conditions.all);
  List.iter
    (fun cid ->
      let c = Vrm.Conditions.find cid in
      Alcotest.(check bool) "has statement" true (String.length c.Vrm.Conditions.statement > 0))
    [ Vrm.Conditions.Drf_kernel; Vrm.Conditions.No_barrier_misuse;
      Vrm.Conditions.Write_once_kernel_mapping;
      Vrm.Conditions.Transactional_page_table;
      Vrm.Conditions.Sequential_tlb_invalidation;
      Vrm.Conditions.Memory_isolation ]

let () =
  Alcotest.run "certificate"
    [ ( "versions",
        [ Alcotest.test_case "4-level certified" `Slow test_certify_4level;
          Alcotest.test_case "3-level certified" `Slow test_certify_3level;
          Alcotest.test_case "all ten versions (§5.6)" `Slow
            test_all_versions_certify ] );
      ( "programs",
        [ Alcotest.test_case "corpus expectations" `Quick
            test_program_audits_match_expectations;
          Alcotest.test_case "buggy fail the right condition" `Quick
            test_buggy_fail_the_right_condition ] );
      ( "report",
        [ Alcotest.test_case "system details" `Slow test_system_report_details;
          Alcotest.test_case "printable" `Slow test_report_printable;
          Alcotest.test_case "conditions catalogue" `Quick
            test_conditions_catalogue ] ) ]
