(* Integration tests for KCore: boot layout, the EL2 write-once page
   table, VM lifecycle (registration, image authentication, faults,
   sharing, teardown), the vCPU run protocol, and the SMMU hypercalls.
   Security invariants are re-checked after every phase. *)

open Sekvm
open Machine

let cfg = Kcore.default_boot_config

let fresh () =
  let kcore = Kcore.boot cfg in
  let kserv = Kserv.create kcore ~first_free_pfn:(Kcore.kserv_base cfg) in
  (kcore, kserv)

let check_invariants kcore label =
  let bad = Kcore.check_invariants kcore in
  if bad <> [] then
    Alcotest.failf "%s: %d invariant violations (%s)" label (List.length bad)
      (String.concat "; " (List.map (fun v -> v.Kcore.detail) bad))

let test_boot_layout () =
  let kcore, _ = fresh () in
  (* everything below kserv_base is KCore's; above is KServ's *)
  Alcotest.(check bool) "page 0 kcore" true
    (S2page.owner kcore.Kcore.s2page 0 = S2page.Kcore);
  Alcotest.(check bool) "kserv_base boundary" true
    (S2page.owner kcore.Kcore.s2page (Kcore.kserv_base cfg) = S2page.Kserv);
  (* EL2 linear map covers all of physical memory 1:1 *)
  List.iter
    (fun pfn ->
      match El2_pt.translate kcore.Kcore.el2 ~va:(Page_table.page_va pfn) with
      | Some (p, _) -> Alcotest.(check int) "linear map" pfn p
      | None -> Alcotest.fail "linear map hole")
    [ 0; 1; 100; cfg.Kcore.n_pages - 1 ];
  check_invariants kcore "boot"

let test_el2_write_once () =
  let kcore, _ = fresh () in
  let el2 = kcore.Kcore.el2 in
  (* remap_pfn maps into the remap region and returns distinct VAs *)
  let va1 = El2_pt.remap_pfn el2 ~cpu:0 ~pfn:700 in
  let va2 = El2_pt.remap_pfn el2 ~cpu:0 ~pfn:701 in
  Alcotest.(check bool) "distinct VAs" true (va1 <> va2);
  Alcotest.(check bool) "above the linear map" true
    (Page_table.va_page va1 >= cfg.Kcore.n_pages);
  (match El2_pt.translate el2 ~va:va1 with
  | Some (p, perms) ->
      Alcotest.(check int) "maps the pfn" 700 p;
      Alcotest.(check bool) "read-only" false perms.Pte.writable
  | None -> Alcotest.fail "remap missing");
  (* overwriting a live mapping is refused *)
  (match
     El2_pt.set_el2_pt el2 ~cpu:0 ~va:va1 ~pfn:999 ~perms:Pte.rw
   with
  | Error `Already_mapped -> ()
  | Ok () -> Alcotest.fail "write-once violated");
  (* the trace checker agrees *)
  Alcotest.(check bool) "checker holds" true
    (Vrm.Check_write_once.check kcore.Kcore.trace).Vrm.Check_write_once.holds

let test_gen_vmid () =
  let kcore, _ = fresh () in
  let a = Kcore.gen_vmid kcore ~cpu:0 in
  let b = Kcore.gen_vmid kcore ~cpu:1 in
  Alcotest.(check bool) "unique" true (a <> b);
  Alcotest.(check int) "sequential" (a + 1) b;
  (* exhausting the space panics, per Fig. 1 *)
  let small = Kcore.boot { cfg with Kcore.max_vms = 2 } in
  let _ = Kcore.gen_vmid small ~cpu:0 in
  Alcotest.(check bool) "MAX_VM panic" true
    (try
       ignore (Kcore.gen_vmid small ~cpu:0);
       false
     with Kcore.Kcore_panic _ -> true)

let test_register_vcpu_errors () =
  let kcore, _ = fresh () in
  let vmid = Kcore.register_vm kcore ~cpu:0 in
  Kcore.register_vcpu kcore ~cpu:0 ~vmid ~vcpuid:0;
  Alcotest.(check bool) "duplicate vcpu panics" true
    (try
       Kcore.register_vcpu kcore ~cpu:0 ~vmid ~vcpuid:0;
       false
     with Kcore.Kcore_panic _ -> true);
  Alcotest.(check bool) "unknown vm panics" true
    (try
       Kcore.register_vcpu kcore ~cpu:0 ~vmid:99 ~vcpuid:0;
       false
     with Kcore.Kcore_panic _ -> true)

let test_image_authentication () =
  let kcore, kserv = fresh () in
  (match Kserv.boot_vm kserv ~cpu:0 ~tamper:true ~n_vcpus:1 ~image_pages:2 with
  | Error `Bad_hash -> ()
  | Error `Denied -> Alcotest.fail "expected Bad_hash"
  | Ok _ -> Alcotest.fail "tampered image accepted");
  (match Kserv.boot_vm kserv ~cpu:0 ~n_vcpus:1 ~image_pages:2 with
  | Ok vmid ->
      let vm = Kcore.find_vm kcore vmid in
      Alcotest.(check bool) "verified" true (vm.Kcore.vstate = Kcore.Verified);
      Alcotest.(check bool) "hash recorded" true (vm.Kcore.image_hash <> None);
      (* image pages now belong to the VM and are mapped at IPA 0.. *)
      let owned = S2page.pages_owned_by kcore.Kcore.s2page (S2page.Vm vmid) in
      Alcotest.(check int) "two image pages" 2 (List.length owned);
      (match Npt.translate vm.Kcore.npt ~ipa:0 with
      | Some _ -> ()
      | None -> Alcotest.fail "image not mapped");
      (* guest sees the exact image content *)
      (match Kserv.run_guest kserv ~cpu:1 ~vmid ~vcpuid:0 [ Vm.G_read 0 ] with
      | [ Vm.R_value v ] ->
          Alcotest.(check int) "image word" (Vm.image_words ~vmid ~page:0 0) v
      | _ -> Alcotest.fail "guest read failed")
  | Error _ -> Alcotest.fail "honest boot failed");
  check_invariants kcore "after boots"

let test_fault_path_transfers_ownership () =
  let kcore, kserv = fresh () in
  let vmid =
    match Kserv.boot_vm kserv ~cpu:0 ~n_vcpus:1 ~image_pages:1 with
    | Ok v -> v
    | Error _ -> Alcotest.fail "boot"
  in
  let faults0 = kcore.Kcore.s2_faults in
  let ipa = Page_table.page_va 50 in
  (match Kserv.run_guest kserv ~cpu:1 ~vmid ~vcpuid:0 [ Vm.G_write (ipa, 7); Vm.G_read ipa ] with
  | [ Vm.R_unit; Vm.R_value 7 ] -> ()
  | _ -> Alcotest.fail "fault path failed");
  Alcotest.(check int) "one fault handled" (faults0 + 1) kcore.Kcore.s2_faults;
  (* the backing page is VM-owned now *)
  let vm = Kcore.find_vm kcore vmid in
  (match Npt.translate vm.Kcore.npt ~ipa with
  | Some (pfn, _) ->
      Alcotest.(check bool) "owned by vm" true
        (S2page.owner kcore.Kcore.s2page pfn = S2page.Vm vmid);
      Alcotest.(check int) "map_count 1" 1
        (S2page.map_count kcore.Kcore.s2page pfn)
  | None -> Alcotest.fail "not mapped");
  check_invariants kcore "after faults"

let test_map_page_to_vm_validation () =
  let kcore, kserv = fresh () in
  let vmid =
    match Kserv.boot_vm kserv ~cpu:0 ~n_vcpus:1 ~image_pages:1 with
    | Ok v -> v
    | Error _ -> Alcotest.fail "boot"
  in
  (* donating a KCore page is denied *)
  (match Kcore.map_page_to_vm kcore ~cpu:0 ~vmid ~ipa:(Page_table.page_va 60) ~pfn:2 with
  | Error `Denied -> ()
  | Ok () -> Alcotest.fail "kcore page donated!");
  (* donating a page owned by another VM is denied *)
  let vm_pfn = List.hd (S2page.pages_owned_by kcore.Kcore.s2page (S2page.Vm vmid)) in
  (match Kcore.map_page_to_vm kcore ~cpu:0 ~vmid ~ipa:(Page_table.page_va 61) ~pfn:vm_pfn with
  | Error `Denied -> ()
  | Ok () -> Alcotest.fail "vm page re-donated!");
  (* a legitimate donation is scrubbed on transfer *)
  let pfn = Kserv.alloc_page kserv in
  (match Kserv.host_write kserv ~cpu:0 ~pfn ~idx:3 1234 with
  | Ok () -> ()
  | Error `Denied -> Alcotest.fail "kserv write");
  (match Kcore.map_page_to_vm kcore ~cpu:0 ~vmid ~ipa:(Page_table.page_va 62) ~pfn with
  | Ok () ->
      Alcotest.(check int) "scrubbed" 0 (Phys_mem.read kcore.Kcore.mem ~pfn ~idx:3)
  | Error `Denied -> Alcotest.fail "legit donation denied");
  check_invariants kcore "after donations"

let test_sharing_flow () =
  let kcore, kserv = fresh () in
  let vmid =
    match Kserv.boot_vm kserv ~cpu:0 ~n_vcpus:1 ~image_pages:1 with
    | Ok v -> v
    | Error _ -> Alcotest.fail "boot"
  in
  let ipa = Page_table.page_va 30 in
  (* populate, then share *)
  (match Kserv.run_guest kserv ~cpu:1 ~vmid ~vcpuid:0
           [ Vm.G_write (ipa, 55); Vm.G_share ipa ] with
  | [ Vm.R_unit; Vm.R_unit ] -> ()
  | _ -> Alcotest.fail "share failed");
  let vm = Kcore.find_vm kcore vmid in
  let pfn = match Npt.translate vm.Kcore.npt ~ipa with
    | Some (p, _) -> p
    | None -> Alcotest.fail "unmapped"
  in
  Alcotest.(check bool) "marked shared" true (S2page.is_shared kcore.Kcore.s2page pfn);
  (* KServ can now read it through its stage 2 *)
  (match Kserv.host_read kserv ~cpu:0 ~pfn ~idx:0 with
  | Ok v -> Alcotest.(check int) "kserv sees the ring" 55 v
  | Error `Denied -> Alcotest.fail "shared page unreadable");
  check_invariants kcore "while shared";
  (* unshare revokes KServ's view *)
  (match Kserv.run_guest kserv ~cpu:1 ~vmid ~vcpuid:0 [ Vm.G_unshare ipa ] with
  | [ Vm.R_unit ] -> ()
  | _ -> Alcotest.fail "unshare failed");
  Alcotest.(check bool) "not shared" false (S2page.is_shared kcore.Kcore.s2page pfn);
  (match Kserv.host_read kserv ~cpu:0 ~pfn ~idx:0 with
  | Error `Denied -> ()
  | Ok _ -> Alcotest.fail "unshared page still readable");
  check_invariants kcore "after unshare"

let test_vcpu_protocol () =
  let kcore, kserv = fresh () in
  let vmid =
    match Kserv.boot_vm kserv ~cpu:0 ~n_vcpus:2 ~image_pages:1 with
    | Ok v -> v
    | Error _ -> Alcotest.fail "boot"
  in
  Kcore.vcpu_load kcore ~cpu:1 ~vmid ~vcpuid:0;
  (* claiming an ACTIVE vCPU from another CPU must fail *)
  Alcotest.(check bool) "double claim rejected" true
    (try
       Kcore.vcpu_load kcore ~cpu:2 ~vmid ~vcpuid:0;
       false
     with Vcpu_ctxt.Protocol_violation _ -> true);
  (* a different vCPU is fine *)
  Kcore.vcpu_load kcore ~cpu:2 ~vmid ~vcpuid:1;
  Kcore.vcpu_put kcore ~cpu:1;
  Kcore.vcpu_put kcore ~cpu:2;
  (* after put, the context can be claimed again *)
  Kcore.vcpu_load kcore ~cpu:3 ~vmid ~vcpuid:0;
  Kcore.vcpu_put kcore ~cpu:3;
  (* teardown is refused while a vCPU is active *)
  Kcore.vcpu_load kcore ~cpu:3 ~vmid ~vcpuid:0;
  Alcotest.(check bool) "teardown with active vcpu panics" true
    (try
       Kcore.teardown_vm kcore ~cpu:0 ~vmid;
       false
     with Kcore.Kcore_panic _ -> true);
  Kcore.vcpu_put kcore ~cpu:3

let test_teardown_scrubs_and_returns () =
  let kcore, kserv = fresh () in
  let vmid =
    match Kserv.boot_vm kserv ~cpu:0 ~n_vcpus:1 ~image_pages:2 with
    | Ok v -> v
    | Error _ -> Alcotest.fail "boot"
  in
  let owned = S2page.pages_owned_by kcore.Kcore.s2page (S2page.Vm vmid) in
  Alcotest.(check bool) "has pages" true (owned <> []);
  Kcore.teardown_vm kcore ~cpu:0 ~vmid;
  List.iter
    (fun pfn ->
      Alcotest.(check bool) "returned to kserv" true
        (S2page.owner kcore.Kcore.s2page pfn = S2page.Kserv);
      for i = 0 to 8 do
        Alcotest.(check int) "scrubbed" 0 (Phys_mem.read kcore.Kcore.mem ~pfn ~idx:i)
      done)
    owned;
  Alcotest.(check bool) "torn down" true
    ((Kcore.find_vm kcore vmid).Kcore.vstate = Kcore.Torn_down);
  check_invariants kcore "after teardown"

let test_smmu_hypercalls () =
  let kcore, kserv = fresh () in
  let vmid =
    match Kserv.boot_vm kserv ~cpu:0 ~n_vcpus:1 ~image_pages:1 with
    | Ok v -> v
    | Error _ -> Alcotest.fail "boot"
  in
  (match Kcore.smmu_attach kcore ~cpu:0 ~device:7 ~owner:(S2page.Vm vmid) with
  | Ok () -> ()
  | Error `Denied -> Alcotest.fail "attach denied");
  (match Kcore.smmu_attach kcore ~cpu:0 ~device:7 ~owner:S2page.Kserv with
  | Error `Denied -> ()
  | Ok () -> Alcotest.fail "double attach allowed");
  let vm_pfn = List.hd (S2page.pages_owned_by kcore.Kcore.s2page (S2page.Vm vmid)) in
  (match Kcore.smmu_map kcore ~cpu:0 ~device:7 ~iova:0 ~pfn:vm_pfn with
  | Ok () -> ()
  | Error `Denied -> Alcotest.fail "legit dma map denied");
  (* DMA to a KCore page is denied *)
  (match Kcore.smmu_map kcore ~cpu:0 ~device:7 ~iova:4096 ~pfn:2 with
  | Error `Denied -> ()
  | Ok () -> Alcotest.fail "dma into kcore allowed");
  check_invariants kcore "with dma mapping";
  (match Kcore.smmu_unmap kcore ~cpu:0 ~device:7 ~iova:0 with
  | Ok () -> ()
  | Error `Denied -> Alcotest.fail "unmap denied");
  check_invariants kcore "after dma unmap"

let test_tlb_maintained_on_unmap () =
  (* after clear_s2pt the CPUs' TLBs hold no stale translation *)
  let kcore, kserv = fresh () in
  let vmid =
    match Kserv.boot_vm kserv ~cpu:0 ~n_vcpus:1 ~image_pages:1 with
    | Ok v -> v
    | Error _ -> Alcotest.fail "boot"
  in
  let ipa = Page_table.page_va 33 in
  (match Kserv.run_guest kserv ~cpu:1 ~vmid ~vcpuid:0
           [ Vm.G_write (ipa, 1); Vm.G_read ipa ] with
  | [ Vm.R_unit; Vm.R_value 1 ] -> ()
  | _ -> Alcotest.fail "populate failed");
  (* the read went through CPU 1's TLB; now unmap *)
  let vm = Kcore.find_vm kcore vmid in
  (match Npt.clear_s2pt vm.Kcore.npt ~cpu:0 ~ipa with
  | Ok () -> ()
  | Error `Not_mapped -> Alcotest.fail "unmap");
  Alcotest.(check (option int)) "TLB entry gone" None
    (Option.map fst
       (Tlb.lookup kcore.Kcore.cpus.(1).Cpu.tlb ~vmid ~vp:(Page_table.va_page ipa)))

let () =
  Alcotest.run "kcore"
    [ ( "boot",
        [ Alcotest.test_case "layout" `Quick test_boot_layout;
          Alcotest.test_case "el2 write-once" `Quick test_el2_write_once;
          Alcotest.test_case "gen_vmid" `Quick test_gen_vmid;
          Alcotest.test_case "register errors" `Quick
            test_register_vcpu_errors ] );
      ( "lifecycle",
        [ Alcotest.test_case "image authentication" `Quick
            test_image_authentication;
          Alcotest.test_case "fault path" `Quick
            test_fault_path_transfers_ownership;
          Alcotest.test_case "donation validation" `Quick
            test_map_page_to_vm_validation;
          Alcotest.test_case "sharing flow" `Quick test_sharing_flow;
          Alcotest.test_case "vcpu protocol" `Quick test_vcpu_protocol;
          Alcotest.test_case "teardown scrubs" `Quick
            test_teardown_scrubs_and_returns ] );
      ( "devices",
        [ Alcotest.test_case "smmu hypercalls" `Quick test_smmu_hypercalls;
          Alcotest.test_case "tlb maintained" `Quick
            test_tlb_maintained_on_unmap ] ) ]
