(* Tests for the executable wDRF theorem: behaviors(Promising Arm) ⊆
   behaviors(SC) for certified programs, with counterexample witnesses for
   the violating ones. *)

open Memmodel

let refine ?config prog = Vrm.Refinement.check ?config prog

let test_corpus_refines () =
  List.iter
    (fun (e : Sekvm.Kernel_progs.entry) ->
      let v = refine ~config:e.Sekvm.Kernel_progs.rm_config e.Sekvm.Kernel_progs.prog in
      Alcotest.(check bool)
        (e.Sekvm.Kernel_progs.name ^ " refines")
        e.Sekvm.Kernel_progs.expect.Sekvm.Kernel_progs.e_refine
        v.Vrm.Refinement.holds)
    (Sekvm.Kernel_progs.corpus @ Sekvm.Kernel_progs.buggy_corpus)

let test_witness_produced () =
  let e = Sekvm.Kernel_progs.vmid_alloc_nobarrier in
  let v = refine ~config:e.Sekvm.Kernel_progs.rm_config e.Sekvm.Kernel_progs.prog in
  Alcotest.(check bool) "violated" false v.Vrm.Refinement.holds;
  Alcotest.(check bool) "witness behavior exists" true
    (Behavior.cardinal v.Vrm.Refinement.rm_only > 0);
  (* the witness is the duplicated VMID *)
  Alcotest.(check bool) "witness is the duplicate-vmid behavior" true
    (Behavior.satisfiable
       (fun g ->
         g (Prog.Obs_reg (1, Reg.v "vmid")) = g (Prog.Obs_reg (2, Reg.v "vmid")))
       v.Vrm.Refinement.rm_only)

let test_fixed_litmus_refine () =
  List.iter
    (fun (t : Litmus.t) ->
      let v = refine ?config:t.Litmus.rm_config t.Litmus.prog in
      Alcotest.(check bool) (t.Litmus.prog.Prog.name ^ " refines") true
        v.Vrm.Refinement.holds)
    [ Paper_examples.mp_dmb; Paper_examples.mp_rel_acq; Paper_examples.sb_dmb;
      Paper_examples.lb_data; Paper_examples.corr;
      Paper_examples.example2_fixed; Paper_examples.example3_fixed ]

let test_buggy_litmus_do_not_refine () =
  List.iter
    (fun (t : Litmus.t) ->
      let v = refine ?config:t.Litmus.rm_config t.Litmus.prog in
      Alcotest.(check bool)
        (t.Litmus.prog.Prog.name ^ " has RM-only behavior")
        false v.Vrm.Refinement.holds)
    [ Paper_examples.example1; Paper_examples.example2_buggy;
      Paper_examples.example3_buggy; Paper_examples.mp_plain;
      Paper_examples.sb ]

let test_example7_rm_only_panic () =
  let t = Paper_examples.example7 in
  let v = refine ?config:t.Litmus.rm_config t.Litmus.prog in
  Alcotest.(check bool) "RM panics" true v.Vrm.Refinement.rm_panics;
  Alcotest.(check bool) "SC does not" false v.Vrm.Refinement.sc_panics;
  Alcotest.(check bool) "refinement fails on the panic" false
    v.Vrm.Refinement.holds

let test_sc_always_subset_of_rm () =
  (* the converse inclusion must hold unconditionally: the relaxed model
     can simulate every SC execution *)
  List.iter
    (fun (e : Sekvm.Kernel_progs.entry) ->
      let sc = Sc.run e.Sekvm.Kernel_progs.prog in
      let rm =
        Promising.run ~config:e.Sekvm.Kernel_progs.rm_config
          e.Sekvm.Kernel_progs.prog
      in
      let normals b =
        Behavior.Outcome_set.filter
          (fun o -> o.Behavior.status = Behavior.Normal)
          b
      in
      Alcotest.(check bool)
        (e.Sekvm.Kernel_progs.name ^ ": SC ⊆ RM")
        true
        (Behavior.subset (normals sc) (normals rm)))
    Sekvm.Kernel_progs.corpus

let test_witness_schedule () =
  let e = Sekvm.Kernel_progs.vmid_alloc_nobarrier in
  let v =
    Vrm.Refinement.check ~config:e.Sekvm.Kernel_progs.rm_config
      e.Sekvm.Kernel_progs.prog
  in
  match Vrm.Refinement.first_violation v with
  | None -> Alcotest.fail "expected a witness"
  | Some (_, steps) ->
      Alcotest.(check bool) "non-trivial schedule" true
        (List.length steps > 10);
      (* the witness is a concrete interleaving of both CPUs *)
      let tids =
        List.sort_uniq compare
          (List.map (fun s -> s.Memmodel.Promising.s_tid) steps)
      in
      Alcotest.(check (list int)) "both CPUs appear" [ 1; 2 ] tids;
      (* and it must contain CPU 2's stale read of next_vmid *)
      Alcotest.(check bool) "stale read present" true
        (List.exists
           (fun s ->
             s.Memmodel.Promising.s_tid = 2
             && s.Memmodel.Promising.s_what = "vmid := [next_vmid]  (reads 0)")
           steps)

let test_witness_for_every_rm_outcome () =
  (* every completed RM outcome of a small program has a recorded witness *)
  let t = Paper_examples.example1 in
  let rm, ws =
    Promising.run_with_witnesses
      ~config:{ Promising.default_config with max_promises = 1 }
      t.Litmus.prog
  in
  List.iter
    (fun (o : Behavior.outcome) ->
      Alcotest.(check bool) "witness exists" true
        (List.mem_assoc o ws))
    (Behavior.elements rm)

let test_behavior_set_ops () =
  let o1 = Behavior.outcome [ (Prog.Obs_loc (Loc.v "x"), 1) ] in
  let o2 = Behavior.outcome [ (Prog.Obs_loc (Loc.v "x"), 2) ] in
  let s1 = Behavior.add o1 Behavior.empty in
  let s12 = Behavior.add o2 s1 in
  Alcotest.(check bool) "subset" true (Behavior.subset s1 s12);
  Alcotest.(check bool) "not superset" false (Behavior.subset s12 s1);
  Alcotest.(check int) "diff" 1 (Behavior.cardinal (Behavior.diff s12 s1));
  Alcotest.(check bool) "union" true
    (Behavior.equal (Behavior.union s1 s12) s12);
  (* outcomes are order-insensitive in their value vectors *)
  let a =
    Behavior.outcome
      [ (Prog.Obs_loc (Loc.v "y"), 2); (Prog.Obs_loc (Loc.v "x"), 1) ]
  in
  let b =
    Behavior.outcome
      [ (Prog.Obs_loc (Loc.v "x"), 1); (Prog.Obs_loc (Loc.v "y"), 2) ]
  in
  Alcotest.(check bool) "canonical ordering" true (Behavior.equal_outcome a b)

let () =
  Alcotest.run "refinement"
    [ ( "theorem",
        [ Alcotest.test_case "kernel corpus" `Quick test_corpus_refines;
          Alcotest.test_case "witness produced" `Quick test_witness_produced;
          Alcotest.test_case "fixed litmus refine" `Quick
            test_fixed_litmus_refine;
          Alcotest.test_case "buggy litmus do not" `Quick
            test_buggy_litmus_do_not_refine;
          Alcotest.test_case "example 7 panic" `Quick
            test_example7_rm_only_panic;
          Alcotest.test_case "SC subset of RM" `Quick
            test_sc_always_subset_of_rm;
          Alcotest.test_case "witness schedule" `Quick test_witness_schedule;
          Alcotest.test_case "witness per outcome" `Quick
            test_witness_for_every_rm_outcome ] );
      ( "behavior-sets",
        [ Alcotest.test_case "set operations" `Quick test_behavior_set_ops ]
      ) ]
