(* The x86-TSO executor, and the paper's §1 contrast: bugs that Arm
   admits and TSO forbids. Three-model comparisons (SC ⊆ TSO ⊆ Arm) as
   properties. *)

open Memmodel

let sat t (b : Behavior.t) = Behavior.satisfiable t.Litmus.exists b

let normals (b : Behavior.t) =
  Behavior.Outcome_set.filter (fun o -> o.Behavior.status = Behavior.Normal) b

let test_sb_allowed_on_tso () =
  (* store buffering is THE TSO relaxation *)
  Alcotest.(check bool) "reachable" true
    (sat Paper_examples.sb (Tso.run Paper_examples.sb.Litmus.prog));
  Alcotest.(check bool) "forbidden with fences" false
    (sat Paper_examples.sb_dmb (Tso.run Paper_examples.sb_dmb.Litmus.prog))

let test_mp_forbidden_on_tso () =
  (* TSO preserves store-store and load-load order: message passing works
     without any barrier *)
  Alcotest.(check bool) "mp unreachable" false
    (sat Paper_examples.mp_plain (Tso.run Paper_examples.mp_plain.Litmus.prog))

let test_lb_forbidden_on_tso () =
  (* loads are never reordered after stores on TSO: Example 1 vanishes *)
  Alcotest.(check bool) "example 1 unreachable" false
    (sat Paper_examples.example1 (Tso.run Paper_examples.example1.Litmus.prog))

let test_2plus2w_forbidden_on_tso () =
  Alcotest.(check bool) "2+2w unreachable" false
    (sat Litmus_suite.w22_plain (Tso.run Litmus_suite.w22_plain.Litmus.prog))

let test_paper_intro_contrast () =
  (* the §1 claim, executable: the barrier-less ticket lock and vCPU
     protocol are CORRECT on x86-TSO and broken on Arm *)
  let vmid_dup = Paper_examples.example2_buggy in
  Alcotest.(check bool) "duplicate VMID unreachable on TSO" false
    (sat vmid_dup (Tso.run ~fuel:3 vmid_dup.Litmus.prog));
  Alcotest.(check bool) "...but reachable on Arm" true
    (Litmus.run vmid_dup).Litmus.rm_sat;
  let stale = Paper_examples.example3_buggy in
  Alcotest.(check bool) "stale vCPU context unreachable on TSO" false
    (sat stale (Tso.run stale.Litmus.prog));
  Alcotest.(check bool) "...but reachable on Arm" true
    (Litmus.run stale).Litmus.rm_sat

let test_store_forwarding () =
  (* a thread reads its own buffered store before it drains *)
  let r0 = Reg.v "r0" in
  let prog =
    Prog.make ~name:"fwd"
      ~observables:[ Prog.Obs_reg (1, r0); Prog.Obs_loc (Loc.v "x") ]
      [ Prog.thread 1
          [ Instr.store (Expr.at "x") (Expr.c 7);
            Instr.load r0 (Expr.at "x") ] ]
  in
  let b = Tso.run prog in
  Alcotest.(check int) "deterministic" 1 (Behavior.cardinal b);
  Alcotest.(check bool) "forwarded" true
    (Behavior.satisfiable
       (fun g -> g (Prog.Obs_reg (1, r0)) = Some 7)
       b)

let test_rmw_flushes () =
  (* the LOCK-prefixed RMW acts as a fence: SB with RMWs is forbidden *)
  let r0 = Reg.v "r0" and r1 = Reg.v "r1" in
  let prog =
    Prog.make ~name:"sb-rmw"
      ~observables:[ Prog.Obs_reg (1, r0); Prog.Obs_reg (2, r1) ]
      [ Prog.thread 1
          [ Instr.store (Expr.at "x") (Expr.c 1);
            Instr.fetch_and_inc (Reg.v "t") (Expr.at "s");
            Instr.load r0 (Expr.at "y") ];
        Prog.thread 2
          [ Instr.store (Expr.at "y") (Expr.c 1);
            Instr.fetch_and_inc (Reg.v "t") (Expr.at "s");
            Instr.load r1 (Expr.at "x") ] ]
  in
  Alcotest.(check bool) "0,0 unreachable" false
    (Behavior.satisfiable
       (fun g ->
         g (Prog.Obs_reg (1, r0)) = Some 0 && g (Prog.Obs_reg (2, r1)) = Some 0)
       (Tso.run prog))

(* ---- the model hierarchy as properties ---- *)

let hierarchy_corpus =
  [ Paper_examples.example1.Litmus.prog; Paper_examples.mp_plain.Litmus.prog;
    Paper_examples.mp_dmb.Litmus.prog; Paper_examples.sb.Litmus.prog;
    Paper_examples.sb_dmb.Litmus.prog; Litmus_suite.w22_plain.Litmus.prog;
    Litmus_suite.s_plain.Litmus.prog; Litmus_suite.cowr.Litmus.prog ]

let test_sc_subset_tso_subset_arm () =
  List.iter
    (fun prog ->
      let sc = normals (Sc.run prog) in
      let tso = normals (Tso.run prog) in
      let arm =
        normals
          (Promising.run
             ~config:{ Promising.default_config with max_promises = 2 }
             prog)
      in
      Alcotest.(check bool) (prog.Prog.name ^ ": SC ⊆ TSO") true
        (Behavior.subset sc tso);
      Alcotest.(check bool) (prog.Prog.name ^ ": TSO ⊆ Arm") true
        (Behavior.subset tso arm))
    hierarchy_corpus

let gen_thread tid =
  let open QCheck.Gen in
  let reg = map (fun i -> Reg.v (Printf.sprintf "r%d_%d" tid i)) (int_bound 1) in
  let base = oneofl [ "x"; "y" ] in
  let instr =
    frequency
      [ (3, map2 (fun r b -> Instr.load r (Expr.at b)) reg base);
        (3, map2 (fun b v -> Instr.store (Expr.at b) (Expr.c v)) base (int_range 1 2));
        (1, map2 (fun r b -> Instr.fetch_and_inc r (Expr.at b)) reg base);
        (1, return Instr.dmb) ]
  in
  map (fun l -> Prog.thread tid l) (list_size (int_range 1 4) instr)

let qcheck_hierarchy =
  QCheck.Test.make ~name:"SC ⊆ TSO ⊆ Arm on random programs" ~count:80
    (QCheck.make
       (QCheck.Gen.map2
          (fun t1 t2 ->
            Prog.make ~name:"rand-tso"
              ~observables:
                [ Prog.Obs_loc (Loc.v "x"); Prog.Obs_loc (Loc.v "y");
                  Prog.Obs_reg (1, Reg.v "r1_0"); Prog.Obs_reg (2, Reg.v "r2_0") ]
              [ t1; t2 ])
          (gen_thread 1) (gen_thread 2)))
    (fun prog ->
      let sc = normals (Sc.run prog) in
      let tso = normals (Tso.run prog) in
      let arm =
        normals
          (Promising.run
             ~config:{ Promising.default_config with max_promises = 2 }
             prog)
      in
      Behavior.subset sc tso && Behavior.subset tso arm)

let () =
  Alcotest.run "tso"
    [ ( "relaxations",
        [ Alcotest.test_case "SB allowed" `Quick test_sb_allowed_on_tso;
          Alcotest.test_case "MP forbidden" `Quick test_mp_forbidden_on_tso;
          Alcotest.test_case "LB forbidden" `Quick test_lb_forbidden_on_tso;
          Alcotest.test_case "2+2W forbidden" `Quick
            test_2plus2w_forbidden_on_tso;
          Alcotest.test_case "store forwarding" `Quick test_store_forwarding;
          Alcotest.test_case "RMW flushes" `Quick test_rmw_flushes ] );
      ( "paper-contrast",
        [ Alcotest.test_case "§1: TSO-safe, Arm-broken" `Quick
            test_paper_intro_contrast ] );
      ( "hierarchy",
        [ Alcotest.test_case "corpus SC ⊆ TSO ⊆ Arm" `Quick
            test_sc_subset_tso_subset_arm;
          QCheck_alcotest.to_alcotest qcheck_hierarchy ] ) ]
