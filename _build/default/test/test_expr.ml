(* Unit tests for the DSL expression layer: evaluation, view (dependency)
   propagation, address resolution, and the static register analysis. *)

open Memmodel

let lookup env r =
  match List.assoc_opt r env with Some v -> v | None -> (0, 0)

let test_arith () =
  let env = [ (Reg.v "a", (6, 3)); (Reg.v "b", (2, 7)) ] in
  let eval e = Expr.eval_v (lookup env) e in
  Alcotest.(check (pair int int))
    "add" (8, 7)
    (eval Expr.(r (Reg.v "a") + r (Reg.v "b")));
  Alcotest.(check (pair int int))
    "sub" (4, 7)
    (eval Expr.(r (Reg.v "a") - r (Reg.v "b")));
  Alcotest.(check (pair int int))
    "mul" (12, 7)
    (eval Expr.(r (Reg.v "a") * r (Reg.v "b")));
  Alcotest.(check (pair int int))
    "div" (3, 7)
    (eval Expr.(r (Reg.v "a") / r (Reg.v "b")));
  Alcotest.(check (pair int int)) "const has view 0" (5, 0) (eval (Expr.c 5))

let test_view_join () =
  (* the view of an expression is the max of its registers' views *)
  let env = [ (Reg.v "lo", (1, 2)); (Reg.v "hi", (1, 9)) ] in
  let _, view =
    Expr.eval_v (lookup env) Expr.(r (Reg.v "lo") + r (Reg.v "hi"))
  in
  Alcotest.(check int) "join of views" 9 view

let test_div_by_zero () =
  Alcotest.check_raises "div by zero panics"
    (Expr.Eval_panic "division by zero") (fun () ->
      ignore (Expr.eval_v (lookup []) Expr.(c 1 / c 0)))

let test_bool () =
  let eval b = Expr.eval_b (lookup []) b in
  Alcotest.(check (pair bool int)) "lt" (true, 0) (eval Expr.(c 1 < c 2));
  Alcotest.(check (pair bool int)) "ge" (false, 0) (eval Expr.(c 1 >= c 2));
  Alcotest.(check (pair bool int)) "eq" (true, 0) (eval Expr.(c 3 = c 3));
  Alcotest.(check (pair bool int)) "ne" (false, 0) (eval Expr.(c 3 <> c 3));
  Alcotest.(check (pair bool int))
    "and/or/not" (true, 0)
    (eval Expr.(not (Bool false) && (Bool true || Bool false)))

let test_addr () =
  let env = [ (Reg.v "i", (3, 5)) ] in
  let loc, view =
    Expr.eval_addr (lookup env) (Expr.at ~offset:Expr.(r (Reg.v "i") + c 1) "pte")
  in
  Alcotest.(check string) "base" "pte" (Loc.base loc);
  Alcotest.(check int) "index" 4 (Loc.index loc);
  Alcotest.(check int) "address dependency view" 5 view

let test_regs_of () =
  let e = Expr.(r (Reg.v "a") + (c 2 * r (Reg.v "b"))) in
  Alcotest.(check (list string)) "regs of vexp" [ "a"; "b" ]
    (Expr.regs_of_vexp e);
  let b = Expr.(r (Reg.v "x") < c 1 && Bool true) in
  Alcotest.(check (list string)) "regs of bexp" [ "x" ] (Expr.regs_of_bexp b)

let test_loc () =
  Alcotest.(check string) "scalar print" "x" (Loc.to_string (Loc.v "x"));
  Alcotest.(check string) "indexed print" "pte[3]"
    (Loc.to_string (Loc.v ~index:3 "pte"));
  Alcotest.(check bool) "equality" true
    (Loc.equal (Loc.v ~index:1 "a") (Loc.v ~index:1 "a"));
  Alcotest.(check bool) "inequality" false
    (Loc.equal (Loc.v ~index:1 "a") (Loc.v ~index:2 "a"))

let test_instr_size_bases () =
  let code =
    [ Instr.load (Reg.v "r") (Expr.at "x");
      Instr.if_
        Expr.(r (Reg.v "r") = c 0)
        [ Instr.store (Expr.at "y") (Expr.c 1) ]
        [ Instr.while_ (Expr.Bool false) [ Instr.store (Expr.at "z") (Expr.c 2) ] ]
    ]
  in
  Alcotest.(check int) "size" 5 (Instr.size_list code);
  Alcotest.(check (list string))
    "bases" [ "x"; "y"; "z" ]
    (List.sort_uniq compare (Instr.bases_list code))

(* qcheck: evaluation is deterministic and views never decrease under
   joins *)
let qcheck_view_monotone =
  QCheck.Test.make ~name:"expr view bounded by max reg view" ~count:200
    QCheck.(triple small_int small_int (int_bound 20))
    (fun (v1, v2, w) ->
      let env = [ (Reg.v "a", (v1, w)); (Reg.v "b", (v2, w + 1)) ] in
      let _, view =
        Expr.eval_v (lookup env) Expr.(r (Reg.v "a") + r (Reg.v "b"))
      in
      view = w + 1)

let () =
  Alcotest.run "expr"
    [ ( "eval",
        [ Alcotest.test_case "arith" `Quick test_arith;
          Alcotest.test_case "view join" `Quick test_view_join;
          Alcotest.test_case "div by zero" `Quick test_div_by_zero;
          Alcotest.test_case "bool" `Quick test_bool;
          Alcotest.test_case "addr" `Quick test_addr ] );
      ( "static",
        [ Alcotest.test_case "regs_of" `Quick test_regs_of;
          Alcotest.test_case "loc" `Quick test_loc;
          Alcotest.test_case "instr size/bases" `Quick test_instr_size_bases ]
      );
      ( "qcheck",
        [ QCheck_alcotest.to_alcotest qcheck_view_monotone ] ) ]
