(* Executable Theorem 4: the kernel of Example 7 — which reads user
   memory and can therefore observe user RM behavior — has all its
   relaxed behaviors (including the divide-by-zero panic) covered once
   the user program is replaced by a value-writing Q' on SC. Also the
   negative control: restricting Q' to too small a value domain leaves
   the panic uncovered. *)

open Memmodel
open Vrm

(* Example 7's program: threads 1,2 are the user (racy increments of z),
   thread 3 is the kernel reading z. *)
let example7_prog = Paper_examples.example7.Litmus.prog

let split = { Theorem4.kernel_tids = [ 3 ]; user_tids = [ 1; 2 ] }

let cfg = { Promising.default_config with max_promises = 1; loop_fuel = 4 }

let test_user_written_bases () =
  Alcotest.(check (list string)) "users write x, y, z" [ "x"; "y"; "z" ]
    (Theorem4.user_written_bases split example7_prog)

let test_projection_drops_user_registers () =
  let b = Sc.run example7_prog in
  let p = Theorem4.project split example7_prog b in
  Alcotest.(check bool) "projection collapses user-only distinctions" true
    (Behavior.cardinal p <= Behavior.cardinal b)

let test_theorem4_example7 () =
  let v = Theorem4.check ~config:cfg split example7_prog in
  Alcotest.(check bool) "holds" true v.Theorem4.holds;
  (* the RM side includes the kernel panic; Q' must have covered it *)
  Alcotest.(check bool) "RM kernel panics covered" true
    (Behavior.any_panic v.Theorem4.rm_kernel
    && Behavior.any_panic v.Theorem4.sc_kernel)

let test_theorem4_needs_rich_enough_oracle () =
  (* with values {0,1} only, no Q' can set z=2, so the kernel's RM-only
     panic is unmatched: the coverage check is not vacuous *)
  let v =
    Theorem4.check ~config:cfg ~value_domain:[ 0; 1 ] split example7_prog
  in
  Alcotest.(check bool) "too-small domain fails" false v.Theorem4.holds;
  Alcotest.(check bool) "the uncovered behavior is the panic" true
    (Behavior.any_panic v.Theorem4.uncovered)

let test_theorem4_kernel_only_program () =
  (* with no user threads the theorem degenerates to plain refinement *)
  let prog = Sekvm.Kernel_progs.vmid_alloc.Sekvm.Kernel_progs.prog in
  let split = { Theorem4.kernel_tids = [ 1; 2 ]; user_tids = [] } in
  let v =
    Theorem4.check
      ~config:Sekvm.Kernel_progs.vmid_alloc.Sekvm.Kernel_progs.rm_config
      split prog
  in
  Alcotest.(check bool) "holds" true v.Theorem4.holds;
  Alcotest.(check int) "single trivial Q'" 1 v.Theorem4.q'_count

let () =
  Alcotest.run "theorem4"
    [ ( "theorem4",
        [ Alcotest.test_case "user-written bases" `Quick
            test_user_written_bases;
          Alcotest.test_case "projection" `Quick
            test_projection_drops_user_registers;
          Alcotest.test_case "example 7 covered" `Quick
            test_theorem4_example7;
          Alcotest.test_case "small domain fails" `Quick
            test_theorem4_needs_rich_enough_oracle;
          Alcotest.test_case "kernel-only degenerate" `Quick
            test_theorem4_kernel_only_program ] ) ]
