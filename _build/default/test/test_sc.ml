(* Unit tests for the exhaustive SC executor: determinism of sequential
   programs, completeness of interleaving exploration, atomic RMWs,
   control flow, panics and fuel accounting. *)

open Memmodel

let obs_r tid r = Prog.Obs_reg (tid, Reg.v r)
let obs_l base = Prog.Obs_loc (Loc.v base)

let values (b : Behavior.t) =
  List.map
    (fun (o : Behavior.outcome) -> List.map snd o.Behavior.values)
    (Behavior.elements b)

let test_sequential_deterministic () =
  let prog =
    Prog.make ~name:"seq"
      ~observables:[ obs_r 0 "r"; obs_l "x" ]
      [ Prog.thread 0
          [ Instr.store (Expr.at "x") (Expr.c 5);
            Instr.load (Reg.v "r") (Expr.at "x");
            Instr.store (Expr.at "x") Expr.(r (Reg.v "r") + c 1) ] ]
  in
  let b = Sc.run prog in
  Alcotest.(check int) "single outcome" 1 (Behavior.cardinal b);
  Alcotest.(check (list (list int))) "value" [ [ 5; 6 ] ] (values b)

let test_interleavings_complete () =
  (* store buffering on SC: exactly the 3 outcomes (0,1) (1,0) (1,1) *)
  let prog =
    Prog.make ~name:"sb"
      ~observables:[ obs_r 1 "r0"; obs_r 2 "r1" ]
      [ Prog.thread 1
          [ Instr.store (Expr.at "x") (Expr.c 1);
            Instr.load (Reg.v "r0") (Expr.at "y") ];
        Prog.thread 2
          [ Instr.store (Expr.at "y") (Expr.c 1);
            Instr.load (Reg.v "r1") (Expr.at "x") ] ]
  in
  let b = Sc.run prog in
  Alcotest.(check int) "3 outcomes" 3 (Behavior.cardinal b);
  Alcotest.(check bool) "0,0 unreachable on SC" false
    (Behavior.satisfiable
       (fun g ->
         g (obs_r 1 "r0") = Some 0 && g (obs_r 2 "r1") = Some 0)
       b)

let test_faa_atomic () =
  let bump tid =
    Prog.thread tid [ Instr.fetch_and_inc (Reg.v "old") (Expr.at "c") ]
  in
  let prog =
    Prog.make ~name:"faa" ~observables:[ obs_l "c" ] [ bump 1; bump 2; bump 3 ]
  in
  let b = Sc.run prog in
  Alcotest.(check (list (list int))) "always 3" [ [ 3 ] ] (values b)

let test_nonatomic_increment_races () =
  let bump tid =
    Prog.thread tid
      [ Instr.load (Reg.v "v") (Expr.at "c");
        Instr.store (Expr.at "c") Expr.(r (Reg.v "v") + c 1) ]
  in
  let prog =
    Prog.make ~name:"racy-inc" ~observables:[ obs_l "c" ] [ bump 1; bump 2 ]
  in
  let b = Sc.run prog in
  Alcotest.(check bool) "can lose an update"
    true
    (Behavior.satisfiable (fun g -> g (obs_l "c") = Some 1) b);
  Alcotest.(check bool) "can be correct"
    true
    (Behavior.satisfiable (fun g -> g (obs_l "c") = Some 2) b)

let test_if_else () =
  let prog =
    Prog.make ~name:"if"
      ~init:[ (Loc.v "x", 7) ]
      ~observables:[ obs_r 0 "r" ]
      [ Prog.thread 0
          [ Instr.load (Reg.v "v") (Expr.at "x");
            Instr.if_
              Expr.(r (Reg.v "v") = c 7)
              [ Instr.move (Reg.v "r") (Expr.c 1) ]
              [ Instr.move (Reg.v "r") (Expr.c 2) ] ] ]
  in
  Alcotest.(check (list (list int))) "then branch" [ [ 1 ] ]
    (values (Sc.run prog))

let test_while_countdown () =
  let prog =
    Prog.make ~name:"loop"
      ~init:[ (Loc.v "n", 5) ]
      ~observables:[ obs_l "n"; obs_r 0 "sum" ]
      [ Prog.thread 0
          [ Instr.move (Reg.v "sum") (Expr.c 0);
            Instr.load (Reg.v "v") (Expr.at "n");
            Instr.while_
              Expr.(r (Reg.v "v") > c 0)
              [ Instr.move (Reg.v "sum") Expr.(r (Reg.v "sum") + r (Reg.v "v"));
                Instr.store (Expr.at "n") Expr.(r (Reg.v "v") - c 1);
                Instr.load (Reg.v "v") (Expr.at "n") ] ] ]
  in
  (* outcomes sort register observables before locations: [sum; n] *)
  Alcotest.(check (list (list int))) "5+4+3+2+1" [ [ 15; 0 ] ]
    (values (Sc.run prog))

let test_panic_outcome () =
  let prog =
    Prog.make ~name:"panic" ~observables:[ obs_l "x" ]
      [ Prog.thread 0 [ Instr.Panic ] ]
  in
  Alcotest.(check bool) "panicked" true (Behavior.any_panic (Sc.run prog))

let test_div_panic_outcome () =
  let prog =
    Prog.make ~name:"div0" ~observables:[ obs_l "x" ]
      [ Prog.thread 0 [ Instr.move (Reg.v "r") Expr.(c 1 / c 0) ] ]
  in
  Alcotest.(check bool) "panicked" true (Behavior.any_panic (Sc.run prog))

let test_fuel_exhaustion () =
  let prog =
    Prog.make ~name:"spin" ~observables:[ obs_l "x" ]
      [ Prog.thread 0 [ Instr.while_ (Expr.Bool true) [ Instr.Nop ] ] ]
  in
  let b = Sc.run ~fuel:4 prog in
  Alcotest.(check bool) "fuel reported" true (Behavior.any_fuel_exhausted b);
  Alcotest.(check bool) "no normal outcome" false
    (Behavior.satisfiable (fun _ -> true) b)

let test_ghost_ops_are_noops () =
  let prog =
    Prog.make ~name:"ghost" ~observables:[ obs_l "x" ]
      [ Prog.thread 0
          [ Instr.pull [ "x" ]; Instr.dmb;
            Instr.store (Expr.at "x") (Expr.c 9);
            Instr.tlbi_all; Instr.push [ "x" ] ] ]
  in
  Alcotest.(check (list (list int))) "value written" [ [ 9 ] ]
    (values (Sc.run prog))

let test_observe_indexed_loc () =
  let prog =
    Prog.make ~name:"indexed"
      ~observables:[ Prog.Obs_loc (Loc.v ~index:3 "arr") ]
      [ Prog.thread 0
          [ Instr.move (Reg.v "i") (Expr.c 3);
            Instr.store (Expr.at ~offset:Expr.(r (Reg.v "i")) "arr") (Expr.c 77) ] ]
  in
  Alcotest.(check (list (list int))) "arr[3]" [ [ 77 ] ] (values (Sc.run prog))

(* qcheck: for any single-thread straight-line program the SC behavior
   set is a singleton (determinism). *)
let gen_straightline =
  let open QCheck.Gen in
  let reg = oneofl [ "a"; "b" ] in
  let base = oneofl [ "x"; "y" ] in
  let instr =
    frequency
      [ (3, map2 (fun r b -> Instr.load (Reg.v r) (Expr.at b)) reg base);
        (3, map2 (fun b v -> Instr.store (Expr.at b) (Expr.c v)) base small_nat);
        (1, map2 (fun r b -> Instr.fetch_and_inc (Reg.v r) (Expr.at b)) reg base);
        (1, return Instr.dmb);
        (2, map2 (fun r v -> Instr.move (Reg.v r) (Expr.c v)) reg small_nat) ]
  in
  list_size (int_range 1 6) instr

let qcheck_single_thread_deterministic =
  QCheck.Test.make ~name:"single-thread SC is deterministic" ~count:100
    (QCheck.make gen_straightline)
    (fun code ->
      let prog =
        Prog.make ~name:"q"
          ~observables:
            [ Prog.Obs_reg (0, Reg.v "a"); Prog.Obs_reg (0, Reg.v "b");
              Prog.Obs_loc (Loc.v "x"); Prog.Obs_loc (Loc.v "y") ]
          [ Prog.thread 0 code ]
      in
      Behavior.cardinal (Sc.run prog) = 1)

let () =
  Alcotest.run "sc"
    [ ( "execution",
        [ Alcotest.test_case "sequential deterministic" `Quick
            test_sequential_deterministic;
          Alcotest.test_case "interleavings complete" `Quick
            test_interleavings_complete;
          Alcotest.test_case "faa atomic" `Quick test_faa_atomic;
          Alcotest.test_case "nonatomic increments race" `Quick
            test_nonatomic_increment_races;
          Alcotest.test_case "if/else" `Quick test_if_else;
          Alcotest.test_case "while countdown" `Quick test_while_countdown ]
      );
      ( "outcomes",
        [ Alcotest.test_case "panic" `Quick test_panic_outcome;
          Alcotest.test_case "division panic" `Quick test_div_panic_outcome;
          Alcotest.test_case "fuel exhaustion" `Quick test_fuel_exhaustion;
          Alcotest.test_case "ghost ops" `Quick test_ghost_ops_are_noops;
          Alcotest.test_case "indexed observable" `Quick
            test_observe_indexed_loc ] );
      ("qcheck", [ QCheck_alcotest.to_alcotest qcheck_single_thread_deterministic ])
    ]
