(* Executable refinement between KCore and its abstract specification:
   randomized commutation testing (abstract the implementation state, run
   the same hypercall on both sides, compare), plus induction-style
   invariant preservation on the abstract machine alone. *)

open Sekvm
open Vrm

let cfg = Kcore.default_boot_config

let abs_t = Alcotest.testable Abs_spec.pp Abs_spec.equal

(* ---- directed commutation cases ---- *)

let fresh () =
  let kcore = Kcore.boot cfg in
  let kserv = Kserv.create kcore ~first_free_pfn:(Kcore.kserv_base cfg) in
  (kcore, kserv)

let test_register_vm_commutes () =
  let kcore, _ = fresh () in
  let a0 = Abs_spec.abstract kcore in
  let vmid = Kcore.register_vm kcore ~cpu:0 in
  let a_spec, vmid_spec = Abs_spec.spec_register_vm a0 in
  Alcotest.(check int) "same vmid" vmid_spec vmid;
  Alcotest.check abs_t "states agree" a_spec (Abs_spec.abstract kcore)

let test_fault_path_commutes () =
  let kcore, kserv = fresh () in
  let vmid =
    match Kserv.boot_vm kserv ~cpu:0 ~n_vcpus:1 ~image_pages:1 with
    | Ok v -> v
    | Error _ -> Alcotest.fail "boot"
  in
  let pfn = Kserv.alloc_page kserv in
  let a0 = Abs_spec.abstract kcore in
  (match Kcore.map_page_to_vm kcore ~cpu:0 ~vmid ~ipa:(Machine.Page_table.page_va 50) ~pfn with
  | Ok () -> ()
  | Error `Denied -> Alcotest.fail "donation denied");
  (match Abs_spec.spec_map_page_to_vm a0 ~vmid ~vp:50 ~pfn with
  | Ok a_spec -> Alcotest.check abs_t "states agree" a_spec (Abs_spec.abstract kcore)
  | Error `Denied -> Alcotest.fail "spec denied")

let test_denied_donation_is_stutter () =
  (* a denied hypercall must leave the abstract state unchanged on both
     sides — including the subtle already-mapped and kcore-page cases *)
  let kcore, kserv = fresh () in
  let vmid =
    match Kserv.boot_vm kserv ~cpu:0 ~n_vcpus:1 ~image_pages:1 with
    | Ok v -> v
    | Error _ -> Alcotest.fail "boot"
  in
  let a0 = Abs_spec.abstract kcore in
  (* donating a KCore page *)
  (match Kcore.map_page_to_vm kcore ~cpu:0 ~vmid ~ipa:(Machine.Page_table.page_va 60) ~pfn:2 with
  | Error `Denied -> ()
  | Ok () -> Alcotest.fail "kcore page donated");
  Alcotest.check abs_t "impl stuttered" a0 (Abs_spec.abstract kcore);
  (match Abs_spec.spec_map_page_to_vm a0 ~vmid ~vp:60 ~pfn:2 with
  | Error `Denied -> ()
  | Ok _ -> Alcotest.fail "spec allowed");
  (* donating to an already-populated guest page *)
  let pfn = Kserv.alloc_page kserv in
  (match Kcore.map_page_to_vm kcore ~cpu:0 ~vmid ~ipa:0 ~pfn with
  | Error `Denied -> ()
  | Ok () -> Alcotest.fail "double mapping");
  Alcotest.check abs_t "impl stuttered again" a0 (Abs_spec.abstract kcore)

let test_share_unshare_commute () =
  let kcore, kserv = fresh () in
  let vmid =
    match Kserv.boot_vm kserv ~cpu:0 ~n_vcpus:1 ~image_pages:1 with
    | Ok v -> v
    | Error _ -> Alcotest.fail "boot"
  in
  let ipa = Machine.Page_table.page_va 30 in
  ignore (Kserv.run_guest kserv ~cpu:1 ~vmid ~vcpuid:0 [ Vm.G_write (ipa, 5) ]);
  let a0 = Abs_spec.abstract kcore in
  (match Kcore.vm_share_page kcore ~cpu:0 ~vmid ~ipa with
  | Ok () -> ()
  | Error `Denied -> Alcotest.fail "share denied");
  let a1 =
    match Abs_spec.spec_share a0 ~vmid ~vp:30 with
    | Ok a -> a
    | Error `Denied -> Alcotest.fail "spec share denied"
  in
  Alcotest.check abs_t "share commutes" a1 (Abs_spec.abstract kcore);
  (match Kcore.vm_unshare_page kcore ~cpu:0 ~vmid ~ipa with
  | Ok () -> ()
  | Error `Denied -> Alcotest.fail "unshare denied");
  let a2 =
    match Abs_spec.spec_unshare a1 ~vmid ~vp:30 with
    | Ok a -> a
    | Error `Denied -> Alcotest.fail "spec unshare denied"
  in
  Alcotest.check abs_t "unshare commutes" a2 (Abs_spec.abstract kcore)

let test_teardown_commutes () =
  let kcore, kserv = fresh () in
  let vmid =
    match Kserv.boot_vm kserv ~cpu:0 ~n_vcpus:1 ~image_pages:2 with
    | Ok v -> v
    | Error _ -> Alcotest.fail "boot"
  in
  ignore
    (Kserv.run_guest kserv ~cpu:1 ~vmid ~vcpuid:0
       ([ Vm.G_write (Machine.Page_table.page_va 40, 9) ]
       @ Vm.virtio_round ~ring_ipa:(Machine.Page_table.page_va 41) ~payload:3));
  let a0 = Abs_spec.abstract kcore in
  Kcore.teardown_vm kcore ~cpu:0 ~vmid;
  Alcotest.check abs_t "teardown commutes"
    (Abs_spec.spec_teardown a0 ~vmid)
    (Abs_spec.abstract kcore)

let test_boot_commutes () =
  let kcore, kserv = fresh () in
  let a0 = Abs_spec.abstract kcore in
  (* replay KServ's boot against the spec: register, fault the image
     pages into KServ's map, transfer *)
  let vmid =
    match Kserv.boot_vm kserv ~cpu:0 ~n_vcpus:1 ~image_pages:2 with
    | Ok v -> v
    | Error _ -> Alcotest.fail "boot"
  in
  let pfns = List.assoc vmid kserv.Kserv.booted in
  let a, vmid_spec = Abs_spec.spec_register_vm a0 in
  Alcotest.(check int) "vmid" vmid_spec vmid;
  let a =
    List.fold_left
      (fun a pfn ->
        match Abs_spec.spec_kserv_fault a ~pfn with
        | Ok a -> a
        | Error `Denied -> Alcotest.fail "spec fault denied")
      a pfns
  in
  let a =
    match Abs_spec.spec_set_vm_image a ~vmid ~pfns with
    | Ok a -> a
    | Error `Denied -> Alcotest.fail "spec image denied"
  in
  Alcotest.check abs_t "boot commutes" a (Abs_spec.abstract kcore)

let test_smmu_commutes () =
  let kcore, kserv = fresh () in
  let vmid =
    match Kserv.boot_vm kserv ~cpu:0 ~n_vcpus:1 ~image_pages:1 with
    | Ok v -> v
    | Error _ -> Alcotest.fail "boot"
  in
  let vm_pfn =
    List.hd
      (Machine.S2page.pages_owned_by kcore.Kcore.s2page
         (Machine.S2page.Vm vmid))
  in
  let a0 = Abs_spec.abstract kcore in
  (match
     Kcore.smmu_attach kcore ~cpu:0 ~device:9 ~owner:(Machine.S2page.Vm vmid)
   with
  | Ok () -> ()
  | Error `Denied -> Alcotest.fail "attach denied");
  let a1 =
    Result.get_ok
      (Abs_spec.spec_smmu_attach a0 ~device:9 ~owner:(Abs_spec.O_vm vmid))
  in
  Alcotest.check abs_t "attach commutes" a1 (Abs_spec.abstract kcore);
  (match Kcore.smmu_map kcore ~cpu:0 ~device:9 ~iova:0 ~pfn:vm_pfn with
  | Ok () -> ()
  | Error `Denied -> Alcotest.fail "map denied");
  let a2 =
    Result.get_ok
      (Abs_spec.spec_smmu_map a1 ~device:9 ~iova_page:0 ~pfn:vm_pfn)
  in
  Alcotest.check abs_t "map commutes" a2 (Abs_spec.abstract kcore);
  (* mapping a KCore frame is denied on both sides *)
  (match Kcore.smmu_map kcore ~cpu:0 ~device:9 ~iova:4096 ~pfn:2 with
  | Error `Denied -> ()
  | Ok () -> Alcotest.fail "kcore dma allowed");
  (match Abs_spec.spec_smmu_map a2 ~device:9 ~iova_page:1 ~pfn:2 with
  | Error `Denied -> ()
  | Ok _ -> Alcotest.fail "spec allowed kcore dma");
  (match Kcore.smmu_unmap kcore ~cpu:0 ~device:9 ~iova:0 with
  | Ok () -> ()
  | Error `Denied -> Alcotest.fail "unmap denied");
  let a3 =
    Result.get_ok (Abs_spec.spec_smmu_unmap a2 ~device:9 ~iova_page:0)
  in
  Alcotest.check abs_t "unmap commutes" a3 (Abs_spec.abstract kcore)

let test_teardown_revokes_dma_commutes () =
  (* the dangling-DMA bug the spec work uncovered: teardown must drop the
     VM's device windows on both sides *)
  let kcore, kserv = fresh () in
  let vmid =
    match Kserv.boot_vm kserv ~cpu:0 ~n_vcpus:1 ~image_pages:1 with
    | Ok v -> v
    | Error _ -> Alcotest.fail "boot"
  in
  let vm_pfn =
    List.hd
      (Machine.S2page.pages_owned_by kcore.Kcore.s2page
         (Machine.S2page.Vm vmid))
  in
  (match
     Kcore.smmu_attach kcore ~cpu:0 ~device:4 ~owner:(Machine.S2page.Vm vmid)
   with
  | Ok () -> ()
  | Error `Denied -> Alcotest.fail "attach");
  (match Kcore.smmu_map kcore ~cpu:0 ~device:4 ~iova:0 ~pfn:vm_pfn with
  | Ok () -> ()
  | Error `Denied -> Alcotest.fail "map");
  let a0 = Abs_spec.abstract kcore in
  Kcore.teardown_vm kcore ~cpu:0 ~vmid;
  Alcotest.check abs_t "teardown revokes DMA"
    (Abs_spec.spec_teardown a0 ~vmid)
    (Abs_spec.abstract kcore);
  Alcotest.(check int) "invariants clean" 0
    (List.length (Kcore.check_invariants kcore))

(* ---- randomized refinement ---- *)

module Rng = struct
  type t = { mutable s : int }

  let create seed = { s = (seed * 2 + 1) land 0x3fffffff }

  let next t =
    t.s <- (t.s * 1103515245 + 12345) land 0x3fffffff;
    t.s

  let below t n = next t mod n
end

(* Replay a random mix of spec-covered hypercalls against both machines,
   requiring commutation after every step. *)
let refinement_run seed steps : bool =
  let rng = Rng.create seed in
  let kcore, kserv = fresh () in
  let live = ref [] in
  let ok = ref true in
  let check_point label a_spec =
    if not (Abs_spec.equal a_spec (Abs_spec.abstract kcore)) then begin
      Format.eprintf "seed %d: divergence after %s@." seed label;
      ok := false
    end
  in
  let abs () = Abs_spec.abstract kcore in
  (try
     for _ = 1 to steps do
       if not !ok then raise Exit;
       match Rng.below rng 7 with
       | 0 when List.length !live < 4 -> (
           let a0 = abs () in
           match Kserv.boot_vm kserv ~cpu:0 ~n_vcpus:1 ~image_pages:1 with
           | Ok vmid ->
               live := vmid :: !live;
               let pfns = List.assoc vmid kserv.Kserv.booted in
               let a, _ = Abs_spec.spec_register_vm a0 in
               let a =
                 List.fold_left
                   (fun a pfn ->
                     Result.get_ok (Abs_spec.spec_kserv_fault a ~pfn))
                   a pfns
               in
               let a =
                 Result.get_ok (Abs_spec.spec_set_vm_image a ~vmid ~pfns)
               in
               check_point "boot" a
           | Error _ -> ()
           | exception Kserv.Out_of_memory -> ())
       | 1 when !live <> [] -> (
           let vmid = List.nth !live (Rng.below rng (List.length !live)) in
           let vp = 32 + Rng.below rng 16 in
           let pfn = Kserv.alloc_page kserv in
           let a0 = abs () in
           match
             Kcore.map_page_to_vm kcore ~cpu:0 ~vmid
               ~ipa:(Machine.Page_table.page_va vp) ~pfn
           with
           | Ok () ->
               check_point "donate"
                 (Result.get_ok (Abs_spec.spec_map_page_to_vm a0 ~vmid ~vp ~pfn))
           | Error `Denied ->
               (match Abs_spec.spec_map_page_to_vm a0 ~vmid ~vp ~pfn with
               | Error `Denied -> check_point "denied donate" a0
               | Ok _ ->
                   Format.eprintf "seed %d: impl denied, spec allowed@." seed;
                   ok := false);
               Kserv.free_page kserv pfn)
       | 2 when !live <> [] -> (
           let vmid = List.nth !live (Rng.below rng (List.length !live)) in
           let vp = 32 + Rng.below rng 16 in
           let a0 = abs () in
           match Kcore.vm_share_page kcore ~cpu:0 ~vmid ~ipa:(Machine.Page_table.page_va vp) with
           | Ok () ->
               check_point "share"
                 (Result.get_ok (Abs_spec.spec_share a0 ~vmid ~vp))
           | Error `Denied -> (
               match Abs_spec.spec_share a0 ~vmid ~vp with
               | Error `Denied -> check_point "denied share" a0
               | Ok _ ->
                   Format.eprintf "seed %d: share disagreement@." seed;
                   ok := false))
       | 3 when !live <> [] -> (
           let vmid = List.nth !live (Rng.below rng (List.length !live)) in
           let vp = 32 + Rng.below rng 16 in
           let a0 = abs () in
           match Kcore.vm_unshare_page kcore ~cpu:0 ~vmid ~ipa:(Machine.Page_table.page_va vp) with
           | Ok () ->
               check_point "unshare"
                 (Result.get_ok (Abs_spec.spec_unshare a0 ~vmid ~vp))
           | Error `Denied -> (
               match Abs_spec.spec_unshare a0 ~vmid ~vp with
               | Error `Denied -> check_point "denied unshare" a0
               | Ok _ ->
                   Format.eprintf "seed %d: unshare disagreement@." seed;
                   ok := false))
       | 4 when !live <> [] ->
           let vmid = List.nth !live (Rng.below rng (List.length !live)) in
           live := List.filter (fun v -> v <> vmid) !live;
           let a0 = abs () in
           Kcore.teardown_vm kcore ~cpu:0 ~vmid;
           check_point "teardown" (Abs_spec.spec_teardown a0 ~vmid)
       | 5 -> (
           let pfn = Rng.below rng cfg.Kcore.n_pages in
           let a0 = abs () in
           match Kcore.kserv_fault kcore ~cpu:0 ~addr:(Machine.Page_table.page_va pfn) with
           | Ok () ->
               check_point "kserv fault"
                 (Result.get_ok (Abs_spec.spec_kserv_fault a0 ~pfn))
           | Error `Denied -> (
               match Abs_spec.spec_kserv_fault a0 ~pfn with
               | Error `Denied -> check_point "denied fault" a0
               | Ok _ ->
                   Format.eprintf "seed %d: fault disagreement@." seed;
                   ok := false))
       | _ -> (
           (* abstract invariant must also hold at every point *)
           match Abs_spec.invariant (abs ()) with
           | Ok () -> ()
           | Error msg ->
               Format.eprintf "seed %d: abstract invariant: %s@." seed msg;
               ok := false)
     done
   with Exit -> ());
  !ok

let qcheck_refinement =
  QCheck.Test.make ~name:"KCore refines its abstract specification"
    ~count:15
    QCheck.(int_bound 10_000)
    (fun seed -> refinement_run seed 40)

(* ---- abstract-machine induction ---- *)

let test_spec_invariant_induction () =
  (* the §5.3 invariants hold initially and are preserved by every spec
     transition on a randomly driven abstract machine (no implementation
     involved: this is the induction the Coq development does) *)
  let rng = Rng.create 99 in
  let st = ref (Abs_spec.abstract (Kcore.boot cfg)) in
  let check () =
    match Abs_spec.invariant !st with
    | Ok () -> ()
    | Error m -> Alcotest.failf "abstract invariant broken: %s" m
  in
  check ();
  let vms = ref [] in
  for _ = 1 to 300 do
    (match Rng.below rng 6 with
    | 0 ->
        let a, vmid = Abs_spec.spec_register_vm !st in
        st := a;
        vms := vmid :: !vms
    | 1 when !vms <> [] -> (
        let vmid = List.nth !vms (Rng.below rng (List.length !vms)) in
        let pfn = Rng.below rng 1024 in
        match Abs_spec.spec_map_page_to_vm !st ~vmid ~vp:(Rng.below rng 64) ~pfn with
        | Ok a -> st := a
        | Error `Denied -> ())
    | 2 when !vms <> [] -> (
        let vmid = List.nth !vms (Rng.below rng (List.length !vms)) in
        match Abs_spec.spec_share !st ~vmid ~vp:(Rng.below rng 64) with
        | Ok a -> st := a
        | Error `Denied -> ())
    | 3 when !vms <> [] -> (
        let vmid = List.nth !vms (Rng.below rng (List.length !vms)) in
        match Abs_spec.spec_unshare !st ~vmid ~vp:(Rng.below rng 64) with
        | Ok a -> st := a
        | Error `Denied -> ())
    | 4 when !vms <> [] ->
        let vmid = List.nth !vms (Rng.below rng (List.length !vms)) in
        st := Abs_spec.spec_teardown !st ~vmid
    | _ -> (
        match Abs_spec.spec_kserv_fault !st ~pfn:(Rng.below rng 1024) with
        | Ok a -> st := a
        | Error `Denied -> ()));
    check ()
  done

let () =
  Alcotest.run "abs-spec"
    [ ( "commutation",
        [ Alcotest.test_case "register_vm" `Quick test_register_vm_commutes;
          Alcotest.test_case "fault path" `Quick test_fault_path_commutes;
          Alcotest.test_case "denied donation stutters" `Quick
            test_denied_donation_is_stutter;
          Alcotest.test_case "share/unshare" `Quick
            test_share_unshare_commute;
          Alcotest.test_case "teardown" `Quick test_teardown_commutes;
          Alcotest.test_case "boot" `Quick test_boot_commutes;
          Alcotest.test_case "smmu ops" `Quick test_smmu_commutes;
          Alcotest.test_case "teardown revokes DMA" `Quick
            test_teardown_revokes_dma_commutes ] );
      ( "randomized",
        [ QCheck_alcotest.to_alcotest qcheck_refinement;
          Alcotest.test_case "abstract invariant induction" `Quick
            test_spec_invariant_induction ] ) ]
