(* Whole-system fuzzing: random sequences of hypercalls, guest operations
   and KServ attacks against a live SeKVM instance, with the security
   invariants re-checked after every step. Also the deterministic
   multi-VM stress scenario. *)

open Sekvm
open Machine

let cfg = Kcore.default_boot_config

(* A small deterministic PRNG so failures reproduce from the seed. *)
module Rng = struct
  type t = { mutable s : int }

  let create seed = { s = (seed * 2 + 1) land 0x3fffffff }

  let next t =
    t.s <- (t.s * 1103515245 + 12345) land 0x3fffffff;
    t.s

  let below t n = next t mod n

  let pick t l = List.nth l (below t (List.length l))
end

type fuzz_state = {
  kcore : Kcore.t;
  kserv : Kserv.t;
  mutable live_vms : int list;
  mutable steps : int;
}

let boot_fuzz () =
  let kcore = Kcore.boot { cfg with Kcore.max_vms = 64 } in
  let kserv = Kserv.create kcore ~first_free_pfn:(Kcore.kserv_base cfg) in
  { kcore; kserv; live_vms = []; steps = 0 }

(* One random action. Every action must leave the invariants intact;
   actions may legitimately be denied, but never corrupt state. *)
let step (rng : Rng.t) (st : fuzz_state) : unit =
  st.steps <- st.steps + 1;
  let cpu = Rng.below rng cfg.Kcore.n_cpus in
  let random_guest_op () =
    match Rng.below rng 10 with
    | 0 -> Vm.G_read (Page_table.page_va (16 + Rng.below rng 64))
    | 1 ->
        Vm.G_write
          (Page_table.page_va (16 + Rng.below rng 64), Rng.below rng 1000)
    | 2 -> Vm.G_share (Page_table.page_va (16 + Rng.below rng 32))
    | 3 -> Vm.G_unshare (Page_table.page_va (16 + Rng.below rng 32))
    | 4 -> Vm.G_ipi (Rng.below rng 2, Rng.below rng 16)
    | 5 -> Vm.G_ack_irq
    | 6 -> Vm.G_uart_putc (Rng.below rng 128)
    | 7 -> Vm.G_set_reg (Rng.below rng 8, Rng.below rng 1000)
    | 8 -> Vm.G_protect (Page_table.page_va (16 + Rng.below rng 32))
    | 9 -> Vm.G_uart_getc
    | _ -> Vm.G_compute (Rng.below rng 100)
  in
  match Rng.below rng 12 with
  | 0 when List.length st.live_vms < 6 -> (
      match Kserv.boot_vm st.kserv ~cpu ~n_vcpus:2 ~image_pages:1 with
      | Ok vmid -> st.live_vms <- vmid :: st.live_vms
      | Error _ -> ()
      | exception Kserv.Out_of_memory -> ())
  | 1 when st.live_vms <> [] ->
      let vmid = Rng.pick rng st.live_vms in
      st.live_vms <- List.filter (fun v -> v <> vmid) st.live_vms;
      Kcore.teardown_vm st.kcore ~cpu ~vmid
  | 2 when st.live_vms <> [] ->
      ignore (Kcore.snapshot_vm st.kcore ~cpu ~vmid:(Rng.pick rng st.live_vms))
  | 3 | 4 ->
      (* KServ attacks with random frames: must never corrupt anything *)
      let pfn = Rng.below rng (Phys_mem.n_pages st.kcore.Kcore.mem) in
      ignore (Kserv.attack_read_vm_page st.kserv ~cpu ~pfn);
      ignore (Kserv.attack_write_vm_page st.kserv ~cpu ~pfn 0xbad);
      if st.live_vms <> [] then (
        (* "stealing" a page KServ happens to own is just a legitimate
           donation; keep the host's free list honest when it succeeds *)
        match
          Kserv.attack_steal_page st.kserv ~cpu ~victim_pfn:pfn
            ~vmid:(Rng.pick rng st.live_vms)
            ~ipa:(Page_table.page_va (200 + Rng.below rng 16))
        with
        | Ok () ->
            st.kserv.Kserv.free_pfns <-
              List.filter (fun p -> p <> pfn) st.kserv.Kserv.free_pfns
        | Error `Denied -> ())
  | 5 -> (
      (* random donation attempt with a random (often illegal) frame *)
      match st.live_vms with
      | [] -> ()
      | vms ->
          let pfn = Rng.below rng (Phys_mem.n_pages st.kcore.Kcore.mem) in
          match
            Kcore.map_page_to_vm st.kcore ~cpu ~vmid:(Rng.pick rng vms)
              ~ipa:(Page_table.page_va (300 + Rng.below rng 16))
              ~pfn
          with
          | Ok () ->
              st.kserv.Kserv.free_pfns <-
                List.filter (fun p -> p <> pfn) st.kserv.Kserv.free_pfns
          | Error `Denied -> ())
  | 6 -> (
      (* SMMU lifecycle with random (often illegal) arguments *)
      let device = Rng.below rng 4 in
      match st.live_vms with
      | [] -> ()
      | vms ->
          let owner =
            if Rng.below rng 2 = 0 then Machine.S2page.Kserv
            else Machine.S2page.Vm (Rng.pick rng vms)
          in
          ignore (Kcore.smmu_attach st.kcore ~cpu ~device ~owner);
          let pfn = Rng.below rng (Phys_mem.n_pages st.kcore.Kcore.mem) in
          ignore
            (Kcore.smmu_map st.kcore ~cpu ~device
               ~iova:(Page_table.page_va (Rng.below rng 8))
               ~pfn);
          if Rng.below rng 2 = 0 then
            ignore
              (Kcore.smmu_unmap st.kcore ~cpu ~device
                 ~iova:(Page_table.page_va (Rng.below rng 8))))
  | _ -> (
      match st.live_vms with
      | [] -> ()
      | vms -> (
          let vmid = Rng.pick rng vms in
          let vcpuid = Rng.below rng 2 in
          let ops = List.init (1 + Rng.below rng 4) (fun _ -> random_guest_op ()) in
          try ignore (Kserv.run_guest st.kserv ~cpu ~vmid ~vcpuid ops)
          with Kserv.Out_of_memory -> ()))

let run_fuzz seed n_steps =
  let rng = Rng.create seed in
  let st = boot_fuzz () in
  let ok = ref true in
  (try
     for _ = 1 to n_steps do
       step rng st;
       match Kcore.check_invariants st.kcore with
       | [] -> ()
       | bad ->
           Format.eprintf "seed %d step %d: %d violations (%s)@." seed
             st.steps (List.length bad)
             (String.concat "; "
                (List.map (fun v -> v.Kcore.detail) bad));
           ok := false;
           raise Exit
     done
   with
  | Exit -> ()
  | Kcore.Kcore_panic msg ->
      Format.eprintf "seed %d step %d: unexpected panic %s@." seed st.steps
        msg;
      ok := false);
  !ok

let qcheck_fuzz =
  QCheck.Test.make ~name:"random hypercall storms preserve the invariants"
    ~count:12
    QCheck.(int_bound 10_000)
    (fun seed -> run_fuzz seed 60)

let test_long_fuzz () =
  Alcotest.(check bool) "200-step run clean" true (run_fuzz 424242 200)

let test_stress_scenario () =
  let s = Vrm.Scenario.stress_run ~n_vms:4 ~rounds:3 () in
  Alcotest.(check int) "all rounds checked" 3 s.Vrm.Scenario.st_invariant_checks;
  Alcotest.(check bool) "guest ops ran" true (s.Vrm.Scenario.st_guest_ops > 100);
  Alcotest.(check bool) "faults handled" true (s.Vrm.Scenario.st_s2_faults > 0);
  Alcotest.(check bool) "IPIs delivered" true (s.Vrm.Scenario.st_vipis > 0)

let test_stress_more_vms () =
  let s = Vrm.Scenario.stress_run ~n_vms:8 ~rounds:2 () in
  Alcotest.(check int) "eight VMs" 8 s.Vrm.Scenario.st_vms

let test_stress_3level () =
  (* the other verified stage-2 geometry under the same load *)
  let s =
    Vrm.Scenario.stress_run
      ~config:
        { Kcore.default_boot_config with
          Kcore.stage2_geometry = Machine.Page_table.three_level }
      ~n_vms:4 ~rounds:2 ()
  in
  Alcotest.(check bool) "clean" true (s.Vrm.Scenario.st_guest_ops > 0)

let test_stress_4level () =
  let s =
    Vrm.Scenario.stress_run
      ~config:
        { Kcore.default_boot_config with
          Kcore.stage2_geometry = Machine.Page_table.four_level;
          s2_pool_pages = 256 }
      ~n_vms:4 ~rounds:2 ()
  in
  Alcotest.(check bool) "clean" true (s.Vrm.Scenario.st_guest_ops > 0)

let () =
  Alcotest.run "fuzz"
    [ ( "fuzz",
        [ QCheck_alcotest.to_alcotest qcheck_fuzz;
          Alcotest.test_case "long run" `Quick test_long_fuzz ] );
      ( "stress",
        [ Alcotest.test_case "4 VMs x 3 rounds" `Quick test_stress_scenario;
          Alcotest.test_case "8 VMs" `Quick test_stress_more_vms;
          Alcotest.test_case "3-level geometry" `Quick test_stress_3level;
          Alcotest.test_case "4-level geometry" `Quick test_stress_4level ] ) ]
