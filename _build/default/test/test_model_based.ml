(* Model-based property testing: random operation sequences against the
   page-table substrate and the ownership discipline, checked against
   simple reference models (an association-list mapping; a set-based
   ownership ledger). *)

open Machine

module Rng = struct
  type t = { mutable s : int }

  let create seed = { s = (seed * 2 + 1) land 0x3fffffff }

  let next t =
    t.s <- (t.s * 1103515245 + 12345) land 0x3fffffff;
    t.s

  let below t n = next t mod n
end

(* ---- page tables vs an assoc-list reference model ---- *)

let pt_model_run geometry seed steps =
  let rng = Rng.create seed in
  let mem = Phys_mem.create 96 in
  let pool = Page_pool.create ~name:"mb" ~mem ~first_pfn:1 ~n_pages:64 in
  let root = Page_pool.alloc pool in
  (* the reference: vp -> pfn *)
  let model = Hashtbl.create 16 in
  let ok = ref true in
  for _ = 1 to steps do
    let vp = Rng.below rng 1500 in
    let va = Page_table.page_va vp in
    (match Rng.below rng 3 with
    | 0 -> (
        let pfn = 64 + Rng.below rng 32 in
        match
          Page_table.plan_map mem geometry ~pool ~root ~va ~target_pfn:pfn
            ~perms:Pte.rw
        with
        | Ok ws ->
            if Hashtbl.mem model vp then ok := false
              (* mapping over an existing entry must be refused *)
            else begin
              Page_table.apply_writes mem ws;
              Hashtbl.replace model vp pfn
            end
        | Error `Already_mapped ->
            if not (Hashtbl.mem model vp) then ok := false
        | exception Page_pool.Pool_exhausted _ -> ())
    | 1 -> (
        match Page_table.plan_unmap mem geometry ~root ~va with
        | Some w ->
            if not (Hashtbl.mem model vp) then ok := false
            else begin
              Page_table.apply_write mem w;
              Hashtbl.remove model vp
            end
        | None -> if Hashtbl.mem model vp then ok := false)
    | _ ->
        (* walk and compare against the model *)
        let expected = Hashtbl.find_opt model vp in
        let got =
          match Page_table.walk mem geometry ~root va with
          | Page_table.Mapped (pfn, _) -> Some pfn
          | Page_table.Fault _ -> None
        in
        if expected <> got then ok := false);
    (* global agreement of the full mapping list, occasionally *)
    if Rng.below rng 10 = 0 then begin
      let actual =
        List.sort compare
          (List.map (fun (vp, pfn, _) -> (vp, pfn))
             (Page_table.mappings mem geometry ~root))
      in
      let expected =
        List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) model [])
      in
      if actual <> expected then ok := false
    end
  done;
  !ok

let qcheck_pt_model_3 =
  QCheck.Test.make ~name:"page table = assoc map (3-level)" ~count:40
    QCheck.(int_bound 100_000)
    (fun seed -> pt_model_run Page_table.three_level seed 120)

let qcheck_pt_model_4 =
  QCheck.Test.make ~name:"page table = assoc map (4-level)" ~count:25
    QCheck.(int_bound 100_000)
    (fun seed -> pt_model_run Page_table.four_level seed 80)

(* ---- TLB + table agree with the reference under invalidation ---- *)

let qcheck_tlb_coherent_with_walks =
  QCheck.Test.make
    ~name:"translate-with-TLB = translate-without, given TLBI discipline"
    ~count:30
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let mem = Phys_mem.create 96 in
      let pool = Page_pool.create ~name:"tb" ~mem ~first_pfn:1 ~n_pages:64 in
      let g = Page_table.three_level in
      let root = Page_pool.alloc pool in
      let tlb = Tlb.create ~capacity:4 in
      let translate vp =
        match Tlb.lookup tlb ~vmid:1 ~vp with
        | Some (pfn, _) -> Some pfn
        | None -> (
            match Page_table.walk mem g ~root (Page_table.page_va vp) with
            | Page_table.Mapped (pfn, perms) ->
                Tlb.fill tlb ~vmid:1 ~vp ~pfn ~perms;
                Some pfn
            | Page_table.Fault _ -> None)
      in
      let ok = ref true in
      for _ = 1 to 80 do
        let vp = Rng.below rng 12 in
        let va = Page_table.page_va vp in
        (match Rng.below rng 3 with
        | 0 -> (
            match
              Page_table.plan_map mem g ~pool ~root ~va
                ~target_pfn:(64 + Rng.below rng 16)
                ~perms:Pte.rw
            with
            | Ok ws -> Page_table.apply_writes mem ws
            (* a fresh mapping needs no invalidation (empty entry) *)
            | Error `Already_mapped -> ()
            | exception Page_pool.Pool_exhausted _ -> ())
        | 1 -> (
            match Page_table.plan_unmap mem g ~root ~va with
            | Some w ->
                Page_table.apply_write mem w;
                (* the Sequential-TLB-Invalidation discipline *)
                Tlb.invalidate_va tlb ~vmid:1 ~vp
            | None -> ())
        | _ ->
            let via_tlb = translate vp in
            let direct =
              match Page_table.walk mem g ~root va with
              | Page_table.Mapped (pfn, _) -> Some pfn
              | Page_table.Fault _ -> None
            in
            if via_tlb <> direct then ok := false)
      done;
      !ok)

(* ---- SC ⊆ RM extended to the XCHG/CAS atomics ---- *)

let gen_thread tid =
  let open QCheck.Gen in
  let open Memmodel in
  let reg =
    let c = ref 0 in
    map
      (fun () ->
        incr c;
        Reg.v (Printf.sprintf "q%d_%d" tid !c))
      unit
  in
  let base = oneofl [ "x"; "y" ] in
  let instr =
    frequency
      [ (2, map2 (fun r b -> Instr.load r (Expr.at b)) reg base);
        ( 2,
          map2 (fun b v -> Instr.store (Expr.at b) (Expr.c v)) base
            (int_range 1 2) );
        (1, map2 (fun r b -> Instr.xchg r (Expr.at b) (Expr.c 5)) reg base);
        ( 1,
          map2
            (fun r b ->
              Instr.cas r (Expr.at b) ~expected:(Expr.c 0)
                ~desired:(Expr.c 9))
            reg base );
        (1, return Instr.dmb) ]
  in
  map (fun l -> Prog.thread tid l) (list_size (int_range 1 4) instr)

let qcheck_sc_subset_rm_with_atomics =
  let open Memmodel in
  QCheck.Test.make
    ~name:"SC ⊆ Promising with XCHG/CAS in the mix" ~count:60
    (QCheck.make
       (QCheck.Gen.map2
          (fun t1 t2 ->
            Prog.make ~name:"rand-at"
              ~observables:
                [ Prog.Obs_loc (Loc.v "x"); Prog.Obs_loc (Loc.v "y") ]
              [ t1; t2 ])
          (gen_thread 1) (gen_thread 2)))
    (fun prog ->
      let normals b =
        Behavior.Outcome_set.filter
          (fun o -> o.Behavior.status = Behavior.Normal)
          b
      in
      let sc = normals (Sc.run prog) in
      let rm =
        normals
          (Promising.run
             ~config:{ Promising.default_config with max_promises = 2 }
             prog)
      in
      Behavior.subset sc rm)

let () =
  Alcotest.run "model-based"
    [ ( "page-table",
        [ QCheck_alcotest.to_alcotest qcheck_pt_model_3;
          QCheck_alcotest.to_alcotest qcheck_pt_model_4 ] );
      ("tlb", [ QCheck_alcotest.to_alcotest qcheck_tlb_coherent_with_walks ]);
      ( "atomics",
        [ QCheck_alcotest.to_alcotest qcheck_sc_subset_rm_with_atomics ] ) ]
