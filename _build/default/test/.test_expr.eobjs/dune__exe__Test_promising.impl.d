test/test_promising.ml: Alcotest Behavior Expr Instr List Litmus Litmus_suite Loc Memmodel Option Paper_examples Printf Prog Promising QCheck QCheck_alcotest Reg Sc
