test/test_tlb.mli:
