test/test_walker.mli:
