test/test_extensions.ml: Alcotest Kcore Kserv List Machine Mmu_walker Npt Page_pool Page_table Perf Phys_mem Pte QCheck QCheck_alcotest Sekvm String Vgic Vm Vrm
