test/test_abs_spec.mli:
