test/test_kcore.mli:
