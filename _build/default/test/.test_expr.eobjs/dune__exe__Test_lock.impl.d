test/test_lock.ml: Alcotest Behavior Expr Instr List Loc Memmodel Prog Pushpull Reg Sekvm Ticket_lock Vrm
