test/test_refinement.mli:
