test/test_partial_order.ml: Alcotest List Loc Memmodel Partial_order Prog Pushpull Sekvm Vrm
