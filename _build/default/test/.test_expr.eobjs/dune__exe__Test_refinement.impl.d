test/test_refinement.ml: Alcotest Behavior List Litmus Loc Memmodel Paper_examples Prog Promising Reg Sc Sekvm Vrm
