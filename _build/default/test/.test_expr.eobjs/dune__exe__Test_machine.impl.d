test/test_machine.ml: Alcotest List Machine Page_pool Page_table Phys_mem Pte QCheck QCheck_alcotest S2page
