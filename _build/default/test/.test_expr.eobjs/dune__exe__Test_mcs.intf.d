test/test_mcs.mli:
