test/test_pushpull.mli:
