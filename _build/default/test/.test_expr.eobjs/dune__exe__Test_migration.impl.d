test/test_migration.ml: Alcotest Array Kcore Kserv List Machine Page_table Phys_mem S2page Sekvm Vm Vrm
