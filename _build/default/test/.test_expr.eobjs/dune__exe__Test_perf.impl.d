test/test_perf.ml: Alcotest App_sim Cost_model Float List Micro Multi_vm Perf Printf QCheck QCheck_alcotest Workload
