test/test_theorem4.mli:
