test/test_abs_spec.ml: Abs_spec Alcotest Format Kcore Kserv List Machine QCheck QCheck_alcotest Result Sekvm Vm Vrm
