test/test_axiomatic.mli:
