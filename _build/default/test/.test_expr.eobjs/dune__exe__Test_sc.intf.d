test/test_sc.mli:
