test/test_misc.ml: Alcotest Array Behavior Expr Format Instr Kcore Kserv Kvm_baseline List Litmus Loc Machine Memmodel Npt Paper_examples Prog Promising Pushpull Reg Sc Sekvm String Trace Vm Vrm
