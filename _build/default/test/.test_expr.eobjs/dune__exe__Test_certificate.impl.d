test/test_certificate.ml: Alcotest Format List Printf Sekvm String Vrm
