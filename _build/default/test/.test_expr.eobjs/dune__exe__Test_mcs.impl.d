test/test_mcs.ml: Alcotest Behavior Expr Instr Kernel_progs List Loc Mcs_lock Memmodel Prog Promising Pushpull Reg Sc Sekvm Vrm
