test/test_sc.ml: Alcotest Behavior Expr Instr List Loc Memmodel Prog QCheck QCheck_alcotest Reg Sc
