test/test_tlb.ml: Alcotest List Machine Option Page_pool Page_table Phys_mem Pte QCheck QCheck_alcotest Smmu Tlb Tlb_sim
