test/test_kcore.ml: Alcotest Array Cpu El2_pt Kcore Kserv List Machine Npt Option Page_table Phys_mem Pte S2page Sekvm String Tlb Vcpu_ctxt Vm Vrm
