test/test_certificate.mli:
