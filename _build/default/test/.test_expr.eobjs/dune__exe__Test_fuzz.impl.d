test/test_fuzz.ml: Alcotest Format Kcore Kserv List Machine Page_table Phys_mem QCheck QCheck_alcotest Sekvm String Vm Vrm
