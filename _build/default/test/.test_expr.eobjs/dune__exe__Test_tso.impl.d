test/test_tso.ml: Alcotest Behavior Expr Instr List Litmus Litmus_suite Loc Memmodel Paper_examples Printf Prog Promising QCheck QCheck_alcotest Reg Sc Tso
