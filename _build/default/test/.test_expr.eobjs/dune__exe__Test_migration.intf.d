test/test_migration.mli:
