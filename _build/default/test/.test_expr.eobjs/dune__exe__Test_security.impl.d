test/test_security.ml: Alcotest Data_oracle Kcore Kserv Kvm_baseline List Machine Npt Page_table Phys_mem Sekvm Vm Vrm
