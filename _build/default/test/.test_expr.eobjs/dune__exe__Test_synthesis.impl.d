test/test_synthesis.ml: Alcotest List Litmus Memmodel Paper_examples Promising Refinement Sekvm String Synthesis Vrm
