test/test_litmus_suite.ml: Alcotest List Litmus Litmus_suite Memmodel Prog Vrm
