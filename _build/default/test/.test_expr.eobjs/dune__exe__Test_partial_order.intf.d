test/test_partial_order.mli:
