test/test_expr.ml: Alcotest Expr Instr List Loc Memmodel QCheck QCheck_alcotest Reg
