test/test_walker.ml: Alcotest List Machine Mmu_walker Page_pool Page_table Phys_mem Pte QCheck QCheck_alcotest
