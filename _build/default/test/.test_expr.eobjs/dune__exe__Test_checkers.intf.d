test/test_checkers.mli:
