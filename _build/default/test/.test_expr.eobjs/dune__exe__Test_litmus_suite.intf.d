test/test_litmus_suite.mli:
