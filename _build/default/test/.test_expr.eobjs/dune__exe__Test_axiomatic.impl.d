test/test_axiomatic.ml: Alcotest Axiomatic Behavior Expr Format Instr List Litmus Litmus_suite Loc Memmodel Paper_examples Printf Prog Promising QCheck QCheck_alcotest Reg
