test/test_checkers.ml: Alcotest El2_pt Expr Instr Kcore Kernel_progs Kserv List Loc Machine Memmodel Npt Page_table Prog Pte S2page Sekvm Smmu Smmu_ops Trace Vrm
