test/test_promising.mli:
