test/test_model_based.ml: Alcotest Behavior Expr Hashtbl Instr List Loc Machine Memmodel Page_pool Page_table Phys_mem Printf Prog Promising Pte QCheck QCheck_alcotest Reg Sc Tlb
