test/test_theorem4.ml: Alcotest Behavior Litmus Memmodel Paper_examples Promising Sc Sekvm Theorem4 Vrm
