test/test_pushpull.ml: Alcotest Behavior Expr Instr List Loc Memmodel Prog Pushpull Reg Result Sekvm
