(* Tests for the TLB, the SMMU, and the Example 6 invalidation-ordering
   simulation. *)

open Machine

let test_tlb_basic () =
  let tlb = Tlb.create ~capacity:4 in
  Alcotest.(check (option (pair int bool))) "miss" None
    (Option.map (fun (p, perms) -> (p, perms.Pte.writable))
       (Tlb.lookup tlb ~vmid:1 ~vp:5));
  Tlb.fill tlb ~vmid:1 ~vp:5 ~pfn:50 ~perms:Pte.rw;
  Alcotest.(check (option int)) "hit" (Some 50)
    (Option.map fst (Tlb.lookup tlb ~vmid:1 ~vp:5));
  Alcotest.(check (option int)) "vmid-tagged" None
    (Option.map fst (Tlb.lookup tlb ~vmid:2 ~vp:5));
  Alcotest.(check int) "stats" 2 tlb.Tlb.misses;
  Alcotest.(check int) "stats hits" 1 tlb.Tlb.hits

let test_tlb_eviction () =
  let tlb = Tlb.create ~capacity:2 in
  Tlb.fill tlb ~vmid:0 ~vp:1 ~pfn:10 ~perms:Pte.rw;
  Tlb.fill tlb ~vmid:0 ~vp:2 ~pfn:20 ~perms:Pte.rw;
  Tlb.fill tlb ~vmid:0 ~vp:3 ~pfn:30 ~perms:Pte.rw;
  Alcotest.(check int) "capacity respected" 2 (Tlb.size tlb);
  Alcotest.(check (option int)) "oldest evicted" None
    (Option.map fst (Tlb.lookup tlb ~vmid:0 ~vp:1));
  Alcotest.(check (option int)) "newest kept" (Some 30)
    (Option.map fst (Tlb.lookup tlb ~vmid:0 ~vp:3))

let test_tlb_refill_same_vp () =
  let tlb = Tlb.create ~capacity:4 in
  Tlb.fill tlb ~vmid:0 ~vp:1 ~pfn:10 ~perms:Pte.rw;
  Tlb.fill tlb ~vmid:0 ~vp:1 ~pfn:11 ~perms:Pte.ro;
  Alcotest.(check int) "no duplicate entry" 1 (Tlb.size tlb);
  Alcotest.(check (option int)) "updated" (Some 11)
    (Option.map fst (Tlb.lookup tlb ~vmid:0 ~vp:1))

let test_tlb_invalidation () =
  let tlb = Tlb.create ~capacity:8 in
  Tlb.fill tlb ~vmid:1 ~vp:1 ~pfn:10 ~perms:Pte.rw;
  Tlb.fill tlb ~vmid:1 ~vp:2 ~pfn:20 ~perms:Pte.rw;
  Tlb.fill tlb ~vmid:2 ~vp:1 ~pfn:30 ~perms:Pte.rw;
  Tlb.invalidate_va tlb ~vmid:1 ~vp:1;
  Alcotest.(check (option int)) "va invalidated" None
    (Option.map fst (Tlb.lookup tlb ~vmid:1 ~vp:1));
  Alcotest.(check (option int)) "other vmid untouched" (Some 30)
    (Option.map fst (Tlb.lookup tlb ~vmid:2 ~vp:1));
  Tlb.invalidate_vmid tlb ~vmid:1;
  Alcotest.(check (option int)) "vmid flushed" None
    (Option.map fst (Tlb.lookup tlb ~vmid:1 ~vp:2));
  Tlb.invalidate_all tlb;
  Alcotest.(check int) "all flushed" 0 (Tlb.size tlb)

let test_tlb_consistency_check () =
  let tlb = Tlb.create ~capacity:8 in
  Tlb.fill tlb ~vmid:0 ~vp:1 ~pfn:10 ~perms:Pte.rw;
  Tlb.fill tlb ~vmid:0 ~vp:2 ~pfn:20 ~perms:Pte.rw;
  let walk ~vmid:_ ~vp = if vp = 1 then Some (10, Pte.rw) else None in
  let stale = Tlb.inconsistent_entries tlb ~walk in
  Alcotest.(check int) "one stale entry" 1 (List.length stale);
  Alcotest.(check int) "it is vp 2" 2 (List.hd stale).Tlb.e_vp

let test_smmu () =
  let mem = Phys_mem.create 64 in
  let pool = Page_pool.create ~name:"smmu" ~mem ~first_pfn:1 ~n_pages:32 in
  let smmu = Smmu.create ~mem ~geometry:Page_table.three_level ~pool ~tlb_capacity:8 in
  Alcotest.(check (option int)) "unattached device: no DMA" None
    (Option.map fst (Smmu.translate smmu ~device:3 ~iova:0));
  let root = Smmu.attach_device smmu ~device:3 in
  Alcotest.(check bool) "attached" true (Smmu.is_attached smmu ~device:3);
  Alcotest.check_raises "double attach"
    (Invalid_argument "Smmu.attach_device: already attached") (fun () ->
      ignore (Smmu.attach_device smmu ~device:3));
  (match
     Page_table.plan_map mem Page_table.three_level ~pool ~root
       ~va:(Page_table.page_va 9) ~target_pfn:40 ~perms:Pte.rw
   with
  | Ok ws -> Page_table.apply_writes mem ws
  | Error `Already_mapped -> Alcotest.fail "map");
  Alcotest.(check (option int)) "translate" (Some 40)
    (Option.map fst (Smmu.translate smmu ~device:3 ~iova:(Page_table.page_va 9)));
  (* second translate hits the SMMU TLB *)
  let hits_before = smmu.Smmu.tlb.Tlb.hits in
  ignore (Smmu.translate smmu ~device:3 ~iova:(Page_table.page_va 9));
  Alcotest.(check int) "TLB hit" (hits_before + 1) smmu.Smmu.tlb.Tlb.hits;
  Alcotest.(check (list int)) "reachable" [ 40 ]
    (Smmu.reachable_pfns smmu ~device:3);
  Smmu.invalidate_tlb_va smmu ~device:3 ~iova:(Page_table.page_va 9);
  Alcotest.(check int) "invalidated" 0 (Tlb.size smmu.Smmu.tlb)

let test_smmu_disabled_is_bypass () =
  (* the dangerous configuration KCore's invariants forbid *)
  let mem = Phys_mem.create 16 in
  let pool = Page_pool.create ~name:"s" ~mem ~first_pfn:1 ~n_pages:4 in
  let smmu = Smmu.create ~mem ~geometry:Page_table.three_level ~pool ~tlb_capacity:4 in
  smmu.Smmu.enabled <- false;
  Alcotest.(check (option int)) "raw physical DMA" (Some 7)
    (Option.map fst (Smmu.translate smmu ~device:9 ~iova:(Page_table.page_va 7)))

(* Example 6: invalidation-ordering race *)

let test_hardware_orders () =
  let orders = Tlb_sim.hardware_orders Tlb_sim.unmap_no_barrier in
  Alcotest.(check int) "two orders without barrier" 2 (List.length orders);
  let orders_b = Tlb_sim.hardware_orders Tlb_sim.unmap_with_barrier in
  Alcotest.(check int) "one order with barrier" 1 (List.length orders_b)

let test_example6 () =
  Alcotest.(check bool) "stale TLB without barrier" true
    (Tlb_sim.stale_tlb_possible Tlb_sim.unmap_no_barrier);
  Alcotest.(check bool) "no stale TLB with barrier" false
    (Tlb_sim.stale_tlb_possible Tlb_sim.unmap_with_barrier)

let test_example6_missing_tlbi_entirely () =
  (* forgetting the TLBI altogether is also unsafe, barrier or not *)
  Alcotest.(check bool) "no TLBI at all: stale" true
    (Tlb_sim.stale_tlb_possible [ Tlb_sim.K_unmap; Tlb_sim.K_barrier ])

let qcheck_tlb_never_stale_after_inval =
  QCheck.Test.make ~name:"lookup after invalidate_va always misses"
    ~count:200
    QCheck.(pair (int_bound 10) (int_bound 10))
    (fun (vmid, vp) ->
      let tlb = Tlb.create ~capacity:8 in
      Tlb.fill tlb ~vmid ~vp ~pfn:1 ~perms:Pte.rw;
      Tlb.invalidate_va tlb ~vmid ~vp;
      Tlb.lookup tlb ~vmid ~vp = None)

let () =
  Alcotest.run "tlb"
    [ ( "tlb",
        [ Alcotest.test_case "basic" `Quick test_tlb_basic;
          Alcotest.test_case "eviction" `Quick test_tlb_eviction;
          Alcotest.test_case "refill same vp" `Quick test_tlb_refill_same_vp;
          Alcotest.test_case "invalidation" `Quick test_tlb_invalidation;
          Alcotest.test_case "consistency check" `Quick
            test_tlb_consistency_check;
          QCheck_alcotest.to_alcotest qcheck_tlb_never_stale_after_inval ] );
      ( "smmu",
        [ Alcotest.test_case "attach/translate" `Quick test_smmu;
          Alcotest.test_case "disabled bypass" `Quick
            test_smmu_disabled_is_bypass ] );
      ( "example6",
        [ Alcotest.test_case "hardware orders" `Quick test_hardware_orders;
          Alcotest.test_case "stale iff no barrier" `Quick test_example6;
          Alcotest.test_case "missing TLBI" `Quick
            test_example6_missing_tlbi_entirely ] ) ]
