(* Tests for the ticket lock: runtime discipline checking and the DSL
   rendition of Fig. 7. *)

open Sekvm

let test_acquire_release () =
  let l = Ticket_lock.create "t" in
  Alcotest.(check bool) "free" false (Ticket_lock.is_held l);
  Ticket_lock.acquire l ~cpu:1;
  Alcotest.(check (option int)) "held by 1" (Some 1) (Ticket_lock.holder l);
  Ticket_lock.release l ~cpu:1;
  Alcotest.(check bool) "free again" false (Ticket_lock.is_held l);
  Alcotest.(check int) "acquisitions counted" 1 l.Ticket_lock.acquisitions

let test_double_acquire () =
  let l = Ticket_lock.create "t" in
  Ticket_lock.acquire l ~cpu:1;
  Alcotest.(check bool) "double acquire raises" true
    (try
       Ticket_lock.acquire l ~cpu:2;
       false
     with Ticket_lock.Lock_error _ -> true)

let test_release_by_other () =
  let l = Ticket_lock.create "t" in
  Ticket_lock.acquire l ~cpu:1;
  Alcotest.(check bool) "wrong releaser raises" true
    (try
       Ticket_lock.release l ~cpu:2;
       false
     with Ticket_lock.Lock_error _ -> true)

let test_release_free () =
  let l = Ticket_lock.create "t" in
  Alcotest.(check bool) "release of free raises" true
    (try
       Ticket_lock.release l ~cpu:1;
       false
     with Ticket_lock.Lock_error _ -> true)

let test_with_lock_exception_safe () =
  let l = Ticket_lock.create "t" in
  (try
     Ticket_lock.with_lock l ~cpu:3 (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check bool) "released after exception" false
    (Ticket_lock.is_held l);
  let v = Ticket_lock.with_lock l ~cpu:3 (fun () -> 42) in
  Alcotest.(check int) "result" 42 v

let test_ticket_progression () =
  let l = Ticket_lock.create "t" in
  for cpu = 0 to 4 do
    Ticket_lock.with_lock l ~cpu (fun () -> ())
  done;
  Alcotest.(check int) "ticket" 5 l.Ticket_lock.ticket;
  Alcotest.(check int) "now" 5 l.Ticket_lock.now

(* ---- DSL rendition ---- *)

let test_dsl_shapes () =
  let acq = Ticket_lock.dsl_acquire ~name:"l" ~protects:[ "x" ] () in
  let rel = Ticket_lock.dsl_release ~name:"l" ~protects:[ "x" ] () in
  Alcotest.(check int) "acquire length" 4 (List.length acq);
  Alcotest.(check int) "release length" 2 (List.length rel);
  (* acquire ends with the pull; release starts with the push *)
  (match List.rev acq with
  | Memmodel.Instr.Pull [ "x" ] :: _ -> ()
  | _ -> Alcotest.fail "acquire must end in pull");
  (match rel with
  | Memmodel.Instr.Push [ "x" ] :: Memmodel.Instr.Store (_, _, Memmodel.Instr.Release) :: [] -> ()
  | _ -> Alcotest.fail "release must be push then release-store")

let test_dsl_lock_bases () =
  Alcotest.(check (list string)) "bases" [ "l.ticket"; "l.now" ]
    (Ticket_lock.lock_bases "l")

let test_dsl_mutual_exclusion_sc () =
  (* two critical sections incrementing a counter under the DSL lock:
     under SC the counter always ends at 2 and DRF holds *)
  let open Memmodel in
  let worker tid =
    Prog.thread tid
      (Ticket_lock.dsl_critical ~name:"l" ~protects:[ "c" ]
         [ Instr.load (Reg.v "v") (Expr.at "c");
           Instr.store (Expr.at "c") Expr.(r (Reg.v "v") + c 1) ])
  in
  let prog =
    Prog.make ~name:"me"
      ~observables:[ Prog.Obs_loc (Loc.v "c") ]
      ~shared_bases:("c" :: Ticket_lock.lock_bases "l")
      [ worker 1; worker 2 ]
  in
  match Pushpull.check ~exempt:(Ticket_lock.lock_bases "l") prog with
  | Pushpull.Drf_ok b ->
      Alcotest.(check bool) "counter always 2" true
        (List.for_all
           (fun (o : Behavior.outcome) ->
             o.Behavior.status <> Behavior.Normal
             || o.Behavior.values = [ (Prog.Obs_loc (Loc.v "c"), 2) ])
           (Behavior.elements b))
  | Pushpull.Drf_violation v ->
      Alcotest.failf "violation: %a" Pushpull.pp_violation v
  | Pushpull.Drf_kernel_panic _ -> Alcotest.fail "panic"

let test_dsl_barrier_variants () =
  (* the Fig. 7 lock passes the barrier checker; the plain variant fails *)
  let prog barriers =
    let open Memmodel in
    Prog.make ~name:"b"
      ~observables:[ Prog.Obs_loc (Loc.v "c") ]
      [ Prog.thread 1
          (Ticket_lock.dsl_critical ~barriers ~name:"l" ~protects:[ "c" ]
             [ Instr.store (Expr.at "c") (Expr.c 1) ]) ]
  in
  Alcotest.(check bool) "with barriers: holds" true
    (Vrm.Check_barrier.check (prog true)).Vrm.Check_barrier.holds;
  Alcotest.(check bool) "without barriers: fails" false
    (Vrm.Check_barrier.check (prog false)).Vrm.Check_barrier.holds

let () =
  Alcotest.run "lock"
    [ ( "runtime",
        [ Alcotest.test_case "acquire/release" `Quick test_acquire_release;
          Alcotest.test_case "double acquire" `Quick test_double_acquire;
          Alcotest.test_case "release by other" `Quick test_release_by_other;
          Alcotest.test_case "release free" `Quick test_release_free;
          Alcotest.test_case "with_lock exception-safe" `Quick
            test_with_lock_exception_safe;
          Alcotest.test_case "ticket progression" `Quick
            test_ticket_progression ] );
      ( "dsl",
        [ Alcotest.test_case "shapes" `Quick test_dsl_shapes;
          Alcotest.test_case "lock bases" `Quick test_dsl_lock_bases;
          Alcotest.test_case "mutual exclusion on SC" `Quick
            test_dsl_mutual_exclusion_sc;
          Alcotest.test_case "barrier variants" `Quick
            test_dsl_barrier_variants ] ) ]
