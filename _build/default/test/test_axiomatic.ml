(* Cross-validation of the two relaxed-memory models: the paper's proofs
   rest on Promising Arm being equivalent to the Armv8 axiomatic
   specification; here the two executable models are compared outcome-set
   for outcome-set on the litmus corpus and on thousands of random
   straight-line programs. *)

open Memmodel

let axio_cfg =
  { Promising.default_config with max_promises = 2; cert_depth = 40 }

let normals (b : Behavior.t) =
  Behavior.Outcome_set.filter (fun o -> o.Behavior.status = Behavior.Normal) b

(* ---- corpus agreement ---- *)

let straight_line_tests =
  (* every suite test without loops/branches/computed addresses *)
  [ Paper_examples.example1; Paper_examples.mp_plain; Paper_examples.mp_dmb;
    Paper_examples.mp_rel_acq; Paper_examples.sb; Paper_examples.sb_dmb;
    Paper_examples.corr; Litmus_suite.s_plain; Litmus_suite.s_dmb;
    Litmus_suite.w22_plain; Litmus_suite.w22_dmb; Litmus_suite.wrc_plain;
    Litmus_suite.wrc_dmb; Litmus_suite.isa2; Litmus_suite.cowr;
    Litmus_suite.corw1; Litmus_suite.sb_one_dmb; Litmus_suite.r_plain;
    Litmus_suite.r_dmb; Litmus_suite.corr_total; Litmus_suite.sb_rel_acq ]

let test_corpus_agreement () =
  List.iter
    (fun (t : Litmus.t) ->
      let ax = Axiomatic.run t.Litmus.prog in
      let pr = normals (Promising.run ~config:axio_cfg t.Litmus.prog) in
      if not (Behavior.equal ax pr) then
        Alcotest.failf "%s: axiomatic %d outcomes vs promising %d@.ax: %a@.pr: %a"
          t.Litmus.prog.Prog.name (Behavior.cardinal ax)
          (Behavior.cardinal pr) Behavior.pp ax Behavior.pp pr)
    straight_line_tests

let test_lb_data_agreement () =
  (* load buffering with data deps: the dob edges matter on both sides *)
  let ax = Axiomatic.run Paper_examples.lb_data.Litmus.prog in
  let pr =
    normals (Promising.run ~config:axio_cfg Paper_examples.lb_data.Litmus.prog)
  in
  Alcotest.(check bool) "agree" true (Behavior.equal ax pr)

(* ---- random-program equivalence ---- *)

let gen_thread ?(with_rmw = true) tid =
  let open QCheck.Gen in
  let base = oneofl [ "x"; "y" ] in
  let fresh_reg =
    let c = ref 0 in
    fun () ->
      incr c;
      Reg.v (Printf.sprintf "t%d_r%d" tid !c)
  in
  let lord = oneofl [ Instr.Plain; Instr.Acquire ] in
  let word = oneofl [ Instr.Plain; Instr.Release ] in
  let instr defined =
    frequency
      ([ (3, map2 (fun b o -> `Load (b, o)) base lord);
         (3, map3 (fun b v o -> `Store (b, `Const v, o)) base (int_range 1 2) word);
         (1, oneofl [ `Dmb Instr.Dmb_full; `Dmb Instr.Dmb_ld; `Dmb Instr.Dmb_st ]) ]
      @ (if with_rmw then [ (1, map2 (fun b o -> `Faa (b, o)) base lord) ]
         else [])
      @
      if defined = [] then []
      else
        [ ( 2,
            map3
              (fun b r o -> `Store (b, `Reg r, o))
              base (oneofl defined) word ) ])
  in
  let rec build n defined acc =
    if n = 0 then return (List.rev acc)
    else
      instr defined >>= fun op ->
      let defined, i =
        match op with
        | `Load (b, o) ->
            let r = fresh_reg () in
            (r :: defined, Instr.load ~order:o r (Expr.at b))
        | `Store (b, `Const v, o) ->
            (defined, Instr.store ~order:o (Expr.at b) (Expr.c v))
        | `Store (b, `Reg r, o) ->
            (defined, Instr.store ~order:o (Expr.at b) (Expr.r r))
        | `Faa (b, o) ->
            let r = fresh_reg () in
            (r :: defined, Instr.faa ~order:o r (Expr.at b) (Expr.c 1))
        | `Dmb k -> (defined, Instr.Barrier k)
      in
      build (n - 1) defined (i :: acc)
  in
  int_range 1 3 >>= fun n -> build n [] []

let gen_prog ?with_rmw () =
  QCheck.Gen.map2
    (fun c1 c2 ->
      Prog.make ~name:"rand-ax"
        ~observables:
          [ Prog.Obs_loc (Loc.v "x"); Prog.Obs_loc (Loc.v "y");
            Prog.Obs_reg (1, Reg.v "t1_r1"); Prog.Obs_reg (2, Reg.v "t2_r1") ]
        [ Prog.thread 1 c1; Prog.thread 2 c2 ])
    (gen_thread ?with_rmw 1) (gen_thread ?with_rmw 2)

let report_mismatch prog ax pr =
  Format.eprintf "@.MISMATCH on:@.";
  List.iter
    (fun th ->
      Format.eprintf "thread %d:@." th.Prog.tid;
      List.iter (fun i -> Format.eprintf "  %s@." (Instr.show i)) th.Prog.code)
    prog.Prog.threads;
  Format.eprintf "axiomatic-only: %a@.promising-only: %a@." Behavior.pp
    (Behavior.diff ax pr) Behavior.pp (Behavior.diff pr ax)

(* On the RMW-free fragment the two models must agree exactly: promises
   cover every store (budget 3 >= stores per thread). *)
let qcheck_equivalence =
  QCheck.Test.make
    ~name:"axiomatic = Promising on straight-line load/store programs"
    ~count:400
    (QCheck.make (gen_prog ~with_rmw:false ()))
    (fun prog ->
      let ax = Axiomatic.run prog in
      let pr =
        normals
          (Promising.run
             ~config:{ axio_cfg with Promising.max_promises = 3 }
             prog)
      in
      if Behavior.equal ax pr then true
      else begin
        report_mismatch prog ax pr;
        false
      end)

(* With RMWs the executor is deliberately weaker (RMWs are never
   promised), so it may under-approximate — but it must remain SOUND:
   every Promising behavior is axiomatically valid Armv8. *)
let qcheck_soundness =
  QCheck.Test.make
    ~name:"Promising behaviors are axiomatically valid (with RMWs)"
    ~count:300
    (QCheck.make (gen_prog ~with_rmw:true ()))
    (fun prog ->
      let ax = Axiomatic.run prog in
      let pr = normals (Promising.run ~config:axio_cfg prog) in
      if Behavior.subset pr ax then true
      else begin
        report_mismatch prog ax pr;
        false
      end)

let () =
  Alcotest.run "axiomatic"
    [ ( "corpus",
        [ Alcotest.test_case "litmus corpus agreement" `Quick
            test_corpus_agreement;
          Alcotest.test_case "lb-data agreement" `Quick
            test_lb_data_agreement ] );
      ( "qcheck",
        [ QCheck_alcotest.to_alcotest qcheck_equivalence;
          QCheck_alcotest.to_alcotest qcheck_soundness ] ) ]
