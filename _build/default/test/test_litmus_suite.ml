(* The classical Armv8 litmus validation suite, run exhaustively under
   both executors; every test's expected SC/RM verdicts must hold. *)

open Memmodel

let case (t : Litmus.t) =
  Alcotest.test_case t.Litmus.prog.Prog.name `Quick (fun () ->
      let r = Litmus.run t in
      if not r.Litmus.as_expected then
        Alcotest.failf "%s: unexpected result:@.%a" t.Litmus.prog.Prog.name
          Litmus.pp_result r)

let test_multicopy_atomicity_family () =
  (* the three WRC variants agree on the mechanism: forbidden whenever the
     observer chain is ordered, allowed when it is not *)
  let verdict t = (Litmus.run t).Litmus.rm_sat in
  Alcotest.(check bool) "wrc-plain allowed" true
    (verdict Litmus_suite.wrc_plain);
  Alcotest.(check bool) "wrc-dmb forbidden" false
    (verdict Litmus_suite.wrc_dmb);
  Alcotest.(check bool) "wrc-addr forbidden" false
    (verdict Litmus_suite.wrc_addr)

let test_ctrl_asymmetry () =
  (* the paper's Example 2 hinges on this: control dependencies do not
     order loads (mp-ctrl allowed) but do order stores (lb-ctrl
     forbidden); ISB restores load ordering *)
  let verdict t = (Litmus.run t).Litmus.rm_sat in
  Alcotest.(check bool) "ctrl does not order loads" true
    (verdict Litmus_suite.mp_ctrl);
  Alcotest.(check bool) "ctrl+isb orders loads" false
    (verdict Litmus_suite.mp_ctrl_isb);
  Alcotest.(check bool) "ctrl orders stores" false
    (verdict Litmus_suite.lb_ctrl)

let test_suite_refinement_consistency () =
  (* for every forbidden-on-RM test, the refinement checker agrees that
     RM adds nothing; for every allowed one it exhibits the witness *)
  List.iter
    (fun (t : Litmus.t) ->
      let v = Vrm.Refinement.check ?config:t.Litmus.rm_config t.Litmus.prog in
      if t.Litmus.expect_rm && not t.Litmus.expect_sc then
        Alcotest.(check bool)
          (t.Litmus.prog.Prog.name ^ ": RM-only witness")
          false v.Vrm.Refinement.holds)
    Litmus_suite.all

let () =
  Alcotest.run "litmus-suite"
    [ ("shapes", List.map case Litmus_suite.all);
      ( "families",
        [ Alcotest.test_case "multi-copy atomicity" `Quick
            test_multicopy_atomicity_family;
          Alcotest.test_case "control-dependency asymmetry" `Quick
            test_ctrl_asymmetry;
          Alcotest.test_case "refinement consistency" `Quick
            test_suite_refinement_consistency ] ) ]
