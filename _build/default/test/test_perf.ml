(* Tests for the evaluation substrate: the cost model's mechanisms and the
   shape claims of Table 3, Figure 8 and Figure 9. *)

open Perf

let test_miss_cost_nested_blowup () =
  let p = Cost_model.m400_params in
  let kvm = Cost_model.miss_cost p Cost_model.Kvm ~stage2_levels:4 in
  let sekvm4 = Cost_model.miss_cost p Cost_model.Sekvm ~stage2_levels:4 in
  let sekvm3 = Cost_model.miss_cost p Cost_model.Sekvm ~stage2_levels:3 in
  Alcotest.(check bool) "nested much more expensive" true (sekvm4 > 4 * kvm);
  Alcotest.(check bool) "3-level cheaper than 4-level" true (sekvm3 < sekvm4);
  (* (m+1)(n+1)-1 with m=n=4 is 24 walk steps *)
  Alcotest.(check int) "nested step count" (24 * p.Cost_model.c_walk_step)
    sekvm4

let test_op_misses () =
  let p = Cost_model.m400_params in
  (* on the m400 the resident demand alone exceeds the TLB, so even small
     working sets see some pressure — but much less than large ones *)
  Alcotest.(check bool) "small ws, small pressure" true
    (Cost_model.op_misses p Cost_model.Sekvm ~ws:4
    < Cost_model.op_misses p Cost_model.Sekvm ~ws:100 /. 10.0);
  (* on Seattle a small working set fits outright *)
  Alcotest.(check bool) "fits: no misses" true
    (Cost_model.op_misses Cost_model.seattle_params Cost_model.Sekvm ~ws:4
     = 0.0);
  (* KVM's block mappings collapse the footprint to a single entry *)
  Alcotest.(check bool) "kvm blocks collapse footprint" true
    (Cost_model.op_misses p Cost_model.Kvm ~ws:100 < 0.3
    && Cost_model.op_misses p Cost_model.Kvm ~ws:100
       < Cost_model.op_misses p Cost_model.Sekvm ~ws:100 /. 50.0);
  (* SeKVM's 4K pages overflow the m400 TLB *)
  Alcotest.(check bool) "sekvm 4K pages thrash m400" true
    (Cost_model.op_misses p Cost_model.Sekvm ~ws:100 > 0.0);
  (* ... but not Seattle's 1024-entry TLB *)
  Alcotest.(check bool) "seattle unaffected" true
    (Cost_model.op_misses Cost_model.seattle_params Cost_model.Sekvm ~ws:100
     = 0.0)

let test_table3_shape () =
  let rows = Micro.table3 () in
  Alcotest.(check int) "8 rows" 8 (List.length rows);
  let ratio name hw =
    (List.find
       (fun (r : Micro.row) ->
         r.Micro.bench.Micro.name = name && r.Micro.hw_name = hw)
       rows)
      .Micro.overhead
  in
  List.iter
    (fun b ->
      Alcotest.(check bool) (b ^ ": sekvm slower") true (ratio b "m400" > 1.0);
      Alcotest.(check bool)
        (b ^ ": m400 worse than seattle")
        true
        (ratio b "m400" > ratio b "seattle");
      Alcotest.(check bool)
        (b ^ ": seattle in band")
        true
        (ratio b "seattle" >= 1.10 && ratio b "seattle" <= 1.35);
      Alcotest.(check bool)
        (b ^ ": m400 around 2x")
        true
        (ratio b "m400" >= 1.5 && ratio b "m400" <= 2.6))
    [ "Hypercall"; "I/O Kernel"; "I/O User"; "Virtual IPI" ];
  (* paper reference data is self-consistent *)
  List.iter
    (fun (r : Micro.row) ->
      match Micro.paper_overhead r.Micro.bench.Micro.name r.Micro.hw_name with
      | Some p ->
          Alcotest.(check bool) "within 0.35 of the paper ratio" true
            (Float.abs (p -. r.Micro.overhead) < 0.35)
      | None -> Alcotest.fail "missing paper reference")
    rows

let test_fig8_shape () =
  let pts = App_sim.figure8 () in
  Alcotest.(check int) "5 workloads x 2 hw x 2 versions x 2 hyps" 40
    (List.length pts);
  List.iter
    (fun (w : Workload.t) ->
      List.iter
        (fun hw ->
          List.iter
            (fun v ->
              let ov =
                App_sim.sekvm_overhead pts ~workload:w.Workload.name
                  ~hw_name:hw ~version:v
              in
              Alcotest.(check bool)
                (Printf.sprintf "%s/%s overhead < 10%%" w.Workload.name hw)
                true (ov < 0.10);
              Alcotest.(check bool) "overhead nonnegative" true (ov >= 0.0))
            [ App_sim.V4_18; App_sim.V5_4 ])
        [ "m400"; "seattle" ])
    Workload.all;
  (* the kernel-compile workload has the least virtualization exposure *)
  let ov name =
    App_sim.sekvm_overhead pts ~workload:name ~hw_name:"m400"
      ~version:App_sim.V4_18
  in
  Alcotest.(check bool) "kernbench least affected" true
    (ov "Kernbench" < ov "Hackbench")

let test_fig9_shape () =
  let pts = Multi_vm.figure9 () in
  Alcotest.(check int) "5 workloads x 2 hyps x 6 counts" 60 (List.length pts);
  let perf w hyp n =
    (List.find
       (fun (p : Multi_vm.point) ->
         p.Multi_vm.workload.Workload.name = w
         && p.Multi_vm.hypervisor = hyp && p.Multi_vm.n_vms = n)
       pts)
      .Multi_vm.normalized_perf
  in
  List.iter
    (fun (w : Workload.t) ->
      (* monotone decline *)
      let rec mono = function
        | a :: (b :: _ as rest) -> a >= b -. 1e-9 && mono rest
        | _ -> true
      in
      List.iter
        (fun hyp ->
          Alcotest.(check bool) "monotone" true
            (mono
               (List.map (fun n -> perf w.Workload.name hyp n)
                  Multi_vm.vm_counts)))
        [ Cost_model.Kvm; Cost_model.Sekvm ];
      (* the 10% claim *)
      Alcotest.(check bool)
        (w.Workload.name ^ " gap < 10%")
        true
        (Multi_vm.worst_gap pts ~workload:w.Workload.name < 0.10);
      (* beyond CPU saturation (8 VMs x 2 vCPUs > 8 CPUs) throughput halves *)
      Alcotest.(check bool) "cpu saturation at 8 VMs" true
        (perf w.Workload.name Cost_model.Kvm 8
        < 0.7 *. perf w.Workload.name Cost_model.Kvm 4))
    Workload.all

let test_neoverse_dispatch_floor () =
  (* the §6 forward-looking remark: on a modern large-TLB CPU, SeKVM's
     overhead is only KCore's dispatch/isolation work — the TLB term is
     exactly zero (huge pages change nothing), and the fixed software
     cost looms slightly larger on the faster machine *)
  List.iter
    (fun b ->
      let row = Micro.run_one Cost_model.neoverse_params ~stage2_levels:4 b in
      let hp =
        Micro.run_one ~kserv_hugepages:true Cost_model.neoverse_params
          ~stage2_levels:4 b
      in
      Alcotest.(check bool)
        (b.Micro.name ^ ": modest overhead")
        true
        (row.Micro.overhead > 1.0 && row.Micro.overhead < 1.5);
      Alcotest.(check int)
        (b.Micro.name ^ ": zero TLB term (hugepages change nothing)")
        row.Micro.sekvm_cycles hp.Micro.sekvm_cycles)
    Micro.all

let test_version_effect () =
  let pts = App_sim.figure8 () in
  let np version =
    (List.find
       (fun (p : App_sim.point) ->
         p.App_sim.workload.Workload.name = "Hackbench"
         && p.App_sim.hw_name = "m400" && p.App_sim.version = version
         && p.App_sim.hypervisor = Cost_model.Sekvm)
       pts)
      .App_sim.normalized_perf
  in
  Alcotest.(check bool) "5.4 at least as fast as 4.18" true
    (np App_sim.V5_4 >= np App_sim.V4_18)

let test_workload_profiles_sane () =
  List.iter
    (fun (w : Workload.t) ->
      Alcotest.(check bool) "io fraction in [0,1)" true
        (w.Workload.io_bound_fraction >= 0.0
        && w.Workload.io_bound_fraction < 1.0);
      Alcotest.(check bool) "positive native work" true
        (w.Workload.native_cycles > 0);
      let virt =
        Workload.virt_overhead_cycles Cost_model.m400_params Cost_model.Sekvm
          ~stage2_levels:4 w
      in
      Alcotest.(check bool) "virt overhead below native (else unusable)" true
        (virt < w.Workload.native_cycles))
    Workload.all

let qcheck_more_vms_never_faster =
  QCheck.Test.make ~name:"adding VMs never raises per-instance perf"
    ~count:100
    QCheck.(pair (int_range 1 31) (int_bound 4))
    (fun (n, wi) ->
      let w = List.nth Workload.all (wi mod List.length Workload.all) in
      let p hyp n = (Multi_vm.run_point hyp n w).Multi_vm.normalized_perf in
      p Cost_model.Sekvm (n + 1) <= p Cost_model.Sekvm n +. 1e-9
      && p Cost_model.Kvm (n + 1) <= p Cost_model.Kvm n +. 1e-9)

let () =
  Alcotest.run "perf"
    [ ( "cost-model",
        [ Alcotest.test_case "nested miss blowup" `Quick
            test_miss_cost_nested_blowup;
          Alcotest.test_case "op misses" `Quick test_op_misses;
          Alcotest.test_case "workload profiles" `Quick
            test_workload_profiles_sane ] );
      ( "shapes",
        [ Alcotest.test_case "table 3" `Quick test_table3_shape;
          Alcotest.test_case "figure 8" `Quick test_fig8_shape;
          Alcotest.test_case "figure 9" `Quick test_fig9_shape;
          Alcotest.test_case "version effect" `Quick test_version_effect;
          Alcotest.test_case "neoverse dispatch floor" `Quick
            test_neoverse_dispatch_floor;
          QCheck_alcotest.to_alcotest qcheck_more_vms_never_faster ] ) ]
