(* Barrier synthesis: the repair search must find the minimal
   acquire/release placements — and they must be exactly the ones the
   paper and Linux use. *)

open Memmodel
open Vrm

let cfg = { Promising.default_config with max_promises = 1; loop_fuel = 4 }

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_mp_repair () =
  let r = Synthesis.repair ~config:cfg Paper_examples.mp_plain.Litmus.prog in
  match r.Synthesis.repaired with
  | None -> Alcotest.fail "MP not repaired"
  | Some (chosen, v) ->
      Alcotest.(check int) "two upgrades" 2 (List.length chosen);
      Alcotest.(check bool) "verdict holds" true v.Refinement.holds;
      (* the classic pair: release the flag store, acquire the flag load *)
      Alcotest.(check bool) "flag store released" true
        (List.exists
           (fun s ->
             s.Synthesis.s_tid = 0
             && String.length s.Synthesis.s_desc > 0
             && String.ends_with ~suffix:"store-release" s.Synthesis.s_desc)
           chosen);
      Alcotest.(check bool) "flag load acquired" true
        (List.exists
           (fun s ->
             s.Synthesis.s_tid = 1
             && String.ends_with ~suffix:"load-acquire" s.Synthesis.s_desc)
           chosen)

let test_example3_repair_matches_paper () =
  let r =
    Synthesis.repair ~config:cfg Paper_examples.example3_buggy.Litmus.prog
  in
  match r.Synthesis.repaired with
  | None -> Alcotest.fail "example 3 not repaired"
  | Some (chosen, _) ->
      (* §5.2: store-release when setting INACTIVE, load-acquire when
         checking it — and nothing else *)
      Alcotest.(check int) "exactly two upgrades" 2 (List.length chosen);
      Alcotest.(check bool) "both on the state variable" true
        (List.for_all
           (fun s -> contains ~sub:"vcpu_state" s.Synthesis.s_desc)
           chosen)

let test_already_correct_is_noop () =
  let r =
    Synthesis.repair ~config:cfg Paper_examples.example3_fixed.Litmus.prog
  in
  Alcotest.(check bool) "nothing to repair" true
    (r.Synthesis.repaired = None && r.Synthesis.original.Refinement.holds)

let test_sb_needs_all_four_upgrades () =
  (* Armv8 release/acquire are RCsc ([L];po;[A] is ordered), so SB *is*
     repairable — but only by upgrading every access (the C11 SC-atomics
     mapping: stlr + ldar on both threads); each thread needs both its
     release and its acquire for the ob cycle to close *)
  let r =
    Synthesis.repair ~config:cfg ~max_upgrades:4
      Paper_examples.sb.Litmus.prog
  in
  Alcotest.(check bool) "violation detected" false
    r.Synthesis.original.Refinement.holds;
  match r.Synthesis.repaired with
  | None -> Alcotest.fail "SB should be RCsc-repairable"
  | Some (chosen, _) ->
      Alcotest.(check int) "minimum is all four sites" 4 (List.length chosen)

let test_mcs_handoff_repair () =
  let r =
    Synthesis.repair ~config:cfg
      (Sekvm.Mcs_lock.handoff_prog ~barriers:false "mcs-syn")
  in
  match r.Synthesis.repaired with
  | None -> Alcotest.fail "MCS hand-off not repaired"
  | Some (chosen, _) ->
      (* the hand-off store released + both spin loads acquired *)
      Alcotest.(check int) "three upgrades" 3 (List.length chosen);
      Alcotest.(check bool) "all on the locked flag" true
        (List.for_all
           (fun s -> contains ~sub:"m.locked" s.Synthesis.s_desc)
           chosen)

let test_sites_and_apply () =
  let prog = Paper_examples.mp_plain.Litmus.prog in
  let ss = Synthesis.sites prog in
  Alcotest.(check int) "four plain sites" 4 (List.length ss);
  (* applying every site yields a fully ordered program with no sites *)
  let upgraded = Synthesis.apply prog ss in
  Alcotest.(check int) "no plain sites left" 0
    (List.length (Synthesis.sites upgraded))

let () =
  Alcotest.run "synthesis"
    [ ( "repair",
        [ Alcotest.test_case "mp" `Quick test_mp_repair;
          Alcotest.test_case "example 3 = paper's barriers" `Quick
            test_example3_repair_matches_paper;
          Alcotest.test_case "no-op on correct code" `Quick
            test_already_correct_is_noop;
          Alcotest.test_case "SB needs the full RCsc mapping" `Quick
            test_sb_needs_all_four_upgrades;
          Alcotest.test_case "mcs hand-off" `Quick test_mcs_handoff_repair ]
      );
      ( "mechanics",
        [ Alcotest.test_case "sites and apply" `Quick test_sites_and_apply ]
      ) ]
