(* Tests for the Promising Arm executor: the architectural ordering
   constraints (coherence, data/address dependencies, barriers,
   acquire/release), the promise machinery with certification, and — as a
   property — the soundness direction of the wDRF theorem: every SC
   behavior is also a Promising Arm behavior. *)

open Memmodel

let obs_r tid r = Prog.Obs_reg (tid, Reg.v r)

let cfg ?(mp = 1) ?(lf = 4) () =
  { Promising.default_config with max_promises = mp; loop_fuel = lf;
    cert_depth = 40 }

let normals (b : Behavior.t) =
  Behavior.Outcome_set.filter (fun o -> o.Behavior.status = Behavior.Normal) b

let run_litmus name t =
  Alcotest.test_case name `Quick (fun () ->
      let r = Litmus.run t in
      if not r.Litmus.as_expected then
        Alcotest.failf "%s: unexpected result:@.%a" name Litmus.pp_result r)

let litmus_cases =
  List.map
    (fun t -> run_litmus t.Litmus.prog.Prog.name t)
    Paper_examples.all

let test_lb_needs_promises () =
  (* Example 1 requires a promise: with the promise budget at 0 the
     relaxed outcome must disappear *)
  let t = Paper_examples.example1 in
  let r0 = Litmus.run ~config:(cfg ~mp:0 ()) t in
  let r1 = Litmus.run ~config:(cfg ~mp:1 ()) t in
  Alcotest.(check bool) "no promises: unreachable" false r0.Litmus.rm_sat;
  Alcotest.(check bool) "one promise: reachable" true r1.Litmus.rm_sat

let test_sb_needs_no_promises () =
  (* store buffering comes from stale reads alone *)
  let r = Litmus.run ~config:(cfg ~mp:0 ()) Paper_examples.sb in
  Alcotest.(check bool) "reachable without promises" true r.Litmus.rm_sat

let test_coherence_within_thread () =
  (* CoWW: two stores to one location by one thread are ordered *)
  let prog =
    Prog.make ~name:"coww"
      ~observables:[ Prog.Obs_loc (Loc.v "x") ]
      [ Prog.thread 0
          [ Instr.store (Expr.at "x") (Expr.c 1);
            Instr.store (Expr.at "x") (Expr.c 2) ] ]
  in
  let b = Promising.run ~config:(cfg ()) prog in
  Alcotest.(check bool) "final value is 2" true
    (Behavior.satisfiable (fun g -> g (Prog.Obs_loc (Loc.v "x")) = Some 2) b);
  Alcotest.(check int) "no other outcome" 1 (Behavior.cardinal (normals b))

let test_read_own_write () =
  (* a thread must see its own program-order-earlier store *)
  let prog =
    Prog.make ~name:"rown"
      ~observables:[ obs_r 0 "r" ]
      [ Prog.thread 0
          [ Instr.store (Expr.at "x") (Expr.c 3);
            Instr.load (Reg.v "r") (Expr.at "x") ] ]
  in
  let b = Promising.run ~config:(cfg ()) prog in
  Alcotest.(check int) "singleton" 1 (Behavior.cardinal (normals b));
  Alcotest.(check bool) "reads 3" true
    (Behavior.satisfiable (fun g -> g (obs_r 0 "r") = Some 3) b)

let test_rmw_atomicity_rm () =
  (* fetch_and_inc stays atomic under the relaxed model: the sum of two
     increments is always 2 *)
  let bump tid =
    Prog.thread tid [ Instr.fetch_and_inc (Reg.v "old") (Expr.at "c") ]
  in
  let prog =
    Prog.make ~name:"faa-rm"
      ~observables:[ Prog.Obs_loc (Loc.v "c") ]
      [ bump 1; bump 2 ]
  in
  let b = Promising.run ~config:(cfg ()) prog in
  Alcotest.(check int) "one outcome" 1 (Behavior.cardinal (normals b));
  Alcotest.(check bool) "c = 2" true
    (Behavior.satisfiable (fun g -> g (Prog.Obs_loc (Loc.v "c")) = Some 2) b)

let test_dmb_ld_orders_reads () =
  (* MP with dmb-st on the writer and dmb-ld on the reader: forbidden *)
  let prog =
    Prog.make ~name:"mp-dmbst-dmbld"
      ~observables:[ obs_r 2 "r0"; obs_r 2 "r1" ]
      [ Prog.thread 1
          [ Instr.store (Expr.at "x") (Expr.c 1);
            Instr.dmb_st;
            Instr.store (Expr.at "flag") (Expr.c 1) ];
        Prog.thread 2
          [ Instr.load (Reg.v "r0") (Expr.at "flag");
            Instr.dmb_ld;
            Instr.load (Reg.v "r1") (Expr.at "x") ] ]
  in
  let b = Promising.run ~config:(cfg ()) prog in
  Alcotest.(check bool) "stale read forbidden" false
    (Behavior.satisfiable
       (fun g -> g (obs_r 2 "r0") = Some 1 && g (obs_r 2 "r1") = Some 0)
       b)

let test_dmb_st_alone_insufficient_for_reader () =
  (* MP with dmb-st on the writer but nothing on the reader: the reader's
     loads may still be satisfied out of order *)
  let prog =
    Prog.make ~name:"mp-dmbst-only"
      ~observables:[ obs_r 2 "r0"; obs_r 2 "r1" ]
      [ Prog.thread 1
          [ Instr.store (Expr.at "x") (Expr.c 1);
            Instr.dmb_st;
            Instr.store (Expr.at "flag") (Expr.c 1) ];
        Prog.thread 2
          [ Instr.load (Reg.v "r0") (Expr.at "flag");
            Instr.load (Reg.v "r1") (Expr.at "x") ] ]
  in
  let b = Promising.run ~config:(cfg ()) prog in
  Alcotest.(check bool) "stale read allowed" true
    (Behavior.satisfiable
       (fun g -> g (obs_r 2 "r0") = Some 1 && g (obs_r 2 "r1") = Some 0)
       b)

let test_addr_dependency_orders () =
  (* MP where the reader's second load is address-dependent on the first:
     with a writer-side dmb the stale read is forbidden even with no
     reader barrier (the Armv8 address-dependency guarantee) *)
  let prog =
    Prog.make ~name:"mp-addr-dep"
      ~init:[ (Loc.v ~index:0 "data", 7); (Loc.v ~index:1 "data", 7) ]
      ~observables:[ obs_r 2 "ptr"; obs_r 2 "v" ]
      [ Prog.thread 1
          [ Instr.store (Expr.at ~offset:(Expr.c 1) "data") (Expr.c 9);
            Instr.dmb;
            Instr.store (Expr.at "idx") (Expr.c 1) ];
        Prog.thread 2
          [ Instr.load (Reg.v "ptr") (Expr.at "idx");
            Instr.load (Reg.v "v")
              (Expr.at ~offset:Expr.(r (Reg.v "ptr")) "data") ] ]
  in
  let b = Promising.run ~config:(cfg ()) prog in
  Alcotest.(check bool) "ptr=1 implies v=9 (no stale data[1])" false
    (Behavior.satisfiable
       (fun g -> g (obs_r 2 "ptr") = Some 1 && g (obs_r 2 "v") = Some 7)
       b)

let test_data_dependency_orders_store () =
  (* LB with a data dependency on one side only: still forbidden to see
     both 1s when the other side also has a dependency (lb-data in the
     corpus); here we check one-sided: t1 dep, t2 free: outcome allowed *)
  let prog =
    Prog.make ~name:"lb-one-dep"
      ~observables:[ obs_r 1 "r0"; obs_r 2 "r1" ]
      [ Prog.thread 1
          [ Instr.load (Reg.v "r0") (Expr.at "x");
            Instr.store (Expr.at "y") Expr.(r (Reg.v "r0")) ];
        Prog.thread 2
          [ Instr.load (Reg.v "r1") (Expr.at "y");
            Instr.store (Expr.at "x") (Expr.c 1) ] ]
  in
  let b = Promising.run ~config:(cfg ()) prog in
  Alcotest.(check bool) "one-sided dependency: reachable" true
    (Behavior.satisfiable
       (fun g -> g (obs_r 1 "r0") = Some 1 && g (obs_r 2 "r1") = Some 1)
       b)

let test_release_not_promotable_past_earlier_store () =
  (* Example 3 fixed: the release store cannot be promised ahead of the
     program-order-earlier context store *)
  let r = Litmus.run Paper_examples.example3_fixed in
  Alcotest.(check bool) "no stale restore" false r.Litmus.rm_sat

let test_unfulfilled_promises_invalid () =
  (* a promise that cannot be fulfilled never yields a terminal outcome:
     thread 0 has no store at all, so promising is impossible and the
     behavior set equals SC's *)
  let prog =
    Prog.make ~name:"no-store"
      ~observables:[ obs_r 0 "r" ]
      [ Prog.thread 0 [ Instr.load (Reg.v "r") (Expr.at "x") ];
        Prog.thread 1 [ Instr.load (Reg.v "s") (Expr.at "x") ] ]
  in
  let sc = Sc.run prog in
  let rm = Promising.run ~config:(cfg ()) prog in
  Alcotest.(check bool) "equal" true (Behavior.equal sc rm)

let test_strict_certification_equivalent () =
  (* the letter-of-the-semantics mode (certify at every step) and the
     lazy default (prune at the end) produce identical outcome sets *)
  List.iter
    (fun (t : Litmus.t) ->
      let lazy_b = Promising.run ?config:t.Litmus.rm_config t.Litmus.prog in
      let strict_cfg =
        { (Option.value ~default:Promising.default_config t.Litmus.rm_config)
          with Promising.strict_certification = true }
      in
      let strict_b = Promising.run ~config:strict_cfg t.Litmus.prog in
      Alcotest.(check bool)
        (t.Litmus.prog.Prog.name ^ ": strict = lazy")
        true
        (Behavior.equal (normals lazy_b) (normals strict_b)))
    [ Paper_examples.example1; Paper_examples.example3_buggy;
      Paper_examples.mp_plain; Paper_examples.mp_rel_acq;
      Paper_examples.sb; Litmus_suite.w22_plain ]

(* ------------------------------------------------------------------ *)
(* Property: SC ⊆ Promising on random programs                         *)
(* ------------------------------------------------------------------ *)

let gen_thread tid =
  let open QCheck.Gen in
  let reg = map (fun i -> Reg.v (Printf.sprintf "r%d_%d" tid i)) (int_bound 1) in
  let base = oneofl [ "x"; "y" ] in
  let order = oneofl [ Instr.Plain; Instr.Acquire ] in
  let worder = oneofl [ Instr.Plain; Instr.Release ] in
  let instr =
    frequency
      [ (4, map3 (fun r b o -> Instr.load ~order:o r (Expr.at b)) reg base order);
        ( 4,
          map3
            (fun b v o -> Instr.store ~order:o (Expr.at b) (Expr.c v))
            base (int_bound 2) worder );
        (1, map2 (fun r b -> Instr.fetch_and_inc r (Expr.at b)) reg base);
        (1, return Instr.dmb);
        (1, return Instr.dmb_ld);
        (1, return Instr.dmb_st) ]
  in
  map (fun l -> Prog.thread tid l) (list_size (int_range 1 4) instr)

let gen_prog =
  QCheck.Gen.map2
    (fun t1 t2 ->
      Prog.make ~name:"random"
        ~observables:
          [ Prog.Obs_loc (Loc.v "x"); Prog.Obs_loc (Loc.v "y");
            Prog.Obs_reg (1, Reg.v "r1_0"); Prog.Obs_reg (2, Reg.v "r2_0") ]
        [ t1; t2 ])
    (gen_thread 1) (gen_thread 2)

let qcheck_sc_subset_of_rm =
  QCheck.Test.make ~name:"SC behaviors are Promising behaviors" ~count:60
    (QCheck.make gen_prog)
    (fun prog ->
      let sc = Sc.run prog in
      let rm = Promising.run ~config:(cfg ~mp:1 ()) prog in
      Behavior.subset (normals sc) (normals rm))

let () =
  Alcotest.run "promising"
    [ ("litmus-corpus", litmus_cases);
      ( "mechanics",
        [ Alcotest.test_case "LB needs promises" `Quick test_lb_needs_promises;
          Alcotest.test_case "SB needs no promises" `Quick
            test_sb_needs_no_promises;
          Alcotest.test_case "coherence CoWW" `Quick
            test_coherence_within_thread;
          Alcotest.test_case "read own write" `Quick test_read_own_write;
          Alcotest.test_case "RMW atomic under RM" `Quick
            test_rmw_atomicity_rm;
          Alcotest.test_case "unfulfillable promises pruned" `Quick
            test_unfulfilled_promises_invalid;
          Alcotest.test_case "strict certification equivalent" `Quick
            test_strict_certification_equivalent ] );
      ( "ordering",
        [ Alcotest.test_case "dmb-ld orders reads" `Quick
            test_dmb_ld_orders_reads;
          Alcotest.test_case "dmb-st alone insufficient" `Quick
            test_dmb_st_alone_insufficient_for_reader;
          Alcotest.test_case "address dependency" `Quick
            test_addr_dependency_orders;
          Alcotest.test_case "one-sided data dependency" `Quick
            test_data_dependency_orders_store;
          Alcotest.test_case "release not promotable" `Quick
            test_release_not_promotable_past_earlier_store ] );
      ("qcheck", [ QCheck_alcotest.to_alcotest qcheck_sc_subset_of_rm ]) ]
