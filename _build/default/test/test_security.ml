(* Security tests: VM confidentiality and integrity against a malicious
   KServ under SeKVM; the same attacks succeeding on the stock-KVM
   baseline; scrubbing across ownership transfers; data-oracle
   determinism and replay. These are the executable analog of the SeKVM
   guarantees the wDRF certificate extends to relaxed hardware. *)

open Sekvm
open Machine

let cfg = Kcore.default_boot_config

let booted () =
  let kcore = Kcore.boot cfg in
  let kserv = Kserv.create kcore ~first_free_pfn:(Kcore.kserv_base cfg) in
  let vmid =
    match Kserv.boot_vm kserv ~cpu:0 ~n_vcpus:2 ~image_pages:2 with
    | Ok v -> v
    | Error _ -> Alcotest.fail "boot failed"
  in
  (kcore, kserv, vmid)

let secret = 0xdeadbeef

let write_secret kserv vmid ipa =
  match
    Kserv.run_guest kserv ~cpu:1 ~vmid ~vcpuid:0 [ Vm.G_write (ipa, secret) ]
  with
  | [ Vm.R_unit ] -> ()
  | _ -> Alcotest.fail "guest write failed"

let backing kcore vmid ipa =
  match Npt.translate (Kcore.find_vm kcore vmid).Kcore.npt ~ipa with
  | Some (pfn, _) -> pfn
  | None -> Alcotest.fail "no backing page"

let test_confidentiality () =
  let kcore, kserv, vmid = booted () in
  let ipa = Page_table.page_va 25 in
  write_secret kserv vmid ipa;
  let pfn = backing kcore vmid ipa in
  (* the secret is physically there *)
  Alcotest.(check int) "stored" secret (Phys_mem.read kcore.Kcore.mem ~pfn ~idx:0);
  (* ... but KServ cannot read it through any translation it can reach *)
  (match Kserv.attack_read_vm_page kserv ~cpu:0 ~pfn with
  | Error `Denied -> ()
  | Ok v -> Alcotest.failf "KServ read the secret: %x" v)

let test_integrity () =
  let kcore, kserv, vmid = booted () in
  let ipa = Page_table.page_va 26 in
  write_secret kserv vmid ipa;
  let pfn = backing kcore vmid ipa in
  (match Kserv.attack_write_vm_page kserv ~cpu:0 ~pfn 0 with
  | Error `Denied -> ()
  | Ok () -> Alcotest.fail "KServ overwrote VM memory");
  (* the guest still sees its value *)
  (match Kserv.run_guest kserv ~cpu:2 ~vmid ~vcpuid:1 [ Vm.G_read ipa ] with
  | [ Vm.R_value v ] -> Alcotest.(check int) "intact" secret v
  | _ -> Alcotest.fail "guest read failed")

let test_cross_vm_isolation () =
  let kcore, kserv, vmid1 = booted () in
  let vmid2 =
    match Kserv.boot_vm kserv ~cpu:0 ~n_vcpus:1 ~image_pages:1 with
    | Ok v -> v
    | Error _ -> Alcotest.fail "second boot"
  in
  let ipa = Page_table.page_va 27 in
  write_secret kserv vmid1 ipa;
  let pfn1 = backing kcore vmid1 ipa in
  (* KServ cannot graft VM1's page into VM2 *)
  (match
     Kserv.attack_steal_page kserv ~cpu:0 ~victim_pfn:pfn1 ~vmid:vmid2
       ~ipa:(Page_table.page_va 99)
   with
  | Error `Denied -> ()
  | Ok () -> Alcotest.fail "page stolen");
  (* VM2 cannot read VM1's IPA space: its own stage 2 has no such page
     yet; faulting it in allocates a *fresh scrubbed* page *)
  (match Kserv.run_guest kserv ~cpu:2 ~vmid:vmid2 ~vcpuid:0 [ Vm.G_read ipa ] with
  | [ Vm.R_value v ] -> Alcotest.(check int) "fresh zero page, not the secret" 0 v
  | _ -> Alcotest.fail "vm2 read failed")

let test_scrub_on_reclaim () =
  let kcore, kserv, vmid = booted () in
  let ipa = Page_table.page_va 28 in
  write_secret kserv vmid ipa;
  let pfn = backing kcore vmid ipa in
  Kcore.teardown_vm kcore ~cpu:0 ~vmid;
  Alcotest.(check int) "scrubbed at reclaim" 0
    (Phys_mem.read kcore.Kcore.mem ~pfn ~idx:0);
  (* now KServ may use the page again — and reads zeros *)
  (match Kserv.host_read kserv ~cpu:0 ~pfn ~idx:0 with
  | Ok v -> Alcotest.(check int) "no leakage" 0 v
  | Error `Denied -> Alcotest.fail "reclaimed page unreadable")

let test_shared_page_is_the_only_window () =
  let kcore, kserv, vmid = booted () in
  let ring = Page_table.page_va 29 and private_ipa = Page_table.page_va 31 in
  write_secret kserv vmid private_ipa;
  (match
     Kserv.run_guest kserv ~cpu:1 ~vmid ~vcpuid:0
       [ Vm.G_write (ring, 777); Vm.G_share ring ]
   with
  | [ Vm.R_unit; Vm.R_unit ] -> ()
  | _ -> Alcotest.fail "share failed");
  let ring_pfn = backing kcore vmid ring in
  let priv_pfn = backing kcore vmid private_ipa in
  (match Kserv.host_read kserv ~cpu:0 ~pfn:ring_pfn ~idx:0 with
  | Ok v -> Alcotest.(check int) "ring visible" 777 v
  | Error `Denied -> Alcotest.fail "ring unreadable");
  (match Kserv.attack_read_vm_page kserv ~cpu:0 ~pfn:priv_pfn with
  | Error `Denied -> ()
  | Ok _ -> Alcotest.fail "private page visible")

let test_scenario_attack_battery () =
  let out = Vrm.Scenario.standard_run () in
  List.iter
    (fun (name, denied) ->
      Alcotest.(check bool) (name ^ " denied") true denied)
    out.Vrm.Scenario.attack_results;
  Alcotest.(check int) "invariants" 0
    (List.length (Kcore.check_invariants out.Vrm.Scenario.kcore))

let test_baseline_attacks_succeed () =
  let kvm =
    Kvm_baseline.boot ~n_pages:256 ~n_cpus:2 ~tlb_capacity:32
      ~geometry:Page_table.three_level
  in
  let vmid = Kvm_baseline.register_vm kvm in
  Kvm_baseline.register_vcpu kvm ~vmid ~vcpuid:0;
  let pfn = Kvm_baseline.alloc_page kvm in
  Kvm_baseline.map_page kvm ~cpu:0 ~vmid ~ipa:0 ~pfn;
  Kvm_baseline.host_write kvm ~pfn ~idx:0 secret;
  (match Kvm_baseline.attack_read_vm_page kvm ~pfn with
  | Ok v -> Alcotest.(check int) "host reads guest memory" secret v
  | Error () -> Alcotest.fail "baseline denied?");
  (match Kvm_baseline.attack_write_vm_page kvm ~pfn 0 with
  | Ok () ->
      Alcotest.(check int) "host overwrote guest memory" 0
        (Kvm_baseline.host_read kvm ~pfn ~idx:0)
  | Error () -> Alcotest.fail "baseline denied?");
  (* stealing across VMs also works on the baseline *)
  let vmid2 = Kvm_baseline.register_vm kvm in
  (match Kvm_baseline.attack_steal_page kvm ~cpu:0 ~victim_pfn:pfn ~vmid:vmid2 ~ipa:0 with
  | Ok () -> ()
  | Error () -> Alcotest.fail "baseline steal denied?")

(* ---- data oracles ---- *)

let test_oracle_deterministic () =
  let a = Data_oracle.create ~seed:7 in
  let b = Data_oracle.create ~seed:7 in
  let da = List.init 10 (fun _ -> Data_oracle.draw a) in
  let db = List.init 10 (fun _ -> Data_oracle.draw b) in
  Alcotest.(check (list int)) "same seed, same stream" da db;
  let c = Data_oracle.create ~seed:8 in
  let dc = List.init 10 (fun _ -> Data_oracle.draw c) in
  Alcotest.(check bool) "different seed differs" true (da <> dc)

let test_oracle_replay () =
  let a = Data_oracle.create ~seed:3 in
  let _ = List.init 5 (fun _ -> Data_oracle.draw a) in
  let replayed = Data_oracle.replaying ~stream:(Data_oracle.stream a) ~seed:0 in
  let again = List.init 5 (fun _ -> Data_oracle.draw replayed) in
  Alcotest.(check (list int)) "replay equals log" (Data_oracle.stream a) again;
  Alcotest.(check bool) "exhausted replay raises" true
    (try
       ignore (Data_oracle.draw replayed);
       false
     with Invalid_argument _ -> true)

let test_oracle_independence_experiment () =
  Alcotest.(check bool) "kernel digest independent of user behavior" true
    (Vrm.Check_isolation.oracle_independent ~behaviors:[ 1; 2; 3; 4 ]
       ~scenario:(fun ~user ->
         let kcore = Kcore.boot { cfg with Kcore.oracle_seed = 11 } in
         let kserv = Kserv.create kcore ~first_free_pfn:(Kcore.kserv_base cfg) in
         (match Kserv.boot_vm kserv ~cpu:0 ~n_vcpus:1 ~image_pages:1 with
         | Ok vmid ->
             ignore
               (Kserv.run_guest kserv ~cpu:1 ~vmid ~vcpuid:0
                  [ Vm.G_write (Page_table.page_va 20, user * 31) ])
         | Error _ -> ());
         Vrm.Check_isolation.kernel_digest kcore))

let () =
  Alcotest.run "security"
    [ ( "sekvm",
        [ Alcotest.test_case "confidentiality" `Quick test_confidentiality;
          Alcotest.test_case "integrity" `Quick test_integrity;
          Alcotest.test_case "cross-VM isolation" `Quick
            test_cross_vm_isolation;
          Alcotest.test_case "scrub on reclaim" `Quick test_scrub_on_reclaim;
          Alcotest.test_case "sharing is the only window" `Quick
            test_shared_page_is_the_only_window;
          Alcotest.test_case "scenario attack battery" `Quick
            test_scenario_attack_battery ] );
      ( "baseline",
        [ Alcotest.test_case "stock KVM offers no protection" `Quick
            test_baseline_attacks_succeed ] );
      ( "oracles",
        [ Alcotest.test_case "deterministic" `Quick test_oracle_deterministic;
          Alcotest.test_case "replay" `Quick test_oracle_replay;
          Alcotest.test_case "independence experiment" `Quick
            test_oracle_independence_experiment ] ) ]
