(* Tests for the push/pull ownership model: the instrumented SC executor
   (DRF-Kernel checking), the Fig. 4 promise-list validator and the
   Fig. 5 barrier-fulfillment judgment. *)

open Memmodel

let well_locked tid =
  Prog.thread tid
    [ Instr.dmb;
      Instr.pull [ "x" ];
      Instr.load (Reg.v "v") (Expr.at "x");
      Instr.store (Expr.at "x") Expr.(r (Reg.v "v") + c 1);
      Instr.push [ "x" ];
      Instr.dmb ]

let test_well_synchronized_passes () =
  (* sequential pull/push by two threads cannot race here because the SC
     executor explores interleavings where both hold ownership only if
     the discipline allows it — it does not, but the panic would only
     occur if an interleaving pulls an owned base; with both threads
     pulling, some interleaving does exactly that, so this program is
     *not* DRF by pure pull/push without a lock *)
  let prog =
    Prog.make ~name:"nolock"
      ~observables:[ Prog.Obs_loc (Loc.v "x") ]
      ~shared_bases:[ "x" ]
      [ well_locked 1; well_locked 2 ]
  in
  match Pushpull.check prog with
  | Pushpull.Drf_violation v ->
      Alcotest.(check bool) "double pull detected" true
        (v.Pushpull.v_kind = `Pull_owned)
  | _ -> Alcotest.fail "expected a pull-of-owned violation"

let test_lock_protected_passes () =
  let prog = Sekvm.Kernel_progs.vmid_alloc.Sekvm.Kernel_progs.prog in
  match
    Pushpull.check
      ~exempt:Sekvm.Kernel_progs.vmid_alloc.Sekvm.Kernel_progs.exempt prog
  with
  | Pushpull.Drf_ok b ->
      Alcotest.(check bool) "behaviors nonempty" true (Behavior.cardinal b > 0)
  | Pushpull.Drf_violation v ->
      Alcotest.failf "unexpected violation: %a" Pushpull.pp_violation v
  | Pushpull.Drf_kernel_panic _ -> Alcotest.fail "unexpected panic"

let test_access_without_pull () =
  let prog =
    Prog.make ~name:"raw"
      ~observables:[ Prog.Obs_loc (Loc.v "x") ]
      ~shared_bases:[ "x" ]
      [ Prog.thread 1 [ Instr.store (Expr.at "x") (Expr.c 1) ];
        Prog.thread 2 [ Instr.load (Reg.v "r") (Expr.at "x") ] ]
  in
  match Pushpull.check prog with
  | Pushpull.Drf_violation v ->
      Alcotest.(check bool) "unowned access" true
        (v.Pushpull.v_kind = `Access_not_owned)
  | _ -> Alcotest.fail "expected an access violation"

let test_push_of_free () =
  let prog =
    Prog.make ~name:"freepush"
      ~observables:[ Prog.Obs_loc (Loc.v "x") ]
      ~shared_bases:[ "x" ]
      [ Prog.thread 1 [ Instr.push [ "x" ] ]; Prog.thread 2 [ Instr.Nop ] ]
  in
  match Pushpull.check prog with
  | Pushpull.Drf_violation v ->
      Alcotest.(check bool) "push not owned" true
        (v.Pushpull.v_kind = `Push_not_owned)
  | _ -> Alcotest.fail "expected a push violation"

let test_exempt_bases_skip_checking () =
  let prog =
    Prog.make ~name:"exempt"
      ~observables:[ Prog.Obs_loc (Loc.v "x") ]
      ~shared_bases:[ "x" ]
      [ Prog.thread 1 [ Instr.store (Expr.at "x") (Expr.c 1) ];
        Prog.thread 2 [ Instr.load (Reg.v "r") (Expr.at "x") ] ]
  in
  match Pushpull.check ~exempt:[ "x" ] prog with
  | Pushpull.Drf_ok _ -> ()
  | _ -> Alcotest.fail "exempt base should not be checked"

let test_initial_owner () =
  (* the saver owns the context at entry, pushes it; the reader pulls
     only after the flag flip: never panics *)
  let e = Sekvm.Kernel_progs.vcpu_switch in
  match
    Pushpull.check ~exempt:e.Sekvm.Kernel_progs.exempt
      ~initial_owners:e.Sekvm.Kernel_progs.initial_owners
      e.Sekvm.Kernel_progs.prog
  with
  | Pushpull.Drf_ok _ -> ()
  | Pushpull.Drf_violation v ->
      Alcotest.failf "unexpected: %a" Pushpull.pp_violation v
  | Pushpull.Drf_kernel_panic _ -> Alcotest.fail "panic"

let test_kernel_panic_reported_separately () =
  let prog =
    Prog.make ~name:"panics"
      ~observables:[ Prog.Obs_loc (Loc.v "x") ]
      ~shared_bases:[]
      [ Prog.thread 1 [ Instr.Panic ] ]
  in
  match Pushpull.check prog with
  | Pushpull.Drf_kernel_panic _ -> ()
  | _ -> Alcotest.fail "expected kernel panic report"

(* ------------------------------------------------------------------ *)
(* Fig. 4: promise-list validity                                       *)
(* ------------------------------------------------------------------ *)

let p c b = Pushpull.P_pull (c, b)
let q c b = Pushpull.P_push (c, b)
let w c b v = Pushpull.P_write (c, b, v)

let valid_list l =
  Alcotest.(check bool) "valid" true
    (Result.is_ok (Pushpull.promise_list_valid l))

let invalid_list l =
  Alcotest.(check bool) "invalid" false
    (Result.is_ok (Pushpull.promise_list_valid l))

let test_fig4 () =
  (* handover: CPU1 pulls, writes, pushes; CPU2 takes over *)
  valid_list [ p 1 "x"; w 1 "x" 5; q 1 "x"; p 2 "x"; w 2 "x" 6; q 2 "x" ];
  (* interleaved on different locations *)
  valid_list [ p 1 "x"; p 2 "y"; w 1 "x" 1; w 2 "y" 2; q 2 "y"; q 1 "x" ];
  (* pull of an owned location *)
  invalid_list [ p 1 "x"; p 2 "x" ];
  (* push by a non-owner *)
  invalid_list [ p 1 "x"; q 2 "x" ];
  (* push of a free location *)
  invalid_list [ q 1 "x" ];
  (* access without ownership *)
  invalid_list [ p 1 "x"; w 2 "x" 3 ];
  (* access after pushing *)
  invalid_list [ p 1 "x"; q 1 "x"; w 1 "x" 3 ]

(* ------------------------------------------------------------------ *)
(* Fig. 5: fulfillment by barriers                                     *)
(* ------------------------------------------------------------------ *)

let test_fig5 () =
  let ok l = Alcotest.(check bool) "fulfilled" true (Result.is_ok (Pushpull.fulfill_valid l))
  and bad l = Alcotest.(check bool) "unfulfilled" false (Result.is_ok (Pushpull.fulfill_valid l)) in
  (* the Fig. 7 lock: acquire access then pull; push then release access *)
  ok [ Pushpull.F_acquire_access; Pushpull.F_pull "x"; Pushpull.F_push "x";
       Pushpull.F_release_access ];
  (* full barriers fulfill both *)
  ok [ Pushpull.F_barrier Instr.Dmb_full; Pushpull.F_pull "x";
       Pushpull.F_push "x"; Pushpull.F_barrier Instr.Dmb_full ];
  (* load barrier fulfills a pull *)
  ok [ Pushpull.F_barrier Instr.Dmb_ld; Pushpull.F_pull "x";
       Pushpull.F_push "x"; Pushpull.F_barrier Instr.Dmb_st ];
  (* a store barrier cannot fulfill a pull *)
  bad [ Pushpull.F_barrier Instr.Dmb_st; Pushpull.F_pull "x";
        Pushpull.F_push "x"; Pushpull.F_barrier Instr.Dmb_st ];
  (* a release access cannot fulfill a pull *)
  bad [ Pushpull.F_release_access; Pushpull.F_pull "x"; Pushpull.F_push "x";
        Pushpull.F_release_access ];
  (* nothing fulfills the push *)
  bad [ Pushpull.F_acquire_access; Pushpull.F_pull "x"; Pushpull.F_push "x" ]

(* ------------------------------------------------------------------ *)
(* Traces                                                              *)
(* ------------------------------------------------------------------ *)

let test_traces () =
  let prog =
    Prog.make ~name:"trace"
      ~observables:[ Prog.Obs_loc (Loc.v "x") ]
      ~shared_bases:[]
      [ Prog.thread 1
          [ Instr.dmb; Instr.pull [ "x" ];
            Instr.store (Expr.at "x") (Expr.c 1);
            Instr.push [ "x" ]; Instr.dmb ] ]
  in
  let traces = Pushpull.traces prog in
  Alcotest.(check int) "one trace" 1 (List.length traces);
  let t = List.hd traces in
  Alcotest.(check int) "five events" 5 (List.length t);
  Alcotest.(check bool) "pull before write before push" true
    (match t with
    | [ Pushpull.Ev_barrier _; Pushpull.Ev_pull _; Pushpull.Ev_write _;
        Pushpull.Ev_push _; Pushpull.Ev_barrier _ ] ->
        true
    | _ -> false)

let () =
  Alcotest.run "pushpull"
    [ ( "ownership",
        [ Alcotest.test_case "unlocked pull/push races" `Quick
            test_well_synchronized_passes;
          Alcotest.test_case "lock-protected passes" `Quick
            test_lock_protected_passes;
          Alcotest.test_case "access without pull" `Quick
            test_access_without_pull;
          Alcotest.test_case "push of free" `Quick test_push_of_free;
          Alcotest.test_case "exempt bases" `Quick
            test_exempt_bases_skip_checking;
          Alcotest.test_case "initial owners" `Quick test_initial_owner;
          Alcotest.test_case "kernel panic separate" `Quick
            test_kernel_panic_reported_separately ] );
      ( "figures",
        [ Alcotest.test_case "fig4 promise lists" `Quick test_fig4;
          Alcotest.test_case "fig5 fulfillment" `Quick test_fig5;
          Alcotest.test_case "traces" `Quick test_traces ] ) ]
