(* Tests for the six wDRF condition checkers: each must accept the
   conforming implementation and reject a seeded violation. *)

open Sekvm
open Machine

let cfg = Kcore.default_boot_config

let booted () =
  let kcore = Kcore.boot cfg in
  let kserv = Kserv.create kcore ~first_free_pfn:(Kcore.kserv_base cfg) in
  (kcore, kserv)

(* ---- condition 1: DRF-Kernel ---- *)

let test_drf_positive () =
  let e = Kernel_progs.vmid_alloc in
  Alcotest.(check bool) "holds" true
    (Vrm.Check_drf.check ~exempt:e.Kernel_progs.exempt e.Kernel_progs.prog)
      .Vrm.Check_drf.holds

let test_drf_negative () =
  let e = Kernel_progs.unlocked_counter in
  Alcotest.(check bool) "violated" false
    (Vrm.Check_drf.check ~exempt:e.Kernel_progs.exempt e.Kernel_progs.prog)
      .Vrm.Check_drf.holds

(* ---- condition 2: No-Barrier-Misuse ---- *)

let test_barrier_positive () =
  List.iter
    (fun (e : Kernel_progs.entry) ->
      Alcotest.(check bool)
        (e.Kernel_progs.name ^ " barriers ok")
        true
        (Vrm.Check_barrier.check e.Kernel_progs.prog).Vrm.Check_barrier.holds)
    Kernel_progs.corpus

let test_barrier_negative () =
  List.iter
    (fun (e : Kernel_progs.entry) ->
      Alcotest.(check bool)
        (e.Kernel_progs.name ^ " rejected")
        false
        (Vrm.Check_barrier.check e.Kernel_progs.prog).Vrm.Check_barrier.holds)
    [ Kernel_progs.vmid_alloc_nobarrier; Kernel_progs.vcpu_switch_nobarrier ]

let test_barrier_dmb_fulfillment () =
  (* standalone DMBs fulfill pull/push when correctly placed *)
  let open Memmodel in
  let good =
    Prog.make ~name:"dmb-good"
      ~observables:[ Prog.Obs_loc (Loc.v "x") ]
      [ Prog.thread 1
          [ Instr.dmb;
            Instr.pull [ "x" ];
            Instr.store (Expr.at "x") (Expr.c 1);
            Instr.push [ "x" ];
            Instr.dmb ] ]
  in
  Alcotest.(check bool) "dmb on both sides" true
    (Vrm.Check_barrier.check good).Vrm.Check_barrier.holds;
  let bad =
    Prog.make ~name:"dmb-bad"
      ~observables:[ Prog.Obs_loc (Loc.v "x") ]
      [ Prog.thread 1
          [ Instr.pull [ "x" ];
            Instr.store (Expr.at "x") (Expr.c 1);
            Instr.push [ "x" ] ] ]
  in
  Alcotest.(check bool) "no barrier anywhere" false
    (Vrm.Check_barrier.check bad).Vrm.Check_barrier.holds;
  (* a DMB *after* the protected access does not fulfill the pull *)
  let late =
    Prog.make ~name:"dmb-late"
      ~observables:[ Prog.Obs_loc (Loc.v "x") ]
      [ Prog.thread 1
          [ Instr.pull [ "x" ];
            Instr.store (Expr.at "x") (Expr.c 1);
            Instr.dmb;
            Instr.push [ "x" ];
            Instr.dmb ] ]
  in
  Alcotest.(check bool) "late dmb insufficient for the pull" false
    (Vrm.Check_barrier.check late).Vrm.Check_barrier.holds

(* ---- condition 3: Write-Once-Kernel-Mapping ---- *)

let test_write_once_positive () =
  let kcore, _ = booted () in
  ignore (El2_pt.remap_pfn kcore.Kcore.el2 ~cpu:0 ~pfn:600);
  let v = Vrm.Check_write_once.check kcore.Kcore.trace in
  Alcotest.(check bool) "holds" true v.Vrm.Check_write_once.holds;
  Alcotest.(check bool) "counted writes" true
    (v.Vrm.Check_write_once.el2_writes > cfg.Kcore.n_pages)

let test_write_once_negative () =
  let kcore, _ = booted () in
  (* the [force] backdoor overwrites a live linear-map entry *)
  (match
     El2_pt.set_el2_pt ~force:true kcore.Kcore.el2 ~cpu:0
       ~va:(Page_table.page_va 5) ~pfn:6 ~perms:Pte.rw
   with
  | Ok () -> ()
  | Error `Already_mapped -> Alcotest.fail "force failed");
  let v = Vrm.Check_write_once.check kcore.Kcore.trace in
  Alcotest.(check bool) "violated" false v.Vrm.Check_write_once.holds;
  Alcotest.(check int) "one witness" 1
    (List.length v.Vrm.Check_write_once.violations)

(* ---- condition 4: Transactional-Page-Table ---- *)

let test_transactional_audits () =
  let kcore, _ = booted () in
  let vmid = Kcore.register_vm kcore ~cpu:0 in
  let npt = (Kcore.find_vm kcore vmid).Kcore.npt in
  let ipa = Page_table.page_va 120 in
  (match
     Vrm.Check_transactional.audit_map npt ~cpu:0 ~ipa ~pfn:800
       ~perms:Pte.rw ~check_vas:[ ipa + 4096 ]
   with
  | Ok v ->
      Alcotest.(check bool) "deep map transactional" true
        v.Vrm.Check_transactional.holds;
      Alcotest.(check bool) "multi-write" true
        (v.Vrm.Check_transactional.n_writes > 1)
  | Error `Already_mapped -> Alcotest.fail "map");
  (match
     Vrm.Check_transactional.audit_unmap npt ~cpu:0 ~ipa ~check_vas:[]
   with
  | Ok v ->
      Alcotest.(check bool) "unmap transactional" true
        v.Vrm.Check_transactional.holds
  | Error `Not_mapped -> Alcotest.fail "unmap")

let test_transactional_example5_rejected () =
  let kcore, _ = booted () in
  let vmid = Kcore.register_vm kcore ~cpu:0 in
  let npt = (Kcore.find_vm kcore vmid).Kcore.npt in
  let ipa = Page_table.page_va 130 in
  (match Npt.set_s2pt npt ~cpu:0 ~ipa ~pfn:801 ~perms:Pte.rw with
  | Ok () -> ()
  | Error `Already_mapped -> Alcotest.fail "map");
  match
    Vrm.Check_transactional.audit_example5 npt ~ipa ~pfn:802 ~perms:Pte.rw
  with
  | Some v ->
      Alcotest.(check bool) "example 5 rejected" false
        v.Vrm.Check_transactional.holds;
      Alcotest.(check bool) "witness produced" true
        (v.Vrm.Check_transactional.witnesses <> [])
  | None -> Alcotest.fail "no example-5 batch constructed"

(* ---- condition 5: Sequential-TLB-Invalidation ---- *)

let unmap_with kcore ~skip_barrier ~skip_tlbi =
  let vmid = Kcore.register_vm kcore ~cpu:0 in
  let npt = (Kcore.find_vm kcore vmid).Kcore.npt in
  let ipa = Page_table.page_va 140 in
  (match Npt.set_s2pt npt ~cpu:0 ~ipa ~pfn:810 ~perms:Pte.rw with
  | Ok () -> ()
  | Error `Already_mapped -> Alcotest.fail "map");
  match Npt.clear_s2pt ~skip_barrier ~skip_tlbi npt ~cpu:0 ~ipa with
  | Ok () -> ()
  | Error `Not_mapped -> Alcotest.fail "unmap"

let test_tlbi_positive () =
  let kcore, _ = booted () in
  unmap_with kcore ~skip_barrier:false ~skip_tlbi:false;
  let v = Vrm.Check_tlbi.check kcore.Kcore.trace in
  Alcotest.(check bool) "holds" true v.Vrm.Check_tlbi.holds;
  Alcotest.(check bool) "checked at least one unmap" true
    (v.Vrm.Check_tlbi.unmaps_checked >= 1)

let test_tlbi_missing_barrier () =
  let kcore, _ = booted () in
  unmap_with kcore ~skip_barrier:true ~skip_tlbi:false;
  let v = Vrm.Check_tlbi.check kcore.Kcore.trace in
  Alcotest.(check bool) "violated" false v.Vrm.Check_tlbi.holds;
  Alcotest.(check bool) "reason is the barrier" true
    (List.exists
       (fun x -> x.Vrm.Check_tlbi.v_reason = `No_barrier)
       v.Vrm.Check_tlbi.violations)

let test_tlbi_missing_tlbi () =
  let kcore, _ = booted () in
  unmap_with kcore ~skip_barrier:false ~skip_tlbi:true;
  let v = Vrm.Check_tlbi.check kcore.Kcore.trace in
  Alcotest.(check bool) "violated" false v.Vrm.Check_tlbi.holds;
  Alcotest.(check bool) "reason is the TLBI" true
    (List.exists
       (fun x -> x.Vrm.Check_tlbi.v_reason = `No_tlbi)
       v.Vrm.Check_tlbi.violations)

let test_tlbi_smmu_paths () =
  let kcore, _ = booted () in
  (match Kcore.smmu_attach kcore ~cpu:0 ~device:1 ~owner:S2page.Kserv with
  | Ok () -> ()
  | Error `Denied -> Alcotest.fail "attach");
  let pfn = Kcore.kserv_base cfg in
  (match Kcore.smmu_map kcore ~cpu:0 ~device:1 ~iova:0 ~pfn with
  | Ok () -> ()
  | Error `Denied -> Alcotest.fail "smmu map");
  (match Kcore.smmu_unmap kcore ~cpu:0 ~device:1 ~iova:0 with
  | Ok () -> ()
  | Error `Denied -> Alcotest.fail "smmu unmap");
  Alcotest.(check bool) "smmu unmap covered" true
    (Vrm.Check_tlbi.check kcore.Kcore.trace).Vrm.Check_tlbi.holds

(* ---- condition 6: Memory-Isolation ---- *)

let test_isolation_positive () =
  let out = Vrm.Scenario.standard_run () in
  let v = Vrm.Check_isolation.check out.Vrm.Scenario.kcore in
  Alcotest.(check bool) "holds" true v.Vrm.Check_isolation.holds;
  Alcotest.(check int) "no raw user reads" 0 v.Vrm.Check_isolation.raw_user_reads;
  Alcotest.(check bool) "oracle reads recorded" true
    (v.Vrm.Check_isolation.oracle_reads > 0)

let test_isolation_raw_read_flagged () =
  let kcore, _ = booted () in
  (* inject a raw (non-oracle) read of KServ memory into the trace *)
  Trace.record kcore.Kcore.trace
    (Trace.E_mem_read { cpu = 0; pfn = 900; owner = S2page.Kserv });
  let v = Vrm.Check_isolation.check kcore in
  Alcotest.(check bool) "violated" false v.Vrm.Check_isolation.holds;
  Alcotest.(check int) "one raw read" 1 v.Vrm.Check_isolation.raw_user_reads

let test_isolation_smmu_disabled_flagged () =
  let kcore, _ = booted () in
  kcore.Kcore.smmu_ops.Smmu_ops.smmu.Smmu.enabled <- false;
  let v = Vrm.Check_isolation.check kcore in
  Alcotest.(check bool) "violated" false v.Vrm.Check_isolation.holds

let () =
  Alcotest.run "checkers"
    [ ( "drf-kernel",
        [ Alcotest.test_case "positive" `Quick test_drf_positive;
          Alcotest.test_case "negative" `Quick test_drf_negative ] );
      ( "no-barrier-misuse",
        [ Alcotest.test_case "corpus passes" `Quick test_barrier_positive;
          Alcotest.test_case "buggy variants fail" `Quick
            test_barrier_negative;
          Alcotest.test_case "dmb fulfillment" `Quick
            test_barrier_dmb_fulfillment ] );
      ( "write-once",
        [ Alcotest.test_case "positive" `Quick test_write_once_positive;
          Alcotest.test_case "negative" `Quick test_write_once_negative ] );
      ( "transactional",
        [ Alcotest.test_case "map/unmap audits" `Quick
            test_transactional_audits;
          Alcotest.test_case "example 5 rejected" `Quick
            test_transactional_example5_rejected ] );
      ( "tlb-invalidation",
        [ Alcotest.test_case "positive" `Quick test_tlbi_positive;
          Alcotest.test_case "missing barrier" `Quick
            test_tlbi_missing_barrier;
          Alcotest.test_case "missing tlbi" `Quick test_tlbi_missing_tlbi;
          Alcotest.test_case "smmu paths" `Quick test_tlbi_smmu_paths ] );
      ( "memory-isolation",
        [ Alcotest.test_case "positive" `Quick test_isolation_positive;
          Alcotest.test_case "raw read flagged" `Quick
            test_isolation_raw_read_flagged;
          Alcotest.test_case "smmu disabled flagged" `Quick
            test_isolation_smmu_disabled_flagged ] ) ]
