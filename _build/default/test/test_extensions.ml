(* Tests for the extension features: huge-page (block) stage-2 mappings,
   the vGIC-lite virtual-interrupt path, userspace UART emulation, VM
   snapshots, and the strong/weak Memory-Isolation distinction. *)

open Sekvm
open Machine

let cfg = Kcore.default_boot_config

let booted () =
  let kcore = Kcore.boot cfg in
  let kserv = Kserv.create kcore ~first_free_pfn:(Kcore.kserv_base cfg) in
  let vmid =
    match Kserv.boot_vm kserv ~cpu:0 ~n_vcpus:2 ~image_pages:2 with
    | Ok v -> v
    | Error _ -> Alcotest.fail "boot failed"
  in
  (kcore, kserv, vmid)

(* ---- block (huge-page) mappings ---- *)

let block_table () =
  let mem = Phys_mem.create 64 in
  let pool = Page_pool.create ~name:"b" ~mem ~first_pfn:1 ~n_pages:40 in
  let root = Page_pool.alloc pool in
  (mem, pool, root)

let test_block_map_walk () =
  let mem, pool, root = block_table () in
  let g = Page_table.three_level in
  (* a 2 MB block: virtual pages 512..1023 -> frames 1024.. (aligned) *)
  let va = Page_table.page_va 512 in
  (match
     Page_table.plan_map_block mem g ~pool ~root ~va ~target_pfn:1024
       ~perms:Pte.rw ~level:1
   with
  | Ok ws -> Page_table.apply_writes mem ws
  | Error _ -> Alcotest.fail "block map failed");
  (* translation offsets within the block *)
  (match Page_table.walk mem g ~root (Page_table.page_va 512) with
  | Page_table.Mapped (pfn, _) -> Alcotest.(check int) "block base" 1024 pfn
  | Page_table.Fault _ -> Alcotest.fail "fault");
  (match Page_table.walk mem g ~root (Page_table.page_va 700) with
  | Page_table.Mapped (pfn, _) ->
      Alcotest.(check int) "block offset" (1024 + 700 - 512) pfn
  | Page_table.Fault _ -> Alcotest.fail "fault");
  (* outside the block still faults *)
  (match Page_table.walk mem g ~root (Page_table.page_va 1024) with
  | Page_table.Fault _ -> ()
  | Page_table.Mapped _ -> Alcotest.fail "should fault");
  (* unmapping any covered address clears the whole block *)
  (match Page_table.plan_unmap mem g ~root ~va:(Page_table.page_va 700) with
  | Some w -> Page_table.apply_write mem w
  | None -> Alcotest.fail "no unmap plan");
  (match Page_table.walk mem g ~root (Page_table.page_va 512) with
  | Page_table.Fault _ -> ()
  | Page_table.Mapped _ -> Alcotest.fail "block survived unmap")

let test_block_misaligned_rejected () =
  let mem, pool, root = block_table () in
  let g = Page_table.three_level in
  match
    Page_table.plan_map_block mem g ~pool ~root
      ~va:(Page_table.page_va 513) ~target_pfn:1024 ~perms:Pte.rw ~level:1
  with
  | Error `Misaligned -> ()
  | Ok _ | Error `Already_mapped -> Alcotest.fail "misalignment accepted"

let test_block_extents_and_mappings () =
  let mem, pool, root = block_table () in
  let g = Page_table.three_level in
  (match
     Page_table.plan_map_block mem g ~pool ~root ~va:(Page_table.page_va 512)
       ~target_pfn:1024 ~perms:Pte.rw ~level:1
   with
  | Ok ws -> Page_table.apply_writes mem ws
  | Error _ -> Alcotest.fail "map");
  let exts = Page_table.extents mem g ~root in
  Alcotest.(check int) "one extent" 1 (List.length exts);
  Alcotest.(check int) "512 pages" 512 (List.hd exts).Page_table.e_pages;
  Alcotest.(check int) "expanded mappings" 512
    (List.length (Page_table.mappings mem g ~root))

let test_block_transactional () =
  (* a block map into a fresh tree is transactional like a deep 4K map *)
  let mem, pool, root = block_table () in
  let g = Page_table.three_level in
  let va = Page_table.page_va 512 in
  match
    Page_table.plan_map_block mem g ~pool ~root ~va ~target_pfn:1024
      ~perms:Pte.rw ~level:1
  with
  | Ok writes ->
      let bad =
        Mmu_walker.transactional_violations mem g ~root ~writes
          ~vas:[ va; Page_table.page_va 700 ]
      in
      Alcotest.(check int) "transactional" 0 (List.length bad)
  | Error _ -> Alcotest.fail "plan"

let test_npt_block_primitive () =
  let kcore, _, vmid = booted () in
  let npt = (Kcore.find_vm kcore vmid).Kcore.npt in
  (match
     Npt.set_s2pt_block npt ~cpu:0 ~ipa:(Page_table.page_va 512) ~pfn:0
       ~perms:Pte.ro ~level:1
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "npt block map failed");
  (match Npt.translate npt ~ipa:(Page_table.page_va 600) with
  | Some (pfn, perms) ->
      Alcotest.(check int) "offset into block" 88 pfn;
      Alcotest.(check bool) "read-only" false perms.Pte.writable
  | None -> Alcotest.fail "untranslated");
  (* write-once discipline also applies to block entries *)
  match
    Npt.set_s2pt_block npt ~cpu:0 ~ipa:(Page_table.page_va 512) ~pfn:512
      ~perms:Pte.rw ~level:1
  with
  | Error `Already_mapped -> ()
  | Ok () | Error `Misaligned -> Alcotest.fail "block overwritten"

(* ---- vGIC and virtual IPIs ---- *)

let test_vgic_fifo () =
  let g = Vgic.create () in
  Vgic.inject g ~vcpuid:0 ~irq:3;
  Vgic.inject g ~vcpuid:1 ~irq:4;
  Vgic.inject g ~vcpuid:0 ~irq:5;
  Alcotest.(check int) "two pending for vcpu0" 2 (Vgic.pending g ~vcpuid:0);
  Alcotest.(check (option int)) "fifo order" (Some 3) (Vgic.take g ~vcpuid:0);
  Alcotest.(check (option int)) "next" (Some 5) (Vgic.take g ~vcpuid:0);
  Alcotest.(check (option int)) "drained" None (Vgic.take g ~vcpuid:0);
  Alcotest.(check (option int)) "other vcpu untouched" (Some 4)
    (Vgic.take g ~vcpuid:1)

let test_guest_ipi_roundtrip () =
  let kcore, kserv, vmid = booted () in
  (* vCPU 0 signals vCPU 1 *)
  (match Kserv.run_guest kserv ~cpu:1 ~vmid ~vcpuid:0 [ Vm.G_ipi (1, 7) ] with
  | [ Vm.R_unit ] -> ()
  | _ -> Alcotest.fail "ipi send failed");
  Alcotest.(check int) "pending at target" 1
    (Kcore.vgic_pending kcore ~vmid ~vcpuid:1);
  (* vCPU 1 acknowledges it *)
  (match Kserv.run_guest kserv ~cpu:2 ~vmid ~vcpuid:1 [ Vm.G_ack_irq ] with
  | [ Vm.R_value 7 ] -> ()
  | _ -> Alcotest.fail "ack failed");
  Alcotest.(check int) "vipi counted" 1 kcore.Kcore.vipis;
  (* signalling a nonexistent vCPU is denied *)
  match Kserv.run_guest kserv ~cpu:1 ~vmid ~vcpuid:0 [ Vm.G_ipi (9, 1) ] with
  | [ Vm.R_denied ] -> ()
  | _ -> Alcotest.fail "bogus target accepted"

let test_ipi_pingpong_workload () =
  let kcore, kserv, vmid = booted () in
  ignore
    (Kserv.run_guest kserv ~cpu:1 ~vmid ~vcpuid:0
       (Vm.ipi_round ~peer:1 ~rounds:5));
  Alcotest.(check int) "five IPIs" 5 kcore.Kcore.vipis;
  Alcotest.(check int) "five pending at peer" 5
    (Kcore.vgic_pending kcore ~vmid ~vcpuid:1)

let test_uart_userspace_path () =
  let kcore, kserv, vmid = booted () in
  (match
     Kserv.run_guest kserv ~cpu:1 ~vmid ~vcpuid:0
       [ Vm.G_uart_putc 72; Vm.G_uart_putc 105 ]
   with
  | [ Vm.R_unit; Vm.R_unit ] -> ()
  | _ -> Alcotest.fail "uart writes failed");
  Alcotest.(check (list int)) "buffer in host userspace" [ 72; 105 ]
    (List.rev kserv.Kserv.uart);
  Alcotest.(check int) "userspace exits counted" 2 kcore.Kcore.mmio_user;
  Alcotest.(check int) "kernel-space exits separate" 0 kcore.Kcore.mmio_kernel

(* ---- vCPU register state across physical CPUs ---- *)

let test_vcpu_state_migrates_across_pcpus () =
  (* the content of the ACTIVE/INACTIVE protocol: registers written while
     running on one physical CPU are observed intact when the vCPU is
     next loaded on a different physical CPU *)
  let _, kserv, vmid = booted () in
  (match
     Kserv.run_guest kserv ~cpu:1 ~vmid ~vcpuid:0
       [ Vm.G_set_reg (3, 0xabc); Vm.G_get_reg 3 ]
   with
  | [ Vm.R_unit; Vm.R_value 0xabc ] -> ()
  | _ -> Alcotest.fail "set/get on the same pCPU failed");
  match Kserv.run_guest kserv ~cpu:3 ~vmid ~vcpuid:0 [ Vm.G_get_reg 3 ] with
  | [ Vm.R_value 0xabc ] -> ()
  | _ -> Alcotest.fail "register lost across the pCPU migration"

let test_vcpu_regs_isolated_between_vcpus () =
  let _, kserv, vmid = booted () in
  ignore (Kserv.run_guest kserv ~cpu:1 ~vmid ~vcpuid:0 [ Vm.G_set_reg (0, 5) ]);
  match Kserv.run_guest kserv ~cpu:1 ~vmid ~vcpuid:1 [ Vm.G_get_reg 0 ] with
  | [ Vm.R_value 0 ] -> ()
  | _ -> Alcotest.fail "vCPU register state leaked between vCPUs"

let test_uart_getc_oracle () =
  (* external input is an oracle draw: deterministic per seed, different
     across seeds, and counted as a userspace exit *)
  let boot seed =
    let kcore = Kcore.boot { cfg with Kcore.oracle_seed = seed } in
    let kserv = Kserv.create kcore ~first_free_pfn:(Kcore.kserv_base cfg) in
    match Kserv.boot_vm kserv ~cpu:0 ~n_vcpus:1 ~image_pages:1 with
    | Ok vmid -> (kcore, kserv, vmid)
    | Error _ -> Alcotest.fail "boot"
  in
  let run (_, kserv, vmid) =
    List.filter_map
      (function Vm.R_value v -> Some v | _ -> None)
      (Kserv.run_guest kserv ~cpu:1 ~vmid ~vcpuid:0
         [ Vm.G_uart_getc; Vm.G_uart_getc; Vm.G_uart_getc ])
  in
  let a = run (boot 7) and b = run (boot 7) and c = run (boot 8) in
  Alcotest.(check (list int)) "same seed, same bytes" a b;
  Alcotest.(check bool) "different seed differs" true (a <> c);
  let kcore, _, _ = boot 7 in
  Alcotest.(check int) "no exits before reads" 0 kcore.Kcore.mmio_user

(* ---- guest W^X: vm_protect_page ---- *)

let test_protect_page () =
  let kcore, kserv, vmid = booted () in
  let ipa = Page_table.page_va 45 in
  (match
     Kserv.run_guest kserv ~cpu:1 ~vmid ~vcpuid:0
       [ Vm.G_write (ipa, 3); Vm.G_protect ipa; Vm.G_read ipa;
         Vm.G_write (ipa, 4) ]
   with
  | [ Vm.R_unit; Vm.R_unit; Vm.R_value 3; Vm.R_denied ] -> ()
  | rs ->
      Alcotest.failf "unexpected results: %s"
        (String.concat "," (List.map Vm.show_op_result rs)));
  (* protecting an unmapped or foreign page is denied *)
  (match Kcore.vm_protect_page kcore ~cpu:0 ~vmid ~ipa:(Page_table.page_va 200) with
  | Error `Denied -> ()
  | Ok () -> Alcotest.fail "protected an unmapped page");
  (* the remap was trace-compliant: barrier + TLBI after the clear *)
  Alcotest.(check bool) "TLBI discipline held" true
    (Vrm.Check_tlbi.check kcore.Kcore.trace).Vrm.Check_tlbi.holds;
  Alcotest.(check int) "invariants" 0
    (List.length (Kcore.check_invariants kcore))

let test_protect_idempotent_and_tlb () =
  let kcore, kserv, vmid = booted () in
  let ipa = Page_table.page_va 46 in
  ignore
    (Kserv.run_guest kserv ~cpu:1 ~vmid ~vcpuid:0
       [ Vm.G_write (ipa, 1); Vm.G_read ipa ]);
  (* the read cached a writable translation in CPU 1's TLB; protecting
     must invalidate it so the next write faults instead of hitting a
     stale writable entry *)
  (match Kcore.vm_protect_page kcore ~cpu:0 ~vmid ~ipa with
  | Ok () -> ()
  | Error `Denied -> Alcotest.fail "protect denied");
  (match Kcore.vm_protect_page kcore ~cpu:0 ~vmid ~ipa with
  | Ok () -> () (* idempotent *)
  | Error `Denied -> Alcotest.fail "re-protect denied");
  match Kserv.run_guest kserv ~cpu:1 ~vmid ~vcpuid:0 [ Vm.G_write (ipa, 9) ] with
  | [ Vm.R_denied ] -> ()
  | _ -> Alcotest.fail "stale writable TLB entry survived the protect"

(* ---- snapshots and strong/weak isolation ---- *)

let test_snapshot_content () =
  let kcore, kserv, vmid = booted () in
  ignore
    (Kserv.run_guest kserv ~cpu:1 ~vmid ~vcpuid:0
       [ Vm.G_write (Page_table.page_va 40, 111) ]);
  let snap1 = Kcore.snapshot_vm kcore ~cpu:0 ~vmid in
  Alcotest.(check int) "image + data pages" 3 (List.length snap1);
  (* mutating the guest changes the digest of exactly that page *)
  ignore
    (Kserv.run_guest kserv ~cpu:1 ~vmid ~vcpuid:0
       [ Vm.G_write (Page_table.page_va 40, 222) ]);
  let snap2 = Kcore.snapshot_vm kcore ~cpu:0 ~vmid in
  let changed =
    List.filter
      (fun (vp, d) -> List.assoc vp snap1 <> d)
      snap2
  in
  Alcotest.(check int) "one page changed" 1 (List.length changed);
  Alcotest.(check int) "the data page" 40 (fst (List.hd changed))

let test_snapshot_reads_are_oracle_mediated () =
  let kcore, _, vmid = booted () in
  let before =
    (Vrm.Check_isolation.check kcore).Vrm.Check_isolation.oracle_reads
  in
  ignore (Kcore.snapshot_vm kcore ~cpu:0 ~vmid);
  let v = Vrm.Check_isolation.check kcore in
  Alcotest.(check bool) "weak isolation still holds" true
    v.Vrm.Check_isolation.holds;
  Alcotest.(check bool) "snapshot added oracle reads" true
    (v.Vrm.Check_isolation.oracle_reads > before);
  Alcotest.(check bool) "strong isolation does NOT hold (§4.3)" false
    v.Vrm.Check_isolation.strong_holds

let test_strong_isolation_without_user_reads () =
  (* a freshly booted KCore that never reads user memory satisfies even
     the strong condition *)
  let kcore = Kcore.boot cfg in
  let v = Vrm.Check_isolation.check kcore in
  Alcotest.(check bool) "weak" true v.Vrm.Check_isolation.holds;
  Alcotest.(check bool) "strong" true v.Vrm.Check_isolation.strong_holds

(* ---- perf ablations ---- *)

let test_kserv_hugepage_ablation () =
  let base = Perf.Micro.table3 () in
  let fixed = Perf.Micro.table3 ~kserv_hugepages:true () in
  let ratio rows name hw =
    (List.find
       (fun (r : Perf.Micro.row) ->
         r.Perf.Micro.bench.Perf.Micro.name = name
         && r.Perf.Micro.hw_name = hw)
       rows)
      .Perf.Micro.overhead
  in
  (* huge KServ mappings collapse the m400's TLB pressure: overhead falls
     to roughly the Seattle (dispatch-only) level *)
  List.iter
    (fun b ->
      Alcotest.(check bool) (b ^ ": ablation removes the TLB tax") true
        (ratio fixed b "m400" < ratio base b "m400" -. 0.3);
      Alcotest.(check bool) (b ^ ": near the dispatch floor") true
        (ratio fixed b "m400" < 1.45))
    [ "Hypercall"; "I/O Kernel"; "I/O User"; "Virtual IPI" ]

let qcheck_block_and_leaf_mappings_consistent =
  QCheck.Test.make
    ~name:"extents expand exactly to mappings (blocks + 4K mixed)"
    ~count:60
    QCheck.(pair (int_bound 2) (int_bound 50))
    (fun (block_slot, vp4k) ->
      let mem = Phys_mem.create 64 in
      let pool = Page_pool.create ~name:"q" ~mem ~first_pfn:1 ~n_pages:40 in
      let g = Page_table.three_level in
      let root = Page_pool.alloc pool in
      (* one 2MB block plus one 4K page in a disjoint region *)
      let block_vp = (block_slot + 2) * 512 in
      (match
         Page_table.plan_map_block mem g ~pool ~root
           ~va:(Page_table.page_va block_vp) ~target_pfn:1024 ~perms:Pte.rw
           ~level:1
       with
      | Ok ws -> Page_table.apply_writes mem ws
      | Error _ -> ());
      (match
         Page_table.plan_map mem g ~pool ~root ~va:(Page_table.page_va vp4k)
           ~target_pfn:60 ~perms:Pte.rw
       with
      | Ok ws -> Page_table.apply_writes mem ws
      | Error _ -> ());
      let expanded =
        List.concat_map
          (fun e ->
            List.init e.Page_table.e_pages (fun k ->
                (e.Page_table.e_vp + k, e.Page_table.e_pfn + k)))
          (Page_table.extents mem g ~root)
      in
      let mapped =
        List.map (fun (vp, pfn, _) -> (vp, pfn)) (Page_table.mappings mem g ~root)
      in
      List.sort compare expanded = List.sort compare mapped
      (* and every expanded page walks to its frame *)
      && List.for_all
           (fun (vp, pfn) ->
             match Page_table.walk mem g ~root (Page_table.page_va vp) with
             | Page_table.Mapped (p, _) -> p = pfn
             | Page_table.Fault _ -> false)
           mapped)

let test_tlb_sweep_monotone () =
  let sweep = Perf.Micro.tlb_sweep () in
  let rec mono = function
    | (_, a) :: ((_, b) :: _ as rest) -> a >= b -. 1e-9 && mono rest
    | _ -> true
  in
  Alcotest.(check bool) "overhead falls with TLB size" true (mono sweep);
  let at n = List.assoc n sweep in
  Alcotest.(check bool) "tiny TLB ~2x" true (at 32 > 1.8);
  Alcotest.(check bool) "big TLB near dispatch floor" true (at 1024 < 1.45)

let () =
  Alcotest.run "extensions"
    [ ( "huge-pages",
        [ Alcotest.test_case "block map/walk/unmap" `Quick test_block_map_walk;
          Alcotest.test_case "misaligned rejected" `Quick
            test_block_misaligned_rejected;
          Alcotest.test_case "extents and mappings" `Quick
            test_block_extents_and_mappings;
          Alcotest.test_case "block map transactional" `Quick
            test_block_transactional;
          Alcotest.test_case "npt block primitive" `Quick
            test_npt_block_primitive ] );
      ( "vgic",
        [ Alcotest.test_case "fifo per vcpu" `Quick test_vgic_fifo;
          Alcotest.test_case "guest IPI roundtrip" `Quick
            test_guest_ipi_roundtrip;
          Alcotest.test_case "ipi ping-pong workload" `Quick
            test_ipi_pingpong_workload;
          Alcotest.test_case "uart userspace path" `Quick
            test_uart_userspace_path ] );
      ( "oracle-io",
        [ Alcotest.test_case "uart getc draws the oracle" `Quick
            test_uart_getc_oracle ] );
      ( "wx-protect",
        [ Alcotest.test_case "protect page" `Quick test_protect_page;
          Alcotest.test_case "idempotent + TLB shootdown" `Quick
            test_protect_idempotent_and_tlb ] );
      ( "vcpu-state",
        [ Alcotest.test_case "migrates across pCPUs" `Quick
            test_vcpu_state_migrates_across_pcpus;
          Alcotest.test_case "isolated between vCPUs" `Quick
            test_vcpu_regs_isolated_between_vcpus ] );
      ( "snapshots",
        [ Alcotest.test_case "content digests" `Quick test_snapshot_content;
          Alcotest.test_case "oracle-mediated" `Quick
            test_snapshot_reads_are_oracle_mediated;
          Alcotest.test_case "strong isolation baseline" `Quick
            test_strong_isolation_without_user_reads ] );
      ( "ablations",
        [ Alcotest.test_case "kserv hugepages" `Quick
            test_kserv_hugepage_ablation;
          Alcotest.test_case "tlb sweep" `Quick test_tlb_sweep_monotone;
          QCheck_alcotest.to_alcotest
            qcheck_block_and_leaf_mappings_consistent ] )
    ]
