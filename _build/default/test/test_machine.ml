(* Tests for the machine substrate: PTE encoding, physical memory, page
   pools, and multi-level page tables in both stage-2 geometries. *)

open Machine

let test_pte_roundtrip_cases () =
  let cases =
    [ Pte.Invalid; Pte.Table 42; Pte.Page (7, Pte.rw); Pte.Page (0, Pte.ro);
      Pte.Page (123456, { Pte.readable = false; writable = true }) ]
  in
  List.iter
    (fun pte ->
      Alcotest.(check bool) "roundtrip" true
        (Pte.equal (Pte.decode (Pte.encode pte)) pte))
    cases;
  Alcotest.(check bool) "invalid encodes to 0" true (Pte.encode Pte.Invalid = 0);
  Alcotest.(check bool) "0 is invalid" false (Pte.is_valid 0)

let qcheck_pte_roundtrip =
  QCheck.Test.make ~name:"pte encode/decode roundtrip" ~count:500
    QCheck.(triple (int_bound 1_000_000) bool bool)
    (fun (pfn, readable, writable) ->
      let pte = Pte.Page (pfn, { Pte.readable; writable }) in
      Pte.equal (Pte.decode (Pte.encode pte)) pte
      && Pte.equal (Pte.decode (Pte.encode (Pte.Table pfn))) (Pte.Table pfn))

let test_phys_mem () =
  let mem = Phys_mem.create 8 in
  Phys_mem.write mem ~pfn:3 ~idx:100 42;
  Alcotest.(check int) "rw" 42 (Phys_mem.read mem ~pfn:3 ~idx:100);
  Alcotest.(check int) "default zero" 0 (Phys_mem.read mem ~pfn:3 ~idx:99);
  Phys_mem.copy_page mem ~src:3 ~dst:4;
  Alcotest.(check int) "copied" 42 (Phys_mem.read mem ~pfn:4 ~idx:100);
  Alcotest.(check bool) "pages equal" true (Phys_mem.page_equal mem 3 4);
  Phys_mem.scrub mem 3;
  Alcotest.(check int) "scrubbed" 0 (Phys_mem.read mem ~pfn:3 ~idx:100);
  Alcotest.(check bool) "digest differs" true
    (Phys_mem.digest_page mem 3 <> Phys_mem.digest_page mem 4);
  Alcotest.check_raises "oob pfn"
    (Invalid_argument "Phys_mem: pfn 9 out of range") (fun () ->
      ignore (Phys_mem.read mem ~pfn:9 ~idx:0))

let test_page_pool () =
  let mem = Phys_mem.create 16 in
  Phys_mem.write mem ~pfn:5 ~idx:0 99;
  let pool = Page_pool.create ~name:"t" ~mem ~first_pfn:4 ~n_pages:4 in
  Alcotest.(check int) "scrubbed at create" 0 (Phys_mem.read mem ~pfn:5 ~idx:0);
  Alcotest.(check int) "available" 4 (Page_pool.available pool);
  let a = Page_pool.alloc pool in
  let b = Page_pool.alloc pool in
  Alcotest.(check bool) "distinct" true (a <> b);
  Alcotest.(check int) "allocated" 2 (Page_pool.allocated pool);
  Phys_mem.write mem ~pfn:a ~idx:7 1;
  Page_pool.free pool a;
  Alcotest.(check int) "scrub on free" 0 (Phys_mem.read mem ~pfn:a ~idx:7);
  let _ = Page_pool.alloc pool
  and _ = Page_pool.alloc pool
  and _ = Page_pool.alloc pool in
  Alcotest.check_raises "exhausted" (Page_pool.Pool_exhausted "t") (fun () ->
      ignore (Page_pool.alloc pool))

let with_table _g f =
  let mem = Phys_mem.create 64 in
  let pool = Page_pool.create ~name:"pt" ~mem ~first_pfn:1 ~n_pages:48 in
  let root = Page_pool.alloc pool in
  f mem pool root

let map_ok mem pool g root va pfn =
  match Page_table.plan_map mem g ~pool ~root ~va ~target_pfn:pfn ~perms:Pte.rw with
  | Ok ws ->
      Page_table.apply_writes mem ws;
      ws
  | Error `Already_mapped -> Alcotest.fail "unexpected Already_mapped"

let walk_t = Alcotest.testable Page_table.pp_walk_result Page_table.equal_walk_result

let test_map_walk geometry () =
  with_table geometry @@ fun mem pool root ->
  let g = geometry in
  let va = Page_table.page_va 0x1234 in
  Alcotest.check walk_t "fault before" (Page_table.Fault (g.Page_table.levels - 1))
    (Page_table.walk mem g ~root va);
  let ws = map_ok mem pool g root va 17 in
  Alcotest.(check int) "one write per level" g.Page_table.levels (List.length ws);
  Alcotest.check walk_t "mapped" (Page_table.Mapped (17, Pte.rw))
    (Page_table.walk mem g ~root va);
  (* second map in the same leaf table is a single write *)
  let ws2 = map_ok mem pool g root (va + 4096) 18 in
  Alcotest.(check int) "single write" 1 (List.length ws2);
  (* double-mapping is refused *)
  (match Page_table.plan_map mem g ~pool ~root ~va ~target_pfn:99 ~perms:Pte.rw with
  | Error `Already_mapped -> ()
  | Ok _ -> Alcotest.fail "should refuse overwrite");
  (* unmap *)
  (match Page_table.plan_unmap mem g ~root ~va with
  | Some w ->
      Page_table.apply_write mem w;
      Alcotest.check walk_t "fault after unmap" (Page_table.Fault 0)
        (Page_table.walk mem g ~root va)
  | None -> Alcotest.fail "expected unmap plan");
  (* unmapping an unmapped address yields no plan *)
  Alcotest.(check bool) "no double unmap" true
    (Page_table.plan_unmap mem g ~root ~va = None)

let test_revert geometry () =
  with_table geometry @@ fun mem pool root ->
  let g = geometry in
  let va = Page_table.page_va 0x77 in
  let before = Page_table.walk mem g ~root va in
  (match Page_table.plan_map mem g ~pool ~root ~va ~target_pfn:5 ~perms:Pte.rw with
  | Ok ws ->
      Page_table.apply_writes mem ws;
      Page_table.revert_writes mem ws
  | Error `Already_mapped -> Alcotest.fail "map failed");
  Alcotest.check walk_t "state restored" before (Page_table.walk mem g ~root va)

let test_mappings_listing geometry () =
  with_table geometry @@ fun mem pool root ->
  let g = geometry in
  let vps = [ 3; 512; 1000 ] in
  List.iteri
    (fun i vp -> ignore (map_ok mem pool g root (Page_table.page_va vp) (20 + i)))
    vps;
  let ms = Page_table.mappings mem g ~root in
  Alcotest.(check int) "three mappings" 3 (List.length ms);
  Alcotest.(check (list int)) "vps" vps
    (List.sort compare (List.map (fun (vp, _, _) -> vp) ms));
  let tables = Page_table.table_pages mem g ~root in
  Alcotest.(check bool) "root listed" true (List.mem root tables);
  Alcotest.(check bool) "more than root" true (List.length tables > 1)

let test_index_geometry () =
  let g4 = Page_table.four_level and g3 = Page_table.three_level in
  Alcotest.(check int) "va bits 4-level" 48 (Page_table.va_bits g4);
  Alcotest.(check int) "va bits 3-level" 39 (Page_table.va_bits g3);
  let va = (5 lsl 12) lor (7 lsl 21) lor (9 lsl 30) in
  Alcotest.(check int) "level0 idx" 5 (Page_table.index g3 ~level:0 va);
  Alcotest.(check int) "level1 idx" 7 (Page_table.index g3 ~level:1 va);
  Alcotest.(check int) "level2 idx" 9 (Page_table.index g3 ~level:2 va);
  Alcotest.(check int) "page offset" 0xabc (Page_table.page_offset 0x1abc);
  Alcotest.(check int) "page va roundtrip" 42
    (Page_table.va_page (Page_table.page_va 42))

let qcheck_map_then_walk =
  QCheck.Test.make ~name:"map then walk finds the frame" ~count:100
    QCheck.(pair (int_bound 4000) (int_bound 60))
    (fun (vp, pfn) ->
      with_table Page_table.three_level @@ fun mem pool root ->
      let g = Page_table.three_level in
      let va = Page_table.page_va vp in
      match
        Page_table.plan_map mem g ~pool ~root ~va ~target_pfn:pfn
          ~perms:Pte.rw
      with
      | Ok ws ->
          Page_table.apply_writes mem ws;
          Page_table.walk mem g ~root va = Page_table.Mapped (pfn, Pte.rw)
      | Error `Already_mapped -> false)

let test_s2page () =
  let db = S2page.create ~n_pages:8 ~default_owner:S2page.Kserv in
  Alcotest.(check bool) "default" true (S2page.owner db 3 = S2page.Kserv);
  S2page.set_owner db 3 (S2page.Vm 2);
  Alcotest.(check bool) "set" true (S2page.owner db 3 = S2page.Vm 2);
  S2page.incr_map db 3;
  S2page.incr_map db 3;
  Alcotest.(check int) "map count" 2 (S2page.map_count db 3);
  S2page.decr_map db 3;
  Alcotest.(check int) "decr" 1 (S2page.map_count db 3);
  S2page.set_shared db 3 true;
  Alcotest.(check bool) "shared" true (S2page.is_shared db 3);
  Alcotest.(check (list int)) "owned by vm2" [ 3 ]
    (S2page.pages_owned_by db (S2page.Vm 2));
  S2page.decr_map db 3;
  Alcotest.check_raises "underflow"
    (Invalid_argument "S2page: map_count underflow") (fun () ->
      S2page.decr_map db 3)

let () =
  Alcotest.run "machine"
    [ ( "pte",
        [ Alcotest.test_case "roundtrip" `Quick test_pte_roundtrip_cases;
          QCheck_alcotest.to_alcotest qcheck_pte_roundtrip ] );
      ( "memory",
        [ Alcotest.test_case "phys mem" `Quick test_phys_mem;
          Alcotest.test_case "page pool" `Quick test_page_pool;
          Alcotest.test_case "s2page" `Quick test_s2page ] );
      ( "page-table-4level",
        [ Alcotest.test_case "map/walk" `Quick
            (test_map_walk Page_table.four_level);
          Alcotest.test_case "revert" `Quick
            (test_revert Page_table.four_level);
          Alcotest.test_case "mappings" `Quick
            (test_mappings_listing Page_table.four_level) ] );
      ( "page-table-3level",
        [ Alcotest.test_case "map/walk" `Quick
            (test_map_walk Page_table.three_level);
          Alcotest.test_case "revert" `Quick
            (test_revert Page_table.three_level);
          Alcotest.test_case "mappings" `Quick
            (test_mappings_listing Page_table.three_level);
          Alcotest.test_case "geometry/index" `Quick test_index_geometry;
          QCheck_alcotest.to_alcotest qcheck_map_then_walk ] ) ]
