(* Tests for the SC-trace construction of §4.1 (Fig. 6): assigning shared
   accesses to critical sections, the push-before-pull partial order,
   concurrency of overlapping sections, and topological linearization. *)

open Memmodel
open Vrm

(* Build the Fig. 6 scenario directly as an event trace:
   CPU 1: pull x; write x; push x; pull y; write y; push y
   CPU 2:                   pull x; read x; push x
   with CPU 2's x-section starting after CPU 1's x-push but overlapping
   CPU 1's y-section. *)
let fig6_trace =
  [ Pushpull.Ev_pull (1, [ "x" ]);
    Pushpull.Ev_write (1, Loc.v "x", 1);
    Pushpull.Ev_push (1, [ "x" ]);
    Pushpull.Ev_pull (1, [ "y" ]);
    Pushpull.Ev_pull (2, [ "x" ]);
    Pushpull.Ev_write (1, Loc.v "y", 2);
    Pushpull.Ev_read (2, Loc.v "x", 1);
    Pushpull.Ev_push (1, [ "y" ]);
    Pushpull.Ev_push (2, [ "x" ]) ]

let analysis = Partial_order.analyze ~tracked:[ "x"; "y" ] fig6_trace

let find tid base =
  List.find
    (fun (a : Partial_order.access) ->
      a.Partial_order.a_tid = tid && Loc.base a.Partial_order.a_loc = base)
    analysis.Partial_order.accesses

let test_assignment () =
  Alcotest.(check int) "three shared accesses" 3
    (List.length analysis.Partial_order.accesses);
  let a = find 1 "x" in
  Alcotest.(check bool) "inside a section" true
    (a.Partial_order.a_cs <> None)

let test_order_across_cpus () =
  (* CPU 1's x-access is before CPU 2's: its push precedes CPU 2's pull *)
  let ax1 = find 1 "x" and ax2 = find 2 "x" in
  Alcotest.(check bool) "x1 < x2" true (Partial_order.happens_before ax1 ax2);
  Alcotest.(check bool) "not x2 < x1" false
    (Partial_order.happens_before ax2 ax1)

let test_overlap_is_concurrent () =
  (* CPU 1's y-section overlaps CPU 2's x-section: unordered (Fig. 6) *)
  let ay1 = find 1 "y" and ax2 = find 2 "x" in
  Alcotest.(check bool) "concurrent" true (Partial_order.concurrent ay1 ax2)

let test_program_order_within_cpu () =
  let ax1 = find 1 "x" and ay1 = find 1 "y" in
  Alcotest.(check bool) "program order" true
    (Partial_order.happens_before ax1 ay1)

let test_linearize () =
  let lin = Partial_order.linearize analysis in
  Alcotest.(check int) "all events" 3 (List.length lin);
  Alcotest.(check bool) "consistent with the partial order" true
    (Partial_order.consistent analysis lin)

let test_replay_same_results () =
  (* the full Theorem 2 construction: for every push/pull execution of
     the certified programs, the topologically sorted SC trace replays
     to the same read values *)
  List.iter
    (fun (e : Sekvm.Kernel_progs.entry) ->
      let tracked =
        List.filter
          (fun b -> not (List.mem b e.Sekvm.Kernel_progs.exempt))
          (Prog.shared_bases e.Sekvm.Kernel_progs.prog)
      in
      List.iter
        (fun tr ->
          let a = Partial_order.analyze ~tracked tr in
          let lin = Partial_order.linearize a in
          Alcotest.(check bool)
            (e.Sekvm.Kernel_progs.name ^ ": replay matches")
            true
            (Partial_order.replay_matches
               ~init:(fun l -> Prog.init_value e.Sekvm.Kernel_progs.prog l)
               lin))
        (Pushpull.traces ~exempt:e.Sekvm.Kernel_progs.exempt ~max_traces:24
           e.Sekvm.Kernel_progs.prog))
    [ Sekvm.Kernel_progs.vmid_alloc; Sekvm.Kernel_progs.vm_boot;
      Sekvm.Kernel_progs.share_page ]

let test_on_real_execution () =
  (* run the certified gen_vmid program and construct SC traces from its
     push/pull executions *)
  let e = Sekvm.Kernel_progs.vmid_alloc in
  let traces =
    Pushpull.traces ~exempt:e.Sekvm.Kernel_progs.exempt ~max_traces:32
      e.Sekvm.Kernel_progs.prog
  in
  Alcotest.(check bool) "traces exist" true (traces <> []);
  List.iter
    (fun tr ->
      let a = Partial_order.analyze ~tracked:[ "next_vmid" ] tr in
      let lin = Partial_order.linearize a in
      Alcotest.(check bool) "consistent" true (Partial_order.consistent a lin);
      (* critical sections on one base never overlap: every cross-thread
         pair of next_vmid accesses is ordered *)
      List.iter
        (fun (x : Partial_order.access) ->
          List.iter
            (fun (y : Partial_order.access) ->
              if x.Partial_order.a_tid <> y.Partial_order.a_tid then
                Alcotest.(check bool) "ordered" true
                  (Partial_order.happens_before x y
                  || Partial_order.happens_before y x))
            a.Partial_order.accesses)
        a.Partial_order.accesses)
    traces

let () =
  Alcotest.run "partial-order"
    [ ( "fig6",
        [ Alcotest.test_case "section assignment" `Quick test_assignment;
          Alcotest.test_case "cross-CPU order" `Quick test_order_across_cpus;
          Alcotest.test_case "overlap concurrent" `Quick
            test_overlap_is_concurrent;
          Alcotest.test_case "program order" `Quick
            test_program_order_within_cpu;
          Alcotest.test_case "linearize" `Quick test_linearize ] );
      ( "real-executions",
        [ Alcotest.test_case "gen_vmid traces" `Quick test_on_real_execution;
          Alcotest.test_case "replay same results (Thm 2)" `Quick
            test_replay_same_results ] ) ]
