(* Tests for the MCS queue lock extension: runtime discipline, DSL
   protocol correctness under SC, barrier placement, and relaxed-memory
   refinement of the hand-off. Also covers the new XCHG/CAS atomics. *)

open Memmodel
open Sekvm

(* ---- XCHG / CAS atomics ---- *)

let obs_l base = Prog.Obs_loc (Loc.v base)

let test_xchg_sc () =
  (* two exchanges on one cell: the final value is one thread's, and
     exactly one thread observed the other's value or the initial *)
  let prog =
    Prog.make ~name:"xchg"
      ~init:[ (Loc.v "x", 9) ]
      ~observables:
        [ Prog.Obs_reg (1, Reg.v "a"); Prog.Obs_reg (2, Reg.v "b"); obs_l "x" ]
      [ Prog.thread 1 [ Instr.xchg (Reg.v "a") (Expr.at "x") (Expr.c 1) ];
        Prog.thread 2 [ Instr.xchg (Reg.v "b") (Expr.at "x") (Expr.c 2) ] ]
  in
  let b = Sc.run prog in
  Alcotest.(check int) "two outcomes" 2 (Behavior.cardinal b);
  Alcotest.(check bool) "chain preserved" true
    (Behavior.satisfiable
       (fun g ->
         g (Prog.Obs_reg (1, Reg.v "a")) = Some 9
         && g (Prog.Obs_reg (2, Reg.v "b")) = Some 1
         && g (obs_l "x") = Some 2)
       b)

let test_cas_sc () =
  (* two CASes from 0: exactly one succeeds *)
  let prog =
    Prog.make ~name:"cas"
      ~observables:
        [ Prog.Obs_reg (1, Reg.v "a"); Prog.Obs_reg (2, Reg.v "b"); obs_l "x" ]
      [ Prog.thread 1
          [ Instr.cas (Reg.v "a") (Expr.at "x") ~expected:(Expr.c 0)
              ~desired:(Expr.c 1) ];
        Prog.thread 2
          [ Instr.cas (Reg.v "b") (Expr.at "x") ~expected:(Expr.c 0)
              ~desired:(Expr.c 2) ] ]
  in
  let b = Sc.run prog in
  Alcotest.(check bool) "exactly one wins, loser sees winner" true
    (List.for_all
       (fun (o : Behavior.outcome) ->
         match List.map snd o.Behavior.values with
         (* [a; b; x]: t1 won — saw 0, wrote 1; t2 saw 1 and failed *)
         | [ 0; 1; 1 ] -> true
         (* t2 won — saw 0, wrote 2; t1 saw 2 and failed *)
         | [ 2; 0; 2 ] -> true
         | _ -> false)
       (Behavior.elements b))

let test_cas_atomic_rm () =
  (* under the relaxed model too, CAS from 0 is won exactly once *)
  let prog =
    Prog.make ~name:"cas-rm"
      ~observables:[ obs_l "x" ]
      [ Prog.thread 1
          [ Instr.cas (Reg.v "a") (Expr.at "x") ~expected:(Expr.c 0)
              ~desired:(Expr.c 1) ];
        Prog.thread 2
          [ Instr.cas (Reg.v "b") (Expr.at "x") ~expected:(Expr.c 0)
              ~desired:(Expr.c 2) ] ]
  in
  let b =
    Promising.run
      ~config:{ Promising.default_config with max_promises = 1 }
      prog
  in
  Alcotest.(check bool) "x ends 1 or 2, never 0" true
    (List.for_all
       (fun (o : Behavior.outcome) ->
         o.Behavior.status <> Behavior.Normal
         || List.map snd o.Behavior.values <> [ 0 ])
       (Behavior.elements b))

(* ---- runtime MCS lock ---- *)

let test_runtime_discipline () =
  let l = Mcs_lock.create "q" in
  Mcs_lock.with_lock l ~cpu:0 (fun () -> ());
  Mcs_lock.acquire l ~cpu:1;
  Alcotest.(check bool) "second acquire refused" true
    (try
       Mcs_lock.acquire l ~cpu:2;
       false
     with Mcs_lock.Lock_error _ -> true);
  Alcotest.(check bool) "foreign release refused" true
    (try
       Mcs_lock.release l ~cpu:2;
       false
     with Mcs_lock.Lock_error _ -> true);
  Mcs_lock.release l ~cpu:1;
  Alcotest.(check int) "acquisitions" 2 l.Mcs_lock.acquisitions

(* ---- DSL protocol ---- *)

let exempt = Mcs_lock.lock_bases "m"

let test_mutual_exclusion_sc () =
  let prog = Mcs_lock.counter_prog ~barriers:true "mcs" in
  match Pushpull.check ~exempt prog with
  | Pushpull.Drf_ok b ->
      Alcotest.(check bool) "counter is 2 on every completed path" true
        (List.for_all
           (fun (o : Behavior.outcome) ->
             o.Behavior.status <> Behavior.Normal
             || List.map snd o.Behavior.values = [ 2 ])
           (Behavior.elements b))
  | Pushpull.Drf_violation v ->
      Alcotest.failf "violation: %a" Pushpull.pp_violation v
  | Pushpull.Drf_kernel_panic _ -> Alcotest.fail "panic"

let test_barrier_checker_on_mcs () =
  Alcotest.(check bool) "with barriers" true
    (Vrm.Check_barrier.check (Mcs_lock.counter_prog ~barriers:true "a"))
      .Vrm.Check_barrier.holds;
  Alcotest.(check bool) "without barriers" false
    (Vrm.Check_barrier.check (Mcs_lock.counter_prog ~barriers:false "b"))
      .Vrm.Check_barrier.holds

let test_corpus_entries () =
  List.iter
    (fun (e : Kernel_progs.entry) ->
      let p = Vrm.Certificate.audit_program e in
      Alcotest.(check bool)
        (e.Kernel_progs.name ^ " as expected")
        true p.Vrm.Certificate.as_expected)
    [ Kernel_progs.mcs_handoff; Kernel_progs.mcs_handoff_nobarrier ]

let test_handoff_witness_is_stale_read () =
  let e = Kernel_progs.mcs_handoff_nobarrier in
  let v =
    Vrm.Refinement.check ~config:e.Kernel_progs.rm_config
      e.Kernel_progs.prog
  in
  Alcotest.(check bool) "fails" false v.Vrm.Refinement.holds;
  Alcotest.(check bool) "witness: waiter read stale 0" true
    (Behavior.satisfiable
       (fun g -> g (Prog.Obs_reg (2, Reg.v "data")) = Some 0)
       v.Vrm.Refinement.rm_only)

let test_mcs_counter_refines () =
  let e = Kernel_progs.mcs_counter in
  let v =
    Vrm.Refinement.check ~config:e.Kernel_progs.rm_config
      e.Kernel_progs.prog
  in
  Alcotest.(check bool) "refines" true v.Vrm.Refinement.holds

let () =
  Alcotest.run "mcs"
    [ ( "atomics",
        [ Alcotest.test_case "xchg SC" `Quick test_xchg_sc;
          Alcotest.test_case "cas SC" `Quick test_cas_sc;
          Alcotest.test_case "cas atomic under RM" `Quick test_cas_atomic_rm ]
      );
      ( "lock",
        [ Alcotest.test_case "runtime discipline" `Quick
            test_runtime_discipline;
          Alcotest.test_case "mutual exclusion on SC" `Quick
            test_mutual_exclusion_sc;
          Alcotest.test_case "barrier checker" `Quick
            test_barrier_checker_on_mcs;
          Alcotest.test_case "corpus entries" `Quick test_corpus_entries;
          Alcotest.test_case "stale hand-off witness" `Quick
            test_handoff_witness_is_stale_read;
          Alcotest.test_case "counter refines" `Quick
            test_mcs_counter_refines ] ) ]
