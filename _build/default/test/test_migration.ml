(* Tests for snapshots and live migration: content fidelity across hosts,
   ownership/invariant preservation, and the Weak-Memory-Isolation story
   (the export reads are oracle-mediated information flow). *)

open Sekvm
open Machine

let cfg = Kcore.default_boot_config

let booted () =
  let kcore = Kcore.boot cfg in
  let kserv = Kserv.create kcore ~first_free_pfn:(Kcore.kserv_base cfg) in
  let vmid =
    match Kserv.boot_vm kserv ~cpu:0 ~n_vcpus:2 ~image_pages:2 with
    | Ok v -> v
    | Error _ -> Alcotest.fail "boot failed"
  in
  (kcore, kserv, vmid)

let test_migrate_roundtrip () =
  (* source host: run a guest, dirty some pages *)
  let src_kcore, src_kserv, vmid = booted () in
  ignore
    (Kserv.run_guest src_kserv ~cpu:1 ~vmid ~vcpuid:0
       [ Vm.G_write (Page_table.page_va 50, 1234);
         Vm.G_write (Page_table.page_va 51, 5678) ]);
  let pages = Kcore.export_vm src_kcore ~cpu:0 ~vmid in
  Alcotest.(check int) "image + 2 data pages" 4 (List.length pages);
  (* destination host: import *)
  let dst_kcore = Kcore.boot cfg in
  let dst_kserv =
    Kserv.create dst_kcore ~first_free_pfn:(Kcore.kserv_base cfg)
  in
  let new_vmid =
    Kcore.import_vm dst_kcore ~cpu:0 ~pages
      ~donate:(fun () -> Kserv.alloc_page dst_kserv)
      ~n_vcpus:2
  in
  (* the guest sees its exact memory on the new host *)
  (match
     Kserv.run_guest dst_kserv ~cpu:1 ~vmid:new_vmid ~vcpuid:0
       [ Vm.G_read (Page_table.page_va 50); Vm.G_read (Page_table.page_va 51);
         Vm.G_read 0 ]
   with
  | [ Vm.R_value a; Vm.R_value b; Vm.R_value w0 ] ->
      Alcotest.(check int) "page 50" 1234 a;
      Alcotest.(check int) "page 51" 5678 b;
      Alcotest.(check int) "image word preserved"
        (Vm.image_words ~vmid ~page:0 0)
        w0
  | _ -> Alcotest.fail "guest reads failed");
  (* both hosts still satisfy every invariant *)
  Alcotest.(check int) "src invariants" 0
    (List.length (Kcore.check_invariants src_kcore));
  Alcotest.(check int) "dst invariants" 0
    (List.length (Kcore.check_invariants dst_kcore))

let test_migrated_vm_protected () =
  let src_kcore, src_kserv, vmid = booted () in
  ignore
    (Kserv.run_guest src_kserv ~cpu:1 ~vmid ~vcpuid:0
       [ Vm.G_write (Page_table.page_va 50, 0xfeed) ]);
  let pages = Kcore.export_vm src_kcore ~cpu:0 ~vmid in
  let dst_kcore = Kcore.boot cfg in
  let dst_kserv =
    Kserv.create dst_kcore ~first_free_pfn:(Kcore.kserv_base cfg)
  in
  let new_vmid =
    Kcore.import_vm dst_kcore ~cpu:0 ~pages
      ~donate:(fun () -> Kserv.alloc_page dst_kserv)
      ~n_vcpus:1
  in
  (* once imported, the destination host cannot read the VM's pages *)
  let pfn =
    List.hd
      (S2page.pages_owned_by dst_kcore.Kcore.s2page (S2page.Vm new_vmid))
  in
  (match Kserv.attack_read_vm_page dst_kserv ~cpu:0 ~pfn with
  | Error `Denied -> ()
  | Ok _ -> Alcotest.fail "migrated VM readable by the destination host")

let test_export_is_oracle_mediated () =
  let kcore, _, vmid = booted () in
  ignore (Kcore.export_vm kcore ~cpu:0 ~vmid);
  let v = Vrm.Check_isolation.check kcore in
  Alcotest.(check bool) "weak isolation holds" true
    v.Vrm.Check_isolation.holds;
  Alcotest.(check bool) "strong isolation broken by the export" false
    v.Vrm.Check_isolation.strong_holds

let test_import_refuses_non_kserv_pages () =
  let kcore, kserv, vmid = booted () in
  let vm_pfn =
    List.hd (S2page.pages_owned_by kcore.Kcore.s2page (S2page.Vm vmid))
  in
  Alcotest.(check bool) "panics on a stolen donation" true
    (try
       ignore
         (Kcore.import_vm kcore ~cpu:0
            ~pages:[ (7, Array.make Phys_mem.entries_per_page 0) ]
            ~donate:(fun () -> vm_pfn)
            ~n_vcpus:1);
       false
     with Kcore.Kcore_panic _ -> true);
  ignore kserv

let () =
  Alcotest.run "migration"
    [ ( "migration",
        [ Alcotest.test_case "roundtrip" `Quick test_migrate_roundtrip;
          Alcotest.test_case "destination protection" `Quick
            test_migrated_vm_protected;
          Alcotest.test_case "oracle-mediated export" `Quick
            test_export_is_oracle_mediated;
          Alcotest.test_case "illegal donation refused" `Quick
            test_import_refuses_non_kserv_pages ] ) ]
