(** Shared-memory locations: a named base cell plus an integer index, so
    array-like kernel objects (page-table entries,
    [vcpu_state\[vmid\]\[vcpuid\]], ...) can be addressed with computed
    offsets. Index 0 is used for plain scalar variables. *)

type t = { base : string; index : int }

val v : ?index:int -> string -> t
(** [v ?index base] — the location [base\[index\]]; [index] defaults to 0. *)

val base : t -> string
val index : t -> int

val equal : t -> t -> bool
val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
(** Prints [x] for scalars and [pte\[3\]] for indexed locations. *)

val show : t -> string
val to_string : t -> string

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
