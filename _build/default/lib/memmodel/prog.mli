(** Multi-threaded DSL programs and their observables. *)

type thread = { tid : int; code : Instr.t list; comment : string }

type observable =
  | Obs_reg of int * Reg.t  (** final value of a register of thread [tid] *)
  | Obs_loc of Loc.t  (** final value of a shared location *)

type t = {
  name : string;
  threads : thread list;
  init : (Loc.t * int) list;  (** initial memory; unlisted locations are 0 *)
  observables : observable list;
  shared_bases : string list;
      (** bases subject to the DRF discipline; empty means: inferred as
          every base touched by more than one thread *)
}

val thread : ?comment:string -> int -> Instr.t list -> thread

val make :
  ?init:(Loc.t * int) list ->
  ?shared_bases:string list ->
  name:string ->
  observables:observable list ->
  thread list ->
  t
(** Raises [Invalid_argument] on duplicate thread ids. *)

val n_threads : t -> int
val find_thread : t -> int -> thread
val init_value : t -> Loc.t -> int
val known_locs : t -> Loc.t list

val shared_bases : t -> string list
(** The declared shared bases, or the inferred set (bases touched by at
    least two threads) when none were declared. *)

val pp_observable : Format.formatter -> observable -> unit
val show_observable : observable -> string
val equal_observable : observable -> observable -> bool
val compare_observable : observable -> observable -> int
