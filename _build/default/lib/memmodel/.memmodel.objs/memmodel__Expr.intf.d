lib/memmodel/expr.pp.mli: Format Loc Reg
