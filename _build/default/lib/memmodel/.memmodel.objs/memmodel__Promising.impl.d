lib/memmodel/promising.pp.ml: Array Behavior Buffer Digest Expr Format Hashtbl Instr List Loc Marshal Printf Prog Reg String
