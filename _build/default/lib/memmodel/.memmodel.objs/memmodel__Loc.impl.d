lib/memmodel/loc.pp.ml: Format Map Ppx_deriving_runtime Set
