lib/memmodel/reg.pp.ml: Format Map Ppx_deriving_runtime String
