lib/memmodel/litmus_suite.pp.mli: Litmus
