lib/memmodel/instr.pp.mli: Expr Format Reg
