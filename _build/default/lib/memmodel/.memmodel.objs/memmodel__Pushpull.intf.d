lib/memmodel/pushpull.pp.mli: Behavior Format Instr Loc Prog
