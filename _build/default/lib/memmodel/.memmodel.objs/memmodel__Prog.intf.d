lib/memmodel/prog.pp.mli: Format Instr Loc Reg
