lib/memmodel/prog.pp.ml: Format Instr List Loc Ppx_deriving_runtime Reg
