lib/memmodel/instr.pp.ml: Expr List Ppx_deriving_runtime Reg
