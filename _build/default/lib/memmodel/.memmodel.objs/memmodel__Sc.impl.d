lib/memmodel/sc.pp.ml: Array Behavior Buffer Digest Expr Hashtbl Instr List Loc Marshal Printf Prog Reg
