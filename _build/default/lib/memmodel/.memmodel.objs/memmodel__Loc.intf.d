lib/memmodel/loc.pp.mli: Format Map Set
