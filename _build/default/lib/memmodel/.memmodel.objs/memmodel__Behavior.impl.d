lib/memmodel/behavior.pp.ml: Format List Ppx_deriving_runtime Prog Set
