lib/memmodel/behavior.pp.mli: Format Prog Set
