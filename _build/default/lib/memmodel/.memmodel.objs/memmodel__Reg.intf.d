lib/memmodel/reg.pp.mli: Format Map
