lib/memmodel/pushpull.pp.ml: Array Behavior Buffer Digest Expr Format Hashtbl Instr List Loc Marshal Printf Prog Reg
