lib/memmodel/paper_examples.pp.mli: Litmus Prog
