lib/memmodel/axiomatic.pp.ml: Array Behavior Expr Instr List Loc Option Prog Reg
