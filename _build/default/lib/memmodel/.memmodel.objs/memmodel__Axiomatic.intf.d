lib/memmodel/axiomatic.pp.mli: Behavior Prog
