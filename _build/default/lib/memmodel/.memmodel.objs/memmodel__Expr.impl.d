lib/memmodel/expr.pp.ml: Loc Ppx_deriving_runtime Reg Stdlib
