lib/memmodel/promising.pp.mli: Behavior Format Prog
