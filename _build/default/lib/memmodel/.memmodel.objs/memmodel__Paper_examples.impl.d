lib/memmodel/paper_examples.pp.ml: Expr Instr Litmus Loc Prog Promising Reg Stdlib
