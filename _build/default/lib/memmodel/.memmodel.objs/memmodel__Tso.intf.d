lib/memmodel/tso.pp.mli: Behavior Prog
