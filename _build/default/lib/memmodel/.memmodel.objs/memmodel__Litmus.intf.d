lib/memmodel/litmus.pp.mli: Behavior Format Loc Prog Promising
