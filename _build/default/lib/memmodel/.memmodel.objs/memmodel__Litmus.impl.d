lib/memmodel/litmus.pp.ml: Behavior Format Prog Promising Sc
