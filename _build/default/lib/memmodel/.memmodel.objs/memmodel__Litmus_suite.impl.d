lib/memmodel/litmus_suite.pp.ml: Expr Instr Litmus Loc Prog Promising Reg Stdlib
