lib/memmodel/sc.pp.mli: Behavior Prog
