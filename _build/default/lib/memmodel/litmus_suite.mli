(** The classical Armv8 litmus validation suite: S, 2+2W, WRC (multi-copy
    atomicity), ISA2, the control-dependency asymmetry (orders stores, not
    loads; CTRL+ISB orders loads), coherence shapes and release/acquire
    handover. Each test carries its expected SC/RM verdicts. *)

val s_plain : Litmus.t
val s_dmb : Litmus.t
val w22_plain : Litmus.t
val w22_dmb : Litmus.t
val wrc_plain : Litmus.t
val wrc_dmb : Litmus.t
val wrc_addr : Litmus.t
val isa2 : Litmus.t
val mp_ctrl : Litmus.t
val mp_ctrl_isb : Litmus.t
val lb_ctrl : Litmus.t
val cowr : Litmus.t
val corw1 : Litmus.t
val sb_one_dmb : Litmus.t
val rel_acq_handover : Litmus.t
val r_plain : Litmus.t
val r_dmb : Litmus.t
val corr_total : Litmus.t
val sb_rel_acq : Litmus.t

val all : Litmus.t list
