(** Value and boolean expressions of the kernel-code DSL.

    Expressions are evaluated against a thread-local register environment.
    For the relaxed-memory executors, each register additionally carries a
    {e view} (a timestamp upper bound on the messages its value derives
    from); expression evaluation propagates views so that data and address
    dependencies can be enforced exactly as the Armv8 model requires. *)

type vexp =
  | Const of int
  | Reg of Reg.t
  | Add of vexp * vexp
  | Sub of vexp * vexp
  | Mul of vexp * vexp
  | Div of vexp * vexp  (** traps (Panic) on division by zero *)
[@@deriving show, eq]

type cmp = Eq | Ne | Lt | Le | Gt | Ge [@@deriving show, eq]

type bexp =
  | Bool of bool
  | Cmp of cmp * vexp * vexp
  | And of bexp * bexp
  | Or of bexp * bexp
  | Not of bexp
[@@deriving show, eq]

(** Addresses: a base object plus a computed index. A register occurring in
    [offset] induces an address dependency. *)
type aexp = { abase : string; offset : vexp } [@@deriving show, eq]

exception Eval_panic of string

(* Convenience constructors. *)
let c n = Const n
let r x = Reg x
let ( + ) a b = Add (a, b)
let ( - ) a b = Sub (a, b)
let ( * ) a b = Mul (a, b)
let ( / ) a b = Div (a, b)
let ( = ) a b = Cmp (Eq, a, b)
let ( <> ) a b = Cmp (Ne, a, b)
let ( < ) a b = Cmp (Lt, a, b)
let ( <= ) a b = Cmp (Le, a, b)
let ( > ) a b = Cmp (Gt, a, b)
let ( >= ) a b = Cmp (Ge, a, b)
let ( && ) a b = And (a, b)
let ( || ) a b = Or (a, b)
let not b = Not b

let at ?(offset = Const 0) abase = { abase; offset }

(** [eval_v lookup e] evaluates [e], returning [(value, view)] where [view]
    is the join of the views of all registers read. [lookup] maps a register
    to its current [(value, view)] pair. *)
let rec eval_v (lookup : Reg.t -> int * int) (e : vexp) : int * int =
  match e with
  | Const n -> (n, 0)
  | Reg x -> lookup x
  | Add (a, b) -> bin lookup Stdlib.( + ) a b
  | Sub (a, b) -> bin lookup Stdlib.( - ) a b
  | Mul (a, b) -> bin lookup Stdlib.( * ) a b
  | Div (a, b) ->
      let vb, wb = eval_v lookup b in
      if Stdlib.( = ) vb 0 then raise (Eval_panic "division by zero")
      else
        let va, wa = eval_v lookup a in
        (Stdlib.( / ) va vb, Stdlib.max wa wb)

and bin lookup op a b =
  let va, wa = eval_v lookup a in
  let vb, wb = eval_v lookup b in
  (op va vb, Stdlib.max wa wb)

let eval_cmp op a b =
  match op with
  | Eq -> Stdlib.( = ) a b
  | Ne -> Stdlib.( <> ) a b
  | Lt -> Stdlib.( < ) a b
  | Le -> Stdlib.( <= ) a b
  | Gt -> Stdlib.( > ) a b
  | Ge -> Stdlib.( >= ) a b

(** [eval_b lookup b] evaluates a boolean expression to [(truth, view)]. *)
let rec eval_b (lookup : Reg.t -> int * int) (b : bexp) : bool * int =
  match b with
  | Bool v -> (v, 0)
  | Cmp (op, a, b) ->
      let va, wa = eval_v lookup a in
      let vb, wb = eval_v lookup b in
      (eval_cmp op va vb, Stdlib.max wa wb)
  | And (a, b) ->
      let va, wa = eval_b lookup a in
      let vb, wb = eval_b lookup b in
      (Stdlib.( && ) va vb, Stdlib.max wa wb)
  | Or (a, b) ->
      let va, wa = eval_b lookup a in
      let vb, wb = eval_b lookup b in
      (Stdlib.( || ) va vb, Stdlib.max wa wb)
  | Not a ->
      let va, wa = eval_b lookup a in
      (Stdlib.not va, wa)

(** [eval_addr lookup a] resolves an address expression to a concrete
    location and the address-dependency view. *)
let eval_addr (lookup : Reg.t -> int * int) (a : aexp) : Loc.t * int =
  let idx, view = eval_v lookup a.offset in
  (Loc.v ~index:idx a.abase, view)

(** Registers syntactically mentioned by an expression (for static
    dependency analysis in the condition checkers). *)
let rec regs_of_vexp = function
  | Const _ -> []
  | Reg x -> [ x ]
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) ->
      regs_of_vexp a @ regs_of_vexp b

let rec regs_of_bexp = function
  | Bool _ -> []
  | Cmp (_, a, b) -> regs_of_vexp a @ regs_of_vexp b
  | And (a, b) | Or (a, b) -> regs_of_bexp a @ regs_of_bexp b
  | Not a -> regs_of_bexp a
