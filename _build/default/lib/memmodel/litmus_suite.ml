(** The classical Armv8 litmus validation suite.

    Beyond the paper's §2 examples ({!Paper_examples}), this module carries
    the standard shapes used to validate Arm memory models (cf. Pulte et
    al.'s evaluation of Promising-ARM): message passing, store buffering,
    load buffering, the S and 2+2W coherence shapes, write-to-read
    causality (WRC — Armv8 is multi-copy atomic, so it is forbidden with
    either barriers or address dependencies), ISA2, and the
    control-dependency subtleties (control orders stores but not loads;
    CTRL+ISB orders loads).

    Every test states its expected verdicts under SC and under the
    Promising Arm executor; the suite is run wholesale by the tests and the
    bench harness. *)

open Expr

let x = at "x"
let y = at "y"
let z = at "z"
let r0 = Reg.v "r0"
let r1 = Reg.v "r1"
let r2 = Reg.v "r2"

let obs tid r = Prog.Obs_reg (tid, r)
let obs_x = Prog.Obs_loc (Loc.v "x")
let obs_y = Prog.Obs_loc (Loc.v "y")

let get o k = match o k with Some v -> v | None -> min_int
let ( == ) (a : int) (b : int) = Stdlib.( = ) a b
let ( &&& ) = Stdlib.( && )

let small =
  { Promising.default_config with loop_fuel = 4; max_promises = 1;
    cert_depth = 40 }

let small2 = { small with max_promises = 2 }

(* ------------------------------------------------------------------ *)
(* S: write-subsumption                                                *)
(* ------------------------------------------------------------------ *)

(* T1: x=2; [dmb]; y=1   T2: r0=y; x=r0(data)   exists: r0=1 /\ x=2 *)
let s_shape ~dmb ~name ~expect_rm =
  Litmus.make ~rm_config:small ~name
    ~description:"S: can T1's first write be coherence-last?"
    ~observables:[ obs 2 r0; obs_x ]
    ~exists:(fun o -> get o (obs 2 r0) == 1 &&& (get o obs_x == 2))
    ~expect_rm
    [ Prog.thread 1
        ([ Instr.store x (c 2) ]
        @ (if dmb then [ Instr.dmb ] else [])
        @ [ Instr.store y (c 1) ]);
      Prog.thread 2 [ Instr.load r0 y; Instr.store x (r r0) ] ]

let s_plain = s_shape ~dmb:false ~name:"s-plain" ~expect_rm:true
let s_dmb = s_shape ~dmb:true ~name:"s-dmb" ~expect_rm:false

(* ------------------------------------------------------------------ *)
(* 2+2W: double write-write reordering                                 *)
(* ------------------------------------------------------------------ *)

let w22_shape ~dmb ~name ~expect_rm =
  Litmus.make ~rm_config:small2 ~name
    ~description:"2+2W: both second writes coherence-first"
    ~observables:[ obs_x; obs_y ]
    ~exists:(fun o -> get o obs_x == 1 &&& (get o obs_y == 1))
    ~expect_rm
    [ Prog.thread 1
        ([ Instr.store x (c 1) ]
        @ (if dmb then [ Instr.dmb_st ] else [])
        @ [ Instr.store y (c 2) ]);
      Prog.thread 2
        ([ Instr.store y (c 1) ]
        @ (if dmb then [ Instr.dmb_st ] else [])
        @ [ Instr.store x (c 2) ]) ]

let w22_plain = w22_shape ~dmb:false ~name:"2+2w-plain" ~expect_rm:true
let w22_dmb = w22_shape ~dmb:true ~name:"2+2w-dmbst" ~expect_rm:false

(* ------------------------------------------------------------------ *)
(* WRC: write-to-read causality (multi-copy atomicity)                 *)
(* ------------------------------------------------------------------ *)

let wrc_shape ~sync ~name ~expect_rm =
  (* T1: x=1   T2: r0=x; <sync>; y=1   T3: r1=y; <sync>; r2=x
     exists: r0=1 /\ r1=1 /\ r2=0 *)
  let mid, tail =
    match sync with
    | `Dmb -> ([ Instr.dmb ], [ Instr.dmb ])
    | `None -> ([], [])
  in
  Litmus.make ~rm_config:small ~name
    ~description:"WRC: causality through a third observer"
    ~observables:[ obs 2 r0; obs 3 r1; obs 3 r2 ]
    ~exists:(fun o ->
      get o (obs 2 r0) == 1
      &&& (get o (obs 3 r1) == 1)
      &&& (get o (obs 3 r2) == 0))
    ~expect_rm
    [ Prog.thread 1 [ Instr.store x (c 1) ];
      Prog.thread 2 ([ Instr.load r0 x ] @ mid @ [ Instr.store y (c 1) ]);
      Prog.thread 3 ([ Instr.load r1 y ] @ tail @ [ Instr.load r2 x ]) ]

let wrc_dmb = wrc_shape ~sync:`Dmb ~name:"wrc-dmb" ~expect_rm:false

let wrc_plain = wrc_shape ~sync:`None ~name:"wrc-plain" ~expect_rm:true

let wrc_addr =
  (* multi-copy atomicity with address dependencies only: forbidden *)
  let table = at "table" in
  Litmus.make ~rm_config:small ~name:"wrc-addr"
    ~description:"WRC with address dependencies: forbidden (multi-copy \
                  atomic)"
    ~init:[ (Loc.v ~index:0 "data", 0); (Loc.v ~index:1 "data", 0) ]
    ~observables:[ obs 2 r0; obs 3 r1; obs 3 r2 ]
    ~exists:(fun o ->
      get o (obs 2 r0) == 1
      &&& (get o (obs 3 r1) == 1)
      &&& (get o (obs 3 r2) == 0))
    ~expect_rm:false
    [ Prog.thread 1 [ Instr.store (at ~offset:(c 1) "data") (c 1) ];
      Prog.thread 2
        [ Instr.load r0 (at ~offset:(c 1) "data");
          (* address-dependent store: y := 1 at an index computed from r0 *)
          Instr.store (at ~offset:Expr.(r r0 - r r0) "table") (r r0) ];
      Prog.thread 3
        [ Instr.load r1 table;
          Instr.load r2 (at ~offset:Expr.(r r1) "data") ] ]

(* ------------------------------------------------------------------ *)
(* ISA2: causality chain through two synchronizing threads             *)
(* ------------------------------------------------------------------ *)

let isa2 =
  (* T1: x=1; dmb; y=1   T2: r0=y; dmb; z=1   T3: r1=z; dmb; r2=x
     exists r0=1 /\ r1=1 /\ r2=0 : forbidden *)
  Litmus.make ~rm_config:small ~name:"isa2-dmb"
    ~description:"ISA2: transitive causality with DMBs: forbidden"
    ~observables:[ obs 2 r0; obs 3 r1; obs 3 r2 ]
    ~exists:(fun o ->
      get o (obs 2 r0) == 1
      &&& (get o (obs 3 r1) == 1)
      &&& (get o (obs 3 r2) == 0))
    ~expect_rm:false
    [ Prog.thread 1 [ Instr.store x (c 1); Instr.dmb; Instr.store y (c 1) ];
      Prog.thread 2 [ Instr.load r0 y; Instr.dmb; Instr.store z (c 1) ];
      Prog.thread 3 [ Instr.load r1 z; Instr.dmb; Instr.load r2 x ] ]

(* ------------------------------------------------------------------ *)
(* Control dependencies                                                *)
(* ------------------------------------------------------------------ *)

let mp_ctrl =
  (* control dependency does NOT order loads: the stale read survives *)
  Litmus.make ~rm_config:small ~name:"mp-dmb-ctrl"
    ~description:"MP with reader-side control dep only: load may still \
                  speculate (allowed)"
    ~observables:[ obs 2 r0; obs 2 r1 ]
    ~exists:(fun o -> get o (obs 2 r0) == 1 &&& (get o (obs 2 r1) == 0))
    ~expect_rm:true
    [ Prog.thread 1 [ Instr.store x (c 1); Instr.dmb; Instr.store y (c 1) ];
      Prog.thread 2
        [ Instr.load r0 y;
          Instr.if_ Expr.(r r0 = c 1) [ Instr.load r1 x ]
            [ Instr.move r1 (c (-1)) ] ] ]

let mp_ctrl_isb =
  (* CTRL+ISB orders the dependent load: forbidden *)
  Litmus.make ~rm_config:small ~name:"mp-dmb-ctrl-isb"
    ~description:"MP with reader-side control dep + ISB: forbidden"
    ~observables:[ obs 2 r0; obs 2 r1 ]
    ~exists:(fun o -> get o (obs 2 r0) == 1 &&& (get o (obs 2 r1) == 0))
    ~expect_rm:false
    [ Prog.thread 1 [ Instr.store x (c 1); Instr.dmb; Instr.store y (c 1) ];
      Prog.thread 2
        [ Instr.load r0 y;
          Instr.if_ Expr.(r r0 = c 1)
            [ Instr.isb; Instr.load r1 x ]
            [ Instr.move r1 (c (-1)) ] ] ]

let lb_ctrl =
  (* control dependency DOES order stores: LB+ctrls forbidden *)
  Litmus.make ~rm_config:small ~name:"lb-ctrl"
    ~description:"LB with control deps to both stores: forbidden"
    ~observables:[ obs 1 r0; obs 2 r1 ]
    ~exists:(fun o -> get o (obs 1 r0) == 1 &&& (get o (obs 2 r1) == 1))
    ~expect_rm:false
    [ Prog.thread 1
        [ Instr.load r0 x;
          Instr.if_ Expr.(r r0 = c 1) [ Instr.store y (c 1) ]
            [ Instr.store y (c 1) ] ];
      Prog.thread 2
        [ Instr.load r1 y;
          Instr.if_ Expr.(r r1 = c 1) [ Instr.store x (c 1) ]
            [ Instr.store x (c 1) ] ] ]

(* ------------------------------------------------------------------ *)
(* Coherence shapes                                                    *)
(* ------------------------------------------------------------------ *)

let cowr =
  (* a read after a program-order-earlier write to the same location
     never sees an older value *)
  Litmus.make ~rm_config:small ~name:"cowr"
    ~description:"CoWR: read after own write sees it or newer"
    ~observables:[ obs 1 r0 ]
    ~exists:(fun o -> get o (obs 1 r0) == 0)
    ~expect_rm:false
    [ Prog.thread 1 [ Instr.store x (c 1); Instr.load r0 x ];
      Prog.thread 2 [ Instr.store x (c 2) ] ]

let corw1 =
  (* a thread cannot read its own future write *)
  Litmus.make ~rm_config:small ~name:"corw1"
    ~description:"CoRW1: no thread reads its own future write"
    ~observables:[ obs 1 r0 ]
    ~exists:(fun o -> get o (obs 1 r0) == 1)
    ~expect_rm:false
    [ Prog.thread 1 [ Instr.load r0 x; Instr.store x (c 1) ];
      Prog.thread 2 [ Instr.store x (c 2) ] ]

let sb_one_dmb =
  (* SB with a barrier on only one side: still allowed *)
  Litmus.make ~rm_config:small ~name:"sb-one-dmb"
    ~description:"SB with one-sided DMB: relaxed outcome survives"
    ~observables:[ obs 1 r0; obs 2 r1 ]
    ~exists:(fun o -> get o (obs 1 r0) == 0 &&& (get o (obs 2 r1) == 0))
    ~expect_rm:true
    [ Prog.thread 1 [ Instr.store x (c 1); Instr.dmb; Instr.load r0 y ];
      Prog.thread 2 [ Instr.store y (c 1); Instr.load r1 x ] ]

let rel_acq_handover =
  (* release-writer / acquire-reader pair transfers two fields *)
  Litmus.make ~rm_config:small ~name:"rel-acq-two-fields"
    ~description:"release/acquire protects a multi-field message"
    ~observables:[ obs 2 r0; obs 2 r1; obs 2 r2 ]
    ~exists:(fun o ->
      get o (obs 2 r0) == 1
      &&& Stdlib.not
            (get o (obs 2 r1) == 5 &&& (get o (obs 2 r2) == 6)))
    ~expect_rm:false
    [ Prog.thread 1
        [ Instr.store x (c 5); Instr.store z (c 6);
          Instr.store_rel y (c 1) ];
      Prog.thread 2
        [ Instr.load_acq r0 y;
          Instr.if_ Expr.(r r0 = c 1)
            [ Instr.load r1 x; Instr.load r2 z ]
            [ Instr.move r1 (c 5); Instr.move r2 (c 6) ] ] ]

(* ------------------------------------------------------------------ *)
(* R, coherence totality, RCsc                                         *)
(* ------------------------------------------------------------------ *)

let r_shape ~dmb ~name ~expect_rm =
  (* T1: x=1; [dmb]; y=1   T2: y=2; [dmb]; r0=x
     exists: y=2 /\ r0=0 *)
  Litmus.make ~rm_config:small2 ~name
    ~description:"R: write racing a message-passing pair"
    ~observables:[ obs_y; obs 2 r0 ]
    ~exists:(fun o -> get o obs_y == 2 &&& (get o (obs 2 r0) == 0))
    ~expect_rm
    [ Prog.thread 1
        ([ Instr.store x (c 1) ]
        @ (if dmb then [ Instr.dmb ] else [])
        @ [ Instr.store y (c 1) ]);
      Prog.thread 2
        ([ Instr.store y (c 2) ]
        @ (if dmb then [ Instr.dmb ] else [])
        @ [ Instr.load r0 x ]) ]

let r_plain = r_shape ~dmb:false ~name:"r-plain" ~expect_rm:true
let r_dmb = r_shape ~dmb:true ~name:"r-dmb" ~expect_rm:false

let corr_total =
  (* two readers must agree on the coherence order of two writes *)
  let a = Reg.v "a" and b = Reg.v "b" and d = Reg.v "d" and e = Reg.v "e" in
  Litmus.make ~rm_config:small ~name:"corr-total"
    ~description:"coherence is a single total order per location"
    ~observables:[ obs 3 a; obs 3 b; obs 4 d; obs 4 e ]
    ~exists:(fun o ->
      get o (obs 3 a) == 1
      &&& (get o (obs 3 b) == 2)
      &&& (get o (obs 4 d) == 2)
      &&& (get o (obs 4 e) == 1))
    ~expect_rm:false
    [ Prog.thread 1 [ Instr.store x (c 1) ];
      Prog.thread 2 [ Instr.store x (c 2) ];
      Prog.thread 3 [ Instr.load a x; Instr.load b x ];
      Prog.thread 4 [ Instr.load d x; Instr.load e x ] ]

let sb_rel_acq =
  (* Armv8 release/acquire are RCsc: stlr;ldar is ordered, so SB with the
     SC-atomics mapping is forbidden *)
  Litmus.make ~rm_config:small ~name:"sb-rel-acq"
    ~description:"SB with stlr/ldar: forbidden (RCsc)"
    ~observables:[ obs 1 r0; obs 2 r1 ]
    ~exists:(fun o -> get o (obs 1 r0) == 0 &&& (get o (obs 2 r1) == 0))
    ~expect_rm:false
    [ Prog.thread 1
        [ Instr.store_rel x (c 1); Instr.load_acq r0 y ];
      Prog.thread 2
        [ Instr.store_rel y (c 1); Instr.load_acq r1 x ] ]

let all =
  [ s_plain; s_dmb; w22_plain; w22_dmb; wrc_plain; wrc_dmb; wrc_addr; isa2;
    mp_ctrl; mp_ctrl_isb; lb_ctrl; cowr; corw1; sb_one_dmb;
    rel_acq_handover; r_plain; r_dmb; corr_total; sb_rel_acq ]
