(** The paper's §2 examples as executable litmus tests, plus classic
    validation litmus. Each test carries the expected verdicts (exists
    clause reachable under SC / under Promising Arm).

    Page-table examples 4–6 involve MMU hardware walks and live on the
    machine substrate ({!Machine.Mmu_walker}, {!Machine.Tlb_sim}). *)

val max_vm : int

val gen_vmid_thread : barriers:bool -> int -> Prog.thread
(** The ticket lock + critical section of Fig. 1 / Example 2; [barriers]
    selects the plain (Arm-broken) or Linux Fig. 7 variant. *)

val example1 : Litmus.t  (** out-of-order write (load buffering) *)

val example2_buggy : Litmus.t  (** duplicate VMIDs under the plain lock *)

val example2_fixed : Litmus.t  (** the Fig. 7 Linux ticket lock *)

val example3_buggy : Litmus.t  (** stale vCPU context restore *)

val example3_fixed : Litmus.t  (** release/acquire vCPU protocol *)

val example7 : Litmus.t  (** user RM behavior poisoning the kernel *)

(** Classic validation shapes. *)

val mp_plain : Litmus.t
val mp_dmb : Litmus.t
val mp_rel_acq : Litmus.t
val sb : Litmus.t
val sb_dmb : Litmus.t
val lb_data : Litmus.t
val corr : Litmus.t
val addr_dep : Litmus.t

val all_paper : Litmus.t list
val all_classic : Litmus.t list
val all : Litmus.t list
