(** The concurrent-kernel instruction DSL.

    Kernel primitives under verification (ticket locks, [gen_vmid], vCPU
    context switching, page-table updates) are written in this DSL so that
    the same program can be executed under the SC model ({!Sc}), the
    Promising Arm relaxed model ({!Promising}) and the push/pull
    ownership-annotated model ({!Pushpull}).

    Memory-access ordering annotations mirror Armv8: plain accesses,
    load-acquire ([LDAR]), store-release ([STLR]), and the three DMB barrier
    flavours. [Pull]/[Push] are logical (ghost) ownership annotations in the
    style of CertiKOS's push/pull semantics; they generate no hardware
    events but are checked by the DRF checker. [Tlbi] and page-table writes
    are ordinary stores to page-table locations plus an explicit TLB
    maintenance event consumed by the machine-level checkers. *)

type order =
  | Plain
  | Acquire  (** load-acquire; on RMWs, acquire semantics on the load part *)
  | Release  (** store-release; on RMWs, release semantics on the store part *)
  | Acq_rel  (** RMW with both acquire and release semantics *)
[@@deriving show, eq]

type barrier =
  | Dmb_full  (** DMB ISH: orders all prior accesses with all later ones *)
  | Dmb_ld  (** DMB ISHLD: orders prior loads with later loads and stores *)
  | Dmb_st  (** DMB ISHST: orders prior stores with later stores *)
  | Isb  (** instruction barrier: orders control deps with later loads *)
[@@deriving show, eq]

type t =
  | Load of Reg.t * Expr.aexp * order
  | Store of Expr.aexp * Expr.vexp * order
      (** [Store (a, e, ord)] — a store; page-table stores use an address
          base registered as a page-table object. *)
  | Faa of Reg.t * Expr.aexp * Expr.vexp * order
      (** atomic fetch-and-add: [r := \[a\]; \[a\] := r + e] in one step *)
  | Xchg of Reg.t * Expr.aexp * Expr.vexp * order
      (** atomic exchange: [r := \[a\]; \[a\] := e] in one step *)
  | Cas of Reg.t * Expr.aexp * Expr.vexp * Expr.vexp * order
      (** compare-and-swap: [r := \[a\]; if r = expected then \[a\] :=
          desired]; success is observed as [r = expected] *)
  | Barrier of barrier
  | Move of Reg.t * Expr.vexp  (** register-only computation *)
  | If of Expr.bexp * t list * t list
  | While of Expr.bexp * t list  (** bounded by executor fuel *)
  | Pull of string list  (** acquire logical ownership of the given bases *)
  | Push of string list  (** release logical ownership of the given bases *)
  | Tlbi of Expr.aexp option
      (** TLB invalidation; [None] invalidates everything *)
  | Panic  (** kernel panic; reaching it is itself an observable outcome *)
  | Nop
[@@deriving show, eq]

(* Short constructors, so programs read close to the paper's pseudocode. *)
let load ?(order = Plain) r a = Load (r, a, order)
let load_acq r a = Load (r, a, Acquire)
let store ?(order = Plain) a e = Store (a, e, order)
let store_rel a e = Store (a, e, Release)
let faa ?(order = Plain) r a e = Faa (r, a, e, order)
let xchg ?(order = Plain) r a e = Xchg (r, a, e, order)
let cas ?(order = Plain) r a ~expected ~desired = Cas (r, a, expected, desired, order)
let fetch_and_inc ?(order = Plain) r a = Faa (r, a, Expr.Const 1, order)
let dmb = Barrier Dmb_full
let dmb_ld = Barrier Dmb_ld
let dmb_st = Barrier Dmb_st
let isb = Barrier Isb
let move r e = Move (r, e)
let if_ c a b = If (c, a, b)
let while_ c body = While (c, body)
let pull bases = Pull bases
let push bases = Push bases
let tlbi_all = Tlbi None
let tlbi a = Tlbi (Some a)

(** Structural size (used for proof-effort accounting and sanity checks). *)
let rec size = function
  | If (_, a, b) -> 1 + size_list a + size_list b
  | While (_, b) -> 1 + size_list b
  | _ -> 1

and size_list l = List.fold_left (fun acc i -> acc + size i) 0 l

(** All base names a program text can touch, for footprint analysis. *)
let rec bases = function
  | Load (_, a, _) -> [ a.Expr.abase ]
  | Store (a, _, _) | Faa (_, a, _, _) | Xchg (_, a, _, _)
  | Cas (_, a, _, _, _) ->
      [ a.Expr.abase ]
  | If (_, a, b) -> bases_list a @ bases_list b
  | While (_, b) -> bases_list b
  | Pull bs | Push bs -> bs
  | Tlbi (Some a) -> [ a.Expr.abase ]
  | Tlbi None | Barrier _ | Move _ | Panic | Nop -> []

and bases_list l = List.concat_map bases l
