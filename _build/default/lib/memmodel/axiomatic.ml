(** An executable Armv8 axiomatic memory model, for cross-validating the
    Promising executor.

    The paper leans on the theorem that Promising Arm is equivalent to the
    Armv8 axiomatic specification (Pulte et al.); this module makes that
    relationship {e testable} in this reproduction: for straight-line
    programs we enumerate every candidate execution — a reads-from choice
    for each load and a per-location coherence order over the stores — and
    keep the candidates satisfying the Armv8 axioms:

    {ul
    {- {b internal} (sc-per-location): acyclic(po-loc ∪ rf ∪ co ∪ fr);}
    {- {b external}: acyclic(ob), with
       ob = rfe ∪ coe ∪ fre (observed-by)
          ∪ data/addr dependency order (dob)
          ∪ barrier order (bob):
            po;[dmb.full];po, [R];po;[dmb.ld];po, [W];po;[dmb.st];po;[W],
            [A];po (acquire), po;[L] (release), [L];po;[A] (RCsc);}
    {- {b atomicity}: an RMW's read and write are adjacent in co.}}

    The fragment covered is what a candidate-execution enumeration can
    afford: straight-line code (no branches or loops), loads, stores,
    RMWs, and barriers; data dependencies are tracked through registers.
    On this fragment {!equivalent} checks outcome-set equality against
    {!Promising} — the property tests in [test_axiomatic] run it on
    thousands of random programs. *)

(* ------------------------------------------------------------------ *)
(* Events                                                              *)
(* ------------------------------------------------------------------ *)

type kind =
  | E_read of Instr.order
  | E_write of Instr.order
  | E_rmw of Instr.order  (** both a read and a write *)
  | E_fence of Instr.barrier

type event = {
  id : int;
  tid : int;
  po : int;  (** program-order index within the thread *)
  kind : kind;
  loc : Loc.t option;  (** None for fences *)
  dst : Reg.t option;  (** register written by a load/RMW *)
  src_regs : Reg.t list;  (** registers the data/address depend on *)
  wval : Expr.vexp option;  (** store data (evaluated per-candidate) *)
  rmw_delta : Expr.vexp option;  (** FAA delta *)
}

exception Unsupported of string

(** Compile a straight-line thread into events. Registers are
    single-assignment here in practice (the generators guarantee it);
    [src_regs] gives the syntactic dependency edges. *)
let events_of_thread tid (code : Instr.t list) : event list =
  let next = ref 0 in
  let ev kind loc dst src_regs wval rmw_delta =
    let id = !next in
    incr next;
    { id; tid; po = id; kind; loc; dst; src_regs; wval; rmw_delta }
  in
  List.filter_map
    (fun (i : Instr.t) ->
      match i with
      | Instr.Load (r, a, ord) ->
          if a.Expr.offset <> Expr.Const 0 && Expr.regs_of_vexp a.Expr.offset <> [] then
            raise (Unsupported "computed addresses");
          let loc, _ = Expr.eval_addr (fun _ -> (0, 0)) a in
          Some (ev (E_read ord) (Some loc) (Some r) [] None None)
      | Instr.Store (a, e, ord) ->
          let loc, _ = Expr.eval_addr (fun _ -> (0, 0)) a in
          Some
            (ev (E_write ord) (Some loc) None (Expr.regs_of_vexp e) (Some e)
               None)
      | Instr.Faa (r, a, e, ord) ->
          let loc, _ = Expr.eval_addr (fun _ -> (0, 0)) a in
          Some
            (ev (E_rmw ord) (Some loc) (Some r) (Expr.regs_of_vexp e) None
               (Some e))
      | Instr.Barrier b -> Some (ev (E_fence b) None None [] None None)
      | Instr.Nop | Instr.Pull _ | Instr.Push _ | Instr.Tlbi _ -> None
      | Instr.Move _ | Instr.If _ | Instr.While _ | Instr.Panic
      | Instr.Xchg _ | Instr.Cas _ ->
          raise (Unsupported "control flow / move / xchg / cas"))
    code

(* ------------------------------------------------------------------ *)
(* Candidate executions                                                *)
(* ------------------------------------------------------------------ *)

type exec = {
  events : event array;
  rf : (int * int) list;
      (** keyed by read event id: (read id, write id | -1 for init) *)
  co : (Loc.t * int list) list;  (** per location: write ids, co order *)
}

let is_read e = match e.kind with E_read _ | E_rmw _ -> true | _ -> false
let is_write e = match e.kind with E_write _ | E_rmw _ -> true | _ -> false

let is_acquire e =
  match e.kind with
  | E_read (Instr.Acquire | Instr.Acq_rel) | E_rmw (Instr.Acquire | Instr.Acq_rel)
    ->
      true
  | _ -> false

let is_release e =
  match e.kind with
  | E_write (Instr.Release | Instr.Acq_rel) | E_rmw (Instr.Release | Instr.Acq_rel)
    ->
      true
  | _ -> false

(* all permutations of a list (co enumeration; lists are tiny) *)
let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          List.map (fun p -> x :: p)
            (permutations (List.filter (fun y -> y <> x) l)))
        l

(* cartesian product *)
let rec product = function
  | [] -> [ [] ]
  | choices :: rest ->
      let tails = product rest in
      List.concat_map (fun c -> List.map (fun t -> c :: t) tails) choices

(** Value of read [r] under candidate [x], given resolved write values. *)
let rf_write x r = List.assoc r.id x.rf

(* ------------------------------------------------------------------ *)
(* Axiom checking                                                      *)
(* ------------------------------------------------------------------ *)

(* A tiny DAG cycle check over int nodes. *)
let acyclic (n : int) (edges : (int * int) list) : bool =
  let adj = Array.make n [] in
  List.iter (fun (a, b) -> if a >= 0 && b >= 0 then adj.(a) <- b :: adj.(a)) edges;
  let color = Array.make n 0 in
  let rec dfs v =
    if color.(v) = 1 then false
    else if color.(v) = 2 then true
    else begin
      color.(v) <- 1;
      let ok = List.for_all dfs adj.(v) in
      color.(v) <- 2;
      ok
    end
  in
  let ok = ref true in
  for v = 0 to n - 1 do
    if color.(v) = 0 && not (dfs v) then ok := false
  done;
  !ok

let co_pos x loc w =
  match List.assoc_opt loc x.co with
  | None -> -1
  | Some order -> (
      match List.find_index (fun i -> i = w) order with
      | Some i -> i
      | None -> -1)

(** fr: read r -> writes co-after the write r reads from. *)
let fr_edges x =
  Array.to_list x.events
  |> List.concat_map (fun r ->
         if not (is_read r) then []
         else
           match r.loc with
           | None -> []
           | Some loc ->
               let w = rf_write x r in
               let pos = if w = -1 then -1 else co_pos x loc w in
               (match List.assoc_opt loc x.co with
               | None -> []
               | Some order ->
                   List.filteri (fun i _ -> i > pos) order
                   (* an RMW is not fr-before its own write *)
                   |> List.filter (fun w' -> w' <> r.id)
                   |> List.map (fun w' -> (r.id, w'))))

let co_edges x =
  List.concat_map
    (fun (_, order) ->
      let rec pairs = function
        | a :: (b :: _ as rest) -> (a, b) :: pairs rest
        | _ -> []
      in
      pairs order)
    x.co

let rf_edges x =
  List.filter_map (fun (r, w) -> if w = -1 then None else Some (w, r)) x.rf

let same_thread x a b = x.events.(a).tid = x.events.(b).tid

(** internal: acyclic(po-loc ∪ rf ∪ co ∪ fr) *)
let internal_ok x =
  let n = Array.length x.events in
  let po_loc =
    List.concat_map
      (fun a ->
        List.filter_map
          (fun b ->
            if
              a.tid = b.tid && a.po < b.po && a.loc <> None && a.loc = b.loc
            then Some (a.id, b.id)
            else None)
          (Array.to_list x.events))
      (Array.to_list x.events)
  in
  acyclic n (po_loc @ rf_edges x @ co_edges x @ fr_edges x)

(** atomicity: an RMW reads the co-immediate predecessor of its write. *)
let atomicity_ok x =
  Array.for_all
    (fun e ->
      match e.kind with
      | E_rmw _ -> (
          match e.loc with
          | None -> true
          | Some loc ->
              let w = rf_write x e in
              let my_pos = co_pos x loc e.id in
              let read_pos = if w = -1 then -1 else co_pos x loc w in
              my_pos = read_pos + 1)
      | _ -> true)
    x.events

(** external: acyclic(ob). *)
let external_ok x =
  let n = Array.length x.events in
  let evs = Array.to_list x.events in
  let po_pairs =
    List.concat_map
      (fun a ->
        List.filter_map
          (fun b ->
            if a.tid = b.tid && a.po < b.po then Some (a, b) else None)
          evs)
      evs
  in
  (* obs: external communication edges *)
  let rfe = List.filter (fun (w, r) -> not (same_thread x w r)) (rf_edges x) in
  let coe = List.filter (fun (a, b) -> not (same_thread x a b)) (co_edges x) in
  let fre = List.filter (fun (a, b) -> not (same_thread x a b)) (fr_edges x) in
  (* dob: data dependencies through registers (read dst feeding a store) *)
  let dob =
    List.concat_map
      (fun (a, b) ->
        match a.dst with
        | Some r when List.mem r b.src_regs -> [ (a.id, b.id) ]
        | _ -> [])
      po_pairs
  in
  (* bob *)
  let fences_between a b kind_pred =
    List.exists
      (fun f ->
        f.tid = a.tid && a.po < f.po && f.po < b.po
        && match f.kind with E_fence k -> kind_pred k | _ -> false)
      evs
  in
  let bob =
    List.concat_map
      (fun (a, b) ->
        let edges = ref [] in
        let add () = edges := (a.id, b.id) :: !edges in
        (* po;[dmb full];po *)
        if fences_between a b (fun k -> k = Instr.Dmb_full) then add ();
        (* [R];po;[dmb ld];po *)
        if is_read a && fences_between a b (fun k -> k = Instr.Dmb_ld) then
          add ();
        (* [W];po;[dmb st];po;[W] *)
        if
          is_write a && is_write b
          && fences_between a b (fun k -> k = Instr.Dmb_st)
        then add ();
        (* [A];po *)
        if is_acquire a then add ();
        (* po;[L] *)
        if is_release b then add ();
        (* [L];po;[A] (RCsc) *)
        if is_release a && is_acquire b then add ();
        !edges)
      po_pairs
  in
  acyclic n (rfe @ coe @ fre @ dob @ bob)

let valid x = internal_ok x && atomicity_ok x && external_ok x

(* ------------------------------------------------------------------ *)
(* Enumeration and outcomes                                            *)
(* ------------------------------------------------------------------ *)

(** Enumerate all valid candidate executions of [prog] and return the
    behavior set, in the same observable terms as {!Sc} / {!Promising}. *)
let run (prog : Prog.t) : Behavior.t =
  let events =
    List.concat_map
      (fun th -> events_of_thread th.Prog.tid th.Prog.code)
      prog.Prog.threads
  in
  (* renumber ids globally *)
  let events =
    List.mapi (fun i e -> { e with id = i }) events |> Array.of_list
  in
  let evs = Array.to_list events in
  let locs =
    List.sort_uniq compare (List.filter_map (fun e -> e.loc) evs)
  in
  let writes_on loc =
    List.filter (fun e -> is_write e && e.loc = Some loc) evs
  in
  let reads = List.filter is_read evs in
  (* candidate components *)
  let co_choices =
    List.map
      (fun loc ->
        List.map
          (fun perm -> (loc, List.map (fun e -> e.id) perm))
          (permutations (writes_on loc)))
      locs
  in
  let rf_choices =
    List.map
      (fun r ->
        let loc = Option.get r.loc in
        List.map (fun w -> (w.id, r.id)) (writes_on loc)
        @ [ (-1, r.id) ] (* the initial write *))
      reads
  in
  let results = ref Behavior.empty in
  List.iter
    (fun co ->
      List.iter
        (fun rf ->
          let x = { events; rf = List.map (fun (w, r) -> (r, w)) rf; co } in
          (* x.rf keyed by read id *)
          (* resolve values: iterate until fixed (chains through RMWs) *)
          let value = Array.make (Array.length events) 0 in
          (* for loads and RMWs: the value READ (an RMW's [value] is what
             it wrote; its destination register gets [rvalue]) *)
          let rvalue = Array.make (Array.length events) 0 in
          let resolved = Array.make (Array.length events) false in
          let init_of loc = Prog.init_value prog loc in
          let reg_env tid =
            (* registers written by resolved reads of that thread *)
            fun r ->
              match
                List.find_opt
                  (fun e ->
                    e.tid = tid && e.dst = Some r
                    && resolved.(e.id))
                  evs
              with
              | Some e -> (rvalue.(e.id), 0)
              | None -> (0, 0)
          in
          let progress = ref true in
          let iter_guard = ref 0 in
          while !progress && !iter_guard < 64 do
            progress := false;
            incr iter_guard;
            List.iter
              (fun e ->
                if not resolved.(e.id) then
                  match e.kind with
                  | E_write _ ->
                      (* store value from data expression *)
                      let v, _ =
                        Expr.eval_v (reg_env e.tid) (Option.get e.wval)
                      in
                      value.(e.id) <- v;
                      (* only final once its deps are resolved; deps are
                         reads of the same thread *)
                      let deps_ok =
                        List.for_all
                          (fun r ->
                            match
                              List.find_opt
                                (fun e' ->
                                  e'.tid = e.tid && e'.dst = Some r)
                                evs
                            with
                            | Some e' -> resolved.(e'.id)
                            | None -> true)
                          e.src_regs
                      in
                      if deps_ok then begin
                        resolved.(e.id) <- true;
                        progress := true
                      end
                  | E_read _ -> (
                      let w = List.assoc e.id x.rf in
                      if w = -1 then begin
                        rvalue.(e.id) <- init_of (Option.get e.loc);
                        resolved.(e.id) <- true;
                        progress := true
                      end
                      else if resolved.(w) then begin
                        rvalue.(e.id) <- value.(w);
                        resolved.(e.id) <- true;
                        progress := true
                      end)
                  | E_rmw _ -> (
                      (* reads like a read; writes old + delta *)
                      let w = List.assoc e.id x.rf in
                      let old_ok, old_v =
                        if w = -1 then (true, init_of (Option.get e.loc))
                        else (resolved.(w), value.(w))
                      in
                      if old_ok then begin
                        let delta, _ =
                          Expr.eval_v (reg_env e.tid)
                            (Option.get e.rmw_delta)
                        in
                        rvalue.(e.id) <- old_v;
                        value.(e.id) <- old_v + delta;
                        resolved.(e.id) <- true;
                        progress := true
                      end)
                  | E_fence _ ->
                      resolved.(e.id) <- true;
                      progress := true)
              evs
          done;
          if Array.for_all (fun b -> b) resolved && valid x then begin
            (* observables *)
            let read_value e = rvalue.(e.id) in
            let obs_val = function
              | Prog.Obs_reg (tid, r) -> (
                  (* last event of the thread writing r *)
                  match
                    List.rev
                      (List.filter
                         (fun e -> e.tid = tid && e.dst = Some r)
                         evs)
                  with
                  | e :: _ -> read_value e
                  | [] -> 0)
              | Prog.Obs_loc loc -> (
                  match List.assoc_opt loc x.co with
                  | Some (_ :: _ as order) ->
                      value.(List.nth order (List.length order - 1))
                  | _ -> init_of loc)
            in
            results :=
              Behavior.add
                (Behavior.outcome
                   (List.map (fun o -> (o, obs_val o)) prog.Prog.observables))
                !results
          end)
        (product rf_choices))
    (product co_choices);
  !results
