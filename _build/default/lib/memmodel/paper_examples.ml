(** The paper's §2 examples as executable litmus tests, plus classic
    validation litmus (MP, SB, LB, CoRR) exercising the Promising model.

    Page-table examples 4–6 involve MMU hardware walks and live in the
    machine substrate ({!Machine.Mmu_walker} and the Transactional /
    TLB-invalidation checkers); the examples here are the pure
    memory-access ones (1, 2, 3, 7) in both their buggy form (exists-clause
    reachable on RM only) and their repaired, wDRF-conforming form
    (unreachable on both models). *)

open Expr

let x = at "x"
let y = at "y"
let z = at "z"

let r0 = Reg.v "r0"
let r1 = Reg.v "r1"

let obs_reg tid r = Prog.Obs_reg (tid, r)

(* Exploration budgets: [small] suffices for straight-line tests (one
   promise enables store-forwarding); [lock] keeps spin-loop tests cheap —
   the lock bugs manifest through stale reads, without promises. *)
let small = { Promising.default_config with loop_fuel = 4; max_promises = 1; cert_depth = 40 }
let lock = { Promising.default_config with loop_fuel = 3; max_promises = 0; cert_depth = 40 }
let lock1 = { Promising.default_config with loop_fuel = 3; max_promises = 1; cert_depth = 40 }

let get o obs = match o obs with Some v -> v | None -> min_int

(* [open Expr] shadows [=] and [&&] with expression builders; these integer
   forms are for the exists-clauses. *)
let ( == ) (a : int) (b : int) = Stdlib.( = ) a b
let ( &&& ) = Stdlib.( && )

(* ------------------------------------------------------------------ *)
(* Example 1: out-of-order write (load buffering)                      *)
(* ------------------------------------------------------------------ *)

let example1 =
  Litmus.make ~rm_config:small ~name:"example1-ooo-write"
    ~description:
      "Example 1: store reordered before an independent load; r0=r1=1 only \
       on RM"
    ~observables:[ obs_reg 1 r0; obs_reg 2 r1 ]
    ~exists:(fun o ->
      get o (obs_reg 1 r0) == 1 &&& (get o (obs_reg 2 r1) == 1))
    [ Prog.thread 1 [ Instr.load r0 x; Instr.store y (c 1) ];
      Prog.thread 2 [ Instr.load r1 y; Instr.store x (r r1) ] ]

(* ------------------------------------------------------------------ *)
(* Example 2: gen_vmid under a ticket lock                             *)
(* ------------------------------------------------------------------ *)

let max_vm = 4

(** The ticket lock + critical section of Fig. 1/Example 2. [barriers]
    selects the plain (buggy on Arm) or Linux acquire/release (correct,
    Fig. 7) variant. *)
let gen_vmid_thread ~barriers tid =
  let my = Reg.v "my_ticket" in
  let now_r = Reg.v "now_r" in
  let vmid = Reg.v "vmid" in
  let ticket = at "ticket" in
  let now = at "now" in
  let next_vmid = at "next_vmid" in
  let load_ord = if barriers then Instr.Acquire else Instr.Plain in
  let code =
    [ Instr.faa ~order:load_ord my ticket (c 1);
      Instr.load ~order:load_ord now_r now;
      Instr.while_ (r now_r <> r my) [ Instr.load ~order:load_ord now_r now ];
      Instr.pull [ "next_vmid" ];
      (* critical section: lines 11-14 of Fig. 1 *)
      Instr.load vmid next_vmid;
      Instr.if_ (r vmid < c max_vm)
        [ Instr.store next_vmid (r vmid + c 1) ]
        [ Instr.Panic ];
      Instr.push [ "next_vmid" ];
      (if barriers then Instr.store_rel now (r my + c 1)
       else Instr.store now (r my + c 1)) ]
  in
  Prog.thread tid code

let vmid_obs tid = Prog.Obs_reg (tid, Reg.v "vmid")

let example2_buggy =
  Litmus.make ~rm_config:lock ~name:"example2-vmid-nobarrier"
    ~description:
      "Example 2: ticket lock without barriers; two VMs can get the same \
       VMID on RM"
    ~observables:[ vmid_obs 1; vmid_obs 2 ]
    ~exists:(fun o -> get o (vmid_obs 1) == get o (vmid_obs 2))
    [ gen_vmid_thread ~barriers:false 1; gen_vmid_thread ~barriers:false 2 ]

let example2_fixed =
  Litmus.make ~rm_config:lock1 ~name:"example2-vmid-linux-lock"
    ~description:
      "Example 2 repaired: Linux ticket lock (acquire loads, release \
       store); VMIDs unique on both models"
    ~exists:(fun o -> get o (vmid_obs 1) == get o (vmid_obs 2))
    ~expect_rm:false
    ~observables:[ vmid_obs 1; vmid_obs 2 ]
    [ gen_vmid_thread ~barriers:true 1; gen_vmid_thread ~barriers:true 2 ]

(* ------------------------------------------------------------------ *)
(* Example 3: vCPU context switch via an ownership variable            *)
(* ------------------------------------------------------------------ *)

let inactive = 0
let active = 1
let old_ctxt = 7
let new_ctxt = 42

let example3_threads ~barriers =
  let ctxt = at "vcpu_ctxt" in
  let state = at "vcpu_state" in
  let r_state = Reg.v "r_state" in
  let r_ctxt = Reg.v "r_ctxt" in
  let save =
    [ Instr.store ctxt (c new_ctxt) (* (a) save the vCPU context *);
      Instr.push [ "vcpu_ctxt" ];
      (if barriers then Instr.store_rel state (c inactive)
       else Instr.store state (c inactive)) ]
  in
  let restore =
    [ (if barriers then Instr.load_acq r_state state
       else Instr.load r_state state);
      Instr.if_
        (r r_state = c inactive)
        [ Instr.store state (c active);
          Instr.pull [ "vcpu_ctxt" ];
          Instr.load r_ctxt ctxt ]
        [ Instr.move r_ctxt (c (-1)) ] ]
  in
  [ Prog.thread 1 save; Prog.thread 2 restore ]

let example3_exists o =
  (* CPU 2 saw INACTIVE but restored the stale context *)
  get o (obs_reg 2 (Reg.v "r_state")) == inactive
  &&& (get o (obs_reg 2 (Reg.v "r_ctxt")) == old_ctxt)

let example3_buggy =
  Litmus.make ~rm_config:small ~name:"example3-vcpu-nobarrier"
    ~description:
      "Example 3: context save reordered after the INACTIVE flag; stale \
       vCPU context restored on RM"
    ~init:[ (Loc.v "vcpu_ctxt", old_ctxt); (Loc.v "vcpu_state", active) ]
    ~observables:
      [ obs_reg 2 (Reg.v "r_state"); obs_reg 2 (Reg.v "r_ctxt") ]
    ~exists:example3_exists
    (example3_threads ~barriers:false)

let example3_fixed =
  Litmus.make ~rm_config:small ~name:"example3-vcpu-relacq"
    ~description:
      "Example 3 repaired: store-release of INACTIVE, load-acquire of the \
       state; stale restore impossible"
    ~init:[ (Loc.v "vcpu_ctxt", old_ctxt); (Loc.v "vcpu_state", active) ]
    ~observables:
      [ obs_reg 2 (Reg.v "r_state"); obs_reg 2 (Reg.v "r_ctxt") ]
    ~exists:example3_exists ~expect_rm:false
    (example3_threads ~barriers:true)

(* ------------------------------------------------------------------ *)
(* Example 7: user RM behavior propagating into the kernel             *)
(* ------------------------------------------------------------------ *)

let example7 =
  let rz = Reg.v "rz" in
  let r2 = Reg.v "r2" in
  let r3 = Reg.v "r3" in
  Litmus.make ~rm_config:small ~name:"example7-user-to-kernel"
    ~description:
      "Example 7: kernel divide-by-zero reachable only because user code \
       exhibits RM behavior"
    ~observables:[ obs_reg 3 r2 ]
    ~exists:(fun _ -> false)
      (* the interesting signal is the panic, checked via rm_panic *)
    ~expect_sc:false ~expect_rm:false
    [ Prog.thread 1
        [ Instr.load r0 x;
          Instr.store y (c 1);
          Instr.if_ (r r0 = c 1) [ Instr.faa rz z (c 1) ] [] ];
      Prog.thread 2
        [ Instr.load r1 y;
          Instr.store x (r r1);
          Instr.if_ (r r1 = c 1) [ Instr.faa rz z (c 1) ] [] ];
      Prog.thread 3
        [ Instr.load r3 z;
          (* r2 := 1 / (2 - r3): divides by zero exactly when r3 = 2 *)
          Instr.move r2 (c 1 / (c 2 - r r3)) ] ]

(* ------------------------------------------------------------------ *)
(* Classic validation litmus tests                                     *)
(* ------------------------------------------------------------------ *)

let mp ~name ~description ~sync ~expect_rm =
  (* message passing: w x=1; w flag=1 || r flag; r x *)
  let flag = at "flag" in
  let writer, reader =
    match sync with
    | `None ->
        ( [ Instr.store x (c 1); Instr.store flag (c 1) ],
          [ Instr.load r0 flag; Instr.load r1 x ] )
    | `Dmb ->
        ( [ Instr.store x (c 1); Instr.dmb; Instr.store flag (c 1) ],
          [ Instr.load r0 flag; Instr.dmb; Instr.load r1 x ] )
    | `Rel_acq ->
        ( [ Instr.store x (c 1); Instr.store_rel flag (c 1) ],
          [ Instr.load_acq r0 flag; Instr.load r1 x ] )
  in
  Litmus.make ~rm_config:small ~name ~description
    ~observables:[ obs_reg 1 r0; obs_reg 1 r1 ]
    ~exists:(fun o ->
      get o (obs_reg 1 r0) == 1 &&& (get o (obs_reg 1 r1) == 0))
    ~expect_rm
    [ Prog.thread 0 writer; Prog.thread 1 reader ]

let mp_plain =
  mp ~name:"mp-plain" ~description:"message passing, no sync: stale read on RM"
    ~sync:`None ~expect_rm:true

let mp_dmb =
  mp ~name:"mp-dmb" ~description:"message passing with DMBs: forbidden"
    ~sync:`Dmb ~expect_rm:false

let mp_rel_acq =
  mp ~name:"mp-rel-acq"
    ~description:"message passing with release/acquire: forbidden"
    ~sync:`Rel_acq ~expect_rm:false

let sb =
  Litmus.make ~rm_config:small ~name:"sb-plain"
    ~description:"store buffering: r0=r1=0 allowed on RM, not SC"
    ~observables:[ obs_reg 1 r0; obs_reg 2 r1 ]
    ~exists:(fun o ->
      get o (obs_reg 1 r0) == 0 &&& (get o (obs_reg 2 r1) == 0))
    [ Prog.thread 1 [ Instr.store x (c 1); Instr.load r0 y ];
      Prog.thread 2 [ Instr.store y (c 1); Instr.load r1 x ] ]

let sb_dmb =
  Litmus.make ~rm_config:small ~name:"sb-dmb"
    ~description:"store buffering with DMB: forbidden"
    ~observables:[ obs_reg 1 r0; obs_reg 2 r1 ]
    ~exists:(fun o ->
      get o (obs_reg 1 r0) == 0 &&& (get o (obs_reg 2 r1) == 0))
    ~expect_rm:false
    [ Prog.thread 1 [ Instr.store x (c 1); Instr.dmb; Instr.load r0 y ];
      Prog.thread 2 [ Instr.store y (c 1); Instr.dmb; Instr.load r1 x ] ]

let lb_data =
  (* load buffering with data dependencies on both sides: forbidden *)
  Litmus.make ~rm_config:small ~name:"lb-data"
    ~description:"load buffering with data deps both sides: forbidden"
    ~observables:[ obs_reg 1 r0; obs_reg 2 r1 ]
    ~exists:(fun o ->
      get o (obs_reg 1 r0) == 1 &&& (get o (obs_reg 2 r1) == 1))
    ~expect_rm:false
    [ Prog.thread 1 [ Instr.load r0 x; Instr.store y (r r0) ];
      Prog.thread 2 [ Instr.load r1 y; Instr.store x (r r1) ] ]

let corr =
  (* coherence: two reads of the same location cannot go backwards *)
  let ra = Reg.v "ra" and rb = Reg.v "rb" in
  Litmus.make ~rm_config:small ~name:"corr"
    ~description:"read-read coherence on one location: forbidden"
    ~observables:[ obs_reg 2 ra; obs_reg 2 rb ]
    ~exists:(fun o ->
      get o (obs_reg 2 ra) == 1 &&& (get o (obs_reg 2 rb) == 0))
    ~expect_rm:false
    [ Prog.thread 1 [ Instr.store x (c 1) ];
      Prog.thread 2 [ Instr.load ra x; Instr.load rb x ] ]

let addr_dep =
  (* address dependency orders the dependent load (MP+dmb+addr) *)
  let rp = Reg.v "rp" in
  let table = at "table" in
  Litmus.make ~rm_config:small ~name:"mp-dmb-addr"
    ~description:"message passing, DMB on writer, address dep on reader: \
                  forbidden"
    ~init:[ (Loc.v ~index:0 "table", 0); (Loc.v ~index:1 "data", 0) ]
    ~observables:[ obs_reg 2 r1 ]
    ~exists:(fun o -> get o (obs_reg 2 r1) == 0)
    ~expect_sc:true ~expect_rm:true
    (* reading rp=0 (old index) gives data[0]=1? — see below: we check the
       dependent-read case precisely in the unit tests; here the clause
       documents that stale index reads remain possible, equally on SC. *)
    [ Prog.thread 1
        [ Instr.store (at ~offset:(c 1) "data") (c 1);
          Instr.dmb;
          Instr.store table (c 1) ];
      Prog.thread 2
        [ Instr.load rp table;
          Instr.load r1 (at ~offset:(r rp) "data") ] ]

let all_paper =
  [ example1; example2_buggy; example2_fixed; example3_buggy; example3_fixed;
    example7 ]

let all_classic = [ mp_plain; mp_dmb; mp_rel_acq; sb; sb_dmb; lb_data; corr;
                    addr_dep ]

let all = all_paper @ all_classic
