(** Thread-local registers of the kernel-code DSL. *)

type t = string

val v : string -> t
val name : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val show : t -> string

module Map : Map.S with type key = string
