(** Observable behaviors of a program execution, and behavior sets.

    A behavior is the vector of observable values at the end of an
    execution plus a status flag: whether some thread panicked, or
    exploration fuel ran out on that path (spin loops are unrolled only up
    to the executor's fuel; fuel-exhausted paths are reported separately
    so bounded exploration never silently drops outcomes). *)

type status = Normal | Panicked | Fuel_exhausted

type outcome = {
  values : (Prog.observable * int) list;  (** sorted by observable *)
  status : status;
}

val outcome : ?status:status -> (Prog.observable * int) list -> outcome
(** Canonicalizes the value vector (sorted by observable). *)

val pp_outcome : Format.formatter -> outcome -> unit
val equal_outcome : outcome -> outcome -> bool
val compare_outcome : outcome -> outcome -> int
val pp_status : Format.formatter -> status -> unit
val show_status : status -> string
val equal_status : status -> status -> bool
val compare_status : status -> status -> int

module Outcome_set : Set.S with type elt = outcome

type t = Outcome_set.t

val empty : t
val add : outcome -> t -> t
val elements : t -> outcome list
val cardinal : t -> int
val mem : outcome -> t -> bool
val union : t -> t -> t

val subset : t -> t -> bool
(** [subset a b] — every behavior of [a] is a behavior of [b]. The
    executable form of the paper's Theorem 1 is
    [subset (run_promising p) (run_sc p)]. *)

val equal : t -> t -> bool

val diff : t -> t -> t
(** Behaviors in the first set absent from the second: the
    relaxed-memory-only witnesses when a program violates wDRF. *)

val exists_outcome : (outcome -> bool) -> t -> bool

val satisfiable : ((Prog.observable -> int option) -> bool) -> t -> bool
(** Does some [Normal] outcome satisfy the predicate on its value vector?
    (litmus "exists" clauses) *)

val any_panic : t -> bool
val any_fuel_exhausted : t -> bool
val pp : Format.formatter -> t -> unit
