(** Value, boolean and address expressions of the kernel-code DSL.

    Expressions are evaluated against a thread-local register environment.
    For the relaxed-memory executors, each register carries a {e view} (a
    timestamp bound on the messages its value derives from); evaluation
    propagates views so that data and address dependencies can be enforced
    exactly as the Armv8 model requires. *)

type vexp =
  | Const of int
  | Reg of Reg.t
  | Add of vexp * vexp
  | Sub of vexp * vexp
  | Mul of vexp * vexp
  | Div of vexp * vexp  (** traps (kernel panic) on division by zero *)

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type bexp =
  | Bool of bool
  | Cmp of cmp * vexp * vexp
  | And of bexp * bexp
  | Or of bexp * bexp
  | Not of bexp

(** An address: a base object plus a computed index. A register occurring
    in [offset] induces an address dependency. *)
type aexp = { abase : string; offset : vexp }

exception Eval_panic of string

(** {2 Builders}

    These shadow the standard operators so DSL programs read like the
    paper's pseudocode; open {!Expr} locally when building programs. *)

val c : int -> vexp
val r : Reg.t -> vexp
val ( + ) : vexp -> vexp -> vexp
val ( - ) : vexp -> vexp -> vexp
val ( * ) : vexp -> vexp -> vexp
val ( / ) : vexp -> vexp -> vexp
val ( = ) : vexp -> vexp -> bexp
val ( <> ) : vexp -> vexp -> bexp
val ( < ) : vexp -> vexp -> bexp
val ( <= ) : vexp -> vexp -> bexp
val ( > ) : vexp -> vexp -> bexp
val ( >= ) : vexp -> vexp -> bexp
val ( && ) : bexp -> bexp -> bexp
val ( || ) : bexp -> bexp -> bexp
val not : bexp -> bexp
val at : ?offset:vexp -> string -> aexp

(** {2 Evaluation} *)

val eval_v : (Reg.t -> int * int) -> vexp -> int * int
(** [eval_v lookup e] evaluates [e] to [(value, view)]; [view] is the join
    of the views of all registers read. Raises {!Eval_panic} on division
    by zero. *)

val eval_b : (Reg.t -> int * int) -> bexp -> bool * int
val eval_addr : (Reg.t -> int * int) -> aexp -> Loc.t * int

(** {2 Static analysis} *)

val regs_of_vexp : vexp -> Reg.t list
val regs_of_bexp : bexp -> Reg.t list

(** {2 Derived printers/equality} *)

val pp_vexp : Format.formatter -> vexp -> unit
val show_vexp : vexp -> string
val equal_vexp : vexp -> vexp -> bool
val pp_bexp : Format.formatter -> bexp -> unit
val show_bexp : bexp -> string
val equal_bexp : bexp -> bexp -> bool
val pp_aexp : Format.formatter -> aexp -> unit
val show_aexp : aexp -> string
val equal_aexp : aexp -> aexp -> bool
val pp_cmp : Format.formatter -> cmp -> unit
val show_cmp : cmp -> string
val equal_cmp : cmp -> cmp -> bool
val eval_cmp : cmp -> int -> int -> bool
