(** Multi-threaded DSL programs and their observables. *)

type thread = { tid : int; code : Instr.t list; comment : string }

type observable =
  | Obs_reg of int * Reg.t  (** final value of a register of thread [tid] *)
  | Obs_loc of Loc.t  (** final value of a shared location *)
[@@deriving show, eq, ord]

type t = {
  name : string;
  threads : thread list;
  init : (Loc.t * int) list;  (** initial memory; unlisted locations are 0 *)
  observables : observable list;
  shared_bases : string list;
      (** bases considered shared kernel state (footprint of the DRF check);
          empty means: every base written by more than one thread, or
          written by one and read by another. *)
}

let thread ?(comment = "") tid code = { tid; code; comment }

let make ?(init = []) ?(shared_bases = []) ~name ~observables threads =
  let tids = List.map (fun t -> t.tid) threads in
  let sorted = List.sort_uniq compare tids in
  if List.length sorted <> List.length tids then
    invalid_arg "Prog.make: duplicate thread ids";
  { name; threads; init; observables; shared_bases }

let n_threads t = List.length t.threads

let find_thread t tid = List.find (fun th -> th.tid = tid) t.threads

let init_value t loc =
  match List.assoc_opt loc t.init with Some v -> v | None -> 0

(** Locations appearing in [init] or observables — a seed set for memory. *)
let known_locs t =
  let obs =
    List.filter_map (function Obs_loc l -> Some l | Obs_reg _ -> None)
      t.observables
  in
  List.sort_uniq compare (List.map fst t.init @ obs)

(** Shared bases: the declared set, or inferred from per-thread footprints. *)
let shared_bases t =
  match t.shared_bases with
  | _ :: _ as declared -> declared
  | [] ->
      let per_thread =
        List.map (fun th -> List.sort_uniq compare (Instr.bases_list th.code))
          t.threads
      in
      let all = List.sort_uniq compare (List.concat per_thread) in
      List.filter
        (fun b ->
          let count =
            List.length (List.filter (fun bs -> List.mem b bs) per_thread)
          in
          count >= 2)
        all

let pp_observable fmt = function
  | Obs_reg (tid, r) -> Format.fprintf fmt "%d:%a" tid Reg.pp r
  | Obs_loc l -> Format.fprintf fmt "[%a]" Loc.pp l
