(** Shared-memory locations.

    A location is a named base cell plus an integer index, so that array-like
    kernel objects (page-table entries, [vcpu_state\[vmid\]\[vcpuid\]], ...)
    can be addressed with computed offsets. Index 0 is used for plain scalar
    variables. *)

type t = { base : string; index : int } [@@deriving show, eq, ord]

let v ?(index = 0) base = { base; index }

let base t = t.base
let index t = t.index

let pp fmt t =
  if t.index = 0 then Format.fprintf fmt "%s" t.base
  else Format.fprintf fmt "%s[%d]" t.base t.index

let to_string t = Format.asprintf "%a" pp t

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)
