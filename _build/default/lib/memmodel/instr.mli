(** The concurrent-kernel instruction DSL.

    Kernel primitives under verification (ticket and MCS locks,
    [gen_vmid], vCPU context switching, page-table updates) are written in
    this DSL so the same program can be executed under the SC model
    ({!Sc}), the Promising Arm relaxed model ({!Promising}), the push/pull
    ownership model ({!Pushpull}) and, for straight-line fragments, the
    axiomatic model ({!Axiomatic}).

    Memory-access ordering annotations mirror Armv8: plain accesses,
    load-acquire ([LDAR]), store-release ([STLR]), and the DMB barrier
    flavours. [Pull]/[Push] are logical (ghost) ownership annotations in
    the style of CertiKOS's push/pull semantics; they generate no hardware
    events but are interpreted by the DRF checker. *)

type order =
  | Plain
  | Acquire  (** load-acquire; on RMWs, acquire semantics on the load *)
  | Release  (** store-release; on RMWs, release semantics on the store *)
  | Acq_rel  (** RMW with both acquire and release semantics *)

type barrier =
  | Dmb_full  (** DMB ISH: orders all prior accesses with all later ones *)
  | Dmb_ld  (** DMB ISHLD: orders prior loads with later loads and stores *)
  | Dmb_st  (** DMB ISHST: orders prior stores with later stores *)
  | Isb  (** instruction barrier: orders control deps with later loads *)

type t =
  | Load of Reg.t * Expr.aexp * order
  | Store of Expr.aexp * Expr.vexp * order
  | Faa of Reg.t * Expr.aexp * Expr.vexp * order
      (** atomic fetch-and-add: [r := \[a\]; \[a\] := r + e] in one step *)
  | Xchg of Reg.t * Expr.aexp * Expr.vexp * order
      (** atomic exchange: [r := \[a\]; \[a\] := e] in one step *)
  | Cas of Reg.t * Expr.aexp * Expr.vexp * Expr.vexp * order
      (** compare-and-swap: [r := \[a\]; if r = expected then \[a\] :=
          desired]; success is observed as [r = expected] *)
  | Barrier of barrier
  | Move of Reg.t * Expr.vexp  (** register-only computation *)
  | If of Expr.bexp * t list * t list
  | While of Expr.bexp * t list  (** bounded by executor fuel *)
  | Pull of string list  (** acquire logical ownership of the given bases *)
  | Push of string list  (** release logical ownership of the given bases *)
  | Tlbi of Expr.aexp option
      (** TLB invalidation; [None] invalidates everything *)
  | Panic  (** kernel panic; reaching it is an observable outcome *)
  | Nop

(** {2 Builders} *)

val load : ?order:order -> Reg.t -> Expr.aexp -> t
val load_acq : Reg.t -> Expr.aexp -> t
val store : ?order:order -> Expr.aexp -> Expr.vexp -> t
val store_rel : Expr.aexp -> Expr.vexp -> t
val faa : ?order:order -> Reg.t -> Expr.aexp -> Expr.vexp -> t
val xchg : ?order:order -> Reg.t -> Expr.aexp -> Expr.vexp -> t

val cas :
  ?order:order -> Reg.t -> Expr.aexp -> expected:Expr.vexp ->
  desired:Expr.vexp -> t

val fetch_and_inc : ?order:order -> Reg.t -> Expr.aexp -> t
val dmb : t
val dmb_ld : t
val dmb_st : t
val isb : t
val move : Reg.t -> Expr.vexp -> t
val if_ : Expr.bexp -> t list -> t list -> t
val while_ : Expr.bexp -> t list -> t
val pull : string list -> t
val push : string list -> t
val tlbi_all : t
val tlbi : Expr.aexp -> t

(** {2 Analysis} *)

val size : t -> int
(** Structural size (proof-effort accounting, sanity checks). *)

val size_list : t list -> int

val bases : t -> string list
(** Base names the instruction can touch (footprint analysis). *)

val bases_list : t list -> string list

(** {2 Derived printers/equality} *)

val pp : Format.formatter -> t -> unit
val show : t -> string
val equal : t -> t -> bool
val pp_order : Format.formatter -> order -> unit
val show_order : order -> string
val equal_order : order -> order -> bool
val pp_barrier : Format.formatter -> barrier -> unit
val show_barrier : barrier -> string
val equal_barrier : barrier -> barrier -> bool
