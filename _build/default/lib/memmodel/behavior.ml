(** Observable behaviors of a program execution, and behavior sets.

    A behavior is the vector of observable values at the end of an
    execution, together with a status flag: whether some thread panicked, or
    exploration fuel ran out on that path (spin loops are unrolled only up
    to the executor's fuel; fuel-exhausted paths are reported separately so
    that bounded exploration never silently drops outcomes). *)

type status = Normal | Panicked | Fuel_exhausted [@@deriving show, eq, ord]

type outcome = {
  values : (Prog.observable * int) list;  (** sorted by observable *)
  status : status;
}
[@@deriving eq, ord]

let outcome ?(status = Normal) values =
  { values = List.sort (fun (a, _) (b, _) -> Prog.compare_observable a b) values;
    status }

let pp_outcome fmt o =
  let pp_kv fmt (obs, v) =
    Format.fprintf fmt "%a=%d" Prog.pp_observable obs v
  in
  Format.fprintf fmt "{%a}%s"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ", ") pp_kv)
    o.values
    (match o.status with
    | Normal -> ""
    | Panicked -> " PANIC"
    | Fuel_exhausted -> " FUEL")

module Outcome_set = Set.Make (struct
  type t = outcome

  let compare = compare_outcome
end)

type t = Outcome_set.t

let empty = Outcome_set.empty
let add = Outcome_set.add
let elements = Outcome_set.elements
let cardinal = Outcome_set.cardinal
let mem = Outcome_set.mem
let union = Outcome_set.union

(** [subset a b] — every behavior of [a] is a behavior of [b]. This is the
    executable form of the paper's Theorem 1: for wDRF programs,
    [subset (run_promising p) (run_sc p)] must hold. *)
let subset = Outcome_set.subset

let equal = Outcome_set.equal

(** Behaviors in [a] that are not in [b]: the relaxed-memory-only witnesses
    exhibited when a program violates the wDRF conditions. *)
let diff = Outcome_set.diff

let exists_outcome pred (t : t) = Outcome_set.exists pred t

(** Does some [Ok] outcome satisfy [pred] on its value vector? (litmus
    "exists" clauses) *)
let satisfiable pred (t : t) =
  Outcome_set.exists
    (fun o -> o.status = Normal && pred (fun obs -> List.assoc_opt obs o.values))
    t

let any_panic (t : t) = Outcome_set.exists (fun o -> o.status = Panicked) t
let any_fuel_exhausted (t : t) =
  Outcome_set.exists (fun o -> o.status = Fuel_exhausted) t

let pp fmt (t : t) =
  Format.fprintf fmt "@[<v>%a@]"
    (Format.pp_print_list pp_outcome)
    (elements t)
