(** An executable Armv8 axiomatic memory model, cross-validating the
    Promising executor.

    For straight-line programs, every candidate execution (a reads-from
    choice per load, a per-location coherence order over the stores) is
    enumerated and kept iff it satisfies the Armv8 axioms:

    - {b internal} (sc-per-location): acyclic(po-loc ∪ rf ∪ co ∪ fr);
    - {b external}: acyclic(ob) with ob = rfe ∪ coe ∪ fre ∪ data-deps ∪
      barrier order (DMB flavours, acquire, release, RCsc);
    - {b atomicity}: an RMW's read and write are adjacent in co.

    The property tests compare this model's outcome sets against
    {!Promising.run} on random programs — the testable form of the
    Promising ≡ axiomatic theorem the paper relies on. *)

exception Unsupported of string
(** Raised on programs outside the fragment (control flow, computed
    addresses, XCHG/CAS). *)

val run : Prog.t -> Behavior.t
(** Behavior set of all axiomatically valid candidate executions,
    in the same observable terms as {!Sc.run} / {!Promising.run}. *)
