(** Thread-local registers of the kernel-code DSL. *)

type t = string [@@deriving show, eq, ord]

let v (name : string) : t = name
let name (t : t) = t

let pp fmt t = Format.fprintf fmt "%s" t

module Map = Map.Make (String)
