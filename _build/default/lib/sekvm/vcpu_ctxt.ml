(** vCPU contexts and the ACTIVE/INACTIVE ownership protocol (paper §5.2,
    Example 3).

    A vCPU context is not protected by a lock but by a state variable:
    before touching a context, a physical CPU must observe INACTIVE, set
    ACTIVE, and only then access the registers; when done it stores the
    registers and only afterwards sets INACTIVE (with release semantics on
    real hardware). The runtime protocol here enforces the discipline —
    violating it raises — and the DSL rendition for the relaxed-memory
    checkers lives in {!Kernel_progs}. *)

type state = Inactive | Active [@@deriving show, eq]

type t = {
  vmid : int;
  vcpuid : int;
  mutable vstate : state;
  mutable claimed_by : int option;  (** physical CPU currently using it *)
  regs : int array;  (** general-purpose registers x0..x30 + pc + pstate *)
  mutable runs : int;
}

let n_regs = 33

exception Protocol_violation of string

let create ~vmid ~vcpuid =
  { vmid;
    vcpuid;
    vstate = Inactive;
    claimed_by = None;
    regs = Array.make n_regs 0;
    runs = 0 }

(** Claim the context for [cpu]: check INACTIVE, set ACTIVE. *)
let claim t ~cpu =
  (match t.vstate with
  | Active ->
      raise
        (Protocol_violation
           (Printf.sprintf "vCPU %d/%d claimed while ACTIVE (by CPU %d)"
              t.vmid t.vcpuid cpu))
  | Inactive -> ());
  t.vstate <- Active;
  t.claimed_by <- Some cpu;
  t.runs <- t.runs + 1

(** Release the context: the claiming CPU stores the registers first, then
    flips the state back (store-release on hardware). *)
let release t ~cpu =
  (match t.claimed_by with
  | Some c when c = cpu -> ()
  | _ ->
      raise
        (Protocol_violation
           (Printf.sprintf "vCPU %d/%d released by non-claiming CPU %d"
              t.vmid t.vcpuid cpu)));
  t.claimed_by <- None;
  t.vstate <- Inactive

let read_reg t i =
  (match t.claimed_by with
  | Some _ -> ()
  | None ->
      raise
        (Protocol_violation
           (Printf.sprintf "vCPU %d/%d register read while unclaimed" t.vmid
              t.vcpuid)));
  t.regs.(i)

let write_reg t i v =
  (match t.claimed_by with
  | Some _ -> ()
  | None ->
      raise
        (Protocol_violation
           (Printf.sprintf "vCPU %d/%d register write while unclaimed" t.vmid
              t.vcpuid)));
  t.regs.(i) <- v
