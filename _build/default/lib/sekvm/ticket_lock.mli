(** Ticket locks, in two renditions: a runtime lock for the executable
    hypervisor (usage-discipline checking + contention stats) and the
    Linux arm64 ticket lock of the paper's Fig. 7 as a kernel-DSL fragment
    (with [barriers:false] giving the §2 Example 2 variant). *)

type t = {
  name : string;
  mutable ticket : int;
  mutable now : int;
  mutable holder : int option;  (** CPU id *)
  mutable acquisitions : int;
  mutable contentions : int;
}

exception Lock_error of string

val create : string -> t

val acquire : t -> cpu:int -> unit
(** Raises {!Lock_error} if held: simulator locks are handler-scoped, so
    an acquire of a held lock is a hypervisor bug, not contention. *)

val release : t -> cpu:int -> unit
val holder : t -> int option
val is_held : t -> bool

val with_lock : t -> cpu:int -> (unit -> 'a) -> 'a
(** Exception-safe acquire/release bracket. *)

(** {2 DSL rendition (Fig. 7)} *)

val ticket_base : string -> string
val now_base : string -> string
val lock_bases : string -> string list

val dsl_acquire :
  ?barriers:bool -> name:string -> protects:string list -> unit ->
  Memmodel.Instr.t list
(** Fig. 7 lines 1–5: fetch-and-inc, acquire-load spin, then the [pull]
    of the protected footprint. *)

val dsl_release :
  ?barriers:bool -> name:string -> protects:string list -> unit ->
  Memmodel.Instr.t list
(** Fig. 7 lines 6–8: [push]; release-store of [now]. *)

val dsl_critical :
  ?barriers:bool -> name:string -> protects:string list ->
  Memmodel.Instr.t list -> Memmodel.Instr.t list
