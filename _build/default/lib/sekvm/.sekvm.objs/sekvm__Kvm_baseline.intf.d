lib/sekvm/kvm_baseline.pp.mli: Cpu Machine Npt Page_pool Page_table Phys_mem Trace Vcpu_ctxt
