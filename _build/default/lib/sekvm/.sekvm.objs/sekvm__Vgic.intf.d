lib/sekvm/vgic.pp.mli:
