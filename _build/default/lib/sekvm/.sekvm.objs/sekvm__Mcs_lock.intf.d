lib/sekvm/mcs_lock.pp.mli: Memmodel
