lib/sekvm/vgic.pp.ml: List
