lib/sekvm/smmu_ops.pp.mli: Machine Pte Smmu Ticket_lock Trace
