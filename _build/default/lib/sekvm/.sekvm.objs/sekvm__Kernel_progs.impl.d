lib/sekvm/kernel_progs.pp.ml: Expr Instr Loc Mcs_lock Memmodel Prog Promising Reg Stdlib Ticket_lock
