lib/sekvm/kserv.pp.ml: Kcore List Machine Page_table Phys_mem Result S2page Vcpu_ctxt Vm
