lib/sekvm/npt.pp.mli: Machine Page_pool Page_table Phys_mem Pte Ticket_lock Trace
