lib/sekvm/kserv.pp.mli: Kcore Vm
