lib/sekvm/vcpu_ctxt.pp.ml: Array Ppx_deriving_runtime Printf
