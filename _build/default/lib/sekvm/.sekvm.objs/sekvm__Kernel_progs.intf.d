lib/sekvm/kernel_progs.pp.mli: Memmodel Prog Promising
