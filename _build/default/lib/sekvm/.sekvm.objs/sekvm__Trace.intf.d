lib/sekvm/trace.pp.mli: Format Machine
