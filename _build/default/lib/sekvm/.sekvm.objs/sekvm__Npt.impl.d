lib/sekvm/npt.pp.ml: List Machine Page_pool Page_table Phys_mem Printf Ticket_lock Trace
