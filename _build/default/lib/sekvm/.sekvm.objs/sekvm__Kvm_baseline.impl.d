lib/sekvm/kvm_baseline.pp.ml: Array Cpu List Machine Npt Page_pool Page_table Phys_mem Pte Tlb Trace Vcpu_ctxt
