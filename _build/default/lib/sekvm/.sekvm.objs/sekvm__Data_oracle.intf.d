lib/sekvm/data_oracle.pp.mli:
