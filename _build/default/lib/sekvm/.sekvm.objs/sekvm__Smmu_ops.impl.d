lib/sekvm/smmu_ops.pp.ml: List Machine Page_table Smmu Ticket_lock Trace
