lib/sekvm/mcs_lock.pp.ml: Expr Instr List Loc Memmodel Printf Prog Reg
