lib/sekvm/vm.pp.mli: Format Machine
