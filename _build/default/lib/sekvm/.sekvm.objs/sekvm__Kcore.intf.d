lib/sekvm/kcore.pp.mli: Cpu Data_oracle El2_pt Format Machine Npt Page_pool Page_table Phys_mem Pte S2page Smmu_ops Ticket_lock Trace Vcpu_ctxt Vgic
