lib/sekvm/vm.pp.ml: List Machine Ppx_deriving_runtime
