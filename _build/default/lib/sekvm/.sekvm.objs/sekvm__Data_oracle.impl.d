lib/sekvm/data_oracle.pp.ml: List
