lib/sekvm/ticket_lock.pp.mli: Memmodel
