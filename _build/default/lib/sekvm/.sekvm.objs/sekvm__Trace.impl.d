lib/sekvm/trace.pp.ml: List Machine Ppx_deriving_runtime
