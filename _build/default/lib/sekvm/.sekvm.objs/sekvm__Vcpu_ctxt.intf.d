lib/sekvm/vcpu_ctxt.pp.mli: Format
