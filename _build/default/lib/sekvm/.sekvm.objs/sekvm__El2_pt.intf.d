lib/sekvm/el2_pt.pp.mli: Machine Page_pool Page_table Phys_mem Pte Trace
