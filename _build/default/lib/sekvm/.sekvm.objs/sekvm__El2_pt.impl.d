lib/sekvm/el2_pt.pp.ml: List Machine Page_pool Page_table Phys_mem Pte Trace
