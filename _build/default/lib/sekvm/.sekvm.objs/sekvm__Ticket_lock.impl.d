lib/sekvm/ticket_lock.pp.ml: Expr Instr Memmodel Printf Reg
