(** Stage-2 (nested) page tables for VMs and KServ (paper §5.4–5.5).

    Exactly two primitives mutate a table: [set_s2pt] (walk–allocate–set
    under the table lock, never overwriting a valid leaf, so no TLBI
    needed) and [clear_s2pt] (single leaf write, then DSB, then TLBI).
    Every write/barrier/TLBI is trace-recorded for the condition checkers;
    the [skip_*] knobs and [remap_nontransactional] exist only to seed
    the bugs the checkers must catch. *)

open Machine

type t = {
  mem : Phys_mem.t;
  geometry : Page_table.geometry;
  pool : Page_pool.t;
  root : int;
  vmid : int;
  lock : Ticket_lock.t;
  trace : Trace.t;
  invalidate : Trace.tlbi_scope -> unit;
  mutable map_ops : int;
  mutable unmap_ops : int;
}

val create :
  mem:Phys_mem.t -> geometry:Page_table.geometry -> pool:Page_pool.t ->
  vmid:int -> trace:Trace.t -> invalidate:(Trace.tlbi_scope -> unit) -> t

val set_s2pt :
  t -> cpu:int -> ipa:int -> pfn:int -> perms:Pte.perms ->
  (unit, [ `Already_mapped ]) result

val set_s2pt_block :
  t -> cpu:int -> ipa:int -> pfn:int -> perms:Pte.perms -> level:int ->
  (unit, [ `Already_mapped | `Misaligned ]) result
(** Huge-page mapping: one block PTE at [level] (1 = 2 MB). *)

val clear_s2pt :
  ?skip_barrier:bool -> ?skip_tlbi:bool -> t -> cpu:int -> ipa:int ->
  (unit, [ `Not_mapped ]) result

val remap_nontransactional :
  t -> cpu:int -> ipa:int -> pfn:int -> perms:Pte.perms ->
  (unit, [ `Not_mapped ]) result
(** The Example 5 anti-pattern (for checker validation only). *)

val translate : t -> ipa:int -> (int * Pte.perms) option
val mappings : t -> (int * int * Pte.perms) list
val table_pages : t -> int list
val is_mapped : t -> ipa:int -> bool
