(** SMMU page-table primitives [set_spt]/[clear_spt] (paper §5.4–5.5) —
    mirrors {!Npt} with pages from the SMMU pool and SMMU TLB
    invalidations. *)

open Machine

type t = {
  smmu : Smmu.t;
  lock : Ticket_lock.t;
  trace : Trace.t;
  mutable map_ops : int;
  mutable unmap_ops : int;
}

val create : smmu:Smmu.t -> trace:Trace.t -> t
val attach_device : t -> cpu:int -> device:int -> int

val set_spt :
  t -> cpu:int -> device:int -> iova:int -> pfn:int -> perms:Pte.perms ->
  (unit, [ `Already_mapped | `No_device ]) result

val clear_spt :
  ?skip_barrier:bool -> ?skip_tlbi:bool -> t -> cpu:int -> device:int ->
  iova:int -> (unit, [ `Not_mapped | `No_device ]) result

val translate : t -> device:int -> iova:int -> (int * Pte.perms) option
val table_pages : t -> int list
