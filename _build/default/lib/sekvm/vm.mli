(** Guest virtual machines: workloads as sequences of guest operations
    against guest-physical (IPA) addresses, executed by the
    {!Kserv.run_guest} exit/enter loop. *)

type guest_op =
  | G_read of int  (** load from IPA *)
  | G_write of int * int  (** store value to IPA *)
  | G_share of int  (** hypercall: share the page holding IPA with KServ *)
  | G_unshare of int
  | G_compute of int  (** busy work: no hypervisor involvement *)
  | G_ipi of int * int  (** SGI to (vcpuid, irq): Table 2's Virtual IPI *)
  | G_ack_irq  (** acknowledge the oldest pending interrupt *)
  | G_uart_putc of int  (** MMIO write to the userspace-emulated UART *)
  | G_uart_getc  (** MMIO read: external input via the data oracle *)
  | G_protect of int  (** hypercall: write-protect the page holding IPA *)
  | G_set_reg of int * int  (** write a guest general-purpose register *)
  | G_get_reg of int  (** read a guest general-purpose register *)

type op_result = R_value of int | R_unit | R_denied

val pp_guest_op : Format.formatter -> guest_op -> unit
val show_guest_op : guest_op -> string
val equal_guest_op : guest_op -> guest_op -> bool
val pp_op_result : Format.formatter -> op_result -> unit
val show_op_result : op_result -> string
val equal_op_result : op_result -> op_result -> bool

val image_words : vmid:int -> page:int -> int -> int
(** Deterministic VM-image content: word [i] of [page]. *)

val write_image : Machine.Phys_mem.t -> vmid:int -> int list -> unit
val image_hash : Machine.Phys_mem.t -> int list -> int

(** {2 Canned workloads} *)

val touch_pages : first_ipa_page:int -> n:int -> guest_op list
val ipi_round : peer:int -> rounds:int -> guest_op list
val virtio_round : ring_ipa:int -> payload:int -> guest_op list
