(** SMMU page-table primitives [set_spt]/[clear_spt] (paper §5.4-5.5).

    These mirror [set_s2pt]/[clear_s2pt] exactly, except pages come from
    the SMMU's reserved pool and invalidations target the SMMU TLB. *)

open Machine

type t = {
  smmu : Smmu.t;
  lock : Ticket_lock.t;
  trace : Trace.t;
  mutable map_ops : int;
  mutable unmap_ops : int;
}

let create ~smmu ~trace =
  { smmu; lock = Ticket_lock.create "smmu"; trace; map_ops = 0; unmap_ops = 0 }

let record_write t ~cpu ~device w =
  Trace.record t.trace
    (Trace.E_pt_write
       { cpu;
         table = Trace.T_smmu device;
         write = w;
         locked = Ticket_lock.is_held t.lock })

let section t ~cpu ~what f =
  Trace.record t.trace (Trace.E_section_begin { cpu; what });
  let r = f () in
  Trace.record t.trace (Trace.E_section_end { cpu; what });
  r

let attach_device t ~cpu ~device =
  ignore cpu;
  Ticket_lock.with_lock t.lock ~cpu @@ fun () ->
  Smmu.attach_device t.smmu ~device

let set_spt t ~cpu ~device ~iova ~pfn ~perms :
    (unit, [ `Already_mapped | `No_device ]) result =
  section t ~cpu ~what:"set_spt" @@ fun () ->
  Ticket_lock.with_lock t.lock ~cpu @@ fun () ->
  match Smmu.root_of t.smmu ~device with
  | None -> Error `No_device
  | Some root -> (
      match
        Page_table.plan_map t.smmu.Smmu.mem t.smmu.Smmu.geometry
          ~pool:t.smmu.Smmu.pool ~root ~va:iova ~target_pfn:pfn ~perms
      with
      | Ok writes ->
          List.iter
            (fun w ->
              Page_table.apply_write t.smmu.Smmu.mem w;
              record_write t ~cpu ~device w)
            writes;
          t.map_ops <- t.map_ops + 1;
          Ok ()
      | Error `Already_mapped -> Error `Already_mapped)

let clear_spt ?(skip_barrier = false) ?(skip_tlbi = false) t ~cpu ~device
    ~iova : (unit, [ `Not_mapped | `No_device ]) result =
  section t ~cpu ~what:"clear_spt" @@ fun () ->
  Ticket_lock.with_lock t.lock ~cpu @@ fun () ->
  match Smmu.root_of t.smmu ~device with
  | None -> Error `No_device
  | Some root -> (
      match
        Page_table.plan_unmap t.smmu.Smmu.mem t.smmu.Smmu.geometry ~root
          ~va:iova
      with
      | None -> Error `Not_mapped
      | Some w ->
          Page_table.apply_write t.smmu.Smmu.mem w;
          record_write t ~cpu ~device w;
          if not skip_barrier then Trace.record t.trace (Trace.E_dsb cpu);
          if not skip_tlbi then begin
            Trace.record t.trace
              (Trace.E_tlbi { cpu; scope = Trace.Tlbi_smmu_dev device });
            Smmu.invalidate_tlb_va t.smmu ~device ~iova
          end;
          t.unmap_ops <- t.unmap_ops + 1;
          Ok ())

let translate t ~device ~iova = Smmu.translate t.smmu ~device ~iova

let table_pages t =
  List.concat_map
    (fun (_, root) ->
      Page_table.table_pages t.smmu.Smmu.mem t.smmu.Smmu.geometry ~root)
    t.smmu.Smmu.contexts
