(** Unmodified KVM, as a model: the paper's performance baseline and
    security foil. The host kernel is trusted — it manages every VM's
    stage 2 directly, there is no ownership database and no scrubbing, so
    the host attacks that SeKVM denies all {e succeed} here. *)

open Machine

type vm = { vmid : int; npt : Npt.t; mutable vcpus : Vcpu_ctxt.t list }

type t = {
  mem : Phys_mem.t;
  geometry : Page_table.geometry;
  pool : Page_pool.t;
  cpus : Cpu.t array;
  trace : Trace.t;
  mutable vms : (int * vm) list;
  mutable next_vmid : int;
  mutable free_pfns : int list;
  mutable hypercalls : int;
}

val boot :
  n_pages:int -> n_cpus:int -> tlb_capacity:int ->
  geometry:Page_table.geometry -> t

val find_vm : t -> int -> vm
val register_vm : t -> int
val register_vcpu : t -> vmid:int -> vcpuid:int -> unit

exception Out_of_memory

val alloc_page : t -> int

val map_page : t -> cpu:int -> vmid:int -> ipa:int -> pfn:int -> unit
(** No ownership validation, no scrub. *)

val host_read : t -> pfn:int -> idx:int -> int
(** The host's linear map covers all memory. *)

val host_write : t -> pfn:int -> idx:int -> int -> unit
val guest_read : t -> cpu:int -> vmid:int -> addr:int -> (int, [ `Fault ]) result

val attack_read_vm_page : t -> pfn:int -> (int, unit) result
val attack_write_vm_page : t -> pfn:int -> int -> (unit, unit) result
val attack_steal_page :
  t -> cpu:int -> victim_pfn:int -> vmid:int -> ipa:int -> (unit, unit) result
