(** KCore's own EL2 stage-1 page table (paper §5.1).

    At boot, all physical memory is mapped one-to-one into a contiguous
    virtual region (like Linux's linear map on 64-bit). Afterwards the
    table changes in exactly one way: [remap_pfn] maps image pages into a
    contiguous {e remap region} above the linear map so the crypto library
    can hash scattered physical pages through contiguous virtual
    addresses. The single primitive that writes this table, [set_el2_pt],
    refuses to overwrite a valid entry — the Write-Once-Kernel-Mapping
    condition is enforced by construction and every write is recorded for
    the trace checker. *)

open Machine

type t = {
  mem : Phys_mem.t;
  geometry : Page_table.geometry;
  pool : Page_pool.t;
  root : int;
  trace : Trace.t;
  linear_pages : int;  (** linear map covers virtual pages [0, linear_pages) *)
  mutable next_remap_vp : int;  (** bump allocator over the remap region *)
}

exception Write_once_violation of { va_page : int }

let remap_region_start t = t.linear_pages

(** Record the page-table writes with the EL2 table id. *)
let record_writes t ~cpu writes =
  List.iter
    (fun w ->
      Trace.record t.trace
        (Trace.E_pt_write { cpu; table = Trace.T_el2; write = w; locked = true }))
    writes

(** The only EL2 page-table write primitive. [force] exists solely so the
    test-suite can manufacture a Write-Once violation for the checker to
    catch; KCore never passes it. *)
let set_el2_pt ?(force = false) t ~cpu ~va ~pfn ~perms =
  match
    Page_table.plan_map t.mem t.geometry ~pool:t.pool ~root:t.root ~va
      ~target_pfn:pfn ~perms
  with
  | Ok writes ->
      Page_table.apply_writes t.mem writes;
      record_writes t ~cpu writes;
      Ok ()
  | Error `Already_mapped ->
      if force then begin
        (* overwrite the existing leaf: the forbidden behavior *)
        let g = t.geometry in
        let rec leaf pfn_t level =
          let idx = Page_table.index g ~level va in
          match Pte.decode (Phys_mem.read t.mem ~pfn:pfn_t ~idx) with
          | Pte.Table next when level > 0 -> leaf next (level - 1)
          | _ -> (pfn_t, idx)
        in
        let tp, idx = leaf t.root (g.levels - 1) in
        let w =
          { Page_table.w_pfn = tp;
            w_idx = idx;
            w_old = Phys_mem.read t.mem ~pfn:tp ~idx;
            w_new = Pte.encode (Pte.Page (pfn, perms)) }
        in
        Page_table.apply_write t.mem w;
        record_writes t ~cpu [ w ];
        Ok ()
      end
      else Error `Already_mapped

(** Build the boot-time linear map: virtual page [p] -> physical frame [p]
    for every frame of physical memory. *)
let create ~mem ~geometry ~pool ~trace ~cpu =
  let root = Page_pool.alloc pool in
  let linear_pages = Phys_mem.n_pages mem in
  let t =
    { mem; geometry; pool; root; trace; linear_pages;
      next_remap_vp = linear_pages }
  in
  for p = 0 to linear_pages - 1 do
    match
      set_el2_pt t ~cpu ~va:(Page_table.page_va p) ~pfn:p ~perms:Pte.rw
    with
    | Ok () -> ()
    | Error `Already_mapped -> raise (Write_once_violation { va_page = p })
  done;
  t

(** [remap_pfn] (paper §5.1): map [pfn] at the next free virtual page of
    the remap region, read-only, and return that virtual address. Never
    unmaps or remaps. *)
let remap_pfn t ~cpu ~pfn =
  let vp = t.next_remap_vp in
  if Page_table.page_va vp >= 1 lsl Page_table.va_bits t.geometry then
    invalid_arg "El2_pt.remap_pfn: remap region exhausted";
  match
    set_el2_pt t ~cpu ~va:(Page_table.page_va vp) ~pfn ~perms:Pte.ro
  with
  | Ok () ->
      t.next_remap_vp <- vp + 1;
      Page_table.page_va vp
  | Error `Already_mapped -> raise (Write_once_violation { va_page = vp })

(** KCore's own translation (used when it hashes image pages through the
    remap region). *)
let translate t ~va =
  match Page_table.walk t.mem t.geometry ~root:t.root va with
  | Page_table.Mapped (pfn, perms) -> Some (pfn, perms)
  | Page_table.Fault _ -> None

(** Table pages of the EL2 tree (these must remain KCore-owned and never
    be mapped into any stage-2/SMMU table). *)
let table_pages t = Page_table.table_pages t.mem t.geometry ~root:t.root
