(** KServ: the untrusted host services of the retrofitted hypervisor.

    KServ performs VM management (it carries the complexity KCore sheds):
    it allocates backing pages, loads VM images, registers VMs and vCPUs
    with KCore, drives the vCPU run loop and resolves stage-2 fault exits.
    Nothing KServ does is trusted — every resource it hands to a VM goes
    through KCore validation, and the [attack_*] entry points below let the
    security tests exercise a {e malicious} KServ: trying to read or write
    VM memory, steal VM pages, double-map pages, or DMA into protected
    memory. Under SeKVM all of these must be denied; under the
    {!Kvm_baseline} they succeed, which is the paper's motivation. *)

open Machine

type t = {
  kcore : Kcore.t;
  mutable free_pfns : int list;  (** KServ-owned pages not yet donated *)
  mutable booted : (int * int list) list;  (** vmid -> image pfns *)
  mutable uart : int list;  (** userspace UART emulation buffer (newest first) *)
}

let create (kcore : Kcore.t) ~first_free_pfn =
  let free = ref [] in
  for pfn = Phys_mem.n_pages kcore.Kcore.mem - 1 downto first_free_pfn do
    if S2page.owner kcore.Kcore.s2page pfn = S2page.Kserv then
      free := pfn :: !free
  done;
  { kcore; free_pfns = !free; booted = []; uart = [] }

exception Out_of_memory

let alloc_page t =
  match t.free_pfns with
  | [] -> raise Out_of_memory
  | pfn :: rest ->
      t.free_pfns <- rest;
      pfn

let free_page t pfn = t.free_pfns <- pfn :: t.free_pfns

(** Write to a KServ-owned page through KServ's own stage 2 (faulting it
    in lazily, as the evaluation notes KServ's 4 KB mappings are). *)
let host_write t ~cpu ~pfn ~idx v =
  let addr = Page_table.page_va pfn + (idx * 8) in
  match Kcore.access_write t.kcore ~cpu ~vmid:Kcore.kserv_vmid ~addr v with
  | Ok () -> Ok ()
  | Error (Kcore.Stage2_fault _) -> (
      match Kcore.kserv_fault t.kcore ~cpu ~addr with
      | Ok () ->
          Kcore.access_write t.kcore ~cpu ~vmid:Kcore.kserv_vmid ~addr v
          |> Result.map_error (fun _ -> `Denied)
      | Error `Denied -> Error `Denied)
  | Error (Kcore.Perm_fault _) -> Error `Denied

let host_read t ~cpu ~pfn ~idx =
  let addr = Page_table.page_va pfn + (idx * 8) in
  match Kcore.access_read t.kcore ~cpu ~vmid:Kcore.kserv_vmid ~addr with
  | Ok v -> Ok v
  | Error (Kcore.Stage2_fault _) -> (
      match Kcore.kserv_fault t.kcore ~cpu ~addr with
      | Ok () ->
          Kcore.access_read t.kcore ~cpu ~vmid:Kcore.kserv_vmid ~addr
          |> Result.map_error (fun _ -> `Denied)
      | Error `Denied -> Error `Denied)
  | Error (Kcore.Perm_fault _) -> Error `Denied

(* ------------------------------------------------------------------ *)
(* VM management                                                       *)
(* ------------------------------------------------------------------ *)

(** Boot a VM with [image_pages] pages of image and [n_vcpus] vCPUs:
    allocate pages, write the image through KServ's own mappings, compute
    the (trusted, out-of-band) hash, and hand everything to KCore. *)
let boot_vm ?(tamper = false) t ~cpu ~n_vcpus ~image_pages :
    (int, [ `Bad_hash | `Denied ]) result =
  let kcore = t.kcore in
  let vmid = Kcore.register_vm kcore ~cpu in
  for v = 0 to n_vcpus - 1 do
    Kcore.register_vcpu kcore ~cpu ~vmid ~vcpuid:v
  done;
  let pfns = List.init image_pages (fun _ -> alloc_page t) in
  (* fault the pages into KServ's stage 2 and write the image *)
  List.iter
    (fun pfn ->
      match host_write t ~cpu ~pfn ~idx:0 0 with
      | Ok () -> ()
      | Error `Denied -> Kcore.panic "KServ cannot write its own page")
    pfns;
  Vm.write_image kcore.Kcore.mem ~vmid pfns;
  let expected_hash = Vm.image_hash kcore.Kcore.mem pfns in
  (* a malicious KServ modifies the image after hashing *)
  if tamper then
    Phys_mem.write kcore.Kcore.mem ~pfn:(List.hd pfns) ~idx:0 0xdead;
  match Kcore.set_vm_image kcore ~cpu ~vmid ~pfns ~expected_hash with
  | Ok () ->
      t.booted <- (vmid, pfns) :: t.booted;
      Ok vmid
  | Error e ->
      List.iter (free_page t) pfns;
      Error e

(** Resolve a stage-2 fault exit: donate a fresh page for the faulting
    IPA. *)
let handle_s2_fault t ~cpu ~vmid ~ipa : (unit, [ `Denied ]) result =
  let pfn = alloc_page t in
  match Kcore.map_page_to_vm t.kcore ~cpu ~vmid ~ipa ~pfn with
  | Ok () -> Ok ()
  | Error `Denied ->
      free_page t pfn;
      Error `Denied

(** The KVM run loop: enter the guest, execute its ops, exit to resolve
    faults and hypercalls, re-enter. Returns the per-op results. *)
let run_guest t ~cpu ~vmid ~vcpuid (ops : Vm.guest_op list) :
    Vm.op_result list =
  let kcore = t.kcore in
  Kcore.vcpu_load kcore ~cpu ~vmid ~vcpuid;
  let rec exec op retried : Vm.op_result =
    let retry () =
      if retried then Vm.R_denied
      else exec op true
    in
    match op with
    | Vm.G_compute _ -> Vm.R_unit
    | Vm.G_read ipa -> (
        match Kcore.access_read kcore ~cpu ~vmid ~addr:ipa with
        | Ok v -> Vm.R_value v
        | Error (Kcore.Perm_fault _) -> Vm.R_denied
        | Error (Kcore.Stage2_fault _) -> (
            (* world switch: exit to KServ, allocate, re-enter *)
            match handle_s2_fault t ~cpu ~vmid ~ipa with
            | Ok () -> retry ()
            | Error `Denied -> Vm.R_denied))
    | Vm.G_write (ipa, v) -> (
        match Kcore.access_write kcore ~cpu ~vmid ~addr:ipa v with
        | Ok () -> Vm.R_unit
        | Error (Kcore.Perm_fault _) -> Vm.R_denied
        | Error (Kcore.Stage2_fault _) -> (
            match handle_s2_fault t ~cpu ~vmid ~ipa with
            | Ok () -> retry ()
            | Error `Denied -> Vm.R_denied))
    | Vm.G_share ipa -> (
        match Kcore.vm_share_page kcore ~cpu ~vmid ~ipa with
        | Ok () -> Vm.R_unit
        | Error `Denied -> (
            (* page may not be populated yet: fault it in first *)
            match handle_s2_fault t ~cpu ~vmid ~ipa with
            | Ok () -> retry ()
            | Error `Denied -> Vm.R_denied))
    | Vm.G_unshare ipa -> (
        match Kcore.vm_unshare_page kcore ~cpu ~vmid ~ipa with
        | Ok () -> Vm.R_unit
        | Error `Denied -> Vm.R_denied)
    | Vm.G_ipi (to_vcpu, irq) -> (
        match Kcore.vgic_send_sgi kcore ~cpu ~vmid ~to_vcpu ~irq with
        | Ok () -> Vm.R_unit
        | Error `Denied -> Vm.R_denied)
    | Vm.G_ack_irq -> (
        match Kcore.vgic_ack kcore ~vmid ~vcpuid with
        | Some irq -> Vm.R_value irq
        | None -> Vm.R_value (-1))
    | Vm.G_uart_putc ch ->
        (* full userspace exit: KCore routes the byte; QEMU-side buffer *)
        let v = Kcore.uart_exit kcore ~cpu ~value:ch in
        t.uart <- v :: t.uart;
        Vm.R_unit
    | Vm.G_uart_getc -> Vm.R_value (Kcore.uart_read kcore ~cpu)
    | Vm.G_protect ipa -> (
        match Kcore.vm_protect_page kcore ~cpu ~vmid ~ipa with
        | Ok () -> Vm.R_unit
        | Error `Denied -> Vm.R_denied)
    | Vm.G_set_reg (i, v) ->
        (* register state lives in the vCPU context this CPU claimed at
           vcpu_load; the ACTIVE/INACTIVE protocol is what guarantees the
           value survives migration to another physical CPU *)
        let vm = Kcore.find_vm kcore vmid in
        Vcpu_ctxt.write_reg (Kcore.find_vcpu vm vcpuid) i v;
        Vm.R_unit
    | Vm.G_get_reg i ->
        let vm = Kcore.find_vm kcore vmid in
        Vm.R_value (Vcpu_ctxt.read_reg (Kcore.find_vcpu vm vcpuid) i)
  in
  let results = List.map (fun op -> exec op false) ops in
  Kcore.vcpu_put kcore ~cpu;
  results

(* ------------------------------------------------------------------ *)
(* Attacks: what a compromised host tries                              *)
(* ------------------------------------------------------------------ *)

(** Read a VM-owned page through KServ's stage 2. Must fault/deny. *)
let attack_read_vm_page t ~cpu ~pfn : (int, [ `Denied ]) result =
  host_read t ~cpu ~pfn ~idx:0

(** Write a VM-owned page. Must fault/deny. *)
let attack_write_vm_page t ~cpu ~pfn v : (unit, [ `Denied ]) result =
  host_write t ~cpu ~pfn ~idx:0 v

(** Donate a page KServ does not own (e.g. another VM's page) to a VM —
    stealing memory. KCore's ownership check must refuse. *)
let attack_steal_page t ~cpu ~victim_pfn ~vmid ~ipa :
    (unit, [ `Denied ]) result =
  Kcore.map_page_to_vm t.kcore ~cpu ~vmid ~ipa ~pfn:victim_pfn

(** Map a KCore- or VM-owned page for device DMA. Must be denied. *)
let attack_dma_map t ~cpu ~device ~pfn : (unit, [ `Denied ]) result =
  Kcore.smmu_map t.kcore ~cpu ~device ~iova:0 ~pfn
