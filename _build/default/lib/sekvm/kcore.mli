(** KCore: the trusted core of the retrofitted KVM hypervisor (paper §5).

    KCore runs at EL2, owns every page table (its EL2 table, stage-2
    tables for KServ and each VM, SMMU tables) and the page ownership
    database. KServ and VMs interact with it exclusively through the
    hypercall surface below. The security content mirrors the paper: no
    KCore page is ever reachable through a stage-2 or SMMU table, a page
    has one owner, and KServ reaches a VM page only while explicitly
    shared — all checked executably by {!check_invariants}. *)

open Machine

exception Kcore_panic of string

val panic : ('a, Format.formatter, unit, 'b) format4 -> 'a

type vm_state = Registered | Verified | Torn_down

val pp_vm_state : Format.formatter -> vm_state -> unit
val show_vm_state : vm_state -> string
val equal_vm_state : vm_state -> vm_state -> bool

type vm = {
  vmid : int;
  mutable vstate : vm_state;
  npt : Npt.t;
  mutable vcpus : Vcpu_ctxt.t list;
  mutable image_hash : int option;
  vm_lock : Ticket_lock.t;
  mutable next_image_ipa : int;
  vgic : Vgic.t;
}

type t = {
  mem : Phys_mem.t;
  geometry : Page_table.geometry;
  s2page : S2page.t;
  trace : Trace.t;
  oracle : Data_oracle.t;
  el2 : El2_pt.t;
  el2_pool : Page_pool.t;
  s2_pool : Page_pool.t;
  smmu_pool : Page_pool.t;
  smmu_ops : Smmu_ops.t;
  cpus : Cpu.t array;
  core_lock : Ticket_lock.t;
  mutable next_vmid : int;
  max_vms : int;
  mutable vms : (int * vm) list;
  kserv_npt : Npt.t;
  mutable smmu_owners : (int * S2page.owner) list;
  mutable hypercalls : int;
  mutable s2_faults : int;
  mutable vipis : int;
  mutable mmio_kernel : int;
  mutable mmio_user : int;
}

val kserv_vmid : int

(** {2 Boot} *)

type boot_config = {
  n_pages : int;
  n_cpus : int;
  tlb_capacity : int;
  stage2_geometry : Page_table.geometry;
  max_vms : int;
  el2_pool_pages : int;
  s2_pool_pages : int;
  smmu_pool_pages : int;
  kcore_static_pages : int;
  oracle_seed : int;
}

val default_boot_config : boot_config

val kserv_base : boot_config -> int
(** First frame KServ owns; everything below is KCore's. *)

val boot : boot_config -> t
val invalidate_tlbs : t -> Trace.tlbi_scope -> unit

(** {2 VM lifecycle} *)

val find_vm : t -> int -> vm
val gen_vmid : t -> cpu:int -> int
(** The [gen_vmid] of Fig. 1, under the core lock; panics at [max_vms]. *)

val register_vm : t -> cpu:int -> int
val register_vcpu : t -> cpu:int -> vmid:int -> vcpuid:int -> unit
val find_vcpu : vm -> int -> Vcpu_ctxt.t

val set_vm_image :
  t -> cpu:int -> vmid:int -> pfns:int list -> expected_hash:int ->
  (unit, [ `Bad_hash | `Denied ]) result
(** Authenticated boot (§5.1): withdraw the image pages from KServ, hash
    them through the EL2 remap region, and on success transfer them to
    the VM at consecutive guest addresses. *)

val teardown_vm : t -> cpu:int -> vmid:int -> unit
(** Unmap, scrub, and return every VM page to KServ. *)

(** {2 Running vCPUs} *)

val vcpu_load : t -> cpu:int -> vmid:int -> vcpuid:int -> unit
val vcpu_put : t -> cpu:int -> unit

(** {2 Memory access through stage 2} *)

type access_fault = Stage2_fault of int | Perm_fault of int

val pp_access_fault : Format.formatter -> access_fault -> unit
val show_access_fault : access_fault -> string
val equal_access_fault : access_fault -> access_fault -> bool

val translate_hw : t -> cpu:int -> vmid:int -> addr:int -> (int * Pte.perms) option
val access_read : t -> cpu:int -> vmid:int -> addr:int -> (int, access_fault) result
val access_write : t -> cpu:int -> vmid:int -> addr:int -> int -> (unit, access_fault) result

(** {2 Faults, donation, sharing} *)

val map_page_to_vm :
  t -> cpu:int -> vmid:int -> ipa:int -> pfn:int -> (unit, [ `Denied ]) result
(** Stage-2 fault resolution: validate KServ's donation (owner, sharing,
    existing mapping, residual references), withdraw it from KServ, scrub,
    transfer, map. Check-then-act: a denial leaves the system unchanged. *)

val kserv_fault : t -> cpu:int -> addr:int -> (unit, [ `Denied ]) result
val vm_share_page : t -> cpu:int -> vmid:int -> ipa:int -> (unit, [ `Denied ]) result
val vm_unshare_page : t -> cpu:int -> vmid:int -> ipa:int -> (unit, [ `Denied ]) result

val vm_protect_page : t -> cpu:int -> vmid:int -> ipa:int -> (unit, [ `Denied ]) result
(** Remap one of the VM's own pages read-only (guest W^X): clear + DSB +
    TLBI + set, per the Sequential-TLB-Invalidation discipline. *)

(** {2 SMMU} *)

val smmu_attach : t -> cpu:int -> device:int -> owner:S2page.owner -> (unit, [ `Denied ]) result
val smmu_map : t -> cpu:int -> device:int -> iova:int -> pfn:int -> (unit, [ `Denied ]) result
val smmu_unmap : t -> cpu:int -> device:int -> iova:int -> (unit, [ `Denied ]) result

(** {2 Snapshots and migration} *)

val snapshot_vm : t -> cpu:int -> vmid:int -> (int * int) list
(** (guest page, digest) pairs; the reads are oracle-mediated — the §4.3
    reason the strong Memory-Isolation condition is weakened. *)

val export_vm : t -> cpu:int -> vmid:int -> (int * int array) list
val import_vm :
  t -> cpu:int -> pages:(int * int array) list -> donate:(unit -> int) ->
  n_vcpus:int -> int

(** {2 Virtual interrupts and MMIO emulation} *)

val gic_dist_page : int
val uart_page : int
val is_mmio : addr:int -> bool
val vgic_send_sgi : t -> cpu:int -> vmid:int -> to_vcpu:int -> irq:int -> (unit, [ `Denied ]) result
val vgic_ack : t -> vmid:int -> vcpuid:int -> int option
val vgic_pending : t -> vmid:int -> vcpuid:int -> int
val uart_exit : t -> cpu:int -> value:int -> int

val uart_read : t -> cpu:int -> int
(** Guest UART input, modeled as a data-oracle draw: deterministic per
    seed, and the kernel's behavior never depends on the value. *)

(** {2 Executable security invariants} *)

type invariant_violation = { inv : string; detail : string }

val check_invariants : t -> invariant_violation list
(** §5.3's invariants: all table pages KCore-owned; no KCore page mapped
    anywhere; KServ reaches only its own or shared pages; VMs reach only
    their own pages; SMMU tables respect device ownership; SMMU enabled. *)
