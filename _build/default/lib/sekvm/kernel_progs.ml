(** The KCore kernel-code corpus, in the memmodel DSL.

    These are the synchronization-relevant code paths of §5, written as
    concurrent DSL programs so the VRM checkers can certify them: the
    ticket-lock-protected VMID allocator, the vCPU-context ownership
    protocol, VM-state updates under the per-VM lock, page-ownership
    bookkeeping for sharing, and multi-variable critical sections. Each
    corpus entry carries the metadata the certifier needs (which bases are
    lock-implementation internals, exploration budget) plus the expected
    verdict — including deliberately seeded buggy variants that specific
    conditions must reject.

    The [versions] list mirrors §5.6: the corpus is instantiated for each
    supported Linux version and both stage-2 geometries; the
    synchronization skeleton is identical across versions (which is why
    the paper could verify eight versions with modest effort), so each
    instantiation re-certifies the same conditions under its own
    configuration record. *)

open Memmodel
open Expr

type expect = {
  e_drf : bool;  (** DRF-Kernel should hold *)
  e_barrier : bool;  (** No-Barrier-Misuse should hold *)
  e_refine : bool;  (** behaviors(RM) ⊆ behaviors(SC) should hold *)
}

let all_good = { e_drf = true; e_barrier = true; e_refine = true }

type entry = {
  name : string;
  prog : Prog.t;
  exempt : string list;  (** lock-implementation bases, exempt from DRF *)
  initial_owners : (string * int) list;
      (** bases a CPU owns at fragment entry (e.g. the vCPU context a
          running CPU claimed before this code path) *)
  expect : expect;
  rm_config : Promising.config;
  note : string;
}

let lockcfg =
  { Promising.default_config with loop_fuel = 3; max_promises = 0;
    cert_depth = 32 }

let lockcfg1 = { lockcfg with max_promises = 1 }

(* ------------------------------------------------------------------ *)
(* gen_vmid under the core ticket lock (§5.2, Fig. 1 + Fig. 7)         *)
(* ------------------------------------------------------------------ *)

let gen_vmid_code ~barriers tid =
  let vmid = Reg.v "vmid" in
  let body =
    [ Instr.load vmid (at "next_vmid");
      Instr.if_
        (r vmid < c 4)
        [ Instr.store (at "next_vmid") (r vmid + c 1) ]
        [ Instr.Panic ] ]
  in
  Prog.thread tid
    (Ticket_lock.dsl_critical ~barriers ~name:"core"
       ~protects:[ "next_vmid" ] body)

let gen_vmid_prog ~barriers name =
  Prog.make ~name
    ~observables:
      [ Prog.Obs_reg (1, Reg.v "vmid"); Prog.Obs_reg (2, Reg.v "vmid") ]
    ~shared_bases:
      [ "next_vmid"; Ticket_lock.ticket_base "core";
        Ticket_lock.now_base "core" ]
    [ gen_vmid_code ~barriers 1; gen_vmid_code ~barriers 2 ]

let vmid_alloc =
  { name = "gen_vmid";
    prog = gen_vmid_prog ~barriers:true "gen_vmid";
    exempt = Ticket_lock.lock_bases "core";
    initial_owners = [];
    expect = all_good;
    rm_config = lockcfg1;
    note = "VMID allocation under the Linux ticket lock (Fig. 1/7)" }

let vmid_alloc_nobarrier =
  { name = "gen_vmid-nobarrier";
    prog = gen_vmid_prog ~barriers:false "gen_vmid-nobarrier";
    exempt = Ticket_lock.lock_bases "core";
    initial_owners = [];
    expect = { e_drf = true; e_barrier = false; e_refine = false };
    rm_config = lockcfg;
    note = "Example 2: same code without acquire/release; DRF on SC but \
            broken on Arm" }

(* ------------------------------------------------------------------ *)
(* vCPU context switch via the ownership variable (§5.2, Example 3)    *)
(* ------------------------------------------------------------------ *)

let vcpu_prog ~barriers name =
  let save =
    [ Instr.store (at "vcpu_ctxt") (c 42);
      Instr.push [ "vcpu_ctxt" ];
      (if barriers then Instr.store_rel (at "vcpu_state") (c 0)
       else Instr.store (at "vcpu_state") (c 0)) ]
  in
  let restore =
    [ (if barriers then Instr.load_acq (Reg.v "st") (at "vcpu_state")
       else Instr.load (Reg.v "st") (at "vcpu_state"));
      Instr.if_
        (r (Reg.v "st") = c 0)
        [ Instr.store (at "vcpu_state") (c 1);
          Instr.pull [ "vcpu_ctxt" ];
          Instr.load (Reg.v "ctxt") (at "vcpu_ctxt") ]
        [ Instr.move (Reg.v "ctxt") (c (-1)) ] ]
  in
  Prog.make ~name
    ~init:[ (Loc.v "vcpu_ctxt", 7); (Loc.v "vcpu_state", 1) ]
    ~observables:
      [ Prog.Obs_reg (2, Reg.v "st"); Prog.Obs_reg (2, Reg.v "ctxt") ]
    ~shared_bases:[ "vcpu_ctxt"; "vcpu_state" ]
    [ Prog.thread 1 save; Prog.thread 2 restore ]

let vcpu_switch =
  { name = "vcpu-switch";
    prog = vcpu_prog ~barriers:true "vcpu-switch";
    exempt = [ "vcpu_state" ];  (* the synchronization variable itself *)
    initial_owners = [ ("vcpu_ctxt", 0) ];  (* thread index 0 = the saver *)
    expect = all_good;
    rm_config = { lockcfg1 with loop_fuel = 4 };
    note = "ACTIVE/INACTIVE ownership protocol with release/acquire" }

let vcpu_switch_nobarrier =
  { name = "vcpu-switch-nobarrier";
    prog = vcpu_prog ~barriers:false "vcpu-switch-nobarrier";
    exempt = [ "vcpu_state" ];
    initial_owners = [ ("vcpu_ctxt", 0) ];
    expect = { e_drf = true; e_barrier = false; e_refine = false };
    rm_config = { lockcfg1 with loop_fuel = 4 };
    note = "Example 3: stale context restorable on Arm" }

(* ------------------------------------------------------------------ *)
(* Multi-variable critical section: VM state + boot bookkeeping        *)
(* ------------------------------------------------------------------ *)

let vm_boot_prog ~barriers name =
  (* two CPUs race to transition the VM from Registered(0) to
     Verified(1) and set the image hash; the lock must ensure exactly one
     wins and the hash matches the winner *)
  let work tid =
    let st = Reg.v "st" in
    Prog.thread tid
      (Ticket_lock.dsl_critical ~barriers ~name:"vm"
         ~protects:[ "vm_state"; "image_hash" ]
         [ Instr.load st (at "vm_state");
           Instr.if_
             (r st = c 0)
             [ Instr.store (at "vm_state") (c 1);
               Instr.store (at "image_hash") (c (Stdlib.( + ) 100 tid)) ]
             [] ])
  in
  Prog.make ~name
    ~observables:[ Prog.Obs_loc (Loc.v "vm_state"); Prog.Obs_loc (Loc.v "image_hash") ]
    ~shared_bases:
      ([ "vm_state"; "image_hash" ] @ Ticket_lock.lock_bases "vm")
    [ work 1; work 2 ]

let vm_boot =
  { name = "vm-boot-state";
    prog = vm_boot_prog ~barriers:true "vm-boot-state";
    exempt = Ticket_lock.lock_bases "vm";
    initial_owners = [];
    expect = all_good;
    rm_config = lockcfg1;
    note = "per-VM lock protects the state/image-hash pair during boot" }

(* ------------------------------------------------------------------ *)
(* Page sharing bookkeeping under the per-VM lock                      *)
(* ------------------------------------------------------------------ *)

let share_prog ~barriers name =
  (* CPU 1: VM shares a page (sets s2page.shared, bumps map_count);
     CPU 2: teardown path clears sharing. Both under the VM lock. *)
  let share =
    Prog.thread 1
      (Ticket_lock.dsl_critical ~barriers ~name:"vm"
         ~protects:[ "s2_shared"; "s2_mapcount" ]
         [ Instr.store (at "s2_shared") (c 1);
           Instr.load (Reg.v "mc") (at "s2_mapcount");
           Instr.store (at "s2_mapcount") (r (Reg.v "mc") + c 1) ])
  in
  let unshare =
    Prog.thread 2
      (Ticket_lock.dsl_critical ~barriers ~name:"vm"
         ~protects:[ "s2_shared"; "s2_mapcount" ]
         [ Instr.load (Reg.v "sh") (at "s2_shared");
           Instr.if_
             (r (Reg.v "sh") = c 1)
             [ Instr.store (at "s2_shared") (c 0);
               Instr.load (Reg.v "mc") (at "s2_mapcount");
               Instr.store (at "s2_mapcount") (r (Reg.v "mc") - c 1) ]
             [] ])
  in
  Prog.make ~name
    ~observables:
      [ Prog.Obs_loc (Loc.v "s2_shared"); Prog.Obs_loc (Loc.v "s2_mapcount") ]
    ~shared_bases:([ "s2_shared"; "s2_mapcount" ] @ Ticket_lock.lock_bases "vm")
    [ share; unshare ]

let share_page =
  { name = "share-page";
    prog = share_prog ~barriers:true "share-page";
    exempt = Ticket_lock.lock_bases "vm";
    initial_owners = [];
    expect = all_good;
    rm_config = lockcfg1;
    note = "s2page share/map_count updates under the per-VM lock" }

(* ------------------------------------------------------------------ *)
(* Page-table updates racing the MMU walker (the DRF exception)        *)
(* ------------------------------------------------------------------ *)

let pt_walker_prog ~barriers name =
  (* CPU 1 updates two PTE words inside the pt lock; CPU 2 plays the MMU
     hardware, reading both words with no synchronization whatsoever.
     The pte base is exempt from the ownership discipline — this is the
     DRF-Kernel side clause for page tables — so DRF and the barrier
     checker pass; but the walker's reads CAN be relaxed, so refinement
     fails. That is exactly why the paper discharges page tables with the
     Transactional-Page-Table condition instead of Theorem 2. *)
  let kernel =
    Prog.thread 1
      (Ticket_lock.dsl_critical ~barriers ~name:"pt" ~protects:[]
         [ Instr.store (at ~offset:(c 0) "pte") (c 0x20);
           Instr.store (at ~offset:(c 1) "pte") (c 0x21) ])
  in
  let walker =
    Prog.thread 2
      [ Instr.load (Reg.v "w1") (at ~offset:(c 1) "pte");
        Instr.load (Reg.v "w0") (at ~offset:(c 0) "pte") ]
  in
  Prog.make ~name
    ~init:[ (Loc.v ~index:0 "pte", 0x10); (Loc.v ~index:1 "pte", 0x11) ]
    ~observables:[ Prog.Obs_reg (2, Reg.v "w0"); Prog.Obs_reg (2, Reg.v "w1") ]
    ~shared_bases:("pte" :: Ticket_lock.lock_bases "pt")
    [ kernel; walker ]

let pt_walker_race =
  { name = "pt-walker-race";
    prog = pt_walker_prog ~barriers:true "pt-walker-race";
    exempt = "pte" :: Ticket_lock.lock_bases "pt";
    initial_owners = [];
    expect = { e_drf = true; e_barrier = true; e_refine = false };
    rm_config = lockcfg1;
    note = "the MMU-vs-kernel page-table race (Example 4's shape): exempt             from DRF, outside Theorem 2, discharged by the Transactional             and TLBI conditions instead" }

(* ------------------------------------------------------------------ *)
(* Extension: the MCS queue lock (see {!Mcs_lock})                     *)
(* ------------------------------------------------------------------ *)

let mcs_counter =
  { name = "mcs-counter";
    prog = Mcs_lock.counter_prog ~barriers:true "mcs-counter";
    exempt = Mcs_lock.lock_bases "m";
    initial_owners = [];
    expect = all_good;
    rm_config = lockcfg;
    note = "shared counter under the MCS queue lock (XCHG/CAS hand-off)" }

let mcs_handoff =
  { name = "mcs-handoff";
    prog = Mcs_lock.handoff_prog ~barriers:true "mcs-handoff";
    exempt = Mcs_lock.lock_bases "m";
    initial_owners = [ ("c", 0) ];  (* the owner holds the data at entry *)
    expect = all_good;
    rm_config = lockcfg1;
    note = "MCS lock hand-off to a queued waiter" }

let mcs_handoff_nobarrier =
  { name = "mcs-handoff-nobarrier";
    prog = Mcs_lock.handoff_prog ~barriers:false "mcs-handoff-nobarrier";
    exempt = Mcs_lock.lock_bases "m";
    initial_owners = [ ("c", 0) ];
    expect = { e_drf = true; e_barrier = false; e_refine = false };
    rm_config = lockcfg1;
    note = "MCS hand-off without release/acquire: stale data reachable" }

(* ------------------------------------------------------------------ *)
(* Seeded bugs beyond barrier omissions                                *)
(* ------------------------------------------------------------------ *)

let unlocked_counter =
  (* a shared counter updated with no lock at all: DRF-Kernel violation *)
  let bump tid =
    Prog.thread tid
      [ Instr.load (Reg.v "v") (at "counter");
        Instr.store (at "counter") (r (Reg.v "v") + c 1) ]
  in
  { name = "unlocked-counter";
    prog =
      Prog.make ~name:"unlocked-counter"
        ~observables:[ Prog.Obs_loc (Loc.v "counter") ]
        ~shared_bases:[ "counter" ]
        [ bump 1; bump 2 ];
    exempt = [];
    initial_owners = [];
    expect = { e_drf = false; e_barrier = true; e_refine = true };
    rm_config = lockcfg;
    note = "no pull/push, no lock: the DRF checker must reject" }

let push_without_pull =
  (* pushes a base it never pulled: ownership-discipline violation *)
  { name = "push-without-pull";
    prog =
      Prog.make ~name:"push-without-pull"
        ~observables:[ Prog.Obs_loc (Loc.v "counter") ]
        ~shared_bases:[ "counter" ]
        [ Prog.thread 1
            [ Instr.dmb;
              Instr.push [ "counter" ];
              Instr.store (at "counter") (c 1) ];
          Prog.thread 2 [ Instr.Nop ] ];
    exempt = [];
    initial_owners = [];
    expect = { e_drf = false; e_barrier = true; e_refine = true };
    rm_config = lockcfg;
    note = "push of a free base: the ownership validator must reject" }

(* ------------------------------------------------------------------ *)
(* The corpus, per verified KVM version (§5.6)                         *)
(* ------------------------------------------------------------------ *)

let corpus =
  [ vmid_alloc; vcpu_switch; vm_boot; share_page; mcs_counter; mcs_handoff ]

let buggy_corpus =
  [ vmid_alloc_nobarrier; vcpu_switch_nobarrier; mcs_handoff_nobarrier;
    unlocked_counter; push_without_pull ]

(** Not buggy, but outside Theorem 2's scope: page-table words racing the
    MMU walker. In the certificate it documents {e why} conditions 4 and
    5 exist. *)
let boundary_corpus = [ pt_walker_race ]

type version = {
  linux : string;
  stage2_levels : int;
}

(** The eight retrofitted KVM versions the paper verifies, each available
    with both stage-2 geometries where supported. *)
let versions =
  [ { linux = "4.18"; stage2_levels = 4 };
    { linux = "4.18"; stage2_levels = 3 };
    { linux = "4.20"; stage2_levels = 4 };
    { linux = "5.0"; stage2_levels = 4 };
    { linux = "5.1"; stage2_levels = 4 };
    { linux = "5.2"; stage2_levels = 4 };
    { linux = "5.3"; stage2_levels = 4 };
    { linux = "5.4"; stage2_levels = 4 };
    { linux = "5.4"; stage2_levels = 3 };
    { linux = "5.5"; stage2_levels = 4 } ]
