(** Guest virtual machines: workloads expressed as sequences of guest
    operations against guest-physical (IPA) addresses.

    A guest op either touches memory (translated through the VM's stage-2
    table and the running CPU's TLB by {!Kcore.access_read}/[access_write]),
    issues a hypercall (page sharing for paravirtual I/O), or spins on
    compute. Stage-2 faults exit to the host; {!Kserv.run_guest} is the
    driver that resolves them and re-enters the guest — the same exit/enter
    loop as real KVM. *)

type guest_op =
  | G_read of int  (** load from IPA *)
  | G_write of int * int  (** store value to IPA *)
  | G_share of int  (** hypercall: share the page holding IPA with KServ *)
  | G_unshare of int
  | G_compute of int  (** busy work: no hypervisor involvement *)
  | G_ipi of int * int  (** SGI to (vcpuid, irq): Table 2's Virtual IPI *)
  | G_ack_irq  (** acknowledge the oldest pending interrupt *)
  | G_uart_putc of int  (** MMIO write to the userspace-emulated UART *)
  | G_uart_getc  (** MMIO read: external input via the data oracle *)
  | G_protect of int  (** hypercall: write-protect the page holding IPA *)
  | G_set_reg of int * int  (** write a guest general-purpose register *)
  | G_get_reg of int  (** read a guest general-purpose register *)
[@@deriving show, eq]

(** Outcome of a single guest operation. *)
type op_result =
  | R_value of int
  | R_unit
  | R_denied
[@@deriving show, eq]

(** A tiny "boot payload": page contents a VM image is made of. The
    checksum over these pages is the image hash KServ must present. *)
let image_words ~vmid ~page i = (vmid * 0x1000) + (page * 0x10) + (i mod 7)

let write_image mem ~vmid pfns =
  List.iteri
    (fun page pfn ->
      for i = 0 to Machine.Phys_mem.entries_per_page - 1 do
        Machine.Phys_mem.write mem ~pfn ~idx:i (image_words ~vmid ~page i)
      done)
    pfns

let image_hash mem pfns =
  List.fold_left
    (fun acc pfn -> (acc * 0x01000193) lxor Machine.Phys_mem.digest_page mem pfn)
    0x811c9dc5 pfns

(** Simple guest workloads used by the examples and tests. *)
let touch_pages ~first_ipa_page ~n : guest_op list =
  List.concat
    (List.init n (fun i ->
         let ipa = Machine.Page_table.page_va (first_ipa_page + i) in
         [ G_write (ipa, 0xbeef + i); G_read ipa ]))

(** An IPI ping-pong: vCPU [me] signals [peer] and drains its own queue. *)
let ipi_round ~peer ~rounds : guest_op list =
  List.concat (List.init rounds (fun i -> [ G_ipi (peer, i mod 16); G_ack_irq ]))

let virtio_round ~ring_ipa ~payload : guest_op list =
  [ G_share ring_ipa; G_write (ring_ipa, payload); G_read ring_ipa;
    G_unshare ring_ipa ]
