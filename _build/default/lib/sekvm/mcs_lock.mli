(** MCS queue locks, runtime and DSL renditions — the corpus extension
    showing the VRM checkers certifying a second, structurally different
    synchronization primitive (XCHG/CAS hand-off through per-CPU queue
    nodes). *)

type t = {
  name : string;
  mutable queue : int list;  (** waiting CPUs, head = owner *)
  mutable acquisitions : int;
  mutable max_queue : int;
}

exception Lock_error of string

val create : string -> t
val acquire : t -> cpu:int -> unit
val release : t -> cpu:int -> unit
val with_lock : t -> cpu:int -> (unit -> 'a) -> 'a

(** {2 DSL rendition} *)

val tail_base : string -> string
val locked_base : string -> string
val next_base : string -> string
val lock_bases : string -> string list
val nil : int

val dsl_acquire :
  ?barriers:bool -> name:string -> protects:string list -> cpu:int ->
  unit -> Memmodel.Instr.t list

val dsl_release :
  ?barriers:bool -> name:string -> protects:string list -> cpu:int ->
  unit -> Memmodel.Instr.t list

val dsl_critical :
  ?barriers:bool -> name:string -> protects:string list -> cpu:int ->
  Memmodel.Instr.t list -> Memmodel.Instr.t list

val counter_prog : barriers:bool -> string -> Memmodel.Prog.t
(** Two CPUs increment a shared counter under the MCS lock. *)

val handoff_prog : barriers:bool -> string -> Memmodel.Prog.t
(** The focused owner-to-queued-waiter hand-off fragment; without
    barriers the flag store can be promised ahead of the protected write
    (the MCS shape of Example 3). *)
