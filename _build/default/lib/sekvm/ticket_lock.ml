(** Ticket locks, in two renditions.

    {b Runtime lock} — used by the executable hypervisor simulation. The
    simulator interleaves CPUs at handler granularity, so the lock acts as
    a discipline checker (acquire of a held lock or release by a non-holder
    is a bug in our hypervisor logic) and a contention counter feeding the
    performance model.

    {b DSL rendition} — the Linux arm64 ticket lock of the paper's Fig. 7,
    as a kernel-DSL instruction sequence: [fetch_and_inc] on [ticket],
    acquire-loads of [now] in the spin loop, release-store on unlock, plus
    the [pull]/[push] ghost annotations right where Fig. 7 places them.
    [barriers:false] gives the §2 Example 2 variant that is correct on SC
    and broken on Arm. These program fragments are what the VRM checkers
    (DRF-Kernel, No-Barrier-Misuse) analyze. *)

(* ------------------------------------------------------------------ *)
(* Runtime lock                                                        *)
(* ------------------------------------------------------------------ *)

type t = {
  name : string;
  mutable ticket : int;
  mutable now : int;
  mutable holder : int option;  (** CPU id *)
  mutable acquisitions : int;
  mutable contentions : int;  (** acquires that found the lock held *)
}

exception Lock_error of string

let create name =
  { name; ticket = 0; now = 0; holder = None; acquisitions = 0; contentions = 0 }

let acquire t ~cpu =
  (match t.holder with
  | Some c ->
      t.contentions <- t.contentions + 1;
      raise
        (Lock_error
           (Printf.sprintf "lock %s: CPU %d acquire while held by CPU %d"
              t.name cpu c))
  | None -> ());
  let my = t.ticket in
  t.ticket <- t.ticket + 1;
  if my <> t.now then
    raise (Lock_error (Printf.sprintf "lock %s: ticket skew" t.name));
  t.holder <- Some cpu;
  t.acquisitions <- t.acquisitions + 1

let release t ~cpu =
  match t.holder with
  | Some c when c = cpu ->
      t.holder <- None;
      t.now <- t.now + 1
  | Some c ->
      raise
        (Lock_error
           (Printf.sprintf "lock %s: CPU %d releases lock held by CPU %d"
              t.name cpu c))
  | None ->
      raise
        (Lock_error (Printf.sprintf "lock %s: release of free lock" t.name))

let holder t = t.holder
let is_held t = t.holder <> None

(** Run [f] with the lock held; the canonical usage inside KCore. *)
let with_lock t ~cpu f =
  acquire t ~cpu;
  match f () with
  | v ->
      release t ~cpu;
      v
  | exception e ->
      release t ~cpu;
      raise e

(* ------------------------------------------------------------------ *)
(* DSL rendition (Fig. 7)                                              *)
(* ------------------------------------------------------------------ *)

open Memmodel

(** Shared-variable bases of a DSL lock instance. *)
let ticket_base name = name ^ ".ticket"
let now_base name = name ^ ".now"

let lock_bases name = [ ticket_base name; now_base name ]

(** [dsl_acquire ~barriers ~name ~protects] — Fig. 7 lines 1-5. The
    [pull] of the protected footprint sits right after the spin loop, as
    in the figure. *)
let dsl_acquire ?(barriers = true) ~name ~protects () : Instr.t list =
  let my = Reg.v (name ^ ".my_ticket") in
  let cur = Reg.v (name ^ ".cur") in
  let ticket = Expr.at (ticket_base name) in
  let now = Expr.at (now_base name) in
  let ord = if barriers then Instr.Acquire else Instr.Plain in
  [ Instr.faa ~order:ord my ticket (Expr.c 1);
    Instr.load ~order:ord cur now;
    Instr.while_ Expr.(r cur <> r my) [ Instr.load ~order:ord cur now ];
    Instr.pull protects ]

(** [dsl_release ~barriers ~name ~protects] — Fig. 7 lines 6-8:
    [push(); now++(release)]. The releasing store uses the holder's ticket
    (now = my_ticket while the lock is held). *)
let dsl_release ?(barriers = true) ~name ~protects () : Instr.t list =
  let my = Reg.v (name ^ ".my_ticket") in
  let now = Expr.at (now_base name) in
  [ Instr.push protects;
    (if barriers then Instr.store_rel now Expr.(r my + c 1)
     else Instr.store now Expr.(r my + c 1)) ]

(** A whole critical section: acquire; body; release. *)
let dsl_critical ?(barriers = true) ~name ~protects body : Instr.t list =
  dsl_acquire ~barriers ~name ~protects ()
  @ body
  @ dsl_release ~barriers ~name ~protects ()
