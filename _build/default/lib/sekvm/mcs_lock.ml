(** MCS queue locks, runtime and DSL renditions.

    The paper verifies SeKVM with Linux's ticket lock; CertiKOS's verified
    MCS lock (Kim et al., APLAS'17) and VSync's push-button verification of
    queue locks on weak memory are the natural comparison points. This
    module extends the corpus with an MCS lock so the VRM checkers certify
    a second, structurally different synchronization primitive: ownership
    hand-off happens through per-CPU queue nodes rather than a global
    ticket, the atomic operations are exchange and compare-and-swap rather
    than fetch-and-increment, and the barriers sit in different places
    (acquire on the spin-load and on the tail exchange; release on the
    successor hand-off store and on the tail CAS).

    {b Runtime lock} — a queue of CPU ids with the same discipline-checking
    role as {!Ticket_lock}: in the handler-granularity simulator it
    verifies usage (acquire of a held lock is a bug) and counts queuing.

    {b DSL rendition} — the classic two-word-per-CPU MCS protocol:

    {v
    acquire(i):  next[i] := NIL; locked[i] := 1;
                 pred := XCHG(tail, i)          (acquire+release)
                 if pred != NIL:
                     next[pred] := i
                     while LDAR(locked[i]) = 1: spin
    release(i):  old := CAS(tail, i, NIL)       (release)
                 if old != i:                    (a successor exists/arrives)
                     while next[i] = NIL: spin
                     STLR(locked[next[i]]) := 0
    v}

    CPU ids are encoded off-by-one ([i+1]) so that 0 serves as NIL. *)

open Memmodel

(* ------------------------------------------------------------------ *)
(* Runtime lock                                                        *)
(* ------------------------------------------------------------------ *)

type t = {
  name : string;
  mutable queue : int list;  (** waiting CPUs, head = owner *)
  mutable acquisitions : int;
  mutable max_queue : int;
}

exception Lock_error of string

let create name = { name; queue = []; acquisitions = 0; max_queue = 0 }

let acquire t ~cpu =
  if List.mem cpu t.queue then
    raise
      (Lock_error
         (Printf.sprintf "mcs %s: CPU %d already queued" t.name cpu));
  (match t.queue with
  | [] -> ()
  | owner :: _ ->
      raise
        (Lock_error
           (Printf.sprintf
              "mcs %s: CPU %d acquire while CPU %d holds it (simulator \
               locks are handler-scoped)"
              t.name cpu owner)));
  t.queue <- [ cpu ];
  t.acquisitions <- t.acquisitions + 1;
  t.max_queue <- max t.max_queue (List.length t.queue)

let release t ~cpu =
  match t.queue with
  | owner :: rest when owner = cpu -> t.queue <- rest
  | owner :: _ ->
      raise
        (Lock_error
           (Printf.sprintf "mcs %s: CPU %d releases lock held by %d" t.name
              cpu owner))
  | [] ->
      raise (Lock_error (Printf.sprintf "mcs %s: release of free lock" t.name))

let with_lock t ~cpu f =
  acquire t ~cpu;
  match f () with
  | v ->
      release t ~cpu;
      v
  | exception e ->
      release t ~cpu;
      raise e

(* ------------------------------------------------------------------ *)
(* DSL rendition                                                       *)
(* ------------------------------------------------------------------ *)

let tail_base name = name ^ ".tail"
let locked_base name = name ^ ".locked"
let next_base name = name ^ ".next"

let lock_bases name = [ tail_base name; locked_base name; next_base name ]

let nil = 0

(** [dsl_acquire ~barriers ~name ~protects ~cpu ()] — the queueing
    protocol for CPU [cpu] (encoded as [cpu+1] in the queue words). *)
let dsl_acquire ?(barriers = true) ~name ~protects ~cpu () : Instr.t list =
  let me = cpu + 1 in
  let pred = Reg.v (Printf.sprintf "%s.pred%d" name cpu) in
  let lk = Reg.v (Printf.sprintf "%s.lk%d" name cpu) in
  let tail = Expr.at (tail_base name) in
  let locked i = Expr.at ~offset:i (locked_base name) in
  let next i = Expr.at ~offset:i (next_base name) in
  let xord = if barriers then Instr.Acq_rel else Instr.Plain in
  let sord = if barriers then Instr.Acquire else Instr.Plain in
  [ Instr.store (next (Expr.c me)) (Expr.c nil);
    Instr.store (locked (Expr.c me)) (Expr.c 1);
    Instr.xchg ~order:xord pred tail (Expr.c me);
    Instr.if_
      Expr.(r pred <> c nil)
      [ (* link behind the predecessor and spin on our own flag *)
        Instr.store (next Expr.(r pred)) (Expr.c me);
        Instr.load ~order:sord lk (locked (Expr.c me));
        Instr.while_ Expr.(r lk = c 1)
          [ Instr.load ~order:sord lk (locked (Expr.c me)) ] ]
      [];
    Instr.pull protects ]

(** [dsl_release ~barriers ~name ~protects ~cpu ()] — hand the lock to the
    successor, or reset the tail if there is none. *)
let dsl_release ?(barriers = true) ~name ~protects ~cpu () : Instr.t list =
  let me = cpu + 1 in
  let old = Reg.v (Printf.sprintf "%s.old%d" name cpu) in
  let nxt = Reg.v (Printf.sprintf "%s.nxt%d" name cpu) in
  let tail = Expr.at (tail_base name) in
  let locked i = Expr.at ~offset:i (locked_base name) in
  let next i = Expr.at ~offset:i (next_base name) in
  let cord = if barriers then Instr.Release else Instr.Plain in
  [ Instr.push protects;
    Instr.cas ~order:cord old tail ~expected:(Expr.c me)
      ~desired:(Expr.c nil);
    Instr.if_
      Expr.(r old <> c me)
      [ (* someone queued behind us: wait for the link, then hand off *)
        Instr.load nxt (next (Expr.c me));
        Instr.while_ Expr.(r nxt = c nil)
          [ Instr.load nxt (next (Expr.c me)) ];
        (if barriers then
           Instr.store_rel (locked Expr.(r nxt)) (Expr.c 0)
         else Instr.store (locked Expr.(r nxt)) (Expr.c 0)) ]
      [] ]

let dsl_critical ?(barriers = true) ~name ~protects ~cpu body : Instr.t list
    =
  dsl_acquire ~barriers ~name ~protects ~cpu ()
  @ body
  @ dsl_release ~barriers ~name ~protects ~cpu ()

(** The MCS-protected shared counter, as a corpus program: two CPUs each
    increment [c] once inside the lock. *)
let counter_prog ~barriers name : Prog.t =
  let worker cpu =
    Prog.thread (cpu + 1)
      (dsl_critical ~barriers ~name:"m" ~protects:[ "c" ] ~cpu
         [ Instr.load (Reg.v (Printf.sprintf "v%d" cpu)) (Expr.at "c");
           Instr.store (Expr.at "c")
             Expr.(r (Reg.v (Printf.sprintf "v%d" cpu)) + c 1) ])
  in
  Prog.make ~name
    ~observables:[ Prog.Obs_loc (Loc.v "c") ]
    ~shared_bases:("c" :: lock_bases "m")
    [ worker 0; worker 1 ]

(** A focused hand-off fragment for the relaxed-memory demonstration:
    CPU 0 holds the lock with CPU 1 already queued behind it; CPU 0 writes
    the protected data and releases (CAS on the tail fails, so it stores
    to the successor's flag); CPU 1 spins on its flag and then reads the
    data. Without the release/acquire annotations, the flag store can be
    promised ahead of the data write and CPU 1 reads stale data — the MCS
    shape of the paper's Example 3. *)
let handoff_prog ~barriers name : Prog.t =
  let locked i = Expr.at ~offset:(Expr.c i) (locked_base "m") in
  let next i = Expr.at ~offset:(Expr.c i) (next_base "m") in
  let tail = Expr.at (tail_base "m") in
  let owner =
    [ Instr.store (Expr.at "c") (Expr.c 42);
      Instr.push [ "c" ] ]
    @ [ Instr.cas
          ~order:(if barriers then Instr.Release else Instr.Plain)
          (Reg.v "old") tail ~expected:(Expr.c 1) ~desired:(Expr.c 0);
        Instr.if_
          Expr.(r (Reg.v "old") <> c 1)
          [ Instr.load (Reg.v "nxt") (next 1);
            (if barriers then
               Instr.store_rel (locked 2) (Expr.c 0)
             else Instr.store (locked 2) (Expr.c 0)) ]
          [] ]
  in
  let waiter =
    let ord = if barriers then Instr.Acquire else Instr.Plain in
    [ Instr.load ~order:ord (Reg.v "lk") (locked 2);
      Instr.while_
        Expr.(r (Reg.v "lk") = c 1)
        [ Instr.load ~order:ord (Reg.v "lk") (locked 2) ];
      Instr.pull [ "c" ];
      Instr.load (Reg.v "data") (Expr.at "c") ]
  in
  Prog.make ~name
    ~init:
      [ (Loc.v (tail_base "m"), 2);
        (Loc.v ~index:1 (next_base "m"), 2);
        (Loc.v ~index:2 (locked_base "m"), 1);
        (Loc.v "c", 0) ]
    ~observables:[ Prog.Obs_reg (2, Reg.v "data") ]
    ~shared_bases:("c" :: lock_bases "m")
    [ Prog.thread 1 owner; Prog.thread 2 waiter ]
