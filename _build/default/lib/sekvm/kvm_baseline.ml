(** Unmodified KVM, as a model: the baseline the paper evaluates against
    and the security foil its retrofit removes.

    In mainline KVM the host kernel is trusted: it manages every VM's
    stage-2 table directly, there is no ownership database, no scrubbing
    on reuse, and the host's own mapping covers all of physical memory. A
    compromised host can therefore read and write guest memory at will.
    The [attack_*] functions mirror {!Kserv}'s and {e succeed} here — the
    integration tests assert exactly that asymmetry. The structure also
    serves the performance model: the hypercall paths do strictly less
    work than KCore's (no ownership checks, no EL2 boundary crossing for
    KServ work). *)

open Machine

type vm = {
  vmid : int;
  npt : Npt.t;
  mutable vcpus : Vcpu_ctxt.t list;
}

type t = {
  mem : Phys_mem.t;
  geometry : Page_table.geometry;
  pool : Page_pool.t;
  cpus : Cpu.t array;
  trace : Trace.t;
  mutable vms : (int * vm) list;
  mutable next_vmid : int;
  mutable free_pfns : int list;
  mutable hypercalls : int;
}

let boot ~n_pages ~n_cpus ~tlb_capacity ~geometry =
  let mem = Phys_mem.create n_pages in
  let trace = Trace.create () in
  trace.Trace.enabled <- false;
  let pool_pages = min 192 (n_pages / 4) in
  let pool = Page_pool.create ~name:"kvm-s2" ~mem ~first_pfn:16 ~n_pages:pool_pages in
  { mem;
    geometry;
    pool;
    cpus = Array.init n_cpus (fun id -> Cpu.create ~id ~tlb_capacity);
    trace;
    vms = [];
    next_vmid = 1;
    free_pfns = List.init (n_pages - 16 - pool_pages) (fun i -> 16 + pool_pages + i);
    hypercalls = 0 }

let find_vm t vmid =
  match List.assoc_opt vmid t.vms with
  | Some vm -> vm
  | None -> invalid_arg "Kvm_baseline: unknown vmid"

let register_vm t =
  t.hypercalls <- t.hypercalls + 1;
  let vmid = t.next_vmid in
  t.next_vmid <- vmid + 1;
  let npt =
    Npt.create ~mem:t.mem ~geometry:t.geometry ~pool:t.pool ~vmid
      ~trace:t.trace ~invalidate:(fun scope ->
        Array.iter
          (fun (c : Cpu.t) ->
            match scope with
            | Trace.Tlbi_all -> Tlb.invalidate_all c.Cpu.tlb
            | Trace.Tlbi_vmid v -> Tlb.invalidate_vmid c.Cpu.tlb ~vmid:v
            | Trace.Tlbi_va (v, vp) -> Tlb.invalidate_va c.Cpu.tlb ~vmid:v ~vp
            | Trace.Tlbi_smmu_dev _ -> ())
          t.cpus)
  in
  t.vms <- (vmid, { vmid; npt; vcpus = [] }) :: t.vms;
  vmid

let register_vcpu t ~vmid ~vcpuid =
  let vm = find_vm t vmid in
  vm.vcpus <- Vcpu_ctxt.create ~vmid ~vcpuid :: vm.vcpus

exception Out_of_memory

let alloc_page t =
  match t.free_pfns with
  | [] -> raise Out_of_memory
  | pfn :: rest ->
      t.free_pfns <- rest;
      pfn

(** The host maps whatever page it likes into whatever VM it likes; no
    ownership validation, no scrub. *)
let map_page t ~cpu ~vmid ~ipa ~pfn =
  t.hypercalls <- t.hypercalls + 1;
  let vm = find_vm t vmid in
  match Npt.set_s2pt vm.npt ~cpu ~ipa ~pfn ~perms:Pte.rw with
  | Ok () -> ()
  | Error `Already_mapped -> ()

(** Host (EL1) access: the host kernel's linear map covers all memory. *)
let host_read t ~pfn ~idx = Phys_mem.read t.mem ~pfn ~idx
let host_write t ~pfn ~idx v = Phys_mem.write t.mem ~pfn ~idx v

let guest_read t ~cpu ~vmid ~addr =
  let vm = find_vm t vmid in
  let c = t.cpus.(cpu) in
  let vp = Page_table.va_page addr in
  match Tlb.lookup c.Cpu.tlb ~vmid ~vp with
  | Some (pfn, _) -> Ok (Phys_mem.read t.mem ~pfn ~idx:0)
  | None -> (
      match Npt.translate vm.npt ~ipa:addr with
      | Some (pfn, perms) ->
          Tlb.fill c.Cpu.tlb ~vmid ~vp ~pfn ~perms;
          Ok (Phys_mem.read t.mem ~pfn ~idx:0)
      | None -> Error `Fault)

(** Attacks from a compromised host: all succeed on unmodified KVM. *)
let attack_read_vm_page t ~pfn = Ok (host_read t ~pfn ~idx:0)

let attack_write_vm_page t ~pfn v =
  host_write t ~pfn ~idx:0 v;
  Ok ()

let attack_steal_page t ~cpu ~victim_pfn ~vmid ~ipa =
  map_page t ~cpu ~vmid ~ipa ~pfn:victim_pfn;
  Ok ()
