(** Data oracles (paper §5.3): KCore's reads of untrusted memory are
    modeled as draws from a value stream independent of the untrusted
    program — the independence the Weak-Memory-Isolation condition needs.
    Deterministic (seeded), with a replay mode for the isolation
    experiments. *)

type t

val create : seed:int -> t
val draw : t -> int
val draws : t -> int

val stream : t -> int list
(** The values drawn so far, oldest first. *)

val replaying : stream:int list -> seed:int -> t
(** An oracle whose draws replay [stream]; raises [Invalid_argument] when
    exhausted. *)
