(** Execution-trace recorder for KCore.

    Every page-table write, barrier, TLB invalidation and lock transition
    performed by the hypervisor is recorded; the VRM condition checkers
    (Write-Once-Kernel-Mapping, Transactional-Page-Table,
    Sequential-TLB-Invalidation) are judgments over these traces, so the
    conditions are checked against what the implementation {e actually
    did}, not just against its source text. *)

type table_id =
  | T_el2  (** KCore's own EL2 page table *)
  | T_stage2 of int  (** stage-2 table of VMID *)
  | T_smmu of int  (** SMMU table of device id *)
[@@deriving show, eq, ord]

type tlbi_scope =
  | Tlbi_vmid of int
  | Tlbi_va of int * int  (** vmid, virtual page *)
  | Tlbi_smmu_dev of int
  | Tlbi_all
[@@deriving show, eq]

type event =
  | E_pt_write of {
      cpu : int;
      table : table_id;
      write : Machine.Page_table.pt_write;
      locked : bool;  (** was the owning lock held? *)
    }
  | E_dsb of int  (** cpu *)
  | E_tlbi of { cpu : int; scope : tlbi_scope }
  | E_lock_acquire of { cpu : int; lock : string }
  | E_lock_release of { cpu : int; lock : string }
  | E_mem_read of { cpu : int; pfn : int; owner : Machine.S2page.owner }
      (** KCore reads of non-KCore-owned memory (Weak-Memory-Isolation) *)
  | E_oracle_read of { cpu : int; pfn : int }
      (** same read, but routed through the data oracle *)
  | E_section_begin of { cpu : int; what : string }
  | E_section_end of { cpu : int; what : string }

type t = { mutable events : event list (* newest first *); mutable enabled : bool }

let create () = { events = []; enabled = true }

let record t e = if t.enabled then t.events <- e :: t.events

let events t = List.rev t.events

let clear t = t.events <- []

let length t = List.length t.events

(** Events between matching section markers, per cpu. *)
let sections t ~what =
  let rec go acc cur = function
    | [] -> List.rev acc
    | E_section_begin { cpu; what = w } :: rest when w = what ->
        go acc ((cpu, ref []) :: cur) rest
    | E_section_end { cpu; what = w } :: rest when w = what ->
        let finished, still =
          List.partition (fun (c, _) -> c = cpu) cur
        in
        let acc =
          List.fold_left
            (fun acc (_, evs) -> (List.rev !evs) :: acc)
            acc finished
        in
        go acc still rest
    | e :: rest ->
        List.iter (fun (_, evs) -> evs := e :: !evs) cur;
        go acc cur rest
  in
  go [] [] (events t)
