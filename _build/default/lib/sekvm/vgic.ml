(** A minimal in-kernel virtual interrupt controller (vGIC-lite).

    Per-VM pending state for software-generated interrupts (SGIs — the
    virtual IPIs of Table 2's fourth microbenchmark) and private
    interrupts. The real vGIC's distributor/redistributor machinery is
    reduced to the part the hypervisor paths exercise: injecting an
    interrupt for a target vCPU and letting that vCPU acknowledge it in
    FIFO order. *)

type t = {
  mutable pending : (int * int) list;  (** (vcpuid, irq), oldest first *)
  mutable injected : int;
  mutable acked : int;
}

let create () = { pending = []; injected = 0; acked = 0 }

let inject t ~vcpuid ~irq =
  t.pending <- t.pending @ [ (vcpuid, irq) ];
  t.injected <- t.injected + 1

(** Acknowledge (pop) the oldest pending interrupt of [vcpuid]. *)
let take t ~vcpuid : int option =
  let rec go acc = function
    | [] -> None
    | (v, irq) :: rest when v = vcpuid ->
        t.pending <- List.rev_append acc rest;
        t.acked <- t.acked + 1;
        Some irq
    | e :: rest -> go (e :: acc) rest
  in
  go [] t.pending

let pending t ~vcpuid =
  List.length (List.filter (fun (v, _) -> v = vcpuid) t.pending)
