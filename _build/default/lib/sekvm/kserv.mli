(** KServ: the untrusted host services. It carries the complexity KCore
    sheds — page allocation, VM image loading, registration, the vCPU run
    loop, fault resolution — and nothing it does is trusted. The
    [attack_*] entry points let the security tests exercise a {e
    malicious} host; under SeKVM every attack must be denied (and under
    {!Kvm_baseline} they succeed). *)

type t = {
  kcore : Kcore.t;
  mutable free_pfns : int list;  (** KServ-owned pages not yet donated *)
  mutable booted : (int * int list) list;  (** vmid -> image pfns *)
  mutable uart : int list;  (** userspace UART buffer (newest first) *)
}

val create : Kcore.t -> first_free_pfn:int -> t

exception Out_of_memory

val alloc_page : t -> int
val free_page : t -> int -> unit

val host_write :
  t -> cpu:int -> pfn:int -> idx:int -> int -> (unit, [ `Denied ]) result
(** Host access through KServ's own stage 2, faulting lazily (4 KB
    mappings, as the evaluation notes). *)

val host_read : t -> cpu:int -> pfn:int -> idx:int -> (int, [ `Denied ]) result

val boot_vm :
  ?tamper:bool -> t -> cpu:int -> n_vcpus:int -> image_pages:int ->
  (int, [ `Bad_hash | `Denied ]) result
(** Allocate and write an image, compute the out-of-band hash, register
    the VM and hand everything to KCore. [tamper] modifies the image after
    hashing — authentication must then fail. *)

val handle_s2_fault : t -> cpu:int -> vmid:int -> ipa:int -> (unit, [ `Denied ]) result

val run_guest :
  t -> cpu:int -> vmid:int -> vcpuid:int -> Vm.guest_op list ->
  Vm.op_result list
(** The KVM run loop: enter the guest, execute its ops, exit to resolve
    faults/hypercalls/MMIO, re-enter. *)

(** {2 Attacks (must all be denied)} *)

val attack_read_vm_page : t -> cpu:int -> pfn:int -> (int, [ `Denied ]) result
val attack_write_vm_page : t -> cpu:int -> pfn:int -> int -> (unit, [ `Denied ]) result

val attack_steal_page :
  t -> cpu:int -> victim_pfn:int -> vmid:int -> ipa:int ->
  (unit, [ `Denied ]) result

val attack_dma_map : t -> cpu:int -> device:int -> pfn:int -> (unit, [ `Denied ]) result
