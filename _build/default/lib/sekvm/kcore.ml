(** KCore: the trusted core of the retrofitted KVM hypervisor (paper §5).

    KCore runs at EL2, owns all page tables (its own EL2 table, stage-2
    tables for KServ and every VM, SMMU tables), and tracks page ownership
    in the {!Machine.S2page} database. KServ (the untrusted host Linux
    services) and VMs interact with it exclusively through the hypercall
    surface below; every path that the SeKVM proofs cover is implemented:
    VM registration ([gen_vmid] under the core lock), vCPU registration
    and the ACTIVE/INACTIVE run protocol, VM image authentication through
    the EL2 remap region, stage-2 fault handling with ownership transfer,
    page sharing for paravirtual I/O, SMMU device assignment and DMA
    mapping, and VM teardown with scrubbing.

    The security content mirrors the paper: no page owned by KCore is ever
    mapped into a stage-2 or SMMU table; a page has one owner; KServ can
    reach a VM page only while the VM has explicitly shared it. The
    invariant checker at the bottom is executable and runs after every
    mutation in the integration tests. *)

open Machine

exception Kcore_panic of string

let panic fmt = Format.kasprintf (fun s -> raise (Kcore_panic s)) fmt

type vm_state = Registered | Verified | Torn_down [@@deriving show, eq]

type vm = {
  vmid : int;
  mutable vstate : vm_state;
  npt : Npt.t;
  mutable vcpus : Vcpu_ctxt.t list;
  mutable image_hash : int option;
  vm_lock : Ticket_lock.t;
  mutable next_image_ipa : int;  (** bump pointer for image placement *)
  vgic : Vgic.t;  (** in-kernel emulated interrupt controller *)
}

type t = {
  mem : Phys_mem.t;
  geometry : Page_table.geometry;
  s2page : S2page.t;
  trace : Trace.t;
  oracle : Data_oracle.t;
  el2 : El2_pt.t;
  el2_pool : Page_pool.t;
  s2_pool : Page_pool.t;
  smmu_pool : Page_pool.t;
  smmu_ops : Smmu_ops.t;
  cpus : Cpu.t array;
  core_lock : Ticket_lock.t;
  mutable next_vmid : int;
  max_vms : int;
  mutable vms : (int * vm) list;
  kserv_npt : Npt.t;
  mutable smmu_owners : (int * S2page.owner) list;  (** device -> owner *)
  (* operation counters for the evaluation *)
  mutable hypercalls : int;
  mutable s2_faults : int;
  mutable vipis : int;
  mutable mmio_kernel : int;  (** exits emulated in the host kernel (vGIC) *)
  mutable mmio_user : int;  (** exits emulated in host userspace (UART) *)
}

let kserv_vmid = 0

(* ------------------------------------------------------------------ *)
(* Construction / boot                                                 *)
(* ------------------------------------------------------------------ *)

type boot_config = {
  n_pages : int;
  n_cpus : int;
  tlb_capacity : int;
  stage2_geometry : Page_table.geometry;
  max_vms : int;
  el2_pool_pages : int;
  s2_pool_pages : int;
  smmu_pool_pages : int;
  kcore_static_pages : int;  (** KCore code/data at the bottom of memory *)
  oracle_seed : int;
}

let default_boot_config =
  { n_pages = 1024;
    n_cpus = 4;
    tlb_capacity = 64;
    stage2_geometry = Page_table.three_level;
    max_vms = 33;
    el2_pool_pages = 24;
    s2_pool_pages = 192;
    smmu_pool_pages = 48;
    kcore_static_pages = 16;
    oracle_seed = 0x5ecb }

let invalidate_tlbs t scope =
  Array.iter
    (fun (cpu : Cpu.t) ->
      match scope with
      | Trace.Tlbi_all -> Tlb.invalidate_all cpu.Cpu.tlb
      | Trace.Tlbi_vmid v -> Tlb.invalidate_vmid cpu.Cpu.tlb ~vmid:v
      | Trace.Tlbi_va (v, vp) -> Tlb.invalidate_va cpu.Cpu.tlb ~vmid:v ~vp
      | Trace.Tlbi_smmu_dev _ -> ())
    t.cpus

(** First pfn KServ owns (everything below belongs to KCore). *)
let kserv_base cfg =
  cfg.kcore_static_pages + cfg.el2_pool_pages + cfg.s2_pool_pages
  + cfg.smmu_pool_pages

let boot (cfg : boot_config) : t =
  let mem = Phys_mem.create cfg.n_pages in
  let trace = Trace.create () in
  let oracle = Data_oracle.create ~seed:cfg.oracle_seed in
  let static_end = cfg.kcore_static_pages in
  let el2_pool =
    Page_pool.create ~name:"el2" ~mem ~first_pfn:static_end
      ~n_pages:cfg.el2_pool_pages
  in
  let s2_first = static_end + cfg.el2_pool_pages in
  let s2_pool =
    Page_pool.create ~name:"s2" ~mem ~first_pfn:s2_first
      ~n_pages:cfg.s2_pool_pages
  in
  let smmu_first = s2_first + cfg.s2_pool_pages in
  let smmu_pool =
    Page_pool.create ~name:"smmu" ~mem ~first_pfn:smmu_first
      ~n_pages:cfg.smmu_pool_pages
  in
  let s2page =
    S2page.create ~n_pages:cfg.n_pages ~default_owner:S2page.Kserv
  in
  (* KCore's static footprint and all reserved pools are KCore-owned *)
  for pfn = 0 to kserv_base cfg - 1 do
    S2page.set_owner s2page pfn S2page.Kcore
  done;
  (* EL2 uses a 4-level stage-1 table regardless of the stage-2 geometry *)
  let el2 =
    El2_pt.create ~mem ~geometry:Page_table.four_level ~pool:el2_pool ~trace
      ~cpu:0
  in
  let cpus =
    Array.init cfg.n_cpus (fun id ->
        Cpu.create ~id ~tlb_capacity:cfg.tlb_capacity)
  in
  let smmu =
    Smmu.create ~mem ~geometry:cfg.stage2_geometry ~pool:smmu_pool
      ~tlb_capacity:cfg.tlb_capacity
  in
  let smmu_ops = Smmu_ops.create ~smmu ~trace in
  let rec t =
    lazy
      { mem;
        geometry = cfg.stage2_geometry;
        s2page;
        trace;
        oracle;
        el2;
        el2_pool;
        s2_pool;
        smmu_pool;
        smmu_ops;
        cpus;
        core_lock = Ticket_lock.create "core";
        next_vmid = 1;
        max_vms = cfg.max_vms;
        vms = [];
        kserv_npt =
          Npt.create ~mem ~geometry:cfg.stage2_geometry ~pool:s2_pool
            ~vmid:kserv_vmid ~trace
            ~invalidate:(fun scope -> invalidate_tlbs (Lazy.force t) scope);
        smmu_owners = [];
        hypercalls = 0;
        s2_faults = 0;
        vipis = 0;
        mmio_kernel = 0;
        mmio_user = 0 }
  in
  Lazy.force t

(* ------------------------------------------------------------------ *)
(* VM lifecycle                                                        *)
(* ------------------------------------------------------------------ *)

let find_vm t vmid =
  match List.assoc_opt vmid t.vms with
  | Some vm -> vm
  | None -> panic "unknown vmid %d" vmid

(** The [gen_vmid] of Fig. 1, under the core lock. *)
let gen_vmid t ~cpu =
  Ticket_lock.with_lock t.core_lock ~cpu @@ fun () ->
  let vmid = t.next_vmid in
  if vmid < t.max_vms then begin
    t.next_vmid <- vmid + 1;
    vmid
  end
  else panic "gen_vmid: out of VM identifiers (MAX_VM=%d)" t.max_vms

let register_vm t ~cpu =
  t.hypercalls <- t.hypercalls + 1;
  let vmid = gen_vmid t ~cpu in
  let npt =
    Npt.create ~mem:t.mem ~geometry:t.geometry ~pool:t.s2_pool ~vmid
      ~trace:t.trace ~invalidate:(invalidate_tlbs t)
  in
  let vm =
    { vmid;
      vstate = Registered;
      npt;
      vcpus = [];
      image_hash = None;
      vm_lock = Ticket_lock.create (Printf.sprintf "vm-%d" vmid);
      next_image_ipa = 0;
      vgic = Vgic.create () }
  in
  t.vms <- (vmid, vm) :: t.vms;
  (* the stage-2 root and its tables are KCore memory *)
  vmid

let register_vcpu t ~cpu ~vmid ~vcpuid =
  t.hypercalls <- t.hypercalls + 1;
  let vm = find_vm t vmid in
  Ticket_lock.with_lock vm.vm_lock ~cpu @@ fun () ->
  if vm.vstate <> Registered then
    panic "register_vcpu: VM %d not in Registered state" vmid;
  if List.exists (fun v -> v.Vcpu_ctxt.vcpuid = vcpuid) vm.vcpus then
    panic "register_vcpu: vCPU %d/%d already registered" vmid vcpuid;
  vm.vcpus <- Vcpu_ctxt.create ~vmid ~vcpuid :: vm.vcpus

let find_vcpu vm vcpuid =
  match List.find_opt (fun v -> v.Vcpu_ctxt.vcpuid = vcpuid) vm.vcpus with
  | Some v -> v
  | None -> panic "unknown vCPU %d of VM %d" vcpuid vm.vmid

(* ------------------------------------------------------------------ *)
(* VM image authentication (secure boot, §5.1)                         *)
(* ------------------------------------------------------------------ *)

(** Donate [pfns] (KServ pages holding the VM image) to VM [vmid], after
    authenticating the image: each page is remapped into KCore's EL2 remap
    region (the pages need not be physically contiguous), hashed through
    the contiguous virtual addresses, and compared against
    [expected_hash]. On success the pages change owner to the VM and are
    mapped at consecutive guest IPAs. *)
let set_vm_image t ~cpu ~vmid ~pfns ~expected_hash :
    (unit, [ `Bad_hash | `Denied ]) result =
  t.hypercalls <- t.hypercalls + 1;
  let vm = find_vm t vmid in
  Ticket_lock.with_lock vm.vm_lock ~cpu @@ fun () ->
  if vm.vstate <> Registered then panic "set_vm_image: VM %d wrong state" vmid;
  if
    List.exists
      (fun pfn ->
        S2page.owner t.s2page pfn <> S2page.Kserv
        || S2page.is_shared t.s2page pfn)
      pfns
  then Error `Denied
  else begin
    (* withdraw the pages from KServ's reach before reading them *)
    List.iter
      (fun pfn ->
        let ipa = Page_table.page_va pfn in
        match Npt.clear_s2pt t.kserv_npt ~cpu ~ipa with
        | Ok () -> S2page.decr_map t.s2page pfn
        | Error `Not_mapped -> ())
      pfns;
    (* hash through the EL2 remap region *)
    let h =
      List.fold_left
        (fun acc pfn ->
          let va = El2_pt.remap_pfn t.el2 ~cpu ~pfn in
          let mapped =
            match El2_pt.translate t.el2 ~va with
            | Some (p, _) -> p
            | None -> panic "remap_pfn: EL2 translation missing"
          in
          if mapped <> pfn then panic "remap_pfn: wrong EL2 mapping";
          (* reading untrusted memory: logged as an oracle-mediated read *)
          Trace.record t.trace (Trace.E_oracle_read { cpu; pfn });
          (acc * 0x01000193) lxor Phys_mem.digest_page t.mem mapped)
        0x811c9dc5 pfns
    in
    if h <> expected_hash then begin
      (* authentication failed: hand the pages back to KServ *)
      List.iter
        (fun pfn ->
          let ipa = Page_table.page_va pfn in
          (match Npt.set_s2pt t.kserv_npt ~cpu ~ipa ~pfn ~perms:Pte.rw with
          | Ok () -> S2page.incr_map t.s2page pfn
          | Error `Already_mapped -> ()))
        pfns;
      Error `Bad_hash
    end
    else begin
      vm.image_hash <- Some h;
      List.iteri
        (fun i pfn ->
          S2page.set_owner t.s2page pfn (S2page.Vm vmid);
          let ipa = Page_table.page_va (vm.next_image_ipa + i) in
          (match Npt.set_s2pt vm.npt ~cpu ~ipa ~pfn ~perms:Pte.rw with
          | Ok () -> S2page.incr_map t.s2page pfn
          | Error `Already_mapped -> panic "image IPA already mapped"))
        pfns;
      vm.next_image_ipa <- vm.next_image_ipa + List.length pfns;
      vm.vstate <- Verified;
      Ok ()
    end
  end

(* ------------------------------------------------------------------ *)
(* Running vCPUs: the ACTIVE/INACTIVE protocol                         *)
(* ------------------------------------------------------------------ *)

(** Enter VM [vmid]/vCPU [vcpuid] on [cpu]: claim the context (checking
    INACTIVE), install the stage-2 root and VMID. *)
let vcpu_load t ~cpu ~vmid ~vcpuid =
  t.hypercalls <- t.hypercalls + 1;
  let vm = find_vm t vmid in
  if vm.vstate <> Verified then panic "run_vcpu: VM %d not verified" vmid;
  let vcpu = find_vcpu vm vcpuid in
  Vcpu_ctxt.claim vcpu ~cpu;
  let c = t.cpus.(cpu) in
  c.Cpu.el <- Cpu.El0;
  c.Cpu.current_vmid <- vmid;
  c.Cpu.s2_root <- Some vm.npt.Npt.root;
  c.Cpu.running_vcpu <- Some (vmid, vcpuid)

(** Exit back to the hypervisor: save registers, release the context. *)
let vcpu_put t ~cpu =
  let c = t.cpus.(cpu) in
  match c.Cpu.running_vcpu with
  | None -> panic "vcpu_put: CPU %d not running a vCPU" cpu
  | Some (vmid, vcpuid) ->
      let vm = find_vm t vmid in
      let vcpu = find_vcpu vm vcpuid in
      Vcpu_ctxt.release vcpu ~cpu;
      c.Cpu.el <- Cpu.El2;
      c.Cpu.current_vmid <- kserv_vmid;
      c.Cpu.s2_root <- None;
      c.Cpu.running_vcpu <- None

(* ------------------------------------------------------------------ *)
(* Guest and KServ memory access through stage 2                       *)
(* ------------------------------------------------------------------ *)

type access_fault = Stage2_fault of int | Perm_fault of int
[@@deriving show, eq]

let npt_of t vmid =
  if vmid = kserv_vmid then t.kserv_npt else (find_vm t vmid).npt

(** Hardware-path translation: TLB first, walk + fill on miss. *)
let translate_hw t ~cpu ~vmid ~addr =
  let c = t.cpus.(cpu) in
  let vp = Page_table.va_page addr in
  match Tlb.lookup c.Cpu.tlb ~vmid ~vp with
  | Some (pfn, perms) -> Some (pfn, perms)
  | None -> (
      match Npt.translate (npt_of t vmid) ~ipa:addr with
      | Some (pfn, perms) ->
          Tlb.fill c.Cpu.tlb ~vmid ~vp ~pfn ~perms;
          Some (pfn, perms)
      | None -> None)

(** A guest (or KServ, vmid 0) load: translated and permission-checked by
    the simulated hardware. *)
let access_read t ~cpu ~vmid ~addr : (int, access_fault) result =
  match translate_hw t ~cpu ~vmid ~addr with
  | None -> Error (Stage2_fault addr)
  | Some (pfn, perms) ->
      if not perms.Pte.readable then Error (Perm_fault addr)
      else
        Ok
          (Phys_mem.read t.mem ~pfn
             ~idx:(Page_table.page_offset addr / 8 mod Phys_mem.entries_per_page))

let access_write t ~cpu ~vmid ~addr v : (unit, access_fault) result =
  match translate_hw t ~cpu ~vmid ~addr with
  | None -> Error (Stage2_fault addr)
  | Some (pfn, perms) ->
      if not perms.Pte.writable then Error (Perm_fault addr)
      else begin
        Phys_mem.write t.mem ~pfn
          ~idx:(Page_table.page_offset addr / 8 mod Phys_mem.entries_per_page)
          v;
        Ok ()
      end

(* ------------------------------------------------------------------ *)
(* Stage-2 fault handling: ownership transfer                          *)
(* ------------------------------------------------------------------ *)

(** KServ proposes [pfn] to back guest address [ipa] of VM [vmid]. KCore
    validates ownership before accepting: the page must be KServ's,
    unshared and unmapped. The page is scrubbed (runtime-granted pages
    carry no KServ-chosen content) and transferred. *)
let map_page_to_vm t ~cpu ~vmid ~ipa ~pfn : (unit, [ `Denied ]) result =
  t.hypercalls <- t.hypercalls + 1;
  t.s2_faults <- t.s2_faults + 1;
  let vm = find_vm t vmid in
  Ticket_lock.with_lock vm.vm_lock ~cpu @@ fun () ->
  (* validate before mutating anything: a denied donation leaves the
     system exactly as it was *)
  if
    S2page.owner t.s2page pfn <> S2page.Kserv
    || S2page.is_shared t.s2page pfn
    || Npt.is_mapped vm.npt ~ipa
  then Error `Denied
  else begin
    let was_mapped =
      match Npt.clear_s2pt t.kserv_npt ~cpu ~ipa:(Page_table.page_va pfn) with
      | Ok () ->
          S2page.decr_map t.s2page pfn;
          true
      | Error `Not_mapped -> false
    in
    if S2page.map_count t.s2page pfn > 0 then begin
      (* still referenced elsewhere (e.g. SMMU): refuse, restoring the
         host mapping we just withdrew *)
      if was_mapped then begin
        (match
           Npt.set_s2pt t.kserv_npt ~cpu ~ipa:(Page_table.page_va pfn) ~pfn
             ~perms:Pte.rw
         with
        | Ok () -> S2page.incr_map t.s2page pfn
        | Error `Already_mapped -> ())
      end;
      Error `Denied
    end
    else begin
      Phys_mem.scrub t.mem pfn;
      S2page.set_owner t.s2page pfn (S2page.Vm vmid);
      match Npt.set_s2pt vm.npt ~cpu ~ipa ~pfn ~perms:Pte.rw with
      | Ok () ->
          S2page.incr_map t.s2page pfn;
          Ok ()
      | Error `Already_mapped -> assert false (* checked above, under the lock *)
    end
  end

(** KServ faults on its own stage 2 (lazy 4 KB mappings, §6): KCore maps
    the page 1:1 iff KServ owns it. *)
let kserv_fault t ~cpu ~addr : (unit, [ `Denied ]) result =
  t.hypercalls <- t.hypercalls + 1;
  let pfn = Page_table.va_page addr in
  let owner = S2page.owner t.s2page pfn in
  if owner = S2page.Kserv || (S2page.is_shared t.s2page pfn) then
    match
      Npt.set_s2pt t.kserv_npt ~cpu ~ipa:(Page_table.page_va pfn) ~pfn
        ~perms:Pte.rw
    with
    | Ok () ->
        S2page.incr_map t.s2page pfn;
        Ok ()
    | Error `Already_mapped -> Ok ()
  else Error `Denied

(* ------------------------------------------------------------------ *)
(* Page sharing (paravirtual I/O)                                      *)
(* ------------------------------------------------------------------ *)

(** A VM grants KServ access to one of its pages (virtio rings/buffers). *)
let vm_share_page t ~cpu ~vmid ~ipa : (unit, [ `Denied ]) result =
  t.hypercalls <- t.hypercalls + 1;
  let vm = find_vm t vmid in
  Ticket_lock.with_lock vm.vm_lock ~cpu @@ fun () ->
  match Npt.translate vm.npt ~ipa with
  | None -> Error `Denied
  | Some (pfn, _) ->
      if S2page.owner t.s2page pfn <> S2page.Vm vmid then Error `Denied
      else begin
        S2page.set_shared t.s2page pfn true;
        (match
           Npt.set_s2pt t.kserv_npt ~cpu ~ipa:(Page_table.page_va pfn) ~pfn
             ~perms:Pte.rw
         with
        | Ok () -> S2page.incr_map t.s2page pfn
        | Error `Already_mapped -> ());
        Ok ()
      end

let vm_unshare_page t ~cpu ~vmid ~ipa : (unit, [ `Denied ]) result =
  t.hypercalls <- t.hypercalls + 1;
  let vm = find_vm t vmid in
  Ticket_lock.with_lock vm.vm_lock ~cpu @@ fun () ->
  match Npt.translate vm.npt ~ipa with
  | None -> Error `Denied
  | Some (pfn, _) ->
      if
        S2page.owner t.s2page pfn <> S2page.Vm vmid
        || not (S2page.is_shared t.s2page pfn)
      then Error `Denied
      else begin
        (match
           Npt.clear_s2pt t.kserv_npt ~cpu ~ipa:(Page_table.page_va pfn)
         with
        | Ok () -> S2page.decr_map t.s2page pfn
        | Error `Not_mapped -> ());
        S2page.set_shared t.s2page pfn false;
        Ok ()
      end

(** A VM write-protects one of its own pages (guest W^X): the mapping is
    remapped read-only — a clear (with its DSB + TLBI, per
    Sequential-TLB-Invalidation) followed by a set with the new
    permissions. Subsequent guest stores take a permission fault. *)
let vm_protect_page t ~cpu ~vmid ~ipa : (unit, [ `Denied ]) result =
  t.hypercalls <- t.hypercalls + 1;
  let vm = find_vm t vmid in
  Ticket_lock.with_lock vm.vm_lock ~cpu @@ fun () ->
  match Npt.translate vm.npt ~ipa with
  | None -> Error `Denied
  | Some (pfn, perms) ->
      if S2page.owner t.s2page pfn <> S2page.Vm vmid then Error `Denied
      else if not perms.Pte.writable then Ok () (* already protected *)
      else begin
        (match Npt.clear_s2pt vm.npt ~cpu ~ipa with
        | Ok () -> ()
        | Error `Not_mapped -> panic "vm_protect_page: mapping vanished");
        match Npt.set_s2pt vm.npt ~cpu ~ipa ~pfn ~perms:Pte.ro with
        | Ok () -> Ok ()
        | Error `Already_mapped -> panic "vm_protect_page: impossible remap"
      end

(* ------------------------------------------------------------------ *)
(* SMMU management                                                     *)
(* ------------------------------------------------------------------ *)

let smmu_attach t ~cpu ~device ~owner : (unit, [ `Denied ]) result =
  t.hypercalls <- t.hypercalls + 1;
  if List.mem_assoc device t.smmu_owners then Error `Denied
  else begin
    ignore (Smmu_ops.attach_device t.smmu_ops ~cpu ~device);
    t.smmu_owners <- (device, owner) :: t.smmu_owners;
    Ok ()
  end

let smmu_map t ~cpu ~device ~iova ~pfn : (unit, [ `Denied ]) result =
  t.hypercalls <- t.hypercalls + 1;
  match List.assoc_opt device t.smmu_owners with
  | None -> Error `Denied
  | Some owner ->
      if S2page.owner t.s2page pfn <> owner || owner = S2page.Kcore then
        Error `Denied
      else (
        match
          Smmu_ops.set_spt t.smmu_ops ~cpu ~device ~iova ~pfn ~perms:Pte.rw
        with
        | Ok () ->
            S2page.incr_map t.s2page pfn;
            Ok ()
        | Error (`Already_mapped | `No_device) -> Error `Denied)

let smmu_unmap t ~cpu ~device ~iova : (unit, [ `Denied ]) result =
  t.hypercalls <- t.hypercalls + 1;
  match Smmu_ops.translate t.smmu_ops ~device ~iova with
  | None -> Error `Denied
  | Some (pfn, _) -> (
      match Smmu_ops.clear_spt t.smmu_ops ~cpu ~device ~iova with
      | Ok () ->
          S2page.decr_map t.s2page pfn;
          Ok ()
      | Error (`Not_mapped | `No_device) -> Error `Denied)

(* ------------------------------------------------------------------ *)
(* VM teardown                                                         *)
(* ------------------------------------------------------------------ *)

(** Reclaim all memory of VM [vmid]: every owned page is unmapped from the
    VM's stage 2, scrubbed, and returned to KServ. Confidentiality across
    the VM's death depends on the scrub. *)
let teardown_vm t ~cpu ~vmid =
  t.hypercalls <- t.hypercalls + 1;
  let vm = find_vm t vmid in
  Ticket_lock.with_lock vm.vm_lock ~cpu @@ fun () ->
  if List.exists (fun v -> v.Vcpu_ctxt.vstate = Vcpu_ctxt.Active) vm.vcpus
  then panic "teardown_vm: VM %d has active vCPUs" vmid;
  (* revoke DMA first: a device assigned to the dying VM must not keep a
     window into pages about to be scrubbed and returned to KServ *)
  List.iter
    (fun (device, owner) ->
      if owner = S2page.Vm vmid then begin
        List.iter
          (fun ext ->
            let iova = Page_table.page_va ext.Page_table.e_vp in
            match Smmu_ops.clear_spt t.smmu_ops ~cpu ~device ~iova with
            | Ok () -> S2page.decr_map t.s2page ext.Page_table.e_pfn
            | Error (`Not_mapped | `No_device) -> ())
          (match Smmu.root_of t.smmu_ops.Smmu_ops.smmu ~device with
          | Some root ->
              Page_table.extents t.mem
                t.smmu_ops.Smmu_ops.smmu.Smmu.geometry ~root
          | None -> []);
        Smmu.invalidate_tlb_device t.smmu_ops.Smmu_ops.smmu ~device
      end)
    t.smmu_owners;
  t.smmu_owners <-
    List.filter (fun (_, owner) -> owner <> S2page.Vm vmid) t.smmu_owners;
  List.iter
    (fun (vp, pfn, _) ->
      (match Npt.clear_s2pt vm.npt ~cpu ~ipa:(Page_table.page_va vp) with
      | Ok () -> S2page.decr_map t.s2page pfn
      | Error `Not_mapped -> ());
      (* drop any share into KServ *)
      if S2page.is_shared t.s2page pfn then begin
        (match
           Npt.clear_s2pt t.kserv_npt ~cpu ~ipa:(Page_table.page_va pfn)
         with
        | Ok () -> S2page.decr_map t.s2page pfn
        | Error `Not_mapped -> ());
        S2page.set_shared t.s2page pfn false
      end;
      Phys_mem.scrub t.mem pfn;
      S2page.set_owner t.s2page pfn S2page.Kserv)
    (Npt.mappings vm.npt);
  vm.vstate <- Torn_down

(* ------------------------------------------------------------------ *)
(* Executable security invariants                                      *)
(* ------------------------------------------------------------------ *)

type invariant_violation = { inv : string; detail : string }

let check_invariants t : invariant_violation list =
  let bad = ref [] in
  let report inv fmt =
    Format.kasprintf (fun detail -> bad := { inv; detail } :: !bad) fmt
  in
  let kcore_owned pfn = S2page.owner t.s2page pfn = S2page.Kcore in
  (* 1. every page-table page (EL2, stage-2, SMMU) is KCore-owned *)
  let all_table_pages =
    El2_pt.table_pages t.el2
    @ Npt.table_pages t.kserv_npt
    @ List.concat_map (fun (_, vm) -> Npt.table_pages vm.npt) t.vms
    @ Smmu_ops.table_pages t.smmu_ops
  in
  List.iter
    (fun pfn ->
      if not (kcore_owned pfn) then
        report "table-pages-kcore-owned" "table page %d owned by %s" pfn
          (S2page.show_owner (S2page.owner t.s2page pfn)))
    all_table_pages;
  (* 2. no KCore-owned page is mapped in any stage-2 or SMMU table *)
  let check_npt label npt allowed =
    List.iter
      (fun (vp, pfn, _) ->
        if kcore_owned pfn then
          report "no-kcore-page-mapped" "%s maps vp %d -> KCore page %d"
            label vp pfn
        else if not (allowed pfn) then
          report "owner-consistent" "%s maps vp %d -> page %d owned by %s"
            label vp pfn
            (S2page.show_owner (S2page.owner t.s2page pfn)))
      (Npt.mappings npt)
  in
  (* 3. KServ's stage 2 maps only KServ pages or shared VM pages *)
  check_npt "kserv-s2" t.kserv_npt (fun pfn ->
      S2page.owner t.s2page pfn = S2page.Kserv || S2page.is_shared t.s2page pfn);
  (* 4. a VM's stage 2 maps only its own pages *)
  List.iter
    (fun (vmid, vm) ->
      check_npt
        (Printf.sprintf "vm-%d-s2" vmid)
        vm.npt
        (fun pfn -> S2page.owner t.s2page pfn = S2page.Vm vmid))
    t.vms;
  (* 5. SMMU tables map only pages of the device's assigned owner *)
  List.iter
    (fun (device, owner) ->
      List.iter
        (fun pfn ->
          if kcore_owned pfn then
            report "no-kcore-page-dma" "device %d can DMA to KCore page %d"
              device pfn
          else if S2page.owner t.s2page pfn <> owner then
            report "smmu-owner-consistent"
              "device %d (owner %s) can DMA to page %d owned by %s" device
              (S2page.show_owner owner) pfn
              (S2page.show_owner (S2page.owner t.s2page pfn)))
        (Smmu.reachable_pfns t.smmu_ops.Smmu_ops.smmu ~device))
    t.smmu_owners;
  (* 6. the SMMU stays enabled *)
  if not t.smmu_ops.Smmu_ops.smmu.Smmu.enabled then
    report "smmu-enabled" "SMMU has been disabled";
  (* 7. the ownership database's reference counts agree with the actual
     number of stage-2 + SMMU mappings of each frame *)
  let counted = Hashtbl.create 64 in
  let bump pfn =
    Hashtbl.replace counted pfn
      (1 + Option.value ~default:0 (Hashtbl.find_opt counted pfn))
  in
  List.iter (fun (_, pfn, _) -> bump pfn) (Npt.mappings t.kserv_npt);
  List.iter
    (fun (_, vm) ->
      List.iter (fun (_, pfn, _) -> bump pfn) (Npt.mappings vm.npt))
    t.vms;
  List.iter
    (fun (device, _) ->
      List.iter bump (Smmu.reachable_pfns t.smmu_ops.Smmu_ops.smmu ~device))
    t.smmu_owners;
  for pfn = 0 to S2page.n_pages t.s2page - 1 do
    let recorded = S2page.map_count t.s2page pfn in
    let actual = Option.value ~default:0 (Hashtbl.find_opt counted pfn) in
    if recorded <> actual then
      report "map-count-consistent"
        "page %d: map_count %d but %d actual mappings" pfn recorded actual
  done;
  List.rev !bad

(* ------------------------------------------------------------------ *)
(* VM snapshots (paper §4.3)                                           *)
(* ------------------------------------------------------------------ *)

(** Create a snapshot of VM [vmid]: KCore reads every guest page through
    its EL2 linear map and hands (vp, digest) pairs to the caller (KServ
    persists them). This is the paper's motivating example for weakening
    Memory-Isolation: the hypervisor {e does} read VM memory here, so the
    strong condition cannot hold; the reads are oracle-mediated, which is
    exactly what the weak condition requires. *)
let snapshot_vm t ~cpu ~vmid : (int * int) list =
  t.hypercalls <- t.hypercalls + 1;
  let vm = find_vm t vmid in
  Ticket_lock.with_lock vm.vm_lock ~cpu @@ fun () ->
  List.map
    (fun (vp, pfn, _) ->
      Trace.record t.trace (Trace.E_oracle_read { cpu; pfn });
      (vp, Phys_mem.digest_page t.mem pfn))
    (Npt.mappings vm.npt)

(* ------------------------------------------------------------------ *)
(* Virtual interrupts and MMIO emulation                               *)
(* ------------------------------------------------------------------ *)

(** Guest-physical MMIO window: one page of in-kernel-emulated interrupt
    controller (the vGIC distributor) and one page of userspace-emulated
    UART. Accesses here never hit stage 2; they trap and are routed to
    the emulation, mirroring Table 2's "I/O Kernel" vs "I/O User" split. *)
let gic_dist_page = 768

let uart_page = 769

let is_mmio ~addr =
  let vp = Page_table.va_page addr in
  vp = gic_dist_page || vp = uart_page

(** A guest SGI (virtual IPI): sets the interrupt pending at the target
    vCPU and, if that vCPU is running on some physical CPU, delivers a
    physical IPI to it. Emulated in kernel space. *)
let vgic_send_sgi t ~cpu ~vmid ~to_vcpu ~irq : (unit, [ `Denied ]) result =
  ignore cpu;
  t.hypercalls <- t.hypercalls + 1;
  t.vipis <- t.vipis + 1;
  t.mmio_kernel <- t.mmio_kernel + 1;
  let vm = find_vm t vmid in
  if not (List.exists (fun v -> v.Vcpu_ctxt.vcpuid = to_vcpu) vm.vcpus) then
    Error `Denied
  else begin
    Vgic.inject vm.vgic ~vcpuid:to_vcpu ~irq;
    Ok ()
  end

(** Take the next pending interrupt of a vCPU (the guest's IAR read). *)
let vgic_ack t ~vmid ~vcpuid : int option =
  t.mmio_kernel <- t.mmio_kernel + 1;
  Vgic.take (find_vm t vmid).vgic ~vcpuid

let vgic_pending t ~vmid ~vcpuid =
  Vgic.pending (find_vm t vmid).vgic ~vcpuid

(** UART emulation lives in host userspace: the access costs a full exit
    to the VMM. The routed byte is returned to the caller (KServ), which
    owns the UART buffer. *)
let uart_exit t ~cpu ~value : int =
  ignore cpu;
  t.hypercalls <- t.hypercalls + 1;
  t.mmio_user <- t.mmio_user + 1;
  value

(** A guest UART {e read}: the value comes from the outside world through
    untrusted emulation, so KCore models it as a data-oracle draw — the
    same device on the same schedule yields the same bytes across runs,
    and the proofs never depend on what the bytes are. *)
let uart_read t ~cpu : int =
  ignore cpu;
  t.hypercalls <- t.hypercalls + 1;
  t.mmio_user <- t.mmio_user + 1;
  Data_oracle.draw t.oracle land 0x7f

(* ------------------------------------------------------------------ *)
(* VM migration (export/import)                                        *)
(* ------------------------------------------------------------------ *)

(** Export VM [vmid]'s memory for migration: (vp, words) pairs read by
    KCore through its linear map. On real SeKVM the pages are encrypted
    before KServ may carry them; here the oracle-mediated read marks the
    information flow the proofs must account for, exactly as with
    snapshots. *)
let export_vm t ~cpu ~vmid : (int * int array) list =
  t.hypercalls <- t.hypercalls + 1;
  let vm = find_vm t vmid in
  Ticket_lock.with_lock vm.vm_lock ~cpu @@ fun () ->
  List.map
    (fun (vp, pfn, _) ->
      Trace.record t.trace (Trace.E_oracle_read { cpu; pfn });
      ( vp,
        Array.init Phys_mem.entries_per_page (fun i ->
            Phys_mem.read t.mem ~pfn ~idx:i) ))
    (Npt.mappings vm.npt)

(** Import an exported VM on this host: a fresh VM is registered, KServ
    donates one page per exported page, KCore fills it (before the
    ownership transfer the content flows through KServ-owned memory, as
    on a real migration), and the pages are mapped at their original
    guest addresses. Returns the new vmid. *)
let import_vm t ~cpu ~pages ~donate ~n_vcpus : int =
  let vmid = register_vm t ~cpu in
  for v = 0 to n_vcpus - 1 do
    register_vcpu t ~cpu ~vmid ~vcpuid:v
  done;
  let vm = find_vm t vmid in
  List.iter
    (fun (vp, words) ->
      let pfn = donate () in
      if S2page.owner t.s2page pfn <> S2page.Kserv then
        panic "import_vm: donated page not KServ's";
      (match Npt.clear_s2pt t.kserv_npt ~cpu ~ipa:(Page_table.page_va pfn) with
      | Ok () -> S2page.decr_map t.s2page pfn
      | Error `Not_mapped -> ());
      Array.iteri (fun i w -> Phys_mem.write t.mem ~pfn ~idx:i w) words;
      S2page.set_owner t.s2page pfn (S2page.Vm vmid);
      match
        Npt.set_s2pt vm.npt ~cpu ~ipa:(Page_table.page_va vp) ~pfn
          ~perms:Pte.rw
      with
      | Ok () -> S2page.incr_map t.s2page pfn
      | Error `Already_mapped -> panic "import_vm: duplicate vp")
    pages;
  vm.vstate <- Verified;
  vm.image_hash <- Some 0;
  vmid
