(** Data oracles (paper §5.3).

    When KCore must read untrusted (KServ or VM) memory — hypercall
    arguments, VM images before authentication — the SeKVM proofs model
    the read as drawing from a {e data oracle}: a value stream independent
    of the untrusted program's actual implementation. That independence is
    what makes the Weak-Memory-Isolation condition hold: any relaxed-memory
    behavior of the user is matched by some oracle stream on SC.

    Operationally this module is a deterministic PRNG (so simulations are
    reproducible) with a [replay] mode used by the isolation checker: two
    runs with the same oracle stream but different untrusted-program
    behavior must leave KCore in identical states. *)

type t = {
  mutable state : int;
  mutable draws : int;
  mutable log : int list;  (** newest first *)
  mutable replay : int list option;  (** when set, draws come from here *)
}

let create ~seed = { state = seed lor 1; draws = 0; log = []; replay = None }

(* xorshift-style step; deterministic, architecture-independent *)
let step s =
  let s = s lxor (s lsl 13) land max_int in
  let s = s lxor (s lsr 7) in
  s lxor (s lsl 17) land max_int

let draw t =
  let v =
    match t.replay with
    | Some (v :: rest) ->
        t.replay <- Some rest;
        v
    | Some [] -> invalid_arg "Data_oracle.draw: replay stream exhausted"
    | None ->
        t.state <- step t.state;
        t.state
  in
  t.draws <- t.draws + 1;
  t.log <- v :: t.log;
  v

let draws t = t.draws

(** The stream drawn so far, oldest first — feed it back via [replaying]
    to reproduce KCore's inputs exactly. *)
let stream t = List.rev t.log

let replaying ~stream ~seed =
  { state = seed lor 1; draws = 0; log = []; replay = Some stream }
