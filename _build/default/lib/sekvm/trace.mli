(** Execution-trace recorder for KCore. Every page-table write, barrier,
    TLB invalidation, lock transition and user-memory read is recorded;
    the trace-based wDRF checkers (Write-Once, Sequential-TLB-Invalidation,
    Memory-Isolation) are judgments over what the implementation
    {e actually did}. *)

type table_id =
  | T_el2  (** KCore's own EL2 page table *)
  | T_stage2 of int  (** stage-2 table of VMID *)
  | T_smmu of int  (** SMMU table of device id *)

type tlbi_scope =
  | Tlbi_vmid of int
  | Tlbi_va of int * int  (** vmid, virtual page *)
  | Tlbi_smmu_dev of int
  | Tlbi_all

type event =
  | E_pt_write of {
      cpu : int;
      table : table_id;
      write : Machine.Page_table.pt_write;
      locked : bool;  (** was the owning lock held? *)
    }
  | E_dsb of int  (** cpu *)
  | E_tlbi of { cpu : int; scope : tlbi_scope }
  | E_lock_acquire of { cpu : int; lock : string }
  | E_lock_release of { cpu : int; lock : string }
  | E_mem_read of { cpu : int; pfn : int; owner : Machine.S2page.owner }
      (** a raw KCore read of non-KCore memory (an isolation violation) *)
  | E_oracle_read of { cpu : int; pfn : int }
      (** a user-memory read routed through the data oracle *)
  | E_section_begin of { cpu : int; what : string }
  | E_section_end of { cpu : int; what : string }

type t = { mutable events : event list; mutable enabled : bool }

val create : unit -> t
val record : t -> event -> unit
val events : t -> event list
(** Oldest first. *)

val clear : t -> unit
val length : t -> int

val sections : t -> what:string -> event list list
(** Events between matching per-CPU section markers. *)

val pp_table_id : Format.formatter -> table_id -> unit
val show_table_id : table_id -> string
val equal_table_id : table_id -> table_id -> bool
val compare_table_id : table_id -> table_id -> int
val pp_tlbi_scope : Format.formatter -> tlbi_scope -> unit
val show_tlbi_scope : tlbi_scope -> string
val equal_tlbi_scope : tlbi_scope -> tlbi_scope -> bool
