(** A minimal in-kernel virtual interrupt controller: per-VM pending
    state for software-generated interrupts (the virtual IPIs of Table
    2), with FIFO acknowledge per vCPU. *)

type t = {
  mutable pending : (int * int) list;  (** (vcpuid, irq), oldest first *)
  mutable injected : int;
  mutable acked : int;
}

val create : unit -> t
val inject : t -> vcpuid:int -> irq:int -> unit
val take : t -> vcpuid:int -> int option
val pending : t -> vcpuid:int -> int
