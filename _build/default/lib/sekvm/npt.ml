(** Stage-2 (nested) page tables for VMs and KServ (paper §5.4-5.5).

    Exactly two primitives write a stage-2 table:

    - [set_s2pt] establishes a new mapping, walking from the root and
      allocating missing intermediate tables from KCore's private pool
      (the walk–allocate–set procedure, all inside the table's lock). It
      never overwrites a valid leaf, so no TLB invalidation is needed.
    - [clear_s2pt] clears an existing leaf (a single write), then issues a
      DSB barrier followed by a TLB invalidation for the unmapped address.
      Tables are never reclaimed or substituted once inserted.

    Every write/barrier/TLBI is recorded in the trace; the transactional
    and TLBI checkers judge those traces. The [~skip_barrier] /
    [~skip_tlbi] knobs and [remap_nontransactional] exist only to seed the
    bugs the checkers must catch (Examples 5 and 6). *)

open Machine

type t = {
  mem : Phys_mem.t;
  geometry : Page_table.geometry;
  pool : Page_pool.t;
  root : int;
  vmid : int;
  lock : Ticket_lock.t;
  trace : Trace.t;
  invalidate : Trace.tlbi_scope -> unit;
      (** broadcast TLBI into the machine's TLBs *)
  mutable map_ops : int;
  mutable unmap_ops : int;
}

let create ~mem ~geometry ~pool ~vmid ~trace ~invalidate =
  { mem;
    geometry;
    pool;
    root = Page_pool.alloc pool;
    vmid;
    lock = Ticket_lock.create (Printf.sprintf "npt-%d" vmid);
    trace;
    invalidate;
    map_ops = 0;
    unmap_ops = 0 }

let record_write t ~cpu w =
  Trace.record t.trace
    (Trace.E_pt_write
       { cpu;
         table = Trace.T_stage2 t.vmid;
         write = w;
         locked = Ticket_lock.is_held t.lock })

let section t ~cpu ~what f =
  Trace.record t.trace (Trace.E_section_begin { cpu; what });
  let r = f () in
  Trace.record t.trace (Trace.E_section_end { cpu; what });
  r

(** Map [ipa -> pfn]. Fails (without writing) if [ipa] is already mapped:
    stage-2 mappings are changed only through clear-then-set, never
    overwritten in place. *)
let set_s2pt t ~cpu ~ipa ~pfn ~perms : (unit, [ `Already_mapped ]) result =
  section t ~cpu ~what:"set_s2pt" @@ fun () ->
  Ticket_lock.with_lock t.lock ~cpu @@ fun () ->
  match
    Page_table.plan_map t.mem t.geometry ~pool:t.pool ~root:t.root ~va:ipa
      ~target_pfn:pfn ~perms
  with
  | Ok writes ->
      List.iter
        (fun w ->
          Page_table.apply_write t.mem w;
          record_write t ~cpu w)
        writes;
      t.map_ops <- t.map_ops + 1;
      Ok ()
  | Error `Already_mapped -> Error `Already_mapped

(** Map a 2 MB (or larger) block: [ipa -> pfn] as a single block PTE at
    [level]. Like [set_s2pt] it only ever fills an empty entry, so no TLB
    invalidation is needed; the whole walk-allocate-set runs under the
    table lock. Huge stage-2 mappings for VMs are the paper's §6
    explanation for why guest-side TLB pressure stays low even on the
    m400. *)
let set_s2pt_block t ~cpu ~ipa ~pfn ~perms ~level :
    (unit, [ `Already_mapped | `Misaligned ]) result =
  section t ~cpu ~what:"set_s2pt_block" @@ fun () ->
  Ticket_lock.with_lock t.lock ~cpu @@ fun () ->
  match
    Page_table.plan_map_block t.mem t.geometry ~pool:t.pool ~root:t.root
      ~va:ipa ~target_pfn:pfn ~perms ~level
  with
  | Ok writes ->
      List.iter
        (fun w ->
          Page_table.apply_write t.mem w;
          record_write t ~cpu w)
        writes;
      t.map_ops <- t.map_ops + 1;
      Ok ()
  | Error (`Already_mapped | `Misaligned) as e -> e

(** Unmap [ipa]: one leaf write, then DSB, then TLBI for the page. *)
let clear_s2pt ?(skip_barrier = false) ?(skip_tlbi = false) t ~cpu ~ipa :
    (unit, [ `Not_mapped ]) result =
  section t ~cpu ~what:"clear_s2pt" @@ fun () ->
  Ticket_lock.with_lock t.lock ~cpu @@ fun () ->
  match Page_table.plan_unmap t.mem t.geometry ~root:t.root ~va:ipa with
  | None -> Error `Not_mapped
  | Some w ->
      Page_table.apply_write t.mem w;
      record_write t ~cpu w;
      if not skip_barrier then Trace.record t.trace (Trace.E_dsb cpu);
      if not skip_tlbi then begin
        let scope = Trace.Tlbi_va (t.vmid, Page_table.va_page ipa) in
        Trace.record t.trace (Trace.E_tlbi { cpu; scope });
        t.invalidate scope
      end;
      t.unmap_ops <- t.unmap_ops + 1;
      Ok ()

(** The Example 5 anti-pattern: replace a mapping by clearing an
    intermediate table entry and installing a new leaf in one critical
    section, with no intervening barrier/TLBI. Deliberately violates the
    Transactional-Page-Table condition; used to validate the checker. *)
let remap_nontransactional t ~cpu ~ipa ~pfn ~perms :
    (unit, [ `Not_mapped ]) result =
  section t ~cpu ~what:"remap_nontransactional" @@ fun () ->
  Ticket_lock.with_lock t.lock ~cpu @@ fun () ->
  match Page_table.plan_unmap t.mem t.geometry ~root:t.root ~va:ipa with
  | None -> Error `Not_mapped
  | Some w_unmap ->
      Page_table.apply_write t.mem w_unmap;
      record_write t ~cpu w_unmap;
      (match
         Page_table.plan_map t.mem t.geometry ~pool:t.pool ~root:t.root
           ~va:ipa ~target_pfn:pfn ~perms
       with
      | Ok writes ->
          List.iter
            (fun w ->
              Page_table.apply_write t.mem w;
              record_write t ~cpu w)
            writes
      | Error `Already_mapped -> assert false);
      Ok ()

(** Stage-2 translation as used by the software paths. *)
let translate t ~ipa =
  match Page_table.walk t.mem t.geometry ~root:t.root ipa with
  | Page_table.Mapped (pfn, perms) -> Some (pfn, perms)
  | Page_table.Fault _ -> None

let mappings t = Page_table.mappings t.mem t.geometry ~root:t.root
let table_pages t = Page_table.table_pages t.mem t.geometry ~root:t.root
let is_mapped t ~ipa = translate t ~ipa <> None
