(** vCPU contexts and the ACTIVE/INACTIVE ownership protocol (paper §5.2,
    Example 3): a physical CPU claims a context by observing INACTIVE and
    setting ACTIVE, accesses the registers only while claiming, and
    releases by storing the registers and flipping the flag back. *)

type state = Inactive | Active

type t = {
  vmid : int;
  vcpuid : int;
  mutable vstate : state;
  mutable claimed_by : int option;
  regs : int array;
  mutable runs : int;
}

val n_regs : int

exception Protocol_violation of string

val create : vmid:int -> vcpuid:int -> t
val claim : t -> cpu:int -> unit
val release : t -> cpu:int -> unit
val read_reg : t -> int -> int
val write_reg : t -> int -> int -> unit

val pp_state : Format.formatter -> state -> unit
val show_state : state -> string
val equal_state : state -> state -> bool
