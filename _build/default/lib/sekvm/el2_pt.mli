(** KCore's own EL2 stage-1 page table (paper §5.1): a boot-time linear
    map of all physical memory plus a bump-allocated remap region for
    image hashing. The single write primitive never overwrites a valid
    entry — Write-Once-Kernel-Mapping by construction, re-verified by the
    trace checker. *)

open Machine

type t = {
  mem : Phys_mem.t;
  geometry : Page_table.geometry;
  pool : Page_pool.t;
  root : int;
  trace : Trace.t;
  linear_pages : int;  (** the linear map covers virtual pages [0, n) *)
  mutable next_remap_vp : int;
}

exception Write_once_violation of { va_page : int }

val create :
  mem:Phys_mem.t -> geometry:Page_table.geometry -> pool:Page_pool.t ->
  trace:Trace.t -> cpu:int -> t
(** Boot: build the 1:1 linear map over all of physical memory. *)

val remap_region_start : t -> int

val set_el2_pt :
  ?force:bool -> t -> cpu:int -> va:int -> pfn:int -> perms:Pte.perms ->
  (unit, [ `Already_mapped ]) result
(** The only EL2 page-table write primitive; refuses to overwrite valid
    entries. [force] exists solely so tests can seed a Write-Once
    violation for the checker to catch. *)

val remap_pfn : t -> cpu:int -> pfn:int -> int
(** Map [pfn] read-only at the next free remap-region page; returns the
    virtual address. Never unmaps or remaps (§5.1). *)

val translate : t -> va:int -> (int * Pte.perms) option
val table_pages : t -> int list
