(** Checker for wDRF condition 5, Sequential-TLB-Invalidation: judged
    over the execution trace — every stage-2/SMMU write that unmaps or
    remaps a valid entry must be followed by a DSB and then a TLBI whose
    scope covers the table. *)

open Sekvm

type violation = {
  v_cpu : int;
  v_table : Trace.table_id;
  v_write : Machine.Page_table.pt_write;
  v_reason : [ `No_barrier | `No_tlbi ];
}

type verdict = {
  holds : bool;
  unmaps_checked : int;
  violations : violation list;
}

val scope_covers : Trace.table_id -> Trace.tlbi_scope -> bool
val check : Trace.t -> verdict
val pp_verdict : Format.formatter -> verdict -> unit
