(** Checker for wDRF condition 4, Transactional-Page-Table (paper §5.4).

    A page-table update (a batch of word writes inside one critical
    section) is transactional if, under {e arbitrary} reordering of the
    writes, any hardware walk of any affected address observes the
    before-result, the after-result, or a page fault. The judgment is
    semantic: {!Machine.Mmu_walker.walk_relaxed} lets every walker read
    independently observe each in-flight write or not, which
    over-approximates all reorderings, and the checker compares the
    resulting observation set against {before, after, fault}.

    [audit_*] wrap the stage-2 primitives so integration tests certify the
    exact writes KCore is about to perform, then apply them. *)

open Machine

type witness = {
  w_va : int;
  w_obs : Page_table.walk_result;
}

type verdict = {
  holds : bool;
  n_writes : int;
  vas_checked : int list;
  witnesses : witness list;
}

(** Affected virtual pages of a write batch: for precision we check the
    target VA and every VA the caller nominates (e.g. neighbours sharing
    intermediate tables). *)
let check mem g ~root ~writes ~vas : verdict =
  let bad =
    Mmu_walker.transactional_violations mem g ~root ~writes ~vas
    |> List.map (fun (va, obs) -> { w_va = va; w_obs = obs })
  in
  { holds = bad = [];
    n_writes = List.length writes;
    vas_checked = vas;
    witnesses = bad }

(** Certify-then-apply for a stage-2 map: plans the walk–allocate–set
    writes of [set_s2pt], checks them, applies them. *)
let audit_map (npt : Sekvm.Npt.t) ~cpu ~ipa ~pfn ~perms ~check_vas :
    (verdict, [ `Already_mapped ]) result =
  ignore cpu;
  match
    Page_table.plan_map npt.Sekvm.Npt.mem npt.Sekvm.Npt.geometry
      ~pool:npt.Sekvm.Npt.pool ~root:npt.Sekvm.Npt.root ~va:ipa
      ~target_pfn:pfn ~perms
  with
  | Error `Already_mapped -> Error `Already_mapped
  | Ok writes ->
      let v =
        check npt.Sekvm.Npt.mem npt.Sekvm.Npt.geometry
          ~root:npt.Sekvm.Npt.root ~writes ~vas:(ipa :: check_vas)
      in
      Page_table.apply_writes npt.Sekvm.Npt.mem writes;
      Ok v

(** Certify-then-apply for a stage-2 unmap (single write). *)
let audit_unmap (npt : Sekvm.Npt.t) ~cpu ~ipa ~check_vas :
    (verdict, [ `Not_mapped ]) result =
  ignore cpu;
  match
    Page_table.plan_unmap npt.Sekvm.Npt.mem npt.Sekvm.Npt.geometry
      ~root:npt.Sekvm.Npt.root ~va:ipa
  with
  | None -> Error `Not_mapped
  | Some w ->
      let v =
        check npt.Sekvm.Npt.mem npt.Sekvm.Npt.geometry
          ~root:npt.Sekvm.Npt.root ~writes:[ w ] ~vas:(ipa :: check_vas)
      in
      Page_table.apply_write npt.Sekvm.Npt.mem w;
      Ok v

(** Certify (without applying) the Example 5 anti-pattern, given a mapped
    [ipa]: in one critical section, (a) clear the intermediate (PGD-level)
    entry pointing at [ipa]'s leaf table and (b) install a new leaf in
    that same table, mapping the neighbouring address to [pfn]. Before and
    after the batch the neighbour faults; a reordered walk can see the old
    intermediate entry together with the new leaf and reach [pfn] — the
    condition must reject the batch. *)
let audit_example5 (npt : Sekvm.Npt.t) ~ipa ~pfn ~perms : verdict option =
  let mem = npt.Sekvm.Npt.mem and g = npt.Sekvm.Npt.geometry in
  (* descend to level 1: the entry pointing at the leaf table *)
  let rec descend tp level =
    let idx = Page_table.index g ~level ipa in
    match Pte.decode (Phys_mem.read mem ~pfn:tp ~idx) with
    | Pte.Table next ->
        if level = 1 then Some (tp, idx, next) else descend next (level - 1)
    | Pte.Invalid | Pte.Page _ -> None
  in
  match descend npt.Sekvm.Npt.root (g.levels - 1) with
  | None -> None
  | Some (l1_table, l1_idx, leaf_table) ->
      let neighbour_idx =
        (Page_table.index g ~level:0 ipa + 1) mod Phys_mem.entries_per_page
      in
      let va2 =
        (* ipa with the leaf-level index replaced by neighbour_idx *)
        let mask = lnot ((Phys_mem.entries_per_page - 1) lsl Page_table.page_shift) in
        (ipa land mask) lor (neighbour_idx lsl Page_table.page_shift)
      in
      let w_clear_pgd =
        { Page_table.w_pfn = l1_table;
          w_idx = l1_idx;
          w_old = Phys_mem.read mem ~pfn:l1_table ~idx:l1_idx;
          w_new = Pte.encode Pte.Invalid }
      in
      let w_new_leaf =
        { Page_table.w_pfn = leaf_table;
          w_idx = neighbour_idx;
          w_old = Phys_mem.read mem ~pfn:leaf_table ~idx:neighbour_idx;
          w_new = Pte.encode (Pte.Page (pfn, perms)) }
      in
      Some
        (check mem g ~root:npt.Sekvm.Npt.root
           ~writes:[ w_clear_pgd; w_new_leaf ] ~vas:[ ipa; va2 ])

let pp_verdict fmt v =
  if v.holds then
    Format.fprintf fmt
      "Transactional-Page-Table: HOLDS (%d writes, %d addresses checked)"
      v.n_writes
      (List.length v.vas_checked)
  else
    Format.fprintf fmt
      "Transactional-Page-Table: VIOLATED — %d intermediate mappings \
       observable (first at va 0x%x)"
      (List.length v.witnesses)
      (match v.witnesses with w :: _ -> w.w_va | [] -> 0)
