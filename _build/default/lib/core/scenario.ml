(** Canonical whole-system scenarios, used by the certifier, the
    integration tests and the examples.

    [standard_run] boots a SeKVM system, boots VMs through KServ, runs
    guest workloads across CPUs (faulting pages in, sharing pages for
    paravirtual I/O), optionally mounts the KServ attacks, attaches an
    SMMU device, and tears one VM down — driving every KCore path whose
    trace the condition checkers then audit. *)

open Sekvm

type outcome = {
  kcore : Kcore.t;
  kserv : Kserv.t;
  vmids : int list;
  attack_results : (string * bool) list;
      (** (attack, denied?) — all must be denied *)
  guest_sum : int;  (** checksum over guest-visible results *)
}

let boot_system ?(config = Kcore.default_boot_config) () =
  let kcore = Kcore.boot config in
  let kserv = Kserv.create kcore ~first_free_pfn:(Kcore.kserv_base config) in
  (kcore, kserv)

let standard_run ?(config = Kcore.default_boot_config) ?(n_vms = 2)
    ?(with_attacks = true) ?(with_smmu = true) ?(teardown_last = true) () :
    outcome =
  let kcore, kserv = boot_system ~config () in
  let vmids =
    List.init n_vms (fun i ->
        match
          Kserv.boot_vm kserv ~cpu:(i mod config.Kcore.n_cpus) ~n_vcpus:2
            ~image_pages:3
        with
        | Ok vmid -> vmid
        | Error _ -> Kcore.panic "scenario: VM boot failed")
  in
  (* run guest workloads: memory touches + a virtio round per VM *)
  let guest_sum = ref 0 in
  List.iteri
    (fun i vmid ->
      let cpu = (i + 1) mod config.Kcore.n_cpus in
      let results =
        Kserv.run_guest kserv ~cpu ~vmid ~vcpuid:0
          (Vm.touch_pages ~first_ipa_page:(16 + i) ~n:4)
        @ Kserv.run_guest kserv ~cpu ~vmid ~vcpuid:1
            (Vm.virtio_round
               ~ring_ipa:(Machine.Page_table.page_va 40)
               ~payload:(1000 + i))
      in
      List.iter
        (function
          | Vm.R_value v -> guest_sum := !guest_sum + v
          | Vm.R_unit -> incr guest_sum
          | Vm.R_denied -> ())
        results)
    vmids;
  (* SMMU: assign a device to the first VM and map one of its pages *)
  if with_smmu then begin
    let vmid = List.hd vmids in
    (match
       Kcore.smmu_attach kcore ~cpu:0 ~device:1
         ~owner:(Machine.S2page.Vm vmid)
     with
    | Ok () -> ()
    | Error `Denied -> Kcore.panic "scenario: smmu_attach denied");
    let vm_pfn =
      List.hd
        (Machine.S2page.pages_owned_by kcore.Kcore.s2page
           (Machine.S2page.Vm vmid))
    in
    (match Kcore.smmu_map kcore ~cpu:0 ~device:1 ~iova:0 ~pfn:vm_pfn with
    | Ok () -> ()
    | Error `Denied -> Kcore.panic "scenario: smmu_map denied");
    match Kcore.smmu_unmap kcore ~cpu:0 ~device:1 ~iova:0 with
    | Ok () -> ()
    | Error `Denied -> Kcore.panic "scenario: smmu_unmap denied"
  end;
  (* the attacks a compromised KServ would mount *)
  let attack_results =
    if not with_attacks then []
    else begin
      let vmid = List.hd vmids in
      let vm_pfn =
        List.hd
          (Machine.S2page.pages_owned_by kcore.Kcore.s2page
             (Machine.S2page.Vm vmid))
      in
      let denied = function Error `Denied -> true | Ok _ -> false in
      [ ( "kserv-read-vm-page",
          denied (Kserv.attack_read_vm_page kserv ~cpu:0 ~pfn:vm_pfn) );
        ( "kserv-write-vm-page",
          denied (Kserv.attack_write_vm_page kserv ~cpu:0 ~pfn:vm_pfn 0xbad) );
        ( "kserv-steal-vm-page",
          denied
            (Kserv.attack_steal_page kserv ~cpu:0 ~victim_pfn:vm_pfn
               ~vmid:(List.nth vmids (min 1 (n_vms - 1)))
               ~ipa:(Machine.Page_table.page_va 200)) );
        ( "kserv-read-kcore-page",
          denied (Kserv.attack_read_vm_page kserv ~cpu:0 ~pfn:2) );
        ( "kserv-dma-into-kcore",
          (* the device belongs to the VM; mapping a KCore page for its
             DMA must be refused *)
          (not with_smmu)
          || denied (Kserv.attack_dma_map kserv ~cpu:0 ~device:1 ~pfn:2) ) ]
    end
  in
  if teardown_last then
    Kcore.teardown_vm kcore ~cpu:0 ~vmid:(List.hd (List.rev vmids));
  { kcore; kserv; vmids; attack_results; guest_sum = !guest_sum }

(* ------------------------------------------------------------------ *)
(* Multi-VM stress                                                     *)
(* ------------------------------------------------------------------ *)

type stress_stats = {
  st_vms : int;
  st_rounds : int;
  st_guest_ops : int;
  st_s2_faults : int;
  st_hypercalls : int;
  st_vipis : int;
  st_invariant_checks : int;
}

(** Run [n_vms] VMs concurrently for [rounds] rounds: each round
    round-robins every VM's two vCPUs over the physical CPUs, running a
    mixed workload (page touches, virtio sharing, IPIs, UART). The
    security invariants are re-checked after every round; any violation
    raises. This is the executable analog of Fig. 9's many-VM
    configuration — the same KCore paths under heavy interleaving. *)
let stress_run ?(config = Kcore.default_boot_config) ?(n_vms = 4)
    ?(rounds = 3) () : stress_stats =
  let kcore, kserv = boot_system ~config () in
  let vmids =
    List.init n_vms (fun i ->
        match
          Kserv.boot_vm kserv ~cpu:(i mod config.Kcore.n_cpus) ~n_vcpus:2
            ~image_pages:2
        with
        | Ok vmid -> vmid
        | Error _ -> Kcore.panic "stress: boot failed")
  in
  let ops = ref 0 in
  let checks = ref 0 in
  for round = 0 to rounds - 1 do
    List.iteri
      (fun i vmid ->
        let cpu = (i + round) mod config.Kcore.n_cpus in
        let batch0 =
          Vm.touch_pages ~first_ipa_page:(32 + (8 * round)) ~n:2
          @ Vm.ipi_round ~peer:1 ~rounds:2
        in
        let batch1 =
          Vm.virtio_round
            ~ring_ipa:(Machine.Page_table.page_va (100 + round))
            ~payload:(round * 100)
          @ [ Vm.G_uart_putc (65 + round); Vm.G_ack_irq ]
        in
        ops := !ops + List.length batch0 + List.length batch1;
        ignore (Kserv.run_guest kserv ~cpu ~vmid ~vcpuid:0 batch0);
        ignore
          (Kserv.run_guest kserv
             ~cpu:((cpu + 1) mod config.Kcore.n_cpus)
             ~vmid ~vcpuid:1 batch1))
      vmids;
    incr checks;
    match Kcore.check_invariants kcore with
    | [] -> ()
    | bad ->
        Kcore.panic "stress: %d invariant violations in round %d"
          (List.length bad) round
  done;
  (* cross-VM disjointness: no frame is mapped by two different VMs *)
  let all_pfn_sets =
    List.map
      (fun vmid ->
        List.map (fun (_, pfn, _) -> pfn)
          (Npt.mappings (Kcore.find_vm kcore vmid).Kcore.npt))
      vmids
  in
  List.iteri
    (fun i s1 ->
      List.iteri
        (fun j s2 ->
          if i < j && List.exists (fun p -> List.mem p s2) s1 then
            Kcore.panic "stress: VMs %d and %d share a frame" i j)
        all_pfn_sets)
    all_pfn_sets;
  (* tear every VM down; all their memory returns scrubbed *)
  List.iter (fun vmid -> Kcore.teardown_vm kcore ~cpu:0 ~vmid) vmids;
  (match Kcore.check_invariants kcore with
  | [] -> ()
  | bad ->
      Kcore.panic "stress: %d invariant violations after teardown"
        (List.length bad));
  { st_vms = n_vms;
    st_rounds = rounds;
    st_guest_ops = !ops;
    st_s2_faults = kcore.Kcore.s2_faults;
    st_hypercalls = kcore.Kcore.hypercalls;
    st_vipis = kcore.Kcore.vipis;
    st_invariant_checks = !checks }
