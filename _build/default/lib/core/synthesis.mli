(** Barrier synthesis (VSync-inspired, cf. paper §7): given a kernel
    fragment whose relaxed behaviors exceed SC, search for a
    minimum-cardinality set of ordering upgrades (plain load →
    load-acquire, plain store → store-release, plain RMW →
    acquire-release) under which the refinement theorem holds again.
    Exact within the exploration budget: candidates are enumerated in
    increasing size and judged by the exhaustive {!Refinement} checker. *)

open Memmodel

type site = { s_tid : int; s_index : int; s_desc : string }

val pp_site : Format.formatter -> site -> unit
val show_site : site -> string
val equal_site : site -> site -> bool

val sites : Prog.t -> site list
(** The upgradeable (plain-ordered) access sites of a program. *)

val apply : Prog.t -> site list -> Prog.t
(** Upgrade the chosen sites. *)

type result = {
  original : Refinement.verdict;
  repaired : (site list * Refinement.verdict) option;
      (** a minimum-cardinality upgrade set and its passing verdict *)
  candidates_tried : int;
  site_count : int;
}

val repair : ?config:Promising.config -> ?max_upgrades:int -> Prog.t -> result
val pp_result : Format.formatter -> result -> unit
