(** Checker for wDRF condition 6, (Weak-)Memory-Isolation: (1) users
    cannot write kernel memory (reachability invariants); (2) kernel
    reads of user memory are oracle-mediated; (3) the kernel-observable
    state is independent of user behavior (the oracle-independence
    experiment). The strong form additionally forbids user-memory reads
    altogether — it fails for any SeKVM that authenticates images or
    snapshots VMs, which is exactly why the paper weakens it (§4.3). *)

open Sekvm

type verdict = {
  holds : bool;  (** the weak condition, as SeKVM satisfies it *)
  strong_holds : bool;  (** the strong condition *)
  reachability_violations : Kcore.invariant_violation list;
  raw_user_reads : int;
  oracle_reads : int;
}

val isolation_invariants : string list
val check : Kcore.t -> verdict

val oracle_independent :
  behaviors:'a list -> scenario:(user:'a -> int) -> bool
(** Run [scenario] once per user behavior; holds iff the returned
    kernel-state digests all agree. *)

val kernel_digest : Kcore.t -> int
(** Canonical kernel-observable digest: ownership, sharing, mapping
    shapes, VM phases — deliberately excluding user page contents. *)

val pp_verdict : Format.formatter -> verdict -> unit
