(** Constructing an SC execution from a push/pull execution (paper §4.1,
    Fig. 6): shared accesses are assigned to their critical sections; two
    accesses from different CPUs are ordered iff the first one's push
    precedes the second one's pull in the global promise order; any
    topological sort of the resulting partial order is an SC execution
    with the same results. *)

open Memmodel

type kind = K_read | K_write | K_rmw

type access = {
  a_pos : int;  (** position in the global trace (the promise order) *)
  a_tid : int;
  a_loc : Loc.t;
  a_kind : kind;
  a_value : int;
  a_cs : (int * int) option;  (** (pull position, push position) *)
}

type t = { accesses : access list; tracked : string list }

val analyze : ?tracked:string list -> Pushpull.event list -> t
val happens_before : access -> access -> bool
val concurrent : access -> access -> bool

val linearize : t -> access list
(** A topological sort consistent with {!happens_before}. *)

val replay_matches : ?init:(Loc.t -> int) -> access list -> bool
(** Replay a linearization against a fresh SC memory: every read must see
    the value it saw in the original execution ("same execution results",
    Theorem 2). *)

val consistent : t -> access list -> bool

val pp_kind : Format.formatter -> kind -> unit
val show_kind : kind -> string
val equal_kind : kind -> kind -> bool
