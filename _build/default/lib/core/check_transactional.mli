(** Checker for wDRF condition 4, Transactional-Page-Table: with a batch
    of page-table writes in flight, every relaxed hardware walk
    ({!Machine.Mmu_walker.walk_relaxed}) of every nominated address must
    observe the before-result, the after-result, or a fault. *)

open Machine

type witness = { w_va : int; w_obs : Page_table.walk_result }

type verdict = {
  holds : bool;
  n_writes : int;
  vas_checked : int list;
  witnesses : witness list;
}

val check :
  Phys_mem.t -> Page_table.geometry -> root:int ->
  writes:Page_table.pt_write list -> vas:int list -> verdict

val audit_map :
  Sekvm.Npt.t -> cpu:int -> ipa:int -> pfn:int -> perms:Pte.perms ->
  check_vas:int list -> (verdict, [ `Already_mapped ]) result
(** Certify-then-apply for a stage-2 map: plan the walk–allocate–set
    writes, judge them, apply them. *)

val audit_unmap :
  Sekvm.Npt.t -> cpu:int -> ipa:int -> check_vas:int list ->
  (verdict, [ `Not_mapped ]) result

val audit_example5 :
  Sekvm.Npt.t -> ipa:int -> pfn:int -> perms:Pte.perms -> verdict option
(** Construct the paper's Example 5 batch for a mapped [ipa] (clear the
    intermediate entry while installing a new leaf beneath it) and judge
    it — the condition must reject it. *)

val pp_verdict : Format.formatter -> verdict -> unit
