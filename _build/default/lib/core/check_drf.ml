(** Checker for wDRF condition 1, DRF-Kernel (paper §4.1, §5.2).

    A kernel program satisfies DRF-Kernel iff, under the push/pull
    ownership discipline, no interleaving panics: every pull targets a
    free base, every push a base the CPU owns, and every access to a
    tracked shared base happens under ownership. Synchronization-method
    internals (ticket/now of the locks) and page-table bases are passed in
    [exempt], exactly as the condition's side clause allows — those races
    are discharged by conditions 2, 4 and 5 instead. *)

open Memmodel

type verdict = {
  holds : bool;
  violation : Pushpull.violation option;
  kernel_panic : Behavior.outcome option;
      (** the program itself panicked on some SC path: not a DRF issue but
          reported because a panicking kernel is wrong regardless *)
  behaviors : Behavior.t option;  (** SC behaviors if the check passed *)
}

let check ?(fuel = 16) ?(exempt = []) ?(initial_owners = []) (prog : Prog.t)
    : verdict =
  match Pushpull.check ~fuel ~exempt ~initial_owners prog with
  | Pushpull.Drf_ok b ->
      { holds = true; violation = None; kernel_panic = None;
        behaviors = Some b }
  | Pushpull.Drf_violation v ->
      { holds = false; violation = Some v; kernel_panic = None;
        behaviors = None }
  | Pushpull.Drf_kernel_panic o ->
      { holds = true; violation = None; kernel_panic = Some o;
        behaviors = None }

let pp_verdict fmt v =
  if v.holds then
    Format.fprintf fmt "DRF-Kernel: HOLDS%s"
      (match v.kernel_panic with
      | Some _ -> " (but the program can panic on SC!)"
      | None -> "")
  else
    Format.fprintf fmt "DRF-Kernel: VIOLATED — %a"
      (Format.pp_print_option Pushpull.pp_violation)
      v.violation
