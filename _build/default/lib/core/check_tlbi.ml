(** Checker for wDRF condition 5, Sequential-TLB-Invalidation (paper §5.5).

    Judged over the recorded execution trace: every page-table write that
    unmaps or remaps a valid entry (of a stage-2 or SMMU table — the EL2
    table never needs invalidation thanks to Write-Once) must be followed,
    before its critical section ends, by a DSB barrier and then a TLB
    invalidation whose scope covers the table. Writes filling previously
    empty entries need no invalidation ([set_s2pt] operates on empty
    entries only). *)

open Sekvm
open Machine

type violation = {
  v_cpu : int;
  v_table : Trace.table_id;
  v_write : Page_table.pt_write;
  v_reason : [ `No_barrier | `No_tlbi ];
}

type verdict = {
  holds : bool;
  unmaps_checked : int;
  violations : violation list;
}

let scope_covers (table : Trace.table_id) (scope : Trace.tlbi_scope) =
  match (table, scope) with
  | _, Trace.Tlbi_all -> true
  | Trace.T_stage2 v, Trace.Tlbi_vmid v' -> v = v'
  | Trace.T_stage2 v, Trace.Tlbi_va (v', _) -> v = v'
  | Trace.T_smmu d, Trace.Tlbi_smmu_dev d' -> d = d'
  | _ -> false

(** Does the event suffix contain, for [cpu], a DSB and then a covering
    TLBI before the end of the recording? *)
let followed_by_dsb_tlbi ~cpu ~table suffix =
  let rec find_dsb = function
    | [] -> Error `No_barrier
    | Trace.E_dsb c :: rest when c = cpu -> find_tlbi rest
    | _ :: rest -> find_dsb rest
  and find_tlbi = function
    | [] -> Error `No_tlbi
    | Trace.E_tlbi { cpu = c; scope } :: _
      when c = cpu && scope_covers table scope ->
        Ok ()
    | _ :: rest -> find_tlbi rest
  in
  find_dsb suffix

let is_unmap_or_remap (w : Page_table.pt_write) =
  Pte.is_valid w.Page_table.w_old
  && (w.Page_table.w_new <> w.Page_table.w_old)

let check (trace : Trace.t) : verdict =
  let violations = ref [] in
  let checked = ref 0 in
  let rec go = function
    | [] -> ()
    | Trace.E_pt_write { cpu; table; write; _ } :: rest
      when table <> Trace.T_el2 && is_unmap_or_remap write ->
        incr checked;
        (match followed_by_dsb_tlbi ~cpu ~table rest with
        | Ok () -> ()
        | Error reason ->
            violations :=
              { v_cpu = cpu; v_table = table; v_write = write;
                v_reason = reason }
              :: !violations);
        go rest
    | _ :: rest -> go rest
  in
  go (Trace.events trace);
  { holds = !violations = [];
    unmaps_checked = !checked;
    violations = List.rev !violations }

let pp_verdict fmt v =
  if v.holds then
    Format.fprintf fmt
      "Sequential-TLB-Invalidation: HOLDS (%d unmap/remap writes, each \
       followed by DSB + TLBI)"
      v.unmaps_checked
  else
    Format.fprintf fmt
      "Sequential-TLB-Invalidation: VIOLATED (%d unguarded unmaps: %s)"
      (List.length v.violations)
      (String.concat ", "
         (List.map
            (fun x ->
              match x.v_reason with
              | `No_barrier -> "missing barrier"
              | `No_tlbi -> "missing TLBI")
            v.violations))
