(** Checker for wDRF condition 6, (Weak-)Memory-Isolation (paper §4.3, §5.3).

    Three executable judgments:

    {ol
    {- {b Users cannot write kernel memory.} KCore's pages (static
       footprint, pools, and every page-table page) must be unreachable
       through any stage-2 table and any SMMU context — delegated to
       {!Sekvm.Kcore.check_invariants}, filtered to the isolation-relevant
       invariants.}
    {- {b Kernel reads of user memory are oracle-mediated.} The trace may
       contain [E_oracle_read] events (reads whose value the proofs treat
       as oracle-supplied) but no raw [E_mem_read] of a page KCore does
       not own.}
    {- {b Oracle independence} (the "weak" part). Running a scenario
       twice with the same oracle stream but different untrusted-program
       behavior must leave the kernel-observable state identical —
       executable evidence that the proofs do not depend on user
       implementations.}} *)

open Sekvm

type verdict = {
  holds : bool;  (** the weak condition, as SeKVM satisfies it (§4.3) *)
  strong_holds : bool;
      (** the strong condition: the kernel never reads user memory at all
          — fails for any SeKVM that authenticates images or snapshots
          VMs, which is precisely why the paper weakens it *)
  reachability_violations : Kcore.invariant_violation list;
  raw_user_reads : int;
  oracle_reads : int;
}

let isolation_invariants =
  [ "table-pages-kcore-owned"; "no-kcore-page-mapped"; "no-kcore-page-dma";
    "smmu-enabled" ]

let check (kcore : Kcore.t) : verdict =
  let reach =
    List.filter
      (fun v -> List.mem v.Kcore.inv isolation_invariants)
      (Kcore.check_invariants kcore)
  in
  let raw = ref 0 and oracled = ref 0 in
  List.iter
    (function
      | Trace.E_mem_read { owner; _ } when owner <> Machine.S2page.Kcore ->
          incr raw
      | Trace.E_oracle_read _ -> incr oracled
      | _ -> ())
    (Trace.events kcore.Kcore.trace);
  { holds = reach = [] && !raw = 0;
    strong_holds = reach = [] && !raw = 0 && !oracled = 0;
    reachability_violations = reach;
    raw_user_reads = !raw;
    oracle_reads = !oracled }

(** Oracle-independence experiment: [scenario] receives a freshly booted
    system and a "user behavior" knob, and returns a digest of the
    kernel-observable state. The verdict holds iff the digest is invariant
    across user behaviors. *)
let oracle_independent ~(behaviors : 'a list)
    ~(scenario : user:'a -> int) : bool =
  match List.map (fun user -> scenario ~user) behaviors with
  | [] -> true
  | d :: rest -> List.for_all (fun d' -> d' = d) rest

(** A canonical kernel-observable digest: ownership table + stage-2
    mapping shapes + hypercall counts. VM/KServ page {e contents} are
    deliberately excluded — they are user state. *)
let kernel_digest (kcore : Kcore.t) : int =
  let h = ref 0x811c9dc5 in
  let mix v = h := (!h * 0x01000193) lxor v in
  let module S2 = Machine.S2page in
  for pfn = 0 to S2.n_pages kcore.Kcore.s2page - 1 do
    mix
      (match S2.owner kcore.Kcore.s2page pfn with
      | S2.Kcore -> 1
      | S2.Kserv -> 2
      | S2.Vm v -> 100 + v);
    mix (if S2.is_shared kcore.Kcore.s2page pfn then 1 else 0);
    mix (S2.map_count kcore.Kcore.s2page pfn)
  done;
  List.iter
    (fun (vmid, vm) ->
      mix vmid;
      mix (match vm.Kcore.vstate with
          | Kcore.Registered -> 1 | Kcore.Verified -> 2 | Kcore.Torn_down -> 3);
      List.iter
        (fun (vp, pfn, _) ->
          mix vp;
          mix pfn)
        (Npt.mappings vm.Kcore.npt))
    kcore.Kcore.vms;
  mix kcore.Kcore.next_vmid;
  !h

let pp_verdict fmt v =
  if v.holds then
    Format.fprintf fmt
      "Memory-Isolation: %s HOLDS (kernel memory unreachable by users; %d \
       user-memory reads, all oracle-mediated)"
      (if v.strong_holds then "strong" else "weak")
      v.oracle_reads
  else
    Format.fprintf fmt
      "Memory-Isolation: VIOLATED (%d reachability violations, %d raw \
       user-memory reads)"
      (List.length v.reachability_violations)
      v.raw_user_reads
