(** Checker for wDRF condition 2, No-Barrier-Misuse (paper Fig. 5): on
    every control-flow path, each pull must be fulfilled by an
    acquire-flavored access or load/full DMB, and each push by a
    release-flavored access or store/full DMB, before any access to the
    protected footprint intervenes. *)

open Memmodel

type violation = {
  v_tid : int;
  v_kind : [ `Pull_unfulfilled | `Push_unfulfilled ];
  v_bases : string list;
}

val pp_violation : Format.formatter -> violation -> unit

type verdict = { holds : bool; violations : violation list }

val paths : Instr.t list -> Instr.t list list
(** Control-flow paths, unrolling loops zero and one time. *)

val check : Prog.t -> verdict
val pp_verdict : Format.formatter -> verdict -> unit
