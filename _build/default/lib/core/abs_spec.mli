(** Abstract functional specification of KCore, and executable
    refinement — the analog of the SeKVM layered Coq proofs' top layer.
    The abstract state is only the security-relevant content (ownership,
    sharing, stage-2 mapping functions, VM phases); each hypercall has a
    pure transition; refinement is the testable commutation
    [abstract(impl) --spec--> abstract(impl after op)]. *)

type owner = O_kcore | O_kserv | O_vm of int

type vm_phase = P_registered | P_verified | P_torn_down

type t = {
  n_pages : int;
  page_owner : owner list;  (** indexed by pfn *)
  page_shared : bool list;
  vms : (int * vm_phase) list;  (** sorted by vmid *)
  vm_maps : (int * (int * int) list) list;
      (** per VM: sorted (guest page -> pfn) mapping function *)
  kserv_map : (int * int) list;
  smmu : (int * (owner * (int * int) list)) list;
      (** per device: assigned owner and (iova page -> pfn) map *)
  next_vmid : int;
}

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val abstract : Sekvm.Kcore.t -> t
(** Forget everything the security statements don't mention: TLBs, pools,
    traces, counters, page contents. *)

(** {2 Specification transitions (pure)} *)

val spec_register_vm : t -> t * int
val spec_set_vm_image : t -> vmid:int -> pfns:int list -> (t, [ `Denied ]) result
val spec_map_page_to_vm : t -> vmid:int -> vp:int -> pfn:int -> (t, [ `Denied ]) result
val spec_kserv_fault : t -> pfn:int -> (t, [ `Denied ]) result
val spec_share : t -> vmid:int -> vp:int -> (t, [ `Denied ]) result
val spec_unshare : t -> vmid:int -> vp:int -> (t, [ `Denied ]) result
val spec_teardown : t -> vmid:int -> t
val spec_smmu_attach : t -> device:int -> owner:owner -> (t, [ `Denied ]) result
val spec_smmu_map : t -> device:int -> iova_page:int -> pfn:int -> (t, [ `Denied ]) result
val spec_smmu_unmap : t -> device:int -> iova_page:int -> (t, [ `Denied ]) result

val invariant : t -> (unit, string) result
(** The abstract §5.3 invariants, preserved by every transition (checked
    by induction in the tests). *)

(** {2 Helpers} *)

val owner_of : t -> int -> owner
val shared_of : t -> int -> bool
val vm_phase_of : t -> int -> vm_phase option
val vm_map_of : t -> int -> (int * int) list

val pp_owner : Format.formatter -> owner -> unit
val show_owner : owner -> string
val equal_owner : owner -> owner -> bool
val pp_vm_phase : Format.formatter -> vm_phase -> unit
val show_vm_phase : vm_phase -> string
val equal_vm_phase : vm_phase -> vm_phase -> bool
