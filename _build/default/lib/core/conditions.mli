(** The six wDRF conditions (paper §3), as first-class values: paper
    name, §3 statement, and the checker module discharging each in this
    reproduction. *)

type id =
  | Drf_kernel
  | No_barrier_misuse
  | Write_once_kernel_mapping
  | Transactional_page_table
  | Sequential_tlb_invalidation
  | Memory_isolation  (** checked in its weak form, as for SeKVM (§4.3) *)

type t = { cid : id; name : string; statement : string; checker : string }

val all : t list
val find : id -> t

val pp_id : Format.formatter -> id -> unit
val show_id : id -> string
val equal_id : id -> id -> bool
val compare_id : id -> id -> int
