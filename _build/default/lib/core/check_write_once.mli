(** Checker for wDRF condition 3, Write-Once-Kernel-Mapping: judged over
    the recorded execution trace — every write to the kernel's own (EL2)
    page table must target an empty entry. *)

type violation = { v_cpu : int; v_write : Machine.Page_table.pt_write }

type verdict = {
  holds : bool;
  el2_writes : int;
  violations : violation list;
}

val check : Sekvm.Trace.t -> verdict
val pp_verdict : Format.formatter -> verdict -> unit
