(** Barrier synthesis: repair a racy kernel fragment by upgrading the
    fewest possible accesses to acquire/release.

    VSync (Oberhauser et al., ASPLOS'21 — the paper's §7) shows
    synchronization primitives can be automatically checked and their
    barriers optimized on weak memory models. This module brings the idea
    into the VRM setting: given a program whose relaxed behaviors exceed
    its SC behaviors (a refinement violation), search the space of
    ordering upgrades — plain loads to load-acquire, plain stores to
    store-release, plain RMWs to acquire-release — for a {e minimal} set
    that makes the refinement theorem hold again.

    The search enumerates upgrade sets in increasing size, so the first
    hit is minimum-cardinality; each candidate is judged by the
    exhaustive {!Refinement} checker, making the result sound within the
    exploration budget. Programs here are corpus-sized (a handful of
    upgradeable sites), so the exponential enumeration is exact rather
    than heuristic. *)

open Memmodel

(** An upgradeable site: the [n]-th upgrade point of thread [tid] in
    program order (loads, stores, and RMWs with [Plain] ordering). *)
type site = { s_tid : int; s_index : int; s_desc : string }
[@@deriving show, eq]

(* Walk a thread's code, applying [f idx] at each upgradeable site; used
   both to enumerate sites and to apply an upgrade set. *)
let map_sites (code : Instr.t list) (f : int -> Instr.t -> Instr.t) :
    Instr.t list =
  let counter = ref 0 in
  let rec go (i : Instr.t) : Instr.t =
    match i with
    | Instr.Load (_, _, Instr.Plain)
    | Instr.Store (_, _, Instr.Plain)
    | Instr.Faa (_, _, _, Instr.Plain)
    | Instr.Xchg (_, _, _, Instr.Plain)
    | Instr.Cas (_, _, _, _, Instr.Plain) ->
        let idx = !counter in
        incr counter;
        f idx i
    | Instr.If (c, a, b) -> Instr.If (c, List.map go a, List.map go b)
    | Instr.While (c, b) -> Instr.While (c, List.map go b)
    | other -> other
  in
  List.map go code

let describe (i : Instr.t) : string =
  match i with
  | Instr.Load (r, a, _) ->
      Format.asprintf "%s := [%s] -> load-acquire" (Reg.name r) a.Expr.abase
  | Instr.Store (a, _, _) ->
      Format.asprintf "[%s] := _ -> store-release" a.Expr.abase
  | Instr.Faa (_, a, _, _) | Instr.Xchg (_, a, _, _)
  | Instr.Cas (_, a, _, _, _) ->
      Format.asprintf "rmw [%s] -> acquire-release" a.Expr.abase
  | _ -> "?"

let upgrade (i : Instr.t) : Instr.t =
  match i with
  | Instr.Load (r, a, Instr.Plain) -> Instr.Load (r, a, Instr.Acquire)
  | Instr.Store (a, e, Instr.Plain) -> Instr.Store (a, e, Instr.Release)
  | Instr.Faa (r, a, e, Instr.Plain) -> Instr.Faa (r, a, e, Instr.Acq_rel)
  | Instr.Xchg (r, a, e, Instr.Plain) -> Instr.Xchg (r, a, e, Instr.Acq_rel)
  | Instr.Cas (r, a, x, d, Instr.Plain) -> Instr.Cas (r, a, x, d, Instr.Acq_rel)
  | other -> other

(** The upgradeable sites of a program. *)
let sites (prog : Prog.t) : site list =
  List.concat_map
    (fun th ->
      let acc = ref [] in
      ignore
        (map_sites th.Prog.code (fun idx i ->
             acc :=
               { s_tid = th.Prog.tid; s_index = idx; s_desc = describe i }
               :: !acc;
             i));
      List.rev !acc)
    prog.Prog.threads

(** Apply an upgrade set. *)
let apply (prog : Prog.t) (chosen : site list) : Prog.t =
  let threads =
    List.map
      (fun th ->
        let mine =
          List.filter_map
            (fun s -> if s.s_tid = th.Prog.tid then Some s.s_index else None)
            chosen
        in
        { th with
          Prog.code =
            map_sites th.Prog.code (fun idx i ->
                if List.mem idx mine then upgrade i else i) })
      prog.Prog.threads
  in
  { prog with Prog.threads }

(* subsets of [l] of size [k] *)
let rec choose k l =
  if k = 0 then [ [] ]
  else
    match l with
    | [] -> []
    | x :: rest ->
        List.map (fun c -> x :: c) (choose (k - 1) rest) @ choose k rest

type result = {
  original : Refinement.verdict;  (** the violation being repaired *)
  repaired : (site list * Refinement.verdict) option;
      (** a minimum-cardinality upgrade set and its (passing) verdict *)
  candidates_tried : int;
  site_count : int;
}

(** [repair ?config ?max_upgrades prog] — find a smallest set of ordering
    upgrades making [behaviors(RM) ⊆ behaviors(SC)] hold. Returns
    [repaired = None] if the program already refines (nothing to do) or
    no set within [max_upgrades] works. *)
let repair ?config ?(max_upgrades = 4) (prog : Prog.t) : result =
  let original = Refinement.check ?config prog in
  let all_sites = sites prog in
  let tried = ref 0 in
  let repaired =
    if original.Refinement.holds then None
    else
      let rec search k =
        if k > min max_upgrades (List.length all_sites) then None
        else
          let hit =
            List.find_map
              (fun chosen ->
                incr tried;
                let v = Refinement.check ?config (apply prog chosen) in
                if v.Refinement.holds then Some (chosen, v) else None)
              (choose k all_sites)
          in
          match hit with Some _ as r -> r | None -> search (k + 1)
      in
      search 1
  in
  { original;
    repaired;
    candidates_tried = !tried;
    site_count = List.length all_sites }

let pp_result fmt (r : result) =
  match r.repaired with
  | None ->
      if r.original.Refinement.holds then
        Format.fprintf fmt
          "nothing to repair: the program already refines SC"
      else
        Format.fprintf fmt
          "no upgrade set of the allowed size repairs the program (%d \
           candidates over %d sites)"
          r.candidates_tried r.site_count
  | Some (chosen, _) ->
      Format.fprintf fmt
        "@[<v>repaired with %d upgrade(s) (tried %d candidates over %d \
         sites):@,%a@]"
        (List.length chosen) r.candidates_tried r.site_count
        (Format.pp_print_list (fun fmt s ->
             Format.fprintf fmt "CPU %d, site %d: %s" s.s_tid s.s_index
               s.s_desc))
        chosen
