(** Abstract functional specification of KCore, and executable refinement.

    SeKVM's 34.2K-line Coq development proves that the KCore
    implementation refines a stack of abstract layers, on top of which the
    security theorems are stated. This module is the executable analog of
    the top layer: an {e abstract machine} whose state is just the
    security-relevant content — page ownership, sharing, the stage-2
    mapping {e functions}, VM lifecycle — with one pure transition function
    per hypercall, written directly from the paper's English.

    Refinement is then a testable statement (checked by randomized
    commutation in [test_abs_spec] and usable on any scenario):

    {v  abstract(impl_state) --spec op--> abstract(impl_state after op)  v}

    i.e. running the real KCore and abstracting commutes with running the
    specification. The abstraction function [abstract] forgets everything
    the security statements don't mention: TLBs, pools, traces,
    performance counters, page {e contents} (only ownership governs who
    can observe them). *)

open Sekvm
open Machine

(* ------------------------------------------------------------------ *)
(* Abstract state                                                      *)
(* ------------------------------------------------------------------ *)

type owner = O_kcore | O_kserv | O_vm of int [@@deriving show, eq, ord]

type vm_phase = P_registered | P_verified | P_torn_down
[@@deriving show, eq, ord]

type t = {
  n_pages : int;
  page_owner : owner list;  (** indexed by pfn *)
  page_shared : bool list;
  vms : (int * vm_phase) list;  (** sorted by vmid *)
  vm_maps : (int * (int * int) list) list;
      (** per VM: sorted (guest page -> pfn) mapping function *)
  kserv_map : (int * int) list;  (** KServ's stage-2 mapping function *)
  smmu : (int * (owner * (int * int) list)) list;
      (** per device: assigned owner and sorted (iova page -> pfn) map *)
  next_vmid : int;
}
[@@deriving eq]

let sorted l = List.sort compare l

(* ------------------------------------------------------------------ *)
(* Abstraction function                                                *)
(* ------------------------------------------------------------------ *)

let abstract_owner = function
  | S2page.Kcore -> O_kcore
  | S2page.Kserv -> O_kserv
  | S2page.Vm v -> O_vm v

let abstract_phase = function
  | Kcore.Registered -> P_registered
  | Kcore.Verified -> P_verified
  | Kcore.Torn_down -> P_torn_down

(** Forget everything but the security-relevant state. *)
let abstract (k : Kcore.t) : t =
  let n = S2page.n_pages k.Kcore.s2page in
  { n_pages = n;
    page_owner =
      List.init n (fun pfn -> abstract_owner (S2page.owner k.Kcore.s2page pfn));
    page_shared = List.init n (fun pfn -> S2page.is_shared k.Kcore.s2page pfn);
    vms =
      sorted
        (List.map (fun (vmid, vm) -> (vmid, abstract_phase vm.Kcore.vstate))
           k.Kcore.vms);
    vm_maps =
      sorted
        (List.map
           (fun (vmid, vm) ->
             ( vmid,
               sorted
                 (List.map (fun (vp, pfn, _) -> (vp, pfn))
                    (Npt.mappings vm.Kcore.npt)) ))
           k.Kcore.vms);
    kserv_map =
      sorted
        (List.map (fun (vp, pfn, _) -> (vp, pfn))
           (Npt.mappings k.Kcore.kserv_npt));
    smmu =
      sorted
        (List.map
           (fun (device, owner) ->
             let root =
               Option.get
                 (Smmu.root_of k.Kcore.smmu_ops.Smmu_ops.smmu ~device)
             in
             ( device,
               ( abstract_owner owner,
                 sorted
                   (List.map
                      (fun (vp, pfn, _) -> (vp, pfn))
                      (Page_table.mappings k.Kcore.mem
                         k.Kcore.smmu_ops.Smmu_ops.smmu.Smmu.geometry ~root)) ) ))
           k.Kcore.smmu_owners);
    next_vmid = k.Kcore.next_vmid }

(* ------------------------------------------------------------------ *)
(* Specification transitions (pure)                                    *)
(* ------------------------------------------------------------------ *)

let set_nth l i v = List.mapi (fun j x -> if j = i then v else x) l

let owner_of st pfn = List.nth st.page_owner pfn
let shared_of st pfn = List.nth st.page_shared pfn

let vm_phase_of st vmid = List.assoc_opt vmid st.vms

let vm_map_of st vmid =
  match List.assoc_opt vmid st.vm_maps with Some m -> m | None -> []

let update_vm_map st vmid f =
  { st with
    vm_maps =
      sorted
        ((vmid, sorted (f (vm_map_of st vmid)))
        :: List.remove_assoc vmid st.vm_maps) }

let update_phase st vmid phase =
  { st with vms = sorted ((vmid, phase) :: List.remove_assoc vmid st.vms) }

(** [smmu_attach device owner]: new context bank, empty map. *)
let spec_smmu_attach (st : t) ~device ~owner : (t, [ `Denied ]) result =
  if List.mem_assoc device st.smmu then Error `Denied
  else Ok { st with smmu = sorted ((device, (owner, [])) :: st.smmu) }

(** [smmu_map device iova pfn]: the frame must belong to the device's
    assigned owner (never KCore). *)
let spec_smmu_map (st : t) ~device ~iova_page ~pfn : (t, [ `Denied ]) result =
  match List.assoc_opt device st.smmu with
  | None -> Error `Denied
  | Some (owner, m) ->
      if owner_of st pfn <> owner || owner = O_kcore
         || List.mem_assoc iova_page m
      then Error `Denied
      else
        Ok
          { st with
            smmu =
              sorted
                ((device, (owner, sorted ((iova_page, pfn) :: m)))
                :: List.remove_assoc device st.smmu) }

let spec_smmu_unmap (st : t) ~device ~iova_page : (t, [ `Denied ]) result =
  match List.assoc_opt device st.smmu with
  | None -> Error `Denied
  | Some (owner, m) ->
      if not (List.mem_assoc iova_page m) then Error `Denied
      else
        Ok
          { st with
            smmu =
              sorted
                ((device, (owner, List.remove_assoc iova_page m))
                :: List.remove_assoc device st.smmu) }

(** [register_vm]: allocate the next VMID, create an empty mapping. *)
let spec_register_vm (st : t) : t * int =
  let vmid = st.next_vmid in
  ( { st with
      next_vmid = vmid + 1;
      vms = sorted ((vmid, P_registered) :: st.vms);
      vm_maps = sorted ((vmid, []) :: st.vm_maps) },
    vmid )

(** [set_vm_image pfns]: authenticated boot. The pages must all be
    KServ's and unshared; they move to the VM, leave KServ's map, and are
    mapped at consecutive guest pages from 0; the VM becomes Verified. *)
let spec_set_vm_image (st : t) ~vmid ~pfns : (t, [ `Denied ]) result =
  if
    List.exists
      (fun pfn -> owner_of st pfn <> O_kserv || shared_of st pfn)
      pfns
    || vm_phase_of st vmid <> Some P_registered
  then Error `Denied
  else
    let st =
      List.fold_left
        (fun st pfn ->
          { st with
            page_owner = set_nth st.page_owner pfn (O_vm vmid);
            kserv_map = List.filter (fun (vp, _) -> vp <> pfn) st.kserv_map })
        st pfns
    in
    let st =
      update_vm_map st vmid (fun m ->
          m @ List.mapi (fun i pfn -> (i, pfn)) pfns)
    in
    Ok (update_phase st vmid P_verified)

(** [map_page_to_vm ipa pfn]: the stage-2 fault resolution. The page must
    be KServ's and unshared; it leaves KServ's map, changes owner, and
    backs the guest page (content is scrubbed — invisible here). *)
let spec_map_page_to_vm (st : t) ~vmid ~vp ~pfn : (t, [ `Denied ]) result =
  if
    owner_of st pfn <> O_kserv
    || shared_of st pfn
    || vm_phase_of st vmid = None
    || List.mem_assoc vp (vm_map_of st vmid)
  then Error `Denied
  else
    let st =
      { st with
        page_owner = set_nth st.page_owner pfn (O_vm vmid);
        kserv_map = List.filter (fun (p, _) -> p <> pfn) st.kserv_map }
    in
    Ok (update_vm_map st vmid (fun m -> (vp, pfn) :: m))

(** [kserv_fault pfn]: lazy 1:1 host mapping, KServ-owned or shared
    pages only. *)
let spec_kserv_fault (st : t) ~pfn : (t, [ `Denied ]) result =
  if owner_of st pfn = O_kserv || shared_of st pfn then
    if List.mem_assoc pfn st.kserv_map then Ok st
    else Ok { st with kserv_map = sorted ((pfn, pfn) :: st.kserv_map) }
  else Error `Denied

(** [vm_share_page vp]: mark the backing page shared and expose it 1:1 in
    KServ's map. *)
let spec_share (st : t) ~vmid ~vp : (t, [ `Denied ]) result =
  match List.assoc_opt vp (vm_map_of st vmid) with
  | None -> Error `Denied
  | Some pfn ->
      if owner_of st pfn <> O_vm vmid then Error `Denied
      else
        Ok
          { st with
            page_shared = set_nth st.page_shared pfn true;
            kserv_map =
              (if List.mem_assoc pfn st.kserv_map then st.kserv_map
               else sorted ((pfn, pfn) :: st.kserv_map)) }

(** [vm_unshare_page vp]: revoke the KServ view. *)
let spec_unshare (st : t) ~vmid ~vp : (t, [ `Denied ]) result =
  match List.assoc_opt vp (vm_map_of st vmid) with
  | None -> Error `Denied
  | Some pfn ->
      if owner_of st pfn <> O_vm vmid || not (shared_of st pfn) then
        Error `Denied
      else
        Ok
          { st with
            page_shared = set_nth st.page_shared pfn false;
            kserv_map = List.filter (fun (p, _) -> p <> pfn) st.kserv_map }

(** [teardown_vm]: DMA windows of the VM's devices are revoked and the
    devices released; every page returns (scrubbed) to KServ; sharing
    ends; the mapping function empties; the VM is torn down for good. *)
let spec_teardown (st : t) ~vmid : t =
  let st =
    { st with
      smmu =
        List.filter (fun (_, (owner, _)) -> owner <> O_vm vmid) st.smmu }
  in
  let st =
    List.fold_left
      (fun st (_, pfn) ->
        { st with
          page_owner = set_nth st.page_owner pfn O_kserv;
          page_shared = set_nth st.page_shared pfn false;
          kserv_map = List.filter (fun (p, _) -> p <> pfn) st.kserv_map })
      st (vm_map_of st vmid)
  in
  let st = update_vm_map st vmid (fun _ -> []) in
  update_phase st vmid P_torn_down

(* ------------------------------------------------------------------ *)
(* Abstract security statements                                        *)
(* ------------------------------------------------------------------ *)

(** The abstract forms of the §5.3 invariants: these are provable by
    induction over the specification transitions (each case is a line of
    arithmetic) and carried to the implementation by refinement. *)
let invariant (st : t) : (unit, string) result =
  (* KServ's map reaches only KServ pages or shared pages *)
  let bad_kserv =
    List.filter
      (fun (_, pfn) ->
        owner_of st pfn <> O_kserv && not (shared_of st pfn))
      st.kserv_map
  in
  (* a VM's map reaches only its own pages *)
  let bad_vm =
    List.concat_map
      (fun (vmid, m) ->
        List.filter (fun (_, pfn) -> owner_of st pfn <> O_vm vmid) m)
      st.vm_maps
  in
  (* no KCore page is reachable from anyone *)
  let kcore_leak =
    List.exists (fun (_, pfn) -> owner_of st pfn = O_kcore) st.kserv_map
    || List.exists
         (fun (_, m) ->
           List.exists (fun (_, pfn) -> owner_of st pfn = O_kcore) m)
         st.vm_maps
  in
  (* SMMU maps respect the device's assigned owner *)
  let bad_smmu =
    List.exists
      (fun (_, (owner, m)) ->
        List.exists (fun (_, pfn) -> owner_of st pfn <> owner) m)
      st.smmu
  in
  if bad_kserv <> [] then Error "kserv reaches a non-shared foreign page"
  else if bad_vm <> [] then Error "a VM reaches a page it does not own"
  else if kcore_leak then Error "a KCore page is mapped"
  else if bad_smmu then Error "a device can DMA outside its owner's pages"
  else Ok ()

let pp fmt st =
  Format.fprintf fmt "{vms=%d live; next_vmid=%d; kserv_map=%d entries}"
    (List.length st.vms) st.next_vmid
    (List.length st.kserv_map)
