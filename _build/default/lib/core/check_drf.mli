(** Checker for wDRF condition 1, DRF-Kernel: no interleaving of the
    ownership-instrumented program panics — every pull targets a free
    base, every push an owned one, every tracked access happens under
    ownership. Synchronization-method internals and page-table bases go in
    [exempt], per the condition's side clause. *)

open Memmodel

type verdict = {
  holds : bool;
  violation : Pushpull.violation option;
  kernel_panic : Behavior.outcome option;
      (** the program itself panicked on some SC path (not a DRF issue,
          but a panicking kernel is wrong regardless) *)
  behaviors : Behavior.t option;  (** SC behaviors when the check passed *)
}

val check :
  ?fuel:int -> ?exempt:string list -> ?initial_owners:(string * int) list ->
  Prog.t -> verdict

val pp_verdict : Format.formatter -> verdict -> unit
