lib/core/check_isolation.pp.mli: Format Kcore Sekvm
