lib/core/abs_spec.pp.ml: Format Kcore List Machine Npt Option Page_table Ppx_deriving_runtime S2page Sekvm Smmu Smmu_ops
