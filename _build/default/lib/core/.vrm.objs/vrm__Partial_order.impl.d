lib/core/partial_order.pp.ml: Array Hashtbl List Loc Memmodel Ppx_deriving_runtime Pushpull
