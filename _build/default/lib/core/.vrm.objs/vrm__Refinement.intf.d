lib/core/refinement.pp.mli: Behavior Format Memmodel Prog Promising
