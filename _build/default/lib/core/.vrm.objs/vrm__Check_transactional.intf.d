lib/core/check_transactional.pp.mli: Format Machine Page_table Phys_mem Pte Sekvm
