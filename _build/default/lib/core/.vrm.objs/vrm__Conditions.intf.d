lib/core/conditions.pp.mli: Format
