lib/core/check_write_once.pp.mli: Format Machine Sekvm
