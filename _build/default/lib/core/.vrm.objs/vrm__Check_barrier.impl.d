lib/core/check_barrier.pp.ml: Expr Format Instr List Memmodel Prog String
