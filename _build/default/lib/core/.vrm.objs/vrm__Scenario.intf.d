lib/core/scenario.pp.mli: Kcore Kserv Sekvm
