lib/core/partial_order.pp.mli: Format Loc Memmodel Pushpull
