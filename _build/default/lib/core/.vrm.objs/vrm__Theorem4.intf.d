lib/core/theorem4.pp.mli: Behavior Format Memmodel Prog Promising
