lib/core/abs_spec.pp.mli: Format Sekvm
