lib/core/check_tlbi.pp.mli: Format Machine Sekvm Trace
