lib/core/theorem4.pp.ml: Behavior Expr Format Instr List Memmodel Option Prog Promising Sc
