lib/core/check_write_once.pp.ml: Format List Machine Sekvm Trace
