lib/core/check_barrier.pp.mli: Format Instr Memmodel Prog
