lib/core/conditions.pp.ml: List Ppx_deriving_runtime
