lib/core/certificate.pp.mli: Check_barrier Check_drf Check_isolation Check_tlbi Check_transactional Check_write_once Format Kernel_progs Refinement Sekvm
