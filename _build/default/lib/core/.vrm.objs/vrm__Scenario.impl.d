lib/core/scenario.pp.ml: Kcore Kserv List Machine Npt Sekvm Vm
