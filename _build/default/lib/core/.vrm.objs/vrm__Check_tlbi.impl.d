lib/core/check_tlbi.pp.ml: Format List Machine Page_table Pte Sekvm String Trace
