lib/core/check_drf.pp.mli: Behavior Format Memmodel Prog Pushpull
