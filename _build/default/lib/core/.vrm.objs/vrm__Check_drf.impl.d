lib/core/check_drf.pp.ml: Behavior Format Memmodel Prog Pushpull
