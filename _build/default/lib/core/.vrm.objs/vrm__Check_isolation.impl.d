lib/core/check_isolation.pp.ml: Format Kcore List Machine Npt Sekvm Trace
