lib/core/synthesis.pp.mli: Format Memmodel Prog Promising Refinement
