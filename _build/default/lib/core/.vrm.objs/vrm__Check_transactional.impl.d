lib/core/check_transactional.pp.ml: Format List Machine Mmu_walker Page_table Phys_mem Pte Sekvm
