lib/core/synthesis.pp.ml: Expr Format Instr List Memmodel Ppx_deriving_runtime Prog Refinement Reg
