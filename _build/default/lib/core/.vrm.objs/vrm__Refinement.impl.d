lib/core/refinement.pp.ml: Behavior Format List Memmodel Prog Promising Sc
