(** Checker for wDRF condition 3, Write-Once-Kernel-Mapping (paper §5.1).

    Judged over the recorded execution trace: every write to the kernel's
    own (EL2) page table must target an {e empty} entry — [w_old] invalid.
    KCore's [set_el2_pt] enforces this by construction; the checker
    re-verifies it independently on what actually happened, and catches
    the [~force] variant the tests use to seed a violation. *)

open Sekvm

type violation = {
  v_cpu : int;
  v_write : Machine.Page_table.pt_write;
}

type verdict = {
  holds : bool;
  el2_writes : int;
  violations : violation list;
}

let check (trace : Trace.t) : verdict =
  let el2_writes = ref 0 in
  let violations = ref [] in
  List.iter
    (function
      | Trace.E_pt_write { cpu; table = Trace.T_el2; write; _ } ->
          incr el2_writes;
          if Machine.Pte.is_valid write.Machine.Page_table.w_old then
            violations := { v_cpu = cpu; v_write = write } :: !violations
      | _ -> ())
    (Trace.events trace);
  { holds = !violations = [];
    el2_writes = !el2_writes;
    violations = List.rev !violations }

let pp_verdict fmt v =
  if v.holds then
    Format.fprintf fmt
      "Write-Once-Kernel-Mapping: HOLDS (%d EL2 page-table writes, all to \
       empty entries)"
      v.el2_writes
  else
    Format.fprintf fmt
      "Write-Once-Kernel-Mapping: VIOLATED (%d overwrites of valid EL2 \
       entries)"
      (List.length v.violations)
