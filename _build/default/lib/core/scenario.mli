(** Canonical whole-system scenarios: the standard run the certifier
    audits (boots, guest work, SMMU, attack battery, teardown) and the
    multi-VM stress run with invariants re-checked every round. *)

open Sekvm

type outcome = {
  kcore : Kcore.t;
  kserv : Kserv.t;
  vmids : int list;
  attack_results : (string * bool) list;  (** (attack, denied?) *)
  guest_sum : int;
}

val boot_system : ?config:Kcore.boot_config -> unit -> Kcore.t * Kserv.t

val standard_run :
  ?config:Kcore.boot_config -> ?n_vms:int -> ?with_attacks:bool ->
  ?with_smmu:bool -> ?teardown_last:bool -> unit -> outcome

type stress_stats = {
  st_vms : int;
  st_rounds : int;
  st_guest_ops : int;
  st_s2_faults : int;
  st_hypercalls : int;
  st_vipis : int;
  st_invariant_checks : int;
}

val stress_run :
  ?config:Kcore.boot_config -> ?n_vms:int -> ?rounds:int -> unit ->
  stress_stats
(** Panics on any invariant violation or cross-VM frame sharing. *)
