(** Checker for wDRF condition 2, No-Barrier-Misuse (paper §4.1, Fig. 5).

    In the push/pull Promising model, a pull promise must be fulfilled by a
    load barrier (acquire access, DMB LD or DMB full) and a push promise by
    a store barrier (release access, DMB ST or DMB full), consistently with
    program order. Syntactically, on every control-flow path:

    - backward from each [Pull], the nearest ordering-relevant instruction
      must be acquire-flavored (an acquire load/RMW or a load/full DMB)
      before any memory access intervenes that the pull is meant to
      protect;
    - forward from each [Push], the nearest ordering-relevant instruction
      must be release-flavored.

    Accesses to bases outside the pulled/pushed footprint may sit between
    the barrier and the annotation (e.g. Example 3 sets the ACTIVE flag
    between the acquire load and the pull); accesses {e inside} the
    footprint there would be unsynchronized and are rejected. *)

open Memmodel

type violation = {
  v_tid : int;
  v_kind : [ `Pull_unfulfilled | `Push_unfulfilled ];
  v_bases : string list;
}

let pp_violation fmt v =
  Format.fprintf fmt
    "CPU %d: %s of {%s} not fulfilled by a %s barrier on some path" v.v_tid
    (match v.v_kind with
    | `Pull_unfulfilled -> "pull"
    | `Push_unfulfilled -> "push")
    (String.concat ", " v.v_bases)
    (match v.v_kind with
    | `Pull_unfulfilled -> "load"
    | `Push_unfulfilled -> "store")

type verdict = { holds : bool; violations : violation list }

(* Enumerate control-flow paths, unrolling loops zero and one time. *)
let rec paths (code : Instr.t list) : Instr.t list list =
  match code with
  | [] -> [ [] ]
  | Instr.If (_, a, b) :: rest ->
      let tails = paths rest in
      let heads = paths a @ paths b in
      List.concat_map (fun h -> List.map (fun t -> h @ t) tails) heads
  | Instr.While (_, body) :: rest ->
      let tails = paths rest in
      let heads = [] :: paths body in
      List.concat_map (fun h -> List.map (fun t -> h @ t) tails) heads
  | i :: rest -> List.map (fun t -> i :: t) (paths rest)

let is_acquireish = function
  | Instr.Load (_, _, (Instr.Acquire | Instr.Acq_rel))
  | Instr.Faa (_, _, _, (Instr.Acquire | Instr.Acq_rel))
  | Instr.Xchg (_, _, _, (Instr.Acquire | Instr.Acq_rel))
  | Instr.Cas (_, _, _, _, (Instr.Acquire | Instr.Acq_rel))
  | Instr.Barrier (Instr.Dmb_full | Instr.Dmb_ld) ->
      true
  | _ -> false

let is_releaseish = function
  | Instr.Store (_, _, (Instr.Release | Instr.Acq_rel))
  | Instr.Faa (_, _, _, (Instr.Release | Instr.Acq_rel))
  | Instr.Xchg (_, _, _, (Instr.Release | Instr.Acq_rel))
  | Instr.Cas (_, _, _, _, (Instr.Release | Instr.Acq_rel))
  | Instr.Barrier (Instr.Dmb_full | Instr.Dmb_st) ->
      true
  | _ -> false

let touches bases = function
  | Instr.Load (_, a, _) | Instr.Store (a, _, _) | Instr.Faa (_, a, _, _)
  | Instr.Xchg (_, a, _, _) | Instr.Cas (_, a, _, _, _) ->
      List.mem a.Expr.abase bases
  | _ -> false

(* Scan a direction until an instruction satisfying [pred] appears, giving
   up at the first access to the protected footprint. *)
let scan_until pred bases instrs =
  let rec go = function
    | [] -> false
    | i :: rest ->
        if pred i then true
        else if touches bases i then false
        else go rest
  in
  go instrs

let is_dmb_ld = function
  | Instr.Barrier (Instr.Dmb_full | Instr.Dmb_ld) -> true
  | _ -> false

let is_dmb_st = function
  | Instr.Barrier (Instr.Dmb_full | Instr.Dmb_st) -> true
  | _ -> false

(* A pull promise is fulfilled by an acquire access/load barrier before it
   in program order, or by a standalone DMB between the pull and the first
   protected access. [before] is most-recent-first. *)
let pull_fulfilled before after bases =
  scan_until is_acquireish bases before
  || scan_until is_dmb_ld bases after

(* Dually for push: a release access/store barrier after it, or a DMB
   between the last protected access and the push. *)
let push_fulfilled before after bases =
  scan_until is_releaseish bases after
  || scan_until is_dmb_st bases before

let check_thread (th : Prog.thread) : violation list =
  let bad = ref [] in
  List.iter
    (fun path ->
      let rec walk before = function
        | [] -> ()
        | (Instr.Pull bases as i) :: rest ->
            if not (pull_fulfilled before rest bases) then
              bad :=
                { v_tid = th.Prog.tid; v_kind = `Pull_unfulfilled;
                  v_bases = bases }
                :: !bad;
            walk (i :: before) rest
        | (Instr.Push bases as i) :: rest ->
            if not (push_fulfilled before rest bases) then
              bad :=
                { v_tid = th.Prog.tid; v_kind = `Push_unfulfilled;
                  v_bases = bases }
                :: !bad;
            walk (i :: before) rest
        | i :: rest -> walk (i :: before) rest
      in
      walk [] path)
    (paths th.Prog.code);
  List.sort_uniq compare !bad

let check (prog : Prog.t) : verdict =
  let violations = List.concat_map check_thread prog.Prog.threads in
  { holds = violations = []; violations }

let pp_verdict fmt v =
  if v.holds then Format.fprintf fmt "No-Barrier-Misuse: HOLDS"
  else
    Format.fprintf fmt "No-Barrier-Misuse: VIOLATED@,%a"
      (Format.pp_print_list pp_violation)
      v.violations
