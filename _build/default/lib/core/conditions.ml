(** The six wDRF conditions (paper §3), as first-class values.

    Each condition carries its paper name, the §3 statement, and which
    checker module discharges it in this executable reproduction. *)

type id =
  | Drf_kernel
  | No_barrier_misuse
  | Write_once_kernel_mapping
  | Transactional_page_table
  | Sequential_tlb_invalidation
  | Memory_isolation  (** checked in its weak form, as for SeKVM (§4.3) *)
[@@deriving show, eq, ord]

type t = {
  cid : id;
  name : string;
  statement : string;
  checker : string;  (** module discharging the condition here *)
}

let all =
  [ { cid = Drf_kernel;
      name = "DRF-Kernel";
      statement =
        "Shared memory accesses in the kernel are well synchronized except \
         for the implementation of synchronization methods and page table \
         management.";
      checker = "Vrm.Check_drf" };
    { cid = No_barrier_misuse;
      name = "No-Barrier-Misuse";
      statement =
        "Barriers are correctly placed in the kernel to guard critical \
         sections and synchronization methods.";
      checker = "Vrm.Check_barrier" };
    { cid = Write_once_kernel_mapping;
      name = "Write-Once-Kernel-Mapping";
      statement =
        "If the kernel's own page table is shared, only empty entries of \
         it can be modified.";
      checker = "Vrm.Check_write_once" };
    { cid = Transactional_page_table;
      name = "Transactional-Page-Table";
      statement =
        "Shared page table writes within a critical section are \
         transactional: under arbitrary reordering, any walk sees the \
         before-result, the after-result, or a page fault.";
      checker = "Vrm.Check_transactional" };
    { cid = Sequential_tlb_invalidation;
      name = "Sequential-TLB-Invalidation";
      statement =
        "A page table unmap or remap must be followed by a TLB \
         invalidation, with a barrier between them.";
      checker = "Vrm.Check_tlbi" };
    { cid = Memory_isolation;
      name = "(Weak-)Memory-Isolation";
      statement =
        "User programs cannot modify kernel memory, and the kernel's \
         verification does not depend on the contents it reads from user \
         memory (data oracles).";
      checker = "Vrm.Check_isolation" } ]

let find cid = List.find (fun c -> c.cid = cid) all
