(** Multi-VM scalability, regenerating Figure 9.

    N SMP VMs (2 vCPUs each on the m400) run the same workload
    concurrently on 8 physical CPUs; per-instance performance is
    normalized to native execution of a single instance. Three resources
    gate scaling, all modeled explicitly:

    - {b CPU}: once N x vcpus exceeds the physical CPUs, instances time-share;
    - {b I/O}: client-server workloads saturate the shared 10 GbE NIC /
      SSD, which caps aggregate I/O throughput regardless of hypervisor;
    - {b hypervisor serialization}: exit handling contends on host-side
      locks (KVM) or KCore's locks (SeKVM). SeKVM's locks guard the
      s2page database and per-VM tables — short critical sections whose
      contention grows with runnable vCPUs; the measurement the paper
      makes is precisely that this extra serialization does {e not} hurt
      scalability beyond the baseline's own. *)

open Cost_model

type point = {
  workload : Workload.t;
  hypervisor : hypervisor;
  n_vms : int;
  normalized_perf : float;  (** single native instance = 1.0 *)
}

(** Aggregate I/O capacity of the shared NIC/disk, in units of one VM's
    full-rate demand: beyond this many I/O-hungry VMs, throughput divides. *)
let io_capacity_vms = 6.0

let per_instance_time (p : hw_params) (hyp : hypervisor) ~stage2_levels
    ~vcpus_per_vm ~n_vms (w : Workload.t) : float =
  let n_cpus = float_of_int p.hw.Machine.Hw_config.n_cpus in
  let n = float_of_int n_vms in
  let base = App_sim.vm_time p hyp V4_18 ~stage2_levels w in
  (* CPU time-sharing factor *)
  let cpu_pressure = n *. float_of_int vcpus_per_vm /. n_cpus in
  let cpu_factor = Float.max 1.0 cpu_pressure in
  (* shared-I/O saturation factor applies to the I/O-bound share *)
  let io_factor =
    Float.max 1.0 (n *. w.Workload.io_bound_fraction /. io_capacity_vms)
  in
  (* hypervisor-side serialization: exits from concurrently running vCPUs
     contend on short lock-protected sections; grows with the number of
     vCPUs actually running, saturating at the physical CPU count *)
  let runnable = Float.min n_cpus (n *. float_of_int vcpus_per_vm) in
  let contention hyp =
    let per_cpu = match hyp with Kvm -> 0.010 | Sekvm -> 0.011 in
    1.0 +. (per_cpu *. (runnable -. 1.0))
  in
  let native = float_of_int w.Workload.native_cycles in
  let io_time = native *. w.Workload.io_bound_fraction *. io_factor in
  let cpu_time = (base -. (native *. w.Workload.io_bound_fraction)) *. cpu_factor *. contention hyp in
  io_time +. cpu_time

let run_point ?(p = m400_params) ?(stage2_levels = 4) ?(vcpus_per_vm = 2)
    hyp n_vms (w : Workload.t) : point =
  let t = per_instance_time p hyp ~stage2_levels ~vcpus_per_vm ~n_vms w in
  { workload = w;
    hypervisor = hyp;
    n_vms;
    normalized_perf = float_of_int w.Workload.native_cycles /. t }

let vm_counts = [ 1; 2; 4; 8; 16; 32 ]

(** Figure 9: per-instance normalized performance, 1..32 VMs on the m400,
    both hypervisors, all workloads. *)
let figure9 ?(stage2_levels = 4) () : point list =
  List.concat_map
    (fun w ->
      List.concat_map
        (fun hyp ->
          List.map (fun n -> run_point ~stage2_levels hyp n w) vm_counts)
        [ Kvm; Sekvm ])
    Workload.all

(** Worst-case SeKVM-vs-KVM gap across all VM counts for one workload. *)
let worst_gap (points : point list) ~workload : float =
  List.fold_left
    (fun acc n ->
      let find hyp =
        List.find
          (fun pt ->
            pt.workload.Workload.name = workload
            && pt.n_vms = n && pt.hypervisor = hyp)
          points
      in
      let kvm = find Kvm and sekvm = find Sekvm in
      Float.max acc ((kvm.normalized_perf /. sekvm.normalized_perf) -. 1.0))
    0.0 vm_counts
