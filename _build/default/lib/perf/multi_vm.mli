(** Multi-VM scalability, regenerating Figure 9: N SMP VMs time-sharing
    the m400's CPUs, with shared-I/O saturation and per-runnable-vCPU
    hypervisor lock contention; per-instance performance normalized to a
    single native instance. *)

open Cost_model

type point = {
  workload : Workload.t;
  hypervisor : hypervisor;
  n_vms : int;
  normalized_perf : float;
}

val io_capacity_vms : float

val per_instance_time :
  hw_params -> hypervisor -> stage2_levels:int -> vcpus_per_vm:int ->
  n_vms:int -> Workload.t -> float

val run_point :
  ?p:hw_params -> ?stage2_levels:int -> ?vcpus_per_vm:int -> hypervisor ->
  int -> Workload.t -> point

val vm_counts : int list
val figure9 : ?stage2_levels:int -> unit -> point list

val worst_gap : point list -> workload:string -> float
(** Worst SeKVM-vs-KVM gap across all VM counts; the Fig. 9 claim is
    < 10%. *)
