(** The four microbenchmarks of Table 2, regenerating Table 3.

    Each benchmark is an operation profile: how many EL2 traps and world
    switches it performs and how much host-kernel / host-userspace work
    (with which working sets) it runs between them. The same profile is
    costed under both hypervisors on both machines. *)

open Cost_model

type bench = { name : string; description : string; profile : op_profile }

(** Transition from a VM to the hypervisor and return, no work. *)
let hypercall =
  { name = "Hypercall";
    description = "VM -> hypervisor -> VM round trip, no work";
    profile =
      { no_work with
        traps = 1;
        world_switches = 2;
        host_cycles = 475;
        host_pages = 36;
        ownership_checks = 1 } }

(** Trap to the in-kernel emulated interrupt controller. *)
let io_kernel =
  { name = "I/O Kernel";
    description = "trap to the vGIC emulation in the hypervisor OS kernel";
    profile =
      { no_work with
        traps = 1;
        world_switches = 2;
        host_cycles = 1344;
        host_pages = 46;
        ownership_checks = 2 } }

(** Trap out to the emulated UART in QEMU (userspace exit). *)
let io_user =
  { name = "I/O User";
    description = "trap to the UART emulated in QEMU userspace";
    profile =
      { no_work with
        traps = 2;  (* exit to userspace and back re-enters EL2 *)
        world_switches = 2;
        host_cycles = 5644;  (* kernel path + QEMU UART emulation *)
        host_pages = 75;
        ownership_checks = 3 } }

(** Virtual IPI between two vCPUs on different physical CPUs. *)
let virtual_ipi =
  { name = "Virtual IPI";
    description = "vCPU-to-vCPU IPI across physical CPUs";
    profile =
      { traps = 2;  (* sender exit + receiver injection *)
        world_switches = 3;
        host_cycles = 4205;
        host_pages = 58;
        ownership_checks = 2;
        ipis = 1 } }

let all = [ hypercall; io_kernel; io_user; virtual_ipi ]

type row = {
  bench : bench;
  hw_name : string;
  kvm_cycles : int;
  sekvm_cycles : int;
  overhead : float;  (** sekvm / kvm *)
}

let run_one ?(kserv_hugepages = false) (p : hw_params) ~stage2_levels
    (b : bench) : row =
  let kvm = op_cycles p Kvm ~stage2_levels b.profile in
  let sekvm = op_cycles ~kserv_hugepages p Sekvm ~stage2_levels b.profile in
  { bench = b;
    hw_name = p.hw.Machine.Hw_config.name;
    kvm_cycles = kvm;
    sekvm_cycles = sekvm;
    overhead = float_of_int sekvm /. float_of_int kvm }

(** Table 3: all four microbenchmarks on both machines. *)
let table3 ?(stage2_levels = 4) ?(kserv_hugepages = false) () : row list =
  List.concat_map
    (fun p -> List.map (run_one ~kserv_hugepages p ~stage2_levels) all)
    [ m400_params; seattle_params ]

(** Ablation: sweep the TLB capacity of an m400-like machine and report
    the SeKVM/KVM hypercall overhead at each size — locating where the
    paper's "tiny TLB" effect disappears. *)
let tlb_sweep ?(bench = hypercall) ?(stage2_levels = 4)
    ?(sizes = [ 32; 64; 128; 192; 256; 512; 1024 ]) () :
    (int * float) list =
  List.map
    (fun tlb_entries ->
      let p =
        { m400_params with
          hw = { m400_params.hw with Machine.Hw_config.tlb_entries } }
      in
      (tlb_entries, (run_one p ~stage2_levels bench).overhead))
    sizes

(** The paper's measured cycle counts, for side-by-side shape checking. *)
let paper_reference =
  [ ("Hypercall", "m400", 2275, 4695);
    ("I/O Kernel", "m400", 3144, 7235);
    ("I/O User", "m400", 7864, 15501);
    ("Virtual IPI", "m400", 7915, 13900);
    ("Hypercall", "seattle", 2896, 3720);
    ("I/O Kernel", "seattle", 3831, 4864);
    ("I/O User", "seattle", 9288, 10903);
    ("Virtual IPI", "seattle", 8816, 10699) ]

let paper_overhead name hw =
  match
    List.find_opt (fun (n, h, _, _) -> n = name && h = hw) paper_reference
  with
  | Some (_, _, kvm, sekvm) -> Some (float_of_int sekvm /. float_of_int kvm)
  | None -> None
