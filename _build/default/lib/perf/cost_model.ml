(** Cycle-cost model of the two evaluation machines (paper §6).

    The model charges mechanism costs — traps, world switches, KCore
    dispatch, ownership checks, TLB misses — composed per hypervisor
    operation. The key asymmetry, called out explicitly in the paper's
    Table 3 discussion, is host-side TLB pressure:

    - under stock KVM, host kernel/QEMU code runs un-nested with {e block}
      (2 MB / 1 GB) mappings, so its TLB footprint is a handful of entries
      and misses are cheap stage-1 walks;
    - under SeKVM, KServ runs behind its own stage-2 table populated with
      {e 4 KB} pages, so every touched host page costs a TLB entry, and a
      miss pays the nested-walk blowup of ((m+1)(n+1)-1) memory accesses.

    The per-operation miss count uses an analytic steady-state TLB model:
    with footprint F = (op working set) + (resident guest/host demand) on
    a TLB of capacity C, the probability a touched entry was evicted since
    last use is max(0, (F - C) / F); the op's misses are that rate times
    its working set. On the m400's tiny TLB this rate is large (its X-Gene
    CPUs are the reason the paper's m400 overheads are ~2x); on Seattle's
    1024-entry TLB it is zero and the remaining SeKVM cost is KCore's
    dispatch/isolation work — matching the paper's 17-28%.

    Absolute cycle numbers are calibrated against Table 3; the claims the
    benches check are the {e ratios} and their cross-machine shape. *)

open Machine

type hypervisor = Kvm | Sekvm [@@deriving show, eq]

type hw_params = {
  hw : Hw_config.t;
  c_trap : int;  (** EL1/EL0 -> EL2 exception + eret *)
  c_world_switch : int;  (** vCPU context save/restore (sysregs, FP, GIC) *)
  c_walk_step : int;  (** one memory access of a page-table walk *)
  c_ipi : int;  (** physical IPI send + receive *)
  s1_levels : int;  (** host stage-1 depth *)
  resident_pages : int;  (** steady TLB demand from guest + host hot set *)
  compute_scale : float;  (** per-cycle efficiency vs the m400 baseline *)
}

let m400_params =
  { hw = Hw_config.m400;
    c_trap = 420;
    c_world_switch = 690;
    c_walk_step = 6;
    c_ipi = 800;
    s1_levels = 4;
    resident_pages = 80;
    compute_scale = 1.0 }

let seattle_params =
  { hw = Hw_config.seattle;
    c_trap = 480;
    c_world_switch = 890;
    c_walk_step = 7;
    c_ipi = 900;
    s1_levels = 4;
    resident_pages = 80;
    compute_scale = 1.1 }

let neoverse_params =
  { hw = Hw_config.neoverse;
    c_trap = 260;
    c_world_switch = 520;
    c_walk_step = 4;
    c_ipi = 500;
    s1_levels = 4;
    resident_pages = 80;
    compute_scale = 0.8 }

let params_of (hw : Hw_config.t) =
  if hw.Hw_config.name = "m400" then m400_params
  else if hw.Hw_config.name = "neoverse" then neoverse_params
  else seattle_params

type sw_params = {
  kcore_dispatch : int;  (** EL2 hypercall/exit routing in KCore *)
  kcore_ctx_protect : int;  (** extra context save/scrub for VM isolation *)
  ownership_check : int;  (** one s2page lookup under its lock *)
}

let sekvm_sw =
  { kcore_dispatch = 260; kcore_ctx_protect = 360; ownership_check = 90 }

(** Cycles of one host-side TLB miss. *)
let miss_cost (p : hw_params) (hyp : hypervisor) ~stage2_levels =
  match hyp with
  | Kvm -> p.c_walk_step * p.s1_levels
  | Sekvm ->
      (* nested walk: each stage-1 level is itself stage-2 translated *)
      p.c_walk_step * (((p.s1_levels + 1) * (stage2_levels + 1)) - 1)

(** Steady-state misses for an op touching [ws] distinct host pages.
    Under KVM block mappings collapse the footprint by the pages-per-block
    factor; under SeKVM every 4 KB page costs an entry — unless the
    [kserv_hugepages] ablation maps KServ's stage 2 with blocks too (the
    fix the paper's Table 3 discussion points at). *)
let op_misses ?(kserv_hugepages = false) (p : hw_params) (hyp : hypervisor)
    ~ws =
  let entries =
    match hyp with
    | Kvm -> (ws + 511) / 512
    | Sekvm -> if kserv_hugepages then (ws + 511) / 512 else ws
  in
  let footprint = entries + p.resident_pages in
  let capacity = p.hw.Hw_config.tlb_entries in
  if footprint <= capacity then 0.0
  else
    float_of_int entries
    *. (float_of_int (footprint - capacity) /. float_of_int footprint)

(** One hypervisor operation, as mechanism counts. *)
type op_profile = {
  traps : int;  (** EL2 entries *)
  world_switches : int;  (** vCPU context switches *)
  host_cycles : int;  (** host-side (KServ kernel + QEMU) compute *)
  host_pages : int;  (** distinct host pages that compute touches *)
  ownership_checks : int;  (** s2page validations on the SeKVM path *)
  ipis : int;  (** physical IPI deliveries *)
}

let no_work =
  { traps = 0; world_switches = 0; host_cycles = 0; host_pages = 0;
    ownership_checks = 0; ipis = 0 }

(** Total cycles of one operation under [hyp] on [p]. *)
let op_cycles ?(kserv_hugepages = false) (p : hw_params) (hyp : hypervisor)
    ~stage2_levels (op : op_profile) : int =
  let base =
    (op.traps * p.c_trap)
    + (op.world_switches * p.c_world_switch)
    + int_of_float (float_of_int op.host_cycles *. p.compute_scale)
    + (op.ipis * p.c_ipi)
  in
  let misses = op_misses ~kserv_hugepages p hyp ~ws:op.host_pages in
  let tlb = int_of_float (misses *. float_of_int (miss_cost p hyp ~stage2_levels)) in
  match hyp with
  | Kvm -> base + tlb
  | Sekvm ->
      base + tlb
      + (op.traps * (sekvm_sw.kcore_dispatch + sekvm_sw.kcore_ctx_protect))
      + (op.ownership_checks * sekvm_sw.ownership_check)
