(** Single-VM application benchmarks, regenerating Figure 8: performance
    of one VM per workload/machine/kernel-version/hypervisor, normalized
    to native execution. *)

open Cost_model

type linux_version = V4_18 | V5_4

val version_name : linux_version -> string
val version_exit_scale : linux_version -> float
val pp_linux_version : Format.formatter -> linux_version -> unit
val show_linux_version : linux_version -> string
val equal_linux_version : linux_version -> linux_version -> bool

type point = {
  workload : Workload.t;
  hw_name : string;
  version : linux_version;
  hypervisor : hypervisor;
  normalized_perf : float;  (** native = 1.0 *)
}

val vm_time :
  hw_params -> hypervisor -> linux_version -> stage2_levels:int ->
  Workload.t -> float

val run_point :
  hw_params -> hypervisor -> linux_version -> stage2_levels:int ->
  Workload.t -> point

val figure8 : ?stage2_levels:int -> unit -> point list

val sekvm_overhead :
  point list -> workload:string -> hw_name:string -> version:linux_version ->
  float
(** SeKVM-vs-KVM overhead for one configuration; the Fig. 8 claim is
    that this stays below ~10%. *)
