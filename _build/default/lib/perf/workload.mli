(** Application workload profiles (paper Table 4): per work unit, the
    guest CPU time and the mix of hypervisor operations (exits, vhost
    kicks, userspace I/O, vIPIs, stage-2 faults) plus the fraction of the
    work gated by shared I/O devices. *)

open Cost_model

type t = {
  name : string;
  description : string;
  native_cycles : int;
  hypercalls : int;
  io_kernel_ops : int;
  io_user_ops : int;
  vipis : int;
  s2_faults : int;
  io_bound_fraction : float;
}

val unit : int
val hackbench : t
val kernbench : t
val apache : t
val mongodb : t
val redis : t
val all : t list

val virt_overhead_cycles : hw_params -> hypervisor -> stage2_levels:int -> t -> int
(** Hypervisor-path cycles added to one work unit. *)
