lib/perf/app_sim.pp.ml: Cost_model List Machine Ppx_deriving_runtime Workload
