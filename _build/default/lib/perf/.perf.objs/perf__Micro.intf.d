lib/perf/micro.pp.mli: Cost_model
