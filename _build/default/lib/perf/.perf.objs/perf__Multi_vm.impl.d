lib/perf/multi_vm.pp.ml: App_sim Cost_model Float List Machine Workload
