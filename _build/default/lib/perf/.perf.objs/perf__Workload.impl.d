lib/perf/workload.pp.ml: Cost_model Micro
