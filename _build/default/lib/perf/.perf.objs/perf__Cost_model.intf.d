lib/perf/cost_model.pp.mli: Format Hw_config Machine
