lib/perf/cost_model.pp.ml: Hw_config Machine Ppx_deriving_runtime
