lib/perf/micro.pp.ml: Cost_model List Machine
