lib/perf/app_sim.pp.mli: Cost_model Format Workload
