lib/perf/workload.pp.mli: Cost_model
