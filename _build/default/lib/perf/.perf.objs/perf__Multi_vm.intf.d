lib/perf/multi_vm.pp.mli: Cost_model Workload
