(** The four microbenchmarks of Table 2, regenerating Table 3, plus the
    TLB-capacity and stage-2-depth ablations. *)

open Cost_model

type bench = { name : string; description : string; profile : op_profile }

val hypercall : bench
val io_kernel : bench
val io_user : bench
val virtual_ipi : bench
val all : bench list

type row = {
  bench : bench;
  hw_name : string;
  kvm_cycles : int;
  sekvm_cycles : int;
  overhead : float;  (** sekvm / kvm *)
}

val run_one : ?kserv_hugepages:bool -> hw_params -> stage2_levels:int -> bench -> row

val table3 : ?stage2_levels:int -> ?kserv_hugepages:bool -> unit -> row list
(** All four microbenchmarks on both machines. *)

val tlb_sweep :
  ?bench:bench -> ?stage2_levels:int -> ?sizes:int list -> unit ->
  (int * float) list
(** SeKVM/KVM overhead ratio against TLB capacity on an m400-class
    machine — locating where the "tiny TLB" effect disappears. *)

val paper_reference : (string * string * int * int) list
(** The paper's measured cycles: (bench, machine, KVM, SeKVM). *)

val paper_overhead : string -> string -> float option
