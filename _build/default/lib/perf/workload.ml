(** Application workload profiles (paper Table 4).

    Each workload is characterized by how it spends a unit of work:
    guest-side CPU time plus a rate of hypervisor operations (exits for
    virtual interrupts, vhost notifications kicks, userspace I/O, vIPIs).
    The numbers are per "work unit" (one benchmark iteration's worth),
    scaled so native execution is 100M cycles; what matters downstream is
    the exit mix, which determines how much hypervisor-path overhead each
    workload sees. *)

open Cost_model

type t = {
  name : string;
  description : string;
  native_cycles : int;  (** pure computation, hypervisor-independent *)
  hypercalls : int;  (** base transitions per work unit *)
  io_kernel_ops : int;  (** vGIC/in-kernel device ops *)
  io_user_ops : int;  (** QEMU userspace exits *)
  vipis : int;  (** virtual IPIs *)
  s2_faults : int;  (** stage-2 faults (cold pages) per work unit *)
  io_bound_fraction : float;
      (** fraction of the work gated by the shared NIC/disk rather than
          CPU: caps multi-VM scaling (Fig. 9) *)
}

let unit = 100_000_000

let hackbench =
  { name = "Hackbench";
    description = "Unix-socket process groups; scheduler/IPI heavy";
    native_cycles = unit;
    hypercalls = 200;
    io_kernel_ops = 600;
    io_user_ops = 5;
    vipis = 1_000;
    s2_faults = 100;
    io_bound_fraction = 0.05 }

let kernbench =
  { name = "Kernbench";
    description = "Linux kernel compile; CPU bound, few exits";
    native_cycles = unit;
    hypercalls = 40;
    io_kernel_ops = 120;
    io_user_ops = 4;
    vipis = 80;
    s2_faults = 250;
    io_bound_fraction = 0.03 }

let apache =
  { name = "Apache";
    description = "TLS web serving against remote ApacheBench";
    native_cycles = unit;
    hypercalls = 120;
    io_kernel_ops = 900;
    io_user_ops = 15;
    vipis = 350;
    s2_faults = 60;
    io_bound_fraction = 0.45 }

let mongodb =
  { name = "MongoDB";
    description = "YCSB workload A against a remote client";
    native_cycles = unit;
    hypercalls = 100;
    io_kernel_ops = 700;
    io_user_ops = 12;
    vipis = 250;
    s2_faults = 80;
    io_bound_fraction = 0.40 }

let redis =
  { name = "Redis";
    description = "YCSB workload A; small-packet network RTT bound";
    native_cycles = unit;
    hypercalls = 90;
    io_kernel_ops = 1_000;
    io_user_ops = 10;
    vipis = 200;
    s2_faults = 50;
    io_bound_fraction = 0.55 }

let all = [ hackbench; kernbench; apache; mongodb; redis ]

(** Hypervisor-path cycles added to one work unit of [w]. *)
let virt_overhead_cycles (p : hw_params) (hyp : hypervisor) ~stage2_levels
    (w : t) : int =
  let cost profile = op_cycles p hyp ~stage2_levels profile in
  let fault_profile =
    (* a stage-2 fault: exit, host allocates, hypervisor maps (with
       ownership transfer + scrub under SeKVM) *)
    { no_work with
      traps = 1;
      world_switches = 2;
      host_cycles = 2_000;
      host_pages = 40;
      ownership_checks = 4 }
  in
  (w.hypercalls * cost Micro.hypercall.Micro.profile)
  + (w.io_kernel_ops * cost Micro.io_kernel.Micro.profile)
  + (w.io_user_ops * cost Micro.io_user.Micro.profile)
  + (w.vipis * cost Micro.virtual_ipi.Micro.profile)
  + (w.s2_faults * cost fault_profile)
