(** Cycle-cost model of the paper's two evaluation machines (§6).

    Mechanism costs — traps, world switches, KCore dispatch, ownership
    checks, TLB misses — composed per hypervisor operation. The key
    asymmetry is host-side TLB pressure: stock KVM's host runs un-nested
    with block mappings; SeKVM's KServ runs behind a 4 KB-granule stage 2,
    so each touched host page costs a TLB entry and each miss pays the
    ((m+1)(n+1)-1) nested-walk blowup. Calibrated against Table 3; the
    benches check ratios and their cross-machine shape. *)

open Machine

type hypervisor = Kvm | Sekvm

val pp_hypervisor : Format.formatter -> hypervisor -> unit
val show_hypervisor : hypervisor -> string
val equal_hypervisor : hypervisor -> hypervisor -> bool

type hw_params = {
  hw : Hw_config.t;
  c_trap : int;
  c_world_switch : int;
  c_walk_step : int;
  c_ipi : int;
  s1_levels : int;
  resident_pages : int;  (** steady TLB demand from guest + host hot set *)
  compute_scale : float;
}

val m400_params : hw_params
val seattle_params : hw_params
val neoverse_params : hw_params
val params_of : Hw_config.t -> hw_params

type sw_params = {
  kcore_dispatch : int;
  kcore_ctx_protect : int;
  ownership_check : int;
}

val sekvm_sw : sw_params

val miss_cost : hw_params -> hypervisor -> stage2_levels:int -> int
(** Cycles of one host-side TLB miss: stage-1 walk for KVM, nested walk
    for SeKVM. *)

val op_misses : ?kserv_hugepages:bool -> hw_params -> hypervisor -> ws:int -> float
(** Steady-state misses for an op touching [ws] distinct host pages,
    from the analytic TLB model; [kserv_hugepages] is the 2 MB-block
    ablation. *)

type op_profile = {
  traps : int;
  world_switches : int;
  host_cycles : int;
  host_pages : int;
  ownership_checks : int;
  ipis : int;
}

val no_work : op_profile

val op_cycles :
  ?kserv_hugepages:bool -> hw_params -> hypervisor -> stage2_levels:int ->
  op_profile -> int
