(** Single-VM application benchmarks, regenerating Figure 8.

    For each workload, hardware, hypervisor and Linux version, compute the
    performance of one VM running the workload, normalized to native
    execution on the same hardware (1.0 = native speed; the paper plots
    normalized overhead — lower is better there, higher is better here; we
    report normalized performance and overhead-vs-KVM). I/O-bound time
    (gated on the remote client, NIC or disk) passes through the
    hypervisor mostly untouched, which is why even large exit costs
    translate into single-digit application overheads. *)

open Cost_model

type linux_version = V4_18 | V5_4 [@@deriving show, eq]

let version_name = function V4_18 -> "4.18" | V5_4 -> "5.4"

(** Exit-path efficiency by version: 5.4 carries the arm64 VHE/exit
    optimizations mainlined after 4.18. *)
let version_exit_scale = function V4_18 -> 1.0 | V5_4 -> 0.93

type point = {
  workload : Workload.t;
  hw_name : string;
  version : linux_version;
  hypervisor : hypervisor;
  normalized_perf : float;  (** native = 1.0 *)
}

let vm_time (p : hw_params) (hyp : hypervisor) (version : linux_version)
    ~stage2_levels (w : Workload.t) : float =
  let native = float_of_int w.Workload.native_cycles in
  let io_time = native *. w.Workload.io_bound_fraction in
  let cpu_time = native -. io_time in
  let virt =
    float_of_int (Workload.virt_overhead_cycles p hyp ~stage2_levels w)
    *. version_exit_scale version
  in
  (* guest CPU work also pays a small nested-paging tax on its own TLB
     misses; guests use huge stage-2 mappings under both hypervisors, so
     the tax is small and identical in kind *)
  let guest_tax = match hyp with Kvm -> 1.01 | Sekvm -> 1.012 in
  io_time +. (cpu_time *. guest_tax) +. virt

let run_point (p : hw_params) hyp version ~stage2_levels w : point =
  let t = vm_time p hyp version ~stage2_levels w in
  { workload = w;
    hw_name = p.hw.Machine.Hw_config.name;
    version;
    hypervisor = hyp;
    normalized_perf = float_of_int w.Workload.native_cycles /. t }

(** Figure 8: every workload x machine x version x hypervisor. *)
let figure8 ?(stage2_levels = 4) () : point list =
  List.concat_map
    (fun p ->
      List.concat_map
        (fun version ->
          List.concat_map
            (fun hyp ->
              List.map
                (fun w -> run_point p hyp version ~stage2_levels w)
                Workload.all)
            [ Kvm; Sekvm ])
        [ V4_18; V5_4 ])
    [ m400_params; seattle_params ]

(** SeKVM-vs-KVM overhead for a workload/hw/version triple: the headline
    claim is that this stays below ~10%. *)
let sekvm_overhead (points : point list) ~workload ~hw_name ~version : float
    =
  let find hyp =
    List.find
      (fun pt ->
        pt.workload.Workload.name = workload
        && pt.hw_name = hw_name && pt.version = version
        && pt.hypervisor = hyp)
      points
  in
  let kvm = find Kvm and sekvm = find Sekvm in
  (kvm.normalized_perf /. sekvm.normalized_perf) -. 1.0
