(** Page-table entry encoding. Entries are stored in page-table pages as
    plain integers, so a page-table update is an ordinary word store —
    which is exactly what makes page tables racy against the MMU walker. *)

type perms = { readable : bool; writable : bool }

val rw : perms
val ro : perms

type t =
  | Invalid
  | Table of int  (** pfn of the next-level table page *)
  | Page of int * perms  (** leaf or block: output frame + permissions *)

val pfn_shift : int

val encode : t -> int
(** [encode Invalid = 0]: a scrubbed page is a page of invalid entries. *)

val decode : int -> t
val is_valid : int -> bool

val pp : Format.formatter -> t -> unit
val show : t -> string
val equal : t -> t -> bool
val pp_perms : Format.formatter -> perms -> unit
val show_perms : perms -> string
val equal_perms : perms -> perms -> bool
