(** The {e hardware} page-table walker, including its racy behavior
    (paper §2, Examples 4 and 5).

    On relaxed hardware each walker read may observe an in-flight
    page-table write or not, {e independently} of the other reads of the
    same walk. {!walk_relaxed} implements exactly that, so its result set
    over-approximates every reordering of the pending writes — a sound
    basis for the Transactional-Page-Table judgment. *)

type observation = Page_table.walk_result

val pp_observation : Format.formatter -> observation -> unit
val equal_observation : observation -> observation -> bool

val walk_relaxed :
  Phys_mem.t -> Page_table.geometry -> root:int ->
  pending:Page_table.pt_write list -> int -> observation list
(** All results a relaxed hardware walk of the VA can produce while
    [pending] writes are in flight; memory holds the pre-critical-section
    state. *)

val is_fault : observation -> bool

val transactional_violations :
  Phys_mem.t -> Page_table.geometry -> root:int ->
  writes:Page_table.pt_write list -> vas:int list ->
  (int * observation) list
(** The executable Transactional-Page-Table judgment (wDRF condition 4):
    every relaxed walk of every nominated address must observe the
    before-result, the after-result, or a fault; returns the offending
    (va, observation) witnesses. *)
