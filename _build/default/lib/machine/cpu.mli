(** Physical CPU state: exception level, stage-2 translation context
    (current VMID and root), and a private TLB. *)

type el = El0 | El1 | El2

type t = {
  id : int;
  tlb : Tlb.t;
  mutable el : el;
  mutable current_vmid : int;  (** VMID 0 = KServ (the host) *)
  mutable s2_root : int option;
  mutable running_vcpu : (int * int) option;  (** (vmid, vcpuid) *)
}

val create : id:int -> tlb_capacity:int -> t

val pp_el : Format.formatter -> el -> unit
val show_el : el -> string
val equal_el : el -> el -> bool
val compare_el : el -> el -> int
