(** Physical CPU state for the virtualization substrate.

    Each CPU has an exception level (EL2 = hypervisor, EL1 = kernel/KServ,
    EL0 = user/VM guest), a stage-2 translation context (current VMID and
    stage-2 root), and a private TLB. *)

type el = El0 | El1 | El2 [@@deriving show, eq, ord]

type t = {
  id : int;
  tlb : Tlb.t;
  mutable el : el;
  mutable current_vmid : int;  (** VMID 0 = KServ (the host) *)
  mutable s2_root : int option;  (** stage-2 root while running VM/KServ *)
  mutable running_vcpu : (int * int) option;  (** (vmid, vcpuid) *)
}

let create ~id ~tlb_capacity =
  { id;
    tlb = Tlb.create ~capacity:tlb_capacity;
    el = El2;
    current_vmid = 0;
    s2_root = None;
    running_vcpu = None }
