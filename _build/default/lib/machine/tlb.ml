(** Per-CPU translation lookaside buffer.

    Entries are tagged by VMID so that stage-2 translations of different
    VMs coexist (as on Armv8 with VMID-tagged TLBs). Capacity is finite
    with FIFO replacement; capacity pressure is what makes the m400's tiny
    TLB visible in the microbenchmarks (Table 3). *)

type entry = {
  e_vmid : int;
  e_vp : int;  (** virtual (input) page number *)
  e_pfn : int;
  e_perms : Pte.perms;
}

type t = {
  capacity : int;
  mutable entries : entry list;  (** most recent first *)
  mutable fills : int;
  mutable hits : int;
  mutable misses : int;
}

let create ~capacity = { capacity; entries = []; fills = 0; hits = 0; misses = 0 }

let lookup t ~vmid ~vp =
  match
    List.find_opt (fun e -> e.e_vmid = vmid && e.e_vp = vp) t.entries
  with
  | Some e ->
      t.hits <- t.hits + 1;
      Some (e.e_pfn, e.e_perms)
  | None ->
      t.misses <- t.misses + 1;
      None

(** Insert a translation (possibly evicting the oldest entry). *)
let fill t ~vmid ~vp ~pfn ~perms =
  let entries =
    List.filter (fun e -> not (e.e_vmid = vmid && e.e_vp = vp)) t.entries
  in
  let entries = { e_vmid = vmid; e_vp = vp; e_pfn = pfn; e_perms = perms } :: entries in
  let entries =
    if List.length entries > t.capacity then
      List.filteri (fun i _ -> i < t.capacity) entries
    else entries
  in
  t.fills <- t.fills + 1;
  t.entries <- entries

let invalidate_all t = t.entries <- []

let invalidate_vmid t ~vmid =
  t.entries <- List.filter (fun e -> e.e_vmid <> vmid) t.entries

let invalidate_va t ~vmid ~vp =
  t.entries <-
    List.filter (fun e -> not (e.e_vmid = vmid && e.e_vp = vp)) t.entries

let size t = List.length t.entries

(** Is some entry inconsistent with the given page-table walk function?
    (the paper's TLB-consistency requirement: a TLB value is either
    invalid or equal to the page-table value) *)
let inconsistent_entries t ~walk =
  List.filter
    (fun e ->
      match walk ~vmid:e.e_vmid ~vp:e.e_vp with
      | Some (pfn, perms) -> pfn <> e.e_pfn || perms <> e.e_perms
      | None -> true)
    t.entries
