lib/machine/page_table.pp.ml: Hashtbl List Page_pool Phys_mem Ppx_deriving_runtime Pte
