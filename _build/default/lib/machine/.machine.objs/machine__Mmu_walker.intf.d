lib/machine/mmu_walker.pp.mli: Format Page_table Phys_mem
