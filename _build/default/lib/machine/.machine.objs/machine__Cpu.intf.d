lib/machine/cpu.pp.mli: Format Tlb
