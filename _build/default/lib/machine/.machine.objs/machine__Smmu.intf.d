lib/machine/smmu.pp.mli: Page_pool Page_table Phys_mem Pte Tlb
