lib/machine/phys_mem.pp.mli:
