lib/machine/tlb_sim.pp.mli:
