lib/machine/hw_config.pp.ml: Page_table
