lib/machine/s2page.pp.ml: Array List Ppx_deriving_runtime Printf
