lib/machine/hw_config.pp.mli: Page_table
