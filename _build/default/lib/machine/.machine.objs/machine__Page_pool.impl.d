lib/machine/page_pool.pp.ml: List Phys_mem
