lib/machine/pte.pp.ml: Ppx_deriving_runtime
