lib/machine/s2page.pp.mli: Format
