lib/machine/page_table.pp.mli: Format Page_pool Phys_mem Pte
