lib/machine/smmu.pp.ml: List Page_pool Page_table Phys_mem Pte Tlb
