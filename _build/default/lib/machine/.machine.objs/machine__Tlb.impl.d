lib/machine/tlb.pp.ml: List Pte
