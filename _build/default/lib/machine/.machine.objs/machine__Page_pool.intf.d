lib/machine/page_pool.pp.mli: Phys_mem
