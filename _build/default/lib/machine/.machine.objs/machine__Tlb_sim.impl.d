lib/machine/tlb_sim.pp.ml: List
