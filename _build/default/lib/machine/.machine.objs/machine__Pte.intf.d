lib/machine/pte.pp.mli: Format
