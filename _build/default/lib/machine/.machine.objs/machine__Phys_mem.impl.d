lib/machine/phys_mem.pp.ml: Array Printf
