lib/machine/mmu_walker.pp.ml: List Page_table Phys_mem Ppx_deriving_runtime Pte Set
