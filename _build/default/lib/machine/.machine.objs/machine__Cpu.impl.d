lib/machine/cpu.pp.ml: Ppx_deriving_runtime Tlb
