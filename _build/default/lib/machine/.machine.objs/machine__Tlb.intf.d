lib/machine/tlb.pp.mli: Pte
