(** The page ownership database (paper §5.3).

    KCore tracks the owner of each 4 KB physical page: itself, KServ, or a
    VM. A page has exactly one owner at a time; [share] counts pages
    intentionally shared (e.g. for paravirtual I/O); [map_count] tracks how
    many stage-2/SMMU mappings reference the page, so that reclaim can
    verify a page is unmapped before transferring ownership. *)

type owner = Kcore | Kserv | Vm of int [@@deriving show, eq, ord]

type info = {
  mutable owner : owner;
  mutable shared : bool;
  mutable map_count : int;
}

type t = { pages : info array }

let create ~n_pages ~default_owner =
  { pages =
      Array.init n_pages (fun _ ->
          { owner = default_owner; shared = false; map_count = 0 }) }

let n_pages t = Array.length t.pages

let get t pfn =
  if pfn < 0 || pfn >= Array.length t.pages then
    invalid_arg (Printf.sprintf "S2page: pfn %d out of range" pfn);
  t.pages.(pfn)

let owner t pfn = (get t pfn).owner
let set_owner t pfn o = (get t pfn).owner <- o
let is_shared t pfn = (get t pfn).shared
let set_shared t pfn b = (get t pfn).shared <- b
let map_count t pfn = (get t pfn).map_count
let incr_map t pfn = (get t pfn).map_count <- (get t pfn).map_count + 1

let decr_map t pfn =
  let i = get t pfn in
  if i.map_count <= 0 then invalid_arg "S2page: map_count underflow";
  i.map_count <- i.map_count - 1

let pages_owned_by t o =
  let acc = ref [] in
  Array.iteri (fun pfn i -> if i.owner = o then acc := pfn :: !acc) t.pages;
  List.rev !acc
