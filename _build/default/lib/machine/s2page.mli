(** The page ownership database (paper §5.3): each 4 KB frame has exactly
    one owner — KCore, KServ, or a VM — plus a shared flag (paravirtual
    I/O) and a mapping reference count. *)

type owner = Kcore | Kserv | Vm of int

type info = {
  mutable owner : owner;
  mutable shared : bool;
  mutable map_count : int;
}

type t

val create : n_pages:int -> default_owner:owner -> t
val n_pages : t -> int
val get : t -> int -> info
val owner : t -> int -> owner
val set_owner : t -> int -> owner -> unit
val is_shared : t -> int -> bool
val set_shared : t -> int -> bool -> unit
val map_count : t -> int -> int
val incr_map : t -> int -> unit

val decr_map : t -> int -> unit
(** Raises [Invalid_argument] on underflow. *)

val pages_owned_by : t -> owner -> int list

val pp_owner : Format.formatter -> owner -> unit
val show_owner : owner -> string
val equal_owner : owner -> owner -> bool
val compare_owner : owner -> owner -> int
