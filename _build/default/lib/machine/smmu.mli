(** SMMU: the I/O MMU protecting DMA (paper §5.3–5.5). Each DMA-capable
    device is attached to a context bank with its own page table; DMA goes
    through {!translate} (SMMU TLB, then a walk). KCore owns the
    page-table pages and is the only writer. *)

type t = {
  mem : Phys_mem.t;
  geometry : Page_table.geometry;
  pool : Page_pool.t;
  tlb : Tlb.t;  (** SMMU TLB, tagged by device id *)
  mutable contexts : (int * int) list;  (** device id -> root table pfn *)
  mutable enabled : bool;
      (** the configuration invariant: KCore never lets this become
          [false]; a disabled SMMU means raw physical DMA *)
}

val create :
  mem:Phys_mem.t -> geometry:Page_table.geometry -> pool:Page_pool.t ->
  tlb_capacity:int -> t

val attach_device : t -> device:int -> int
(** Allocate a context bank; returns the root table pfn. Raises
    [Invalid_argument] if already attached. *)

val root_of : t -> device:int -> int option
val is_attached : t -> device:int -> bool

val translate : t -> device:int -> iova:int -> (int * Pte.perms) option
(** DMA translation as the SMMU hardware performs it; [None] = fault
    (unattached device or unmapped IOVA). When [enabled] is false, DMA
    bypasses translation — the state the invariants forbid. *)

val invalidate_tlb_device : t -> device:int -> unit
val invalidate_tlb_va : t -> device:int -> iova:int -> unit

val reachable_pfns : t -> device:int -> int list
(** All frames reachable by DMA from [device] — for isolation invariants. *)
