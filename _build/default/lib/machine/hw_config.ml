(** The two Armv8 server configurations of the paper's evaluation (§6). *)

type t = {
  name : string;
  n_cpus : int;
  freq_ghz : float;
  tlb_entries : int;
      (** unified stage-2-capable TLB capacity; the X-Gene's is tiny
          (the paper cites it to explain the large m400 microbenchmark
          overheads) *)
  ram_gb : int;
  vm_vcpus : int;  (** SMP VM configuration used in the evaluation *)
  vm_ram_mb : int;
  stage2_geometry : Page_table.geometry;
}

(** HP Moonshot m400: 8-core Applied Micro X-Gene (Atlas) @ 2.4 GHz. *)
let m400 =
  { name = "m400";
    n_cpus = 8;
    freq_ghz = 2.4;
    tlb_entries = 64;
    ram_gb = 64;
    vm_vcpus = 2;
    vm_ram_mb = 256;
    stage2_geometry = Page_table.four_level }

(** AMD Seattle Rev.B0: 8-core Opteron A1100 (Cortex-A57) @ 2 GHz. *)
let seattle =
  { name = "seattle";
    n_cpus = 8;
    freq_ghz = 2.0;
    tlb_entries = 1024;
    ram_gb = 16;
    vm_vcpus = 4;
    vm_ram_mb = 12288;
    stage2_geometry = Page_table.four_level }

(** A modern Arm server CPU (Neoverse-class): the paper notes "newer Arm
    CPUs have more reasonable TLB sizes similar to or greater than the
    Seattle CPUs" — this configuration makes that forward-looking claim
    checkable: SeKVM's overhead collapses to the dispatch floor. *)
let neoverse =
  { name = "neoverse";
    n_cpus = 16;
    freq_ghz = 3.0;
    tlb_entries = 2048;
    ram_gb = 128;
    vm_vcpus = 4;
    vm_ram_mb = 16384;
    stage2_geometry = Page_table.four_level }

let all = [ m400; seattle; neoverse ]
