(** Multi-level page-table trees over physical memory: the two stage-2
    geometries the paper verifies (§5.6) — 4-level (48-bit) and 3-level
    (39-bit), 9 address bits per level, 4 KB granule — plus block
    (huge-page) mappings. The walker here is the {e software} view used by
    the kernel; the racy {e hardware} walker lives in {!Mmu_walker}. *)

type geometry = { levels : int }

val four_level : geometry
val three_level : geometry
val bits_per_level : int
val page_shift : int
val va_bits : geometry -> int

val index : geometry -> level:int -> int -> int
(** Table index of a VA at [level] (level 0 = leaf). *)

val page_offset : int -> int
val va_page : int -> int
val page_va : int -> int

type walk_result =
  | Mapped of int * Pte.perms  (** output pfn + permissions *)
  | Fault of int  (** faulting level *)

(** A single word inside a page-table page, as touched by an update — the
    unit the transactional checker reasons about. *)
type pt_write = { w_pfn : int; w_idx : int; w_old : int; w_new : int }

val block_pages : level:int -> int
(** Pages covered by a block mapping at [level] (level 0 = one page). *)

val walk : Phys_mem.t -> geometry -> root:int -> int -> walk_result
(** The atomic (SC) walk; a [Pte.Page] above the leaf level is a block
    mapping, translated with the VA's residual page index. *)

val plan_map :
  Phys_mem.t -> geometry -> pool:Page_pool.t -> root:int -> va:int ->
  target_pfn:int -> perms:Pte.perms ->
  (pt_write list, [ `Already_mapped ]) result
(** Plan the walk–allocate–set writes mapping [va -> target_pfn], in
    program order, without applying them — so callers can interleave
    barrier/TLBI bookkeeping and the transactional checker can exercise
    their reorderings. Never overwrites a valid entry. *)

val plan_map_block :
  Phys_mem.t -> geometry -> pool:Page_pool.t -> root:int -> va:int ->
  target_pfn:int -> perms:Pte.perms -> level:int ->
  (pt_write list, [ `Already_mapped | `Misaligned ]) result
(** Plan a block (huge-page) mapping at [level] (1 = 2 MB); [va] and
    [target_pfn] must be block-aligned. *)

val plan_unmap : Phys_mem.t -> geometry -> root:int -> va:int -> pt_write option
(** The single write clearing [va]'s leaf — or its whole covering block. *)

val apply_write : Phys_mem.t -> pt_write -> unit
val apply_writes : Phys_mem.t -> pt_write list -> unit
val revert_write : Phys_mem.t -> pt_write -> unit
val revert_writes : Phys_mem.t -> pt_write list -> unit

val mappings : Phys_mem.t -> geometry -> root:int -> (int * int * Pte.perms) list
(** All (vp, pfn, perms) page mappings; blocks are expanded to their
    constituent pages so invariant checkers see every reachable frame. *)

(** Leaf-entry granularity view: one record per PTE, blocks unexpanded. *)
type extent = { e_vp : int; e_pfn : int; e_perms : Pte.perms; e_pages : int }

val extents : Phys_mem.t -> geometry -> root:int -> extent list
val table_pages : Phys_mem.t -> geometry -> root:int -> int list

val pp_walk_result : Format.formatter -> walk_result -> unit
val show_walk_result : walk_result -> string
val equal_walk_result : walk_result -> walk_result -> bool
val pp_pt_write : Format.formatter -> pt_write -> unit
val show_pt_write : pt_write -> string
val equal_pt_write : pt_write -> pt_write -> bool
val pp_geometry : Format.formatter -> geometry -> unit
val show_geometry : geometry -> string
val equal_geometry : geometry -> geometry -> bool
