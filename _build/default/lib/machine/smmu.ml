(** SMMU: the I/O MMU protecting DMA (paper §5.3-5.5).

    Each DMA-capable device is attached to a context bank with its own page
    table; device DMA goes through [translate], which consults the SMMU TLB
    and walks the device's table on a miss. KCore owns the page-table pages
    (allocated from a dedicated pool) and is the only writer. *)

type t = {
  mem : Phys_mem.t;
  geometry : Page_table.geometry;
  pool : Page_pool.t;
  tlb : Tlb.t;  (** SMMU TLB, tagged by device id *)
  mutable contexts : (int * int) list;  (** device id -> root table pfn *)
  mutable enabled : bool;
}

let create ~mem ~geometry ~pool ~tlb_capacity =
  { mem; geometry; pool; tlb = Tlb.create ~capacity:tlb_capacity;
    contexts = []; enabled = true }

let attach_device t ~device =
  if List.mem_assoc device t.contexts then
    invalid_arg "Smmu.attach_device: already attached"
  else begin
    let root = Page_pool.alloc t.pool in
    t.contexts <- (device, root) :: t.contexts;
    root
  end

let root_of t ~device = List.assoc_opt device t.contexts

let is_attached t ~device = List.mem_assoc device t.contexts

(** DMA translation as the SMMU hardware performs it. *)
let translate t ~device ~iova : (int * Pte.perms) option =
  if not t.enabled then
    (* SMMU disabled: DMA goes straight to physical memory — precisely the
       configuration KCore's invariants must rule out *)
    Some (Page_table.va_page iova, Pte.rw)
  else
    match root_of t ~device with
    | None -> None
    | Some root -> (
        let vp = Page_table.va_page iova in
        match Tlb.lookup t.tlb ~vmid:device ~vp with
        | Some (pfn, perms) -> Some (pfn, perms)
        | None -> (
            match Page_table.walk t.mem t.geometry ~root iova with
            | Page_table.Mapped (pfn, perms) ->
                Tlb.fill t.tlb ~vmid:device ~vp ~pfn ~perms;
                Some (pfn, perms)
            | Page_table.Fault _ -> None))

let invalidate_tlb_device t ~device = Tlb.invalidate_vmid t.tlb ~vmid:device
let invalidate_tlb_va t ~device ~iova =
  Tlb.invalidate_va t.tlb ~vmid:device ~vp:(Page_table.va_page iova)

(** All pfns reachable by DMA from [device] — for isolation invariants. *)
let reachable_pfns t ~device =
  match root_of t ~device with
  | None -> []
  | Some root ->
      List.map (fun (_, pfn, _) -> pfn)
        (Page_table.mappings t.mem t.geometry ~root)
