(** Physical memory: an array of 4 KB pages, each page an array of 512
    word-sized entries. This is the single backing store for data pages,
    stage-2 page-table pages, SMMU page-table pages and KCore's own memory;
    the ownership database ({!S2page}) tracks who may touch what. *)

let page_size = 4096
let entries_per_page = 512

type t = {
  n_pages : int;
  pages : int array array;
}

let create n_pages =
  { n_pages; pages = Array.init n_pages (fun _ -> Array.make entries_per_page 0) }

let n_pages t = t.n_pages

let check_pfn t pfn =
  if pfn < 0 || pfn >= t.n_pages then
    invalid_arg (Printf.sprintf "Phys_mem: pfn %d out of range" pfn)

let read t ~pfn ~idx =
  check_pfn t pfn;
  t.pages.(pfn).(idx)

let write t ~pfn ~idx v =
  check_pfn t pfn;
  t.pages.(pfn).(idx) <- v

(** Zero a whole page (scrubbing freed/granted memory). *)
let scrub t pfn =
  check_pfn t pfn;
  Array.fill t.pages.(pfn) 0 entries_per_page 0

let fill t pfn v =
  check_pfn t pfn;
  Array.fill t.pages.(pfn) 0 entries_per_page v

(** Copy page contents (VM image loading, snapshots). *)
let copy_page t ~src ~dst =
  check_pfn t src;
  check_pfn t dst;
  Array.blit t.pages.(src) 0 t.pages.(dst) 0 entries_per_page

let page_equal t a b =
  check_pfn t a;
  check_pfn t b;
  t.pages.(a) = t.pages.(b)

(** A cheap stand-in for a cryptographic page digest (the paper's Ed25519
    VM-image authentication): order-sensitive rolling hash. *)
let digest_page t pfn =
  check_pfn t pfn;
  Array.fold_left (fun acc w -> (acc * 1_000_003) lxor w) 0x811c9dc5 t.pages.(pfn)
