(** Reserved page allocator. KCore builds stage-2 and SMMU page tables
    from private pools scrubbed at initialization; {!alloc} hands out
    zeroed pages ("all bytes of a newly allocated page are guaranteed to
    be 0", paper §5.4). *)

type t

exception Pool_exhausted of string

val create : name:string -> mem:Phys_mem.t -> first_pfn:int -> n_pages:int -> t
val alloc : t -> int
val free : t -> int -> unit
val available : t -> int
val allocated : t -> int
