(** Page-table entry encoding.

    Entries are stored in page-table pages as plain integers, so that a
    page-table update is an ordinary word store — which is exactly what
    makes page tables racy against the MMU walker. The encoding packs:

    - bit 0: valid
    - bit 1: table (points to a next-level table) vs block/page (leaf)
    - bit 2: readable
    - bit 3: writable
    - bits 12..: physical frame number (next-level table or output frame)
*)

type perms = { readable : bool; writable : bool } [@@deriving show, eq]

let rw = { readable = true; writable = true }
let ro = { readable = true; writable = false }

type t =
  | Invalid
  | Table of int  (** pfn of the next-level table page *)
  | Page of int * perms  (** leaf: output frame + permissions *)
[@@deriving show, eq]

let pfn_shift = 12

let encode = function
  | Invalid -> 0
  | Table pfn -> (pfn lsl pfn_shift) lor 0b0011
  | Page (pfn, p) ->
      (pfn lsl pfn_shift) lor 0b0001
      lor (if p.readable then 0b0100 else 0)
      lor if p.writable then 0b1000 else 0

let decode w =
  if w land 1 = 0 then Invalid
  else if w land 0b10 <> 0 then Table (w lsr pfn_shift)
  else
    Page
      ( w lsr pfn_shift,
        { readable = w land 0b0100 <> 0; writable = w land 0b1000 <> 0 } )

let is_valid w = w land 1 <> 0
