(** The two Armv8 server configurations of the paper's evaluation (§6). *)

type t = {
  name : string;
  n_cpus : int;
  freq_ghz : float;
  tlb_entries : int;
      (** unified stage-2-capable TLB capacity; the X-Gene's is tiny *)
  ram_gb : int;
  vm_vcpus : int;  (** SMP VM configuration used in the evaluation *)
  vm_ram_mb : int;
  stage2_geometry : Page_table.geometry;
}

val m400 : t
(** HP Moonshot m400: 8-core Applied Micro X-Gene @ 2.4 GHz, tiny TLB. *)

val seattle : t
(** AMD Seattle Rev.B0: 8-core Opteron A1100 (Cortex-A57) @ 2 GHz. *)

val neoverse : t
(** A modern (Neoverse-class) Arm server: the "newer Arm CPUs have more
    reasonable TLB sizes" remark of §6, as a configuration. *)

val all : t list
