(** Per-CPU translation lookaside buffer, VMID-tagged, with finite
    capacity and FIFO replacement — the capacity pressure is what makes
    the m400's tiny TLB visible in Table 3. *)

type entry = { e_vmid : int; e_vp : int; e_pfn : int; e_perms : Pte.perms }

type t = {
  capacity : int;
  mutable entries : entry list;  (** most recent first *)
  mutable fills : int;
  mutable hits : int;
  mutable misses : int;
}

val create : capacity:int -> t
val lookup : t -> vmid:int -> vp:int -> (int * Pte.perms) option
val fill : t -> vmid:int -> vp:int -> pfn:int -> perms:Pte.perms -> unit
val invalidate_all : t -> unit
val invalidate_vmid : t -> vmid:int -> unit
val invalidate_va : t -> vmid:int -> vp:int -> unit
val size : t -> int

val inconsistent_entries :
  t -> walk:(vmid:int -> vp:int -> (int * Pte.perms) option) -> entry list
(** Entries inconsistent with the given page-table walk (the paper's
    TLB-consistency requirement: a TLB value is either invalid or equal
    to the page-table value). *)
