(** Physical memory: an array of 4 KB pages, each an array of word-sized
    entries — the single backing store for data pages, every page table,
    and KCore's own memory. *)

type t

val page_size : int
val entries_per_page : int

val create : int -> t
(** [create n_pages] — all pages zeroed. *)

val n_pages : t -> int

val read : t -> pfn:int -> idx:int -> int
(** Raises [Invalid_argument] on an out-of-range frame. *)

val write : t -> pfn:int -> idx:int -> int -> unit

val scrub : t -> int -> unit
(** Zero a whole page (freed/granted memory). *)

val fill : t -> int -> int -> unit
val copy_page : t -> src:int -> dst:int -> unit
val page_equal : t -> int -> int -> bool

val digest_page : t -> int -> int
(** A cheap stand-in for a cryptographic page digest (the paper's Ed25519
    VM-image authentication): order-sensitive rolling hash. *)
