(** Interleaved simulation of TLB maintenance races (paper Example 6):
    without a barrier between the unmap store and the TLBI, the
    invalidation can be processed first and another CPU's walk refills
    the stale translation — which then survives. *)

type kernel_event =
  | K_unmap  (** the page-table store clearing the leaf PTE *)
  | K_barrier  (** DSB: orders the store before subsequent events *)
  | K_tlbi  (** broadcast TLB invalidate for the VA *)

val hardware_orders : kernel_event list -> kernel_event list list
(** Orders in which hardware may commit the sequence: program order, plus
    each TLBI hoisted up to the nearest preceding barrier. *)

val run_order : kernel_event list -> initially_cached:bool -> bool
(** One interleaving with an adversarial translating CPU; returns whether
    its TLB still holds the translation at the end. *)

val stale_tlb_possible : kernel_event list -> bool

val unmap_no_barrier : kernel_event list
(** [\[unmap; tlbi\]] — Example 6's buggy sequence. *)

val unmap_with_barrier : kernel_event list
(** [\[unmap; DSB; tlbi\]] — the Sequential-TLB-Invalidation discipline. *)
