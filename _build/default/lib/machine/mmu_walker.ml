(** The {e hardware} page-table walker, including its racy behavior.

    While kernel code updates a shared page table inside a critical
    section, MMU hardware on other CPUs concurrently walks the same table
    — the unavoidable read/write race of paper §2 (Examples 4 and 5). On
    relaxed hardware, each individual walker read may observe an in-flight
    write or not, {e independently} of what other reads of the same walk
    observed (there is no ordering between walker reads of different
    words).

    [walk_relaxed] implements exactly that: at each level, the walker may
    read either the current memory value of the entry word or the value of
    any pending write to that word. The set of results it returns
    over-approximates every reordering of the pending writes, so it is a
    {e sound} basis for checking the Transactional-Page-Table condition:
    if even this walker can only observe old-result, new-result or fault,
    then so can real hardware. *)

type observation = Page_table.walk_result [@@deriving show, eq]

module Obs_set = Set.Make (struct
  type t = observation

  let compare = compare
end)

(** All results a relaxed hardware walk of [va] can produce while the
    writes in [pending] are in flight (not yet guaranteed visible). Memory
    [mem] holds the {e pre}-critical-section state. *)
let walk_relaxed mem g ~root ~pending va : observation list =
  let observable_values pfn idx =
    let base = Phys_mem.read mem ~pfn ~idx in
    let from_writes =
      List.filter_map
        (fun w ->
          if w.Page_table.w_pfn = pfn && w.Page_table.w_idx = idx then
            Some w.Page_table.w_new
          else None)
        pending
    in
    List.sort_uniq compare (base :: from_writes)
  in
  let results = ref Obs_set.empty in
  let rec go pfn level =
    let idx = Page_table.index g ~level va in
    List.iter
      (fun word ->
        match Pte.decode word with
        | Pte.Invalid -> results := Obs_set.add (Page_table.Fault level) !results
        | Pte.Table next ->
            if level = 0 then
              results := Obs_set.add (Page_table.Fault level) !results
            else go next (level - 1)
        | Pte.Page (out, perms) ->
            if level = 0 then
              results := Obs_set.add (Page_table.Mapped (out, perms)) !results
            else results := Obs_set.add (Page_table.Fault level) !results)
      (observable_values pfn idx)
  in
  go root (g.levels - 1);
  Obs_set.elements !results

let is_fault = function Page_table.Fault _ -> true | Page_table.Mapped _ -> false

(** The executable Transactional-Page-Table judgment (wDRF condition 4):
    with [writes] in flight, every relaxed walk of every affected address
    must observe the before-state result, the after-state result, or a
    fault. Returns the offending [(va, observation)] witnesses. *)
let transactional_violations mem g ~root ~writes ~vas =
  List.concat_map
    (fun va ->
      let before = Page_table.walk mem g ~root va in
      Page_table.apply_writes mem writes;
      let after = Page_table.walk mem g ~root va in
      Page_table.revert_writes mem writes;
      let seen = walk_relaxed mem g ~root ~pending:writes va in
      List.filter_map
        (fun obs ->
          if obs = before || obs = after || is_fault obs then None
          else Some (va, obs))
        seen)
    vas
