(** Reserved page allocator.

    KCore builds stage-2 and SMMU page tables from private pools scrubbed at
    initialization; [alloc] hands out zeroed pages ("all bytes of a newly
    allocated page are guaranteed to be 0", §5.4). *)

type t = {
  mem : Phys_mem.t;
  name : string;
  mutable free : int list;  (** free pfns, LIFO *)
  mutable allocated : int;
  total : int;
}

exception Pool_exhausted of string

let create ~name ~mem ~first_pfn ~n_pages =
  let free = List.init n_pages (fun i -> first_pfn + i) in
  List.iter (Phys_mem.scrub mem) free;
  { mem; name; free; allocated = 0; total = n_pages }

let alloc t =
  match t.free with
  | [] -> raise (Pool_exhausted t.name)
  | pfn :: rest ->
      t.free <- rest;
      t.allocated <- t.allocated + 1;
      (* pages are scrubbed on free, but scrub again defensively: the
         zero-on-alloc guarantee is what makes freshly inserted tables
         observationally empty during racy walks *)
      Phys_mem.scrub t.mem pfn;
      pfn

let free t pfn =
  Phys_mem.scrub t.mem pfn;
  t.allocated <- t.allocated - 1;
  t.free <- pfn :: t.free

let available t = List.length t.free
let allocated t = t.allocated
