(** Interleaved simulation of TLB maintenance races (paper Example 6).

    A kernel CPU unmaps a page and invalidates TLBs; another CPU's MMU
    concurrently translates through its own TLB, refilling it from the page
    table on a miss. On relaxed hardware, the unmap store and the TLBI can
    be reordered unless separated by a barrier (the
    Sequential-TLB-Invalidation condition), so the invalidation can be
    processed {e before} the unmap becomes visible — and the other CPU's
    walk can then refill the stale translation, which survives the (already
    past) invalidation.

    [run] enumerates all interleavings of the kernel-CPU event sequence
    with translation attempts by the other CPU and reports whether a stale
    translation can remain in the TLB after the kernel sequence completes. *)

type kernel_event =
  | K_unmap  (** the page-table store clearing the leaf PTE *)
  | K_barrier  (** DSB: orders the store before subsequent events *)
  | K_tlbi  (** broadcast TLB invalidate for the VA *)

(** The orderings in which the hardware may commit the kernel events:
    program order always; plus the TLBI hoisted before the unmap when no
    barrier separates them. *)
let hardware_orders (seq : kernel_event list) : kernel_event list list =
  let rec hoists acc = function
    (* a TLBI may move before any earlier events until blocked by a
       barrier; we generate the single interesting reordering per TLBI:
       all positions before the nearest preceding barrier *)
    | [] -> [ List.rev acc ]
    | K_tlbi :: rest ->
        let before_barrier =
          (* positions in acc (reversed prefix) up to the first barrier *)
          let rec positions n = function
            | [] -> n
            | K_barrier :: _ -> n
            | _ :: tl -> positions (n + 1) tl
          in
          positions 0 acc
        in
        List.concat_map
          (fun k ->
            (* insert the tlbi k events earlier *)
            let prefix = List.rev acc in
            let cut = List.length prefix - k in
            let left = List.filteri (fun i _ -> i < cut) prefix in
            let right = List.filteri (fun i _ -> i >= cut) prefix in
            List.map
              (fun tail -> left @ (K_tlbi :: right) @ tail)
              (hoists [] rest))
          (List.init (before_barrier + 1) (fun i -> i))
    | e :: rest -> hoists (e :: acc) rest
  in
  List.sort_uniq compare (hoists [] seq)

type sim_state = {
  mutable mapped : bool;  (** page-table state of the target VA *)
  mutable tlb_valid : bool;  (** other CPU's TLB holds the translation *)
}

(** One interleaving: kernel events in [order], with the other CPU
    attempting a translation at every point in between (the adversarial
    schedule). Returns the final TLB state. *)
let run_order (order : kernel_event list) ~initially_cached : bool =
  let st = { mapped = true; tlb_valid = initially_cached } in
  let translate () =
    (* TLB hit: nothing changes. Miss: walk the page table; if mapped,
       refill the TLB. *)
    if not st.tlb_valid then if st.mapped then st.tlb_valid <- true
  in
  List.iter
    (fun ev ->
      translate ();
      (match ev with
      | K_unmap -> st.mapped <- false
      | K_barrier -> ()
      | K_tlbi -> st.tlb_valid <- false);
      translate ())
    order;
  st.tlb_valid

(** Can the other CPU's TLB still hold the (now stale) translation after
    the kernel sequence completes, under some hardware ordering? *)
let stale_tlb_possible (seq : kernel_event list) : bool =
  List.exists
    (fun order ->
      run_order order ~initially_cached:true
      || run_order order ~initially_cached:false)
    (hardware_orders seq)

(** The two sequences of Example 6. *)
let unmap_no_barrier = [ K_unmap; K_tlbi ]
let unmap_with_barrier = [ K_unmap; K_barrier; K_tlbi ]
