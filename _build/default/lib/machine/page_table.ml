(** Multi-level page-table trees over physical memory.

    Supports the two stage-2 geometries the paper verifies (§5.6): 4-level
    (48-bit input addresses) and 3-level (39-bit), with 9 address bits per
    level and a 4 KB leaf granule. The walker here is the {e software} view
    used by the kernel itself; the {e hardware} (racy) walker that may
    observe in-flight writes lives in {!Mmu_walker}. *)

type geometry = { levels : int } [@@deriving show, eq]

let four_level = { levels = 4 }
let three_level = { levels = 3 }

let bits_per_level = 9
let page_shift = 12

let va_bits g = page_shift + (g.levels * bits_per_level)

(** Table index of [va] at [level] (level 0 = leaf). *)
let index g ~level va =
  if level < 0 || level >= g.levels then invalid_arg "Page_table.index";
  (va lsr (page_shift + (level * bits_per_level))) land ((1 lsl bits_per_level) - 1)

let page_offset va = va land ((1 lsl page_shift) - 1)

let va_page va = va lsr page_shift
let page_va vp = vp lsl page_shift

type walk_result =
  | Mapped of int * Pte.perms  (** output pfn + permissions *)
  | Fault of int  (** faulting level *)
[@@deriving show, eq]

(** A single physical word inside a page-table page, as touched by a walk
    or an update — the unit the transactional checker reasons about. *)
type pt_write = { w_pfn : int; w_idx : int; w_old : int; w_new : int }
[@@deriving show, eq]

(** Pages covered by a block mapping at [level] (level 0 = a 4 KB page). *)
let block_pages ~level = 1 lsl (level * bits_per_level)

(** Walk [va] from the table rooted at [root]: the atomic (SC) walk. A
    [Pte.Page] entry above the leaf level is a {e block} (huge-page)
    mapping covering [block_pages ~level] frames; the output frame is the
    block base plus [va]'s residual page index. *)
let walk mem g ~root va =
  let rec go pfn level =
    let idx = index g ~level va in
    match Pte.decode (Phys_mem.read mem ~pfn ~idx) with
    | Pte.Invalid -> Fault level
    | Pte.Table next ->
        if level = 0 then Fault level (* malformed: table PTE at leaf *)
        else go next (level - 1)
    | Pte.Page (out, perms) ->
        let offset = va_page va land (block_pages ~level - 1) in
        Mapped (out + offset, perms)
  in
  go root (g.levels - 1)

(** Plan the writes needed to map [va -> pfn] under [root], allocating
    intermediate tables from [pool]. Returns the write list {e in program
    order} (parents before children? No: KCore's walk-allocate-set writes
    the new table's parent entry as it descends, then the leaf last) and
    whether an existing valid leaf would be overwritten.

    The writes are returned without being applied so that callers
    ({!Sekvm.Npt}) can interleave them with barrier/TLBI bookkeeping and so
    the transactional checker can exercise their reorderings. *)
let plan_map mem g ~pool ~root ~va ~target_pfn ~perms :
    (pt_write list, [ `Already_mapped ]) result =
  let writes = ref [] in
  let shadow = Hashtbl.create 8 in
  (* reads must observe our own planned writes *)
  let read pfn idx =
    match Hashtbl.find_opt shadow (pfn, idx) with
    | Some v -> v
    | None -> Phys_mem.read mem ~pfn ~idx
  in
  let plan_write pfn idx v =
    let old = read pfn idx in
    writes := { w_pfn = pfn; w_idx = idx; w_old = old; w_new = v } :: !writes;
    Hashtbl.replace shadow (pfn, idx) v
  in
  let rec go pfn level =
    let idx = index g ~level va in
    if level = 0 then
      match Pte.decode (read pfn idx) with
      | Pte.Invalid ->
          plan_write pfn idx (Pte.encode (Pte.Page (target_pfn, perms)));
          Ok (List.rev !writes)
      | Pte.Table _ | Pte.Page _ -> Error `Already_mapped
    else
      match Pte.decode (read pfn idx) with
      | Pte.Table next -> go next (level - 1)
      | Pte.Invalid ->
          let fresh = Page_pool.alloc pool in
          plan_write pfn idx (Pte.encode (Pte.Table fresh));
          go fresh (level - 1)
      | Pte.Page _ -> Error `Already_mapped
  in
  go root (g.levels - 1)

(** Plan a block (huge-page) mapping of [va -> target_pfn] at [level]
    (level 1 = 2 MB with 4 KB granules). [va] and [target_pfn] must be
    aligned to the block size; missing intermediate tables are allocated
    down to [level]; the entry there must be empty. *)
let plan_map_block mem g ~pool ~root ~va ~target_pfn ~perms ~level :
    (pt_write list, [ `Already_mapped | `Misaligned ]) result =
  if level <= 0 || level >= g.levels then invalid_arg "plan_map_block: level";
  let bp = block_pages ~level in
  if va_page va land (bp - 1) <> 0 || target_pfn land (bp - 1) <> 0 then
    Error `Misaligned
  else begin
    let writes = ref [] in
    let shadow = Hashtbl.create 8 in
    let read pfn idx =
      match Hashtbl.find_opt shadow (pfn, idx) with
      | Some v -> v
      | None -> Phys_mem.read mem ~pfn ~idx
    in
    let plan_write pfn idx v =
      let old = read pfn idx in
      writes := { w_pfn = pfn; w_idx = idx; w_old = old; w_new = v } :: !writes;
      Hashtbl.replace shadow (pfn, idx) v
    in
    let rec go pfn l =
      let idx = index g ~level:l va in
      if l = level then
        match Pte.decode (read pfn idx) with
        | Pte.Invalid ->
            plan_write pfn idx (Pte.encode (Pte.Page (target_pfn, perms)));
            Ok (List.rev !writes)
        | Pte.Table _ | Pte.Page _ -> Error `Already_mapped
      else
        match Pte.decode (read pfn idx) with
        | Pte.Table next -> go next (l - 1)
        | Pte.Invalid ->
            let fresh = Page_pool.alloc pool in
            plan_write pfn idx (Pte.encode (Pte.Table fresh));
            go fresh (l - 1)
        | Pte.Page _ -> Error `Already_mapped
    in
    go root (g.levels - 1)
  end

(** Plan the (single) write that unmaps [va]: clears the leaf entry, or
    the whole block entry when [va] is covered by a block mapping. *)
let plan_unmap mem g ~root ~va : pt_write option =
  let rec go pfn level =
    let idx = index g ~level va in
    match Pte.decode (Phys_mem.read mem ~pfn ~idx) with
    | Pte.Invalid -> None
    | Pte.Table next -> if level = 0 then None else go next (level - 1)
    | Pte.Page _ ->
        Some
          { w_pfn = pfn;
            w_idx = idx;
            w_old = Phys_mem.read mem ~pfn ~idx;
            w_new = Pte.encode Pte.Invalid }
  in
  go root (g.levels - 1)

let apply_write mem (w : pt_write) = Phys_mem.write mem ~pfn:w.w_pfn ~idx:w.w_idx w.w_new
let apply_writes mem ws = List.iter (apply_write mem) ws
let revert_write mem (w : pt_write) = Phys_mem.write mem ~pfn:w.w_pfn ~idx:w.w_idx w.w_old
let revert_writes mem ws = List.iter (revert_write mem) (List.rev ws)

(** All (vp, pfn, perms) page mappings reachable from [root] — block
    mappings are expanded to their constituent 4 KB pages, so invariant
    checkers see every reachable frame. *)
let mappings mem g ~root =
  let acc = ref [] in
  let rec go pfn level va_prefix =
    for idx = 0 to Phys_mem.entries_per_page - 1 do
      let va_part = va_prefix lor (idx lsl (page_shift + (level * bits_per_level))) in
      match Pte.decode (Phys_mem.read mem ~pfn ~idx) with
      | Pte.Invalid -> ()
      | Pte.Table next -> if level > 0 then go next (level - 1) va_part
      | Pte.Page (out, perms) ->
          for k = 0 to block_pages ~level - 1 do
            acc := (va_page va_part + k, out + k, perms) :: !acc
          done
    done
  in
  go root (g.levels - 1) 0;
  List.rev !acc

(** Leaf-entry granularity view: one record per PTE, blocks unexpanded. *)
type extent = { e_vp : int; e_pfn : int; e_perms : Pte.perms; e_pages : int }

let extents mem g ~root =
  let acc = ref [] in
  let rec go pfn level va_prefix =
    for idx = 0 to Phys_mem.entries_per_page - 1 do
      let va_part = va_prefix lor (idx lsl (page_shift + (level * bits_per_level))) in
      match Pte.decode (Phys_mem.read mem ~pfn ~idx) with
      | Pte.Invalid -> ()
      | Pte.Table next -> if level > 0 then go next (level - 1) va_part
      | Pte.Page (out, perms) ->
          acc :=
            { e_vp = va_page va_part; e_pfn = out; e_perms = perms;
              e_pages = block_pages ~level }
            :: !acc
    done
  in
  go root (g.levels - 1) 0;
  List.rev !acc

(** Pfns of every table page in the tree (root included). *)
let table_pages mem g ~root =
  let acc = ref [ root ] in
  let rec go pfn level =
    if level > 0 then
      for idx = 0 to Phys_mem.entries_per_page - 1 do
        match Pte.decode (Phys_mem.read mem ~pfn ~idx) with
        | Pte.Table next ->
            acc := next :: !acc;
            go next (level - 1)
        | Pte.Invalid | Pte.Page _ -> ()
      done
  in
  go root (g.levels - 1);
  List.rev !acc
