.PHONY: all build test litmus examples smoke lint bmc check bench \
	bench-smoke service-smoke bench-serve bench-serve-smoke clean

all: build

build:
	dune build

test:
	dune runtest

litmus:
	dune exec bin/vrm_cli.exe -- litmus

examples:
	dune build examples
	dune exec examples/quickstart.exe
	dune exec examples/litmus_gallery.exe
	dune exec examples/vm_lifecycle.exe
	dune exec examples/wdrf_audit.exe
	dune exec examples/migration.exe

# End-to-end CLI smoke: one litmus test through the shared JSON printer.
smoke:
	dune exec bin/vrm_cli.exe -- litmus mp-plain --stats
	dune exec bin/vrm_cli.exe -- litmus mp-plain --json

# Static wDRF lint over every kernel corpus entry, under BOTH engines
# (bounded-path and fixpoint), cross-validated against the dynamic
# checkers. Exits non-zero on any disagreement or on an engine
# divergence that is not pinned in Kernel_progs.lint_divergences.
lint:
	dune exec bin/vrm_cli.exe -- lint --engine=both --corpus

# Cross-validate the SAT-based BMC backend against the explicit-state
# engines: digest equality on every litmus-suite entry, both memory
# models. Exits non-zero on any divergence.
bmc:
	dune exec bin/vrm_cli.exe -- litmus --suite --backend=both

# The tier-1 gate: what CI runs. (CI additionally runs bench-smoke and
# service-smoke in their own jobs.)
check: build test examples litmus smoke lint bmc

bench:
	dune exec bench/main.exe

# Engine bench in check-only mode: runs the exploration-engine section,
# writes BENCH_engine.json and validates it round-trips through the
# strict JSON parser. Asserts digests and counts, never timings.
bench-smoke:
	dune exec bench/main.exe -- --json

# Service smoke: start vrmd, push a corpus subset through the socket
# on both lanes, verify parity against direct runs, prune the cache
# with cache-gc, exercise graceful shutdown.
service-smoke: build
	sh scripts/service_smoke.sh

# Full serving benchmark: in-process vrmd, 8 client threads, 2000
# requests 3:1 bulk-heavy, cold variants on the bulk lane. Writes
# BENCH_service.json (per-lane p50/p90/p99, throughput, hot hit
# ratio, sheds) and exits non-zero if digest parity breaks, an
# interactive submission is shed, the hot tier is < 5x faster than
# disk at p50, or the interactive tail is unbounded.
bench-serve: build
	dune exec --no-build bin/vrm_cli.exe -- bench-serve --json BENCH_service.json

# CI-scale variant of the above plus the schema/invariant validator.
bench-serve-smoke: build
	dune exec --no-build bin/vrm_cli.exe -- bench-serve \
	  --requests 200 --clients 4 --json BENCH_service.json
	sh scripts/bench_digest_check.sh --service BENCH_service.json

clean:
	dune clean
