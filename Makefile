.PHONY: all build test litmus check bench clean

all: build

build:
	dune build

test:
	dune runtest

litmus:
	dune exec bin/vrm_cli.exe -- litmus

# The tier-1 gate: what CI runs.
check: build test litmus

bench:
	dune exec bench/main.exe

clean:
	dune clean
