open Memmodel

(* Does [th] pull [base] unconditionally — before any branching, loop or
   panic at top level? If so, a leak of [base] in another thread is
   guaranteed to collide with this pull on some interleaving. *)
let pulls_unconditionally (th : Prog.thread) base =
  let rec go = function
    | [] -> false
    | Instr.Pull bs :: _ when List.mem base bs -> true
    | (Instr.If _ | Instr.While _ | Instr.Panic) :: _ -> false
    | _ :: rest -> go rest
  in
  go th.Prog.code

let run ~exempt ~initial_owners (prog : Prog.t) : Diag.t list =
  let shared = Prog.shared_bases prog in
  (* Mirrors [Pushpull.is_tracked]: pulls and pushes of exempt or
     non-shared bases are dynamically no-ops, so the static pass must
     ignore them too. *)
  let tracked b = List.mem b shared && not (List.mem b exempt) in
  List.concat
    (List.mapi
       (fun i (th : Prog.thread) ->
         let owned0 =
           List.filter_map
             (fun (b, idx) -> if idx = i then Some b else None)
             initial_owners
         in
         let leak_definite base =
           List.exists
             (fun (j, th') -> j <> i && pulls_unconditionally th' base)
             (List.mapi (fun j t -> (j, t)) prog.Prog.threads)
         in
         let per_path =
           List.map
             (fun path ->
               (* owned maps base -> structural point of the acquiring
                  pull (or [] for initial ownership). *)
               let owned0 = List.map (fun b -> (b, [])) owned0 in
               let owned, raws =
                 List.fold_left
                   (fun (owned, raws) (s : Cfg.step) ->
                     match s.Cfg.ins with
                     | Instr.Pull bs ->
                         let bs = List.filter tracked bs in
                         let dup, fresh =
                           List.partition
                             (fun b -> List.mem_assoc b owned)
                             bs
                         in
                         let raws =
                           List.fold_left
                             (fun raws b ->
                               { Cfg.r_code = Diag.W006;
                                 r_path = s.Cfg.pt;
                                 r_message =
                                   Printf.sprintf
                                     "pull of '%s' already owned by this \
                                      thread"
                                     b;
                                 r_fix =
                                   "remove the duplicate pull, or push the \
                                    base before re-acquiring it";
                                 r_definite = true }
                               :: raws)
                             raws dup
                         in
                         ( List.map (fun b -> (b, s.Cfg.pt)) fresh @ owned,
                           raws )
                     | Instr.Push bs ->
                         let bs = List.filter tracked bs in
                         let missing =
                           List.filter
                             (fun b -> not (List.mem_assoc b owned))
                             bs
                         in
                         let raws =
                           List.fold_left
                             (fun raws b ->
                               { Cfg.r_code = Diag.W006;
                                 r_path = s.Cfg.pt;
                                 r_message =
                                   Printf.sprintf
                                     "push of '%s' that this thread does \
                                      not own"
                                     b;
                                 r_fix =
                                   "pull the base before pushing it, or \
                                    drop the push";
                                 r_definite = true }
                               :: raws)
                             raws missing
                         in
                         ( List.filter
                             (fun (b, _) -> not (List.mem b bs))
                             owned,
                           raws )
                     | _ -> (owned, raws))
                   (owned0, []) path
               in
               (* leaks: pulled on this path (non-empty point) and never
                  pushed back *)
               List.fold_left
                 (fun raws (b, pt) ->
                   if pt = [] then raws
                   else
                     { Cfg.r_code = Diag.W006;
                       r_path = pt;
                       r_message =
                         Printf.sprintf
                           "ownership of '%s' pulled here is never pushed \
                            back on this path"
                           b;
                       r_fix = "push the base before the thread exits";
                       r_definite = leak_definite b }
                     :: raws)
                 raws owned)
             (Cfg.paths th.Prog.code)
         in
         Cfg.classify ~tid:th.Prog.tid ~per_path)
       prog.Prog.threads)
  |> Diag.sort
