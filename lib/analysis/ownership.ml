open Memmodel

(* Does [th] pull [base] unconditionally — before any branching, loop or
   panic at top level? If so, a leak of [base] in another thread is
   guaranteed to collide with this pull on some interleaving. *)
let pulls_unconditionally (th : Prog.thread) base =
  let rec go = function
    | [] -> false
    | Instr.Pull bs :: _ when List.mem base bs -> true
    | (Instr.If _ | Instr.While _ | Instr.Panic) :: _ -> false
    | _ :: rest -> go rest
  in
  go th.Prog.code

let run ~exempt ~initial_owners (prog : Prog.t) : Diag.t list =
  let shared = Prog.shared_bases prog in
  (* Mirrors [Pushpull.is_tracked]: pulls and pushes of exempt or
     non-shared bases are dynamically no-ops, so the static pass must
     ignore them too. *)
  let tracked b = List.mem b shared && not (List.mem b exempt) in
  List.concat
    (List.mapi
       (fun i (th : Prog.thread) ->
         let owned0 =
           List.filter_map
             (fun (b, idx) -> if idx = i then Some b else None)
             initial_owners
         in
         let leak_definite base =
           List.exists
             (fun (j, th') -> j <> i && pulls_unconditionally th' base)
             (List.mapi (fun j t -> (j, t)) prog.Prog.threads)
         in
         let per_path =
           List.map
             (fun path ->
               (* owned maps base -> structural point of the acquiring
                  pull (or [] for initial ownership). *)
               let owned0 = List.map (fun b -> (b, [])) owned0 in
               let owned, raws =
                 List.fold_left
                   (fun (owned, raws) (s : Cfg.step) ->
                     match s.Cfg.ins with
                     | Instr.Pull bs ->
                         let bs = List.filter tracked bs in
                         let dup, fresh =
                           List.partition
                             (fun b -> List.mem_assoc b owned)
                             bs
                         in
                         let raws =
                           List.fold_left
                             (fun raws b ->
                               { Cfg.r_code = Diag.W006;
                                 r_path = s.Cfg.pt;
                                 r_message =
                                   Printf.sprintf
                                     "pull of '%s' already owned by this \
                                      thread"
                                     b;
                                 r_fix =
                                   "remove the duplicate pull, or push the \
                                    base before re-acquiring it";
                                 r_definite = true }
                               :: raws)
                             raws dup
                         in
                         ( List.map (fun b -> (b, s.Cfg.pt)) fresh @ owned,
                           raws )
                     | Instr.Push bs ->
                         let bs = List.filter tracked bs in
                         let missing =
                           List.filter
                             (fun b -> not (List.mem_assoc b owned))
                             bs
                         in
                         let raws =
                           List.fold_left
                             (fun raws b ->
                               { Cfg.r_code = Diag.W006;
                                 r_path = s.Cfg.pt;
                                 r_message =
                                   Printf.sprintf
                                     "push of '%s' that this thread does \
                                      not own"
                                     b;
                                 r_fix =
                                   "pull the base before pushing it, or \
                                    drop the push";
                                 r_definite = true }
                               :: raws)
                             raws missing
                         in
                         ( List.filter
                             (fun (b, _) -> not (List.mem b bs))
                             owned,
                           raws )
                     | _ -> (owned, raws))
                   (owned0, []) path
               in
               (* leaks: pulled on this path (non-empty point) and never
                  pushed back *)
               List.fold_left
                 (fun raws (b, pt) ->
                   if pt = [] then raws
                   else
                     { Cfg.r_code = Diag.W006;
                       r_path = pt;
                       r_message =
                         Printf.sprintf
                           "ownership of '%s' pulled here is never pushed \
                            back on this path"
                           b;
                       r_fix = "push the base before the thread exits";
                       r_definite = leak_definite b }
                     :: raws)
                 raws owned)
             (Cfg.paths th.Prog.code)
         in
         Cfg.classify ~tid:th.Prog.tid ~per_path)
       prog.Prog.threads)
  |> Diag.sort

(* ------------------------------------------------------------------ *)
(* Fixpoint engine.                                                    *)
(* ------------------------------------------------------------------ *)

module SM = Map.Make (String)

module PtSet = Set.Make (struct
  type t = int list

  let compare = Stdlib.compare
end)

let msg_dup b = Printf.sprintf "pull of '%s' already owned by this thread" b

let fix_dup =
  "remove the duplicate pull, or push the base before re-acquiring it"

let msg_unowned b =
  Printf.sprintf "push of '%s' that this thread does not own" b

let fix_unowned = "pull the base before pushing it, or drop the push"

let msg_leak b =
  Printf.sprintf
    "ownership of '%s' pulled here is never pushed back on this path" b

let fix_leak = "push the base before the thread exits"

let run_fix ~exempt ~initial_owners (prog : Prog.t) :
    Diag.t list * Absint.stats list =
  let shared = Prog.shared_bases prog in
  let tracked b = List.mem b shared && not (List.mem b exempt) in
  let stats = ref [] in
  let diags =
    List.concat
      (List.mapi
         (fun i (th : Prog.thread) ->
           let owned0 =
             List.filter_map
               (fun (b, idx) -> if idx = i then Some b else None)
               initial_owners
           in
           let leak_definite base =
             List.exists
               (fun (j, th') -> j <> i && pulls_unconditionally th' base)
               (List.mapi (fun j t -> (j, t)) prog.Prog.threads)
           in
           (* owned: base -> (owned on every path, acquiring points on
              the paths that own it; [] marks initial ownership) *)
           let module D = struct
             type t = Bot | S of (bool * PtSet.t) SM.t

             let bottom = Bot

             let join a b =
               match (a, b) with
               | Bot, x | x, Bot -> x
               | S a, S b ->
                   S
                     (SM.merge
                        (fun _ va vb ->
                          match (va, vb) with
                          | Some (m1, p1), Some (m2, p2) ->
                              Some (m1 && m2, PtSet.union p1 p2)
                          | Some (_, p), None | None, Some (_, p) ->
                              Some (false, p)
                          | None, None -> None)
                        a b)

             let leq a b =
               match (a, b) with
               | Bot, _ -> true
               | S _, Bot -> false
               | S a, S b ->
                   SM.for_all
                     (fun k (m1, p1) ->
                       match SM.find_opt k b with
                       | Some (m2, p2) -> m2 <= m1 && PtSet.subset p1 p2
                       | None -> false)
                     a

             let transfer lbl t =
               match (t, lbl) with
               | Bot, _ | _, (Cfg.L_skip | Cfg.L_guard _) -> t
               | S owned, Cfg.L_ins s -> (
                   match s.Cfg.ins with
                   | Instr.Pull bs ->
                       let bs = List.filter tracked bs in
                       S
                         (List.fold_left
                            (fun owned b ->
                              match SM.find_opt b owned with
                              | Some (true, _) ->
                                  owned (* dup on every path: unchanged *)
                              | Some (false, pts) ->
                                  (* fresh on the paths that do not own *)
                                  SM.add b (true, PtSet.add s.Cfg.pt pts) owned
                              | None ->
                                  SM.add b
                                    (true, PtSet.singleton s.Cfg.pt)
                                    owned)
                            owned bs)
                   | Instr.Push bs ->
                       let bs = List.filter tracked bs in
                       S (List.fold_left (fun o b -> SM.remove b o) owned bs)
                   | _ -> t)

             let widen = join
           end in
           let g = Cfg.graph th.Prog.code in
           let fl = Absint.flow g in
           let module Sv = Absint.Solve (D) in
           let init =
             D.S
               (List.fold_left
                  (fun m b -> SM.add b (true, PtSet.empty) m)
                  SM.empty owned0)
           in
           let states, st = Sv.run ~live:fl.Absint.f_live g ~init in
           stats := Absint.add_stats fl.Absint.f_stats st :: !stats;
           let raws = ref [] in
           let emit r = raws := r :: !raws in
           Array.iteri
             (fun n succ ->
               match states.(n) with
               | D.Bot -> ()
               | D.S owned ->
                   List.iter
                     (fun (lbl, _) ->
                       match lbl with
                       | Cfg.L_ins s -> (
                           match s.Cfg.ins with
                           | Instr.Pull bs ->
                               List.iter
                                 (fun b ->
                                   if tracked b then
                                     match SM.find_opt b owned with
                                     | Some (must, _) ->
                                         emit
                                           { Cfg.r_code = Diag.W006;
                                             r_path = s.Cfg.pt;
                                             r_message = msg_dup b;
                                             r_fix = fix_dup;
                                             r_definite =
                                               must && fl.Absint.f_dr n }
                                     | None -> ())
                                 bs
                           | Instr.Push bs ->
                               List.iter
                                 (fun b ->
                                   if tracked b then
                                     match SM.find_opt b owned with
                                     | Some (true, _) -> ()
                                     | Some (false, _) ->
                                         emit
                                           { Cfg.r_code = Diag.W006;
                                             r_path = s.Cfg.pt;
                                             r_message = msg_unowned b;
                                             r_fix = fix_unowned;
                                             r_definite = false }
                                     | None ->
                                         emit
                                           { Cfg.r_code = Diag.W006;
                                             r_path = s.Cfg.pt;
                                             r_message = msg_unowned b;
                                             r_fix = fix_unowned;
                                             r_definite = fl.Absint.f_dr n })
                                 bs
                           | _ -> ())
                       | _ -> ())
                     succ)
             g.Cfg.g_succ;
           (match states.(g.Cfg.g_exit) with
           | D.Bot -> ()
           | D.S owned ->
               SM.iter
                 (fun b (must, pts) ->
                   PtSet.iter
                     (fun pt ->
                       if pt <> [] then
                         emit
                           { Cfg.r_code = Diag.W006;
                             r_path = pt;
                             r_message = msg_leak b;
                             r_fix = fix_leak;
                             r_definite =
                               leak_definite b && must
                               && PtSet.cardinal pts = 1 })
                     pts)
                 owned);
           Cfg.merge_raws ~tid:th.Prog.tid !raws)
         prog.Prog.threads)
  in
  (Diag.sort diags, !stats)
