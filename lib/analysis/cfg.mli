(** Control-flow paths over the kernel DSL, plus the shared vocabulary of
    the lint passes.

    A thread body is enumerated into control-flow paths exactly as
    {!Vrm.Check_barrier} does — each [If] contributes both branches, each
    [While] is unrolled zero and one time — but every instruction carries
    its {e structural path}: the root-to-leaf position ([2.0.1] = branch 0
    of the instruction at index 2, instruction 1 within it). Structural
    paths are stable across path enumeration order, which is what makes
    diagnostics deterministic and golden-testable.

    The certainty rule lives here too: a raw finding promoted to
    [Definite] must hold on {e every} enumerated path of its thread.
    Since the SC executor runs every thread to completion in every
    interleaving, an every-path defect is guaranteed a dynamic witness —
    the soundness direction the cross-validation harness enforces. *)

open Memmodel

type step = {
  pt : int list;  (** structural path of the instruction *)
  ins : Instr.t;
}

val paths : Instr.t list -> step list list
(** All control-flow paths (loops unrolled 0/1 times, [If]/[While]
    headers dissolved into their branches). Never empty. *)

(** {2 Base-name classification}

    The analyzer is name-driven, mirroring how the paper's side
    conditions partition state: lock-implementation internals
    (exempt from DRF), EL2 kernel mappings (Write-Once), and stage-2
    page tables (Transactional + TLBI). *)

val is_el2_base : string -> bool
(** EL2 kernel mappings (prefix [el2]): subject to Write-Once (W003). *)

val is_pt_base : string -> bool
(** Any page-table base: prefixes [el2], [pte], [pt_]. *)

val is_s2_pt_base : string -> bool
(** Stage-2/SMMU tables (PT but not EL2): subject to the Transactional
    and TLBI conditions (W004/W005). *)

val is_lock_base : string -> bool
(** Lock-implementation cells by naming convention: suffixes [.ticket],
    [.now], [.tail], [.locked], [.next]. *)

(** {2 Instruction views} *)

val access_base : Instr.t -> string option
(** The base a memory access touches; [None] for non-accesses. *)

val is_rmw : Instr.t -> bool
val writes_mem : Instr.t -> bool
(** [Store] or any RMW. *)

val const_of_vexp : Expr.vexp -> int option
(** Evaluate a register-free value expression. *)

val store_target : Instr.t -> (string * int option) option
(** For a [Store]: base and constant offset (if resolvable). *)

(** {2 Abstract memory}

    Constant propagation for the Write-Once and TLBI passes: per
    location either a known integer or unknown. Unlisted locations
    start at their program-init value (0 when uninitialized). *)

module Amem : sig
  type aval = Known of int | Unknown_val
  type t

  val of_init : pred:(string -> bool) -> Prog.t -> t
  (** Track only bases satisfying [pred]. *)

  val read : t -> string * int -> aval
  val write : t -> string * int -> aval -> t

  val smudge_base : t -> string -> t
  (** A write through a non-constant offset: every entry of the base
      becomes unknown. *)
end

(** {2 Certainty classification} *)

type raw = {
  r_code : Diag.code;
  r_path : int list;
  r_message : string;
  r_fix : string;
  r_definite : bool;
      (** eligible for [Definite] when present on every path *)
}

val classify : tid:int -> per_path:raw list list -> Diag.t list
(** Merge per-path raw findings into diagnostics: a finding is
    [Definite] iff it is definite-eligible and identical on every path;
    otherwise [Possible]. *)
