(** Control-flow paths over the kernel DSL, plus the shared vocabulary of
    the lint passes.

    A thread body is enumerated into control-flow paths exactly as
    {!Vrm.Check_barrier} does — each [If] contributes both branches, each
    [While] is unrolled zero and one time — but every instruction carries
    its {e structural path}: the root-to-leaf position ([2.0.1] = branch 0
    of the instruction at index 2, instruction 1 within it). Structural
    paths are stable across path enumeration order, which is what makes
    diagnostics deterministic and golden-testable.

    The certainty rule lives here too: a raw finding promoted to
    [Definite] must hold on {e every} enumerated path of its thread.
    Since the SC executor runs every thread to completion in every
    interleaving, an every-path defect is guaranteed a dynamic witness —
    the soundness direction the cross-validation harness enforces. *)

open Memmodel

type step = {
  pt : int list;  (** structural path of the instruction *)
  ins : Instr.t;
}

val paths : Instr.t list -> step list list
(** All control-flow paths (loops unrolled 0/1 times, [If]/[While]
    headers dissolved into their branches). Never empty. *)

(** {2 Base-name classification}

    The analyzer is name-driven, mirroring how the paper's side
    conditions partition state: lock-implementation internals
    (exempt from DRF), EL2 kernel mappings (Write-Once), and stage-2
    page tables (Transactional + TLBI). *)

val is_el2_base : string -> bool
(** EL2 kernel mappings (prefix [el2]): subject to Write-Once (W003). *)

val is_pt_base : string -> bool
(** Any page-table base: prefixes [el2], [pte], [pt_]. *)

val is_s2_pt_base : string -> bool
(** Stage-2/SMMU tables (PT but not EL2): subject to the Transactional
    and TLBI conditions (W004/W005). *)

val is_lock_base : string -> bool
(** Lock-implementation cells by naming convention: suffixes [.ticket],
    [.now], [.tail], [.locked], [.next]. *)

(** {2 Instruction views} *)

val access_base : Instr.t -> string option
(** The base a memory access touches; [None] for non-accesses. *)

val is_rmw : Instr.t -> bool
val writes_mem : Instr.t -> bool
(** [Store] or any RMW. *)

val const_of_vexp : Expr.vexp -> int option
(** Evaluate a register-free value expression. *)

val store_target : Instr.t -> (string * int option) option
(** For a [Store]: base and constant offset (if resolvable). *)

(** {2 Abstract memory}

    Constant propagation for the Write-Once and TLBI passes: per
    location either a known integer or unknown. Unlisted locations
    start at their program-init value (0 when uninitialized). *)

module Amem : sig
  type aval = Known of int | Unknown_val
  type t

  val of_init : pred:(string -> bool) -> Prog.t -> t
  (** Track only bases satisfying [pred]. *)

  val read : t -> string * int -> aval
  val write : t -> string * int -> aval -> t

  val smudge_base : t -> string -> t
  (** A write through a non-constant offset: every entry of the base
      becomes unknown. *)
end

(** {2 Graph form}

    The CFG proper, consumed by the {!Absint} fixpoint engine. [If]
    contributes two guard edges that rejoin; [While] is peeled [peel]
    times (default {!default_peel}) and kept as a residual natural loop
    whose header is a widening point. Peeled copies retain the original
    structural positions, so a defect detected on iteration 2 of a loop
    reports the same [pt] as the source instruction. *)

type guard = {
  g_cond : Expr.bexp;
  g_taken : bool;  (** which side of the condition this edge takes *)
  g_pt : int list;  (** structural position of the [If]/[While] header *)
  g_loop : bool;  (** derived from a [While] (including peeled copies) *)
  g_ins : Instr.t;  (** the original header instruction *)
}

type label =
  | L_ins of step  (** execute one straight-line instruction *)
  | L_guard of guard  (** branch decision *)
  | L_skip  (** structural join edge *)

type gate = {
  gt_node : int;  (** node where the guard is evaluated *)
  gt_cond : Expr.bexp;
  gt_taken : bool;
}

type graph = {
  g_n : int;  (** node count; ids are [0 .. g_n-1] *)
  g_entry : int;
  g_exit : int;
  g_succ : (label * int) list array;
  g_gates : gate list array;
      (** enclosing guard decisions per node: a node executes iff every
          gate's condition evaluates in the gate's direction at the
          gate's evaluation site *)
  g_loop_head : bool array;  (** residual loop headers (widening points) *)
}

val default_peel : int

val graph : ?peel:int -> Instr.t list -> graph
(** Build the control-flow graph of a thread body. *)

(** {2 Certainty classification} *)

type raw = {
  r_code : Diag.code;
  r_path : int list;
  r_message : string;
  r_fix : string;
  r_definite : bool;
      (** eligible for [Definite] when present on every path *)
}

val classify : tid:int -> per_path:raw list list -> Diag.t list
(** Merge per-path raw findings into diagnostics: a finding is
    [Definite] iff it is definite-eligible and identical on every path;
    otherwise [Possible]. *)

val merge_raws : tid:int -> raw list -> Diag.t list
(** Fixpoint-engine counterpart of {!classify}: [r_definite] is already
    the final certainty; duplicate findings merge keeping the strongest
    one. *)
