(** W004 — transactional page-table section well-formedness.

    Stage-2 page-table bases ([pte*] / [pt_*], excluding [el2*]) may only
    be written inside a transactional section — a pull/push bracket, with
    the empty-bases bracket of a lock critical section counting — and the
    page-table writes within one section must be contiguous: the MMU
    walker on another CPU reads the table with no synchronization, so a
    half-updated table interleaved with unrelated writes, or an update
    outside any section, is observable.

    Findings (all mirrored exactly by the trace-replay referee):
    - a stage-2 PT store outside any section while another thread reads
      the table;
    - a PT store following an unrelated write in the same section that
      already performed PT stores;
    - a section that performed PT stores but is never closed on the path.

    [Definite] when present on every path; degrades to [Possible]
    otherwise. *)

open Memmodel

val run : Prog.t -> Diag.t list
(** Bounded-path engine. *)

val run_fix : Prog.t -> Diag.t list * Absint.stats list
(** Fixpoint engine: the frame stack carries must/may flags per frame
    (saw-PT-write, pending-unrelated-write) and acquiring points as
    sets; joins of stacks of different heights degrade the state to a
    dirty summary that reports [Possible] only. *)
