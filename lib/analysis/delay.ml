open Memmodel

(* A memory-access event, in pre-order position [ev_idx] of its thread.
   RMWs are both reads and writes. [ev_acq]/[ev_rel] record acquire
   flavour on the read / release flavour on the write, the two access
   annotations that enforce ordering without an explicit fence. *)
type ev = {
  ev_pt : int list;
  ev_idx : int;
  ev_base : string;
  ev_off : int option;
  ev_read : bool;
  ev_write : bool;
  ev_acq : bool;
  ev_rel : bool;
}

type bar = { bar_pt : int list; bar_idx : int; bar_kind : Instr.barrier }

let acq_of = function
  | Instr.Acquire | Instr.Acq_rel -> true
  | Instr.Plain | Instr.Release -> false

let rel_of = function
  | Instr.Release | Instr.Acq_rel -> true
  | Instr.Plain | Instr.Acquire -> false

(* Events and DMBs of a thread, pre-order. The shared counter only has
   to preserve relative program order; guards and register moves do not
   consume indices. ISBs order control dependencies, not access pairs,
   so they are not collected. *)
let events_of_thread (th : Prog.thread) =
  let evs = ref [] in
  let bars = ref [] in
  let ctr = ref 0 in
  let next () =
    let i = !ctr in
    incr ctr;
    i
  in
  let add pt (a : Expr.aexp) order ~read ~write =
    evs :=
      { ev_pt = pt;
        ev_idx = next ();
        ev_base = a.Expr.abase;
        ev_off = Cfg.const_of_vexp a.Expr.offset;
        ev_read = read;
        ev_write = write;
        ev_acq = read && acq_of order;
        ev_rel = write && rel_of order }
      :: !evs
  in
  let rec go prefix code =
    List.iteri
      (fun k ins ->
        let pt = prefix @ [k] in
        match ins with
        | Instr.If (_, a, b) ->
            go (pt @ [0]) a;
            go (pt @ [1]) b
        | Instr.While (_, body) -> go (pt @ [0]) body
        | Instr.Load (_, a, o) -> add pt a o ~read:true ~write:false
        | Instr.Store (a, _, o) -> add pt a o ~read:false ~write:true
        | Instr.Faa (_, a, _, o)
        | Instr.Xchg (_, a, _, o)
        | Instr.Cas (_, a, _, _, o) ->
            add pt a o ~read:true ~write:true
        | Instr.Barrier Instr.Isb -> ()
        | Instr.Barrier b ->
            bars := { bar_pt = pt; bar_idx = next (); bar_kind = b } :: !bars
        | Instr.Move _ | Instr.Pull _ | Instr.Push _ | Instr.Tlbi _
        | Instr.Panic | Instr.Nop ->
            ())
      code
  in
  go [] th.Prog.code;
  (List.rev !evs, List.rev !bars)

(* Structural points diverging at an odd position sit in sibling [If]
   branches: mutually exclusive, never program-ordered. *)
let exclusive pa pb =
  let rec at i pa pb =
    match (pa, pb) with
    | x :: xs, y :: ys -> if x = y then at (i + 1) xs ys else i mod 2 = 1
    | _ -> false
  in
  at 0 pa pb

let po_lt a b = a.ev_idx < b.ev_idx && not (exclusive a.ev_pt b.ev_pt)

let same_location a b =
  a.ev_base = b.ev_base
  &&
  match (a.ev_off, b.ev_off) with Some x, Some y -> x = y | _ -> false

(* A program-order pair eligible for the delay set: same-location pairs
   are ordered by coherence already. *)
let segment a b = po_lt a b && not (same_location a b)

let off_compat a b =
  match (a.ev_off, b.ev_off) with Some x, Some y -> x = y | _ -> true

(* Inter-thread conflict edge. Lock-implementation bases are excluded:
   lock internals are exempt from wDRF (their cycles are the protocol)
   and are verified by refinement/exploration directly. *)
let conflict a b =
  a.ev_base = b.ev_base
  && (a.ev_write || b.ev_write)
  && off_compat a b
  && not (Cfg.is_lock_base a.ev_base)

(* Is the pair (a, b), a po-before b, already ordered? Either endpoint
   flavouring or an intervening DMB of a sufficient flavour works; the
   DMB must be program-ordered with both endpoints. *)
let enforced bars a b =
  a.ev_acq || b.ev_rel
  || List.exists
       (fun d ->
         a.ev_idx < d.bar_idx
         && d.bar_idx < b.ev_idx
         && (not (exclusive a.ev_pt d.bar_pt))
         && (not (exclusive d.bar_pt b.ev_pt))
         &&
         match d.bar_kind with
         | Instr.Dmb_full -> true
         | Instr.Dmb_ld -> a.ev_read
         | Instr.Dmb_st -> a.ev_write && b.ev_write
         | Instr.Isb -> false)
       bars

let describe e =
  let kind =
    if e.ev_read && e.ev_write then "atomic update of"
    else if e.ev_write then "store to"
    else "load of"
  in
  match e.ev_off with
  | Some o -> Printf.sprintf "%s %s[%d]" kind e.ev_base o
  | None -> Printf.sprintf "%s %s[?]" kind e.ev_base

let fix_for a b =
  if a.ev_read then
    "insert a dmb_ld (or full dmb) between the pair, or make the first \
     access acquire-flavored"
  else if a.ev_write && b.ev_write then
    "insert a dmb_st (or full dmb) between the pair, or make the second \
     store release-flavored"
  else
    "insert a full dmb between the pair; a write-to-read pair needs DMB ISH"

let run (prog : Prog.t) : Diag.t list =
  let threads =
    List.map
      (fun (th : Prog.thread) ->
        let evs, bars = events_of_thread th in
        (th.Prog.tid, evs, bars))
      prog.Prog.threads
  in
  let seen = Hashtbl.create 16 in
  let diags = ref [] in
  List.iter
    (fun (tid, evs, bars) ->
      List.iter
        (fun e1 ->
          List.iter
            (fun e2 ->
              if segment e1 e2 && not (enforced bars e1 e2) then
                let key = (tid, e1.ev_pt, e2.ev_pt) in
                if not (Hashtbl.mem seen key) then
                  (* minimal critical cycle: a remote segment whose
                     first event conflicts with [e2] and whose second
                     conflicts with [e1]. *)
                  let witness =
                    List.find_map
                      (fun (utid, uevs, _) ->
                        if utid = tid then None
                        else
                          List.find_map
                            (fun f1 ->
                              if conflict e2 f1 then
                                List.find_map
                                  (fun f2 ->
                                    if segment f1 f2 && conflict f2 e1 then
                                      Some (utid, f1, f2)
                                    else None)
                                  uevs
                              else None)
                            uevs)
                      threads
                  in
                  match witness with
                  | None -> ()
                  | Some (utid, f1, f2) ->
                      Hashtbl.add seen key ();
                      diags :=
                        { Diag.d_code = Diag.W008;
                          d_tid = tid;
                          d_path = e1.ev_pt;
                          d_certainty = Diag.Possible;
                          d_message =
                            Printf.sprintf
                              "%s and %s may be reordered on Arm: the pair \
                               lies on an unfenced critical cycle with \
                               thread %d's %s and %s"
                              (describe e1) (describe e2) utid (describe f1)
                              (describe f2);
                          d_fix = fix_for e1 e2 }
                        :: !diags)
            evs)
        evs)
    threads;
  Diag.sort !diags
