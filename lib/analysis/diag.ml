(* See the interface for the semantics of codes, certainty and verdicts. *)

type code = W001 | W002 | W003 | W004 | W005 | W006 | W007 | W008

let code_name = function
  | W001 -> "W001"
  | W002 -> "W002"
  | W003 -> "W003"
  | W004 -> "W004"
  | W005 -> "W005"
  | W006 -> "W006"
  | W007 -> "W007"
  | W008 -> "W008"

let code_title = function
  | W001 -> "shared access outside lock/ownership"
  | W002 -> "pull/push without an adequate barrier"
  | W003 -> "kernel mapping written more than once"
  | W004 -> "malformed transactional page-table section"
  | W005 -> "page-table write without covering TLBI"
  | W006 -> "push/pull ownership flow"
  | W007 -> "control-dependent PT read without ISB"
  | W008 -> "unfenced critical cycle (delay set)"

let code_of_name = function
  | "W001" -> Some W001
  | "W002" -> Some W002
  | "W003" -> Some W003
  | "W004" -> Some W004
  | "W005" -> Some W005
  | "W006" -> Some W006
  | "W007" -> Some W007
  | "W008" -> Some W008
  | _ -> None

type certainty = Definite | Possible

type t = {
  d_code : code;
  d_tid : int;
  d_path : int list;
  d_certainty : certainty;
  d_message : string;
  d_fix : string;
}

let compare (a : t) (b : t) : int =
  let c = Stdlib.compare a.d_tid b.d_tid in
  if c <> 0 then c
  else
    let c = Stdlib.compare a.d_path b.d_path in
    if c <> 0 then c
    else
      let c = Stdlib.compare a.d_code b.d_code in
      if c <> 0 then c else Stdlib.compare a.d_message b.d_message

let sort ds = List.sort_uniq (fun a b -> if a = b then 0 else compare a b) ds

type verdict = Pass | Fail | Unknown

let verdict_name = function
  | Pass -> "pass"
  | Fail -> "fail"
  | Unknown -> "unknown"

let verdict_of_diags ds =
  if List.exists (fun d -> d.d_certainty = Definite) ds then Fail
  else if ds <> [] then Unknown
  else Pass

let worst a b =
  match (a, b) with
  | Fail, _ | _, Fail -> Fail
  | Unknown, _ | _, Unknown -> Unknown
  | Pass, Pass -> Pass

let pp_path fmt = function
  | [] -> Format.pp_print_string fmt "-"
  | p ->
      Format.pp_print_string fmt
        (String.concat "." (List.map string_of_int p))

let pp fmt d =
  Format.fprintf fmt "%s [%s] tid %d @@ %a: %s@,    fix: %s"
    (code_name d.d_code)
    (match d.d_certainty with
    | Definite -> "definite"
    | Possible -> "possible")
    d.d_tid pp_path d.d_path d.d_message d.d_fix

let to_json d =
  Cache.Json.Obj
    [ ("code", Cache.Json.String (code_name d.d_code));
      ("tid", Cache.Json.Int d.d_tid);
      ("path", Cache.Json.List (List.map (fun i -> Cache.Json.Int i) d.d_path));
      ( "certainty",
        Cache.Json.String
          (match d.d_certainty with
          | Definite -> "definite"
          | Possible -> "possible") );
      ("message", Cache.Json.String d.d_message);
      ("fix", Cache.Json.String d.d_fix) ]
