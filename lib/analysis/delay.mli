(** W008 — delay-set / critical-cycle fence analysis (Shasha–Snir).

    On Arm, two program-order accesses of one thread may be observed out
    of order unless a fence or an ordered (acquire/release) access
    enforces the pair. Following Shasha and Snir, the pairs that {e
    must} be enforced are exactly those lying on a critical cycle: a
    cycle alternating program-order edges with inter-thread conflict
    edges (same base, at least one write, offsets compatible). This pass
    builds the static conflict graph over the accesses of every thread
    pair and reports each unenforced program-order pair on a minimal
    (two threads, two accesses each) critical cycle, with a
    fence-insertion fix matched to the pair's shape (R→_ : DMB(LD) or
    acquire; W→W : DMB(ST) or release; W→R : full DMB).

    Scope and deliberate approximations:
    - Accesses to lock-implementation bases ({!Cfg.is_lock_base}) take
      no part in conflict edges: lock internals are exempt from wDRF
      and verified by refinement/exploration directly, and their
      ticket/MCS protocols are cyclic by design.
    - Same-location program-order pairs are never segments
      (coherence orders them); unknown offsets conflict with
      everything.
    - Accesses in sibling [If] branches are mutually exclusive, hence
      never program-ordered; cross-iteration loop pairs are ignored
      (an under-approximation).

    Findings are always [Possible] — the analysis is control-flow
    insensitive on purpose (an event on any path can participate), so
    it never claims a guaranteed dynamic witness. The pass is
    engine-independent: both the bounded and fixpoint drivers run the
    same code. *)

open Memmodel

val run : Prog.t -> Diag.t list
