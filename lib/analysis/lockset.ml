open Memmodel

let fix_access =
  "take the protecting lock (pull the base) around this access, or exempt \
   the base as a synchronization internal"

(* Backward lock-guard scan from a pull: skip accesses to exempt
   (lock-internal) bases, succeed at an atomic RMW on an exempt base,
   fail at any other memory access. *)
let guard_of_pull (before : Cfg.step list) exempt : string option =
  let rec go = function
    | [] -> None
    | (s : Cfg.step) :: rest -> (
        match Cfg.access_base s.ins with
        | Some b when Cfg.is_rmw s.ins && List.mem b exempt -> Some b
        | Some b when List.mem b exempt -> go rest
        | Some _ -> None
        | None -> go rest)
  in
  go before

(* Forward balance scan from a pull of [base]: a matching push must occur
   on this path before any write to an exempt base (i.e. before the lock
   can be released). *)
let balanced_after_pull (after : Cfg.step list) exempt base : bool =
  let rec go = function
    | [] -> false
    | (s : Cfg.step) :: rest -> (
        match s.ins with
        | Instr.Push bs when List.mem base bs -> true
        | _ -> (
            match Cfg.access_base s.ins with
            | Some b when Cfg.writes_mem s.ins && List.mem b exempt -> false
            | _ -> go rest))
  in
  go after

(* All (guard, balanced) facts for pulls of [base] in one thread. *)
let pull_facts (th : Prog.thread) exempt base :
    (string option * bool) list =
  List.concat_map
    (fun path ->
      let rec walk before = function
        | [] -> []
        | (s : Cfg.step) :: rest -> (
            match s.Cfg.ins with
            | Instr.Pull bs when List.mem base bs ->
                (guard_of_pull before exempt, balanced_after_pull rest exempt base)
                :: walk (s :: before) rest
            | _ -> walk (s :: before) rest)
      in
      walk [] path)
    (Cfg.paths th.Prog.code)

let thread_pulls (th : Prog.thread) base =
  let rec has = function
    | [] -> false
    | Instr.Pull bs :: _ when List.mem base bs -> true
    | Instr.If (_, a, b) :: rest -> has a || has b || has rest
    | Instr.While (_, body) :: rest -> has body || has rest
    | _ :: rest -> has rest
  in
  has th.Prog.code

let msg_access b =
  Printf.sprintf
    "access to tracked base '%s' outside any pull/push ownership" b

let claim_diag base n_claimants owners0 =
  if owners0 = [] then
    { Diag.d_code = Diag.W001;
      d_tid = 0;
      d_path = [];
      d_certainty = Diag.Possible;
      d_message =
        Printf.sprintf
          "cannot statically prove that claims on '%s' are mutually \
           exclusive (%d claimants, no common lock guard)"
          base n_claimants;
      d_fix =
        "protect every pull of the base with one common lock, or rely on \
         the dynamic checker" }
  else
    { Diag.d_code = Diag.W001;
      d_tid = 0;
      d_path = [];
      d_certainty = Diag.Possible;
      d_message =
        Printf.sprintf
          "base '%s' uses a hand-off protocol (initial owner plus %d \
           claimant(s)) the lockset analysis cannot decide"
          base n_claimants;
      d_fix =
        "hand-off protocols are verified by exhaustive exploration; no \
         static fix required" }

let run ~exempt ~initial_owners (prog : Prog.t) : Diag.t list =
  let shared = Prog.shared_bases prog in
  let tracked = List.filter (fun b -> not (List.mem b exempt)) shared in
  (* per-thread: accesses outside ownership *)
  let thread_diags =
    List.concat
      (List.mapi
         (fun i (th : Prog.thread) ->
           let owned0 =
             List.filter_map
               (fun (b, idx) -> if idx = i then Some b else None)
               initial_owners
           in
           let per_path =
             List.map
               (fun path ->
                 let _, raws =
                   List.fold_left
                     (fun (owned, raws) (s : Cfg.step) ->
                       match s.Cfg.ins with
                       | Instr.Pull bs ->
                           ( List.filter (fun b -> List.mem b tracked) bs
                             @ owned,
                             raws )
                       | Instr.Push bs ->
                           (List.filter (fun b -> not (List.mem b bs)) owned, raws)
                       | ins -> (
                           match Cfg.access_base ins with
                           | Some b
                             when List.mem b tracked && not (List.mem b owned)
                             ->
                               ( owned,
                                 { Cfg.r_code = Diag.W001;
                                   r_path = s.Cfg.pt;
                                   r_message = msg_access b;
                                   r_fix = fix_access;
                                   r_definite = true }
                                 :: raws )
                           | _ -> (owned, raws)))
                     (owned0, []) path
                 in
                 raws)
               (Cfg.paths th.Prog.code)
           in
           Cfg.classify ~tid:th.Prog.tid ~per_path)
         prog.Prog.threads)
  in
  (* whole-program: mutual exclusion of claims per tracked base *)
  let claim_diags =
    List.filter_map
      (fun base ->
        let owners0 =
          List.filter_map
            (fun (b, idx) -> if b = base then Some idx else None)
            initial_owners
        in
        let puller_idxs =
          List.concat
            (List.mapi
               (fun i (th : Prog.thread) ->
                 if thread_pulls th base then [ i ] else [])
               prog.Prog.threads)
        in
        let pullers =
          List.map (fun i -> List.nth prog.Prog.threads i) puller_idxs
        in
        let n_claimants =
          List.length (List.sort_uniq compare (owners0 @ puller_idxs))
        in
        if n_claimants <= 1 then None
        else if owners0 = [] then begin
          (* every pull lock-guarded by one common base and balanced? *)
          let facts =
            List.concat_map (fun th -> pull_facts th exempt base) pullers
          in
          let guards = List.map fst facts in
          let balanced = List.for_all snd facts in
          match guards with
          | Some g :: rest
            when balanced && List.for_all (fun g' -> g' = Some g) rest ->
              None
          | _ -> Some (claim_diag base n_claimants owners0)
        end
        else Some (claim_diag base n_claimants owners0))
      tracked
  in
  Diag.sort (thread_diags @ claim_diags)

(* ------------------------------------------------------------------ *)
(* Fixpoint engine.                                                    *)
(* ------------------------------------------------------------------ *)

module SS = Set.Make (String)

(* Forward replacement for the backward [guard_of_pull] scan: the most
   recent guard-relevant access before the current point, joined over
   incoming paths. [Start]/[Plain] both denote "no lock guard" (they
   join to [Mixed], which also denotes failure, so precision is never
   lost on the claim decision). *)
type gval = Start | Rmw_guard of string | Plain_guard | Mixed

let gjoin a b = if a = b then a else Mixed

(* Per-thread fixpoint facts for the whole-program claim check on
   [base]: the join of guard values observed at reachable pull sites
   ([None] if no pull site was reachable) and whether some pull may
   stay unbalanced before the lock can be released. *)
type claim_facts = { cf_guard : gval option; cf_unbalanced : bool }

let claims_fix ~exempt ~bases (th : Prog.thread) :
    (string * claim_facts) list * Absint.stats =
  let module D = struct
    type t = Bot | S of gval * SS.t * SS.t
    (* guard value, may-pending pulls, may-unbalanced (sticky) *)

    let bottom = Bot

    let join a b =
      match (a, b) with
      | Bot, x | x, Bot -> x
      | S (g1, p1, f1), S (g2, p2, f2) ->
          S (gjoin g1 g2, SS.union p1 p2, SS.union f1 f2)

    let leq a b =
      match (a, b) with
      | Bot, _ -> true
      | S _, Bot -> false
      | S (g1, p1, f1), S (g2, p2, f2) ->
          (g1 = g2 || g2 = Mixed) && SS.subset p1 p2 && SS.subset f1 f2

    let transfer lbl t =
      match (t, lbl) with
      | Bot, _ -> Bot
      | S (g, pend, fail), Cfg.L_ins s -> (
          match s.Cfg.ins with
          | Instr.Pull bs ->
              let bs = List.filter (fun b -> List.mem b bases) bs in
              S (g, SS.union pend (SS.of_list bs), fail)
          | Instr.Push bs ->
              S (g, List.fold_left (fun p b -> SS.remove b p) pend bs, fail)
          | ins -> (
              match Cfg.access_base ins with
              | Some b ->
                  let fail =
                    if Cfg.writes_mem ins && List.mem b exempt then
                      SS.union fail pend
                    else fail
                  in
                  let g =
                    if Cfg.is_rmw ins && List.mem b exempt then Rmw_guard b
                    else if List.mem b exempt then g
                    else Plain_guard
                  in
                  S (g, pend, fail)
              | None -> t))
      | _, _ -> t

    let widen = join
  end in
  let g = Cfg.graph th.Prog.code in
  let fl = Absint.flow g in
  let module S = Absint.Solve (D) in
  let states, st =
    S.run ~live:fl.Absint.f_live g ~init:(D.S (Start, SS.empty, SS.empty))
  in
  let guards = Hashtbl.create 4 in
  Array.iteri
    (fun n succ ->
      match states.(n) with
      | D.Bot -> ()
      | D.S (gv, _, _) ->
          List.iter
            (fun (lbl, _) ->
              match lbl with
              | Cfg.L_ins { Cfg.ins = Instr.Pull bs; _ } ->
                  List.iter
                    (fun b ->
                      if List.mem b bases then
                        let cur =
                          try Hashtbl.find guards b with Not_found -> gv
                        in
                        Hashtbl.replace guards b (gjoin cur gv))
                    bs
              | _ -> ())
            succ)
    g.Cfg.g_succ;
  let unbal =
    match states.(g.Cfg.g_exit) with
    | D.Bot -> SS.empty
    | D.S (_, pend, fail) -> SS.union pend fail
  in
  let facts =
    List.map
      (fun b ->
        ( b,
          { cf_guard = Hashtbl.find_opt guards b;
            cf_unbalanced = SS.mem b unbal } ))
      bases
  in
  (facts, Absint.add_stats fl.Absint.f_stats st)

let run_fix ~exempt ~initial_owners (prog : Prog.t) :
    Diag.t list * Absint.stats list =
  let shared = Prog.shared_bases prog in
  let tracked = List.filter (fun b -> not (List.mem b exempt)) shared in
  let stats = ref [] in
  (* per-thread: accesses outside ownership, via a must/may owned-set
     lattice *)
  let thread_diags =
    List.concat
      (List.mapi
         (fun i (th : Prog.thread) ->
           let owned0 =
             SS.of_list
               (List.filter_map
                  (fun (b, idx) -> if idx = i then Some b else None)
                  initial_owners)
           in
           let module D = struct
             type t = Bot | S of SS.t * SS.t (* must-owned, may-owned *)

             let bottom = Bot

             let join a b =
               match (a, b) with
               | Bot, x | x, Bot -> x
               | S (m1, y1), S (m2, y2) ->
                   S (SS.inter m1 m2, SS.union y1 y2)

             let leq a b =
               match (a, b) with
               | Bot, _ -> true
               | S _, Bot -> false
               | S (m1, y1), S (m2, y2) -> SS.subset m2 m1 && SS.subset y1 y2

             let transfer lbl t =
               match (t, lbl) with
               | Bot, _ -> Bot
               | S (must, may), Cfg.L_ins { Cfg.ins = Instr.Pull bs; _ } ->
                   let bs =
                     SS.of_list (List.filter (fun b -> List.mem b tracked) bs)
                   in
                   S (SS.union must bs, SS.union may bs)
               | S (must, may), Cfg.L_ins { Cfg.ins = Instr.Push bs; _ } ->
                   let rm s = List.fold_left (fun s b -> SS.remove b s) s bs in
                   S (rm must, rm may)
               | _ -> t

             let widen = join
           end in
           let g = Cfg.graph th.Prog.code in
           let fl = Absint.flow g in
           let module S = Absint.Solve (D) in
           let states, st =
             S.run ~live:fl.Absint.f_live g ~init:(D.S (owned0, owned0))
           in
           stats := Absint.add_stats fl.Absint.f_stats st :: !stats;
           let raws = ref [] in
           Array.iteri
             (fun n succ ->
               match states.(n) with
               | D.Bot -> ()
               | D.S (must, may) ->
                   List.iter
                     (fun (lbl, _) ->
                       match lbl with
                       | Cfg.L_ins s -> (
                           match Cfg.access_base s.Cfg.ins with
                           | Some b
                             when List.mem b tracked && not (SS.mem b must) ->
                               raws :=
                                 { Cfg.r_code = Diag.W001;
                                   r_path = s.Cfg.pt;
                                   r_message = msg_access b;
                                   r_fix = fix_access;
                                   r_definite =
                                     (not (SS.mem b may)) && fl.Absint.f_dr n }
                                 :: !raws
                           | _ -> ())
                       | _ -> ())
                     succ)
             g.Cfg.g_succ;
           Cfg.merge_raws ~tid:th.Prog.tid !raws)
         prog.Prog.threads)
  in
  (* whole-program claims: one claims fixpoint per thread covers every
     tracked base *)
  let claim_cache = Hashtbl.create 4 in
  let facts_of i th =
    match Hashtbl.find_opt claim_cache i with
    | Some f -> f
    | None ->
        let f, st = claims_fix ~exempt ~bases:tracked th in
        stats := st :: !stats;
        Hashtbl.add claim_cache i f;
        f
  in
  let claim_diags =
    List.filter_map
      (fun base ->
        let owners0 =
          List.filter_map
            (fun (b, idx) -> if b = base then Some idx else None)
            initial_owners
        in
        let puller_idxs =
          List.concat
            (List.mapi
               (fun i (th : Prog.thread) ->
                 if thread_pulls th base then [ i ] else [])
               prog.Prog.threads)
        in
        let n_claimants =
          List.length (List.sort_uniq compare (owners0 @ puller_idxs))
        in
        if n_claimants <= 1 then None
        else if owners0 = [] then begin
          let facts =
            List.map
              (fun i ->
                List.assoc base (facts_of i (List.nth prog.Prog.threads i)))
              puller_idxs
          in
          let guards = List.map (fun f -> f.cf_guard) facts in
          let balanced = List.for_all (fun f -> not f.cf_unbalanced) facts in
          match guards with
          | Some (Rmw_guard _ as g) :: rest
            when balanced && List.for_all (fun g' -> g' = Some g) rest ->
              None
          | _ -> Some (claim_diag base n_claimants owners0)
        end
        else Some (claim_diag base n_claimants owners0))
      tracked
  in
  (Diag.sort (thread_diags @ claim_diags), !stats)
