open Memmodel

let fix_access =
  "take the protecting lock (pull the base) around this access, or exempt \
   the base as a synchronization internal"

(* Backward lock-guard scan from a pull: skip accesses to exempt
   (lock-internal) bases, succeed at an atomic RMW on an exempt base,
   fail at any other memory access. *)
let guard_of_pull (before : Cfg.step list) exempt : string option =
  let rec go = function
    | [] -> None
    | (s : Cfg.step) :: rest -> (
        match Cfg.access_base s.ins with
        | Some b when Cfg.is_rmw s.ins && List.mem b exempt -> Some b
        | Some b when List.mem b exempt -> go rest
        | Some _ -> None
        | None -> go rest)
  in
  go before

(* Forward balance scan from a pull of [base]: a matching push must occur
   on this path before any write to an exempt base (i.e. before the lock
   can be released). *)
let balanced_after_pull (after : Cfg.step list) exempt base : bool =
  let rec go = function
    | [] -> false
    | (s : Cfg.step) :: rest -> (
        match s.ins with
        | Instr.Push bs when List.mem base bs -> true
        | _ -> (
            match Cfg.access_base s.ins with
            | Some b when Cfg.writes_mem s.ins && List.mem b exempt -> false
            | _ -> go rest))
  in
  go after

(* All (guard, balanced) facts for pulls of [base] in one thread. *)
let pull_facts (th : Prog.thread) exempt base :
    (string option * bool) list =
  List.concat_map
    (fun path ->
      let rec walk before = function
        | [] -> []
        | (s : Cfg.step) :: rest -> (
            match s.Cfg.ins with
            | Instr.Pull bs when List.mem base bs ->
                (guard_of_pull before exempt, balanced_after_pull rest exempt base)
                :: walk (s :: before) rest
            | _ -> walk (s :: before) rest)
      in
      walk [] path)
    (Cfg.paths th.Prog.code)

let thread_pulls (th : Prog.thread) base =
  let rec has = function
    | [] -> false
    | Instr.Pull bs :: _ when List.mem base bs -> true
    | Instr.If (_, a, b) :: rest -> has a || has b || has rest
    | Instr.While (_, body) :: rest -> has body || has rest
    | _ :: rest -> has rest
  in
  has th.Prog.code

let run ~exempt ~initial_owners (prog : Prog.t) : Diag.t list =
  let shared = Prog.shared_bases prog in
  let tracked = List.filter (fun b -> not (List.mem b exempt)) shared in
  (* per-thread: accesses outside ownership *)
  let thread_diags =
    List.concat
      (List.mapi
         (fun i (th : Prog.thread) ->
           let owned0 =
             List.filter_map
               (fun (b, idx) -> if idx = i then Some b else None)
               initial_owners
           in
           let per_path =
             List.map
               (fun path ->
                 let _, raws =
                   List.fold_left
                     (fun (owned, raws) (s : Cfg.step) ->
                       match s.Cfg.ins with
                       | Instr.Pull bs ->
                           ( List.filter (fun b -> List.mem b tracked) bs
                             @ owned,
                             raws )
                       | Instr.Push bs ->
                           (List.filter (fun b -> not (List.mem b bs)) owned, raws)
                       | ins -> (
                           match Cfg.access_base ins with
                           | Some b
                             when List.mem b tracked && not (List.mem b owned)
                             ->
                               ( owned,
                                 { Cfg.r_code = Diag.W001;
                                   r_path = s.Cfg.pt;
                                   r_message =
                                     Printf.sprintf
                                       "access to tracked base '%s' outside \
                                        any pull/push ownership"
                                       b;
                                   r_fix = fix_access;
                                   r_definite = true }
                                 :: raws )
                           | _ -> (owned, raws)))
                     (owned0, []) path
                 in
                 raws)
               (Cfg.paths th.Prog.code)
           in
           Cfg.classify ~tid:th.Prog.tid ~per_path)
         prog.Prog.threads)
  in
  (* whole-program: mutual exclusion of claims per tracked base *)
  let claim_diags =
    List.filter_map
      (fun base ->
        let owners0 =
          List.filter_map
            (fun (b, idx) -> if b = base then Some idx else None)
            initial_owners
        in
        let puller_idxs =
          List.concat
            (List.mapi
               (fun i (th : Prog.thread) ->
                 if thread_pulls th base then [ i ] else [])
               prog.Prog.threads)
        in
        let pullers =
          List.map (fun i -> List.nth prog.Prog.threads i) puller_idxs
        in
        let n_claimants =
          List.length (List.sort_uniq compare (owners0 @ puller_idxs))
        in
        if n_claimants <= 1 then None
        else if owners0 = [] then begin
          (* every pull lock-guarded by one common base and balanced? *)
          let facts =
            List.concat_map (fun th -> pull_facts th exempt base) pullers
          in
          let guards = List.map fst facts in
          let balanced = List.for_all snd facts in
          match guards with
          | Some g :: rest
            when balanced && List.for_all (fun g' -> g' = Some g) rest ->
              None
          | _ ->
              Some
                { Diag.d_code = Diag.W001;
                  d_tid = 0;
                  d_path = [];
                  d_certainty = Diag.Possible;
                  d_message =
                    Printf.sprintf
                      "cannot statically prove that claims on '%s' are \
                       mutually exclusive (%d claimants, no common lock \
                       guard)"
                      base n_claimants;
                  d_fix =
                    "protect every pull of the base with one common lock, \
                     or rely on the dynamic checker" }
        end
        else
          Some
            { Diag.d_code = Diag.W001;
              d_tid = 0;
              d_path = [];
              d_certainty = Diag.Possible;
              d_message =
                Printf.sprintf
                  "base '%s' uses a hand-off protocol (initial owner plus \
                   %d claimant(s)) the lockset analysis cannot decide"
                  base n_claimants;
              d_fix =
                "hand-off protocols are verified by exhaustive \
                 exploration; no static fix required" })
      tracked
  in
  Diag.sort (thread_diags @ claim_diags)
