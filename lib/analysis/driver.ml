open Memmodel

let version = "lint-2"

type engine = Bounded | Fixpoint

let engine_name = function Bounded -> "bounded" | Fixpoint -> "fixpoint"

type pass = {
  p_name : string;
  p_verdict : Diag.verdict;
  p_diags : Diag.t list;
  p_ms : float;  (** wall time of the pass, milliseconds *)
  p_stats : Absint.stats;
      (** summed over the thread CFGs; zero for structural passes and
          for the bounded engine *)
}

type t = {
  a_name : string;
  a_prog_digest : string;
  a_engine : engine;
  a_passes : pass list;
  a_overall : Diag.verdict;
  a_refinement : Diag.verdict;
}

let sum_stats = List.fold_left Absint.add_stats Absint.zero_stats

let mk_pass name (f : unit -> Diag.t list * Absint.stats) =
  let t0 = Sys.time () in
  let diags, st = f () in
  let ms = (Sys.time () -. t0) *. 1000. in
  { p_name = name;
    p_verdict = Diag.verdict_of_diags diags;
    p_diags = diags;
    p_ms = ms;
    p_stats = st }

let structural f () = (f (), Absint.zero_stats)

let fixpoint f () =
  let diags, stats = f () in
  (diags, sum_stats stats)

(* Threads (structurally) touching [base] anywhere. *)
let touching_threads (prog : Prog.t) base =
  List.filter
    (fun (th : Prog.thread) ->
      let rec go = function
        | [] -> false
        | ins :: rest ->
            (match ins with
            | Instr.If (_, a, b) -> go a || go b
            | Instr.While (_, body) -> go body
            | _ -> Cfg.access_base ins = Some base)
            || go rest
      in
      go th.Prog.code)
    prog.Prog.threads

let analyze_prog ?(engine = Fixpoint) ?(exempt = []) ?(initial_owners = [])
    ~name (prog : Prog.t) : t =
  let passes =
    match engine with
    | Bounded ->
        [ mk_pass "drf-lockset"
            (structural (fun () -> Lockset.run ~exempt ~initial_owners prog));
          mk_pass "barriers" (structural (fun () -> Barriers.run prog));
          mk_pass "write-once" (structural (fun () -> Write_once.run prog));
          mk_pass "transactional"
            (structural (fun () -> Transactional.run prog));
          mk_pass "tlbi" (structural (fun () -> Tlbi.run prog));
          mk_pass "ownership"
            (structural (fun () -> Ownership.run ~exempt ~initial_owners prog));
          mk_pass "delay" (structural (fun () -> Delay.run prog)) ]
    | Fixpoint ->
        [ mk_pass "drf-lockset"
            (fixpoint (fun () ->
                 Lockset.run_fix ~exempt ~initial_owners prog));
          mk_pass "barriers" (fixpoint (fun () -> Barriers.run_fix prog));
          mk_pass "write-once" (fixpoint (fun () -> Write_once.run_fix prog));
          mk_pass "transactional"
            (fixpoint (fun () -> Transactional.run_fix prog));
          mk_pass "tlbi" (fixpoint (fun () -> Tlbi.run_fix prog));
          mk_pass "ownership"
            (fixpoint (fun () ->
                 Ownership.run_fix ~exempt ~initial_owners prog));
          mk_pass "delay" (structural (fun () -> Delay.run prog)) ]
  in
  let overall =
    List.fold_left
      (fun acc p -> Diag.worst acc p.p_verdict)
      Diag.Pass passes
  in
  let verdict_of n =
    match List.find_opt (fun p -> p.p_name = n) passes with
    | Some p -> p.p_verdict
    | None -> Diag.Pass
  in
  (* Static Theorem 2: the push/pull discipline holds with adequate
     barriers, and every multi-thread exempt base is a recognizable lock
     internal (so its races are the well-synchronized ones the theorem
     permits). Anything weaker stays Unknown — never Fail, since the
     analyzer cannot exhibit a non-SC behavior. *)
  let refinement =
    let contended_exempt_ok =
      List.for_all
        (fun b ->
          List.length (touching_threads prog b) < 2 || Cfg.is_lock_base b)
        exempt
    in
    match
      ( verdict_of "drf-lockset",
        verdict_of "ownership",
        verdict_of "barriers" )
    with
    | Diag.Pass, Diag.Pass, Diag.Pass when contended_exempt_ok -> Diag.Pass
    | _ -> Diag.Unknown
  in
  { a_name = name;
    a_prog_digest = Fingerprint.prog prog;
    a_engine = engine;
    a_passes = passes;
    a_overall = overall;
    a_refinement = refinement }

let analyze ?engine (e : Sekvm.Kernel_progs.entry) : t =
  analyze_prog ?engine ~exempt:e.Sekvm.Kernel_progs.exempt
    ~initial_owners:e.Sekvm.Kernel_progs.initial_owners
    ~name:e.Sekvm.Kernel_progs.name e.Sekvm.Kernel_progs.prog

let diags t = Diag.sort (List.concat_map (fun p -> p.p_diags) t.a_passes)

let definite_codes t =
  diags t
  |> List.filter_map (fun (d : Diag.t) ->
         if d.Diag.d_certainty = Diag.Definite then
           Some (Diag.code_name d.Diag.d_code)
         else None)
  |> List.sort_uniq compare

let pass_verdict t name =
  match List.find_opt (fun p -> p.p_name = name) t.a_passes with
  | Some p -> p.p_verdict
  | None -> Diag.Pass

let code_verdict t code =
  Diag.verdict_of_diags
    (List.filter (fun (d : Diag.t) -> d.Diag.d_code = code) (diags t))

let to_json t =
  let open Cache.Json in
  Obj
    [ ("kind", String "lint");
      ("name", String t.a_name);
      ("prog_digest", String t.a_prog_digest);
      ("analyzer", String version);
      ("engine", String (engine_name t.a_engine));
      ("overall", String (Diag.verdict_name t.a_overall));
      ("refinement", String (Diag.verdict_name t.a_refinement));
      ( "passes",
        List
          (List.map
             (fun p ->
               Obj
                 [ ("name", String p.p_name);
                   ("verdict", String (Diag.verdict_name p.p_verdict));
                   ("diags", List (List.map Diag.to_json p.p_diags)) ])
             t.a_passes) ) ]

let pp fmt t =
  Format.fprintf fmt "@[<v>lint %s: %s (refinement %s)" t.a_name
    (Diag.verdict_name t.a_overall)
    (Diag.verdict_name t.a_refinement);
  List.iter
    (fun p ->
      Format.fprintf fmt "@,  %-13s %s" p.p_name
        (Diag.verdict_name p.p_verdict);
      List.iter (fun d -> Format.fprintf fmt "@,    @[<v>%a@]" Diag.pp d)
        p.p_diags)
    t.a_passes;
  Format.fprintf fmt "@]"

let pp_stats fmt t =
  Format.fprintf fmt "@[<v>lint %s [%s engine]" t.a_name
    (engine_name t.a_engine);
  List.iter
    (fun p ->
      Format.fprintf fmt
        "@,  %-13s %7.3f ms  nodes %-5d edges %-5d iters %-6d widens %d"
        p.p_name p.p_ms p.p_stats.Absint.st_nodes p.p_stats.Absint.st_edges
        p.p_stats.Absint.st_iters p.p_stats.Absint.st_widens)
    t.a_passes;
  Format.fprintf fmt "@]"

let to_program_summary ~expect t :
    Vrm.Certificate.program_summary option =
  let drf =
    Diag.worst (pass_verdict t "drf-lockset") (pass_verdict t "ownership")
  in
  let barrier = pass_verdict t "barriers" in
  match (drf, barrier, t.a_refinement) with
  | Diag.Unknown, _, _ | _, Diag.Unknown, _ | _, _, Diag.Unknown -> None
  | _ ->
      let ps_drf = drf = Diag.Pass in
      let ps_barrier = barrier = Diag.Pass in
      let ps_refine = t.a_refinement = Diag.Pass in
      Some
        { Vrm.Certificate.ps_name = t.a_name;
          ps_prog_digest = t.a_prog_digest;
          ps_drf;
          ps_barrier;
          ps_refine;
          ps_as_expected =
            ps_drf = expect.Sekvm.Kernel_progs.e_drf
            && ps_barrier = expect.Sekvm.Kernel_progs.e_barrier
            && ps_refine = expect.Sekvm.Kernel_progs.e_refine }
