(** W005 — TLBI-follows-PT-write path checking
    (Sequential-TLB-Invalidation).

    A store that changes a live stage-2 page-table entry (abstract prior
    value known non-zero, or unknown) must be followed, on the same path,
    by a DMB(ST)/DMB(full) and then a TLBI covering the entry (a TLBI
    with no operand covers everything; one with an operand covers its
    base). Diagnostics distinguish the three failure shapes: no TLBI at
    all, a TLBI not ordered by a DMB, and a TLBI sequenced before the
    write it should invalidate.

    [Definite] requires the prior value to be known non-zero and the
    defect to occur on every path; unknown priors, non-constant offsets,
    atomic RMWs on PT bases and multi-writer PT bases degrade to
    [Possible] (dynamic fallback). *)

open Memmodel

val run : Prog.t -> Diag.t list
(** Bounded-path engine. *)

val run_fix : Prog.t -> Diag.t list * Absint.stats list
(** Fixpoint engine: each live-entry store opens a pending obligation
    (carrying must-flags for certainty) resolved by the first covering
    TLBI — reporting the no-DMB shape if no barrier must-intervened —
    or reported at thread exit as TLBI-before or no-TLBI. *)
