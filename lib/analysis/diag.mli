(** Structured diagnostics of the static wDRF analyzer.

    Every lint pass reports findings through this one type so the driver,
    the CLI and the golden-file tests share a single renderer. Warning
    codes are {e stable}: they are part of the tool's interface (the
    cross-validation harness keys its expectations on them), so codes are
    never renumbered — retired codes are left unused.

    A diagnostic carries a {!certainty}:

    - [Definite] — the defect occurs on {e every} enumerated control-flow
      path of its thread (or is path-insensitive), so some dynamic
      execution is guaranteed to exhibit it. [Definite] findings drive a
      [Fail] verdict and the soundness harness demands a dynamic witness
      for each.
    - [Possible] — the pass saw something it cannot prove either way
      (a finding confined to one branch, a protocol it cannot decode, a
      non-constant address). [Possible] findings drive an [Unknown]
      verdict, which the service answers by falling back to exhaustive
      exploration. *)

type code =
  | W001  (** access to a tracked shared base outside any ownership *)
  | W002  (** pull/push not fulfilled by an adequate barrier *)
  | W003  (** kernel (EL2) mapping written more than once *)
  | W004  (** malformed transactional page-table section *)
  | W005  (** page-table write without a covering DMB+TLBI *)
  | W006  (** push/pull ownership flow (double pull, push of free, leak) *)
  | W007  (** advisory: control-dependent PT read without an ISB *)
  | W008  (** advisory: program-order pair on an unfenced critical cycle *)

val code_name : code -> string
(** ["W001"] .. ["W008"]. *)

val code_title : code -> string
(** One-line description of the warning family. *)

val code_of_name : string -> code option

type certainty = Definite | Possible

type t = {
  d_code : code;
  d_tid : int;  (** reporting thread; 0 for whole-program findings *)
  d_path : int list;
      (** structural instruction path within the thread (root to leaf);
          [[]] for whole-program findings *)
  d_certainty : certainty;
  d_message : string;
  d_fix : string;  (** suggested fix, always present *)
}

val compare : t -> t -> int
(** Orders by thread id, then instruction path, then code, then message —
    the deterministic order every renderer uses. *)

val sort : t list -> t list
(** Sort by {!compare} and drop exact duplicates. *)

type verdict = Pass | Fail | Unknown

val verdict_name : verdict -> string
val verdict_of_diags : t list -> verdict
(** [Fail] if any finding is [Definite], else [Unknown] if any is
    [Possible], else [Pass]. *)

val worst : verdict -> verdict -> verdict
(** [Fail] dominates [Unknown] dominates [Pass]. *)

val pp_path : Format.formatter -> int list -> unit
val pp : Format.formatter -> t -> unit
val to_json : t -> Cache.Json.t
