open Sekvm

type check = { c_name : string; c_ok : bool; c_detail : string }

type report = { r_entry : string; r_checks : check list }

let ok r = List.for_all (fun c -> c.c_ok) r.r_checks

let vs v = Diag.verdict_name v

(* static Pass ⇒ dynamic holds; static Fail ⇒ dynamic fails; Unknown ⇒
   the dynamic outcome matches the entry's pinned expectation. *)
let agree name verdict ~dynamic ~expected =
  match verdict with
  | Diag.Pass ->
      { c_name = name;
        c_ok = dynamic;
        c_detail =
          Printf.sprintf "static pass, dynamic %s"
            (if dynamic then "holds" else "FAILS (unsound!)") }
  | Diag.Fail ->
      { c_name = name;
        c_ok = not dynamic;
        c_detail =
          Printf.sprintf "static fail, dynamic %s"
            (if dynamic then "HOLDS (no witness!)" else "fails") }
  | Diag.Unknown ->
      { c_name = name;
        c_ok = dynamic = expected;
        c_detail =
          Printf.sprintf "static unknown, dynamic %s expectation"
            (if dynamic = expected then "matches" else "CONTRADICTS") }

(* Pass/Unknown/Fail as a severity scale, for the engine-soundness
   direction of the comparison. *)
let rank = function Diag.Pass -> 0 | Diag.Unknown -> 1 | Diag.Fail -> 2

let entry (e : Kernel_progs.entry) : report =
  let a = Driver.analyze ~engine:Driver.Fixpoint e in
  let b = Driver.analyze ~engine:Driver.Bounded e in
  let checks = ref [] in
  let add c = checks := c :: !checks in
  (* 1. DRF: lockset + ownership vs the ownership-instrumented SC run *)
  let drf_static =
    Diag.worst (Driver.pass_verdict a "drf-lockset")
      (Driver.pass_verdict a "ownership")
  in
  let drf_dyn =
    (Vrm.Check_drf.check ~exempt:e.Kernel_progs.exempt
       ~initial_owners:e.Kernel_progs.initial_owners e.Kernel_progs.prog)
      .Vrm.Check_drf.holds
  in
  add
    (agree "drf" drf_static ~dynamic:drf_dyn
       ~expected:e.Kernel_progs.expect.Kernel_progs.e_drf);
  (* 2. barriers vs Check_barrier *)
  let bar_dyn =
    (Vrm.Check_barrier.check e.Kernel_progs.prog).Vrm.Check_barrier.holds
  in
  add
    (agree "barriers"
       (Driver.pass_verdict a "barriers")
       ~dynamic:bar_dyn
       ~expected:e.Kernel_progs.expect.Kernel_progs.e_barrier);
  (* 3. refinement (never statically Fail) *)
  let ref_dyn =
    (Vrm.Refinement.check ~config:e.Kernel_progs.rm_config
       e.Kernel_progs.prog)
      .Vrm.Refinement.holds
  in
  add
    (agree "refinement" a.Driver.a_refinement ~dynamic:ref_dyn
       ~expected:e.Kernel_progs.expect.Kernel_progs.e_refine);
  (* 4. page-table codes vs the trace-replay referee *)
  if Replay.relevant e.Kernel_progs.prog then begin
    let findings =
      Replay.check ~exempt:e.Kernel_progs.exempt
        ~initial_owners:e.Kernel_progs.initial_owners e.Kernel_progs.prog
    in
    List.iter
      (fun code ->
        let witnessed =
          List.exists (fun f -> f.Replay.f_code = code) findings
        in
        let v = Driver.code_verdict a code in
        let name = "replay-" ^ Diag.code_name code in
        match v with
        | Diag.Pass ->
            add
              { c_name = name;
                c_ok = not witnessed;
                c_detail =
                  (if witnessed then "static pass but replay WITNESSED"
                   else "clean on both sides") }
        | Diag.Fail ->
            add
              { c_name = name;
                c_ok = witnessed;
                c_detail =
                  (if witnessed then "replay witnesses the static fail"
                   else "static fail with NO replay witness") }
        | Diag.Unknown ->
            add
              { c_name = name;
                c_ok = true;
                c_detail = "static unknown, replay not binding" })
      [ Diag.W003; Diag.W004; Diag.W005 ]
  end;
  (* 5. the definite code set is exactly the pinned expectation *)
  (match List.assoc_opt e.Kernel_progs.name Kernel_progs.lint_expectations with
  | None ->
      add
        { c_name = "expected-codes";
          c_ok = false;
          c_detail = "entry missing from Kernel_progs.lint_expectations" }
  | Some expected ->
      let got = Driver.definite_codes a in
      let expected = List.sort_uniq compare expected in
      add
        { c_name = "expected-codes";
          c_ok = got = expected;
          c_detail =
            Printf.sprintf "expected [%s], got [%s] (overall %s)"
              (String.concat ";" expected)
              (String.concat ";" got)
              (vs a.Driver.a_overall) });
  (* 6. engine parity: per-pass verdicts agree between the bounded and
     fixpoint engines, except where a bounded blind spot is pinned in
     Kernel_progs.lint_divergences *)
  let pinned =
    Option.value ~default:[]
      (List.assoc_opt e.Kernel_progs.name Kernel_progs.lint_divergences)
  in
  let mismatches =
    List.filter_map
      (fun (p : Driver.pass) ->
        let vb = Driver.pass_verdict b p.Driver.p_name in
        if List.mem p.Driver.p_name pinned || vb = p.Driver.p_verdict then
          None
        else
          Some
            (Printf.sprintf "%s bounded=%s fixpoint=%s" p.Driver.p_name
               (vs vb) (vs p.Driver.p_verdict)))
      a.Driver.a_passes
  in
  add
    { c_name = "engine-parity";
      c_ok = mismatches = [];
      c_detail =
        (if mismatches = [] then
           if pinned = [] then "verdicts agree on every pass"
           else
             Printf.sprintf "verdicts agree outside pinned [%s]"
               (String.concat ";" pinned)
         else "UNPINNED divergence: " ^ String.concat ", " mismatches) };
  (* 7. engine soundness: the fixpoint verdict is never weaker than the
     bounded one — on a pinned pass it may only be more severe *)
  let unsound =
    List.filter_map
      (fun (p : Driver.pass) ->
        let vb = Driver.pass_verdict b p.Driver.p_name in
        if rank p.Driver.p_verdict >= rank vb then None
        else
          Some
            (Printf.sprintf "%s bounded=%s fixpoint=%s" p.Driver.p_name
               (vs vb) (vs p.Driver.p_verdict)))
      a.Driver.a_passes
  in
  add
    { c_name = "engine-sound";
      c_ok = unsound = [];
      c_detail =
        (if unsound = [] then "fixpoint never below bounded"
         else "fixpoint WEAKER than bounded: " ^ String.concat ", " unsound) };
  (* 8. the bounded engine's definite code set matches its own pinned
     expectation (defaulting to the shared table) *)
  let expected_b =
    match
      List.assoc_opt e.Kernel_progs.name Kernel_progs.lint_expectations_bounded
    with
    | Some codes -> Some codes
    | None ->
        List.assoc_opt e.Kernel_progs.name Kernel_progs.lint_expectations
  in
  (match expected_b with
  | None ->
      add
        { c_name = "expected-bnd";
          c_ok = false;
          c_detail = "entry missing from Kernel_progs.lint_expectations" }
  | Some expected ->
      let got = Driver.definite_codes b in
      let expected = List.sort_uniq compare expected in
      add
        { c_name = "expected-bnd";
          c_ok = got = expected;
          c_detail =
            Printf.sprintf "bounded expected [%s], got [%s]"
              (String.concat ";" expected)
              (String.concat ";" got) });
  { r_entry = e.Kernel_progs.name; r_checks = List.rev !checks }

let corpus () =
  List.map entry
    (Kernel_progs.corpus @ Kernel_progs.buggy_corpus
   @ Kernel_progs.boundary_corpus @ Kernel_progs.lint_corpus)

let all_ok rs = List.for_all ok rs

let pp_report fmt r =
  Format.fprintf fmt "@[<v>%s: %s" r.r_entry
    (if ok r then "agree" else "DISAGREE");
  List.iter
    (fun c ->
      Format.fprintf fmt "@,  %-14s %s %s" c.c_name
        (if c.c_ok then "ok  " else "FAIL")
        c.c_detail)
    r.r_checks;
  Format.fprintf fmt "@]"
