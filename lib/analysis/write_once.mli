(** W003 — write-once kernel-mapping analysis.

    EL2 page-table cells ([el2*] bases) must be mapped at most once
    outside a transactional (pull/push) section: an abstract memory is
    folded along every path, and a store to a cell whose abstract value is
    already known non-zero, at transactional depth 0, is a finding —
    [Definite] when it occurs on every path, since every SC interleaving
    then performs the double mapping and the replay referee reports it.

    Stores whose target offset is not statically constant, and atomic RMWs
    on EL2 bases, smudge the base and degrade to [Possible]. When two or
    more threads write the same EL2 base, per-thread constant tracking is
    unsound (another thread may install the first mapping), so the pass
    emits a program-level [Possible] finding and leaves the verdict to the
    dynamic referee. *)

open Memmodel

(** [multi_writer_bases pred prog] — bases satisfying [pred] that two or
    more threads write (structurally). Shared with the W005 pass. *)
val multi_writer_bases : (string -> bool) -> Prog.t -> string list

val run : Prog.t -> Diag.t list
(** Bounded-path engine. *)

val run_fix : Prog.t -> Diag.t list * Absint.stats list
(** Fixpoint engine: the shared must-memory lattice {!Absint.Mem}
    replaces per-path constant folding and the transactional depth
    becomes an interval (widened to unbounded by pull-heavy loops).
    [Definite] = must-prior known non-zero, depth interval exactly
    [0,0], at a definitely-reached store. Loop peeling makes this pass
    catch loop-carried double installs the bounded engine misses. *)
