open Memmodel

(* Does [th] read a stage-2 page-table base anywhere? The W004 rules only
   bite when some other CPU can walk the table concurrently. *)
let reads_pt (th : Prog.thread) =
  let rec go = function
    | [] -> false
    | ins :: rest ->
        (match ins with
        | Instr.If (_, a, b) -> go a || go b
        | Instr.While (_, body) -> go body
        | Instr.Load (_, a, _) -> Cfg.is_s2_pt_base a.Expr.abase
        | _ -> (
            match Cfg.access_base ins with
            | Some b -> Cfg.is_rmw ins && Cfg.is_s2_pt_base b
            | None -> false))
        || go rest
  in
  go th.Prog.code

type frame = { f_pt : int list; f_saw_pt : bool; f_pending : bool }

let run (prog : Prog.t) : Diag.t list =
  List.concat
    (List.mapi
       (fun i (th : Prog.thread) ->
         let other_reader =
           List.exists
             (fun (j, th') -> j <> i && reads_pt th')
             (List.mapi (fun j t -> (j, t)) prog.Prog.threads)
         in
         let per_path =
           List.map
             (fun path ->
               let frames, raws =
                 List.fold_left
                   (fun (frames, raws) (s : Cfg.step) ->
                     match s.Cfg.ins with
                     | Instr.Pull _ ->
                         ( { f_pt = s.Cfg.pt;
                             f_saw_pt = false;
                             f_pending = false }
                           :: frames,
                           raws )
                     | Instr.Push _ -> (
                         match frames with [] -> ([], raws) | _ :: fs -> (fs, raws))
                     | ins when Cfg.writes_mem ins -> (
                         let base = Option.get (Cfg.access_base ins) in
                         let is_pt = Cfg.is_s2_pt_base base in
                         match frames with
                         | [] ->
                             let raws =
                               if is_pt && other_reader then
                                 { Cfg.r_code = Diag.W004;
                                   r_path = s.Cfg.pt;
                                   r_message =
                                     Printf.sprintf
                                       "stage-2 page table '%s' written \
                                        outside a transactional section \
                                        while another CPU walks the table"
                                       base;
                                   r_fix =
                                     "wrap the page-table update in a \
                                      lock-held pull/push section";
                                   r_definite = true }
                                 :: raws
                               else raws
                             in
                             ([], raws)
                         | f :: fs ->
                             if is_pt then
                               let raws =
                                 if f.f_saw_pt && f.f_pending then
                                   { Cfg.r_code = Diag.W004;
                                     r_path = s.Cfg.pt;
                                     r_message =
                                       Printf.sprintf
                                         "page-table write to '%s' follows \
                                          an unrelated write in the same \
                                          transactional section; a \
                                          concurrent walker can observe a \
                                          half-updated table"
                                         base;
                                     r_fix =
                                       "keep the page-table writes of a \
                                        transaction contiguous, or split \
                                        them into separate transactions";
                                     r_definite = true }
                                   :: raws
                                 else raws
                               in
                               ( { f with f_saw_pt = true; f_pending = false }
                                 :: fs,
                                 raws )
                             else
                               ( (if f.f_saw_pt then
                                    { f with f_pending = true } :: fs
                                  else frames),
                                 raws ))
                     | _ -> (frames, raws))
                   ([], []) path
               in
               List.fold_left
                 (fun raws f ->
                   if f.f_saw_pt then
                     { Cfg.r_code = Diag.W004;
                       r_path = f.f_pt;
                       r_message =
                         "transactional section performing page-table \
                          writes is never closed on this path";
                       r_fix = "push the section before the thread exits";
                       r_definite = true }
                     :: raws
                   else raws)
                 raws frames)
             (Cfg.paths th.Prog.code)
         in
         Cfg.classify ~tid:th.Prog.tid ~per_path)
       prog.Prog.threads)
  |> Diag.sort
