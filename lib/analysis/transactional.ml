open Memmodel

(* Does [th] read a stage-2 page-table base anywhere? The W004 rules only
   bite when some other CPU can walk the table concurrently. *)
let reads_pt (th : Prog.thread) =
  let rec go = function
    | [] -> false
    | ins :: rest ->
        (match ins with
        | Instr.If (_, a, b) -> go a || go b
        | Instr.While (_, body) -> go body
        | Instr.Load (_, a, _) -> Cfg.is_s2_pt_base a.Expr.abase
        | _ -> (
            match Cfg.access_base ins with
            | Some b -> Cfg.is_rmw ins && Cfg.is_s2_pt_base b
            | None -> false))
        || go rest
  in
  go th.Prog.code

type frame = { f_pt : int list; f_saw_pt : bool; f_pending : bool }

let run (prog : Prog.t) : Diag.t list =
  List.concat
    (List.mapi
       (fun i (th : Prog.thread) ->
         let other_reader =
           List.exists
             (fun (j, th') -> j <> i && reads_pt th')
             (List.mapi (fun j t -> (j, t)) prog.Prog.threads)
         in
         let per_path =
           List.map
             (fun path ->
               let frames, raws =
                 List.fold_left
                   (fun (frames, raws) (s : Cfg.step) ->
                     match s.Cfg.ins with
                     | Instr.Pull _ ->
                         ( { f_pt = s.Cfg.pt;
                             f_saw_pt = false;
                             f_pending = false }
                           :: frames,
                           raws )
                     | Instr.Push _ -> (
                         match frames with [] -> ([], raws) | _ :: fs -> (fs, raws))
                     | ins when Cfg.writes_mem ins -> (
                         let base = Option.get (Cfg.access_base ins) in
                         let is_pt = Cfg.is_s2_pt_base base in
                         match frames with
                         | [] ->
                             let raws =
                               if is_pt && other_reader then
                                 { Cfg.r_code = Diag.W004;
                                   r_path = s.Cfg.pt;
                                   r_message =
                                     Printf.sprintf
                                       "stage-2 page table '%s' written \
                                        outside a transactional section \
                                        while another CPU walks the table"
                                       base;
                                   r_fix =
                                     "wrap the page-table update in a \
                                      lock-held pull/push section";
                                   r_definite = true }
                                 :: raws
                               else raws
                             in
                             ([], raws)
                         | f :: fs ->
                             if is_pt then
                               let raws =
                                 if f.f_saw_pt && f.f_pending then
                                   { Cfg.r_code = Diag.W004;
                                     r_path = s.Cfg.pt;
                                     r_message =
                                       Printf.sprintf
                                         "page-table write to '%s' follows \
                                          an unrelated write in the same \
                                          transactional section; a \
                                          concurrent walker can observe a \
                                          half-updated table"
                                         base;
                                     r_fix =
                                       "keep the page-table writes of a \
                                        transaction contiguous, or split \
                                        them into separate transactions";
                                     r_definite = true }
                                   :: raws
                                 else raws
                               in
                               ( { f with f_saw_pt = true; f_pending = false }
                                 :: fs,
                                 raws )
                             else
                               ( (if f.f_saw_pt then
                                    { f with f_pending = true } :: fs
                                  else frames),
                                 raws ))
                     | _ -> (frames, raws))
                   ([], []) path
               in
               List.fold_left
                 (fun raws f ->
                   if f.f_saw_pt then
                     { Cfg.r_code = Diag.W004;
                       r_path = f.f_pt;
                       r_message =
                         "transactional section performing page-table \
                          writes is never closed on this path";
                       r_fix = "push the section before the thread exits";
                       r_definite = true }
                     :: raws
                   else raws)
                 raws frames)
             (Cfg.paths th.Prog.code)
         in
         Cfg.classify ~tid:th.Prog.tid ~per_path)
       prog.Prog.threads)
  |> Diag.sort

(* ------------------------------------------------------------------ *)
(* Fixpoint engine.                                                    *)
(* ------------------------------------------------------------------ *)

module PtSet = Set.Make (struct
  type t = int list

  let compare = Stdlib.compare
end)

(* A frame carries its acquiring points as a set (joins may merge
   sections opened at different pulls) and must/may versions of the
   bounded engine's two booleans. Joining stacks of different heights
   loses frame tracking entirely: the state degrades to a dirty summary
   that can only report [Possible]. *)
type fframe = {
  ff_pts : PtSet.t;
  ff_saw_must : bool;
  ff_saw_may : bool;
  ff_pend_must : bool;
  ff_pend_may : bool;
}

let msg_outside base =
  Printf.sprintf
    "stage-2 page table '%s' written outside a transactional section \
     while another CPU walks the table"
    base

let fix_outside = "wrap the page-table update in a lock-held pull/push section"

let msg_noncontig base =
  Printf.sprintf
    "page-table write to '%s' follows an unrelated write in the same \
     transactional section; a concurrent walker can observe a \
     half-updated table"
    base

let fix_noncontig =
  "keep the page-table writes of a transaction contiguous, or split them \
   into separate transactions"

let msg_unclosed =
  "transactional section performing page-table writes is never closed on \
   this path"

let fix_unclosed = "push the section before the thread exits"

let run_fix (prog : Prog.t) : Diag.t list * Absint.stats list =
  let stats = ref [] in
  let diags =
    List.concat
      (List.mapi
         (fun i (th : Prog.thread) ->
           let other_reader =
             List.exists
               (fun (j, th') -> j <> i && reads_pt th')
               (List.mapi (fun j t -> (j, t)) prog.Prog.threads)
           in
           let module D = struct
             type t = Bot | S of fframe list * bool (* frames, dirty *)

             let bottom = Bot

             let fjoin a b =
               { ff_pts = PtSet.union a.ff_pts b.ff_pts;
                 ff_saw_must = a.ff_saw_must && b.ff_saw_must;
                 ff_saw_may = a.ff_saw_may || b.ff_saw_may;
                 ff_pend_must = a.ff_pend_must && b.ff_pend_must;
                 ff_pend_may = a.ff_pend_may || b.ff_pend_may }

             let join a b =
               match (a, b) with
               | Bot, x | x, Bot -> x
               | S (_, true), S (_, _) | S (_, _), S (_, true) -> S ([], true)
               | S (f1, false), S (f2, false) ->
                   if List.length f1 <> List.length f2 then S ([], true)
                   else S (List.map2 fjoin f1 f2, false)

             let fleq a b =
               PtSet.subset a.ff_pts b.ff_pts
               && b.ff_saw_must <= a.ff_saw_must
               && a.ff_saw_may <= b.ff_saw_may
               && b.ff_pend_must <= a.ff_pend_must
               && a.ff_pend_may <= b.ff_pend_may

             let leq a b =
               match (a, b) with
               | Bot, _ -> true
               | S _, Bot -> false
               | _, S (_, true) -> true
               | S (_, true), S (_, false) -> false
               | S (f1, false), S (f2, false) ->
                   List.length f1 = List.length f2 && List.for_all2 fleq f1 f2

             let transfer lbl t =
               match (t, lbl) with
               | Bot, _ | _, (Cfg.L_skip | Cfg.L_guard _) -> t
               | S (_, true), _ -> t
               | S (frames, false), Cfg.L_ins s -> (
                   match s.Cfg.ins with
                   | Instr.Pull _ ->
                       S
                         ( { ff_pts = PtSet.singleton s.Cfg.pt;
                             ff_saw_must = false;
                             ff_saw_may = false;
                             ff_pend_must = false;
                             ff_pend_may = false }
                           :: frames,
                           false )
                   | Instr.Push _ -> (
                       match frames with
                       | [] -> t
                       | _ :: fs -> S (fs, false))
                   | ins when Cfg.writes_mem ins -> (
                       let base = Option.get (Cfg.access_base ins) in
                       let is_pt = Cfg.is_s2_pt_base base in
                       match frames with
                       | [] -> t
                       | f :: fs ->
                           if is_pt then
                             S
                               ( { f with
                                   ff_saw_must = true;
                                   ff_saw_may = true;
                                   ff_pend_must = false;
                                   ff_pend_may = false }
                                 :: fs,
                                 false )
                           else
                             S
                               ( { f with
                                   ff_pend_must = f.ff_pend_must || f.ff_saw_must;
                                   ff_pend_may = f.ff_pend_may || f.ff_saw_may }
                                 :: fs,
                                 false ))
                   | _ -> t)

             let widen = join
           end in
           let g = Cfg.graph th.Prog.code in
           let fl = Absint.flow g in
           let module Sv = Absint.Solve (D) in
           let states, st = Sv.run ~live:fl.Absint.f_live g ~init:(D.S ([], false)) in
           stats := Absint.add_stats fl.Absint.f_stats st :: !stats;
           let raws = ref [] in
           let emit r = raws := r :: !raws in
           Array.iteri
             (fun n succ ->
               match states.(n) with
               | D.Bot -> ()
               | D.S (frames, dirty) ->
                   List.iter
                     (fun (lbl, _) ->
                       match lbl with
                       | Cfg.L_ins s when Cfg.writes_mem s.Cfg.ins -> (
                           let base = Option.get (Cfg.access_base s.Cfg.ins) in
                           let is_pt = Cfg.is_s2_pt_base base in
                           if is_pt && other_reader then
                             match (dirty, frames) with
                             | true, _ ->
                                 emit
                                   { Cfg.r_code = Diag.W004;
                                     r_path = s.Cfg.pt;
                                     r_message = msg_outside base;
                                     r_fix = fix_outside;
                                     r_definite = false }
                             | false, [] ->
                                 emit
                                   { Cfg.r_code = Diag.W004;
                                     r_path = s.Cfg.pt;
                                     r_message = msg_outside base;
                                     r_fix = fix_outside;
                                     r_definite = fl.Absint.f_dr n }
                             | false, f :: _ ->
                                 if f.ff_saw_may && f.ff_pend_may then
                                   emit
                                     { Cfg.r_code = Diag.W004;
                                       r_path = s.Cfg.pt;
                                       r_message = msg_noncontig base;
                                       r_fix = fix_noncontig;
                                       r_definite =
                                         f.ff_saw_must && f.ff_pend_must
                                         && fl.Absint.f_dr n })
                       | _ -> ())
                     succ)
             g.Cfg.g_succ;
           (match states.(g.Cfg.g_exit) with
           | D.Bot | D.S (_, true) -> ()
           | D.S (frames, false) ->
               List.iter
                 (fun f ->
                   if f.ff_saw_may then
                     PtSet.iter
                       (fun pt ->
                         emit
                           { Cfg.r_code = Diag.W004;
                             r_path = pt;
                             r_message = msg_unclosed;
                             r_fix = fix_unclosed;
                             r_definite =
                               f.ff_saw_must && PtSet.cardinal f.ff_pts = 1 })
                       f.ff_pts)
                 frames);
           Cfg.merge_raws ~tid:th.Prog.tid !raws)
         prog.Prog.threads)
  in
  (Diag.sort diags, !stats)
