open Memmodel

type step = { pt : int list; ins : Instr.t }

(* Mirrors Check_barrier.paths (If -> both branches, While -> 0/1
   unrollings) with structural positions attached. The instruction count
   of corpus programs is small enough that the product stays tiny. *)
let paths (code : Instr.t list) : step list list =
  let cross heads tails =
    List.concat_map (fun h -> List.map (fun t -> h @ t) tails) heads
  in
  let rec go prefix k = function
    | [] -> [ [] ]
    | Instr.If (_, a, b) :: rest ->
        let heads = go (prefix @ [ k; 0 ]) 0 a @ go (prefix @ [ k; 1 ]) 0 b in
        cross heads (go prefix (k + 1) rest)
    | Instr.While (_, body) :: rest ->
        let heads = [] :: go (prefix @ [ k; 0 ]) 0 body in
        cross heads (go prefix (k + 1) rest)
    | i :: rest ->
        List.map
          (fun t -> { pt = prefix @ [ k ]; ins = i } :: t)
          (go prefix (k + 1) rest)
  in
  go [] 0 code

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let has_suffix suf s =
  let n = String.length s and m = String.length suf in
  n >= m && String.sub s (n - m) m = suf

let is_el2_base b = has_prefix "el2" b
let is_pt_base b = is_el2_base b || has_prefix "pte" b || has_prefix "pt_" b
let is_s2_pt_base b = is_pt_base b && not (is_el2_base b)

let is_lock_base b =
  List.exists
    (fun s -> has_suffix s b)
    [ ".ticket"; ".now"; ".tail"; ".locked"; ".next" ]

let access_base = function
  | Instr.Load (_, a, _)
  | Instr.Store (a, _, _)
  | Instr.Faa (_, a, _, _)
  | Instr.Xchg (_, a, _, _)
  | Instr.Cas (_, a, _, _, _) ->
      Some a.Expr.abase
  | _ -> None

let is_rmw = function
  | Instr.Faa _ | Instr.Xchg _ | Instr.Cas _ -> true
  | _ -> false

let writes_mem = function
  | Instr.Store _ | Instr.Faa _ | Instr.Xchg _ | Instr.Cas _ -> true
  | _ -> false

let rec const_of_vexp : Expr.vexp -> int option = function
  | Expr.Const n -> Some n
  | Expr.Reg _ -> None
  | Expr.Add (a, b) -> bin ( + ) a b
  | Expr.Sub (a, b) -> bin ( - ) a b
  | Expr.Mul (a, b) -> bin ( * ) a b
  | Expr.Div (a, b) -> (
      match (const_of_vexp a, const_of_vexp b) with
      | Some x, Some y when y <> 0 -> Some (x / y)
      | _ -> None)

and bin op a b =
  match (const_of_vexp a, const_of_vexp b) with
  | Some x, Some y -> Some (op x y)
  | _ -> None

let store_target = function
  | Instr.Store (a, _, _) -> Some (a.Expr.abase, const_of_vexp a.Expr.offset)
  | _ -> None

module Amem = struct
  type aval = Known of int | Unknown_val

  module M = Map.Make (struct
    type t = string * int

    let compare = Stdlib.compare
  end)

  type t = { cells : aval M.t; smudged : string list }

  let of_init ~pred (prog : Prog.t) =
    let cells =
      List.fold_left
        (fun m (l, v) ->
          if pred (Loc.base l) then M.add (Loc.base l, Loc.index l) (Known v) m
          else m)
        M.empty prog.Prog.init
    in
    { cells; smudged = [] }

  let read t ((base, _) as cell) =
    if List.mem base t.smudged then Unknown_val
    else match M.find_opt cell t.cells with Some v -> v | None -> Known 0

  let write t cell v = { t with cells = M.add cell v t.cells }

  let smudge_base t base =
    if List.mem base t.smudged then t
    else { t with smudged = base :: t.smudged }
end

(* ------------------------------------------------------------------ *)
(* Graph form: the CFG proper, for the fixpoint engine.                *)
(* ------------------------------------------------------------------ *)

type guard = {
  g_cond : Expr.bexp;
  g_taken : bool;
  g_pt : int list;
  g_loop : bool;
  g_ins : Instr.t;
}

type label = L_ins of step | L_guard of guard | L_skip

type gate = { gt_node : int; gt_cond : Expr.bexp; gt_taken : bool }

type graph = {
  g_n : int;
  g_entry : int;
  g_exit : int;
  g_succ : (label * int) list array;
  g_gates : gate list array;
  g_loop_head : bool array;
}

let default_peel = 2

(* Loops are peeled [peel] times — [while c b] becomes
   [if c { b; if c { b; while c b } }] — before the residual loop is
   kept as a genuine back-edge (its header is marked as a widening
   point). Peeled copies retain the structural positions of the
   original body, so diagnostics land on source points; the peel depth
   is what lets a must-analysis see iteration 2 distinctly (the
   loop-carried Write-Once case) while the residual fixpoint covers
   iterations >= peel+1 soundly.

   Each node carries its [gates]: the stack of enclosing guard
   decisions (evaluation site, condition, direction). A node is
   definitely reached iff every gate's condition is must-decided in
   the gate's direction at its evaluation site — the graph engine's
   replacement for "present on every enumerated path". The join node
   after a loop carries only the *outer* gates: termination of the
   residual loop is structural, not gated. *)
let graph ?(peel = default_peel) (code : Instr.t list) : graph =
  let edges = ref [] in
  let gates = ref [] in
  let heads = ref [] in
  let n = ref 0 in
  let node ctx =
    let id = !n in
    incr n;
    gates := (id, ctx) :: !gates;
    id
  in
  let edge a l b = edges := (a, l, b) :: !edges in
  let rec seq entry ctx prefix k = function
    | [] -> entry
    | Instr.If (cond, a, b) :: rest ->
        let pt = prefix @ [ k ] in
        let ins = Instr.If (cond, a, b) in
        let g taken =
          L_guard { g_cond = cond; g_taken = taken; g_pt = pt; g_loop = false; g_ins = ins }
        in
        let gate taken = { gt_node = entry; gt_cond = cond; gt_taken = taken } in
        let na = node (gate true :: ctx) and nb = node (gate false :: ctx) in
        edge entry (g true) na;
        edge entry (g false) nb;
        let xa = seq na (gate true :: ctx) (pt @ [ 0 ]) 0 a in
        let xb = seq nb (gate false :: ctx) (pt @ [ 1 ]) 0 b in
        let j = node ctx in
        edge xa L_skip j;
        edge xb L_skip j;
        seq j ctx prefix (k + 1) rest
    | Instr.While (cond, body) :: rest ->
        let pt = prefix @ [ k ] in
        let ins = Instr.While (cond, body) in
        let g taken =
          L_guard { g_cond = cond; g_taken = taken; g_pt = pt; g_loop = true; g_ins = ins }
        in
        let j = node ctx in
        let rec unroll entry ictx p =
          if p = 0 then begin
            let h = node ictx in
            edge entry L_skip h;
            heads := h :: !heads;
            let bctx = { gt_node = h; gt_cond = cond; gt_taken = true } :: ictx in
            let nb = node bctx in
            edge h (g true) nb;
            let xb = seq nb bctx (pt @ [ 0 ]) 0 body in
            edge xb L_skip h;
            edge h (g false) j
          end
          else begin
            let bctx = { gt_node = entry; gt_cond = cond; gt_taken = true } :: ictx in
            let nb = node bctx in
            edge entry (g true) nb;
            edge entry (g false) j;
            let xb = seq nb bctx (pt @ [ 0 ]) 0 body in
            unroll xb bctx (p - 1)
          end
        in
        unroll entry ctx peel;
        seq j ctx prefix (k + 1) rest
    | i :: rest ->
        let n2 = node ctx in
        edge entry (L_ins { pt = prefix @ [ k ]; ins = i }) n2;
        seq n2 ctx prefix (k + 1) rest
  in
  let entry = node [] in
  let exit = seq entry [] [] 0 code in
  let succ = Array.make !n [] in
  List.iter (fun (a, l, b) -> succ.(a) <- (l, b) :: succ.(a)) !edges;
  let gts = Array.make !n [] in
  List.iter (fun (id, ctx) -> gts.(id) <- List.rev ctx) !gates;
  let lh = Array.make !n false in
  List.iter (fun h -> lh.(h) <- true) !heads;
  { g_n = !n; g_entry = entry; g_exit = exit; g_succ = succ; g_gates = gts; g_loop_head = lh }

type raw = {
  r_code : Diag.code;
  r_path : int list;
  r_message : string;
  r_fix : string;
  r_definite : bool;
}

let classify ~tid ~per_path : Diag.t list =
  let n_paths = List.length per_path in
  let dedup raws = List.sort_uniq Stdlib.compare raws in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun raws ->
      List.iter
        (fun r ->
          let n = try Hashtbl.find tbl r with Not_found -> 0 in
          Hashtbl.replace tbl r (n + 1))
        (dedup raws))
    per_path;
  Hashtbl.fold
    (fun r n acc ->
      { Diag.d_code = r.r_code;
        d_tid = tid;
        d_path = r.r_path;
        d_certainty =
          (if r.r_definite && n = n_paths then Diag.Definite
           else Diag.Possible);
        d_message = r.r_message;
        d_fix = r.r_fix }
      :: acc)
    tbl []
  |> Diag.sort

(* Fixpoint-engine counterpart of [classify]: a raw's [r_definite] here
   is its final certainty (must-level defect at a definitely-reached
   point), already decided by the domain. The same program point can be
   visited along several graph edges (peeled loop copies, joined
   obligations), so findings are merged keeping the strongest
   certainty. *)
let merge_raws ~tid (raws : raw list) : Diag.t list =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun r ->
      let key = { r with r_definite = false } in
      let def = try Hashtbl.find tbl key with Not_found -> false in
      Hashtbl.replace tbl key (def || r.r_definite))
    raws;
  Hashtbl.fold
    (fun r def acc ->
      { Diag.d_code = r.r_code;
        d_tid = tid;
        d_path = r.r_path;
        d_certainty = (if def then Diag.Definite else Diag.Possible);
        d_message = r.r_message;
        d_fix = r.r_fix }
      :: acc)
    tbl []
  |> Diag.sort
