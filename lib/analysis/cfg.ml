open Memmodel

type step = { pt : int list; ins : Instr.t }

(* Mirrors Check_barrier.paths (If -> both branches, While -> 0/1
   unrollings) with structural positions attached. The instruction count
   of corpus programs is small enough that the product stays tiny. *)
let paths (code : Instr.t list) : step list list =
  let cross heads tails =
    List.concat_map (fun h -> List.map (fun t -> h @ t) tails) heads
  in
  let rec go prefix k = function
    | [] -> [ [] ]
    | Instr.If (_, a, b) :: rest ->
        let heads = go (prefix @ [ k; 0 ]) 0 a @ go (prefix @ [ k; 1 ]) 0 b in
        cross heads (go prefix (k + 1) rest)
    | Instr.While (_, body) :: rest ->
        let heads = [] :: go (prefix @ [ k; 0 ]) 0 body in
        cross heads (go prefix (k + 1) rest)
    | i :: rest ->
        List.map
          (fun t -> { pt = prefix @ [ k ]; ins = i } :: t)
          (go prefix (k + 1) rest)
  in
  go [] 0 code

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let has_suffix suf s =
  let n = String.length s and m = String.length suf in
  n >= m && String.sub s (n - m) m = suf

let is_el2_base b = has_prefix "el2" b
let is_pt_base b = is_el2_base b || has_prefix "pte" b || has_prefix "pt_" b
let is_s2_pt_base b = is_pt_base b && not (is_el2_base b)

let is_lock_base b =
  List.exists
    (fun s -> has_suffix s b)
    [ ".ticket"; ".now"; ".tail"; ".locked"; ".next" ]

let access_base = function
  | Instr.Load (_, a, _)
  | Instr.Store (a, _, _)
  | Instr.Faa (_, a, _, _)
  | Instr.Xchg (_, a, _, _)
  | Instr.Cas (_, a, _, _, _) ->
      Some a.Expr.abase
  | _ -> None

let is_rmw = function
  | Instr.Faa _ | Instr.Xchg _ | Instr.Cas _ -> true
  | _ -> false

let writes_mem = function
  | Instr.Store _ | Instr.Faa _ | Instr.Xchg _ | Instr.Cas _ -> true
  | _ -> false

let rec const_of_vexp : Expr.vexp -> int option = function
  | Expr.Const n -> Some n
  | Expr.Reg _ -> None
  | Expr.Add (a, b) -> bin ( + ) a b
  | Expr.Sub (a, b) -> bin ( - ) a b
  | Expr.Mul (a, b) -> bin ( * ) a b
  | Expr.Div (a, b) -> (
      match (const_of_vexp a, const_of_vexp b) with
      | Some x, Some y when y <> 0 -> Some (x / y)
      | _ -> None)

and bin op a b =
  match (const_of_vexp a, const_of_vexp b) with
  | Some x, Some y -> Some (op x y)
  | _ -> None

let store_target = function
  | Instr.Store (a, _, _) -> Some (a.Expr.abase, const_of_vexp a.Expr.offset)
  | _ -> None

module Amem = struct
  type aval = Known of int | Unknown_val

  module M = Map.Make (struct
    type t = string * int

    let compare = Stdlib.compare
  end)

  type t = { cells : aval M.t; smudged : string list }

  let of_init ~pred (prog : Prog.t) =
    let cells =
      List.fold_left
        (fun m (l, v) ->
          if pred (Loc.base l) then M.add (Loc.base l, Loc.index l) (Known v) m
          else m)
        M.empty prog.Prog.init
    in
    { cells; smudged = [] }

  let read t ((base, _) as cell) =
    if List.mem base t.smudged then Unknown_val
    else match M.find_opt cell t.cells with Some v -> v | None -> Known 0

  let write t cell v = { t with cells = M.add cell v t.cells }

  let smudge_base t base =
    if List.mem base t.smudged then t
    else { t with smudged = base :: t.smudged }
end

type raw = {
  r_code : Diag.code;
  r_path : int list;
  r_message : string;
  r_fix : string;
  r_definite : bool;
}

let classify ~tid ~per_path : Diag.t list =
  let n_paths = List.length per_path in
  let dedup raws = List.sort_uniq Stdlib.compare raws in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun raws ->
      List.iter
        (fun r ->
          let n = try Hashtbl.find tbl r with Not_found -> 0 in
          Hashtbl.replace tbl r (n + 1))
        (dedup raws))
    per_path;
  Hashtbl.fold
    (fun r n acc ->
      { Diag.d_code = r.r_code;
        d_tid = tid;
        d_path = r.r_path;
        d_certainty =
          (if r.r_definite && n = n_paths then Diag.Definite
           else Diag.Possible);
        d_message = r.r_message;
        d_fix = r.r_fix }
      :: acc)
    tbl []
  |> Diag.sort
