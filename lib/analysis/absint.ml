open Memmodel

module type DOMAIN = sig
  type t

  val bottom : t
  val join : t -> t -> t
  val leq : t -> t -> bool
  val transfer : Cfg.label -> t -> t
  val widen : t -> t -> t
end

type stats = { st_nodes : int; st_edges : int; st_iters : int; st_widens : int }

let zero_stats = { st_nodes = 0; st_edges = 0; st_iters = 0; st_widens = 0 }

let add_stats a b =
  { st_nodes = a.st_nodes + b.st_nodes;
    st_edges = a.st_edges + b.st_edges;
    st_iters = a.st_iters + b.st_iters;
    st_widens = a.st_widens + b.st_widens }

let widen_delay = 2

module Solve (D : DOMAIN) = struct
  let run ?(live = fun ~src:_ _ -> true) (g : Cfg.graph) ~(init : D.t) :
      D.t array * stats =
    let states = Array.make g.Cfg.g_n D.bottom in
    let reached = Array.make g.Cfg.g_n false in
    let updates = Array.make g.Cfg.g_n 0 in
    let queued = Array.make g.Cfg.g_n false in
    let q = Queue.create () in
    let enqueue n =
      if not queued.(n) then begin
        queued.(n) <- true;
        Queue.add n q
      end
    in
    states.(g.Cfg.g_entry) <- init;
    reached.(g.Cfg.g_entry) <- true;
    enqueue g.Cfg.g_entry;
    let iters = ref 0 and widens = ref 0 in
    let edges =
      Array.fold_left (fun acc succ -> acc + List.length succ) 0 g.Cfg.g_succ
    in
    while not (Queue.is_empty q) do
      let n = Queue.take q in
      queued.(n) <- false;
      let s = states.(n) in
      List.iter
        (fun (lbl, m) ->
          if live ~src:n lbl then begin
            incr iters;
            let out = D.transfer lbl s in
            let cur = states.(m) in
            let joined = if reached.(m) then D.join cur out else out in
            let next =
              if
                g.Cfg.g_loop_head.(m)
                && reached.(m)
                && updates.(m) >= widen_delay
                && not (D.leq joined cur)
              then begin
                incr widens;
                D.widen cur joined
              end
              else joined
            in
            if (not reached.(m)) || not (D.leq next cur) then begin
              states.(m) <- next;
              reached.(m) <- true;
              updates.(m) <- updates.(m) + 1;
              enqueue m
            end
          end)
        g.Cfg.g_succ.(n)
    done;
    ( states,
      { st_nodes = g.Cfg.g_n; st_edges = edges; st_iters = !iters; st_widens = !widens }
    )
end

(* ------------------------------------------------------------------ *)
(* Reachability layer: must-constants over registers.                  *)
(* ------------------------------------------------------------------ *)

module RegMap = Map.Make (struct
  type t = Reg.t

  let compare = Stdlib.compare
end)

(* A register is mapped to its known constant value; absent = unknown.
   Loads and RMW destinations go unknown (memory is out of scope here —
   this layer only tracks register arithmetic, which is what loop
   counters and peeled guards are made of). *)
module Consts = struct
  type t = Unreached | Env of int RegMap.t

  let bottom = Unreached

  let rec eval_v env : Expr.vexp -> int option = function
    | Expr.Const n -> Some n
    | Expr.Reg r -> RegMap.find_opt r env
    | Expr.Add (a, b) -> bin env ( + ) a b
    | Expr.Sub (a, b) -> bin env ( - ) a b
    | Expr.Mul (a, b) -> bin env ( * ) a b
    | Expr.Div (a, b) -> (
        match (eval_v env a, eval_v env b) with
        | Some x, Some y when y <> 0 -> Some (x / y)
        | _ -> None)

  and bin env op a b =
    match (eval_v env a, eval_v env b) with
    | Some x, Some y -> Some (op x y)
    | _ -> None

  let rec eval_b env : Expr.bexp -> bool option = function
    | Expr.Bool v -> Some v
    | Expr.Cmp (op, a, b) -> (
        match (eval_v env a, eval_v env b) with
        | Some x, Some y -> Some (Expr.eval_cmp op x y)
        | _ -> None)
    | Expr.And (a, b) -> (
        match (eval_b env a, eval_b env b) with
        | Some x, Some y -> Some (x && y)
        | Some false, _ | _, Some false -> Some false
        | _ -> None)
    | Expr.Or (a, b) -> (
        match (eval_b env a, eval_b env b) with
        | Some x, Some y -> Some (x || y)
        | Some true, _ | _, Some true -> Some true
        | _ -> None)
    | Expr.Not a -> Option.map not (eval_b env a)

  let join a b =
    match (a, b) with
    | Unreached, x | x, Unreached -> x
    | Env ea, Env eb ->
        Env
          (RegMap.merge
             (fun _ va vb ->
               match (va, vb) with
               | Some x, Some y when x = y -> Some x
               | _ -> None)
             ea eb)

  let leq a b =
    match (a, b) with
    | Unreached, _ -> true
    | Env _, Unreached -> false
    | Env ea, Env eb ->
        (* a at least as precise: every binding of b holds in a. *)
        RegMap.for_all (fun r v -> RegMap.find_opt r ea = Some v) eb

  let transfer lbl t =
    match t with
    | Unreached -> Unreached
    | Env env -> (
        match lbl with
        | Cfg.L_skip -> t
        | Cfg.L_guard g -> (
            match eval_b env g.Cfg.g_cond with
            | Some b when b <> g.Cfg.g_taken -> Unreached
            | _ -> t)
        | Cfg.L_ins { ins; _ } -> (
            match ins with
            | Instr.Move (r, e) -> (
                match eval_v env e with
                | Some v -> Env (RegMap.add r v env)
                | None -> Env (RegMap.remove r env))
            | Instr.Load (r, _, _)
            | Instr.Faa (r, _, _, _)
            | Instr.Xchg (r, _, _, _)
            | Instr.Cas (r, _, _, _, _) ->
                Env (RegMap.remove r env)
            | _ -> t))

  (* Finite per-register chains (Known -> unknown) but unboundedly many
     successive Known values around a loop: widening drops any binding
     that changed. *)
  let widen a b =
    match (a, b) with
    | Unreached, x | x, Unreached -> x
    | Env ea, Env eb ->
        Env
          (RegMap.merge
             (fun _ va vb ->
               match (va, vb) with
               | Some x, Some y when x = y -> Some x
               | _ -> None)
             ea eb)
end

(* ------------------------------------------------------------------ *)
(* Shared must-memory lattice (fixpoint counterpart of Cfg.Amem).      *)
(* ------------------------------------------------------------------ *)

module Mem = struct
  module CM = Map.Make (struct
    type t = string * int

    let compare = Stdlib.compare
  end)

  module SSet = Set.Make (String)

  type t = {
    default : string * int -> Cfg.Amem.aval;
    cells : Cfg.Amem.aval CM.t;
    smudged : SSet.t;
  }

  let init ~default ~smudged =
    { default; cells = CM.empty; smudged = SSet.of_list smudged }

  let read t ((b, _) as cell) =
    if SSet.mem b t.smudged then Cfg.Amem.Unknown_val
    else
      match CM.find_opt cell t.cells with
      | Some v -> v
      | None -> t.default cell

  let write t cell v = { t with cells = CM.add cell v t.cells }
  let smudge t b = { t with smudged = SSet.add b t.smudged }

  let vjoin a b =
    match (a, b) with
    | Cfg.Amem.Known x, Cfg.Amem.Known y when x = y -> Cfg.Amem.Known x
    | _ -> Cfg.Amem.Unknown_val

  let keys t = CM.fold (fun k _ acc -> k :: acc) t.cells []

  let join a b =
    let ks = List.sort_uniq Stdlib.compare (keys a @ keys b) in
    let cells =
      List.fold_left
        (fun m k -> CM.add k (vjoin (read a k) (read b k)) m)
        CM.empty ks
    in
    { a with cells; smudged = SSet.union a.smudged b.smudged }

  let leq a b =
    SSet.subset a.smudged b.smudged
    && List.for_all
         (fun k ->
           match (read b k, read a k) with
           | Cfg.Amem.Unknown_val, _ -> true
           | Cfg.Amem.Known y, Cfg.Amem.Known x -> x = y
           | Cfg.Amem.Known _, Cfg.Amem.Unknown_val -> false)
         (keys a @ keys b)
end

type flow = {
  f_graph : Cfg.graph;
  f_live : src:int -> Cfg.label -> bool;
  f_reachable : int -> bool;
  f_dr : int -> bool;
  f_stats : stats;
}

let flow (g : Cfg.graph) : flow =
  let module S = Solve (Consts) in
  let states, st = S.run g ~init:(Consts.Env RegMap.empty) in
  let live ~src lbl =
    match (states.(src), lbl) with
    | Consts.Unreached, _ -> false
    | Consts.Env env, Cfg.L_guard gd -> (
        match Consts.eval_b env gd.Cfg.g_cond with
        | Some b -> b = gd.Cfg.g_taken
        | None -> true)
    | Consts.Env _, _ -> true
  in
  let reachable n = states.(n) <> Consts.Unreached in
  let dr n =
    reachable n
    && List.for_all
         (fun gt ->
           match states.(gt.Cfg.gt_node) with
           | Consts.Unreached -> false
           | Consts.Env env ->
               Consts.eval_b env gt.Cfg.gt_cond = Some gt.Cfg.gt_taken)
         g.Cfg.g_gates.(n)
  in
  { f_graph = g; f_live = live; f_reachable = reachable; f_dr = dr; f_stats = st }
