(** Dynamic referee for the page-table conditions (W003/W004/W005).

    The static write-once, transactional-section and TLBI passes reason
    about abstract values on enumerated paths; this module re-checks the
    same three conditions concretely by replaying the SC interleaving
    event traces of {!Memmodel.Pushpull.traces} against real memory. The
    cross-validation harness then demands per-code agreement: a static
    [Fail] for W003/W004/W005 must be witnessed by a replay finding with
    the same code, and a static [Pass] must replay clean. *)

open Memmodel

type finding = { f_tid : int; f_code : Diag.code; f_message : string }

val pp_finding : Format.formatter -> finding -> unit

(** Is the replay referee applicable — does the program touch any
    page-table ([pte*], [pt_*]) or kernel-mapping ([el2*]) base? *)
val relevant : Prog.t -> bool

val check :
  ?fuel:int ->
  ?max_traces:int ->
  ?exempt:string list ->
  ?initial_owners:(string * int) list ->
  Prog.t ->
  finding list
(** Deduplicated findings over all enumerated traces, sorted. *)
