(** Generic forward-dataflow fixpoint engine over {!Cfg.graph}.

    The bounded-path passes decide wDRF conditions by enumerating
    control-flow paths — exponential in branch count and unsound for
    loop-carried defects (loops are unrolled 0/1 times). This module
    replaces enumeration with abstract interpretation: a pass supplies a
    join-semilattice {!DOMAIN} and the worklist solver computes one
    invariant per program point in time linear in the CFG (times lattice
    height, bounded by widening at residual loop heads).

    The engine also computes the {e reachability} layer every pass
    shares: a must-constants analysis over registers ({!flow}) that
    decides which guard edges are live, which nodes are reachable, and —
    via the per-node gate stacks — which nodes are {e definitely
    reached} (executed on every run). Definite reachedness is the graph
    engine's replacement for the bounded engine's "present on every
    enumerated path" rule: a must-level abstract defect at a
    definitely-reached node is promoted to [Definite] and is guaranteed
    a dynamic witness. *)

(** A forward join-semilattice abstract domain. *)
module type DOMAIN = sig
  type t

  val bottom : t
  (** No information: the state of a not-yet-reached program point.
      [transfer] is never applied to [bottom] — the solver only
      propagates from reached nodes. *)

  val join : t -> t -> t
  val leq : t -> t -> bool

  val transfer : Cfg.label -> t -> t
  (** Abstract effect of one CFG edge. *)

  val widen : t -> t -> t
  (** [widen old next] — applied at residual loop heads once the head
      has been updated {!widen_delay} times, to force termination on
      domains of unbounded height. Finite domains can use [join]. *)
end

type stats = {
  st_nodes : int;  (** CFG nodes *)
  st_edges : int;  (** CFG edges *)
  st_iters : int;  (** edge relaxations performed by the worklist *)
  st_widens : int;  (** widening applications *)
}

val zero_stats : stats
val add_stats : stats -> stats -> stats

val widen_delay : int
(** Loop-head updates tolerated before widening kicks in (2: enough for
    a must-constants analysis to stabilize simple counters first). *)

module Solve (D : DOMAIN) : sig
  val run :
    ?live:(src:int -> Cfg.label -> bool) ->
    Cfg.graph ->
    init:D.t ->
    D.t array * stats
  (** Worklist fixpoint: returns the per-node invariant map (indexed by
      node id; unreached nodes hold [D.bottom]) and solver statistics.
      [live] prunes edges the reachability layer has proved dead —
      e.g. the body of a loop whose guard is must-false. *)
end

(** {2 Shared must-memory lattice}

    Fixpoint counterpart of {!Cfg.Amem}: per-cell constants with a
    default (program-init) value for untouched cells, per-base smudging
    for non-constant offsets, and pointwise join ([Known n] values that
    disagree degrade to [Unknown_val]). Used by the Write-Once and TLBI
    domains. *)

module Mem : sig
  type t

  val init : default:(string * int -> Cfg.Amem.aval) -> smudged:string list -> t
  val read : t -> string * int -> Cfg.Amem.aval
  val write : t -> string * int -> Cfg.Amem.aval -> t
  val smudge : t -> string -> t
  val join : t -> t -> t
  val leq : t -> t -> bool
end

(** {2 Reachability layer} *)

type flow = {
  f_graph : Cfg.graph;
  f_live : src:int -> Cfg.label -> bool;  (** edge liveness predicate *)
  f_reachable : int -> bool;
  f_dr : int -> bool;
      (** definitely reached: reachable, and every enclosing gate's
          condition is must-decided in the gate's direction *)
  f_stats : stats;
}

val flow : Cfg.graph -> flow
(** Run the must-constants register analysis over [g] and package the
    liveness/reachability/definitely-reached views derived from it. *)
