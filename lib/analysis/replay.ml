open Memmodel

type finding = { f_tid : int; f_code : Diag.code; f_message : string }

let pp_finding ppf f =
  Format.fprintf ppf "%s tid %d: %s" (Diag.code_name f.f_code) f.f_tid
    f.f_message

let relevant (prog : Prog.t) =
  let rec touches = function
    | [] -> false
    | ins :: rest ->
        (match ins with
        | Instr.If (_, a, b) -> touches a || touches b
        | Instr.While (_, body) -> touches body
        | Instr.Tlbi _ -> true
        | _ -> (
            match Cfg.access_base ins with
            | Some b -> Cfg.is_pt_base b
            | None -> false))
        || touches rest
  in
  List.exists (fun (th : Prog.thread) -> touches th.Prog.code)
    prog.Prog.threads

(* Per-thread replay state. [frames] mirrors the static transactional
   pass; [pendings] are stage-2 entries awaiting DMB-then-TLBI. *)
type frame = { f_saw_pt : bool; f_pending : bool }

type tstate = {
  frames : frame list;
  pendings : (string * bool) list;  (** base, ordering DMB seen since *)
}

let check ?(fuel = 16) ?(max_traces = 512) ?(exempt = [])
    ?(initial_owners = []) (prog : Prog.t) : finding list =
  let n = List.length prog.Prog.threads in
  let dsl_tid i = (List.nth prog.Prog.threads i).Prog.tid in
  let reads_pt =
    List.map
      (fun (th : Prog.thread) ->
        let rec go = function
          | [] -> false
          | ins :: rest ->
              (match ins with
              | Instr.If (_, a, b) -> go a || go b
              | Instr.While (_, body) -> go body
              | Instr.Load (_, a, _) -> Cfg.is_s2_pt_base a.Expr.abase
              | _ -> (
                  match Cfg.access_base ins with
                  | Some b -> Cfg.is_rmw ins && Cfg.is_s2_pt_base b
                  | None -> false))
              || go rest
        in
        go th.Prog.code)
      prog.Prog.threads
  in
  let other_reader i =
    List.exists2
      (fun j r -> j <> i && r)
      (List.init n Fun.id) reads_pt
  in
  let replay trace =
    let out = ref [] in
    let emit i code msg =
      out := { f_tid = dsl_tid i; f_code = code; f_message = msg } :: !out
    in
    let mem = Hashtbl.create 16 in
    List.iter
      (fun (l, v) -> Hashtbl.replace mem (Loc.base l, Loc.index l) v)
      prog.Prog.init;
    let read cell = Option.value ~default:0 (Hashtbl.find_opt mem cell) in
    let ts =
      Array.make n { frames = []; pendings = [] }
    in
    let write i (l : Loc.t) v =
      let base = Loc.base l in
      let cell = (base, Loc.index l) in
      let old = read cell in
      let t = ts.(i) in
      let depth = List.length t.frames in
      if Cfg.is_el2_base base then begin
        if old <> 0 && depth = 0 then
          emit i Diag.W003
            (Printf.sprintf
               "kernel mapping %s[%d] overwritten outside a transactional \
                section"
               base (Loc.index l))
      end
      else if Cfg.is_s2_pt_base base then begin
        (if depth = 0 then begin
           if other_reader i then
             emit i Diag.W004
               (Printf.sprintf
                  "stage-2 page table '%s' written outside a \
                   transactional section while another CPU walks the \
                   table"
                  base)
         end
         else
           match t.frames with
           | f :: fs ->
               if f.f_saw_pt && f.f_pending then
                 emit i Diag.W004
                   (Printf.sprintf
                      "page-table write to '%s' follows an unrelated \
                       write in the same transactional section"
                      base);
               ts.(i) <-
                 { t with frames = { f_saw_pt = true; f_pending = false } :: fs }
           | [] -> ());
        if old <> 0 then
          ts.(i) <- { (ts.(i)) with pendings = (base, false) :: ts.(i).pendings }
      end
      else begin
        match t.frames with
        | f :: fs when f.f_saw_pt ->
            ts.(i) <- { t with frames = { f with f_pending = true } :: fs }
        | _ -> ()
      end;
      Hashtbl.replace mem cell v
    in
    List.iter
      (fun ev ->
        match ev with
        | Pushpull.Ev_write (i, l, v) -> write i l v
        | Pushpull.Ev_rmw (i, l, _, v) -> write i l v
        | Pushpull.Ev_pull (i, _) ->
            ts.(i) <-
              { (ts.(i)) with
                frames =
                  { f_saw_pt = false; f_pending = false } :: ts.(i).frames }
        | Pushpull.Ev_push (i, _) -> (
            match ts.(i).frames with
            | [] -> ()
            | _ :: fs -> ts.(i) <- { (ts.(i)) with frames = fs })
        | Pushpull.Ev_barrier (i, (Instr.Dmb_full | Instr.Dmb_st)) ->
            ts.(i) <-
              { (ts.(i)) with
                pendings = List.map (fun (b, _) -> (b, true)) ts.(i).pendings
              }
        | Pushpull.Ev_tlbi (i, scope) ->
            let covers b =
              match scope with None -> true | Some l -> Loc.base l = b
            in
            ts.(i) <-
              { (ts.(i)) with
                pendings =
                  List.filter
                    (fun (b, dmb) -> not (dmb && covers b))
                    ts.(i).pendings }
        | Pushpull.Ev_read _ | Pushpull.Ev_barrier _ -> ())
      trace;
    Array.iteri
      (fun i t ->
        List.iter
          (fun (b, _) ->
            emit i Diag.W005
              (Printf.sprintf
                 "stage-2 entry in '%s' remapped with no ordered TLBI" b))
          (List.sort_uniq compare t.pendings);
        if List.exists (fun f -> f.f_saw_pt) t.frames then
          emit i Diag.W004
            "transactional section performing page-table writes is never \
             closed")
      ts;
    !out
  in
  Pushpull.traces ~fuel ~exempt ~initial_owners ~max_traces prog
  |> List.concat_map replay
  |> List.sort_uniq compare
