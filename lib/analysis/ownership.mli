(** W006 — push/pull ownership dataflow.

    Simulates the ghost-ownership protocol per thread along every
    control-flow path: pulling a base already owned, pushing a base not
    owned, and leaking (a pulled base still owned when the thread exits)
    are findings.

    Double-pull and unowned-push are [Definite] when they occur on every
    path (the DRF checker then flags them on every interleaving). A leak
    is [Definite] only if some other thread pulls the same base
    unconditionally — that pull is then guaranteed to collide with the
    leaked ownership dynamically; otherwise it is [Possible]. *)

open Memmodel

val run :
  exempt:string list ->
  initial_owners:(string * int) list ->
  Prog.t ->
  Diag.t list
(** Bounded-path engine. *)

val run_fix :
  exempt:string list ->
  initial_owners:(string * int) list ->
  Prog.t ->
  Diag.t list * Absint.stats list
(** Fixpoint engine: ownership becomes a must-set plus a may-map from
    base to the set of acquiring points; [Definite] needs the must
    level, a definitely-reached point and (for leaks) a unique
    acquiring point. *)
