open Memmodel

(* The adequacy predicates, kept textually in sync with Check_barrier
   (the harness enforces behavioral agreement in both directions). *)

let is_acquireish = function
  | Instr.Load (_, _, (Instr.Acquire | Instr.Acq_rel))
  | Instr.Faa (_, _, _, (Instr.Acquire | Instr.Acq_rel))
  | Instr.Xchg (_, _, _, (Instr.Acquire | Instr.Acq_rel))
  | Instr.Cas (_, _, _, _, (Instr.Acquire | Instr.Acq_rel))
  | Instr.Barrier (Instr.Dmb_full | Instr.Dmb_ld) ->
      true
  | _ -> false

let is_releaseish = function
  | Instr.Store (_, _, (Instr.Release | Instr.Acq_rel))
  | Instr.Faa (_, _, _, (Instr.Release | Instr.Acq_rel))
  | Instr.Xchg (_, _, _, (Instr.Release | Instr.Acq_rel))
  | Instr.Cas (_, _, _, _, (Instr.Release | Instr.Acq_rel))
  | Instr.Barrier (Instr.Dmb_full | Instr.Dmb_st) ->
      true
  | _ -> false

let is_dmb_ld = function
  | Instr.Barrier (Instr.Dmb_full | Instr.Dmb_ld) -> true
  | _ -> false

let is_dmb_st = function
  | Instr.Barrier (Instr.Dmb_full | Instr.Dmb_st) -> true
  | _ -> false

let touches bases (s : Cfg.step) =
  match Cfg.access_base s.Cfg.ins with
  | Some b -> List.mem b bases
  | None -> false

let scan_until pred bases steps =
  let rec go = function
    | [] -> false
    | (s : Cfg.step) :: rest ->
        if pred s.Cfg.ins then true
        else if touches bases s then false
        else go rest
  in
  go steps

let pull_fulfilled before after bases =
  scan_until is_acquireish bases before || scan_until is_dmb_ld bases after

let push_fulfilled before after bases =
  scan_until is_releaseish bases after || scan_until is_dmb_st bases before

let w002 (prog : Prog.t) : Diag.t list =
  List.concat_map
    (fun (th : Prog.thread) ->
      let bad = ref [] in
      List.iter
        (fun path ->
          let rec walk before = function
            | [] -> ()
            | (s : Cfg.step) :: rest ->
                (match s.Cfg.ins with
                | Instr.Pull bases
                  when not (pull_fulfilled before rest bases) ->
                    bad :=
                      { Diag.d_code = Diag.W002;
                        d_tid = th.Prog.tid;
                        d_path = s.Cfg.pt;
                        d_certainty = Diag.Definite;
                        d_message =
                          Printf.sprintf
                            "pull of {%s} not fulfilled by an acquire \
                             access or DMB(LD) on this path"
                            (String.concat ", " bases);
                        d_fix =
                          "make the lock-acquiring access \
                           acquire-flavored (LDAR / acquire RMW), or \
                           insert `dmb ld` between the pull and the \
                           first protected access" }
                      :: !bad
                | Instr.Push bases
                  when not (push_fulfilled before rest bases) ->
                    bad :=
                      { Diag.d_code = Diag.W002;
                        d_tid = th.Prog.tid;
                        d_path = s.Cfg.pt;
                        d_certainty = Diag.Definite;
                        d_message =
                          Printf.sprintf
                            "push of {%s} not fulfilled by a release \
                             access or DMB(ST) on this path"
                            (String.concat ", " bases);
                        d_fix =
                          "make the lock-releasing store \
                           release-flavored (STLR / release RMW), or \
                           insert `dmb st` between the last protected \
                           access and the push" }
                      :: !bad
                | _ -> ());
                walk (s :: before) rest
          in
          walk [] path)
        (Cfg.paths th.Prog.code);
      !bad)
    prog.Prog.threads

(* W007: ISB after control-dependent page-table reads. Registers loaded
   from a PT base are tainted; a branch on a tainted register whose body
   loads again, with no ISB in between, is advisory-flagged. *)
let w007 (prog : Prog.t) : Diag.t list =
  let rec branch_loads = function
    | [] -> false
    | Instr.Load _ :: _ -> true
    | Instr.If (_, a, b) :: rest ->
        branch_loads a || branch_loads b || branch_loads rest
    | Instr.While (_, body) :: rest -> branch_loads body || branch_loads rest
    | _ :: rest -> branch_loads rest
  in
  List.concat_map
    (fun (th : Prog.thread) ->
      let out = ref [] in
      let rec scan prefix k tainted = function
        | [] -> ()
        | ins :: rest ->
            let tainted' =
              match ins with
              | Instr.Load (r, a, _) when Cfg.is_pt_base a.Expr.abase ->
                  r :: tainted
              | Instr.Load (r, _, _) ->
                  List.filter (fun r' -> r' <> r) tainted
              | Instr.Barrier Instr.Isb -> []
              | Instr.Move (r, e) ->
                  if
                    List.exists
                      (fun r' -> List.mem r' tainted)
                      (Expr.regs_of_vexp e)
                  then r :: tainted
                  else List.filter (fun r' -> r' <> r) tainted
              | _ -> tainted
            in
            (match ins with
            | Instr.If (c, a, b) ->
                if
                  List.exists
                    (fun r' -> List.mem r' tainted)
                    (Expr.regs_of_bexp c)
                  && (branch_loads a || branch_loads b)
                then
                  out :=
                    { Diag.d_code = Diag.W007;
                      d_tid = th.Prog.tid;
                      d_path = prefix @ [ k ];
                      d_certainty = Diag.Possible;
                      d_message =
                        "branch on a value read from a page table is \
                         followed by loads with no ISB: the control \
                         dependency alone does not order them";
                      d_fix =
                        "insert `isb` between the page-table read and \
                         the dependent loads" }
                    :: !out;
                scan (prefix @ [ k; 0 ]) 0 tainted a;
                scan (prefix @ [ k; 1 ]) 0 tainted b
            | Instr.While (_, body) -> scan (prefix @ [ k; 0 ]) 0 tainted body
            | _ -> ());
            scan prefix (k + 1) tainted' rest
      in
      scan [] 0 [] th.Prog.code;
      !out)
    prog.Prog.threads

let run (prog : Prog.t) : Diag.t list = Diag.sort (w002 prog @ w007 prog)

(* ------------------------------------------------------------------ *)
(* Fixpoint engine.                                                    *)
(* ------------------------------------------------------------------ *)

let pull_msg bases =
  Printf.sprintf
    "pull of {%s} not fulfilled by an acquire access or DMB(LD) on this \
     path"
    (String.concat ", " bases)

let pull_fix_str =
  "make the lock-acquiring access acquire-flavored (LDAR / acquire RMW), \
   or insert `dmb ld` between the pull and the first protected access"

let push_msg bases =
  Printf.sprintf
    "push of {%s} not fulfilled by a release access or DMB(ST) on this \
     path"
    (String.concat ", " bases)

let push_fix_str =
  "make the lock-releasing store release-flavored (STLR / release RMW), \
   or insert `dmb st` between the last protected access and the push"

module SS = Set.Make (String)

module Ob = Set.Make (struct
  type t = int list * string list (* pull/push point, annotated bases *)

  let compare = Stdlib.compare
end)

(* The two backward barrier scans become forward state: [seen] is a
   must-flag (a barrier of the right flavour on every incoming path),
   [dirty] the may-set of bases accessed since it. The two forward
   scans become pending obligations, killed by the fulfilling barrier
   and reported when an annotated base is accessed (or the thread
   exits) first — exactly when the bounded scan fails. *)
type bstate = {
  acq_seen : bool;
  acq_dirty : SS.t;
  st_seen : bool;
  st_dirty : SS.t;
  pulls : Ob.t;
  pushes : Ob.t;
}

let w002_fix (prog : Prog.t) : Diag.t list * Absint.stats list =
  let stats = ref [] in
  let diags =
    List.concat_map
      (fun (th : Prog.thread) ->
        let module D = struct
          type t = Bot | S of bstate

          let bottom = Bot

          let join a b =
            match (a, b) with
            | Bot, x | x, Bot -> x
            | S a, S b ->
                S
                  { acq_seen = a.acq_seen && b.acq_seen;
                    acq_dirty = SS.union a.acq_dirty b.acq_dirty;
                    st_seen = a.st_seen && b.st_seen;
                    st_dirty = SS.union a.st_dirty b.st_dirty;
                    pulls = Ob.union a.pulls b.pulls;
                    pushes = Ob.union a.pushes b.pushes }

          let leq a b =
            match (a, b) with
            | Bot, _ -> true
            | S _, Bot -> false
            | S a, S b ->
                (b.acq_seen <= a.acq_seen)
                && SS.subset a.acq_dirty b.acq_dirty
                && (b.st_seen <= a.st_seen)
                && SS.subset a.st_dirty b.st_dirty
                && Ob.subset a.pulls b.pulls
                && Ob.subset a.pushes b.pushes

          let transfer lbl t =
            match (t, lbl) with
            | Bot, _ | _, (Cfg.L_skip | Cfg.L_guard _) -> t
            | S s, Cfg.L_ins step -> (
                let ins = step.Cfg.ins in
                (* A DMB(LD)/DMB both fulfills prior pull obligations
                   (forward) and counts as acquireish for later pulls
                   (the bounded engine's backward before-scan). *)
                let s =
                  if is_dmb_ld ins then
                    { s with
                      pulls = Ob.empty;
                      acq_seen = true;
                      acq_dirty = SS.empty }
                  else s
                in
                let s =
                  if is_releaseish ins then { s with pushes = Ob.empty } else s
                in
                let s = if is_dmb_st ins then
                    { s with st_seen = true; st_dirty = SS.empty }
                  else s
                in
                match ins with
                | Instr.Pull bases ->
                    if
                      s.acq_seen
                      && List.for_all
                           (fun b -> not (SS.mem b s.acq_dirty))
                           bases
                    then S s
                    else S { s with pulls = Ob.add (step.Cfg.pt, bases) s.pulls }
                | Instr.Push bases ->
                    if
                      s.st_seen
                      && List.for_all (fun b -> not (SS.mem b s.st_dirty)) bases
                    then S s
                    else
                      S { s with pushes = Ob.add (step.Cfg.pt, bases) s.pushes }
                | _ -> (
                    match Cfg.access_base ins with
                    | None -> S s
                    | Some b ->
                        let kill obs =
                          Ob.filter (fun (_, bs) -> not (List.mem b bs)) obs
                        in
                        let s =
                          { s with pulls = kill s.pulls; pushes = kill s.pushes }
                        in
                        let s =
                          if is_acquireish ins then
                            { s with acq_seen = true; acq_dirty = SS.empty }
                          else { s with acq_dirty = SS.add b s.acq_dirty }
                        in
                        S { s with st_dirty = SS.add b s.st_dirty }))

          let widen = join
        end in
        let g = Cfg.graph th.Prog.code in
        let fl = Absint.flow g in
        let module Sv = Absint.Solve (D) in
        let init =
          D.S
            { acq_seen = false;
              acq_dirty = SS.empty;
              st_seen = false;
              st_dirty = SS.empty;
              pulls = Ob.empty;
              pushes = Ob.empty }
        in
        let states, st = Sv.run ~live:fl.Absint.f_live g ~init in
        stats := Absint.add_stats fl.Absint.f_stats st :: !stats;
        let raws = ref [] in
        let fail_pull (pt, bases) =
          raws :=
            { Cfg.r_code = Diag.W002;
              r_path = pt;
              r_message = pull_msg bases;
              r_fix = pull_fix_str;
              r_definite = true }
            :: !raws
        in
        let fail_push (pt, bases) =
          raws :=
            { Cfg.r_code = Diag.W002;
              r_path = pt;
              r_message = push_msg bases;
              r_fix = push_fix_str;
              r_definite = true }
            :: !raws
        in
        Array.iteri
          (fun n succ ->
            match states.(n) with
            | D.Bot -> ()
            | D.S s ->
                List.iter
                  (fun (lbl, _) ->
                    match lbl with
                    | Cfg.L_ins step -> (
                        let ins = step.Cfg.ins in
                        match Cfg.access_base ins with
                        | Some b ->
                            if not (is_dmb_ld ins) then
                              Ob.iter
                                (fun ((_, bs) as o) ->
                                  if List.mem b bs then fail_pull o)
                                s.pulls;
                            if not (is_releaseish ins) then
                              Ob.iter
                                (fun ((_, bs) as o) ->
                                  if List.mem b bs then fail_push o)
                                s.pushes
                        | None -> ())
                    | _ -> ())
                  succ)
          g.Cfg.g_succ;
        (match states.(g.Cfg.g_exit) with
        | D.Bot -> ()
        | D.S s ->
            Ob.iter fail_pull s.pulls;
            Ob.iter fail_push s.pushes);
        Cfg.merge_raws ~tid:th.Prog.tid !raws)
      prog.Prog.threads
  in
  (diags, !stats)

(* W007 is already a single structural scan (no path enumeration), so
   both engines share it verbatim. *)
let run_fix (prog : Prog.t) : Diag.t list * Absint.stats list =
  let d2, stats = w002_fix prog in
  (Diag.sort (d2 @ w007 prog), stats)
