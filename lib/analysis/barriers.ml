open Memmodel

(* The adequacy predicates, kept textually in sync with Check_barrier
   (the harness enforces behavioral agreement in both directions). *)

let is_acquireish = function
  | Instr.Load (_, _, (Instr.Acquire | Instr.Acq_rel))
  | Instr.Faa (_, _, _, (Instr.Acquire | Instr.Acq_rel))
  | Instr.Xchg (_, _, _, (Instr.Acquire | Instr.Acq_rel))
  | Instr.Cas (_, _, _, _, (Instr.Acquire | Instr.Acq_rel))
  | Instr.Barrier (Instr.Dmb_full | Instr.Dmb_ld) ->
      true
  | _ -> false

let is_releaseish = function
  | Instr.Store (_, _, (Instr.Release | Instr.Acq_rel))
  | Instr.Faa (_, _, _, (Instr.Release | Instr.Acq_rel))
  | Instr.Xchg (_, _, _, (Instr.Release | Instr.Acq_rel))
  | Instr.Cas (_, _, _, _, (Instr.Release | Instr.Acq_rel))
  | Instr.Barrier (Instr.Dmb_full | Instr.Dmb_st) ->
      true
  | _ -> false

let is_dmb_ld = function
  | Instr.Barrier (Instr.Dmb_full | Instr.Dmb_ld) -> true
  | _ -> false

let is_dmb_st = function
  | Instr.Barrier (Instr.Dmb_full | Instr.Dmb_st) -> true
  | _ -> false

let touches bases (s : Cfg.step) =
  match Cfg.access_base s.Cfg.ins with
  | Some b -> List.mem b bases
  | None -> false

let scan_until pred bases steps =
  let rec go = function
    | [] -> false
    | (s : Cfg.step) :: rest ->
        if pred s.Cfg.ins then true
        else if touches bases s then false
        else go rest
  in
  go steps

let pull_fulfilled before after bases =
  scan_until is_acquireish bases before || scan_until is_dmb_ld bases after

let push_fulfilled before after bases =
  scan_until is_releaseish bases after || scan_until is_dmb_st bases before

let w002 (prog : Prog.t) : Diag.t list =
  List.concat_map
    (fun (th : Prog.thread) ->
      let bad = ref [] in
      List.iter
        (fun path ->
          let rec walk before = function
            | [] -> ()
            | (s : Cfg.step) :: rest ->
                (match s.Cfg.ins with
                | Instr.Pull bases
                  when not (pull_fulfilled before rest bases) ->
                    bad :=
                      { Diag.d_code = Diag.W002;
                        d_tid = th.Prog.tid;
                        d_path = s.Cfg.pt;
                        d_certainty = Diag.Definite;
                        d_message =
                          Printf.sprintf
                            "pull of {%s} not fulfilled by an acquire \
                             access or DMB(LD) on this path"
                            (String.concat ", " bases);
                        d_fix =
                          "make the lock-acquiring access \
                           acquire-flavored (LDAR / acquire RMW), or \
                           insert `dmb ld` between the pull and the \
                           first protected access" }
                      :: !bad
                | Instr.Push bases
                  when not (push_fulfilled before rest bases) ->
                    bad :=
                      { Diag.d_code = Diag.W002;
                        d_tid = th.Prog.tid;
                        d_path = s.Cfg.pt;
                        d_certainty = Diag.Definite;
                        d_message =
                          Printf.sprintf
                            "push of {%s} not fulfilled by a release \
                             access or DMB(ST) on this path"
                            (String.concat ", " bases);
                        d_fix =
                          "make the lock-releasing store \
                           release-flavored (STLR / release RMW), or \
                           insert `dmb st` between the last protected \
                           access and the push" }
                      :: !bad
                | _ -> ());
                walk (s :: before) rest
          in
          walk [] path)
        (Cfg.paths th.Prog.code);
      !bad)
    prog.Prog.threads

(* W007: ISB after control-dependent page-table reads. Registers loaded
   from a PT base are tainted; a branch on a tainted register whose body
   loads again, with no ISB in between, is advisory-flagged. *)
let w007 (prog : Prog.t) : Diag.t list =
  let rec branch_loads = function
    | [] -> false
    | Instr.Load _ :: _ -> true
    | Instr.If (_, a, b) :: rest ->
        branch_loads a || branch_loads b || branch_loads rest
    | Instr.While (_, body) :: rest -> branch_loads body || branch_loads rest
    | _ :: rest -> branch_loads rest
  in
  List.concat_map
    (fun (th : Prog.thread) ->
      let out = ref [] in
      let rec scan prefix k tainted = function
        | [] -> ()
        | ins :: rest ->
            let tainted' =
              match ins with
              | Instr.Load (r, a, _) when Cfg.is_pt_base a.Expr.abase ->
                  r :: tainted
              | Instr.Load (r, _, _) ->
                  List.filter (fun r' -> r' <> r) tainted
              | Instr.Barrier Instr.Isb -> []
              | Instr.Move (r, e) ->
                  if
                    List.exists
                      (fun r' -> List.mem r' tainted)
                      (Expr.regs_of_vexp e)
                  then r :: tainted
                  else List.filter (fun r' -> r' <> r) tainted
              | _ -> tainted
            in
            (match ins with
            | Instr.If (c, a, b) ->
                if
                  List.exists
                    (fun r' -> List.mem r' tainted)
                    (Expr.regs_of_bexp c)
                  && (branch_loads a || branch_loads b)
                then
                  out :=
                    { Diag.d_code = Diag.W007;
                      d_tid = th.Prog.tid;
                      d_path = prefix @ [ k ];
                      d_certainty = Diag.Possible;
                      d_message =
                        "branch on a value read from a page table is \
                         followed by loads with no ISB: the control \
                         dependency alone does not order them";
                      d_fix =
                        "insert `isb` between the page-table read and \
                         the dependent loads" }
                    :: !out;
                scan (prefix @ [ k; 0 ]) 0 tainted a;
                scan (prefix @ [ k; 1 ]) 0 tainted b
            | Instr.While (_, body) -> scan (prefix @ [ k; 0 ]) 0 tainted body
            | _ -> ());
            scan prefix (k + 1) tainted' rest
      in
      scan [] 0 [] th.Prog.code;
      !out)
    prog.Prog.threads

let run (prog : Prog.t) : Diag.t list = Diag.sort (w002 prog @ w007 prog)
