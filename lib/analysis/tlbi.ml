open Memmodel

let covers base = function
  | Instr.Tlbi None -> true
  | Instr.Tlbi (Some a) -> a.Expr.abase = base
  | _ -> false

let is_dmb_st = function
  | Instr.Barrier (Instr.Dmb_full | Instr.Dmb_st) -> true
  | _ -> false

(* After a live-entry store: is there a DMB(ST) and then a covering TLBI
   in [after]? Failing that, classify the defect shape. *)
type shape = Ok_seq | No_dmb | Tlbi_before | No_tlbi

let sequence_shape before after base =
  let rec scan dmb_seen = function
    | [] -> None
    | (s : Cfg.step) :: rest ->
        if covers base s.Cfg.ins then Some dmb_seen
        else scan (dmb_seen || is_dmb_st s.Cfg.ins) rest
  in
  match scan false after with
  | Some true -> Ok_seq
  | Some false -> No_dmb
  | None ->
      if List.exists (fun (s : Cfg.step) -> covers base s.Cfg.ins) before then
        Tlbi_before
      else No_tlbi

let guard_diag b =
  { Diag.d_code = Diag.W005;
    d_tid = 0;
    d_path = [];
    d_certainty = Diag.Possible;
    d_message =
      Printf.sprintf
        "stage-2 page-table base '%s' is written by multiple threads; \
         TLB invalidation cannot be decided per thread"
        b;
    d_fix =
      "serialize page-table updates for the base on one CPU, or rely on \
       the dynamic checker" }

let run (prog : Prog.t) : Diag.t list =
  let multi = Write_once.multi_writer_bases Cfg.is_s2_pt_base prog in
  let guard_diags = List.map guard_diag multi in
  let thread_diags =
    List.concat_map
      (fun (th : Prog.thread) ->
        let per_path =
          List.map
            (fun path ->
              let mem0 = Cfg.Amem.of_init ~pred:Cfg.is_s2_pt_base prog in
              let mem0 = List.fold_left Cfg.Amem.smudge_base mem0 multi in
              let rec walk mem before = function
                | [] -> []
                | (s : Cfg.step) :: rest -> (
                    match s.Cfg.ins with
                    | Instr.Store (a, v, _)
                      when Cfg.is_s2_pt_base a.Expr.abase -> (
                        let base = a.Expr.abase in
                        match Cfg.const_of_vexp a.Expr.offset with
                        | None ->
                            { Cfg.r_code = Diag.W005;
                              r_path = s.Cfg.pt;
                              r_message =
                                Printf.sprintf
                                  "store to '%s' at a non-constant offset; \
                                   TLB invalidation cannot be checked \
                                   statically"
                                  base;
                              r_fix =
                                "use a constant index for page-table \
                                 updates, or rely on the dynamic checker";
                              r_definite = false }
                            :: walk
                                 (Cfg.Amem.smudge_base mem base)
                                 (s :: before) rest
                        | Some off ->
                            let cell = (base, off) in
                            let prior = Cfg.Amem.read mem cell in
                            let raws =
                              match prior with
                              | Cfg.Amem.Known 0 -> []
                              | _ -> (
                                  let definite =
                                    match prior with
                                    | Cfg.Amem.Known _ -> true
                                    | Cfg.Amem.Unknown_val -> false
                                  in
                                  match sequence_shape before rest base with
                                  | Ok_seq -> []
                                  | No_dmb ->
                                      [ { Cfg.r_code = Diag.W005;
                                          r_path = s.Cfg.pt;
                                          r_message =
                                            Printf.sprintf
                                              "TLBI after the write to \
                                               %s[%d] is not ordered by a \
                                               DMB"
                                              base off;
                                          r_fix =
                                            "insert `dmb st` between the \
                                             page-table write and the TLBI";
                                          r_definite = definite } ]
                                  | Tlbi_before ->
                                      [ { Cfg.r_code = Diag.W005;
                                          r_path = s.Cfg.pt;
                                          r_message =
                                            Printf.sprintf
                                              "TLBI precedes the write to \
                                               %s[%d]; stale translations \
                                               survive the remap"
                                              base off;
                                          r_fix =
                                            "move the TLBI after the \
                                             page-table write, ordered by \
                                             `dmb st`";
                                          r_definite = definite } ]
                                  | No_tlbi ->
                                      [ { Cfg.r_code = Diag.W005;
                                          r_path = s.Cfg.pt;
                                          r_message =
                                            Printf.sprintf
                                              "%s[%d] remapped with no \
                                               TLBI on this path"
                                              base off;
                                          r_fix =
                                            "after the write: `dmb st; \
                                             tlbi` for the entry";
                                          r_definite = definite } ])
                            in
                            let av =
                              match Cfg.const_of_vexp v with
                              | Some n -> Cfg.Amem.Known n
                              | None -> Cfg.Amem.Unknown_val
                            in
                            raws
                            @ walk
                                (Cfg.Amem.write mem cell av)
                                (s :: before) rest)
                    | ins
                      when Cfg.is_rmw ins
                           && (match Cfg.access_base ins with
                              | Some b -> Cfg.is_s2_pt_base b
                              | None -> false) ->
                        let base = Option.get (Cfg.access_base ins) in
                        { Cfg.r_code = Diag.W005;
                          r_path = s.Cfg.pt;
                          r_message =
                            Printf.sprintf
                              "atomic update of page-table base '%s'; TLB \
                               invalidation cannot be checked statically"
                              base;
                          r_fix =
                            "update page-table entries with plain stores \
                             checked statically, or rely on the dynamic \
                             checker";
                          r_definite = false }
                        :: walk
                             (Cfg.Amem.smudge_base mem base)
                             (s :: before) rest
                    | _ -> walk mem (s :: before) rest)
              in
              walk mem0 [] path)
            (Cfg.paths th.Prog.code)
        in
        Cfg.classify ~tid:th.Prog.tid ~per_path)
      prog.Prog.threads
  in
  Diag.sort (guard_diags @ thread_diags)

(* ------------------------------------------------------------------ *)
(* Fixpoint engine.                                                    *)
(* ------------------------------------------------------------------ *)

(* A live-entry store opens a pending obligation; the flags record what
   must be true of every path carrying it. [ob_must] is seeded with the
   definite-reachedness of the store and drops when a joining path does
   not carry the obligation, reproducing the bounded engine's
   every-path promotion rule without enumerating paths. *)
type ob = {
  ob_def : bool;  (** prior value was a known non-zero on every path *)
  ob_must : bool;  (** obligation is live on every path *)
  ob_dmb_must : bool;  (** a DMB(ST) intervened on every path *)
  ob_dmb_may : bool;  (** a DMB(ST) intervened on some path *)
}

module ObMap = Map.Make (struct
  type t = int list * string * int (* store point, base, offset *)

  let compare = Stdlib.compare
end)

module CovSet = Set.Make (struct
  type t = string option (* TLBI operand base; None = covers everything *)

  let compare = Stdlib.compare
end)

let cov_covers base cov = CovSet.mem None cov || CovSet.mem (Some base) cov

let msg_no_dmb base off =
  Printf.sprintf "TLBI after the write to %s[%d] is not ordered by a DMB"
    base off

let fix_no_dmb = "insert `dmb st` between the page-table write and the TLBI"

let msg_tlbi_before base off =
  Printf.sprintf
    "TLBI precedes the write to %s[%d]; stale translations survive the \
     remap"
    base off

let fix_tlbi_before =
  "move the TLBI after the page-table write, ordered by `dmb st`"

let msg_no_tlbi base off =
  Printf.sprintf "%s[%d] remapped with no TLBI on this path" base off

let fix_no_tlbi = "after the write: `dmb st; tlbi` for the entry"

let run_fix (prog : Prog.t) : Diag.t list * Absint.stats list =
  let multi = Write_once.multi_writer_bases Cfg.is_s2_pt_base prog in
  let guard_diags = List.map guard_diag multi in
  let init_mem = Cfg.Amem.of_init ~pred:Cfg.is_s2_pt_base prog in
  let default cell = Cfg.Amem.read init_mem cell in
  let stats = ref [] in
  let thread_diags =
    List.concat_map
      (fun (th : Prog.thread) ->
        let g = Cfg.graph th.Prog.code in
        let fl = Absint.flow g in
        (* definite-reachedness per structural store point: peeled loop
           copies share a point, so a point is must-reached only if
           every reachable copy is. *)
        let pt_dr = Hashtbl.create 16 in
        Array.iteri
          (fun n succ ->
            if fl.Absint.f_reachable n then
              List.iter
                (fun (lbl, _) ->
                  match lbl with
                  | Cfg.L_ins s ->
                      let cur =
                        try Hashtbl.find pt_dr s.Cfg.pt with Not_found -> true
                      in
                      Hashtbl.replace pt_dr s.Cfg.pt (cur && fl.Absint.f_dr n)
                  | _ -> ())
                succ)
          g.Cfg.g_succ;
        let dr_of_pt pt = try Hashtbl.find pt_dr pt with Not_found -> false in
        let module D = struct
          type state = {
            mem : Absint.Mem.t;
            pend : ob ObMap.t;
            cov_must : CovSet.t;
            cov_may : CovSet.t;
          }

          type t = Bot | S of state

          let bottom = Bot

          let ob_join a b =
            { ob_def = a.ob_def && b.ob_def;
              ob_must = a.ob_must && b.ob_must;
              ob_dmb_must = a.ob_dmb_must && b.ob_dmb_must;
              ob_dmb_may = a.ob_dmb_may || b.ob_dmb_may }

          let join a b =
            match (a, b) with
            | Bot, x | x, Bot -> x
            | S a, S b ->
                S
                  { mem = Absint.Mem.join a.mem b.mem;
                    pend =
                      ObMap.merge
                        (fun _ oa obo ->
                          match (oa, obo) with
                          | Some x, Some y -> Some (ob_join x y)
                          | Some x, None | None, Some x ->
                              Some { x with ob_must = false }
                          | None, None -> None)
                        a.pend b.pend;
                    cov_must = CovSet.inter a.cov_must b.cov_must;
                    cov_may = CovSet.union a.cov_may b.cov_may }

          let ob_leq a b =
            b.ob_def <= a.ob_def
            && b.ob_must <= a.ob_must
            && b.ob_dmb_must <= a.ob_dmb_must
            && a.ob_dmb_may <= b.ob_dmb_may

          let leq a b =
            match (a, b) with
            | Bot, _ -> true
            | S _, Bot -> false
            | S a, S b ->
                Absint.Mem.leq a.mem b.mem
                && ObMap.for_all
                     (fun k oa ->
                       match ObMap.find_opt k b.pend with
                       | Some ob -> ob_leq oa ob
                       | None -> false)
                     a.pend
                && CovSet.subset b.cov_must a.cov_must
                && CovSet.subset a.cov_may b.cov_may

          let transfer lbl t =
            match (t, lbl) with
            | Bot, _ | _, (Cfg.L_skip | Cfg.L_guard _) -> t
            | S s, Cfg.L_ins step -> (
                let ins = step.Cfg.ins in
                match ins with
                | _ when is_dmb_st ins ->
                    S
                      { s with
                        pend =
                          ObMap.map
                            (fun o ->
                              { o with ob_dmb_must = true; ob_dmb_may = true })
                            s.pend }
                | Instr.Tlbi operand ->
                    let key =
                      match operand with
                      | None -> None
                      | Some a -> Some a.Expr.abase
                    in
                    S
                      { s with
                        pend =
                          ObMap.filter
                            (fun (_, base, _) _ -> not (covers base ins))
                            s.pend;
                        cov_must = CovSet.add key s.cov_must;
                        cov_may = CovSet.add key s.cov_may }
                | Instr.Store (a, v, _) when Cfg.is_s2_pt_base a.Expr.abase
                  -> (
                    let base = a.Expr.abase in
                    match Cfg.const_of_vexp a.Expr.offset with
                    | None -> S { s with mem = Absint.Mem.smudge s.mem base }
                    | Some off ->
                        let prior = Absint.Mem.read s.mem (base, off) in
                        let pend =
                          match prior with
                          | Cfg.Amem.Known 0 -> s.pend
                          | _ ->
                              let definite =
                                match prior with
                                | Cfg.Amem.Known _ -> true
                                | Cfg.Amem.Unknown_val -> false
                              in
                              ObMap.add
                                (step.Cfg.pt, base, off)
                                { ob_def = definite;
                                  ob_must = definite && dr_of_pt step.Cfg.pt;
                                  ob_dmb_must = false;
                                  ob_dmb_may = false }
                                s.pend
                        in
                        let av =
                          match Cfg.const_of_vexp v with
                          | Some n -> Cfg.Amem.Known n
                          | None -> Cfg.Amem.Unknown_val
                        in
                        S
                          { s with
                            pend;
                            mem = Absint.Mem.write s.mem (base, off) av })
                | ins
                  when Cfg.is_rmw ins
                       && (match Cfg.access_base ins with
                          | Some b -> Cfg.is_s2_pt_base b
                          | None -> false) ->
                    S
                      { s with
                        mem =
                          Absint.Mem.smudge s.mem
                            (Option.get (Cfg.access_base ins)) }
                | _ -> t)

          let widen = join
        end in
        let module Sv = Absint.Solve (D) in
        let init =
          D.S
            { mem = Absint.Mem.init ~default ~smudged:multi;
              pend = ObMap.empty;
              cov_must = CovSet.empty;
              cov_may = CovSet.empty }
        in
        let states, st = Sv.run ~live:fl.Absint.f_live g ~init in
        stats := Absint.add_stats fl.Absint.f_stats st :: !stats;
        let raws = ref [] in
        let emit r = raws := r :: !raws in
        Array.iteri
          (fun n succ ->
            match states.(n) with
            | D.Bot -> ()
            | D.S s ->
                List.iter
                  (fun (lbl, _) ->
                    match lbl with
                    | Cfg.L_ins step -> (
                        match step.Cfg.ins with
                        | Instr.Tlbi _ ->
                            ObMap.iter
                              (fun (pt, base, off) o ->
                                if covers base step.Cfg.ins && not o.ob_dmb_must
                                then
                                  emit
                                    { Cfg.r_code = Diag.W005;
                                      r_path = pt;
                                      r_message = msg_no_dmb base off;
                                      r_fix = fix_no_dmb;
                                      r_definite =
                                        o.ob_def && o.ob_must
                                        && (not o.ob_dmb_may)
                                        && fl.Absint.f_dr n })
                              s.D.pend
                        | Instr.Store (a, _, _)
                          when Cfg.is_s2_pt_base a.Expr.abase -> (
                            let base = a.Expr.abase in
                            match Cfg.const_of_vexp a.Expr.offset with
                            | None ->
                                emit
                                  { Cfg.r_code = Diag.W005;
                                    r_path = step.Cfg.pt;
                                    r_message =
                                      Printf.sprintf
                                        "store to '%s' at a non-constant \
                                         offset; TLB invalidation cannot be \
                                         checked statically"
                                        base;
                                    r_fix =
                                      "use a constant index for page-table \
                                       updates, or rely on the dynamic \
                                       checker";
                                    r_definite = false }
                            | Some _ -> ())
                        | ins
                          when Cfg.is_rmw ins
                               && (match Cfg.access_base ins with
                                  | Some b -> Cfg.is_s2_pt_base b
                                  | None -> false) ->
                            emit
                              { Cfg.r_code = Diag.W005;
                                r_path = step.Cfg.pt;
                                r_message =
                                  Printf.sprintf
                                    "atomic update of page-table base '%s'; \
                                     TLB invalidation cannot be checked \
                                     statically"
                                    (Option.get (Cfg.access_base ins));
                                r_fix =
                                  "update page-table entries with plain \
                                   stores checked statically, or rely on \
                                   the dynamic checker";
                                r_definite = false }
                        | _ -> ())
                    | _ -> ())
                  succ)
          g.Cfg.g_succ;
        (match states.(g.Cfg.g_exit) with
        | D.Bot -> ()
        | D.S s ->
            ObMap.iter
              (fun (pt, base, off) o ->
                if cov_covers base s.D.cov_may then
                  emit
                    { Cfg.r_code = Diag.W005;
                      r_path = pt;
                      r_message = msg_tlbi_before base off;
                      r_fix = fix_tlbi_before;
                      r_definite =
                        o.ob_def && o.ob_must && cov_covers base s.D.cov_must }
                else
                  emit
                    { Cfg.r_code = Diag.W005;
                      r_path = pt;
                      r_message = msg_no_tlbi base off;
                      r_fix = fix_no_tlbi;
                      r_definite = o.ob_def && o.ob_must })
              s.D.pend);
        Cfg.merge_raws ~tid:th.Prog.tid !raws)
      prog.Prog.threads
  in
  (Diag.sort (guard_diags @ thread_diags), !stats)
