open Memmodel

let covers base = function
  | Instr.Tlbi None -> true
  | Instr.Tlbi (Some a) -> a.Expr.abase = base
  | _ -> false

let is_dmb_st = function
  | Instr.Barrier (Instr.Dmb_full | Instr.Dmb_st) -> true
  | _ -> false

(* After a live-entry store: is there a DMB(ST) and then a covering TLBI
   in [after]? Failing that, classify the defect shape. *)
type shape = Ok_seq | No_dmb | Tlbi_before | No_tlbi

let sequence_shape before after base =
  let rec scan dmb_seen = function
    | [] -> None
    | (s : Cfg.step) :: rest ->
        if covers base s.Cfg.ins then Some dmb_seen
        else scan (dmb_seen || is_dmb_st s.Cfg.ins) rest
  in
  match scan false after with
  | Some true -> Ok_seq
  | Some false -> No_dmb
  | None ->
      if List.exists (fun (s : Cfg.step) -> covers base s.Cfg.ins) before then
        Tlbi_before
      else No_tlbi

let run (prog : Prog.t) : Diag.t list =
  let multi = Write_once.multi_writer_bases Cfg.is_s2_pt_base prog in
  let guard_diags =
    List.map
      (fun b ->
        { Diag.d_code = Diag.W005;
          d_tid = 0;
          d_path = [];
          d_certainty = Diag.Possible;
          d_message =
            Printf.sprintf
              "stage-2 page-table base '%s' is written by multiple \
               threads; TLB invalidation cannot be decided per thread"
              b;
          d_fix =
            "serialize page-table updates for the base on one CPU, or \
             rely on the dynamic checker" })
      multi
  in
  let thread_diags =
    List.concat_map
      (fun (th : Prog.thread) ->
        let per_path =
          List.map
            (fun path ->
              let mem0 = Cfg.Amem.of_init ~pred:Cfg.is_s2_pt_base prog in
              let mem0 = List.fold_left Cfg.Amem.smudge_base mem0 multi in
              let rec walk mem before = function
                | [] -> []
                | (s : Cfg.step) :: rest -> (
                    match s.Cfg.ins with
                    | Instr.Store (a, v, _)
                      when Cfg.is_s2_pt_base a.Expr.abase -> (
                        let base = a.Expr.abase in
                        match Cfg.const_of_vexp a.Expr.offset with
                        | None ->
                            { Cfg.r_code = Diag.W005;
                              r_path = s.Cfg.pt;
                              r_message =
                                Printf.sprintf
                                  "store to '%s' at a non-constant offset; \
                                   TLB invalidation cannot be checked \
                                   statically"
                                  base;
                              r_fix =
                                "use a constant index for page-table \
                                 updates, or rely on the dynamic checker";
                              r_definite = false }
                            :: walk
                                 (Cfg.Amem.smudge_base mem base)
                                 (s :: before) rest
                        | Some off ->
                            let cell = (base, off) in
                            let prior = Cfg.Amem.read mem cell in
                            let raws =
                              match prior with
                              | Cfg.Amem.Known 0 -> []
                              | _ -> (
                                  let definite =
                                    match prior with
                                    | Cfg.Amem.Known _ -> true
                                    | Cfg.Amem.Unknown_val -> false
                                  in
                                  match sequence_shape before rest base with
                                  | Ok_seq -> []
                                  | No_dmb ->
                                      [ { Cfg.r_code = Diag.W005;
                                          r_path = s.Cfg.pt;
                                          r_message =
                                            Printf.sprintf
                                              "TLBI after the write to \
                                               %s[%d] is not ordered by a \
                                               DMB"
                                              base off;
                                          r_fix =
                                            "insert `dmb st` between the \
                                             page-table write and the TLBI";
                                          r_definite = definite } ]
                                  | Tlbi_before ->
                                      [ { Cfg.r_code = Diag.W005;
                                          r_path = s.Cfg.pt;
                                          r_message =
                                            Printf.sprintf
                                              "TLBI precedes the write to \
                                               %s[%d]; stale translations \
                                               survive the remap"
                                              base off;
                                          r_fix =
                                            "move the TLBI after the \
                                             page-table write, ordered by \
                                             `dmb st`";
                                          r_definite = definite } ]
                                  | No_tlbi ->
                                      [ { Cfg.r_code = Diag.W005;
                                          r_path = s.Cfg.pt;
                                          r_message =
                                            Printf.sprintf
                                              "%s[%d] remapped with no \
                                               TLBI on this path"
                                              base off;
                                          r_fix =
                                            "after the write: `dmb st; \
                                             tlbi` for the entry";
                                          r_definite = definite } ])
                            in
                            let av =
                              match Cfg.const_of_vexp v with
                              | Some n -> Cfg.Amem.Known n
                              | None -> Cfg.Amem.Unknown_val
                            in
                            raws
                            @ walk
                                (Cfg.Amem.write mem cell av)
                                (s :: before) rest)
                    | ins
                      when Cfg.is_rmw ins
                           && (match Cfg.access_base ins with
                              | Some b -> Cfg.is_s2_pt_base b
                              | None -> false) ->
                        let base = Option.get (Cfg.access_base ins) in
                        { Cfg.r_code = Diag.W005;
                          r_path = s.Cfg.pt;
                          r_message =
                            Printf.sprintf
                              "atomic update of page-table base '%s'; TLB \
                               invalidation cannot be checked statically"
                              base;
                          r_fix =
                            "update page-table entries with plain stores \
                             checked statically, or rely on the dynamic \
                             checker";
                          r_definite = false }
                        :: walk
                             (Cfg.Amem.smudge_base mem base)
                             (s :: before) rest
                    | _ -> walk mem (s :: before) rest)
              in
              walk mem0 [] path)
            (Cfg.paths th.Prog.code)
        in
        Cfg.classify ~tid:th.Prog.tid ~per_path)
      prog.Prog.threads
  in
  Diag.sort (guard_diags @ thread_diags)
