(** W001 — lockset-style static race detection (Eraser's discipline over
    the push/pull DSL).

    Per thread, ownership of tracked bases (shared minus exempt) is
    simulated along every control-flow path: an access to a tracked base
    the thread does not currently own is a W001 finding — [Definite] when
    it happens on every path, since every SC interleaving then exhibits
    the unowned access and the dynamic DRF checker panics.

    Whole-program, the pass proves that claims on each tracked base are
    mutually exclusive: at most one claimant (puller or initial owner), or
    every pull lock-guarded — preceded, scanning backward past
    lock-internal accesses only, by an atomic RMW on one common exempt
    base — and matched by a push before any exempt base is written (the
    lock cannot be released inside the bracket). Anything else (flag
    protocols, hand-offs) is a [Possible] finding: the verdict degrades to
    Unknown and the service falls back to exhaustive exploration. *)

open Memmodel

val run :
  exempt:string list ->
  initial_owners:(string * int) list ->
  Prog.t ->
  Diag.t list
(** Bounded-path engine (path enumeration, loops unrolled 0/1). *)

val run_fix :
  exempt:string list ->
  initial_owners:(string * int) list ->
  Prog.t ->
  Diag.t list * Absint.stats list
(** Fixpoint engine: a must/may owned-set lattice replaces per-path
    ownership simulation ([Definite] = unowned on the may-set at a
    definitely-reached access), and the whole-program claim check runs
    on a forward guard/balance domain instead of per-path scans. *)
