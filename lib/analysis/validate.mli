(** Soundness cross-validation: the static analyzer against the dynamic
    checkers, over the whole corpus (certified, buggy, boundary and lint
    entries).

    Per entry, five checks:

    + static DRF (worst of lockset and ownership) vs {!Vrm.Check_drf}:
      [Pass] ⇒ holds, [Fail] ⇒ ¬holds, [Unknown] ⇒ the dynamic outcome
      matches the entry's expectation;
    + static barriers vs {!Vrm.Check_barrier}, same contract;
    + static refinement vs {!Vrm.Refinement} — [Pass] ⇒ holds (it is
      never [Fail]);
    + when {!Replay.relevant}, per-code agreement for W003/W004/W005
      against the trace-replay referee: static [Fail] ⇒ a replay finding
      with that code exists, static [Pass] ⇒ none;
    + the entry's [Definite] code set equals the pinned expectation from
      {!Sekvm.Kernel_progs.lint_expectations} (a missing table entry is
      itself a failure).

    Three engine-comparison checks ride along (the entry is analyzed
    under both {!Driver.engine}s):

    + {e engine-parity}: per-pass verdicts agree exactly, except on the
      passes pinned for the entry in
      {!Sekvm.Kernel_progs.lint_divergences};
    + {e engine-sound}: the fixpoint verdict is never weaker than the
      bounded one on any pass (a pinned divergence may only make it more
      severe);
    + {e expected-bnd}: the bounded engine's [Definite] code set matches
      {!Sekvm.Kernel_progs.lint_expectations_bounded}, defaulting to the
      shared table.

    Any disagreement fails the suite: either the analyzer claimed too
    much (unsound) or a seeded bug went unreported (incomplete). *)

type check = { c_name : string; c_ok : bool; c_detail : string }

type report = {
  r_entry : string;  (** corpus entry name *)
  r_checks : check list;
}

val ok : report -> bool
val entry : Sekvm.Kernel_progs.entry -> report
val corpus : unit -> report list

val all_ok : report list -> bool
val pp_report : Format.formatter -> report -> unit
