(** Composition of the wDRF lint passes into one static certificate.

    Verdict semantics per pass: [Fail] iff some diagnostic is [Definite]
    (a dynamic witness is guaranteed), [Unknown] iff only [Possible]
    diagnostics remain, [Pass] iff none.

    Two interchangeable engines drive the per-thread passes. [Bounded]
    is the original path enumerator: every branch doubles the path set
    and loops are unrolled at most once, so it is exact on loop-free
    programs but exponential in branching and blind past the first loop
    iteration. [Fixpoint] runs each pass as an abstract-interpretation
    dataflow problem over the thread CFG ({!Absint}): linear-ish in
    program size, sound on loops via widening, and [Definite] only at
    definitely-reached program points. The two engines agree on every
    corpus entry except those explicitly pinned as bounded blind spots
    ({!Sekvm.Kernel_progs.lint_expectations_bounded}); {!Validate}
    checks the agreement, and that the fixpoint verdict is never less
    sound than the bounded one.

    The delay pass (W008, {!Delay}) is structural and engine-independent:
    it runs identically under both engines.

    [a_refinement] is the static counterpart of Theorem 2 — [Pass] only
    when the lockset, ownership and barrier passes all pass {e and} every
    exempt base touched by more than one thread is recognizably a lock
    internal; it is never [Fail] (the analyzer cannot statically exhibit
    a non-SC behavior), degrading to [Unknown] instead. The service only
    skips exploration when both [a_overall] and [a_refinement] are
    [Pass]. *)

open Memmodel

(** Analyzer version, folded into service cache keys so a lint upgrade
    invalidates statically served results. *)
val version : string

type engine = Bounded | Fixpoint

val engine_name : engine -> string

type pass = {
  p_name : string;
  p_verdict : Diag.verdict;
  p_diags : Diag.t list;
  p_ms : float;  (** wall time of the pass, milliseconds *)
  p_stats : Absint.stats;
      (** summed over the thread CFGs; zero for structural passes and
          for the bounded engine *)
}

type t = {
  a_name : string;
  a_prog_digest : string;  (** {!Memmodel.Fingerprint.prog} *)
  a_engine : engine;
  a_passes : pass list;
  a_overall : Diag.verdict;
  a_refinement : Diag.verdict;
}

val analyze_prog :
  ?engine:engine ->
  ?exempt:string list ->
  ?initial_owners:(string * int) list ->
  name:string ->
  Prog.t ->
  t
(** [engine] defaults to [Fixpoint]. *)

val analyze : ?engine:engine -> Sekvm.Kernel_progs.entry -> t

val diags : t -> Diag.t list
(** All diagnostics, in the deterministic {!Diag.compare} order. *)

val definite_codes : t -> string list
(** Sorted, deduplicated code names of the [Definite] diagnostics — what
    the corpus expectation table pins down per entry. *)

val pass_verdict : t -> string -> Diag.verdict
(** Verdict of the named pass ([Pass] if the name is unknown). *)

val code_verdict : t -> Diag.code -> Diag.verdict
(** Verdict restricted to one warning code across all passes. *)

val to_json : t -> Cache.Json.t
val pp : Format.formatter -> t -> unit

val pp_stats : Format.formatter -> t -> unit
(** Per-pass wall time and solver statistics ([vrm-cli lint --stats]). *)

val to_program_summary :
  expect:Sekvm.Kernel_progs.expect -> t -> Vrm.Certificate.program_summary option
(** The cacheable summary a static [Pass] stands in for — [None] when any
    of the DRF / barrier / refinement verdicts is [Unknown] (the service
    must fall back to exploration). *)
