(** W002/W007 — barrier-placement lint.

    W002 mirrors {!Vrm.Check_barrier} exactly (same path enumeration,
    same acquire/release adequacy rules), but reports structured
    diagnostics with positions and fixes. A W002 finding is [Definite]
    even when confined to one control-flow path, because the dynamic
    referee for this condition is itself path-based: a statically
    unfulfilled pull/push on some path is precisely a
    [Check_barrier] violation on that path. Consequently

    - W002 absent  ⟺  [Check_barrier.check] holds,

    which the cross-validation harness asserts in both directions.

    W007 is advisory and always [Possible]: a load from a page-table base
    taints its destination register; a branch on a tainted register whose
    body performs further loads, with no [ISB] since the tainted load,
    is flagged (the control dependency alone does not order the later
    loads on Arm). *)

open Memmodel

val run : Prog.t -> Diag.t list
(** Bounded-path engine. *)

val run_fix : Prog.t -> Diag.t list * Absint.stats list
(** Fixpoint engine: the backward adequacy scans become a must-flag +
    may-dirty-set lattice, the forward scans become pending obligations
    resolved by the fulfilling barrier or reported at the first
    annotated-base access / thread exit. W007 (a linear structural
    scan) is shared verbatim with the bounded engine. *)
