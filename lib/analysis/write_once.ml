open Memmodel

(* Bases matching [pred] that [th] writes anywhere (structurally). *)
let written_bases pred (th : Prog.thread) =
  let rec go acc = function
    | [] -> acc
    | ins :: rest ->
        let acc =
          match ins with
          | Instr.If (_, a, b) -> go (go acc a) b
          | Instr.While (_, body) -> go acc body
          | _ -> (
              match Cfg.access_base ins with
              | Some b when Cfg.writes_mem ins && pred b -> b :: acc
              | _ -> acc)
        in
        go acc rest
  in
  List.sort_uniq compare (go [] th.Prog.code)

(* EL2 bases written by two or more threads: per-thread constant tracking
   is unsound there, so the whole base degrades to [Possible]. *)
let multi_writer_bases pred (prog : Prog.t) =
  let per_thread = List.map (written_bases pred) prog.Prog.threads in
  List.sort_uniq compare (List.concat per_thread)
  |> List.filter (fun b ->
         List.length (List.filter (fun ws -> List.mem b ws) per_thread) >= 2)

let guard_diag b =
  { Diag.d_code = Diag.W003;
    d_tid = 0;
    d_path = [];
    d_certainty = Diag.Possible;
    d_message =
      Printf.sprintf
        "kernel mapping base '%s' is written by multiple threads; \
         write-once cannot be decided per thread"
        b;
    d_fix =
      "route all mapping installs for the base through one CPU, or rely \
       on the dynamic checker" }

let run (prog : Prog.t) : Diag.t list =
  let multi = multi_writer_bases Cfg.is_el2_base prog in
  let guard_diags = List.map guard_diag multi in
  let thread_diags =
    List.concat_map
      (fun (th : Prog.thread) ->
        let per_path =
          List.map
            (fun path ->
              let mem0 = Cfg.Amem.of_init ~pred:Cfg.is_el2_base prog in
              let mem0 = List.fold_left Cfg.Amem.smudge_base mem0 multi in
              let _, _, raws =
                List.fold_left
                  (fun (mem, depth, raws) (s : Cfg.step) ->
                    match s.Cfg.ins with
                    | Instr.Pull _ -> (mem, depth + 1, raws)
                    | Instr.Push _ -> (mem, max 0 (depth - 1), raws)
                    | Instr.Store (a, v, _)
                      when Cfg.is_el2_base a.Expr.abase -> (
                        let base = a.Expr.abase in
                        match Cfg.const_of_vexp a.Expr.offset with
                        | None ->
                            ( Cfg.Amem.smudge_base mem base,
                              depth,
                              { Cfg.r_code = Diag.W003;
                                r_path = s.Cfg.pt;
                                r_message =
                                  Printf.sprintf
                                    "store to '%s' at a non-constant \
                                     offset; write-once cannot be checked \
                                     statically"
                                    base;
                                r_fix =
                                  "use a constant index for kernel-mapping \
                                   installs, or rely on the dynamic checker";
                                r_definite = false }
                              :: raws )
                        | Some off ->
                            let cell = (base, off) in
                            let prior = Cfg.Amem.read mem cell in
                            let raws =
                              match prior with
                              | _ when depth > 0 -> raws
                              | Cfg.Amem.Known 0 -> raws
                              | Cfg.Amem.Known _ ->
                                  { Cfg.r_code = Diag.W003;
                                    r_path = s.Cfg.pt;
                                    r_message =
                                      Printf.sprintf
                                        "kernel mapping %s[%d] overwritten \
                                         outside a transactional section"
                                        base off;
                                    r_fix =
                                      "install each kernel mapping exactly \
                                       once, or wrap the remap in a \
                                       pull/push section";
                                    r_definite = true }
                                  :: raws
                              | Cfg.Amem.Unknown_val ->
                                  { Cfg.r_code = Diag.W003;
                                    r_path = s.Cfg.pt;
                                    r_message =
                                      Printf.sprintf
                                        "store to %s[%d] may overwrite an \
                                         existing kernel mapping"
                                        base off;
                                    r_fix =
                                      "install each kernel mapping exactly \
                                       once, or rely on the dynamic checker";
                                    r_definite = false }
                                  :: raws
                            in
                            let av =
                              match Cfg.const_of_vexp v with
                              | Some n -> Cfg.Amem.Known n
                              | None -> Cfg.Amem.Unknown_val
                            in
                            (Cfg.Amem.write mem cell av, depth, raws))
                    | ins
                      when Cfg.is_rmw ins
                           && (match Cfg.access_base ins with
                              | Some b -> Cfg.is_el2_base b
                              | None -> false) ->
                        let base = Option.get (Cfg.access_base ins) in
                        ( Cfg.Amem.smudge_base mem base,
                          depth,
                          { Cfg.r_code = Diag.W003;
                            r_path = s.Cfg.pt;
                            r_message =
                              Printf.sprintf
                                "atomic update of kernel-mapping base '%s'; \
                                 write-once cannot be checked statically"
                                base;
                            r_fix =
                              "install kernel mappings with plain stores \
                               checked statically, or rely on the dynamic \
                               checker";
                            r_definite = false }
                          :: raws )
                    | _ -> (mem, depth, raws))
                  (mem0, 0, []) path
              in
              raws)
            (Cfg.paths th.Prog.code)
        in
        Cfg.classify ~tid:th.Prog.tid ~per_path)
      prog.Prog.threads
  in
  Diag.sort (guard_diags @ thread_diags)

(* ------------------------------------------------------------------ *)
(* Fixpoint engine.                                                    *)
(* ------------------------------------------------------------------ *)

(* Pull/push nesting depth becomes an interval [dmin, dmax]; a loop
   that pulls without pushing widens dmax to "unbounded". A store is
   silent when dmin > 0 (inside a section on every path), Definite when
   the must-prior value is a known nonzero, dmax = 0 and the store is
   definitely reached — i.e. every run overwrites. *)
let inf_depth = max_int asr 1

let run_fix (prog : Prog.t) : Diag.t list * Absint.stats list =
  let multi = multi_writer_bases Cfg.is_el2_base prog in
  let guard_diags = List.map guard_diag multi in
  let init_mem = Cfg.Amem.of_init ~pred:Cfg.is_el2_base prog in
  let default cell = Cfg.Amem.read init_mem cell in
  let stats = ref [] in
  let thread_diags =
    List.concat_map
      (fun (th : Prog.thread) ->
        let module D = struct
          type t = Bot | S of Absint.Mem.t * int * int

          let bottom = Bot

          let join a b =
            match (a, b) with
            | Bot, x | x, Bot -> x
            | S (m1, lo1, hi1), S (m2, lo2, hi2) ->
                S (Absint.Mem.join m1 m2, min lo1 lo2, max hi1 hi2)

          let leq a b =
            match (a, b) with
            | Bot, _ -> true
            | S _, Bot -> false
            | S (m1, lo1, hi1), S (m2, lo2, hi2) ->
                Absint.Mem.leq m1 m2 && lo2 <= lo1 && hi1 <= hi2

          let transfer lbl t =
            match (t, lbl) with
            | Bot, _ | _, (Cfg.L_skip | Cfg.L_guard _) -> t
            | S (m, lo, hi), Cfg.L_ins s -> (
                match s.Cfg.ins with
                | Instr.Pull _ -> S (m, lo + 1, min inf_depth (hi + 1))
                | Instr.Push _ -> S (m, max 0 (lo - 1), max 0 (hi - 1))
                | Instr.Store (a, v, _) when Cfg.is_el2_base a.Expr.abase -> (
                    let base = a.Expr.abase in
                    match Cfg.const_of_vexp a.Expr.offset with
                    | None -> S (Absint.Mem.smudge m base, lo, hi)
                    | Some off ->
                        let av =
                          match Cfg.const_of_vexp v with
                          | Some n -> Cfg.Amem.Known n
                          | None -> Cfg.Amem.Unknown_val
                        in
                        S (Absint.Mem.write m (base, off) av, lo, hi))
                | ins
                  when Cfg.is_rmw ins
                       && (match Cfg.access_base ins with
                          | Some b -> Cfg.is_el2_base b
                          | None -> false) ->
                    S (Absint.Mem.smudge m (Option.get (Cfg.access_base ins)), lo, hi)
                | _ -> t)

          let widen a b =
            match (a, b) with
            | Bot, x | x, Bot -> x
            | S (m1, lo1, hi1), S (m2, lo2, hi2) ->
                S
                  ( Absint.Mem.join m1 m2,
                    min lo1 lo2,
                    if hi2 > hi1 then inf_depth else hi1 )
        end in
        let g = Cfg.graph th.Prog.code in
        let fl = Absint.flow g in
        let module Sv = Absint.Solve (D) in
        let init = D.S (Absint.Mem.init ~default ~smudged:multi, 0, 0) in
        let states, st = Sv.run ~live:fl.Absint.f_live g ~init in
        stats := Absint.add_stats fl.Absint.f_stats st :: !stats;
        let raws = ref [] in
        let emit r = raws := r :: !raws in
        Array.iteri
          (fun n succ ->
            match states.(n) with
            | D.Bot -> ()
            | D.S (m, lo, hi) ->
                List.iter
                  (fun (lbl, _) ->
                    match lbl with
                    | Cfg.L_ins s -> (
                        match s.Cfg.ins with
                        | Instr.Store (a, _, _)
                          when Cfg.is_el2_base a.Expr.abase -> (
                            let base = a.Expr.abase in
                            match Cfg.const_of_vexp a.Expr.offset with
                            | None ->
                                emit
                                  { Cfg.r_code = Diag.W003;
                                    r_path = s.Cfg.pt;
                                    r_message =
                                      Printf.sprintf
                                        "store to '%s' at a non-constant \
                                         offset; write-once cannot be \
                                         checked statically"
                                        base;
                                    r_fix =
                                      "use a constant index for \
                                       kernel-mapping installs, or rely on \
                                       the dynamic checker";
                                    r_definite = false }
                            | Some off -> (
                                if lo = 0 then
                                  match Absint.Mem.read m (base, off) with
                                  | Cfg.Amem.Known 0 -> ()
                                  | Cfg.Amem.Known _ ->
                                      emit
                                        { Cfg.r_code = Diag.W003;
                                          r_path = s.Cfg.pt;
                                          r_message =
                                            Printf.sprintf
                                              "kernel mapping %s[%d] \
                                               overwritten outside a \
                                               transactional section"
                                              base off;
                                          r_fix =
                                            "install each kernel mapping \
                                             exactly once, or wrap the \
                                             remap in a pull/push section";
                                          r_definite =
                                            hi = 0 && fl.Absint.f_dr n }
                                  | Cfg.Amem.Unknown_val ->
                                      emit
                                        { Cfg.r_code = Diag.W003;
                                          r_path = s.Cfg.pt;
                                          r_message =
                                            Printf.sprintf
                                              "store to %s[%d] may \
                                               overwrite an existing kernel \
                                               mapping"
                                              base off;
                                          r_fix =
                                            "install each kernel mapping \
                                             exactly once, or rely on the \
                                             dynamic checker";
                                          r_definite = false }))
                        | ins
                          when Cfg.is_rmw ins
                               && (match Cfg.access_base ins with
                                  | Some b -> Cfg.is_el2_base b
                                  | None -> false) ->
                            emit
                              { Cfg.r_code = Diag.W003;
                                r_path = s.Cfg.pt;
                                r_message =
                                  Printf.sprintf
                                    "atomic update of kernel-mapping base \
                                     '%s'; write-once cannot be checked \
                                     statically"
                                    (Option.get (Cfg.access_base ins));
                                r_fix =
                                  "install kernel mappings with plain \
                                   stores checked statically, or rely on \
                                   the dynamic checker";
                                r_definite = false }
                        | _ -> ())
                    | _ -> ())
                  succ)
          g.Cfg.g_succ;
        Cfg.merge_raws ~tid:th.Prog.tid !raws)
      prog.Prog.threads
  in
  (Diag.sort (guard_diags @ thread_diags), !stats)
