(** A hand-rolled CDCL SAT solver: two-watched-literal propagation,
    first-UIP clause learning, VSIDS-style activity decay, geometric
    restarts with phase saving, and solving under assumptions with
    UNSAT-core extraction. Self-contained — no external solver.

    Literals follow the DIMACS convention: variables are positive [int]s
    allocated by {!new_var}; a literal is [±v]. *)

type t

type result = Sat | Unsat

type stats = {
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable learned : int;
  mutable restarts : int;
}

val create : unit -> t

val new_var : t -> int
(** Allocate a fresh variable (1-based). *)

val add_clause : t -> int list -> unit
(** Add a clause (a disjunction of literals). Adding the empty clause —
    directly or after level-0 simplification — makes the instance
    permanently UNSAT. All literals must name allocated variables. *)

val solve : ?assumptions:int list -> t -> result
(** Solve the current clause set, optionally under assumption literals.
    Solving is incremental: learned clauses persist across calls, and
    clauses may be added between calls. *)

val value : t -> int -> bool
(** Model value of a variable; meaningful after {!solve} returned
    [Sat]. *)

val unsat_core : t -> int list
(** After [solve ~assumptions] returned [Unsat]: a subset of the
    assumptions that is already unsatisfiable with the clause set (empty
    when the clause set alone is contradictory). *)

val n_vars : t -> int
val n_clauses : t -> int
(** Problem clauses added via {!add_clause} (learned clauses excluded). *)

val stats : t -> stats
