(** Compile one {!Candidate.combo} (a k-bounded control-flow path
    choice) into CNF over axiomatic candidate executions.

    Variables:

    {ul
    {- one {e reads-from choice} variable per (load, candidate writer)
       pair — the writers on the load's location plus the initial write —
       under an exactly-one constraint per load;}
    {- an {e order matrix}: one boolean per unordered event pair, whose
       polarity gives the direction, so every assignment is a tournament
       and the transitivity clauses [ord(a,b) ∧ ord(b,c) → ord(a,c)] make
       it a total order. Arm mode uses two families — a per-location
       matrix witnessing the {b internal} axiom (acyclic po-loc ∪ rf ∪ co
       ∪ fr) and a global matrix witnessing the {b external} axiom
       (acyclic ob); SC mode uses a single global matrix containing
       program order (Shasha–Snir: SC = some interleaving respecting po
       in which every read sees the latest same-location write);}
    {- a {e co-last} witness per observed location ([Obs_loc]), Tseitin-
       defined as "every other write is order-before me".}}

    The coherence order is not a separate variable family: co(w,w') is
    {e defined} as the order-matrix entry for (w,w') — the matrix totally
    orders same-location writes, and any total extension of a valid
    candidate's relations restricts back to its co, so the aliasing is
    exact. A relation is acyclic iff it embeds in a total order, so the
    axioms become: static edges (po-loc, dependency order, barrier
    order) are unit clauses, and each rf choice implies its rf/fr edges
    conditionally. RMW atomicity needs no extra clauses: the fr clauses
    already force the RMW's write order-adjacent to its reads-from
    source among writes.

    Values stay out of the SAT instance entirely (decode-and-check, in
    the style of lazy SMT): {!Enumerate} resolves values per model via
    {!Candidate.decode} and blocks the model's observation projection. *)

open Memmodel

type mode = Arm | Sc

type t = {
  cnf : Cnf.t;
  combo : Candidate.combo;
  mode : mode;
  rf_vars : (int * (int * int) list) list;
      (** read event id -> (writer event id | -1 for init, variable) *)
  colast_vars : (Loc.t * (int * int) list) list;
      (** observed location -> (write event id, variable) *)
}

let build ~mode (prog : Prog.t) (x : Candidate.combo) : t =
  let b = Cnf.create () in
  let n = Array.length x.events in
  let ids = List.init n (fun i -> i) in
  (* global order matrix *)
  let ordg_tbl = Hashtbl.create 64 in
  List.iter
    (fun i ->
      List.iter
        (fun j -> if i < j then Hashtbl.add ordg_tbl (i, j) (Cnf.fresh b))
        ids)
    ids;
  let ordg a b =
    if a < b then Hashtbl.find ordg_tbl (a, b)
    else -Hashtbl.find ordg_tbl (b, a)
  in
  let locs = Candidate.locs x in
  let class_of loc =
    List.filter (fun i -> x.events.(i).Candidate.loc = Some loc) ids
  in
  (* per-location matrix (Arm); aliased to the global one under SC *)
  let ordloc =
    match mode with
    | Sc -> ordg
    | Arm ->
        let tbl = Hashtbl.create 64 in
        List.iter
          (fun loc ->
            let cls = class_of loc in
            List.iter
              (fun i ->
                List.iter
                  (fun j ->
                    if i < j then Hashtbl.add tbl (i, j) (Cnf.fresh b))
                  cls)
              cls)
          locs;
        fun a b ->
          if a < b then Hashtbl.find tbl (a, b)
          else -Hashtbl.find tbl (b, a)
  in
  let add_trans ord cls =
    List.iter
      (fun a ->
        List.iter
          (fun c ->
            if a <> c then
              List.iter
                (fun bb ->
                  if bb <> a && bb <> c then
                    Cnf.clause b [ -(ord a bb); -(ord bb c); ord a c ])
                cls)
          cls)
      cls
  in
  add_trans ordg ids;
  (match mode with
  | Arm -> List.iter (fun loc -> add_trans ordloc (class_of loc)) locs
  | Sc -> ());
  (* static edges as unit clauses *)
  (match mode with
  | Sc ->
      (* po ⊆ ordg subsumes po-loc, dependency and barrier order *)
      List.iter
        (fun ((a : Candidate.event), (c : Candidate.event)) ->
          Cnf.clause b [ ordg a.id c.id ])
        (Candidate.po_pairs x)
  | Arm ->
      List.iter
        (fun (a, c) -> Cnf.clause b [ ordloc a c ])
        (Candidate.po_loc_edges x);
      List.iter
        (fun (a, c) -> Cnf.clause b [ ordg a c ])
        (Candidate.static_ob_edges x));
  (* reads-from choices with their conditional rf / fr edges *)
  let tid i = x.events.(i).Candidate.tid in
  let writes_on loc =
    List.map
      (fun (e : Candidate.event) -> e.id)
      (Candidate.writes_on x loc)
  in
  let external_edges = mode = Arm in
  let rf_vars =
    List.map
      (fun (r : Candidate.event) ->
        let loc = Option.get r.loc in
        let ws = writes_on loc in
        (* an RMW never reads its own write (the enumerating checker
           rejects the self-loop via the internal axiom) *)
        let sources = List.filter (fun w -> w <> r.id) ws in
        let choices =
          List.map (fun w -> (w, Cnf.fresh b)) sources
          @ [ (-1, Cnf.fresh b) ]
        in
        Cnf.exactly_one b (List.map snd choices);
        List.iter
          (fun (w, v) ->
            if w = -1 then
              (* reads the initial write: fr to every write on the
                 location (except an RMW's own write) *)
              List.iter
                (fun w' ->
                  if w' <> r.id then begin
                    Cnf.clause b [ -v; ordloc r.id w' ];
                    if external_edges && tid w' <> r.tid then
                      Cnf.clause b [ -v; ordg r.id w' ]
                  end)
                ws
            else begin
              (* rf: the writer is order-before the read *)
              Cnf.clause b [ -v; ordloc w r.id ];
              if external_edges && tid w <> r.tid then
                Cnf.clause b [ -v; ordg w r.id ];
              (* fr: any write after the writer is after the read *)
              List.iter
                (fun w' ->
                  if w' <> w && w' <> r.id then begin
                    Cnf.clause b [ -v; -(ordloc w w'); ordloc r.id w' ];
                    if external_edges && tid w' <> r.tid then
                      Cnf.clause b [ -v; -(ordloc w w'); ordg r.id w' ]
                  end)
                ws
            end)
          choices;
        (r.id, choices))
      (Candidate.reads x)
  in
  (* coe: cross-thread coherence is externally observed (Arm only) *)
  if external_edges then
    List.iter
      (fun loc ->
        let ws = writes_on loc in
        List.iter
          (fun w ->
            List.iter
              (fun w' ->
                if w <> w' && tid w <> tid w' then
                  Cnf.clause b [ -(ordloc w w'); ordg w w' ])
              ws)
          ws)
      locs;
  (* co-last witnesses for observed locations *)
  let observed =
    List.sort_uniq compare
      (List.filter_map
         (function Prog.Obs_loc l -> Some l | Prog.Obs_reg _ -> None)
         prog.Prog.observables)
  in
  let colast_vars =
    List.map
      (fun loc ->
        let ws = writes_on loc in
        let vars =
          List.map
            (fun w ->
              let v = Cnf.fresh b in
              List.iter
                (fun w' ->
                  if w' <> w then Cnf.clause b [ -v; ordloc w' w ])
                ws;
              Cnf.clause b
                (v
                :: List.filter_map
                     (fun w' ->
                       if w' <> w then Some (-(ordloc w' w)) else None)
                     ws);
              (w, v))
            ws
        in
        if vars <> [] then Cnf.at_least_one b (List.map snd vars);
        (loc, vars))
      observed
  in
  { cnf = b; combo = x; mode; rf_vars; colast_vars }

let solve t = Cnf.solve t.cnf

(** After [Sat]: the reads-from choice of the current model. *)
let rf_of_model t (r : int) : int =
  match
    List.find_opt (fun (_, v) -> Cnf.value t.cnf v) (List.assoc r t.rf_vars)
  with
  | Some (w, _) -> w
  | None -> -1 (* unreachable under the exactly-one constraint *)

(** After [Sat]: the co-maximal write on an observed location. *)
let co_last_of_model t loc : int option =
  match List.assoc_opt loc t.colast_vars with
  | None | Some [] -> None
  | Some vars ->
      Option.map fst
        (List.find_opt (fun (_, v) -> Cnf.value t.cnf v) vars)

(** Block the current model's observation projection: its reads-from
    choice and, when [full], its co-last witnesses. Infeasible models
    (guard or address disagreement) are blocked on the reads-from
    projection alone — feasibility depends only on rf. *)
let block t ~full =
  let rf_lits =
    List.concat_map
      (fun (_, choices) ->
        List.filter_map
          (fun (_, v) -> if Cnf.value t.cnf v then Some (-v) else None)
          choices)
      t.rf_vars
  in
  let co_lits =
    if not full then []
    else
      List.concat_map
        (fun (_, vars) ->
          List.filter_map
            (fun (_, v) -> if Cnf.value t.cnf v then Some (-v) else None)
            vars)
        t.colast_vars
  in
  Cnf.clause t.cnf (rf_lits @ co_lits)

let n_vars t = Sat.n_vars t.cnf.Cnf.sat
let n_clauses t = Sat.n_clauses t.cnf.Cnf.sat
let sat_stats t = Sat.stats t.cnf.Cnf.sat
