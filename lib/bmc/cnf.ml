(** CNF construction helpers over a {!Sat} instance: a fresh-variable
    allocator and Tseitin encodings for the gate shapes the encoder
    needs. Each helper introduces a definition variable constrained to
    be {e equivalent} to its gate, so both polarities are usable. *)

type t = { sat : Sat.t }

let create () = { sat = Sat.create () }
let fresh b = Sat.new_var b.sat
let clause b lits = Sat.add_clause b.sat lits

(** [v <-> l1 ∧ ... ∧ ln]. [mk_and b []] is a fresh true constant. *)
let mk_and b lits =
  let v = fresh b in
  List.iter (fun l -> clause b [ -v; l ]) lits;
  clause b (v :: List.map (fun l -> -l) lits);
  v

(** [v <-> l1 ∨ ... ∨ ln]. [mk_or b []] is a fresh false constant. *)
let mk_or b lits =
  let v = fresh b in
  List.iter (fun l -> clause b [ v; -l ]) lits;
  clause b (-v :: lits);
  v

let at_least_one b lits = clause b lits

(* pairwise; the at-most-one groups here (reads-from choices per load)
   are small enough that ladder encodings would be overhead *)
let at_most_one b lits =
  let rec go = function
    | [] -> ()
    | l :: rest ->
        List.iter (fun l' -> clause b [ -l; -l' ]) rest;
        go rest
  in
  go lits

let exactly_one b lits =
  at_least_one b lits;
  at_most_one b lits

let solve ?assumptions b = Sat.solve ?assumptions b.sat
let value b v = Sat.value b.sat v
