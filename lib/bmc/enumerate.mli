(** All-solutions loop over the CNF encoding: blocking clauses on the
    observation projection (reads-from choices + co-last witnesses)
    yield every observationally distinct behavior. *)

open Memmodel

type stats = {
  combos : int;
  models : int;
  outcomes_feasible : int;
  infeasible : int;
  stuck : int;
  vars : int;
  clauses : int;
  conflicts : int;
  decisions : int;
  propagations : int;
  learned : int;
  restarts : int;
}

val zero_stats : stats

val run : mode:Encode.mode -> ?bound:int -> Prog.t -> Behavior.t * bool * stats
(** [(behaviors, complete, stats)] — [complete] is false when some
    feasible execution was truncated at the unrolling bound (it appears
    as a [Fuel_exhausted] outcome) and the behavior set is then a
    bound-limited under-approximation. A loop that provably exits within
    the bound stays complete: the residual unrolled path is infeasible
    and contributes nothing. Raises {!Candidate.Unsupported} outside the
    fragment. *)
