(** SAT-based bounded model checking of DSL programs — the second,
    independent verdict path next to the explicit-state engines.

    [run] enumerates the program's behaviors under the Armv8 axiomatic
    model (digest-comparable with {!Memmodel.Axiomatic.run} and, on the
    relaxed side, an over-approximation of {!Memmodel.Promising.run});
    [run_sc] does the same under sequential consistency
    (digest-comparable with {!Memmodel.Sc.run}). Where the explicit
    engines walk the interleaving space — exponential in thread count —
    the SAT backend's work scales with the number of observationally
    distinct behaviors, so high-interleaving programs with few behaviors
    finish fast. *)

open Memmodel

(* The library's other modules, reachable as [Bmc.Sat] etc. from outside
   (the main-module convention hides them otherwise). *)
module Sat = Sat
module Cnf = Cnf
module Encode = Encode
module Enumerate = Enumerate

exception Unsupported = Candidate.Unsupported

type mode = Encode.mode = Arm | Sc

type stats = Enumerate.stats = {
  combos : int;
  models : int;
  outcomes_feasible : int;
  infeasible : int;
  stuck : int;
  vars : int;
  clauses : int;
  conflicts : int;
  decisions : int;
  propagations : int;
  learned : int;
  restarts : int;
}

type result = {
  behaviors : Behavior.t;
  complete : bool;
      (** false when some [While] hit the unrolling bound: the behavior
          set is then a bound-limited under-approximation *)
  stats : stats;
  wall_s : float;
}

let default_bound = Candidate.default_bound

let check ?(mode = Arm) ?bound (prog : Prog.t) : result =
  let t0 = Unix.gettimeofday () in
  let behaviors, complete, stats = Enumerate.run ~mode ?bound prog in
  { behaviors; complete; stats; wall_s = Unix.gettimeofday () -. t0 }

let run ?bound prog = (check ~mode:Arm ?bound prog).behaviors
let run_sc ?bound prog = (check ~mode:Sc ?bound prog).behaviors
