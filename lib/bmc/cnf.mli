(** CNF construction helpers over a {!Sat} instance: fresh-variable
    allocation and Tseitin gate encodings. *)

type t = { sat : Sat.t }

val create : unit -> t
val fresh : t -> int
val clause : t -> int list -> unit

val mk_and : t -> int list -> int
(** Definition variable equivalent to the conjunction of the literals. *)

val mk_or : t -> int list -> int
(** Definition variable equivalent to the disjunction of the literals. *)

val at_least_one : t -> int list -> unit
val at_most_one : t -> int list -> unit
val exactly_one : t -> int list -> unit

val solve : ?assumptions:int list -> t -> Sat.result
val value : t -> int -> bool
