(** All-solutions loop: enumerate every observationally distinct model
    of every control-flow combo and decode each into an outcome.

    Each [Sat] answer fixes a reads-from choice; {!Candidate.decode}
    replays the paths under it. A feasible model contributes an outcome
    and is blocked on its full observation projection (reads-from +
    co-last); an infeasible or value-cyclic model is blocked on its
    reads-from projection alone, which is sound because feasibility
    depends only on the reads-from choice. Projections are finite and
    every blocking clause kills at least the current model, so the loop
    terminates. *)

open Memmodel

type stats = {
  combos : int;
  models : int;  (** satisfying assignments decoded *)
  outcomes_feasible : int;
  infeasible : int;  (** models whose guards/addresses disagreed *)
  stuck : int;  (** out-of-thin-air value cycles dropped *)
  vars : int;
  clauses : int;
  conflicts : int;
  decisions : int;
  propagations : int;
  learned : int;
  restarts : int;
}

let zero_stats =
  {
    combos = 0;
    models = 0;
    outcomes_feasible = 0;
    infeasible = 0;
    stuck = 0;
    vars = 0;
    clauses = 0;
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    learned = 0;
    restarts = 0;
  }

let run ~mode ?bound (prog : Prog.t) : Behavior.t * bool * stats =
  let combos =
    match bound with
    | None -> Candidate.combos prog
    | Some bound -> Candidate.combos ~bound prog
  in
  let behaviors = ref Behavior.empty in
  let st = ref { zero_stats with combos = List.length combos } in
  List.iter
    (fun (x : Candidate.combo) ->
      let enc = Encode.build ~mode prog x in
      let status = Candidate.status_of x in
      let running = ref true in
      while !running do
        match Encode.solve enc with
        | Sat.Unsat -> running := false
        | Sat.Sat -> (
            st := { !st with models = !st.models + 1 };
            let rf = Encode.rf_of_model enc in
            match Candidate.decode prog x ~rf with
            | Candidate.Feasible res ->
                let co_last loc = Encode.co_last_of_model enc loc in
                behaviors :=
                  Behavior.add
                    (Behavior.outcome ~status
                       (Candidate.outcome_values prog x res ~co_last))
                    !behaviors;
                st :=
                  { !st with outcomes_feasible = !st.outcomes_feasible + 1 };
                Encode.block enc ~full:true
            | Candidate.Infeasible ->
                st := { !st with infeasible = !st.infeasible + 1 };
                Encode.block enc ~full:false
            | Candidate.Stuck ->
                st := { !st with stuck = !st.stuck + 1 };
                Encode.block enc ~full:false)
      done;
      let ss = Encode.sat_stats enc in
      st :=
        {
          !st with
          vars = !st.vars + Encode.n_vars enc;
          clauses = !st.clauses + Encode.n_clauses enc;
          conflicts = !st.conflicts + ss.Sat.conflicts;
          decisions = !st.decisions + ss.Sat.decisions;
          propagations = !st.propagations + ss.Sat.propagations;
          learned = !st.learned + ss.Sat.learned;
          restarts = !st.restarts + ss.Sat.restarts;
        })
    combos;
  (* Completeness is semantic, not syntactic: unrolling always leaves a
     residual guard-still-true path behind every [While], but when that
     path's guard cannot actually hold (the loop provably exits within
     the bound) every model choosing it is infeasible and the behavior
     set is exact. Only a FEASIBLE truncated execution — one that
     surfaced as a [Fuel_exhausted] outcome — makes the verdict
     bound-limited. *)
  let complete =
    not
      (Behavior.Outcome_set.exists
         (fun o -> o.Behavior.status = Behavior.Fuel_exhausted)
         !behaviors)
  in
  (!behaviors, complete, !st)
