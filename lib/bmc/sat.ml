(** A hand-rolled CDCL SAT solver — the decision core of the BMC
    backend. No external solver dependency: the repo's cross-validation
    story requires the second verdict path to be self-contained.

    The feature set is deliberately classical (MiniSat-style):

    {ul
    {- two-watched-literal unit propagation;}
    {- first-UIP conflict analysis with clause learning;}
    {- VSIDS-style variable activities with exponential decay (picked by
       linear scan — instance sizes here are hundreds of variables, not
       millions);}
    {- geometric restarts with phase saving;}
    {- incremental solving under assumptions, with final-conflict
       analysis producing an UNSAT core (a subset of the assumptions).}}

    Literals use the DIMACS convention: a variable is a positive [int]
    from {!new_var}, a literal is [±v], and clauses are literal lists. *)

type result = Sat | Unsat

type stats = {
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable learned : int;
  mutable restarts : int;
}

type t = {
  mutable nvars : int;
  mutable clauses : int array array;  (* growable store; learned included *)
  mutable n_clauses : int;
  mutable n_problem : int;  (* clauses added by the user *)
  mutable watches : int list array;  (* watch-lit index -> clause ids *)
  mutable assigns : int array;  (* var -> 0 unset / 1 true / -1 false *)
  mutable level : int array;
  mutable reason : int array;  (* clause id or -1 for decisions *)
  mutable trail : int array;
  mutable trail_n : int;
  mutable qhead : int;
  mutable lim : int array;  (* decision level -> trail length at entry *)
  mutable lim_n : int;
  mutable activity : float array;
  mutable var_inc : float;
  mutable phase : bool array;
  mutable seen : bool array;  (* conflict-analysis scratch *)
  mutable ok : bool;  (* false once a top-level contradiction is known *)
  mutable core : int list;
  stats : stats;
}

let create () =
  {
    nvars = 0;
    clauses = Array.make 16 [||];
    n_clauses = 0;
    n_problem = 0;
    watches = Array.make 8 [];
    assigns = Array.make 4 0;
    level = Array.make 4 0;
    reason = Array.make 4 (-1);
    trail = Array.make 4 0;
    trail_n = 0;
    qhead = 0;
    lim = Array.make 4 0;
    lim_n = 0;
    activity = Array.make 4 0.;
    var_inc = 1.;
    phase = Array.make 4 false;
    seen = Array.make 4 false;
    ok = true;
    core = [];
    stats =
      { conflicts = 0; decisions = 0; propagations = 0; learned = 0;
        restarts = 0 };
  }

let stats s = s.stats
let n_vars s = s.nvars
let n_clauses s = s.n_problem

let grow_int a n fill =
  if Array.length a >= n then a
  else begin
    let a' = Array.make (max n (2 * Array.length a)) fill in
    Array.blit a 0 a' 0 (Array.length a);
    a'
  end

let grow_float a n =
  if Array.length a >= n then a
  else begin
    let a' = Array.make (max n (2 * Array.length a)) 0. in
    Array.blit a 0 a' 0 (Array.length a);
    a'
  end

let grow_bool a n =
  if Array.length a >= n then a
  else begin
    let a' = Array.make (max n (2 * Array.length a)) false in
    Array.blit a 0 a' 0 (Array.length a);
    a'
  end

let grow_lists a n =
  if Array.length a >= n then a
  else begin
    let a' = Array.make (max n (2 * Array.length a)) [] in
    Array.blit a 0 a' 0 (Array.length a);
    a'
  end

let new_var s =
  let v = s.nvars + 1 in
  s.nvars <- v;
  s.assigns <- grow_int s.assigns (v + 1) 0;
  s.level <- grow_int s.level (v + 1) 0;
  s.reason <- grow_int s.reason (v + 1) (-1);
  s.activity <- grow_float s.activity (v + 1);
  s.phase <- grow_bool s.phase (v + 1);
  s.seen <- grow_bool s.seen (v + 1);
  s.trail <- grow_int s.trail (v + 1) 0;
  s.lim <- grow_int s.lim (v + 1) 0;
  s.watches <- grow_lists s.watches (2 * v + 2);
  v

(* watch-list index of a literal *)
let widx l = if l > 0 then 2 * l else (2 * -l) + 1

(* 1 true, -1 false, 0 unassigned *)
let lit_value s l =
  let v = s.assigns.(abs l) in
  if v = 0 then 0 else if (l > 0) = (v > 0) then 1 else -1

let enqueue s l reason =
  let v = abs l in
  s.assigns.(v) <- (if l > 0 then 1 else -1);
  s.level.(v) <- s.lim_n;
  s.reason.(v) <- reason;
  s.trail.(s.trail_n) <- l;
  s.trail_n <- s.trail_n + 1

let new_decision_level s =
  s.lim.(s.lim_n) <- s.trail_n;
  s.lim_n <- s.lim_n + 1

let backtrack s lvl =
  if s.lim_n > lvl then begin
    let bound = s.lim.(lvl) in
    for i = s.trail_n - 1 downto bound do
      let v = abs s.trail.(i) in
      s.phase.(v) <- s.assigns.(v) > 0;
      s.assigns.(v) <- 0;
      s.reason.(v) <- -1
    done;
    s.trail_n <- bound;
    s.qhead <- bound;
    s.lim_n <- lvl
  end

let bump s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 1 to s.nvars do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end

let decay s = s.var_inc <- s.var_inc /. 0.95

let push_clause s lits =
  if s.n_clauses = Array.length s.clauses then begin
    let a = Array.make (2 * s.n_clauses) [||] in
    Array.blit s.clauses 0 a 0 s.n_clauses;
    s.clauses <- a
  end;
  let id = s.n_clauses in
  s.clauses.(id) <- lits;
  s.n_clauses <- id + 1;
  s.watches.(widx lits.(0)) <- id :: s.watches.(widx lits.(0));
  s.watches.(widx lits.(1)) <- id :: s.watches.(widx lits.(1));
  id

(** Unit propagation. Returns the id of a conflicting clause, or -1. *)
let propagate s =
  let confl = ref (-1) in
  while !confl = -1 && s.qhead < s.trail_n do
    let p = s.trail.(s.qhead) in
    s.qhead <- s.qhead + 1;
    s.stats.propagations <- s.stats.propagations + 1;
    (* clauses watching ¬p must find a new home *)
    let wi = widx (-p) in
    let watching = s.watches.(wi) in
    s.watches.(wi) <- [];
    let rec go = function
      | [] -> ()
      | cid :: rest ->
          let c = s.clauses.(cid) in
          (* normalize: the false literal ¬p at position 1 *)
          if c.(0) = -p then begin
            c.(0) <- c.(1);
            c.(1) <- -p
          end;
          if lit_value s c.(0) = 1 then begin
            (* satisfied: keep the watch *)
            s.watches.(wi) <- cid :: s.watches.(wi);
            go rest
          end
          else begin
            (* look for a non-false literal to watch instead *)
            let n = Array.length c in
            let k = ref 2 in
            while !k < n && lit_value s c.(!k) = -1 do
              incr k
            done;
            if !k < n then begin
              c.(1) <- c.(!k);
              c.(!k) <- -p;
              s.watches.(widx c.(1)) <- cid :: s.watches.(widx c.(1));
              go rest
            end
            else if lit_value s c.(0) = -1 then begin
              (* conflict: restore remaining watches *)
              s.watches.(wi) <- cid :: s.watches.(wi);
              List.iter
                (fun cid' -> s.watches.(wi) <- cid' :: s.watches.(wi))
                rest;
              confl := cid
            end
            else begin
              (* unit: propagate c.(0) *)
              s.watches.(wi) <- cid :: s.watches.(wi);
              enqueue s c.(0) cid;
              go rest
            end
          end
    in
    go watching
  done;
  !confl

let add_clause s lits =
  if s.ok then begin
    s.n_problem <- s.n_problem + 1;
    backtrack s 0;
    let lits = List.sort_uniq compare lits in
    assert (List.for_all (fun l -> l <> 0 && abs l <= s.nvars) lits);
    let taut = List.exists (fun l -> List.mem (-l) lits) lits in
    let sat_already = List.exists (fun l -> lit_value s l = 1) lits in
    if not (taut || sat_already) then begin
      let lits = List.filter (fun l -> lit_value s l <> -1) lits in
      match lits with
      | [] -> s.ok <- false
      | [ l ] ->
          enqueue s l (-1);
          if propagate s <> -1 then s.ok <- false
      | l1 :: l2 :: _ ->
          let c = Array.of_list lits in
          (* put two unassigned (or most recent) literals first *)
          ignore l1;
          ignore l2;
          ignore (push_clause s c)
    end
  end

(** First-UIP conflict analysis: returns the learned clause (asserting
    literal first) and the backjump level. *)
let analyze s confl =
  let learned = ref [] in
  let counter = ref 0 in
  let p = ref 0 in
  let confl = ref confl in
  let index = ref s.trail_n in
  let continue = ref true in
  while !continue do
    let c = s.clauses.(!confl) in
    Array.iter
      (fun q ->
        if q <> !p then begin
          let v = abs q in
          if (not s.seen.(v)) && s.level.(v) > 0 then begin
            s.seen.(v) <- true;
            bump s v;
            if s.level.(v) >= s.lim_n then incr counter
            else learned := q :: !learned
          end
        end)
      c;
    (* find the next marked literal on the trail *)
    let rec back () =
      decr index;
      if not s.seen.(abs s.trail.(!index)) then back ()
    in
    back ();
    let q = s.trail.(!index) in
    let v = abs q in
    s.seen.(v) <- false;
    decr counter;
    if !counter = 0 then begin
      p := -q;
      continue := false
    end
    else begin
      p := q;
      confl := s.reason.(v)
    end
  done;
  List.iter (fun q -> s.seen.(abs q) <- false) !learned;
  let blevel =
    List.fold_left (fun acc q -> max acc s.level.(abs q)) 0 !learned
  in
  (!p :: !learned, blevel)

(* Record the learned clause and enqueue its asserting literal. *)
let learn s lits blevel =
  backtrack s blevel;
  s.stats.learned <- s.stats.learned + 1;
  match lits with
  | [ l ] -> enqueue s l (-1)
  | l :: _ ->
      let c = Array.of_list lits in
      (* watch the asserting literal and one literal of the backjump
         level (any literal assigned at [blevel] keeps the invariant) *)
      let n = Array.length c in
      let best = ref 1 in
      for k = 2 to n - 1 do
        if s.level.(abs c.(k)) > s.level.(abs c.(!best)) then best := k
      done;
      let tmp = c.(1) in
      c.(1) <- c.(!best);
      c.(!best) <- tmp;
      let cid = push_clause s c in
      enqueue s l cid
  | [] -> assert false

(** Final-conflict analysis: the failing assumption plus every
    assumption its refutation rests on. *)
let analyze_final s a =
  let core = ref [ a ] in
  let v0 = abs a in
  if s.level.(v0) > 0 || s.reason.(v0) >= 0 then s.seen.(v0) <- true;
  for i = s.trail_n - 1 downto 0 do
    let q = s.trail.(i) in
    let v = abs q in
    if s.seen.(v) then begin
      s.seen.(v) <- false;
      if s.reason.(v) = -1 then begin
        (* an assumption decision *)
        if s.level.(v) > 0 then core := q :: !core
      end
      else
        Array.iter
          (fun l ->
            let u = abs l in
            if u <> v && s.level.(u) > 0 then s.seen.(u) <- true)
          s.clauses.(s.reason.(v))
    end
  done;
  List.sort_uniq compare !core

let solve ?(assumptions = []) s =
  s.core <- [];
  if not s.ok then Unsat
  else begin
    backtrack s 0;
    let assumps = Array.of_list assumptions in
    let conf_budget = ref 100 in
    let conf_count = ref 0 in
    let result = ref None in
    while !result = None do
      let confl = propagate s in
      if confl >= 0 then begin
        s.stats.conflicts <- s.stats.conflicts + 1;
        incr conf_count;
        if s.lim_n = 0 then result := Some Unsat
        else begin
          let learned, blevel = analyze s confl in
          learn s learned blevel;
          decay s;
          if !conf_count >= !conf_budget then begin
            (* geometric restart *)
            conf_count := 0;
            conf_budget := !conf_budget * 3 / 2;
            s.stats.restarts <- s.stats.restarts + 1;
            backtrack s 0
          end
        end
      end
      else if s.lim_n < Array.length assumps then begin
        (* take the next assumption as a decision *)
        let a = assumps.(s.lim_n) in
        match lit_value s a with
        | 1 -> new_decision_level s (* already implied: vacuous level *)
        | -1 ->
            s.core <- analyze_final s a;
            result := Some Unsat
        | _ ->
            new_decision_level s;
            enqueue s a (-1)
      end
      else begin
        (* VSIDS decision: unassigned variable of max activity *)
        let best = ref 0 in
        for v = 1 to s.nvars do
          if
            s.assigns.(v) = 0
            && (!best = 0 || s.activity.(v) > s.activity.(!best))
          then best := v
        done;
        if !best = 0 then result := Some Sat
        else begin
          s.stats.decisions <- s.stats.decisions + 1;
          new_decision_level s;
          enqueue s (if s.phase.(!best) then !best else - !best) (-1)
        end
      end
    done;
    Option.get !result
  end

let value s v = s.assigns.(v) > 0
let unsat_core s = s.core
