(** SAT-based bounded model checking of DSL programs: the second,
    independent verdict path next to the explicit-state engines.

    Programs are compiled to candidate executions ({!Memmodel.Candidate})
    and the Armv8 axioms (or an SC interleaving order) are decided by a
    built-in CDCL solver; an all-solutions loop yields the behavior set.
    Digest-comparable with the explicit engines: [run] against
    {!Memmodel.Axiomatic.run}, [run_sc] against {!Memmodel.Sc.run}. *)

open Memmodel

(** The CDCL SAT solver, CNF builder, CNF encoder and all-solutions
    enumerator, re-exported (the main-module convention hides them
    otherwise). *)

module Sat : module type of Sat

module Cnf : module type of Cnf

module Encode : module type of Encode

module Enumerate : module type of Enumerate

exception Unsupported of string
(** Alias of {!Memmodel.Candidate.Unsupported}: raised on programs
    outside the fragment, naming the offending thread and pc. *)

type mode = Encode.mode = Arm | Sc

type stats = Enumerate.stats = {
  combos : int;
  models : int;
  outcomes_feasible : int;
  infeasible : int;
  stuck : int;
  vars : int;
  clauses : int;
  conflicts : int;
  decisions : int;
  propagations : int;
  learned : int;
  restarts : int;
}

type result = {
  behaviors : Behavior.t;
  complete : bool;
      (** false when some feasible execution was truncated at the
          unrolling bound: the behavior set is then a bound-limited
          under-approximation (truncated executions appear as
          [Fuel_exhausted] outcomes). Loops that provably exit within
          the bound stay complete. *)
  stats : stats;
  wall_s : float;
}

val default_bound : int

val check : ?mode:mode -> ?bound:int -> Prog.t -> result
(** Full verdict: behaviors, completeness of the bound, solver stats. *)

val run : ?bound:int -> Prog.t -> Behavior.t
(** Armv8 axiomatic behaviors (digest-comparable with
    {!Memmodel.Axiomatic.run}). *)

val run_sc : ?bound:int -> Prog.t -> Behavior.t
(** SC behaviors (digest-comparable with {!Memmodel.Sc.run}). *)
