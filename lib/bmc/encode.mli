(** CNF encoding of one {!Candidate.combo} over axiomatic candidate
    executions: reads-from choice variables per load, order-matrix
    variables witnessing acyclicity of po-loc ∪ rf ∪ co ∪ fr (Arm
    internal axiom, per location) and of ob (Arm external axiom) — or of
    a single po-respecting interleaving order under SC — plus co-last
    witnesses for observed locations. Coherence is the order matrix
    restricted to same-location writes; values stay out of the instance
    (decode-and-check). *)

open Memmodel

type mode = Arm | Sc

type t = {
  cnf : Cnf.t;
  combo : Candidate.combo;
  mode : mode;
  rf_vars : (int * (int * int) list) list;
  colast_vars : (Loc.t * (int * int) list) list;
}

val build : mode:mode -> Prog.t -> Candidate.combo -> t

val solve : t -> Sat.result

val rf_of_model : t -> int -> int
(** After [Sat]: the writer (event id, or -1 for the initial write) each
    read reads from in the current model. *)

val co_last_of_model : t -> Loc.t -> int option
(** After [Sat]: the co-maximal write on an observed location, [None]
    when the combo has no write there. *)

val block : t -> full:bool -> unit
(** Exclude the current model's observation projection (reads-from
    choice, plus co-last witnesses when [full]). *)

val n_vars : t -> int
val n_clauses : t -> int
val sat_stats : t -> Sat.stats
