(** The vrmd wire protocol. See the interface for the framing rules. *)

open Cache

type job =
  | Litmus of string
  | Refine of string
  | Certify of { linux : string; stage2_levels : int }

type backend = Explicit | Bmc
type lane = Interactive | Bulk

let fail msg = raise (Json.Decode msg)

let backend_to_string = function Explicit -> "explicit" | Bmc -> "bmc"

let backend_of_string = function
  | "explicit" -> Explicit
  | "bmc" -> Bmc
  | s -> fail ("unknown backend " ^ s)

let lane_to_string = function Interactive -> "interactive" | Bulk -> "bulk"

let lane_of_string = function
  | "interactive" -> Interactive
  | "bulk" -> Bulk
  | s -> fail ("unknown lane " ^ s)

type request =
  | Submit of {
      job : job;
      jobs : int;
      deadline_s : float option;
      backend : backend;
          (** which engine decides the job (default [Explicit]; absent
              on the wire means explicit, so older clients are
              unaffected); part of the scheduler's cache key *)
      cert_cache : bool;
          (** certification memoization for this job (default true);
              part of the scheduler's cache key, so A/B submissions
              never alias *)
      por : bool;
          (** partial-order reduction for this job (default true); also
              part of the cache key — behavior sets are identical either
              way, but statistics are not, and A/B submissions must not
              alias *)
      sym : bool;
          (** thread-symmetry reduction for this job (default true);
              part of the cache key for the same reason as [por] *)
      lane : lane;
          (** scheduling lane (default [Interactive]; absent on the
              wire means interactive, so older clients keep the
              low-latency lane); {e not} part of the cache key — the
              lane changes when a job runs, never what it computes *)
    }
  | Status
  | Shutdown

type response =
  | Result of Json.t
  | Status_r of Json.t
  | Error_r of string
  | Overloaded_r of { retry_after_s : float }
  | Bye

let job_to_json = function
  | Litmus name ->
      Json.Obj [ ("kind", Json.String "litmus"); ("name", Json.String name) ]
  | Refine name ->
      Json.Obj [ ("kind", Json.String "refine"); ("name", Json.String name) ]
  | Certify { linux; stage2_levels } ->
      Json.Obj
        [ ("kind", Json.String "certify");
          ("linux", Json.String linux);
          ("stage2_levels", Json.Int stage2_levels) ]

let job_of_json j =
  match Json.to_str (Json.member "kind" j) with
  | "litmus" -> Litmus (Json.to_str (Json.member "name" j))
  | "refine" -> Refine (Json.to_str (Json.member "name" j))
  | "certify" ->
      Certify
        { linux = Json.to_str (Json.member "linux" j);
          stage2_levels = Json.to_int (Json.member "stage2_levels" j) }
  | k -> fail ("unknown job kind " ^ k)

let request_to_json = function
  | Submit { job; jobs; deadline_s; backend; cert_cache; por; sym; lane } ->
      Json.Obj
        [ ("op", Json.String "submit");
          ("job", job_to_json job);
          ("jobs", Json.Int jobs);
          ( "deadline_s",
            match deadline_s with None -> Json.Null | Some d -> Json.Float d
          );
          ("backend", Json.String (backend_to_string backend));
          ("cert_cache", Json.Bool cert_cache);
          ("por", Json.Bool por);
          ("sym", Json.Bool sym);
          ("lane", Json.String (lane_to_string lane)) ]
  | Status -> Json.Obj [ ("op", Json.String "status") ]
  | Shutdown -> Json.Obj [ ("op", Json.String "shutdown") ]

let request_of_json j =
  match Json.to_str (Json.member "op" j) with
  | "submit" ->
      Submit
        { job = job_of_json (Json.member "job" j);
          jobs =
            (match Json.member "jobs" j with
            | Json.Null -> 1
            | n -> Json.to_int n);
          deadline_s =
            (match Json.member "deadline_s" j with
            | Json.Null -> None
            | d -> Some (Json.to_float d));
          backend =
            (* absent = explicit: requests from older clients keep the
               explicit-state engines *)
            (match Json.member "backend" j with
            | Json.Null -> Explicit
            | b -> backend_of_string (Json.to_str b));
          cert_cache =
            (* absent = true: requests from older clients keep the
               default behavior *)
            (match Json.member "cert_cache" j with
            | Json.Null -> true
            | b -> Json.to_bool b);
          por =
            (* absent = true, same back-compat rule *)
            (match Json.member "por" j with
            | Json.Null -> true
            | b -> Json.to_bool b);
          sym =
            (* absent = true, same back-compat rule *)
            (match Json.member "sym" j with
            | Json.Null -> true
            | b -> Json.to_bool b);
          lane =
            (* absent = interactive: older clients keep the
               low-latency lane *)
            (match Json.member "lane" j with
            | Json.Null -> Interactive
            | l -> lane_of_string (Json.to_str l)) }
  | "status" -> Status
  | "shutdown" -> Shutdown
  | op -> fail ("unknown request op " ^ op)

let response_to_json = function
  | Result payload ->
      Json.Obj [ ("op", Json.String "result"); ("payload", payload) ]
  | Status_r payload ->
      Json.Obj [ ("op", Json.String "status"); ("payload", payload) ]
  | Error_r msg ->
      Json.Obj [ ("op", Json.String "error"); ("message", Json.String msg) ]
  | Overloaded_r { retry_after_s } ->
      Json.Obj
        [ ("op", Json.String "overloaded");
          ("retry_after_s", Json.Float retry_after_s) ]
  | Bye -> Json.Obj [ ("op", Json.String "bye") ]

let response_of_json j =
  match Json.to_str (Json.member "op" j) with
  | "result" -> Result (Json.member "payload" j)
  | "status" -> Status_r (Json.member "payload" j)
  | "error" -> Error_r (Json.to_str (Json.member "message" j))
  | "overloaded" ->
      Overloaded_r
        { retry_after_s = Json.to_float (Json.member "retry_after_s" j) }
  | "bye" -> Bye
  | op -> fail ("unknown response op " ^ op)

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

(* 16 MiB comfortably holds every payload the service produces (the
   largest certificate summaries are a few hundred KiB); anything larger
   is a broken or hostile peer and must not drive an unbounded
   [Bytes.create]. *)
let max_frame = 16 * 1024 * 1024

exception Frame_too_large of int

let () =
  Printexc.register_printer (function
    | Frame_too_large n ->
        Some
          (Printf.sprintf "protocol: frame of %d bytes exceeds max_frame=%d"
             n max_frame)
    | _ -> None)

let write_all fd buf =
  let n = Bytes.length buf in
  let rec go off =
    if off < n then
      let w = Unix.write fd buf off (n - off) in
      go (off + w)
  in
  go 0

(* [read_all fd buf] fills [buf] completely; [`Eof n] reports how many
   bytes had arrived before the peer closed. *)
let read_all fd buf =
  let n = Bytes.length buf in
  let rec go off =
    if off >= n then `Ok
    else
      match Unix.read fd buf off (n - off) with
      | 0 -> `Eof off
      | r -> go (off + r)
  in
  go 0

let send fd (v : Json.t) =
  let payload = Bytes.of_string (Json.to_string v) in
  let len = Bytes.length payload in
  if len > max_frame then raise (Frame_too_large len);
  let header = Bytes.create 4 in
  Bytes.set_int32_be header 0 (Int32.of_int len);
  write_all fd header;
  write_all fd payload

(* Read and discard [len] bytes in bounded chunks, so an oversized frame
   can be rejected while leaving the stream positioned at the next
   frame boundary — the connection survives the bad request. *)
let drain_payload fd len =
  let chunk = Bytes.create 65536 in
  let rec go remaining =
    if remaining > 0 then
      match Unix.read fd chunk 0 (min remaining (Bytes.length chunk)) with
      | 0 -> failwith "protocol: truncated frame payload"
      | r -> go (remaining - r)
  in
  go len

let recv fd : Json.t option =
  let header = Bytes.create 4 in
  match read_all fd header with
  | `Eof 0 -> None
  | `Eof _ -> failwith "protocol: truncated frame header"
  | `Ok ->
      let len = Int32.to_int (Bytes.get_int32_be header 0) in
      if len < 0 then failwith "protocol: bad frame length";
      if len > max_frame then begin
        drain_payload fd len;
        raise (Frame_too_large len)
      end;
      let payload = Bytes.create len in
      (match read_all fd payload with
      | `Eof _ -> failwith "protocol: truncated frame payload"
      | `Ok -> ());
      (match Json.of_string (Bytes.to_string payload) with
      | Ok v -> Some v
      | Error msg -> failwith ("protocol: bad JSON frame: " ^ msg))
