(* Transient connect failures a mid-restart daemon produces: the socket
   file briefly absent (unlink before re-bind), the listener gone
   (refused), or the backlog momentarily full. Anything else — a
   permission error, a path that is not a socket — is permanent and
   surfaces immediately. *)
let transient = function
  | Unix.ECONNREFUSED | Unix.EAGAIN | Unix.ENOENT -> true
  | _ -> false

(* Nonblocking connect bounded by [timeout_s]: Unix-domain connects
   normally complete instantly, but a wedged daemon must not hang the
   client forever. *)
let connect_with_timeout fd addr timeout_s =
  Unix.set_nonblock fd;
  Fun.protect
    ~finally:(fun () -> try Unix.clear_nonblock fd with _ -> ())
    (fun () ->
      match Unix.connect fd addr with
      | () -> ()
      | exception Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _)
        -> (
          match Unix.select [] [ fd ] [] timeout_s with
          | _, [ _ ], _ -> (
              match Unix.getsockopt_error fd with
              | None -> ()
              | Some err -> raise (Unix.Unix_error (err, "connect", "")))
          | _ -> raise (Unix.Unix_error (Unix.ETIMEDOUT, "connect", ""))))

let with_connection ~socket ?(connect_timeout_s = 1.0) ?(retries = 1) f =
  let addr = Unix.ADDR_UNIX socket in
  let rec attempt remaining =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match connect_with_timeout fd addr connect_timeout_s with
    | () ->
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with _ -> ())
          (fun () -> f fd)
    | exception Unix.Unix_error (err, _, _)
      when transient err && remaining > 0 ->
        (try Unix.close fd with _ -> ());
        (* one backoff step per retry: long enough for a restarting
           daemon to re-bind, short enough not to be felt at a prompt *)
        Unix.sleepf 0.2;
        attempt (remaining - 1)
    | exception exn ->
        (try Unix.close fd with _ -> ());
        raise exn
  in
  attempt (max 0 retries)

let roundtrip fd (req : Protocol.request) : Protocol.response =
  Protocol.send fd (Protocol.request_to_json req);
  match Protocol.recv fd with
  | None -> failwith "client: server closed the connection"
  | Some j -> Protocol.response_of_json j

let submit ~socket ?(jobs = 1) ?deadline_s ?(lane = Protocol.Interactive)
    ?(backend = Protocol.Explicit) ?(cert_cache = true) ?(por = true)
    ?(sym = true) job =
  with_connection ~socket (fun fd ->
      match
        roundtrip fd
          (Protocol.Submit
             { job; jobs; deadline_s; backend; cert_cache; por; sym; lane })
      with
      | Protocol.Result payload -> Ok payload
      | Protocol.Error_r msg -> Error msg
      | Protocol.Overloaded_r { retry_after_s } ->
          Error
            (Printf.sprintf "server overloaded; retry after %.2fs"
               retry_after_s)
      | Protocol.Status_r _ | Protocol.Bye ->
          Error "client: unexpected response to submit")

let status ~socket =
  with_connection ~socket (fun fd ->
      match roundtrip fd Protocol.Status with
      | Protocol.Status_r payload -> Ok payload
      | Protocol.Error_r msg -> Error msg
      | Protocol.Result _ | Protocol.Overloaded_r _ | Protocol.Bye ->
          Error "client: unexpected response to status")

let shutdown ~socket =
  with_connection ~socket (fun fd ->
      match roundtrip fd Protocol.Shutdown with
      | Protocol.Bye -> Ok ()
      | Protocol.Error_r msg -> Error msg
      | Protocol.Result _ | Protocol.Status_r _ | Protocol.Overloaded_r _ ->
          Error "client: unexpected response to shutdown")
