let with_connection ~socket f =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX socket);
      f fd)

let roundtrip fd (req : Protocol.request) : Protocol.response =
  Protocol.send fd (Protocol.request_to_json req);
  match Protocol.recv fd with
  | None -> failwith "client: server closed the connection"
  | Some j -> Protocol.response_of_json j

let submit ~socket ?(jobs = 1) ?deadline_s ?(backend = Protocol.Explicit)
    ?(cert_cache = true) ?(por = true) ?(sym = true) job =
  with_connection ~socket (fun fd ->
      match
        roundtrip fd
          (Protocol.Submit
             { job; jobs; deadline_s; backend; cert_cache; por; sym })
      with
      | Protocol.Result payload -> Ok payload
      | Protocol.Error_r msg -> Error msg
      | Protocol.Status_r _ | Protocol.Bye ->
          Error "client: unexpected response to submit")

let status ~socket =
  with_connection ~socket (fun fd ->
      match roundtrip fd Protocol.Status with
      | Protocol.Status_r payload -> Ok payload
      | Protocol.Error_r msg -> Error msg
      | Protocol.Result _ | Protocol.Bye ->
          Error "client: unexpected response to status")

let shutdown ~socket =
  with_connection ~socket (fun fd ->
      match roundtrip fd Protocol.Shutdown with
      | Protocol.Bye -> Ok ()
      | Protocol.Error_r msg -> Error msg
      | Protocol.Result _ | Protocol.Status_r _ ->
          Error "client: unexpected response to shutdown")
