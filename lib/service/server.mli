(** The vrmd daemon: serves {!Protocol} requests over a Unix domain
    socket, one handler thread per connection, jobs executed by the
    {!Scheduler}'s domain pool.

    A [Submit] is answered with [Result] whose payload wraps the job's
    {!Cache.Codec} value:

    {v {"data": <codec payload>, "from_cache": bool, "wall_s": float} v}

    Timeouts (including deadlines that expired while the job was still
    queued) and failures are answered with [Error_r]; a submission shed
    by the scheduler's admission control is answered with
    [Overloaded_r] carrying the retry-after hint. Oversized request
    frames are drained and answered with [Error_r] on the same
    connection.

    Shutdown is graceful: on a [Shutdown] request the server replies
    [Bye], stops accepting, lets in-flight jobs and their responses
    finish ({!Scheduler.drain}), closes lingering idle connections,
    joins the worker domains ({!Scheduler.shutdown}) and removes the
    socket file. *)

val serve : socket:string -> ?log:(string -> unit) -> Scheduler.t -> unit
(** Bind [socket] (an existing socket file is replaced), serve until a
    [Shutdown] request arrives, then shut down gracefully as described
    above. Blocks the calling thread for the server's whole lifetime. *)
