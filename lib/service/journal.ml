(** Persistent job journal. See the interface for the contract; format
    notes:

    JSON-lines, one compact {!Cache.Json} object per line:

    {v
    {"op":"add","key":...,"job":{...},"jobs":N,"lane":...,
     "deadline":<abs float or null>,"backend":...,"cert_cache":B,
     "por":B,"sym":B}
    {"op":"done","key":...}
    v}

    Appends are flushed per record. A crash can at worst truncate the
    final line; the loader ignores unparsable lines, so a torn tail
    costs one record, never the file. [open_] compacts: it loads the
    pending set (adds without a matching done), rewrites the file to
    exactly those adds, and returns them for replay — so the journal
    never grows across restarts and the crash window between load and
    replay loses nothing (the pending adds are already back on disk
    before [open_] returns). *)

open Cache

type entry = {
  e_key : string;
  e_job : Protocol.job;
  e_jobs : int;
  e_lane : Protocol.lane;
  e_deadline : float option;  (** absolute, [Unix.gettimeofday] scale *)
  e_backend : Protocol.backend;
  e_cert_cache : bool;
  e_por : bool;
  e_sym : bool;
}

type t = { path : string; mutable oc : out_channel option; m : Mutex.t }

let path t = t.path

let entry_to_json (e : entry) : Json.t =
  Json.Obj
    [ ("op", Json.String "add");
      ("key", Json.String e.e_key);
      ("job", Protocol.job_to_json e.e_job);
      ("jobs", Json.Int e.e_jobs);
      ("lane", Json.String (Protocol.lane_to_string e.e_lane));
      ( "deadline",
        match e.e_deadline with None -> Json.Null | Some d -> Json.Float d );
      ("backend", Json.String (Protocol.backend_to_string e.e_backend));
      ("cert_cache", Json.Bool e.e_cert_cache);
      ("por", Json.Bool e.e_por);
      ("sym", Json.Bool e.e_sym) ]

let entry_of_json j : entry =
  { e_key = Json.to_str (Json.member "key" j);
    e_job = Protocol.job_of_json (Json.member "job" j);
    e_jobs = Json.to_int (Json.member "jobs" j);
    e_lane = Protocol.lane_of_string (Json.to_str (Json.member "lane" j));
    e_deadline =
      (match Json.member "deadline" j with
      | Json.Null -> None
      | d -> Some (Json.to_float d));
    e_backend =
      Protocol.backend_of_string (Json.to_str (Json.member "backend" j));
    e_cert_cache = Json.to_bool (Json.member "cert_cache" j);
    e_por = Json.to_bool (Json.member "por" j);
    e_sym = Json.to_bool (Json.member "sym" j) }

(* One pass over the file: adds in order (first add wins per key), done
   keys as a set. Unparsable lines — a torn tail after a crash — are
   skipped. *)
let load path : entry list =
  match open_in_bin path with
  | exception _ -> []
  | ic ->
      let adds = ref [] and dones = Hashtbl.create 32 in
      (try
         while true do
           let line = input_line ic in
           match Json.of_string line with
           | Error _ -> ()
           | Ok j -> (
               (* a record that fails to decode is treated like a torn
                  line: skipped, never fatal *)
               try
                 match Json.to_str (Json.member "op" j) with
                 | "add" -> adds := entry_of_json j :: !adds
                 | "done" ->
                     Hashtbl.replace dones
                       (Json.to_str (Json.member "key" j))
                       ()
                 | _ -> ()
               with Json.Decode _ -> ())
         done
       with End_of_file -> close_in_noerr ic);
      let seen = Hashtbl.create 32 in
      List.rev !adds
      |> List.filter (fun e ->
             if Hashtbl.mem dones e.e_key || Hashtbl.mem seen e.e_key then
               false
             else begin
               Hashtbl.add seen e.e_key ();
               true
             end)

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let append t (j : Json.t) =
  locked t (fun () ->
      match t.oc with
      | None -> ()
      | Some oc ->
          output_string oc (Json.to_string j);
          output_char oc '\n';
          flush oc)

let open_ path =
  let pending = load path in
  (* compact: the rewritten file holds exactly the pending adds, so the
     replay that follows is crash-safe — nothing is lost if the process
     dies between here and the resubmissions. *)
  let oc = open_out_bin path in
  let t = { path; oc = Some oc; m = Mutex.create () } in
  List.iter (fun e -> append t (entry_to_json e)) pending;
  (t, pending)

let record_add t (e : entry) = append t (entry_to_json e)

let record_done t ~key =
  append t (Json.Obj [ ("op", Json.String "done"); ("key", Json.String key) ])

let close t =
  locked t (fun () ->
      match t.oc with
      | None -> ()
      | Some oc ->
          (try flush oc with _ -> ());
          (try close_out_noerr oc with _ -> ());
          t.oc <- None)
