(** The vrmd wire protocol: length-prefixed JSON over a Unix domain
    socket.

    Framing: each message is a 4-byte big-endian payload length followed
    by that many bytes of compact JSON ({!Cache.Json}). Length-prefixing
    (rather than newline-delimiting) keeps payloads free to contain any
    rendered text, and lets both sides pre-allocate the read buffer.
    Frames above {!max_frame} are rejected — a malformed peer cannot make
    the server allocate unboundedly. *)

open Cache

(** A verification job, addressed by corpus name: programs live in the
    repository's corpora, so clients name them; the {e cache} keys on the
    program's content digest, never the name. *)
type job =
  | Litmus of string  (** run one litmus test (SC + Promising) *)
  | Refine of string  (** refinement check of one kernel-corpus program *)
  | Certify of { linux : string; stage2_levels : int }
      (** full wDRF certificate for one KVM version *)

(** Which engine decides a litmus job: the explicit-state enumerators
    (SC + Promising) or the SAT-based bounded model checker. Absent on
    the wire means [Explicit], so older clients are unaffected. Part of
    the scheduler's cache key. Only litmus jobs accept [Bmc]. *)
type backend = Explicit | Bmc

val backend_to_string : backend -> string

val backend_of_string : string -> backend
(** Raises {!Cache.Json.Decode} on unknown names. *)

type request =
  | Submit of {
      job : job;
      jobs : int;
      deadline_s : float option;
      backend : backend;
      cert_cache : bool;
      por : bool;
      sym : bool;
    }
      (** [jobs] = exploration domains; [deadline_s] = seconds from
          submission before the job is cancelled; [backend] selects the
          deciding engine for litmus jobs (default [Explicit]);
          [cert_cache] toggles certification memoization, [por]
          partial-order reduction and [sym] thread-symmetry reduction
          (all default true — absent on the wire means true, so older
          clients are unaffected) *)
  | Status
  | Shutdown  (** graceful: drain in-flight jobs, then stop serving *)

type response =
  | Result of Json.t  (** completed job payload (a {!Cache.Codec} value) *)
  | Status_r of Json.t  (** service counters *)
  | Error_r of string  (** unknown job, timeout, decode failure, ... *)
  | Bye  (** shutdown acknowledged *)

val job_to_json : job -> Json.t
val job_of_json : Json.t -> job
val request_to_json : request -> Json.t
val request_of_json : Json.t -> request
val response_to_json : response -> Json.t
val response_of_json : Json.t -> response

val max_frame : int
(** Upper bound on accepted frame sizes (bytes). *)

val send : Unix.file_descr -> Json.t -> unit
(** Write one frame (blocking, handles short writes). *)

val recv : Unix.file_descr -> Json.t option
(** Read one frame; [None] on orderly EOF before a frame starts. Raises
    [Failure] on truncated frames, oversized lengths or malformed JSON. *)
