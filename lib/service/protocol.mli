(** The vrmd wire protocol: length-prefixed JSON over a Unix domain
    socket.

    Framing: each message is a 4-byte big-endian payload length followed
    by that many bytes of compact JSON ({!Cache.Json}). Length-prefixing
    (rather than newline-delimiting) keeps payloads free to contain any
    rendered text, and lets both sides pre-allocate the read buffer.
    Frames above {!max_frame} are rejected — a malformed peer cannot make
    the server allocate unboundedly. *)

open Cache

(** A verification job, addressed by corpus name: programs live in the
    repository's corpora, so clients name them; the {e cache} keys on the
    program's content digest, never the name. *)
type job =
  | Litmus of string  (** run one litmus test (SC + Promising) *)
  | Refine of string  (** refinement check of one kernel-corpus program *)
  | Certify of { linux : string; stage2_levels : int }
      (** full wDRF certificate for one KVM version *)

(** Which engine decides a litmus job: the explicit-state enumerators
    (SC + Promising) or the SAT-based bounded model checker. Absent on
    the wire means [Explicit], so older clients are unaffected. Part of
    the scheduler's cache key. Only litmus jobs accept [Bmc]. *)
type backend = Explicit | Bmc

(** The scheduling lane a submission joins. [Interactive] is the
    low-latency lane for humans at a prompt; [Bulk] is for corpus
    sweeps. The scheduler serves interactive strictly first and keeps a
    worker reserved for it, so a saturated bulk sweep cannot starve
    interactive tail latency. Absent on the wire means [Interactive].
    The lane is {e not} part of the cache key. *)
type lane = Interactive | Bulk

val backend_to_string : backend -> string

val backend_of_string : string -> backend
(** Raises {!Cache.Json.Decode} on unknown names. *)

val lane_to_string : lane -> string

val lane_of_string : string -> lane
(** Raises {!Cache.Json.Decode} on unknown names. *)

type request =
  | Submit of {
      job : job;
      jobs : int;
      deadline_s : float option;
      backend : backend;
      cert_cache : bool;
      por : bool;
      sym : bool;
      lane : lane;
    }
      (** [jobs] = exploration domains; [deadline_s] = seconds from
          submission before the job is cancelled; [backend] selects the
          deciding engine for litmus jobs (default [Explicit]);
          [cert_cache] toggles certification memoization, [por]
          partial-order reduction and [sym] thread-symmetry reduction
          (all default true — absent on the wire means true, so older
          clients are unaffected); [lane] picks the scheduling lane
          (absent = [Interactive]) *)
  | Status
  | Shutdown  (** graceful: drain in-flight jobs, then stop serving *)

(** The [Overloaded_r] contract: the server sheds a submission {e at
    admission time} when the requested lane's queue is at its depth
    limit — the job was never queued, nothing was computed, and the
    submission had no side effect. [retry_after_s] is the server's
    estimate of when capacity frees up (current queue depth times the
    observed mean job wall time over the worker count); clients should
    back off at least that long before resubmitting. *)
type response =
  | Result of Json.t  (** completed job payload (a {!Cache.Codec} value) *)
  | Status_r of Json.t  (** service counters *)
  | Error_r of string  (** unknown job, timeout, decode failure, ... *)
  | Overloaded_r of { retry_after_s : float }
      (** load shed: the lane's queue is full; retry after the hint *)
  | Bye  (** shutdown acknowledged *)

val job_to_json : job -> Json.t
val job_of_json : Json.t -> job
val request_to_json : request -> Json.t
val request_of_json : Json.t -> request
val response_to_json : response -> Json.t
val response_of_json : Json.t -> response

val max_frame : int
(** Upper bound on accepted frame sizes (16 MiB). *)

exception Frame_too_large of int
(** Raised by {!send} when the encoded payload exceeds {!max_frame}, and
    by {!recv} when the peer announces an oversized frame. On the
    receive side the oversized payload is drained in bounded chunks
    first, so the stream stays frame-aligned and the connection can keep
    serving — the server answers with a structured [Error_r] instead of
    attempting an unbounded [Bytes.create]. *)

val send : Unix.file_descr -> Json.t -> unit
(** Write one frame (blocking, handles short writes). *)

val recv : Unix.file_descr -> Json.t option
(** Read one frame; [None] on orderly EOF before a frame starts. Raises
    {!Frame_too_large} on oversized frames (after draining them) and
    [Failure] on truncated frames, negative lengths or malformed JSON. *)
