(** The vrmd job scheduler. See the interface for the semantics; the
    implementation notes here are about the concurrency structure.

    One mutex guards all mutable scheduler state (queue, in-flight
    table, counters, tickets). Two condition variables: [work_cv] wakes
    workers when a job is enqueued or the pool is stopped; [done_cv]
    wakes awaiters/drainers whenever any job completes. Workers are
    OCaml 5 domains — a job's own exploration may spawn further domains
    ([jobs > 1]), which composes fine. Job execution happens outside the
    lock; only the bookkeeping before and after holds it. *)

open Cache
open Memmodel
open Sekvm

type spec =
  | Litmus_spec of Litmus.t
  | Refine_spec of Kernel_progs.entry
  | Certify_spec of Kernel_progs.version

let find_by name f xs = List.find_opt (fun x -> f x = name) xs

let lookup_job (job : Protocol.job) : (spec, string) result =
  match job with
  | Protocol.Litmus name -> (
      let tests = Paper_examples.all @ Litmus_suite.all in
      match find_by name (fun (t : Litmus.t) -> t.prog.name) tests with
      | Some t -> Ok (Litmus_spec t)
      | None -> Error (Printf.sprintf "unknown litmus test %S" name))
  | Protocol.Refine name -> (
      let entries =
        Kernel_progs.corpus @ Kernel_progs.buggy_corpus
        @ Kernel_progs.boundary_corpus @ Kernel_progs.lint_corpus
        @ Kernel_progs.sym_corpus
      in
      match find_by name (fun (e : Kernel_progs.entry) -> e.name) entries with
      | Some e -> Ok (Refine_spec e)
      | None -> Error (Printf.sprintf "unknown kernel program %S" name))
  | Protocol.Certify { linux; stage2_levels } ->
      Ok (Certify_spec { Kernel_progs.linux; stage2_levels })

(* The sc_fuel used for every service-side litmus/refinement run; part
   of the budgets string, so changing it cannot alias old entries. *)
let sc_fuel = 8

let litmus_config (t : Litmus.t) =
  match t.rm_config with Some c -> c | None -> Promising.default_config

let budgets_of_config config =
  Printf.sprintf "sc_fuel=%d;%s" sc_fuel (Fingerprint.promising_config config)

(* The per-job certification-memoization override, folded into the
   effective config — and hence, via [Fingerprint.promising_config],
   into the cache key, so runs with the cache on and off never alias. *)
let with_cert_cache cert_cache (config : Promising.config) =
  { config with Promising.cert_cache }

let cache_key ?(backend = Protocol.Explicit) ?(cert_cache = true)
    ?(por = true) ?(sym = true) (spec : spec) : string =
  (* [por] and [sym] are part of the budgets: behavior sets are
     identical either way, but the cached payload embeds exploration
     statistics, and an A/B submission must not be served the other
     arm's counters. *)
  let por_tag = Printf.sprintf ";por=%b;sym=%b" por sym in
  (* [backend] too: a BMC litmus payload has a different shape (and a
     different deciding engine) than the explicit one, so the two must
     never alias. *)
  let backend_tag =
    Printf.sprintf ";backend=%s" (Protocol.backend_to_string backend)
  in
  let model, budgets, prog_digest =
    match spec with
    | Litmus_spec t ->
        ( "litmus",
          budgets_of_config (with_cert_cache cert_cache (litmus_config t))
          ^ por_tag ^ backend_tag,
          Fingerprint.prog t.prog )
    | Refine_spec e ->
        (* The analyzer version is part of the budgets: a lint upgrade
           must not serve results decided by the old passes. *)
        ( "refine",
          budgets_of_config (with_cert_cache cert_cache e.rm_config)
          ^ por_tag ^ ";lint=" ^ Analysis.Driver.version,
          Fingerprint.prog e.prog )
    | Certify_spec v ->
        (* A certificate depends on the whole corpus (good, buggy and
           boundary entries all feed the report), each entry's budgets,
           and the version under audit — so its digest covers all of
           them. *)
        let entry_digest (e : Kernel_progs.entry) =
          Printf.sprintf "%s|%s|%s|%s" (Fingerprint.prog e.prog)
            (Fingerprint.promising_config e.rm_config)
            (String.concat "," e.exempt)
            (String.concat ","
               (List.map
                  (fun (b, c) -> Printf.sprintf "%s=%d" b c)
                  e.initial_owners))
        in
        let corpus =
          Kernel_progs.corpus @ Kernel_progs.buggy_corpus
          @ Kernel_progs.boundary_corpus
        in
        let body =
          Printf.sprintf "%s/%d\x00%s" v.Kernel_progs.linux v.stage2_levels
            (String.concat "\x00" (List.map entry_digest corpus))
        in
        ("certify", "", Digest.to_hex (Digest.string body))
  in
  (* Keyed on [Engine.version]: an engine overhaul that could change
     stats or exploration order (interning, POR, work stealing) bumps the
     version and thereby invalidates every cached result — no manual
     cache flush needed, stale entries are simply never looked up. *)
  Store.make_key ~engine_version:Engine.version ~model ~budgets ~prog_digest

type outcome = Done of Json.t | Timed_out | Failed of string
type meta = { from_cache : bool; wall_s : float }

type ticket = {
  tk_key : string;
  tk_spec : spec;
  tk_jobs : int;
  tk_deadline : float option;  (** absolute, [Unix.gettimeofday] scale *)
  tk_backend : Protocol.backend;
  tk_cert_cache : bool;
  tk_por : bool;
  tk_sym : bool;
  mutable tk_result : (outcome * meta) option;
}

type t = {
  store : Store.t;
  queue : ticket Queue.t;
  inflight : (string, ticket) Hashtbl.t;  (** key -> queued/running ticket *)
  mutable domains : unit Domain.t list;
  mutable stopping : bool;
  mutable stopped : bool;
  m : Mutex.t;
  work_cv : Condition.t;
  done_cv : Condition.t;
  n_workers : int;
  (* counters, all guarded by [m] *)
  mutable submitted : int;
  mutable completed : int;
  mutable failed : int;
  mutable timeouts : int;
  mutable coalesced : int;
  mutable litmus_jobs : int;
  mutable refine_jobs : int;
  mutable certify_jobs : int;
  mutable static_served : int;
  mutable running : int;
  mutable engine : Engine.stats;
}

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let cache t = t.store

let timed_out_by ~deadline (stats : Engine.stats) =
  match deadline with
  | None -> false
  | Some d -> stats.Engine.budget_hit && Unix.gettimeofday () >= d

(* Execute one job (no scheduler lock held). Returns the outcome, the
   engine stats to aggregate (None for cache hits and certificates),
   and whether the result is safe to cache. *)
let execute tk :
    outcome * Engine.stats option * [ `Cacheable | `Transient ] =
  let deadline = tk.tk_deadline in
  let jobs = tk.tk_jobs in
  match (tk.tk_spec, tk.tk_backend) with
  | Litmus_spec test, Protocol.Bmc ->
      (* The SAT backend has no mid-run cancellation valve; the
         queue-level deadline (checked before execution) still applies.
         No engine stats to aggregate — its counters live in the
         payload. *)
      let rm = Bmc.check ~mode:Bmc.Arm test.prog in
      let sc = Bmc.check ~mode:Bmc.Sc test.prog in
      ( Done (Codec.bmc_to_json (Codec.bmc_summary test ~rm ~sc)),
        None,
        `Cacheable )
  | (Refine_spec _ | Certify_spec _), Protocol.Bmc ->
      (* also rejected at the server boundary; kept here so direct
         scheduler users get the same clean failure *)
      (Failed "backend=bmc only decides litmus jobs", None, `Transient)
  | Litmus_spec test, Protocol.Explicit ->
      let r =
        Litmus.run ~sc_fuel ~jobs ?deadline ~por:tk.tk_por ~sym:tk.tk_sym
          ~cert_cache:tk.tk_cert_cache test
      in
      let stats = Engine.add_stats r.sc_stats r.rm_stats in
      if timed_out_by ~deadline r.sc_stats
         || timed_out_by ~deadline r.rm_stats
      then (Timed_out, Some stats, `Transient)
      else
        ( Done (Codec.litmus_to_json (Codec.litmus_summary r)),
          Some stats,
          `Cacheable )
  | Refine_spec e, Protocol.Explicit ->
      (* Analyzer-first routing: when every lint pass and the static
         refinement composition pass, the soundness contract (enforced
         by the cross-validation suite) guarantees the exploration would
         succeed, so the job is served statically. Fail or Unknown falls
         through to the exhaustive check. *)
      let a = Analysis.Driver.analyze e in
      if
        a.Analysis.Driver.a_overall = Analysis.Diag.Pass
        && a.Analysis.Driver.a_refinement = Analysis.Diag.Pass
      then
        ( Done
            (Codec.refine_to_json_static
               (Codec.static_refine_summary ~name:e.name e.prog)),
          None,
          `Cacheable )
      else
        (* Adaptive inner fan-out: the pool already distributes
           independent requests across worker domains (corpus-level
           parallelism), so a small search here stays sequential; only a
           search that outgrows the visited-states threshold spends the
           ticket's [jobs] fan-out. *)
        let v =
          Vrm.Refinement.check_adaptive ~sc_fuel
            ~config:(with_cert_cache tk.tk_cert_cache e.rm_config)
            ~jobs ?deadline ~por:tk.tk_por ~sym:tk.tk_sym e.prog
        in
        let stats = Engine.add_stats v.sc_stats v.rm_stats in
        if timed_out_by ~deadline v.sc_stats
           || timed_out_by ~deadline v.rm_stats
        then (Timed_out, Some stats, `Transient)
        else
          ( Done
              (Codec.refine_to_json
                 (Codec.refine_summary ~name:e.name e.prog v)),
            Some stats,
            `Cacheable )
  | Certify_spec version, Protocol.Explicit ->
      (* Certificates have no engine-level cancellation hook; they only
         honor the queue-level deadline (checked before execution). *)
      let report = Vrm.Certificate.certify version in
      ( Done (Codec.certificate_to_json (Vrm.Certificate.summarize report)),
        None,
        `Cacheable )

let run_one t tk =
  let t0 = Unix.gettimeofday () in
  let result =
    match Store.find t.store tk.tk_key with
    | Some payload ->
        ((Done payload, { from_cache = true; wall_s = 0. }), None, `Transient)
    | None -> (
        let expired =
          match tk.tk_deadline with
          | Some d -> Unix.gettimeofday () >= d
          | None -> false
        in
        if expired then
          ((Timed_out, { from_cache = false; wall_s = 0. }), None, `Transient)
        else
          match execute tk with
          | outcome, stats, cacheable ->
              ( ( outcome,
                  { from_cache = false;
                    wall_s = Unix.gettimeofday () -. t0 } ),
                stats,
                cacheable )
          | exception exn ->
              ( ( Failed (Printexc.to_string exn),
                  { from_cache = false;
                    wall_s = Unix.gettimeofday () -. t0 } ),
                None,
                `Transient ))
  in
  let ((outcome, _) as result), stats, cacheable = result in
  (match (outcome, cacheable) with
  | Done payload, `Cacheable -> Store.add t.store tk.tk_key payload
  | _ -> ());
  locked t (fun () ->
      (match stats with
      | Some s -> t.engine <- Engine.add_stats t.engine s
      | None -> ());
      (match outcome with
      | Done payload ->
          t.completed <- t.completed + 1;
          if Codec.refine_served_by_static payload then
            t.static_served <- t.static_served + 1
      | Timed_out -> t.timeouts <- t.timeouts + 1
      | Failed _ -> t.failed <- t.failed + 1);
      tk.tk_result <- Some result;
      Hashtbl.remove t.inflight tk.tk_key;
      t.running <- t.running - 1;
      Condition.broadcast t.done_cv)

let rec worker_loop t =
  let job =
    locked t (fun () ->
        while Queue.is_empty t.queue && not t.stopping do
          Condition.wait t.work_cv t.m
        done;
        if Queue.is_empty t.queue then None
        else begin
          let tk = Queue.pop t.queue in
          t.running <- t.running + 1;
          Some tk
        end)
  in
  match job with
  | None -> ()
  | Some tk ->
      run_one t tk;
      worker_loop t

let create ?workers ?cache () =
  let n_workers =
    match workers with
    | Some n -> max 1 n
    | None -> max 2 (Domain.recommended_domain_count () - 1)
  in
  let store =
    match cache with
    | Some s -> s
    | None -> Store.create ~engine_version:Engine.version ()
  in
  let t =
    { store;
      queue = Queue.create ();
      inflight = Hashtbl.create 32;
      domains = [];
      stopping = false;
      stopped = false;
      m = Mutex.create ();
      work_cv = Condition.create ();
      done_cv = Condition.create ();
      n_workers;
      submitted = 0;
      completed = 0;
      failed = 0;
      timeouts = 0;
      coalesced = 0;
      litmus_jobs = 0;
      refine_jobs = 0;
      certify_jobs = 0;
      static_served = 0;
      running = 0;
      engine = Engine.zero_stats }
  in
  t.domains <-
    List.init n_workers (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let submit t ?(jobs = 1) ?deadline_s ?(backend = Protocol.Explicit)
    ?(cert_cache = true) ?(por = true) ?(sym = true) spec =
  let key = cache_key ~backend ~cert_cache ~por ~sym spec in
  let deadline =
    Option.map (fun s -> Unix.gettimeofday () +. s) deadline_s
  in
  locked t (fun () ->
      t.submitted <- t.submitted + 1;
      (match spec with
      | Litmus_spec _ -> t.litmus_jobs <- t.litmus_jobs + 1
      | Refine_spec _ -> t.refine_jobs <- t.refine_jobs + 1
      | Certify_spec _ -> t.certify_jobs <- t.certify_jobs + 1);
      match Hashtbl.find_opt t.inflight key with
      | Some tk ->
          t.coalesced <- t.coalesced + 1;
          tk
      | None ->
          let tk =
            { tk_key = key;
              tk_spec = spec;
              tk_jobs = max 1 jobs;
              tk_deadline = deadline;
              tk_backend = backend;
              tk_cert_cache = cert_cache;
              tk_por = por;
              tk_sym = sym;
              tk_result = None }
          in
          if t.stopping then
            tk.tk_result <-
              Some
                ( Failed "scheduler is shut down",
                  { from_cache = false; wall_s = 0. } )
          else begin
            Hashtbl.replace t.inflight key tk;
            Queue.push tk t.queue;
            Condition.signal t.work_cv
          end;
          tk)

let await t tk =
  locked t (fun () ->
      while tk.tk_result = None do
        Condition.wait t.done_cv t.m
      done;
      Option.get tk.tk_result)

let run t ?jobs ?deadline_s ?backend ?cert_cache ?por ?sym spec =
  await t (submit t ?jobs ?deadline_s ?backend ?cert_cache ?por ?sym spec)

type counters = {
  submitted : int;
  completed : int;
  failed : int;
  timeouts : int;
  coalesced : int;
  litmus_jobs : int;
  refine_jobs : int;
  certify_jobs : int;
  static_served : int;
  queue_depth : int;
  running : int;
  workers : int;
  engine : Engine.stats;
  cache_stats : Store.counters;
}

let counters t : counters =
  let c =
    locked t (fun () ->
        { submitted = t.submitted;
          completed = t.completed;
          failed = t.failed;
          timeouts = t.timeouts;
          coalesced = t.coalesced;
          litmus_jobs = t.litmus_jobs;
          refine_jobs = t.refine_jobs;
          certify_jobs = t.certify_jobs;
          static_served = t.static_served;
          queue_depth = Queue.length t.queue;
          running = t.running;
          workers = t.n_workers;
          engine = t.engine;
          cache_stats = Store.counters t.store })
  in
  c

let counters_to_json (c : counters) : Json.t =
  let s = c.engine in
  let cs = c.cache_stats in
  Json.Obj
    [ ("submitted", Json.Int c.submitted);
      ("completed", Json.Int c.completed);
      ("failed", Json.Int c.failed);
      ("timeouts", Json.Int c.timeouts);
      ("coalesced", Json.Int c.coalesced);
      ("litmus_jobs", Json.Int c.litmus_jobs);
      ("refine_jobs", Json.Int c.refine_jobs);
      ("certify_jobs", Json.Int c.certify_jobs);
      ("static_served", Json.Int c.static_served);
      ("queue_depth", Json.Int c.queue_depth);
      ("running", Json.Int c.running);
      ("workers", Json.Int c.workers);
      ("engine", Codec.stats_to_json s);
      ( "cache",
        Json.Obj
          [ ("hits", Json.Int cs.Store.hits);
            ("misses", Json.Int cs.Store.misses);
            ("disk_hits", Json.Int cs.Store.disk_hits);
            ("stores", Json.Int cs.Store.stores);
            ("corrupt", Json.Int cs.Store.corrupt);
            ("entries", Json.Int cs.Store.entries) ] ) ]

let pp_counters fmt (c : counters) =
  Format.fprintf fmt
    "@[<v>jobs: submitted=%d completed=%d failed=%d timeouts=%d coalesced=%d@ \
     kinds: litmus=%d refine=%d certify=%d static_served=%d@ pool: \
     workers=%d queued=%d running=%d@ engine: %a@ cache: %a@]"
    c.submitted c.completed c.failed c.timeouts c.coalesced c.litmus_jobs
    c.refine_jobs c.certify_jobs c.static_served c.workers c.queue_depth
    c.running Engine.pp_stats c.engine Store.pp_counters c.cache_stats

let drain t =
  locked t (fun () ->
      while not (Queue.is_empty t.queue && t.running = 0) do
        Condition.wait t.done_cv t.m
      done)

let shutdown t =
  drain t;
  let domains =
    locked t (fun () ->
        if t.stopped then []
        else begin
          t.stopping <- true;
          t.stopped <- true;
          Condition.broadcast t.work_cv;
          let ds = t.domains in
          t.domains <- [];
          ds
        end)
  in
  List.iter Domain.join domains
