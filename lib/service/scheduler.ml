(** The vrmd job scheduler. See the interface for the semantics; the
    implementation notes here are about the concurrency structure.

    One mutex guards all mutable scheduler state (lane queues, in-flight
    table, fingerprint memo, counters, tickets). Two condition
    variables: [work_cv] wakes workers when a job is enqueued or the
    pool is stopped; [done_cv] wakes awaiters/drainers whenever any job
    completes. Workers are OCaml 5 domains — a job's own exploration may
    spawn further domains ([jobs > 1]), which composes fine. Job
    execution happens outside the lock; only the bookkeeping before and
    after holds it.

    Lane discipline: workers always pop the interactive queue first;
    when the pool has at least two workers, worker 0 is {e reserved} —
    it only ever pops interactive — so an interactive arrival waits for
    at most one in-flight job regardless of how deep the bulk backlog
    is. Bulk pops take the head ticket {e and} every queued bulk ticket
    on the same program digest (a batch): the programs decode once into
    the fingerprint memo and the batch runs back-to-back on one worker,
    so a corpus sweep touching one program under many configs pays one
    canonicalization, not N. *)

open Cache
open Memmodel
open Sekvm

type spec =
  | Litmus_spec of Litmus.t
  | Refine_spec of Kernel_progs.entry
  | Certify_spec of Kernel_progs.version

let find_by name f xs = List.find_opt (fun x -> f x = name) xs

let lookup_job (job : Protocol.job) : (spec, string) result =
  match job with
  | Protocol.Litmus name -> (
      let tests = Paper_examples.all @ Litmus_suite.all in
      match find_by name (fun (t : Litmus.t) -> t.prog.name) tests with
      | Some t -> Ok (Litmus_spec t)
      | None -> Error (Printf.sprintf "unknown litmus test %S" name))
  | Protocol.Refine name -> (
      let entries =
        Kernel_progs.corpus @ Kernel_progs.buggy_corpus
        @ Kernel_progs.boundary_corpus @ Kernel_progs.lint_corpus
        @ Kernel_progs.sym_corpus
      in
      match find_by name (fun (e : Kernel_progs.entry) -> e.name) entries with
      | Some e -> Ok (Refine_spec e)
      | None -> Error (Printf.sprintf "unknown kernel program %S" name))
  | Protocol.Certify { linux; stage2_levels } ->
      Ok (Certify_spec { Kernel_progs.linux; stage2_levels })

let job_of_spec : spec -> Protocol.job = function
  | Litmus_spec t -> Protocol.Litmus t.prog.name
  | Refine_spec e -> Protocol.Refine e.name
  | Certify_spec v ->
      Protocol.Certify
        { linux = v.Kernel_progs.linux; stage2_levels = v.stage2_levels }

(* The sc_fuel used for every service-side litmus/refinement run; part
   of the budgets string, so changing it cannot alias old entries. *)
let sc_fuel = 8

let litmus_config (t : Litmus.t) =
  match t.rm_config with Some c -> c | None -> Promising.default_config

let budgets_of_config config =
  Printf.sprintf "sc_fuel=%d;%s" sc_fuel (Fingerprint.promising_config config)

(* The per-job certification-memoization override, folded into the
   effective config — and hence, via [Fingerprint.promising_config],
   into the cache key, so runs with the cache on and off never alias. *)
let with_cert_cache cert_cache (config : Promising.config) =
  { config with Promising.cert_cache }

(* A memo-friendly identity for a spec's program: what the fingerprint
   memo is keyed by. Kind-prefixed so a litmus test and a kernel
   program sharing a name can never alias. *)
let spec_id = function
  | Litmus_spec t -> "litmus:" ^ t.prog.name
  | Refine_spec e -> "refine:" ^ e.name
  | Certify_spec v ->
      Printf.sprintf "certify:%s/%d" v.Kernel_progs.linux v.stage2_levels

(* The program-digest component of the cache key: the [Fingerprint]
   decode that the scheduler memoizes per program. *)
let prog_digest_of_spec = function
  | Litmus_spec t -> Fingerprint.prog t.prog
  | Refine_spec e -> Fingerprint.prog e.prog
  | Certify_spec v ->
      (* A certificate depends on the whole corpus (good, buggy and
         boundary entries all feed the report), each entry's budgets,
         and the version under audit — so its digest covers all of
         them. *)
      let entry_digest (e : Kernel_progs.entry) =
        Printf.sprintf "%s|%s|%s|%s" (Fingerprint.prog e.prog)
          (Fingerprint.promising_config e.rm_config)
          (String.concat "," e.exempt)
          (String.concat ","
             (List.map
                (fun (b, c) -> Printf.sprintf "%s=%d" b c)
                e.initial_owners))
      in
      let corpus =
        Kernel_progs.corpus @ Kernel_progs.buggy_corpus
        @ Kernel_progs.boundary_corpus
      in
      let body =
        Printf.sprintf "%s/%d\x00%s" v.Kernel_progs.linux v.stage2_levels
          (String.concat "\x00" (List.map entry_digest corpus))
      in
      Digest.to_hex (Digest.string body)

let cache_key_with ~prog_digest ?(backend = Protocol.Explicit)
    ?(cert_cache = true) ?(por = true) ?(sym = true) (spec : spec) : string =
  (* [por] and [sym] are part of the budgets: behavior sets are
     identical either way, but the cached payload embeds exploration
     statistics, and an A/B submission must not be served the other
     arm's counters. *)
  let por_tag = Printf.sprintf ";por=%b;sym=%b" por sym in
  (* [backend] too: a BMC litmus payload has a different shape (and a
     different deciding engine) than the explicit one, so the two must
     never alias. *)
  let backend_tag =
    Printf.sprintf ";backend=%s" (Protocol.backend_to_string backend)
  in
  let model, budgets =
    match spec with
    | Litmus_spec t ->
        ( "litmus",
          budgets_of_config (with_cert_cache cert_cache (litmus_config t))
          ^ por_tag ^ backend_tag )
    | Refine_spec e ->
        (* The analyzer version is part of the budgets: a lint upgrade
           must not serve results decided by the old passes. *)
        ( "refine",
          budgets_of_config (with_cert_cache cert_cache e.rm_config)
          ^ por_tag ^ ";lint=" ^ Analysis.Driver.version )
    | Certify_spec _ -> ("certify", "")
  in
  (* Keyed on [Engine.version]: an engine overhaul that could change
     stats or exploration order (interning, POR, work stealing) bumps the
     version and thereby invalidates every cached result — no manual
     cache flush needed, stale entries are simply never looked up. *)
  Store.make_key ~engine_version:Engine.version ~model ~budgets ~prog_digest

let cache_key ?backend ?cert_cache ?por ?sym spec =
  cache_key_with
    ~prog_digest:(prog_digest_of_spec spec)
    ?backend ?cert_cache ?por ?sym spec

type outcome =
  | Done of Json.t
  | Timed_out
  | Deadline_expired
  | Overloaded of { retry_after_s : float }
  | Failed of string

type meta = { from_cache : bool; wall_s : float }

type ticket = {
  tk_key : string;
  tk_spec : spec;
  tk_prog : string;  (** program digest: the batching identity *)
  tk_jobs : int;
  tk_deadline : float option;  (** absolute, [Unix.gettimeofday] scale *)
  tk_lane : Protocol.lane;
  tk_backend : Protocol.backend;
  tk_cert_cache : bool;
  tk_por : bool;
  tk_sym : bool;
  mutable tk_result : (outcome * meta) option;
}

type t = {
  hot : Hot.t;
  iq : ticket Queue.t;  (** interactive lane *)
  bq : ticket Queue.t;  (** bulk lane *)
  interactive_depth : int;
  bulk_depth : int;
  inflight : (string, ticket) Hashtbl.t;  (** key -> queued/running ticket *)
  fp_memo : (string, string) Hashtbl.t;  (** spec_id -> program digest *)
  journal : Journal.t option;
  mutable domains : unit Domain.t list;
  mutable stopping : bool;
  mutable stopped : bool;
  m : Mutex.t;
  work_cv : Condition.t;
  done_cv : Condition.t;
  n_workers : int;
  (* counters, all guarded by [m] *)
  mutable submitted : int;
  mutable completed : int;
  mutable failed : int;
  mutable timeouts : int;
  mutable expired : int;
  mutable coalesced : int;
  mutable shed_interactive : int;
  mutable shed_bulk : int;
  mutable lane_interactive : int;
  mutable lane_bulk : int;
  mutable batches : int;
  mutable batched : int;
  mutable fp_memo_hits : int;
  mutable litmus_jobs : int;
  mutable refine_jobs : int;
  mutable certify_jobs : int;
  mutable static_served : int;
  mutable running : int;
  mutable exec_wall : float;  (** total wall of executed (non-hit) jobs *)
  mutable exec_count : int;
  mutable engine : Engine.stats;
}

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let cache t = Hot.store t.hot
let hot t = t.hot

let timed_out_by ~deadline (stats : Engine.stats) =
  match deadline with
  | None -> false
  | Some d -> stats.Engine.budget_hit && Unix.gettimeofday () >= d

(* Execute one job (no scheduler lock held). Returns the outcome, the
   engine stats to aggregate (None for cache hits and certificates),
   and whether the result is safe to cache. *)
let execute tk :
    outcome * Engine.stats option * [ `Cacheable | `Transient ] =
  let deadline = tk.tk_deadline in
  let jobs = tk.tk_jobs in
  match (tk.tk_spec, tk.tk_backend) with
  | Litmus_spec test, Protocol.Bmc ->
      (* The SAT backend has no mid-run cancellation valve; the
         queue-level deadline (checked before execution) still applies.
         No engine stats to aggregate — its counters live in the
         payload. *)
      let rm = Bmc.check ~mode:Bmc.Arm test.prog in
      let sc = Bmc.check ~mode:Bmc.Sc test.prog in
      ( Done (Codec.bmc_to_json (Codec.bmc_summary test ~rm ~sc)),
        None,
        `Cacheable )
  | (Refine_spec _ | Certify_spec _), Protocol.Bmc ->
      (* also rejected at the server boundary; kept here so direct
         scheduler users get the same clean failure *)
      (Failed "backend=bmc only decides litmus jobs", None, `Transient)
  | Litmus_spec test, Protocol.Explicit ->
      let r =
        Litmus.run ~sc_fuel ~jobs ?deadline ~por:tk.tk_por ~sym:tk.tk_sym
          ~cert_cache:tk.tk_cert_cache test
      in
      let stats = Engine.add_stats r.sc_stats r.rm_stats in
      if timed_out_by ~deadline r.sc_stats
         || timed_out_by ~deadline r.rm_stats
      then (Timed_out, Some stats, `Transient)
      else
        ( Done (Codec.litmus_to_json (Codec.litmus_summary r)),
          Some stats,
          `Cacheable )
  | Refine_spec e, Protocol.Explicit ->
      (* Analyzer-first routing: when every lint pass and the static
         refinement composition pass, the soundness contract (enforced
         by the cross-validation suite) guarantees the exploration would
         succeed, so the job is served statically. Fail or Unknown falls
         through to the exhaustive check. *)
      let a = Analysis.Driver.analyze e in
      if
        a.Analysis.Driver.a_overall = Analysis.Diag.Pass
        && a.Analysis.Driver.a_refinement = Analysis.Diag.Pass
      then
        ( Done
            (Codec.refine_to_json_static
               (Codec.static_refine_summary ~name:e.name e.prog)),
          None,
          `Cacheable )
      else
        (* Adaptive inner fan-out: the pool already distributes
           independent requests across worker domains (corpus-level
           parallelism), so a small search here stays sequential; only a
           search that outgrows the visited-states threshold spends the
           ticket's [jobs] fan-out. *)
        let v =
          Vrm.Refinement.check_adaptive ~sc_fuel
            ~config:(with_cert_cache tk.tk_cert_cache e.rm_config)
            ~jobs ?deadline ~por:tk.tk_por ~sym:tk.tk_sym e.prog
        in
        let stats = Engine.add_stats v.sc_stats v.rm_stats in
        if timed_out_by ~deadline v.sc_stats
           || timed_out_by ~deadline v.rm_stats
        then (Timed_out, Some stats, `Transient)
        else
          ( Done
              (Codec.refine_to_json
                 (Codec.refine_summary ~name:e.name e.prog v)),
            Some stats,
            `Cacheable )
  | Certify_spec version, Protocol.Explicit ->
      (* Certificates have no engine-level cancellation hook; they only
         honor the queue-level deadline (checked before execution). *)
      let report = Vrm.Certificate.certify version in
      ( Done (Codec.certificate_to_json (Vrm.Certificate.summarize report)),
        None,
        `Cacheable )

let run_one t tk =
  let t0 = Unix.gettimeofday () in
  (* Deadline first, cache second: a job that aged out while queued is
     classified [Deadline_expired] unconditionally — it must never
     start exploration, and serving it from cache would hide the
     overload that delayed it. *)
  let expired =
    match tk.tk_deadline with
    | Some d -> Unix.gettimeofday () >= d
    | None -> false
  in
  let result =
    if expired then
      ( (Deadline_expired, { from_cache = false; wall_s = 0. }),
        None,
        `Transient )
    else
      match Hot.find t.hot tk.tk_key with
      | Some payload ->
          ( (Done payload, { from_cache = true; wall_s = 0. }),
            None,
            `Transient )
      | None -> (
          match execute tk with
          | outcome, stats, cacheable ->
              ( ( outcome,
                  { from_cache = false;
                    wall_s = Unix.gettimeofday () -. t0 } ),
                stats,
                cacheable )
          | exception exn ->
              ( ( Failed (Printexc.to_string exn),
                  { from_cache = false;
                    wall_s = Unix.gettimeofday () -. t0 } ),
                None,
                `Transient ))
  in
  let ((outcome, meta) as result), stats, cacheable = result in
  (match (outcome, cacheable) with
  | Done payload, `Cacheable -> Hot.add t.hot tk.tk_key payload
  | _ -> ());
  (* terminal state: the journal forgets the job whatever the outcome *)
  (match t.journal with
  | Some j -> Journal.record_done j ~key:tk.tk_key
  | None -> ());
  locked t (fun () ->
      (match stats with
      | Some s -> t.engine <- Engine.add_stats t.engine s
      | None -> ());
      (match outcome with
      | Done payload ->
          t.completed <- t.completed + 1;
          if not meta.from_cache then begin
            t.exec_wall <- t.exec_wall +. meta.wall_s;
            t.exec_count <- t.exec_count + 1
          end;
          if Codec.refine_served_by_static payload then
            t.static_served <- t.static_served + 1
      | Timed_out -> t.timeouts <- t.timeouts + 1
      | Deadline_expired -> t.expired <- t.expired + 1
      | Overloaded _ -> () (* never reaches a worker *)
      | Failed _ -> t.failed <- t.failed + 1);
      tk.tk_result <- Some result;
      Hashtbl.remove t.inflight tk.tk_key;
      t.running <- t.running - 1;
      Condition.broadcast t.done_cv)

(* Pull every queued ticket with the same program digest as [tk] out of
   [q] (order otherwise preserved), capped so one pop cannot hog a
   worker for an unbounded batch. *)
let extract_same_prog q tk =
  let cap = 7 in
  let keep = Queue.create () in
  let extras = ref [] in
  let n = ref 0 in
  Queue.iter
    (fun x ->
      if !n < cap && String.equal x.tk_prog tk.tk_prog then begin
        extras := x :: !extras;
        incr n
      end
      else Queue.push x keep)
    q;
  Queue.clear q;
  Queue.transfer keep q;
  List.rev !extras

let rec worker_loop t ~reserved =
  let batch =
    locked t (fun () ->
        let can_pop () =
          (not (Queue.is_empty t.iq))
          || ((not reserved) && not (Queue.is_empty t.bq))
        in
        while (not (can_pop ())) && not t.stopping do
          Condition.wait t.work_cv t.m
        done;
        if not (can_pop ()) then None
        else begin
          let bulk = Queue.is_empty t.iq in
          let q = if bulk then t.bq else t.iq in
          let tk = Queue.pop q in
          (* batching only pays off on sweeps; interactive arrivals are
             latency-sensitive singles *)
          let extras = if bulk then extract_same_prog q tk else [] in
          if extras <> [] then begin
            t.batches <- t.batches + 1;
            t.batched <- t.batched + List.length extras
          end;
          let all = tk :: extras in
          t.running <- t.running + List.length all;
          Some all
        end)
  in
  match batch with
  | None -> ()
  | Some tks ->
      List.iter (run_one t) tks;
      worker_loop t ~reserved

let create ?workers ?cache ?(hot_shards = 16) ?(hot_capacity = 1024)
    ?(hot = true) ?(interactive_depth = 64) ?(bulk_depth = 256) ?journal ()
    =
  let n_workers =
    match workers with
    | Some n -> max 1 n
    | None -> max 2 (Domain.recommended_domain_count () - 1)
  in
  let store =
    match cache with
    | Some s -> s
    | None -> Store.create ~engine_version:Engine.version ()
  in
  let t =
    { hot = Hot.create ~shards:hot_shards ~capacity:hot_capacity
        ~enabled:hot store;
      iq = Queue.create ();
      bq = Queue.create ();
      interactive_depth = max 1 interactive_depth;
      bulk_depth = max 1 bulk_depth;
      inflight = Hashtbl.create 32;
      fp_memo = Hashtbl.create 64;
      journal;
      domains = [];
      stopping = false;
      stopped = false;
      m = Mutex.create ();
      work_cv = Condition.create ();
      done_cv = Condition.create ();
      n_workers;
      submitted = 0;
      completed = 0;
      failed = 0;
      timeouts = 0;
      expired = 0;
      coalesced = 0;
      shed_interactive = 0;
      shed_bulk = 0;
      lane_interactive = 0;
      lane_bulk = 0;
      batches = 0;
      batched = 0;
      fp_memo_hits = 0;
      litmus_jobs = 0;
      refine_jobs = 0;
      certify_jobs = 0;
      static_served = 0;
      running = 0;
      exec_wall = 0.;
      exec_count = 0;
      engine = Engine.zero_stats }
  in
  (* worker 0 is the interactive reserve whenever the pool can spare
     it; a single-worker pool serves both lanes *)
  t.domains <-
    List.init n_workers (fun i ->
        let reserved = n_workers >= 2 && i = 0 in
        Domain.spawn (fun () -> worker_loop t ~reserved));
  t

(* Program digest via the memo: one [Fingerprint] decode serves every
   subsequent submission on the same program (a batch of
   same-program/different-config jobs decodes once). *)
let memo_prog_digest t spec =
  let id = spec_id spec in
  locked t (fun () ->
      match Hashtbl.find_opt t.fp_memo id with
      | Some d ->
          t.fp_memo_hits <- t.fp_memo_hits + 1;
          d
      | None ->
          let d = prog_digest_of_spec spec in
          Hashtbl.replace t.fp_memo id d;
          d)

(* [deadline] here is absolute — [submit] converts, [replay] passes the
   journaled timestamp straight through. *)
let submit_abs t ~jobs ~deadline ~lane ~backend ~cert_cache ~por ~sym
    ~journaled spec =
  let prog_digest = memo_prog_digest t spec in
  let key = cache_key_with ~prog_digest ~backend ~cert_cache ~por ~sym spec in
  locked t (fun () ->
      t.submitted <- t.submitted + 1;
      (match lane with
      | Protocol.Interactive -> t.lane_interactive <- t.lane_interactive + 1
      | Protocol.Bulk -> t.lane_bulk <- t.lane_bulk + 1);
      (match spec with
      | Litmus_spec _ -> t.litmus_jobs <- t.litmus_jobs + 1
      | Refine_spec _ -> t.refine_jobs <- t.refine_jobs + 1
      | Certify_spec _ -> t.certify_jobs <- t.certify_jobs + 1);
      match Hashtbl.find_opt t.inflight key with
      | Some tk ->
          t.coalesced <- t.coalesced + 1;
          tk
      | None ->
          let tk =
            { tk_key = key;
              tk_spec = spec;
              tk_prog = prog_digest;
              tk_jobs = max 1 jobs;
              tk_deadline = deadline;
              tk_lane = lane;
              tk_backend = backend;
              tk_cert_cache = cert_cache;
              tk_por = por;
              tk_sym = sym;
              tk_result = None }
          in
          let q, depth_limit, shed =
            match lane with
            | Protocol.Interactive ->
                ( t.iq,
                  t.interactive_depth,
                  fun () -> t.shed_interactive <- t.shed_interactive + 1 )
            | Protocol.Bulk ->
                (t.bq, t.bulk_depth, fun () -> t.shed_bulk <- t.shed_bulk + 1)
          in
          if t.stopping then
            tk.tk_result <-
              Some
                ( Failed "scheduler is shut down",
                  { from_cache = false; wall_s = 0. } )
          else if Queue.length q >= depth_limit then begin
            (* admission control: shed rather than queue unboundedly.
               The retry hint scales with how much work is already
               committed: depth x mean executed wall / workers. *)
            shed ();
            let mean_wall =
              if t.exec_count = 0 then 0.05
              else t.exec_wall /. float_of_int t.exec_count
            in
            let retry_after_s =
              Float.max 0.1
                (float_of_int (Queue.length q)
                *. mean_wall
                /. float_of_int t.n_workers)
            in
            tk.tk_result <-
              Some
                ( Overloaded { retry_after_s },
                  { from_cache = false; wall_s = 0. } )
          end
          else begin
            Hashtbl.replace t.inflight key tk;
            Queue.push tk q;
            (if not journaled then
               match t.journal with
               | Some j ->
                   Journal.record_add j
                     { Journal.e_key = key;
                       e_job = job_of_spec spec;
                       e_jobs = tk.tk_jobs;
                       e_lane = lane;
                       e_deadline = deadline;
                       e_backend = backend;
                       e_cert_cache = cert_cache;
                       e_por = por;
                       e_sym = sym }
               | None -> ());
            (* broadcast, not signal: with a reserved interactive
               worker, a single wakeup for a bulk job can land on the
               reserved worker, which is not allowed to pop it and goes
               straight back to sleep — a lost wakeup that strands the
               queue. Waking everyone lets the right worker claim it. *)
            Condition.broadcast t.work_cv
          end;
          tk)

let submit t ?(jobs = 1) ?deadline_s ?(lane = Protocol.Interactive)
    ?(backend = Protocol.Explicit) ?(cert_cache = true) ?(por = true)
    ?(sym = true) spec =
  let deadline =
    Option.map (fun s -> Unix.gettimeofday () +. s) deadline_s
  in
  submit_abs t ~jobs ~deadline ~lane ~backend ~cert_cache ~por ~sym
    ~journaled:false spec

let replay t (entries : Journal.entry list) =
  List.fold_left
    (fun n (e : Journal.entry) ->
      match lookup_job e.Journal.e_job with
      | Error _ -> n (* journaled against a corpus that no longer has it *)
      | Ok spec ->
          (* journaled = true: [open_] already rewrote these records
             during compaction; re-adding would double them *)
          ignore
            (submit_abs t ~jobs:e.e_jobs ~deadline:e.e_deadline
               ~lane:e.e_lane ~backend:e.e_backend
               ~cert_cache:e.e_cert_cache ~por:e.e_por ~sym:e.e_sym
               ~journaled:true spec);
          n + 1)
    0 entries

let await t tk =
  locked t (fun () ->
      while tk.tk_result = None do
        Condition.wait t.done_cv t.m
      done;
      Option.get tk.tk_result)

let run t ?jobs ?deadline_s ?lane ?backend ?cert_cache ?por ?sym spec =
  await t (submit t ?jobs ?deadline_s ?lane ?backend ?cert_cache ?por ?sym spec)

type lane_counters = {
  lane_submitted : int;
  lane_shed : int;
  lane_depth : int;
}

type counters = {
  submitted : int;
  completed : int;
  failed : int;
  timeouts : int;
  expired : int;
  coalesced : int;
  interactive : lane_counters;
  bulk : lane_counters;
  batches : int;
  batched : int;
  fp_memo_hits : int;
  litmus_jobs : int;
  refine_jobs : int;
  certify_jobs : int;
  static_served : int;
  queue_depth : int;
  running : int;
  workers : int;
  engine : Engine.stats;
  cache_stats : Store.counters;
  hot_stats : Hot.counters;
}

let counters t : counters =
  let hot_stats = Hot.counters t.hot in
  let cache_stats = Store.counters (Hot.store t.hot) in
  locked t (fun () ->
      { submitted = t.submitted;
        completed = t.completed;
        failed = t.failed;
        timeouts = t.timeouts;
        expired = t.expired;
        coalesced = t.coalesced;
        interactive =
          { lane_submitted = t.lane_interactive;
            lane_shed = t.shed_interactive;
            lane_depth = Queue.length t.iq };
        bulk =
          { lane_submitted = t.lane_bulk;
            lane_shed = t.shed_bulk;
            lane_depth = Queue.length t.bq };
        batches = t.batches;
        batched = t.batched;
        fp_memo_hits = t.fp_memo_hits;
        litmus_jobs = t.litmus_jobs;
        refine_jobs = t.refine_jobs;
        certify_jobs = t.certify_jobs;
        static_served = t.static_served;
        queue_depth = Queue.length t.iq + Queue.length t.bq;
        running = t.running;
        workers = t.n_workers;
        engine = t.engine;
        cache_stats;
        hot_stats })

let lane_to_json (l : lane_counters) =
  Json.Obj
    [ ("submitted", Json.Int l.lane_submitted);
      ("shed", Json.Int l.lane_shed);
      ("depth", Json.Int l.lane_depth) ]

let counters_to_json (c : counters) : Json.t =
  let s = c.engine in
  let cs = c.cache_stats in
  Json.Obj
    [ ("submitted", Json.Int c.submitted);
      ("completed", Json.Int c.completed);
      ("failed", Json.Int c.failed);
      ("timeouts", Json.Int c.timeouts);
      ("deadline_expired", Json.Int c.expired);
      ("coalesced", Json.Int c.coalesced);
      ( "lanes",
        Json.Obj
          [ ("interactive", lane_to_json c.interactive);
            ("bulk", lane_to_json c.bulk) ] );
      ("batches", Json.Int c.batches);
      ("batched", Json.Int c.batched);
      ("fp_memo_hits", Json.Int c.fp_memo_hits);
      ("litmus_jobs", Json.Int c.litmus_jobs);
      ("refine_jobs", Json.Int c.refine_jobs);
      ("certify_jobs", Json.Int c.certify_jobs);
      ("static_served", Json.Int c.static_served);
      ("queue_depth", Json.Int c.queue_depth);
      ("running", Json.Int c.running);
      ("workers", Json.Int c.workers);
      ("engine", Codec.stats_to_json s);
      ( "cache",
        Json.Obj
          [ ("hits", Json.Int cs.Store.hits);
            ("misses", Json.Int cs.Store.misses);
            ("stores", Json.Int cs.Store.stores);
            ("corrupt", Json.Int cs.Store.corrupt);
            ("entries", Json.Int cs.Store.entries) ] );
      ("hot", Hot.counters_to_json c.hot_stats) ]

let pp_counters fmt (c : counters) =
  Format.fprintf fmt
    "@[<v>jobs: submitted=%d completed=%d failed=%d timeouts=%d expired=%d \
     coalesced=%d@ lanes: interactive=%d/shed=%d/depth=%d \
     bulk=%d/shed=%d/depth=%d@ batching: batches=%d batched=%d \
     fp_memo_hits=%d@ kinds: litmus=%d refine=%d certify=%d \
     static_served=%d@ pool: workers=%d queued=%d running=%d@ engine: %a@ \
     cache: %a@ hot: %a@]"
    c.submitted c.completed c.failed c.timeouts c.expired c.coalesced
    c.interactive.lane_submitted c.interactive.lane_shed
    c.interactive.lane_depth c.bulk.lane_submitted c.bulk.lane_shed
    c.bulk.lane_depth c.batches c.batched c.fp_memo_hits c.litmus_jobs
    c.refine_jobs c.certify_jobs c.static_served c.workers c.queue_depth
    c.running Engine.pp_stats c.engine Store.pp_counters c.cache_stats
    Hot.pp_counters c.hot_stats

let drain t =
  locked t (fun () ->
      while
        not (Queue.is_empty t.iq && Queue.is_empty t.bq && t.running = 0)
      do
        Condition.wait t.done_cv t.m
      done)

let shutdown t =
  drain t;
  let domains =
    locked t (fun () ->
        if t.stopped then []
        else begin
          t.stopping <- true;
          t.stopped <- true;
          Condition.broadcast t.work_cv;
          let ds = t.domains in
          t.domains <- [];
          ds
        end)
  in
  List.iter Domain.join domains
