(** The vrmd job scheduler: a fixed pool of OCaml 5 worker domains
    executing verification jobs against the two-tier content-addressed
    cache, with priority lanes, admission control and a persistent
    journal.

    {2 Semantics}

    {ul
    {- {b Caching.} Every job has a cache key ({!cache_key}) derived from
       the program's content digest, the job kind, the exploration
       budgets, and {!Memmodel.Engine.version} — and {e not} from the
       [jobs] fan-out, the lane, or the job's name, which never change
       the result. Lookups go through the sharded in-memory hot tier
       ({!Cache.Hot}) first: a warm hit touches neither disk nor
       checksum. A hit skips exploration entirely (0 states visited).}
    {- {b Lanes.} Submissions join one of two queues:
       [Protocol.Interactive] (default) or [Protocol.Bulk]. Workers
       serve interactive strictly first, and pools of two or more
       workers keep one worker reserved for interactive only — so an
       interactive arrival waits behind at most one in-flight job, no
       matter how deep the bulk backlog. The lane affects {e when} a job
       runs, never its result.}
    {- {b Backpressure.} Each lane has a depth limit. A submission to a
       full lane is {e shed} at admission: its ticket resolves
       immediately to [Overloaded] carrying a retry-after hint (queue
       depth x observed mean job wall / workers), nothing is queued and
       nothing is computed. Coalesced resubmissions are never shed —
       they attach to work already admitted.}
    {- {b Batching.} The program-digest component of the cache key is
       memoized per program ([fp_memo_hits]), so a sweep submitting one
       program under many configurations decodes its fingerprint once.
       Bulk workers also dequeue same-program tickets together
       ([batches]/[batched]) and run them back-to-back on one worker.}
    {- {b Coalescing.} Submitting a job whose key is already queued or
       running returns the {e same} ticket: concurrent identical
       requests cost one computation. (A coalesced ticket keeps the
       deadline of the first submission.)}
    {- {b Deadlines.} [deadline_s] is a per-job budget in seconds from
       submission. A job still queued past its deadline is classified
       [Deadline_expired] without ever starting exploration (checked
       before the cache, so overload is never masked by a warm entry);
       a running litmus/refinement job that overruns is cancelled
       mid-exploration via the engine's deadline valve and classified
       [Timed_out]. Neither is ever cached (they are
       schedule-dependent).}
    {- {b Durability.} With a {!Journal.t} attached, every enqueued job
       is journaled (with its {e absolute} deadline) and forgotten when
       it reaches any terminal state; {!replay} resubmits the pending
       set from a previous process through the normal path, so a
       corpus-wide re-verification survives a restart — and jobs whose
       deadline passed while the daemon was down come back as
       [Deadline_expired], not as silent drops.}
    {- {b Shutdown.} [drain] waits for both queues and in-flight jobs;
       [shutdown] drains, then stops and joins the workers. Submissions
       after shutdown fail cleanly.}} *)

open Cache
open Memmodel
open Sekvm

(** A resolved job: the corpus values it runs on. *)
type spec =
  | Litmus_spec of Litmus.t
  | Refine_spec of Kernel_progs.entry
  | Certify_spec of Kernel_progs.version

val lookup_job : Protocol.job -> (spec, string) result
(** Resolve a wire-protocol job against the repository corpora
    (litmus: paper examples + litmus suite; refine: kernel corpus
    including buggy and boundary entries; certify: any version). *)

val job_of_spec : spec -> Protocol.job
(** The inverse naming direction, used when journaling a spec. *)

val cache_key :
  ?backend:Protocol.backend -> ?cert_cache:bool -> ?por:bool ->
  ?sym:bool -> spec -> string
(** The content-addressed key (see {!Cache.Store.make_key}); independent
    of [jobs], deadlines, lanes and submission order. [backend] (default
    [Explicit]), [cert_cache], [por] and [sym] (all default true) are
    part of the key — the reduction flags cannot change a result's
    behavior set, but the payload embeds exploration statistics, a BMC
    payload has a different shape entirely, and A/B submissions must not
    coalesce onto one cache entry. *)

type outcome =
  | Done of Json.t  (** a {!Cache.Codec} payload *)
  | Timed_out  (** deadline hit mid-exploration *)
  | Deadline_expired  (** deadline passed while still queued: never ran *)
  | Overloaded of { retry_after_s : float }
      (** shed at admission: the lane's queue was full *)
  | Failed of string

type meta = { from_cache : bool; wall_s : float }

type ticket
type t

val create :
  ?workers:int -> ?cache:Store.t -> ?hot_shards:int -> ?hot_capacity:int ->
  ?hot:bool -> ?interactive_depth:int -> ?bulk_depth:int ->
  ?journal:Journal.t -> unit -> t
(** [workers] defaults to [max 2 (Domain.recommended_domain_count () - 1)];
    [cache] defaults to a fresh dirless (always-miss) store. The hot
    tier defaults to 16 shards / 1024 entries; [~hot:false] disables it
    (every lookup goes to disk — the cache-off parity configuration).
    [interactive_depth] (default 64) and [bulk_depth] (default 256)
    bound the lane queues; submissions beyond them are shed. [journal]
    attaches a persistent job journal. *)

val cache : t -> Store.t
val hot : t -> Hot.t

val submit :
  t -> ?jobs:int -> ?deadline_s:float -> ?lane:Protocol.lane ->
  ?backend:Protocol.backend -> ?cert_cache:bool -> ?por:bool ->
  ?sym:bool -> spec -> ticket
(** [lane] (default [Interactive]) picks the queue — see the lane and
    backpressure semantics above; a shed ticket is already resolved to
    [Overloaded] when returned. [backend] (default [Explicit]) selects
    the deciding engine for litmus specs — [Bmc] runs the SAT-based
    bounded model checker and yields a {!Cache.Codec.bmc_summary}
    payload; non-litmus specs fail cleanly under it. [cert_cache]
    (default true) toggles certification memoization for this job's
    Promising explorations; [por] (default true) toggles partial-order
    reduction and [sym] (default true) thread-symmetry reduction
    (identical behavior sets either way; all four flags are part of the
    cache key). *)

val replay : t -> Journal.entry list -> int
(** Resubmit journaled pending jobs (from {!Journal.open_}) through the
    normal path, preserving their lanes, flags and {e absolute}
    deadlines; returns how many were resubmitted (entries naming jobs
    the current corpora no longer contain are skipped). The replayed
    tickets are not awaited — results land in the cache and the journal
    forgets each job as it completes. *)

val await : t -> ticket -> outcome * meta
(** Blocks until the ticket's job completes (callable from any thread or
    domain). Shed tickets return immediately. *)

val run :
  t -> ?jobs:int -> ?deadline_s:float -> ?lane:Protocol.lane ->
  ?backend:Protocol.backend -> ?cert_cache:bool -> ?por:bool ->
  ?sym:bool -> spec -> outcome * meta
(** [submit] + [await]. *)

type lane_counters = {
  lane_submitted : int;
  lane_shed : int;  (** admissions refused with [Overloaded] *)
  lane_depth : int;  (** currently queued *)
}

type counters = {
  submitted : int;
  completed : int;
  failed : int;
  timeouts : int;
  expired : int;  (** classified [Deadline_expired] while queued *)
  coalesced : int;  (** submissions answered by an in-flight ticket *)
  interactive : lane_counters;
  bulk : lane_counters;
  batches : int;  (** bulk pops that carried more than one ticket *)
  batched : int;  (** extra tickets carried by those pops *)
  fp_memo_hits : int;  (** fingerprint decodes saved by the memo *)
  litmus_jobs : int;
  refine_jobs : int;
  certify_jobs : int;
  static_served : int;
      (** refinement results served by the static analyzer (fresh or
          cached) instead of exhaustive exploration *)
  queue_depth : int;  (** both lanes *)
  running : int;  (** currently executing *)
  workers : int;
  engine : Engine.stats;  (** aggregate over all non-cached executions *)
  cache_stats : Store.counters;  (** the disk tier *)
  hot_stats : Hot.counters;  (** the in-memory tier *)
}

val counters : t -> counters
val counters_to_json : counters -> Json.t
val pp_counters : Format.formatter -> counters -> unit

val drain : t -> unit
(** Block until both lanes are empty and no job is running. *)

val shutdown : t -> unit
(** [drain], then stop and join the worker domains. Idempotent. *)
