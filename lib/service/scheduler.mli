(** The vrmd job scheduler: a fixed pool of OCaml 5 worker domains
    executing verification jobs against the content-addressed cache.

    {2 Semantics}

    {ul
    {- {b Caching.} Every job has a cache key ({!cache_key}) derived from
       the program's content digest, the job kind, the exploration
       budgets, and {!Memmodel.Engine.version} — and {e not} from the
       [jobs] fan-out or the job's name, which never change the result.
       A hit skips exploration entirely (0 states visited).}
    {- {b Coalescing.} Submitting a job whose key is already queued or
       running returns the {e same} ticket: concurrent identical
       requests cost one computation. (A coalesced ticket keeps the
       deadline of the first submission.)}
    {- {b Deadlines.} [deadline_s] is a per-job budget in seconds from
       submission. A job still queued past its deadline is cancelled
       without running; a running litmus/refinement job is cancelled
       mid-exploration via the engine's deadline valve. Timed-out
       results are {e never} cached (they are schedule-dependent).}
    {- {b Shutdown.} [drain] waits for the queue and in-flight jobs;
       [shutdown] drains, then stops and joins the workers. Submissions
       after shutdown fail cleanly.}} *)

open Cache
open Memmodel
open Sekvm

(** A resolved job: the corpus values it runs on. *)
type spec =
  | Litmus_spec of Litmus.t
  | Refine_spec of Kernel_progs.entry
  | Certify_spec of Kernel_progs.version

val lookup_job : Protocol.job -> (spec, string) result
(** Resolve a wire-protocol job against the repository corpora
    (litmus: paper examples + litmus suite; refine: kernel corpus
    including buggy and boundary entries; certify: any version). *)

val cache_key :
  ?backend:Protocol.backend -> ?cert_cache:bool -> ?por:bool ->
  ?sym:bool -> spec -> string
(** The content-addressed key (see {!Cache.Store.make_key}); independent
    of [jobs], deadlines and submission order. [backend] (default
    [Explicit]), [cert_cache], [por] and [sym] (all default true) are
    part of the key — the reduction flags cannot change a result's
    behavior set, but the payload embeds exploration statistics, a BMC
    payload has a different shape entirely, and A/B submissions must not
    coalesce onto one cache entry. *)

type outcome =
  | Done of Json.t  (** a {!Cache.Codec} payload *)
  | Timed_out
  | Failed of string

type meta = { from_cache : bool; wall_s : float }

type ticket
type t

val create : ?workers:int -> ?cache:Store.t -> unit -> t
(** [workers] defaults to [max 2 (Domain.recommended_domain_count () - 1)];
    [cache] defaults to a fresh memory-only store. *)

val cache : t -> Store.t

val submit :
  t -> ?jobs:int -> ?deadline_s:float -> ?backend:Protocol.backend ->
  ?cert_cache:bool -> ?por:bool -> ?sym:bool -> spec -> ticket
(** [backend] (default [Explicit]) selects the deciding engine for
    litmus specs — [Bmc] runs the SAT-based bounded model checker and
    yields a {!Cache.Codec.bmc_summary} payload; non-litmus specs fail
    cleanly under it. [cert_cache] (default true) toggles certification
    memoization for this job's Promising explorations; [por] (default
    true) toggles partial-order reduction and [sym] (default true)
    thread-symmetry reduction (identical behavior sets either way; all
    four flags are part of the cache key). *)

val await : t -> ticket -> outcome * meta
(** Blocks until the ticket's job completes (callable from any thread or
    domain). *)

val run :
  t -> ?jobs:int -> ?deadline_s:float -> ?backend:Protocol.backend ->
  ?cert_cache:bool -> ?por:bool -> ?sym:bool -> spec -> outcome * meta
(** [submit] + [await]. *)

type counters = {
  submitted : int;
  completed : int;
  failed : int;
  timeouts : int;
  coalesced : int;  (** submissions answered by an in-flight ticket *)
  litmus_jobs : int;
  refine_jobs : int;
  certify_jobs : int;
  static_served : int;
      (** refinement results served by the static analyzer (fresh or
          cached) instead of exhaustive exploration *)
  queue_depth : int;  (** currently queued *)
  running : int;  (** currently executing *)
  workers : int;
  engine : Engine.stats;  (** aggregate over all non-cached executions *)
  cache_stats : Store.counters;
}

val counters : t -> counters
val counters_to_json : counters -> Json.t
val pp_counters : Format.formatter -> counters -> unit

val drain : t -> unit
(** Block until the queue is empty and no job is running. *)

val shutdown : t -> unit
(** [drain], then stop and join the worker domains. Idempotent. *)
