(** Client helpers for the vrmd socket: connect, one-shot request
    wrappers, and the response unwrapping shared by [vrm-cli submit],
    the benchmarks and the tests. *)

open Cache

val with_connection : socket:string -> (Unix.file_descr -> 'a) -> 'a
(** Connect to the daemon's Unix socket, run the body, always close. *)

val roundtrip : Unix.file_descr -> Protocol.request -> Protocol.response
(** Send one request and read its response on an open connection. *)

val submit :
  socket:string ->
  ?jobs:int ->
  ?deadline_s:float ->
  ?backend:Protocol.backend ->
  ?cert_cache:bool ->
  ?por:bool ->
  ?sym:bool ->
  Protocol.job ->
  (Json.t, string) result
(** One-shot submit. [Ok payload] is the server's result wrapper
    [{"data": ..., "from_cache": ..., "wall_s": ...}]; [Error] carries
    the server's message (unknown job, timeout, failure). [backend]
    (default [Explicit]) selects the deciding engine for litmus jobs
    ([Bmc] is rejected for other kinds); [cert_cache] (default true)
    toggles certification memoization server-side; [por] (default true)
    toggles partial-order reduction; [sym] (default true) toggles
    thread-symmetry reduction. All four are part of the server's cache
    key. *)

val status : socket:string -> (Json.t, string) result
(** One-shot status: the service counters object. *)

val shutdown : socket:string -> (unit, string) result
(** Ask the daemon to shut down gracefully; [Ok ()] once it says [Bye]. *)
