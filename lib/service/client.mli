(** Client helpers for the vrmd socket: connect, one-shot request
    wrappers, and the response unwrapping shared by [vrm-cli submit],
    the benchmarks and the tests. *)

open Cache

val with_connection :
  socket:string ->
  ?connect_timeout_s:float ->
  ?retries:int ->
  (Unix.file_descr -> 'a) ->
  'a
(** Connect to the daemon's Unix socket, run the body, always close.
    The connect is bounded by [connect_timeout_s] (default 1.0s) so a
    wedged daemon cannot hang the client, and transient failures
    ([ECONNREFUSED]/[EAGAIN]/[ENOENT] — what a mid-restart daemon
    produces) are retried up to [retries] times (default 1) with a
    0.2s backoff. Permanent errors raise immediately. *)

val roundtrip : Unix.file_descr -> Protocol.request -> Protocol.response
(** Send one request and read its response on an open connection. *)

val submit :
  socket:string ->
  ?jobs:int ->
  ?deadline_s:float ->
  ?lane:Protocol.lane ->
  ?backend:Protocol.backend ->
  ?cert_cache:bool ->
  ?por:bool ->
  ?sym:bool ->
  Protocol.job ->
  (Json.t, string) result
(** One-shot submit. [Ok payload] is the server's result wrapper
    [{"data": ..., "from_cache": ..., "wall_s": ...}]; [Error] carries
    the server's message (unknown job, timeout, overload with its
    retry-after hint, failure). [lane] (default [Interactive]) picks
    the scheduling lane ([Bulk] for corpus sweeps). [backend] (default
    [Explicit]) selects the deciding engine for litmus jobs ([Bmc] is
    rejected for other kinds); [cert_cache] (default true) toggles
    certification memoization server-side; [por] (default true)
    toggles partial-order reduction; [sym] (default true) toggles
    thread-symmetry reduction. Those four are part of the server's
    cache key; the lane is not. *)

val status : socket:string -> (Json.t, string) result
(** One-shot status: the service counters object. *)

val shutdown : socket:string -> (unit, string) result
(** Ask the daemon to shut down gracefully; [Ok ()] once it says [Bye]. *)
