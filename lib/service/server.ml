(** vrmd server loop. See the interface for the shutdown choreography.

    Concurrency: the accept loop runs on the caller's thread, polling
    with a short [select] timeout so it notices the stop flag promptly;
    each accepted connection gets a systhread. Handler threads block in
    {!Scheduler.run} (a [Condition.wait] shared with the worker domains
    — systhreads and domains interoperate on stdlib monitors), so a slow
    job never stalls the accept loop or other connections. *)

open Cache

type t = {
  sched : Scheduler.t;
  stop : bool Atomic.t;
  conns : (Unix.file_descr, unit) Hashtbl.t;
  cm : Mutex.t;
  ccv : Condition.t;
  log : string -> unit;
}

let register srv fd =
  Mutex.lock srv.cm;
  Hashtbl.replace srv.conns fd ();
  Mutex.unlock srv.cm

let unregister srv fd =
  Mutex.lock srv.cm;
  Hashtbl.remove srv.conns fd;
  Condition.broadcast srv.ccv;
  Mutex.unlock srv.cm

let respond srv (req : Protocol.request) : Protocol.response =
  match req with
  | Protocol.Status ->
      Protocol.Status_r (Scheduler.counters_to_json (Scheduler.counters srv.sched))
  | Protocol.Shutdown ->
      Atomic.set srv.stop true;
      Protocol.Bye
  | Protocol.Submit
      { job; jobs; deadline_s; backend; cert_cache; por; sym; lane } -> (
      match (job, backend) with
      | (Protocol.Refine _ | Protocol.Certify _), Protocol.Bmc ->
          Protocol.Error_r "backend=bmc only decides litmus jobs"
      | _, _ -> (
      match Scheduler.lookup_job job with
      | Error msg -> Protocol.Error_r msg
      | Ok spec -> (
          let outcome, meta =
            Scheduler.run srv.sched ~jobs ?deadline_s ~lane ~backend
              ~cert_cache ~por ~sym spec
          in
          match outcome with
          | Scheduler.Done payload ->
              Protocol.Result
                (Json.Obj
                   [ ("data", payload);
                     ("from_cache", Json.Bool meta.Scheduler.from_cache);
                     ("wall_s", Json.Float meta.Scheduler.wall_s) ])
          | Scheduler.Timed_out -> Protocol.Error_r "job timed out"
          | Scheduler.Deadline_expired ->
              Protocol.Error_r "job deadline expired while queued"
          | Scheduler.Overloaded { retry_after_s } ->
              Protocol.Overloaded_r { retry_after_s }
          | Scheduler.Failed msg -> Protocol.Error_r ("job failed: " ^ msg))))

let handle srv fd =
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close fd with _ -> ());
      unregister srv fd)
    (fun () ->
      try
        let rec loop () =
          match Protocol.recv fd with
          | None -> ()
          | Some j ->
              let resp =
                match Protocol.request_of_json j with
                | req -> respond srv req
                | exception Json.Decode msg ->
                    Protocol.Error_r ("bad request: " ^ msg)
              in
              Protocol.send fd (Protocol.response_to_json resp);
              (match resp with Protocol.Bye -> () | _ -> loop ())
          (* recv drained the oversized payload, so the stream is still
             frame-aligned: answer structurally and keep serving *)
          | exception Protocol.Frame_too_large n ->
              Protocol.send fd
                (Protocol.response_to_json
                   (Protocol.Error_r
                      (Printf.sprintf
                         "frame too large: %d bytes (max %d)" n
                         Protocol.max_frame)));
              loop ()
        in
        loop ()
      with _ ->
        (* peer vanished mid-frame, or its fd was force-closed during
           shutdown: nothing to answer. *)
        ())

(* Wait up to [grace] seconds for all connections to unregister. *)
let wait_conns srv grace =
  let deadline = Unix.gettimeofday () +. grace in
  Mutex.lock srv.cm;
  let rec go () =
    if Hashtbl.length srv.conns = 0 then true
    else if Unix.gettimeofday () >= deadline then false
    else begin
      (* timed wait is not in stdlib Condition: poll coarsely instead,
         releasing the monitor so handlers can unregister *)
      Mutex.unlock srv.cm;
      Thread.delay 0.05;
      Mutex.lock srv.cm;
      go ()
    end
  in
  let emptied = go () in
  Mutex.unlock srv.cm;
  emptied

let force_close_conns srv =
  Mutex.lock srv.cm;
  let fds = Hashtbl.fold (fun fd () acc -> fd :: acc) srv.conns [] in
  Mutex.unlock srv.cm;
  List.iter
    (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ())
    fds

let serve ~socket ?(log = fun _ -> ()) sched =
  let srv =
    { sched;
      stop = Atomic.make false;
      conns = Hashtbl.create 16;
      cm = Mutex.create ();
      ccv = Condition.create ();
      log }
  in
  (try Unix.unlink socket with _ -> ());
  let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close lfd with _ -> ());
      try Unix.unlink socket with _ -> ())
    (fun () ->
      Unix.bind lfd (Unix.ADDR_UNIX socket);
      Unix.listen lfd 16;
      srv.log (Printf.sprintf "vrmd: listening on %s" socket);
      let rec accept_loop () =
        if not (Atomic.get srv.stop) then begin
          (match Unix.select [ lfd ] [] [] 0.2 with
          | [], _, _ -> ()
          | _ :: _, _, _ -> (
              match Unix.accept lfd with
              | fd, _ ->
                  register srv fd;
                  ignore (Thread.create (handle srv) fd)
              | exception Unix.Unix_error (_, _, _) -> ())
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
          accept_loop ()
        end
      in
      accept_loop ();
      srv.log "vrmd: shutdown requested, draining";
      (* 1. in-flight jobs finish and their responses go out *)
      Scheduler.drain sched;
      (* 2. connections that are done talking close themselves; idle
         keep-alive connections are kicked after a short grace *)
      if not (wait_conns srv 2.0) then begin
        force_close_conns srv;
        ignore (wait_conns srv 2.0)
      end;
      (* 3. stop the worker pool *)
      Scheduler.shutdown sched;
      srv.log "vrmd: stopped")
