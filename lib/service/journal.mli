(** Persistent journal of queued vrmd jobs, so a corpus-wide
    re-verification survives a daemon restart.

    The scheduler appends an [add] record when a job is enqueued and a
    [done] record when it leaves the worker (completed, failed, timed
    out or expired — any terminal state). On the next [serve] start,
    {!open_} returns the pending set (adds without a matching done) for
    replay through the normal submission path, and compacts the file to
    exactly that set.

    Deadlines are journaled as {e absolute} times: a job whose deadline
    passed while the daemon was down is replayed and then classified
    [Deadline_expired] by the scheduler's queue check, exactly as if it
    had aged out in the queue — never silently dropped, never run past
    its budget.

    Records are JSON lines ({!Cache.Json}); appends are flushed per
    record, and the loader skips unparsable lines, so a crash can tear
    at most the final record. All operations are thread-safe. *)

open Cache

type entry = {
  e_key : string;  (** the scheduler cache key at journaling time *)
  e_job : Protocol.job;
  e_jobs : int;
  e_lane : Protocol.lane;
  e_deadline : float option;  (** absolute, [Unix.gettimeofday] scale *)
  e_backend : Protocol.backend;
  e_cert_cache : bool;
  e_por : bool;
  e_sym : bool;
}

type t

val open_ : string -> t * entry list
(** Load the pending set from [path] (missing file = empty), compact
    the file down to those records, and open it for appending. The
    returned entries are in original submission order, deduplicated by
    key (first add wins — later duplicates would only have coalesced). *)

val record_add : t -> entry -> unit
val record_done : t -> key:string -> unit
val close : t -> unit
val path : t -> string

val entry_to_json : entry -> Json.t
val entry_of_json : Json.t -> entry
(** Raises {!Cache.Json.Decode} on malformed records (the loader catches
    this; exposed for tests). *)
