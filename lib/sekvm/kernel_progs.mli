(** The KCore kernel-code corpus, in the memmodel DSL: the
    synchronization-relevant paths of paper §5 (ticket-lock VMID
    allocator, vCPU ownership protocol, per-VM-lock state updates,
    sharing bookkeeping, MCS lock) with the metadata the certifier needs
    and deliberately seeded buggy variants. *)

open Memmodel

type expect = {
  e_drf : bool;  (** DRF-Kernel should hold *)
  e_barrier : bool;  (** No-Barrier-Misuse should hold *)
  e_refine : bool;  (** behaviors(RM) ⊆ behaviors(SC) should hold *)
}

val all_good : expect

type entry = {
  name : string;
  prog : Prog.t;
  exempt : string list;  (** lock-implementation bases, exempt from DRF *)
  initial_owners : (string * int) list;
      (** bases a CPU owns at fragment entry *)
  expect : expect;
  rm_config : Promising.config;
  note : string;
}

val gen_vmid_prog : barriers:bool -> string -> Prog.t
val vcpu_prog : barriers:bool -> string -> Prog.t
val vm_boot_prog : barriers:bool -> string -> Prog.t
val share_prog : barriers:bool -> string -> Prog.t

val vmid_alloc : entry
val vmid_alloc_nobarrier : entry
val vcpu_switch : entry
val vcpu_switch_nobarrier : entry
val vm_boot : entry
val share_page : entry
val mcs_counter : entry
val mcs_handoff : entry
val mcs_handoff_nobarrier : entry
val unlocked_counter : entry
val push_without_pull : entry
val pt_walker_race : entry
val pt_walker_prog : barriers:bool -> string -> Prog.t

val corpus : entry list
(** The certified programs. *)

val buggy_corpus : entry list
(** Seeded violations, each failing exactly the condition it breaks. *)

val boundary_corpus : entry list
(** Programs outside Theorem 2's scope by design (page-table words racing
    the MMU walker): DRF-exempt, refinement-failing — the reason
    conditions 4 and 5 exist. *)

val sym_stress_prog : int -> string -> Prog.t
(** [sym_stress_prog n name]: [n] byte-identical vCPU threads (tids
    1..n), each fetch-and-adding a shared lock word and storing a
    ticket-derived value to a shared page-table slot. Only locations are
    observable, so all [n] threads form one symmetry group under
    {!Memmodel.Symmetry.detect}. *)

val sym_corpus : entry list
(** sym-stress-3/4/5: the thread-symmetry stress family ([sym_stress_prog]
    at n = 3, 4, 5). A separate list — not folded into {!corpus} — so the
    certified-corpus golden tables keep their size pins; the bench's
    symmetry section and the engine tests iterate it explicitly. *)

val handoff_missing_dmb : entry
val el2_double_map : entry
val read_outside_lock : entry
val pull_no_push : entry
val remap_no_tlbi : entry
val tlbi_before_write : entry
val split_transaction : entry
val walker_no_isb : entry
val el2_loop_remap : entry

val lint_corpus : entry list
(** Seeded inputs for the static analyzer ({!Analysis}), one per lint
    pass, each tripping exactly the codes pinned in
    {!lint_expectations}. *)

val lint_expectations : (string * string list) list
(** Expected {e definite} warning codes per corpus entry name (all
    corpora). The cross-validation harness treats a missing entry as a
    failure, so every program added to a corpus must also decide its
    expected static verdict here. *)

val lint_expectations_bounded : (string * string list) list
(** Overrides of {!lint_expectations} for the {e bounded} engine only —
    entries whose loop-carried defects its 0/1 unrolling is blind to.
    Entries absent here default to {!lint_expectations}. *)

val lint_divergences : (string * string list) list
(** Pinned engine divergences: per entry name, the lint passes whose
    verdicts are allowed to differ between engines (fixpoint must still
    be at least as severe). All other (entry, pass) combinations must
    agree exactly; {!Analysis.Validate} enforces both directions. *)

type version = { linux : string; stage2_levels : int }

val versions : version list
(** The verified KVM versions of §5.6 (Linux 4.18–5.5, both stage-2
    geometries where supported). *)
