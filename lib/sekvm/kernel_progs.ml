(** The KCore kernel-code corpus, in the memmodel DSL.

    These are the synchronization-relevant code paths of §5, written as
    concurrent DSL programs so the VRM checkers can certify them: the
    ticket-lock-protected VMID allocator, the vCPU-context ownership
    protocol, VM-state updates under the per-VM lock, page-ownership
    bookkeeping for sharing, and multi-variable critical sections. Each
    corpus entry carries the metadata the certifier needs (which bases are
    lock-implementation internals, exploration budget) plus the expected
    verdict — including deliberately seeded buggy variants that specific
    conditions must reject.

    The [versions] list mirrors §5.6: the corpus is instantiated for each
    supported Linux version and both stage-2 geometries; the
    synchronization skeleton is identical across versions (which is why
    the paper could verify eight versions with modest effort), so each
    instantiation re-certifies the same conditions under its own
    configuration record. *)

open Memmodel
open Expr

type expect = {
  e_drf : bool;  (** DRF-Kernel should hold *)
  e_barrier : bool;  (** No-Barrier-Misuse should hold *)
  e_refine : bool;  (** behaviors(RM) ⊆ behaviors(SC) should hold *)
}

let all_good = { e_drf = true; e_barrier = true; e_refine = true }

type entry = {
  name : string;
  prog : Prog.t;
  exempt : string list;  (** lock-implementation bases, exempt from DRF *)
  initial_owners : (string * int) list;
      (** bases a CPU owns at fragment entry (e.g. the vCPU context a
          running CPU claimed before this code path) *)
  expect : expect;
  rm_config : Promising.config;
  note : string;
}

let lockcfg =
  { Promising.default_config with loop_fuel = 3; max_promises = 0;
    cert_depth = 32 }

let lockcfg1 = { lockcfg with max_promises = 1 }

(* ------------------------------------------------------------------ *)
(* gen_vmid under the core ticket lock (§5.2, Fig. 1 + Fig. 7)         *)
(* ------------------------------------------------------------------ *)

let gen_vmid_code ~barriers tid =
  let vmid = Reg.v "vmid" in
  let body =
    [ Instr.load vmid (at "next_vmid");
      Instr.if_
        (r vmid < c 4)
        [ Instr.store (at "next_vmid") (r vmid + c 1) ]
        [ Instr.Panic ] ]
  in
  Prog.thread tid
    (Ticket_lock.dsl_critical ~barriers ~name:"core"
       ~protects:[ "next_vmid" ] body)

let gen_vmid_prog ~barriers name =
  Prog.make ~name
    ~observables:
      [ Prog.Obs_reg (1, Reg.v "vmid"); Prog.Obs_reg (2, Reg.v "vmid") ]
    ~shared_bases:
      [ "next_vmid"; Ticket_lock.ticket_base "core";
        Ticket_lock.now_base "core" ]
    [ gen_vmid_code ~barriers 1; gen_vmid_code ~barriers 2 ]

let vmid_alloc =
  { name = "gen_vmid";
    prog = gen_vmid_prog ~barriers:true "gen_vmid";
    exempt = Ticket_lock.lock_bases "core";
    initial_owners = [];
    expect = all_good;
    rm_config = lockcfg1;
    note = "VMID allocation under the Linux ticket lock (Fig. 1/7)" }

let vmid_alloc_nobarrier =
  { name = "gen_vmid-nobarrier";
    prog = gen_vmid_prog ~barriers:false "gen_vmid-nobarrier";
    exempt = Ticket_lock.lock_bases "core";
    initial_owners = [];
    expect = { e_drf = true; e_barrier = false; e_refine = false };
    rm_config = lockcfg;
    note = "Example 2: same code without acquire/release; DRF on SC but \
            broken on Arm" }

(* ------------------------------------------------------------------ *)
(* vCPU context switch via the ownership variable (§5.2, Example 3)    *)
(* ------------------------------------------------------------------ *)

let vcpu_prog ~barriers name =
  let save =
    [ Instr.store (at "vcpu_ctxt") (c 42);
      Instr.push [ "vcpu_ctxt" ];
      (if barriers then Instr.store_rel (at "vcpu_state") (c 0)
       else Instr.store (at "vcpu_state") (c 0)) ]
  in
  let restore =
    [ (if barriers then Instr.load_acq (Reg.v "st") (at "vcpu_state")
       else Instr.load (Reg.v "st") (at "vcpu_state"));
      Instr.if_
        (r (Reg.v "st") = c 0)
        [ Instr.store (at "vcpu_state") (c 1);
          Instr.pull [ "vcpu_ctxt" ];
          Instr.load (Reg.v "ctxt") (at "vcpu_ctxt") ]
        [ Instr.move (Reg.v "ctxt") (c (-1)) ] ]
  in
  Prog.make ~name
    ~init:[ (Loc.v "vcpu_ctxt", 7); (Loc.v "vcpu_state", 1) ]
    ~observables:
      [ Prog.Obs_reg (2, Reg.v "st"); Prog.Obs_reg (2, Reg.v "ctxt") ]
    ~shared_bases:[ "vcpu_ctxt"; "vcpu_state" ]
    [ Prog.thread 1 save; Prog.thread 2 restore ]

let vcpu_switch =
  { name = "vcpu-switch";
    prog = vcpu_prog ~barriers:true "vcpu-switch";
    exempt = [ "vcpu_state" ];  (* the synchronization variable itself *)
    initial_owners = [ ("vcpu_ctxt", 0) ];  (* thread index 0 = the saver *)
    expect = all_good;
    rm_config = { lockcfg1 with loop_fuel = 4 };
    note = "ACTIVE/INACTIVE ownership protocol with release/acquire" }

let vcpu_switch_nobarrier =
  { name = "vcpu-switch-nobarrier";
    prog = vcpu_prog ~barriers:false "vcpu-switch-nobarrier";
    exempt = [ "vcpu_state" ];
    initial_owners = [ ("vcpu_ctxt", 0) ];
    expect = { e_drf = true; e_barrier = false; e_refine = false };
    rm_config = { lockcfg1 with loop_fuel = 4 };
    note = "Example 3: stale context restorable on Arm" }

(* ------------------------------------------------------------------ *)
(* Multi-variable critical section: VM state + boot bookkeeping        *)
(* ------------------------------------------------------------------ *)

let vm_boot_prog ~barriers name =
  (* two CPUs race to transition the VM from Registered(0) to
     Verified(1) and set the image hash; the lock must ensure exactly one
     wins and the hash matches the winner *)
  let work tid =
    let st = Reg.v "st" in
    Prog.thread tid
      (Ticket_lock.dsl_critical ~barriers ~name:"vm"
         ~protects:[ "vm_state"; "image_hash" ]
         [ Instr.load st (at "vm_state");
           Instr.if_
             (r st = c 0)
             [ Instr.store (at "vm_state") (c 1);
               Instr.store (at "image_hash") (c (Stdlib.( + ) 100 tid)) ]
             [] ])
  in
  Prog.make ~name
    ~observables:[ Prog.Obs_loc (Loc.v "vm_state"); Prog.Obs_loc (Loc.v "image_hash") ]
    ~shared_bases:
      ([ "vm_state"; "image_hash" ] @ Ticket_lock.lock_bases "vm")
    [ work 1; work 2 ]

let vm_boot =
  { name = "vm-boot-state";
    prog = vm_boot_prog ~barriers:true "vm-boot-state";
    exempt = Ticket_lock.lock_bases "vm";
    initial_owners = [];
    expect = all_good;
    rm_config = lockcfg1;
    note = "per-VM lock protects the state/image-hash pair during boot" }

(* ------------------------------------------------------------------ *)
(* Page sharing bookkeeping under the per-VM lock                      *)
(* ------------------------------------------------------------------ *)

let share_prog ~barriers name =
  (* CPU 1: VM shares a page (sets s2page.shared, bumps map_count);
     CPU 2: teardown path clears sharing. Both under the VM lock. *)
  let share =
    Prog.thread 1
      (Ticket_lock.dsl_critical ~barriers ~name:"vm"
         ~protects:[ "s2_shared"; "s2_mapcount" ]
         [ Instr.store (at "s2_shared") (c 1);
           Instr.load (Reg.v "mc") (at "s2_mapcount");
           Instr.store (at "s2_mapcount") (r (Reg.v "mc") + c 1) ])
  in
  let unshare =
    Prog.thread 2
      (Ticket_lock.dsl_critical ~barriers ~name:"vm"
         ~protects:[ "s2_shared"; "s2_mapcount" ]
         [ Instr.load (Reg.v "sh") (at "s2_shared");
           Instr.if_
             (r (Reg.v "sh") = c 1)
             [ Instr.store (at "s2_shared") (c 0);
               Instr.load (Reg.v "mc") (at "s2_mapcount");
               Instr.store (at "s2_mapcount") (r (Reg.v "mc") - c 1) ]
             [] ])
  in
  Prog.make ~name
    ~observables:
      [ Prog.Obs_loc (Loc.v "s2_shared"); Prog.Obs_loc (Loc.v "s2_mapcount") ]
    ~shared_bases:([ "s2_shared"; "s2_mapcount" ] @ Ticket_lock.lock_bases "vm")
    [ share; unshare ]

let share_page =
  { name = "share-page";
    prog = share_prog ~barriers:true "share-page";
    exempt = Ticket_lock.lock_bases "vm";
    initial_owners = [];
    expect = all_good;
    rm_config = lockcfg1;
    note = "s2page share/map_count updates under the per-VM lock" }

(* ------------------------------------------------------------------ *)
(* Page-table updates racing the MMU walker (the DRF exception)        *)
(* ------------------------------------------------------------------ *)

let pt_walker_prog ~barriers name =
  (* CPU 1 updates two PTE words inside the pt lock; CPU 2 plays the MMU
     hardware, reading both words with no synchronization whatsoever.
     The pte base is exempt from the ownership discipline — this is the
     DRF-Kernel side clause for page tables — so DRF and the barrier
     checker pass; but the walker's reads CAN be relaxed, so refinement
     fails. That is exactly why the paper discharges page tables with the
     Transactional-Page-Table condition instead of Theorem 2. *)
  let kernel =
    Prog.thread 1
      (Ticket_lock.dsl_critical ~barriers ~name:"pt" ~protects:[]
         [ Instr.store (at ~offset:(c 0) "pte") (c 0x20);
           Instr.store (at ~offset:(c 1) "pte") (c 0x21) ])
  in
  let walker =
    Prog.thread 2
      [ Instr.load (Reg.v "w1") (at ~offset:(c 1) "pte");
        Instr.load (Reg.v "w0") (at ~offset:(c 0) "pte") ]
  in
  Prog.make ~name
    ~init:[ (Loc.v ~index:0 "pte", 0x10); (Loc.v ~index:1 "pte", 0x11) ]
    ~observables:[ Prog.Obs_reg (2, Reg.v "w0"); Prog.Obs_reg (2, Reg.v "w1") ]
    ~shared_bases:("pte" :: Ticket_lock.lock_bases "pt")
    [ kernel; walker ]

let pt_walker_race =
  { name = "pt-walker-race";
    prog = pt_walker_prog ~barriers:true "pt-walker-race";
    exempt = "pte" :: Ticket_lock.lock_bases "pt";
    initial_owners = [];
    expect = { e_drf = true; e_barrier = true; e_refine = false };
    rm_config = lockcfg1;
    note = "the MMU-vs-kernel page-table race (Example 4's shape): exempt             from DRF, outside Theorem 2, discharged by the Transactional             and TLBI conditions instead" }

(* ------------------------------------------------------------------ *)
(* Extension: the MCS queue lock (see {!Mcs_lock})                     *)
(* ------------------------------------------------------------------ *)

let mcs_counter =
  { name = "mcs-counter";
    prog = Mcs_lock.counter_prog ~barriers:true "mcs-counter";
    exempt = Mcs_lock.lock_bases "m";
    initial_owners = [];
    expect = all_good;
    rm_config = lockcfg;
    note = "shared counter under the MCS queue lock (XCHG/CAS hand-off)" }

let mcs_handoff =
  { name = "mcs-handoff";
    prog = Mcs_lock.handoff_prog ~barriers:true "mcs-handoff";
    exempt = Mcs_lock.lock_bases "m";
    initial_owners = [ ("c", 0) ];  (* the owner holds the data at entry *)
    expect = all_good;
    rm_config = lockcfg1;
    note = "MCS lock hand-off to a queued waiter" }

let mcs_handoff_nobarrier =
  { name = "mcs-handoff-nobarrier";
    prog = Mcs_lock.handoff_prog ~barriers:false "mcs-handoff-nobarrier";
    exempt = Mcs_lock.lock_bases "m";
    initial_owners = [ ("c", 0) ];
    expect = { e_drf = true; e_barrier = false; e_refine = false };
    rm_config = lockcfg1;
    note = "MCS hand-off without release/acquire: stale data reachable" }

(* ------------------------------------------------------------------ *)
(* Seeded bugs beyond barrier omissions                                *)
(* ------------------------------------------------------------------ *)

let unlocked_counter =
  (* a shared counter updated with no lock at all: DRF-Kernel violation *)
  let bump tid =
    Prog.thread tid
      [ Instr.load (Reg.v "v") (at "counter");
        Instr.store (at "counter") (r (Reg.v "v") + c 1) ]
  in
  { name = "unlocked-counter";
    prog =
      Prog.make ~name:"unlocked-counter"
        ~observables:[ Prog.Obs_loc (Loc.v "counter") ]
        ~shared_bases:[ "counter" ]
        [ bump 1; bump 2 ];
    exempt = [];
    initial_owners = [];
    expect = { e_drf = false; e_barrier = true; e_refine = true };
    rm_config = lockcfg;
    note = "no pull/push, no lock: the DRF checker must reject" }

let push_without_pull =
  (* pushes a base it never pulled: ownership-discipline violation *)
  { name = "push-without-pull";
    prog =
      Prog.make ~name:"push-without-pull"
        ~observables:[ Prog.Obs_loc (Loc.v "counter") ]
        ~shared_bases:[ "counter" ]
        [ Prog.thread 1
            [ Instr.dmb;
              Instr.push [ "counter" ];
              Instr.store (at "counter") (c 1) ];
          Prog.thread 2 [ Instr.Nop ] ];
    exempt = [];
    initial_owners = [];
    expect = { e_drf = false; e_barrier = true; e_refine = true };
    rm_config = lockcfg;
    note = "push of a free base: the ownership validator must reject" }

(* ------------------------------------------------------------------ *)
(* Seeded bugs for the static analyzer (one per wDRF lint pass)        *)
(* ------------------------------------------------------------------ *)

let handoff_missing_dmb =
  (* message-passing hand-off with plain accesses only: DRF holds (the
     flag is read before the pull), but neither the push nor the pull is
     fulfilled by a barrier, so stale data is reachable *)
  let f = Reg.v "f" and v = Reg.v "v" in
  { name = "handoff-missing-dmb";
    prog =
      Prog.make ~name:"handoff-missing-dmb"
        ~observables:[ Prog.Obs_reg (2, v) ]
        ~shared_bases:[ "d"; "flag" ]
        [ Prog.thread 1
            [ Instr.store (at "d") (c 42);
              Instr.push [ "d" ];
              Instr.store (at "flag") (c 1) ];
          Prog.thread 2
            [ Instr.load f (at "flag");
              Instr.if_
                (r f = c 1)
                [ Instr.pull [ "d" ]; Instr.load v (at "d") ]
                [ Instr.move v (c (-1)) ] ] ];
    exempt = [ "flag" ];
    initial_owners = [ ("d", 0) ];
    expect = { e_drf = true; e_barrier = false; e_refine = false };
    rm_config = lockcfg1;
    note = "hand-off without DMB/release: W002 on both sides of the             transfer" }

let el2_double_map =
  (* the same EL2 page-table word mapped twice, no transaction around
     the remap: breaks Write-Once-Kernel-Mapping *)
  { name = "el2-double-map";
    prog =
      Prog.make ~name:"el2-double-map"
        ~init:[ (Loc.v ~index:0 "el2_pt", 0) ]
        ~observables:[ Prog.Obs_loc (Loc.v ~index:0 "el2_pt") ]
        ~shared_bases:[ "el2_pt" ]
        [ Prog.thread 1
            [ Instr.store (at ~offset:(c 0) "el2_pt") (c 5);
              Instr.store (at ~offset:(c 0) "el2_pt") (c 6) ];
          Prog.thread 2 [ Instr.Nop ] ];
    exempt = [ "el2_pt" ];
    initial_owners = [];
    expect = all_good;
    rm_config = lockcfg;
    note = "kernel mapping installed twice: W003; the dynamic checkers             don't watch EL2 writes, so only the lint rejects it" }

let read_outside_lock =
  (* a correct critical section followed by a stray unlocked read of the
     protected base *)
  let v = Reg.v "v" and stray = Reg.v "stray" in
  let locked tid extra =
    Prog.thread tid
      (Ticket_lock.dsl_critical ~barriers:true ~name:"cnt"
         ~protects:[ "counter2" ]
         [ Instr.load v (at "counter2");
           Instr.store (at "counter2") (r v + c 1) ]
      @ extra)
  in
  { name = "read-outside-lock";
    prog =
      Prog.make ~name:"read-outside-lock"
        ~observables:[ Prog.Obs_loc (Loc.v "counter2") ]
        ~shared_bases:("counter2" :: Ticket_lock.lock_bases "cnt")
        [ locked 1 [ Instr.load stray (at "counter2") ]; locked 2 [] ];
    exempt = Ticket_lock.lock_bases "cnt";
    initial_owners = [];
    expect = { e_drf = false; e_barrier = true; e_refine = true };
    rm_config = lockcfg1;
    note = "lock-protected counter read again after release: W001 at the             stray load" }

let pull_no_push =
  (* a thread pulls the base and exits without pushing: the ownership
     leak makes the other thread's pull a violation *)
  { name = "pull-no-push";
    prog =
      Prog.make ~name:"pull-no-push"
        ~observables:[ Prog.Obs_loc (Loc.v "c2") ]
        ~shared_bases:[ "c2" ]
        [ Prog.thread 1
            [ Instr.dmb; Instr.pull [ "c2" ];
              Instr.store (at "c2") (c 1) ];
          Prog.thread 2
            [ Instr.dmb; Instr.pull [ "c2" ];
              Instr.store (at "c2") (c 2);
              Instr.push [ "c2" ]; Instr.dmb ] ];
    exempt = [];
    initial_owners = [];
    expect = { e_drf = false; e_barrier = true; e_refine = true };
    rm_config = lockcfg;
    note = "pull without matching push: W006 leak, colliding with the             second CPU's pull" }

let remap_no_tlbi =
  (* a live stage-2 entry is remapped under the lock but never
     invalidated: breaks Sequential-TLB-Invalidation *)
  { name = "remap-no-tlbi";
    prog =
      Prog.make ~name:"remap-no-tlbi"
        ~init:[ (Loc.v ~index:0 "pte2", 0x20) ]
        ~observables:[ Prog.Obs_loc (Loc.v ~index:0 "pte2") ]
        ~shared_bases:("pte2" :: Ticket_lock.lock_bases "pt")
        [ Prog.thread 1
            (Ticket_lock.dsl_critical ~barriers:true ~name:"pt"
               ~protects:[]
               [ Instr.store (at ~offset:(c 0) "pte2") (c 0x30) ]);
          Prog.thread 2 [ Instr.Nop ] ];
    exempt = "pte2" :: Ticket_lock.lock_bases "pt";
    initial_owners = [];
    expect = all_good;
    rm_config = lockcfg1;
    note = "live PTE remapped with no TLBI: W005 (no-TLBI shape)" }

let tlbi_before_write =
  (* the TLBI is sequenced before the write it should invalidate *)
  { name = "tlbi-before-write";
    prog =
      Prog.make ~name:"tlbi-before-write"
        ~init:[ (Loc.v ~index:0 "pte3", 0x11) ]
        ~observables:[ Prog.Obs_loc (Loc.v ~index:0 "pte3") ]
        ~shared_bases:("pte3" :: Ticket_lock.lock_bases "pt")
        [ Prog.thread 1
            (Ticket_lock.dsl_critical ~barriers:true ~name:"pt"
               ~protects:[]
               [ Instr.tlbi (at ~offset:(c 0) "pte3");
                 Instr.store (at ~offset:(c 0) "pte3") (c 0x40) ]);
          Prog.thread 2 [ Instr.Nop ] ];
    exempt = "pte3" :: Ticket_lock.lock_bases "pt";
    initial_owners = [];
    expect = all_good;
    rm_config = lockcfg1;
    note = "TLBI precedes the remap: W005 (wrong-order shape)" }

let split_transaction =
  (* a page-table transaction interleaves an unrelated write between two
     PTE updates while another CPU walks the table *)
  let w0 = Reg.v "w0" and w1 = Reg.v "w1" in
  { name = "split-transaction";
    prog =
      Prog.make ~name:"split-transaction"
        ~init:[ (Loc.v ~index:0 "pte4", 0); (Loc.v ~index:1 "pte4", 0) ]
        ~observables:[ Prog.Obs_reg (2, w0); Prog.Obs_reg (2, w1) ]
        ~shared_bases:
          ("pte4" :: "scratch" :: Ticket_lock.lock_bases "pt")
        [ Prog.thread 1
            (Ticket_lock.dsl_critical ~barriers:true ~name:"pt"
               ~protects:[ "scratch" ]
               [ Instr.store (at ~offset:(c 0) "pte4") (c 0x21);
                 Instr.store (at "scratch") (c 1);
                 Instr.store (at ~offset:(c 1) "pte4") (c 0x22) ]);
          Prog.thread 2
            [ Instr.load w1 (at ~offset:(c 1) "pte4");
              Instr.load w0 (at ~offset:(c 0) "pte4") ] ];
    exempt = "pte4" :: Ticket_lock.lock_bases "pt";
    initial_owners = [];
    expect = { e_drf = true; e_barrier = true; e_refine = false };
    rm_config = lockcfg1;
    note = "PTE updates split by an unrelated write: W004; the walker can             observe the half-updated table" }

let walker_no_isb =
  (* a software walker branches on a PT root and keeps loading without
     an ISB: advisory W007 only, every checker passes *)
  let r0 = Reg.v "r0" and r1 = Reg.v "r1" in
  { name = "walker-no-isb";
    prog =
      Prog.make ~name:"walker-no-isb"
        ~init:
          [ (Loc.v ~index:0 "pt_root", 1); (Loc.v ~index:0 "pte5", 0x33) ]
        ~observables:[ Prog.Obs_reg (1, r1) ]
        ~shared_bases:[ "pt_root"; "pte5" ]
        [ Prog.thread 1
            [ Instr.load r0 (at ~offset:(c 0) "pt_root");
              Instr.if_
                (r r0 <> c 0)
                [ Instr.load r1 (at ~offset:(c 0) "pte5") ]
                [ Instr.move r1 (c (-1)) ] ];
          Prog.thread 2 [ Instr.Nop ] ];
    exempt = [ "pt_root"; "pte5" ];
    initial_owners = [];
    expect = all_good;
    rm_config = lockcfg;
    note = "control-dependent walk with no ISB: advisory W007, verdict             Unknown, dynamic fallback stays green" }

let el2_loop_remap =
  (* the same EL2 word rewritten on every loop iteration: the overwrite
     only manifests on the second pass, which a 0/1-unrolling path
     enumeration never sees — the designated bounded-engine blind spot *)
  let i = Reg.v "i" in
  { name = "el2-loop-remap";
    prog =
      Prog.make ~name:"el2-loop-remap"
        ~init:[ (Loc.v ~index:0 "el2_lc", 0) ]
        ~observables:[ Prog.Obs_loc (Loc.v ~index:0 "el2_lc") ]
        ~shared_bases:[ "el2_lc" ]
        [ Prog.thread 1
            [ Instr.move i (c 0);
              Instr.while_ (r i < c 2)
                [ Instr.store (at ~offset:(c 0) "el2_lc") (c 7);
                  Instr.move i (r i + c 1) ] ];
          Prog.thread 2 [ Instr.Nop ] ];
    exempt = [ "el2_lc" ];
    initial_owners = [];
    expect = all_good;
    rm_config = lockcfg;
    note = "loop-carried double map: the second iteration overwrites the             first; bounded 0/1 unrolling misses it, the fixpoint engine             pins W003" }

(* ------------------------------------------------------------------ *)
(* Symmetric vCPU stress family (thread-symmetry reduction corpus)     *)
(* ------------------------------------------------------------------ *)

(* N byte-identical vCPUs hammering one lock word and one page-table
   slot: each takes a ticket with an atomic fetch-and-add and writes its
   (ticket-derived) PTE value into the shared slot. Every thread's
   instruction stream is the same byte sequence and no per-thread
   register is observable, so {!Memmodel.Symmetry.detect} puts all N
   threads in one group — the canonical seen-set collapses
   thread-permuted states, cutting the explored space by up to N!. The
   body is deliberately two instructions: it keeps the sym-off arm of
   the n=5 entry inside the Promising state valve, so the bench's
   [print_symmetry] section and the golden-parity tests can run both
   arms to completion and assert digest equality. *)
let sym_stress_code tid =
  let tkt = Reg.v "tkt" in
  Prog.thread tid
    [ Instr.faa tkt (at "sym_lock") (c 1);
      Instr.store (at "sym_pte") (r tkt + c 1) ]

let sym_stress_prog n name =
  Prog.make ~name
    ~observables:
      [ Prog.Obs_loc (Loc.v "sym_lock"); Prog.Obs_loc (Loc.v "sym_pte") ]
    ~shared_bases:[ "sym_lock"; "sym_pte" ]
    (List.init n (fun i -> sym_stress_code (succ i)))

let sym_stress n =
  let name = Printf.sprintf "sym-stress-%d" n in
  { name;
    prog = sym_stress_prog n name;
    (* both bases exempt: the stress family exercises the state-space
       reduction, not the ownership discipline — and an empty tracked
       set is what lets the ownership checker canonicalize too *)
    exempt = [ "sym_lock"; "sym_pte" ];
    initial_owners = [];
    expect = all_good;
    rm_config = lockcfg;
    note =
      Printf.sprintf
        "%d interchangeable vCPUs on one lock + one PTE slot: the \
         thread-symmetry reduction corpus"
        n }

(** sym-stress-3/4/5: the thread-symmetry stress family, one entry per
    vCPU count. *)
let sym_corpus = [ sym_stress 3; sym_stress 4; sym_stress 5 ]

(* ------------------------------------------------------------------ *)
(* The corpus, per verified KVM version (§5.6)                         *)
(* ------------------------------------------------------------------ *)

let corpus =
  [ vmid_alloc; vcpu_switch; vm_boot; share_page; mcs_counter; mcs_handoff ]

let buggy_corpus =
  [ vmid_alloc_nobarrier; vcpu_switch_nobarrier; mcs_handoff_nobarrier;
    unlocked_counter; push_without_pull ]

(** Not buggy, but outside Theorem 2's scope: page-table words racing the
    MMU walker. In the certificate it documents {e why} conditions 4 and
    5 exist. *)
let boundary_corpus = [ pt_walker_race ]

(** Seeded inputs for the static analyzer, one per lint pass: each is
    designed to trip exactly the warning codes pinned in
    {!lint_expectations}. *)
let lint_corpus =
  [ handoff_missing_dmb; el2_double_map; read_outside_lock; pull_no_push;
    remap_no_tlbi; tlbi_before_write; split_transaction; walker_no_isb;
    el2_loop_remap ]

(** Expected {e definite} warning codes per corpus entry — the contract
    the cross-validation harness pins down. An entry missing from this
    table fails the harness, so adding a program forces deciding what the
    analyzer must say about it. *)
let lint_expectations =
  [ ("gen_vmid", []);
    ("vcpu-switch", []);
    ("vm-boot-state", []);
    ("share-page", []);
    ("mcs-counter", []);
    ("mcs-handoff", []);
    ("gen_vmid-nobarrier", [ "W002" ]);
    ("vcpu-switch-nobarrier", [ "W002" ]);
    ("mcs-handoff-nobarrier", [ "W002" ]);
    ("unlocked-counter", [ "W001" ]);
    ("push-without-pull", [ "W001"; "W006" ]);
    ("pt-walker-race", [ "W005" ]);
    ("handoff-missing-dmb", [ "W002" ]);
    ("el2-double-map", [ "W003" ]);
    ("read-outside-lock", [ "W001" ]);
    ("pull-no-push", [ "W006" ]);
    ("remap-no-tlbi", [ "W005" ]);
    ("tlbi-before-write", [ "W005" ]);
    ("split-transaction", [ "W004" ]);
    ("walker-no-isb", []);
    ("el2-loop-remap", [ "W003" ]) ]

(** Entries where the {e bounded} engine's definite codes legitimately
    differ from {!lint_expectations} (its 0/1 loop unrolling is blind to
    loop-carried defects). Entries absent here default to
    {!lint_expectations}. *)
let lint_expectations_bounded = [ ("el2-loop-remap", []) ]

(** Pinned engine divergences: per entry, the passes whose verdicts are
    allowed to differ between the bounded and fixpoint engines. On a
    pinned pass the fixpoint verdict must still be at least as severe as
    the bounded one; everywhere else the verdicts must agree exactly. *)
let lint_divergences = [ ("el2-loop-remap", [ "write-once" ]) ]

type version = {
  linux : string;
  stage2_levels : int;
}

(** The eight retrofitted KVM versions the paper verifies, each available
    with both stage-2 geometries where supported. *)
let versions =
  [ { linux = "4.18"; stage2_levels = 4 };
    { linux = "4.18"; stage2_levels = 3 };
    { linux = "4.20"; stage2_levels = 4 };
    { linux = "5.0"; stage2_levels = 4 };
    { linux = "5.1"; stage2_levels = 4 };
    { linux = "5.2"; stage2_levels = 4 };
    { linux = "5.3"; stage2_levels = 4 };
    { linux = "5.4"; stage2_levels = 4 };
    { linux = "5.4"; stage2_levels = 3 };
    { linux = "5.5"; stage2_levels = 4 } ]
