(** Exhaustive x86-TSO executor.

    The paper's introduction hinges on a contrast: the local-DRF result
    makes SC reasoning sound on x86-TSO, but Arm's weaker model breaks it
    — which is why VRM exists. This executor makes the contrast testable:
    the same DSL programs run under TSO, and the §2 bugs that Arm admits
    (the barrier-less ticket lock's duplicate VMID, the stale vCPU
    context, load buffering) are {e unreachable} here, while genuine TSO
    relaxations (store buffering) remain.

    The model is the standard operational x86-TSO (Owens, Sarkar, Sewell):
    each thread owns a FIFO store buffer; stores enqueue; loads forward
    from the newest buffered store to the same location, else read
    memory; buffers drain to memory nondeterministically in order; fences
    and atomic RMWs flush the issuing thread's buffer. Acquire/release
    annotations are vacuous (TSO already provides them); all DMB flavours
    act as MFENCE. *)

type tstate = {
  code : Instr.t list;
  regs : int Reg.Map.t;
  buffer : (Loc.t * int) list;  (** oldest first *)
  fuel : int;
}

type state = { mem : int Loc.Map.t; threads : tstate array }

let lookup_reg regs r =
  match Reg.Map.find_opt r regs with Some v -> v | None -> 0

let lookup_rv regs r = (lookup_reg regs r, 0)

let read_mem mem loc =
  match Loc.Map.find_opt loc mem with Some v -> v | None -> 0

(* newest buffered store to [loc], if any *)
let forwarded buffer loc =
  List.fold_left
    (fun acc (l, v) -> if Loc.equal l loc then Some v else acc)
    None buffer

let read st (t : tstate) loc =
  match forwarded t.buffer loc with
  | Some v -> v
  | None -> read_mem st.mem loc

exception Thread_panic

let set_thread st i t' =
  let threads = Array.copy st.threads in
  threads.(i) <- t';
  { st with threads }

(* drain the whole buffer of thread [i] into memory (fences, RMWs) *)
let flush st i =
  let t = st.threads.(i) in
  let mem =
    List.fold_left (fun m (l, v) -> Loc.Map.add l v m) st.mem t.buffer
  in
  set_thread { st with mem } i { t with buffer = [] }

type step = Next of state | Fuel_out

let step_thread (st : state) (i : int) : step =
  let t = st.threads.(i) in
  match t.code with
  | [] -> invalid_arg "Tso.step_thread: thread done"
  | instr :: rest -> (
      try
        match instr with
        | Instr.Nop | Instr.Pull _ | Instr.Push _ | Instr.Tlbi _ ->
            Next (set_thread st i { t with code = rest })
        | Instr.Panic -> raise Thread_panic
        | Instr.Move (r, e) ->
            let v, _ = Expr.eval_v (lookup_rv t.regs) e in
            Next
              (set_thread st i
                 { t with code = rest; regs = Reg.Map.add r v t.regs })
        | Instr.Load (r, a, _) ->
            let loc, _ = Expr.eval_addr (lookup_rv t.regs) a in
            let v = read st t loc in
            Next
              (set_thread st i
                 { t with code = rest; regs = Reg.Map.add r v t.regs })
        | Instr.Store (a, e, _) ->
            let loc, _ = Expr.eval_addr (lookup_rv t.regs) a in
            let v, _ = Expr.eval_v (lookup_rv t.regs) e in
            Next
              (set_thread st i
                 { t with code = rest; buffer = t.buffer @ [ (loc, v) ] })
        | Instr.Barrier _ ->
            (* all fences drain the local buffer on TSO *)
            let st = flush st i in
            let t = st.threads.(i) in
            Next (set_thread st i { t with code = rest })
        | Instr.Faa (r, a, e, _) ->
            (* atomic RMW: implicitly fenced on x86 (LOCK prefix) *)
            let st = flush st i in
            let t = st.threads.(i) in
            let loc, _ = Expr.eval_addr (lookup_rv t.regs) a in
            let delta, _ = Expr.eval_v (lookup_rv t.regs) e in
            let old = read_mem st.mem loc in
            Next
              (set_thread
                 { st with mem = Loc.Map.add loc (old + delta) st.mem }
                 i
                 { t with code = rest; regs = Reg.Map.add r old t.regs })
        | Instr.Xchg (r, a, e, _) ->
            let st = flush st i in
            let t = st.threads.(i) in
            let loc, _ = Expr.eval_addr (lookup_rv t.regs) a in
            let v, _ = Expr.eval_v (lookup_rv t.regs) e in
            let old = read_mem st.mem loc in
            Next
              (set_thread
                 { st with mem = Loc.Map.add loc v st.mem }
                 i
                 { t with code = rest; regs = Reg.Map.add r old t.regs })
        | Instr.Cas (r, a, expected, desired, _) ->
            let st = flush st i in
            let t = st.threads.(i) in
            let loc, _ = Expr.eval_addr (lookup_rv t.regs) a in
            let exp_v, _ = Expr.eval_v (lookup_rv t.regs) expected in
            let des_v, _ = Expr.eval_v (lookup_rv t.regs) desired in
            let old = read_mem st.mem loc in
            let mem =
              if old = exp_v then Loc.Map.add loc des_v st.mem else st.mem
            in
            Next
              (set_thread { st with mem } i
                 { t with code = rest; regs = Reg.Map.add r old t.regs })
        | Instr.If (c, br_then, br_else) ->
            let b, _ = Expr.eval_b (lookup_rv t.regs) c in
            Next
              (set_thread st i
                 { t with code = (if b then br_then else br_else) @ rest })
        | Instr.While (c, body) ->
            let b, _ = Expr.eval_b (lookup_rv t.regs) c in
            if not b then Next (set_thread st i { t with code = rest })
            else if t.fuel <= 0 then Fuel_out
            else
              Next
                (set_thread st i
                   { t with
                     code = body @ (Instr.While (c, body) :: rest);
                     fuel = t.fuel - 1 })
      with Expr.Eval_panic _ -> raise Thread_panic)

let observe (prog : Prog.t) (st : state) status : Behavior.outcome =
  let value = function
    | Prog.Obs_reg (tid, r) ->
        let idx =
          match
            List.find_index (fun th -> th.Prog.tid = tid) prog.Prog.threads
          with
          | Some i -> i
          | None -> invalid_arg "observe: unknown tid"
        in
        lookup_reg st.threads.(idx).regs r
    | Prog.Obs_loc l -> (
        (* terminal states have empty buffers, but be defensive *)
        match
          Array.fold_left
            (fun acc t ->
              match forwarded t.buffer l with Some v -> Some v | None -> acc)
            None st.threads
        with
        | Some v -> v
        | None -> read_mem st.mem l)
  in
  Behavior.outcome ~status
    (List.map (fun obs -> (obs, value obs)) prog.Prog.observables)

let hash_thread h (t : tstate) =
  Statekey.char h 'T';
  Statekey.int h t.fuel;
  Statekey.int h (Reg.Map.cardinal t.regs);
  Reg.Map.iter
    (fun r v ->
      Statekey.str h (Reg.name r);
      Statekey.int h v)
    t.regs;
  Statekey.int h (List.length t.buffer);
  List.iter
    (fun (l, v) ->
      Statekey.loc h l;
      Statekey.int h v)
    t.buffer;
  Statekey.instrs h t.code

let state_key (st : state) : Statekey.t =
  let h = Statekey.fresh () in
  Statekey.int h (Loc.Map.cardinal st.mem);
  Loc.Map.iter
    (fun l v ->
      Statekey.loc h l;
      Statekey.int h v)
    st.mem;
  Array.iter (fun t -> hash_thread h t) st.threads;
  Statekey.finish h

(* Orbit-canonical key: store buffers are thread-local, so the
   per-thread sub-key (registers, buffer contents, continuation)
   captures everything a within-group permutation moves; memory is
   shared and permutation-invariant. *)
let canonical_key sym (st : state) : Statekey.t =
  let h = Statekey.fresh () in
  Statekey.int h (Loc.Map.cardinal st.mem);
  Loc.Map.iter
    (fun l v ->
      Statekey.loc h l;
      Statekey.int h v)
    st.mem;
  let sub =
    Array.map
      (fun t ->
        let th = Statekey.fresh () in
        hash_thread th t;
        Statekey.finish th)
      st.threads
  in
  Symmetry.fold_threads sym h sub;
  Statekey.finish h

(* is register [r] of thread index [idx] observable? *)
let observable_reg (prog : Prog.t) idx r =
  match List.nth_opt prog.Prog.threads idx with
  | Some th ->
      List.exists
        (function
          | Prog.Obs_reg (tid, r') -> tid = th.Prog.tid && Reg.name r' = Reg.name r
          | Prog.Obs_loc _ -> false)
        prog.Prog.observables
  | None -> false

(* POR footprint of thread [i]'s next {e instruction} transition (drain
   transitions are labelled as writes at their location directly in
   [expand]). A transition is silent (ample-eligible) only when it is
   also the thread's unique one, i.e. the buffer is empty — otherwise a
   drain sibling exists and locally-invisible steps downgrade to
   private. Stores are private, not writes: they touch only the issuing
   thread's buffer (observation forwards from buffers, so they are not
   invisible). Fences and RMWs flush the whole buffer: global. *)
let label_of (prog : Prog.t) (st : state) i (instr : Instr.t) : Porlabel.t =
  let t = st.threads.(i) in
  let local () =
    if t.buffer = [] then Porlabel.silent ~tid:i else Porlabel.private_ ~tid:i
  in
  try
    match instr with
    | Instr.Nop | Instr.Pull _ | Instr.Push _ | Instr.Tlbi _
    | Instr.If _ | Instr.While _ | Instr.Panic ->
        local ()
    | Instr.Move (r, _) ->
        if observable_reg prog i r then Porlabel.private_ ~tid:i else local ()
    | Instr.Barrier _ ->
        if t.buffer = [] then Porlabel.silent ~tid:i else Porlabel.sync ~tid:i
    | Instr.Load (_, a, _) ->
        let loc, _ = Expr.eval_addr (lookup_rv t.regs) a in
        Porlabel.read ~tid:i loc
    | Instr.Store _ -> Porlabel.private_ ~tid:i
    | Instr.Faa _ | Instr.Xchg _ | Instr.Cas _ -> Porlabel.sync ~tid:i
  with Expr.Eval_panic _ -> Porlabel.private_ ~tid:i

(* The executor is an instance of the shared exploration engine: per
   thread, one transition draining the oldest buffered store plus one
   instruction step; terminal states require empty buffers (everything
   eventually reaches memory). *)
module Model = struct
  type ctx = { prog : Prog.t; sym : Symmetry.t option }
  type nonrec state = state
  type label = Porlabel.t

  let key ctx st =
    match ctx.sym with
    | None -> state_key st
    | Some s -> canonical_key s st

  let independent = Some (fun _ctx a b -> Porlabel.independent a b)
  let ample = Some (fun _ctx l -> Porlabel.ample l)

  let sleepable ctx (l : Porlabel.t) =
    match ctx.sym with
    | None -> true
    | Some s -> not (Symmetry.grouped s l.Porlabel.tid)

  let dummy i = Porlabel.silent ~tid:i

  let expand ctx ~labels (st : state) : (state, label) Engine.expansion =
    let prog = ctx.prog in
    let n = Array.length st.threads in
    let all_done = ref true in
    for i = 0 to n - 1 do
      if st.threads.(i).code <> [] || st.threads.(i).buffer <> [] then
        all_done := false
    done;
    if !all_done then
      Engine.Terminal (Some (observe prog st Behavior.Normal))
    else
      let thread_steps i =
        let t = st.threads.(i) in
        let drain =
          match t.buffer with
          | (l, v) :: rest ->
              let lbl =
                if labels then Porlabel.write ~tid:i l else dummy i
              in
              Seq.return
                (Engine.Step
                   ( lbl,
                     set_thread
                       { st with mem = Loc.Map.add l v st.mem }
                       i { t with buffer = rest } ))
          | [] -> Seq.empty
        in
        let instr =
          if t.code = [] then Seq.empty
          else
            fun () ->
              Seq.Cons
                ( (match step_thread st i with
                  | Next st' ->
                      let lbl =
                        if labels then label_of prog st i (List.hd t.code)
                        else dummy i
                      in
                      Engine.Step (lbl, st')
                  | Fuel_out ->
                      Engine.Emit (observe prog st Behavior.Fuel_exhausted)
                  | exception Thread_panic ->
                      Engine.Emit (observe prog st Behavior.Panicked)),
                  Seq.empty )
        in
        Seq.append drain instr
      in
      Engine.Steps
        (Seq.concat_map thread_steps (Seq.take n (Seq.ints 0)))
end

module E = Engine.Make (Model)

(* patch the symmetry statistics (the engine itself never sees them) *)
let with_sym_stats sym (stats : Engine.stats) =
  match sym with
  | None -> stats
  | Some s ->
      { stats with
        Engine.sym_groups = Symmetry.n_groups s;
        sym_collapsed = Symmetry.collapsed s }

(** Explore all TSO executions (instruction steps interleaved with buffer
    drains) and return the behavior set with exploration statistics.
    [por] (default on) applies sleep-set/ample partial-order reduction;
    [sym] (default on) collapses thread-permuted states of symmetric
    thread groups — same behavior set either way. *)
let run_stats ?(fuel = 8) ?(jobs = 1) ?deadline ?por ?(sym = true)
    (prog : Prog.t) : Behavior.t * Engine.stats =
  let mem =
    List.fold_left (fun m (l, v) -> Loc.Map.add l v m) Loc.Map.empty
      prog.Prog.init
  in
  let threads =
    Array.of_list
      (List.map
         (fun th ->
           { code = th.Prog.code; regs = Reg.Map.empty; buffer = []; fuel })
         prog.Prog.threads)
  in
  let symmetry = if sym then Symmetry.detect prog else None in
  let ctx = { Model.prog; sym = symmetry } in
  let r = E.explore ?deadline ?por ~jobs ~ctx { mem; threads } in
  (r.E.behaviors, with_sym_stats symmetry r.E.stats)

(** Explore all TSO executions and return the behavior set. *)
let run ?fuel ?jobs ?por ?sym (prog : Prog.t) : Behavior.t =
  fst (run_stats ?fuel ?jobs ?por ?sym prog)
