(** Candidate-execution machinery shared by the enumerating axiomatic
    checker ({!Axiomatic}) and the SAT-based bounded model checker
    ({!Bmc}).

    A candidate execution is a control-flow path per thread, a reads-from
    choice per load, and a per-location coherence order over the stores.
    This module owns the pieces the two backends must agree on — thread
    compilation (branch splitting, bounded [While] unrolling, computed
    addresses), the static dependency/barrier relations, the Armv8 axioms
    over a concrete candidate, and the value decoding — so the axioms are
    defined exactly once. *)

exception Unsupported of string
(** Raised on programs outside the fragment ([Xchg]/[Cas]/[Panic],
    trapping address arithmetic, runtime address indices outside the
    static domain), naming the offending thread and pc. *)

val default_bound : int
(** Default [While] unrolling bound. *)

(** {2 Events, steps, combos} *)

type kind =
  | E_read of Instr.order
  | E_write of Instr.order
  | E_rmw of Instr.order  (** both a read and a write *)
  | E_fence of Instr.barrier

type event = {
  id : int;  (** global id within a combo (= index into [events]) *)
  tid : int;
  po : int;  (** program-order index within the thread's path *)
  pc : int;  (** pre-order index of the originating instruction *)
  kind : kind;
  loc : Loc.t option;  (** [None] for fences *)
  dst : Reg.t option;  (** register written by a load/RMW *)
  wval : Expr.vexp option;  (** store data *)
  rmw_delta : Expr.vexp option;  (** FAA delta *)
  addr_check : (Expr.vexp * int list) option;
      (** register-dependent address: (offset expression, static index
          domain); decoding rejects paths where the resolved offset
          disagrees with the index chosen in [loc] *)
  addr_deps : int list;
  data_deps : int list;
  ctrl_deps : int list;
  ctrl_isb_deps : int list;
}

type step =
  | S_event of int
  | S_move of Reg.t * Expr.vexp
  | S_guard of Expr.bexp * bool

type combo = {
  events : event array;
  steps : (int * step list) list;  (** per thread, global event ids *)
  exhausted : bool;  (** some [While] hit the unrolling bound *)
}

val combos : ?bound:int -> Prog.t -> combo list
(** All control-flow path combinations of the program, one combo per
    choice of per-thread path. Raises {!Unsupported} outside the
    fragment. *)

(** {2 Event classification} *)

val is_read : event -> bool
val is_write : event -> bool
val is_acquire : event -> bool
val is_release : event -> bool

(** {2 Static relations (value-independent)} *)

val locs : combo -> Loc.t list
val writes_on : combo -> Loc.t -> event list
val reads : combo -> event list
val po_pairs : combo -> (event * event) list

val po_loc_edges : combo -> (int * int) list
(** Same-location program order (the static part of the internal axiom). *)

val static_ob_edges : combo -> (int * int) list
(** dob (address/data dependencies) ∪ ctrl ∪ ctrl+ISB ∪ bob (DMB
    flavours, acquire, release, RCsc): the static part of ob. *)

(** {2 Axioms over a concrete candidate}

    [rf] is keyed by read event id ((read, writer); writer [-1] is the
    initial memory write); [co] lists each location's writes in coherence
    order. *)

val internal_ok : combo -> rf:(int * int) list -> co:(Loc.t * int list) list -> bool
val atomicity_ok : combo -> rf:(int * int) list -> co:(Loc.t * int list) list -> bool
val external_ok : combo -> rf:(int * int) list -> co:(Loc.t * int list) list -> bool

val valid : combo -> rf:(int * int) list -> co:(Loc.t * int list) list -> bool
(** Conjunction of internal, atomicity and external. *)

(** {2 Decoding values and outcomes} *)

type resolution = {
  values : int array;  (** per event: the value written (writes, RMWs) *)
  rvalues : int array;  (** per event: the value read (reads, RMWs) *)
  envs : (int * (Reg.t, int) Hashtbl.t) list;  (** final register files *)
}

type decoded =
  | Feasible of resolution
  | Infeasible
      (** a guard or address choice disagrees with the resolved values *)
  | Stuck  (** out-of-thin-air value cycle through rf; never a behavior *)

val decode : Prog.t -> combo -> rf:(int -> int) -> decoded
(** Replay the combo's thread paths under the given reads-from choice,
    resolving register files and write values. *)

val outcome_values :
  Prog.t ->
  combo ->
  resolution ->
  co_last:(Loc.t -> int option) ->
  (Prog.observable * int) list
(** Observable value vector: final register files for [Obs_reg], the
    co-maximal write (or the initial value) for [Obs_loc]. *)

val status_of : combo -> Behavior.status
(** [Fuel_exhausted] for bound-truncated combos, [Normal] otherwise. *)

(** {2 Enumeration helpers} *)

val product : 'a list list -> 'a list list
val permutations : 'a list -> 'a list list
